(* Chaos harness for the daemon event loop: a real Server.run on a real
   Unix-domain socket, attacked by misbehaving clients — injected faults,
   concurrent tenants, admission pressure, half-closed and oversized and
   garbage-spewing connections. Every test asserts the daemon answers
   honestly and keeps serving. The kill -9 / --resume half of the chaos
   story drives the installed binary and lives in chaos_serve.sh. *)

open Flowtrace_service
module Json = Flowtrace_analysis.Json

let spec_text =
  "flow F\n\
   state s0 init\n\
   state s1\n\
   state s2 stop\n\
   msg m1 4 from A to B\n\
   msg m2 4 from B to A\n\
   trans s0 m1 s1\n\
   trans s1 m2 s2\n"

let spec_text2 =
  "flow G\n\
   state g0 init\n\
   state g1 stop\n\
   msg gm 6 from C to D\n\
   trans g0 gm g1\n"

let req fields = Json.to_string (Json.Obj fields)

let open_req ~session ~spec =
  req
    [
      ("op", Json.String "open-session");
      ("session", Json.String session);
      ("spec", Json.String spec);
      ("width", Json.Int 8);
    ]

let select_req ?chaos ~session () =
  let base =
    [ ("op", Json.String "select"); ("session", Json.String session) ]
  in
  let chaos_field =
    match chaos with
    | None -> []
    | Some (fail, delay) ->
        [
          ( "chaos",
            Json.Obj [ ("fail", Json.Int fail); ("delay_ms", Json.Int delay) ]
          );
        ]
  in
  req (base @ chaos_field)

let field name line =
  match Json.parse line with
  | Ok v -> Json.member name v
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let str_field name line =
  match Option.bind (field name line) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string %S: %s" name line

(* -- server lifecycle ---------------------------------------------------- *)

let start config =
  let socket = Filename.temp_file "flowtraced" ".sock" in
  Sys.remove socket;
  let config = { config with Server.socket } in
  let mu = Mutex.create () in
  let cv = Condition.create () in
  let up = ref false in
  let dom =
    Domain.spawn (fun () ->
        Server.run
          ~ready:(fun () ->
            Mutex.protect mu (fun () ->
                up := true;
                Condition.signal cv))
          config)
  in
  Mutex.protect mu (fun () ->
      while not !up do
        Condition.wait cv mu
      done);
  (socket, dom)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (fd, Unix.in_channel_of_descr fd)

let send fd line =
  let b = Bytes.of_string (line ^ "\n") in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let recv ic = input_line ic

let close_conn (fd, _ic) = try Unix.close fd with Unix.Unix_error _ -> ()

(* One request, one response, over a throwaway connection. *)
let call socket line =
  let ((fd, ic) as conn) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      send fd line;
      recv ic)

let stop (socket, dom) =
  (try ignore (call socket {|{"op":"shutdown"}|}) with _ -> ());
  Domain.join dom;
  Alcotest.(check bool)
    "socket file removed on shutdown" false (Sys.file_exists socket)

let with_server config f =
  let ((socket, _dom) as server) = start config in
  Fun.protect ~finally:(fun () -> stop server) (fun () -> f socket)

(* -- tests --------------------------------------------------------------- *)

let test_chaos_faults_are_invisible () =
  with_server { Server.default with chaos = true; retries = 2 } @@ fun socket ->
  let ping = call socket {|{"op":"ping"}|} in
  Alcotest.(check string) "ping ok" "ok" (str_field "status" ping);
  Alcotest.(check string) "open ok" "ok"
    (str_field "status" (call socket (open_req ~session:"a" ~spec:spec_text)));
  let plain = call socket (select_req ~session:"a" ()) in
  Alcotest.(check string) "select ok" "ok" (str_field "status" plain);
  (* Every fault count the supervisor can absorb answers with the exact
     bytes of the undisturbed run — a client cannot tell a retried
     request from a clean one. *)
  for fail = 1 to 2 do
    Alcotest.(check string)
      (Printf.sprintf "fail=%d is byte-identical" fail)
      plain
      (call socket (select_req ~chaos:(fail, 0) ~session:"a" ()))
  done;
  Alcotest.(check string) "fail past the retry bound is an honest error"
    "error"
    (str_field "status" (call socket (select_req ~chaos:(3, 0) ~session:"a" ())));
  Alcotest.(check string) "daemon serves on after exhaustion" plain
    (call socket (select_req ~session:"a" ()))

let test_cross_session_isolation () =
  with_server { Server.default with shards = 2 } @@ fun socket ->
  ignore (call socket (open_req ~session:"a" ~spec:spec_text));
  ignore (call socket (open_req ~session:"b" ~spec:spec_text2));
  let expect_a = call socket (select_req ~session:"a" ()) in
  let expect_b = call socket (select_req ~session:"b" ()) in
  Alcotest.(check bool)
    "distinct specs give distinct answers" true (expect_a <> expect_b);
  (* Two client domains hammer their own sessions concurrently; every
     response must be the exact bytes of that session's reference
     answer — zero contamination across shards or interleavings. *)
  let rounds = 25 in
  let client session expect () =
    let ((fd, ic) as conn) = connect socket in
    Fun.protect
      ~finally:(fun () -> close_conn conn)
      (fun () ->
        let bad = ref 0 in
        for _ = 1 to rounds do
          send fd (select_req ~session ());
          if recv ic <> expect then incr bad
        done;
        !bad)
  in
  let da = Domain.spawn (client "a" expect_a) in
  let db = Domain.spawn (client "b" expect_b) in
  Alcotest.(check int) "session a uncontaminated" 0 (Domain.join da);
  Alcotest.(check int) "session b uncontaminated" 0 (Domain.join db)

let test_admission_sheds_busy () =
  with_server { Server.default with chaos = true; max_inflight = 1 }
  @@ fun socket ->
  ignore (call socket (open_req ~session:"a" ~spec:spec_text));
  (* A slow request holds the only in-flight slot... *)
  let ((slow_fd, slow_ic) as slow) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn slow)
    (fun () ->
      send slow_fd (select_req ~chaos:(0, 600) ~session:"a" ());
      Unix.sleepf 0.15;
      (* ...so a second tenant is shed with busy, not queued without
         bound. Non-session ops stay answerable throughout. *)
      let busy = call socket (select_req ~session:"a" ()) in
      Alcotest.(check string) "shed busy" "busy" (str_field "status" busy);
      Alcotest.(check string) "ping during saturation" "ok"
        (str_field "status" (call socket {|{"op":"ping"}|}));
      let slow_resp = recv slow_ic in
      Alcotest.(check string) "slow request completes ok" "ok"
        (str_field "status" slow_resp));
  Alcotest.(check string) "capacity recovers" "ok"
    (str_field "status" (call socket (select_req ~session:"a" ())))

let test_half_closed_client () =
  with_server Server.default @@ fun socket ->
  ignore (call socket (open_req ~session:"a" ~spec:spec_text));
  let expect = call socket (select_req ~session:"a" ()) in
  let ((fd, ic) as conn) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      for _ = 1 to 3 do
        send fd (select_req ~session:"a" ())
      done;
      (* EOF before any response is read: the daemon still owes (and
         delivers) one response per complete line it received. *)
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      for i = 1 to 3 do
        Alcotest.(check string)
          (Printf.sprintf "response %d after half-close" i)
          expect (recv ic)
      done;
      match recv ic with
      | _ -> Alcotest.fail "daemon kept the drained connection open"
      | exception End_of_file -> ())

let test_oversized_line_rejected () =
  with_server { Server.default with max_line = 256 } @@ fun socket ->
  let ((fd, ic) as conn) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      send fd (String.make 1024 'x');
      let resp = recv ic in
      Alcotest.(check string) "oversized line is an error" "error"
        (str_field "status" resp);
      (* ...and the connection is closed once the error is flushed. *)
      match recv ic with
      | _ -> Alcotest.fail "connection survived an oversized line"
      | exception End_of_file -> ());
  Alcotest.(check string) "daemon unharmed" "ok"
    (str_field "status" (call socket {|{"op":"ping"}|}))

let test_garbage_never_kills_the_daemon () =
  with_server Server.default @@ fun socket ->
  let garbage =
    [
      "";
      "   ";
      "}{";
      "null";
      "[1,2,3]";
      "\"just a string\"";
      "{\"op\":";
      {|{"no":"op"}|};
      {|{"op":42}|};
      {|{"op":"no-such-op"}|};
      {|{"op":"select"}|};
      {|{"op":"select","session":"../etc"}|};
      {|{"op":"open-session","session":"x"}|};
      {|{"op":"open-session","session":"x","spec":12}|};
      {|{"op":"localize","session":"x","trace":"not-a-list"}|};
      "\x00\x01\x02 binary";
      String.make 200 '{';
    ]
  in
  let ((fd, ic) as conn) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      List.iteri
        (fun i line ->
          send fd line;
          let resp = recv ic in
          Alcotest.(check string)
            (Printf.sprintf "garbage %d yields a JSON error envelope" i)
            "error" (str_field "status" resp))
        garbage);
  Alcotest.(check string) "daemon alive after the fuzz" "ok"
    (str_field "status" (call socket {|{"op":"ping"}|}))

let test_pipelined_responses_stay_ordered () =
  with_server Server.default @@ fun socket ->
  ignore (call socket (open_req ~session:"a" ~spec:spec_text));
  let ((fd, ic) as conn) = connect socket in
  Fun.protect
    ~finally:(fun () -> close_conn conn)
    (fun () ->
      (* A burst of distinct requests down one connection: responses come
         back strictly in request order, ids matching, whatever order the
         shard workers finish in. *)
      let n = 20 in
      for i = 1 to n do
        send fd
          (req
             [
               ("id", Json.String (string_of_int i));
               ("op", Json.String (if i mod 3 = 0 then "ping" else "select"));
               ("session", Json.String "a");
             ])
      done;
      for i = 1 to n do
        Alcotest.(check string)
          (Printf.sprintf "response %d in order" i)
          (string_of_int i)
          (str_field "id" (recv ic))
      done)

let () =
  Alcotest.run "chaos_serve"
    [
      ( "chaos",
        [
          Alcotest.test_case "injected faults retry to identical bytes" `Quick
            test_chaos_faults_are_invisible;
          Alcotest.test_case "concurrent tenants never contaminate" `Quick
            test_cross_session_isolation;
          Alcotest.test_case "saturation sheds busy, then recovers" `Quick
            test_admission_sheds_busy;
          Alcotest.test_case "half-closed clients get every response" `Quick
            test_half_closed_client;
          Alcotest.test_case "oversized lines are rejected and cut" `Quick
            test_oversized_line_rejected;
          Alcotest.test_case "garbage never kills the daemon" `Quick
            test_garbage_never_kills_the_daemon;
          Alcotest.test_case "pipelined responses stay ordered" `Quick
            test_pipelined_responses_stay_ordered;
        ] );
    ]
