(* Tests for delta re-selection (Select.reselect and the journal records
   behind flowtrace select --delta-from).

   The contract under test: seeding the exact search with prior-run bests
   never changes the answer — reselect is bit-identical to a from-scratch
   select after any single-flow add/remove/edit, at any job count — it
   only changes the work, which must shrink (strictly fewer candidates
   scored than a full run) whenever a seed survives the change, with
   counters that are deterministic across job counts. *)

open Flowtrace_core
open Flowtrace_soc
module Tel = Flowtrace_telemetry.Telemetry
module Event = Flowtrace_telemetry.Event
module Journal = Flowtrace_runtime.Journal
module Engine = Flowtrace_runtime.Engine

let seed_arb = QCheck.make (QCheck.Gen.int_bound 100_000)

let inter_of_flows flows =
  Interleave.make (List.mapi (fun i f -> { Interleave.flow = f; index = i + 1 }) flows)

let names_of (r : Select.result) =
  List.map (fun (m : Message.t) -> m.Message.name) r.Select.messages

let width_for inter =
  let widths = List.map (fun (m : Message.t) -> m.Message.width) (Interleave.messages inter) in
  1 + List.fold_left min max_int widths + 3

(* Scenario B is scenario A with one flow added, removed or edited —
   the spec-revision shapes --delta-from is built for. *)
let delta_of_seed seed =
  let flows_a = Gen.flows_of_seed seed in
  let flows_b =
    match seed mod 3 with
    | 0 -> flows_a @ [ Gen.flow_of_seed (seed + 7) ]
    | 1 when List.length flows_a > 1 -> List.tl flows_a
    | _ ->
        (match List.rev flows_a with
        | _ :: keep -> List.rev (Gen.flow_of_seed (seed + 13) :: keep)
        | [] -> [ Gen.flow_of_seed (seed + 13) ])
  in
  (inter_of_flows flows_a, inter_of_flows flows_b)

let prop_reselect_equals_select_after_delta =
  QCheck.Test.make ~name:"reselect after single-flow delta = from-scratch select" ~count:30
    seed_arb
    (fun seed ->
      let inter_a, inter_b = delta_of_seed seed in
      let w = width_for inter_b in
      let seeds = [ names_of (Select.select ~pack:false inter_a ~buffer_width:(width_for inter_a)) ] in
      let fresh = Select.select ~pack:false inter_b ~buffer_width:w in
      let stats1 = ref None in
      let ok_jobs =
        List.for_all
          (fun jobs ->
            let r, stats = Select.reselect ~jobs ~pack:false ~seeds inter_b ~buffer_width:w in
            (if jobs = 1 then stats1 := stats);
            names_of r = names_of fresh
            && Int64.bits_of_float r.Select.gain = Int64.bits_of_float fresh.Select.gain
            && Int64.bits_of_float r.Select.coverage
               = Int64.bits_of_float fresh.Select.coverage
            (* work counters are partition-invariant *)
            && stats = !stats1)
          [ 1; 2; 4 ]
      in
      ok_jobs && Option.is_some !stats1)

let prop_reselect_degraded_equals_select =
  QCheck.Test.make ~name:"budgeted reselect delegates: deadline 0 = greedy fallback"
    ~count:20 seed_arb
    (fun seed ->
      let _, inter = delta_of_seed seed in
      let w = width_for inter in
      let expired = Unix.gettimeofday () -. 1.0 in
      let r, stats =
        Select.reselect ~deadline:expired ~pack:false ~seeds:[] inter ~buffer_width:w
      in
      let s = Select.select ~deadline:expired ~pack:false inter ~buffer_width:w in
      stats = None
      && r.Select.tier = Select.Tier.Greedy_fallback
      && names_of r = names_of s
      && Int64.bits_of_float r.Select.gain = Int64.bits_of_float s.Select.gain)

(* ------------------------------------------------------------------ *)
(* Journal round trip: a supervised run's t/b records seed reselect *)

let tmp_journal () =
  let f = Filename.temp_file "flowtrace-reselect" ".ckpt" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

let seeds_of_journal path =
  match Journal.load path with
  | Error ds ->
      Alcotest.failf "journal load failed: %s" (Flowtrace_analysis.Diagnostic.render_all ds)
  | Ok (snap, _) ->
      (match snap.Journal.s_best with Some b -> [ b.Journal.b_names ] | None -> [])
      @ List.map (fun (_, (b : Journal.best)) -> b.Journal.b_names) snap.Journal.s_task_bests

let test_journal_seeds_reselect () =
  let inter_a, inter_b = delta_of_seed 4242 in
  let wa = width_for inter_a and wb = width_for inter_b in
  let path = tmp_journal () in
  (match Engine.select ~checkpoint:path ~pack:false inter_a ~buffer_width:wa with
  | Ok o -> Alcotest.(check bool) "run A complete" true (o.Engine.o_status = Engine.Complete)
  | Error ds ->
      Alcotest.failf "supervised run failed: %s" (Flowtrace_analysis.Diagnostic.render_all ds));
  let seeds = seeds_of_journal path in
  Alcotest.(check bool) "journal yields seeds" true (seeds <> []);
  let fresh = Select.select ~pack:false inter_b ~buffer_width:wb in
  let r, stats = Select.reselect ~pack:false ~seeds inter_b ~buffer_width:wb in
  Alcotest.(check (list string)) "journal-seeded reselect = select" (names_of fresh)
    (names_of r);
  Alcotest.(check int64) "gain bits identical" (Int64.bits_of_float fresh.Select.gain)
    (Int64.bits_of_float r.Select.gain);
  match stats with
  | None -> Alcotest.fail "expected branch-and-bound stats"
  | Some s -> Alcotest.(check bool) "some seeds were feasible" true (s.Select.rs_seeds > 0)

(* ------------------------------------------------------------------ *)
(* Stress: strictly fewer candidates re-scored, telemetry-verified *)

let counter metrics name =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Event.Counter c when c.Event.c_name = name -> acc + c.Event.c_value
      | _ -> acc)
    0 metrics

let test_stress_reselect_strictly_fewer () =
  let inter = Stress.interleave () in
  let w = Stress.default_buffer_width in
  (* single-flow delta on the stress workload: drop one STA instance *)
  let inter_delta = Interleave.make (List.tl Stress.instances) in
  let seeds = [ names_of (Select.select ~pack:false inter_delta ~buffer_width:w) ] in
  Tel.install Flowtrace_telemetry.Sink.null;
  let metrics =
    Fun.protect ~finally:Tel.shutdown @@ fun () ->
    let full = Select.select ~pack:false inter ~buffer_width:w in
    let r, stats = Select.reselect ~pack:false ~seeds inter ~buffer_width:w in
    Alcotest.(check (list string)) "reselect = select on stress" (names_of full) (names_of r);
    (match stats with
    | None -> Alcotest.fail "expected branch-and-bound stats on stress"
    | Some s ->
        Alcotest.(check bool) "pruning happened" true (s.Select.rs_pruned_subtrees > 0);
        Alcotest.(check bool) "scored > 0" true (s.Select.rs_scored > 0));
    Tel.metrics ()
  in
  let full_scored = counter metrics "select.candidates_scored" in
  let re_scored = counter metrics "select.reselect.candidates_scored" in
  (* full run + reselect both bumped select.candidates_scored's family;
     the reselect counter must be strictly below the full run's *)
  Alcotest.(check bool) "telemetry recorded the full run" true (full_scored > 0);
  Alcotest.(check bool)
    (Printf.sprintf "reselect re-scored strictly fewer (%d < %d)" re_scored full_scored)
    true
    (re_scored > 0 && re_scored < full_scored)

let () =
  Alcotest.run "reselect"
    [
      ( "delta equivalence",
        List.map QCheck_alcotest.to_alcotest
          [ prop_reselect_equals_select_after_delta; prop_reselect_degraded_equals_select ] );
      ( "journal seeds",
        [ Alcotest.test_case "supervised journal seeds reselect" `Quick test_journal_seeds_reselect ] );
      ( "stress",
        [
          Alcotest.test_case "strictly fewer candidates re-scored" `Slow
            test_stress_reselect_strictly_fewer;
        ] );
    ]
