(* Tests for the streaming/multicore Step-1/2 engine and the hardened SoC
   data structures.

   The streaming fold is checked against an independent power-set
   reference; the parallel selector is checked for bit-identical results
   across job counts and against the pre-PR materialize-then-score path
   (Combination.enumerate + Select.step2); the trace-buffer ring and the
   event queue are checked against simple reference models. *)

open Flowtrace_core
open Flowtrace_soc

let key c = List.sort compare (List.map (fun (m : Message.t) -> m.Message.name) c)
let keyset cs = List.sort compare (List.map key cs)

(* A small deterministic pool drawn from a random interleaving's message
   set, capped so the 2^n reference enumeration stays tiny. *)
let pool_of_seed seed =
  let inter = Gen.interleaving_of_seed seed in
  let msgs = Interleave.messages inter in
  List.filteri (fun i _ -> i < 10) msgs

(* Independent reference: every non-empty subset (bitmask enumeration)
   whose summed trace width fits. *)
let subsets_ref msgs ~width =
  let arr = Array.of_list msgs in
  let n = Array.length arr in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let combo = ref [] and w = ref 0 in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then begin
        combo := arr.(i) :: !combo;
        w := !w + Message.trace_width arr.(i)
      end
    done;
    if !w <= width then out := !combo :: !out
  done;
  !out

(* Reference maximality filter: no fitting strict superset exists. *)
let maximal_ref msgs ~width =
  let all = subsets_ref msgs ~width in
  let keys = List.map key all in
  List.filter
    (fun c ->
      let kc = key c in
      not
        (List.exists
           (fun k ->
             List.length k > List.length kc
             && List.for_all (fun n -> List.mem n k) kc)
           keys))
    all

let width_of_seed seed msgs =
  let ws = List.map Message.trace_width msgs in
  let minw = List.fold_left min max_int ws in
  minw + (seed mod 7)

(* ------------------------------------------------------------------ *)
(* Streaming fold vs reference *)

let seed_arb = QCheck.make (QCheck.Gen.int_bound 100_000)

let prop_fold_equals_enumerate =
  QCheck.Test.make ~name:"fold_candidates streams enumerate's exact output" ~count:60
    seed_arb
    (fun seed ->
      let msgs = pool_of_seed seed in
      let width = width_of_seed seed msgs in
      let streamed =
        Combination.fold_candidates msgs ~width ~init:[] ~f:(fun acc c -> c :: acc)
      in
      streamed = Combination.enumerate msgs ~width)

let prop_fold_equals_powerset =
  QCheck.Test.make ~name:"fold_candidates = power-set reference" ~count:60 seed_arb
    (fun seed ->
      let msgs = pool_of_seed seed in
      let width = width_of_seed seed msgs in
      let streamed =
        Combination.fold_candidates msgs ~width ~init:[] ~f:(fun acc c -> c :: acc)
      in
      keyset streamed = keyset (subsets_ref msgs ~width))

let prop_streaming_maximal_filter =
  QCheck.Test.make ~name:"only_maximal = quadratic maximal_only = reference" ~count:60
    seed_arb
    (fun seed ->
      let msgs = pool_of_seed seed in
      let width = width_of_seed seed msgs in
      let streamed =
        Combination.fold_candidates ~only_maximal:true msgs ~width ~init:[]
          ~f:(fun acc c -> c :: acc)
      in
      let quadratic = Combination.maximal_only (Combination.enumerate msgs ~width) in
      keyset streamed = keyset quadratic
      && keyset streamed = keyset (maximal_ref msgs ~width))

let prop_plan_partitions_candidates =
  QCheck.Test.make ~name:"plan tasks partition the candidate set" ~count:60 seed_arb
    (fun seed ->
      let msgs = pool_of_seed seed in
      let width = width_of_seed seed msgs in
      (* depth 3 forces several tasks even on these small pools *)
      let plan = Combination.plan ~depth:3 msgs ~width in
      let per_task = ref [] in
      for i = 0 to Combination.n_tasks plan - 1 do
        per_task :=
          Combination.fold_task plan i ~only_maximal:false
            ~tick:(fun () -> ())
            ~take:(fun p m -> m :: p)
            ~path:[]
            ~leaf:(fun acc p -> List.rev p :: acc)
            ~init:!per_task
      done;
      (* multiset equality: completeness and no duplicates across tasks *)
      keyset !per_task = keyset (Combination.enumerate msgs ~width))

let test_fold_limit_raises () =
  let many = List.init 25 (fun i -> Message.make (Printf.sprintf "w%d" i) 1) in
  match
    Combination.fold_candidates ~limit:1000 many ~width:25 ~init:0 ~f:(fun a _ -> a + 1)
  with
  | exception Combination.Too_many 1000 -> ()
  | _ -> Alcotest.fail "expected Too_many"

(* ------------------------------------------------------------------ *)
(* Parallel selection determinism *)

let check_jobs_identical name inter ~buffer_width =
  let run jobs = Select.select ~jobs ~pack:false inter ~buffer_width in
  let r1 = run 1 and r2 = run 2 and r4 = run 4 in
  Alcotest.(check (list string))
    (name ^ ": jobs 2 = jobs 1")
    (Select.selected_names r1) (Select.selected_names r2);
  Alcotest.(check (list string))
    (name ^ ": jobs 4 = jobs 1")
    (Select.selected_names r1) (Select.selected_names r4);
  Alcotest.(check (float 0.0)) (name ^ ": gain bit-identical (jobs 2)") r1.Select.gain
    r2.Select.gain;
  Alcotest.(check (float 0.0)) (name ^ ": gain bit-identical (jobs 4)") r1.Select.gain
    r4.Select.gain;
  (* the pre-PR materialize-then-score path picks the same selection *)
  let ref_msgs, ref_gain =
    Select.step2 inter (Combination.enumerate (Interleave.messages inter) ~width:buffer_width)
  in
  Alcotest.(check (list string))
    (name ^ ": streaming = list path")
    (List.map (fun (m : Message.t) -> m.Message.name) ref_msgs)
    (Select.selected_names r1);
  Alcotest.(check (float 1e-9)) (name ^ ": gain = list path") ref_gain r1.Select.gain

let test_scenarios_jobs_identical () =
  List.iter
    (fun sc ->
      let inter = Scenario.interleave sc in
      check_jobs_identical sc.Scenario.name inter ~buffer_width:32)
    Scenario.all

let test_stress_jobs_identical () =
  let inter = Stress.interleave () in
  check_jobs_identical "stress" inter ~buffer_width:Stress.default_buffer_width

let prop_random_jobs_identical =
  QCheck.Test.make ~name:"parallel select deterministic on random interleavings" ~count:25
    seed_arb
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let widths = List.map (fun (m : Message.t) -> m.Message.width) (Interleave.messages inter) in
      let minw = List.fold_left min max_int widths in
      let buffer_width = minw + 4 in
      let run jobs = Select.select ~jobs ~pack:false inter ~buffer_width in
      let r1 = run 1 and r4 = run 4 in
      Select.selected_names r1 = Select.selected_names r4
      && r1.Select.gain = r4.Select.gain)

(* ------------------------------------------------------------------ *)
(* Trace-buffer ring vs the old list semantics *)

let toy_selection () =
  Select.select ~pack:false (Toy.two_instances ()) ~buffer_width:3

let packet_of ~cycle ~inst msg =
  { Packet.cycle; flow = "CC"; inst; msg; src = "L2"; dst = "C"; fields = [] }

(* Reference model of the old behavior: keep the last [depth] observable
   packets, count every observable packet as recorded, the overwritten
   ones as dropped. *)
let prop_ring_matches_list_semantics =
  QCheck.Test.make ~name:"ring buffer = last-depth-entries list semantics" ~count:100
    seed_arb
    (fun seed ->
      let sel = toy_selection () in
      let selected = Select.selected_names sel in
      let pool =
        List.map (fun (m : Message.t) -> m.Message.name) (Interleave.messages (Toy.two_instances ()))
        @ [ "unobserved" ]
      in
      let pool = Array.of_list pool in
      let n_packets = 1 + (Hashtbl.hash (seed, `n) mod 40) in
      let depth = 1 + (Hashtbl.hash (seed, `d) mod 8) in
      let packets =
        List.init n_packets (fun i ->
            let msg = pool.(Hashtbl.hash (seed, `m, i) mod Array.length pool) in
            packet_of ~cycle:i ~inst:(1 + (i mod 2)) msg)
      in
      let buf = Trace_buffer.create ~depth sel in
      Trace_buffer.record_all buf packets;
      let observable =
        List.filter (fun (p : Packet.t) -> List.mem p.Packet.msg selected) packets
      in
      let total = List.length observable in
      let expect_kept =
        let drop = max 0 (total - depth) in
        List.filteri (fun i _ -> i >= drop) observable
      in
      let kept = Trace_buffer.entries buf in
      Trace_buffer.stats buf = (total, max 0 (total - depth))
      && Trace_buffer.wrapped buf = (total > depth)
      && List.length kept = List.length expect_kept
      && List.for_all2
           (fun (e : Trace_buffer.entry) (p : Packet.t) ->
             e.Trace_buffer.e_cycle = p.Packet.cycle
             && Indexed.equal e.Trace_buffer.e_imsg (Packet.indexed p))
           kept expect_kept
      && List.map (fun (e : Trace_buffer.entry) -> e.Trace_buffer.e_imsg) kept
         = Trace_buffer.observed buf)

(* ------------------------------------------------------------------ *)
(* Event queue vs a stable-sort reference *)

let prop_event_queue_matches_reference =
  QCheck.Test.make ~name:"event queue pops = stable priority reference" ~count:100
    seed_arb
    (fun seed ->
      let q = Event_queue.create () in
      let pending = ref [] (* (at, seq) in insertion order *) in
      let seq = ref 0 in
      let ok = ref true in
      let pop_reference () =
        match !pending with
        | [] -> None
        | l ->
            let best =
              List.fold_left
                (fun best e ->
                  match best with
                  | None -> Some e
                  | Some (bat, bseq) ->
                      let at, s = e in
                      if at < bat || (at = bat && s < bseq) then Some e else best)
                None l
            in
            let b = Option.get best in
            pending := List.filter (fun e -> e <> b) l;
            Some b
      in
      let check_pop () =
        let expect = pop_reference () in
        (match expect with
        | Some (at, _) ->
            if Event_queue.peek_time q <> Some at then ok := false
        | None -> if Event_queue.peek_time q <> None then ok := false);
        let got = Event_queue.pop q in
        let got = Option.map (fun (t, payload) -> (t, payload)) got in
        if got <> expect then ok := false
      in
      for i = 0 to 79 do
        let h = Hashtbl.hash (seed, i) in
        if h mod 3 = 0 then check_pop ()
        else begin
          let at = h / 3 mod 20 in
          Event_queue.push q ~at !seq;
          pending := !pending @ [ (at, !seq) ];
          incr seq
        end
      done;
      while not (Event_queue.is_empty q) || !pending <> [] do
        check_pop ()
      done;
      !ok && Event_queue.length q = 0)

(* The pop fix: a popped payload must become collectable — the old heap
   left the entry in the vacated slot, pinning it until overwritten. *)
let test_pop_releases_payload () =
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  let () =
    let payload = ref 42 in
    Weak.set w 0 (Some payload);
    Event_queue.push q ~at:1 payload
  in
  (match Event_queue.pop q with
  | Some (1, p) -> assert (!p = 42)
  | _ -> Alcotest.fail "expected the pushed event");
  Gc.full_major ();
  Alcotest.(check bool) "payload collected after pop" false (Weak.check w 0)

let () =
  Alcotest.run "stream"
    [
      ( "streaming fold",
        [
          Alcotest.test_case "limit raises Too_many" `Quick test_fold_limit_raises;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_fold_equals_enumerate;
              prop_fold_equals_powerset;
              prop_streaming_maximal_filter;
              prop_plan_partitions_candidates;
            ] );
      ( "parallel select",
        [
          Alcotest.test_case "scenarios: jobs 1/2/4 identical" `Quick
            test_scenarios_jobs_identical;
          Alcotest.test_case "stress: jobs 1/2/4 identical" `Slow test_stress_jobs_identical;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_random_jobs_identical ] );
      ( "trace buffer ring",
        List.map QCheck_alcotest.to_alcotest [ prop_ring_matches_list_semantics ] );
      ( "event queue",
        [ Alcotest.test_case "pop releases payload" `Quick test_pop_releases_payload ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_event_queue_matches_reference ] );
    ]
