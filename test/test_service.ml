(* The daemon minus the sockets: Proto codec, Store persistence, and
   Dispatch request execution — including admission control, chaos
   fault injection under supervision, and resume bit-identity. The
   socket event loop on top of this is exercised by chaos_serve. *)

open Flowtrace_service
module Json = Flowtrace_analysis.Json

let spec_text =
  "flow F\n\
   state s0 init\n\
   state s1\n\
   state s2 stop\n\
   msg m1 4 from A to B\n\
   msg m2 4 from B to A\n\
   trans s0 m1 s1\n\
   trans s1 m2 s2\n"

let req fields = Json.to_string (Json.Obj fields)

let open_req ?(id = "1") ?(session = "a") ?(spec = spec_text) () =
  req
    [
      ("id", Json.String id);
      ("op", Json.String "open-session");
      ("session", Json.String session);
      ("spec", Json.String spec);
      ("width", Json.Int 8);
    ]

let select_req ?(id = "2") ?(session = "a") ?chaos () =
  let base =
    [
      ("id", Json.String id);
      ("op", Json.String "select");
      ("session", Json.String session);
    ]
  in
  let chaos_field =
    match chaos with
    | None -> []
    | Some (fail, delay) ->
        [
          ( "chaos",
            Json.Obj [ ("fail", Json.Int fail); ("delay_ms", Json.Int delay) ]
          );
        ]
  in
  req (base @ chaos_field)

let field name line =
  match Json.parse line with
  | Ok v -> Json.member name v
  | Error m -> Alcotest.failf "response is not JSON (%s): %s" m line

let str_field name line =
  match Option.bind (field name line) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "response lacks string %S: %s" name line

let int_field name line =
  match Option.bind (field name line) Json.to_int_opt with
  | Some n -> n
  | None -> Alcotest.failf "response lacks int %S: %s" name line

let check_status ~what ~status ~exit line =
  Alcotest.(check string) (what ^ " status") status (str_field "status" line);
  Alcotest.(check int) (what ^ " exit") exit (int_field "exit" line)

(* ---------- Proto ---------- *)

let test_proto_parse () =
  (match Proto.parse (select_req ~chaos:(2, 5) ()) with
  | Error m -> Alcotest.failf "select did not parse: %s" m
  | Ok r ->
      Alcotest.(check (option string)) "id" (Some "2") r.Proto.rq_id;
      Alcotest.(check (option string)) "session" (Some "a") r.Proto.rq_session;
      (match r.Proto.rq_chaos with
      | Some { Proto.c_fail; c_delay_ms; _ } ->
          Alcotest.(check int) "chaos fail" 2 c_fail;
          Alcotest.(check int) "chaos delay" 5 c_delay_ms
      | None -> Alcotest.fail "chaos field lost");
      match r.Proto.rq_op with
      | Proto.Select_op { pack; width; _ } ->
          Alcotest.(check bool) "pack defaults true" true pack;
          Alcotest.(check (option int)) "width default" None width
      | _ -> Alcotest.fail "wrong op");
  (match Proto.parse (open_req ()) with
  | Ok { Proto.rq_op = Proto.Open_session { tenant; width; spec; _ }; _ } ->
      Alcotest.(check string) "default tenant" "default" tenant;
      Alcotest.(check int) "width" 8 width;
      Alcotest.(check string) "spec carried verbatim" spec_text spec
  | Ok _ -> Alcotest.fail "wrong op"
  | Error m -> Alcotest.failf "open-session did not parse: %s" m);
  let rejected line =
    match Proto.parse line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "parsed a bad request: %s" line
  in
  rejected "not json at all";
  rejected "[1,2,3]";
  rejected "{}";
  rejected {|{"op":"no-such-op"}|};
  rejected {|{"op":"select"}|};
  (* session op without a session *)
  rejected {|{"op":"select","session":"bad/id"}|};
  rejected {|{"op":"open-session","session":"a"}|} (* missing spec *)

let test_proto_session_ids () =
  List.iter
    (fun id ->
      Alcotest.(check bool) ("valid " ^ id) true (Proto.valid_session_id id))
    [ "a"; "A-1._x"; String.make 64 'z' ];
  List.iter
    (fun id ->
      Alcotest.(check bool) ("invalid " ^ id) false (Proto.valid_session_id id))
    [ ""; "a b"; "a/b"; "a\n"; String.make 65 'z' ]

let test_proto_response () =
  let line =
    Proto.response ~id:"7" ~op:"select" Proto.Sok [ ("n", Json.Int 3) ]
  in
  Alcotest.(check string) "id echoed" "7" (str_field "id" line);
  Alcotest.(check string) "op" "select" (str_field "op" line);
  check_status ~what:"ok" ~status:"ok" ~exit:0 line;
  Alcotest.(check int) "payload" 3 (int_field "n" line);
  check_status ~what:"error" ~status:"error" ~exit:1
    (Proto.error ~op:"select" "boom");
  check_status ~what:"busy" ~status:"busy" ~exit:3 (Proto.busy ~op:"select" "full");
  check_status ~what:"degraded" ~status:"degraded" ~exit:3
    (Proto.response ~op:"mine" Proto.Sdegraded [])

(* ---------- Store ---------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "flowtrace-store" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let test_store_roundtrip () =
  with_tmpdir @@ fun dir ->
  let session =
    {
      Store.se_id = "s-1.x";
      se_tenant = "team one\\two\nthree\rfour";
      se_width = 24;
      se_strategy = Flowtrace_core.Select.Greedy;
      se_instances = [ ("F", 2); ("G", 1) ];
      se_spec = "flow F\n  # weird \\ backslash\r\nstate s stop\n";
    }
  in
  Store.save ~dir session;
  (match Store.load (Store.file_of ~dir "s-1.x") with
  | Ok (Some got, warns) ->
      Alcotest.(check bool) "no warnings" true (warns = []);
      Alcotest.(check bool) "round-trips exactly" true (got = session)
  | Ok (None, _) -> Alcotest.fail "session dropped"
  | Error _ -> Alcotest.fail "load failed");
  let sessions, diags = Store.load_all dir in
  Alcotest.(check int) "load_all finds it" 1 (List.length sessions);
  Alcotest.(check bool) "load_all clean" true (diags = []);
  Store.remove ~dir "s-1.x";
  Alcotest.(check bool)
    "removed" false
    (Sys.file_exists (Store.file_of ~dir "s-1.x"));
  let none, _ = Store.load_all (Filename.concat dir "missing") in
  Alcotest.(check int) "missing dir is empty store" 0 (List.length none)

let test_store_torn_tail_drops_session () =
  with_tmpdir @@ fun dir ->
  let session =
    {
      Store.se_id = "t";
      se_tenant = "default";
      se_width = 8;
      se_strategy = Flowtrace_core.Select.Exact;
      se_instances = [];
      se_spec = spec_text;
    }
  in
  Store.save ~dir session;
  let path = Store.file_of ~dir "t" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  (* Cut into the spec record: it is the second-to-last line, so any cut
     past the preceding lines but before its newline tears it. *)
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  let keep_lines = List.filteri (fun i _ -> i < n - 3) lines in
  let prefix = String.concat "\n" keep_lines ^ "\n" in
  let spec_line = List.nth lines (n - 3) in
  let torn = prefix ^ String.sub spec_line 0 (String.length spec_line / 2) in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc torn);
  (match Store.load path with
  | Ok (Some _, _) -> Alcotest.fail "torn session resurrected"
  | Ok (None, warns) ->
      Alcotest.(check bool) "drop carries warnings" true (warns <> [])
  | Error _ -> Alcotest.fail "torn tail must recover, not hard-fail");
  let sessions, diags = Store.load_all dir in
  Alcotest.(check int) "load_all drops it" 0 (List.length sessions);
  Alcotest.(check bool) "load_all reports it" true (diags <> [])

(* ---------- Dispatch ---------- *)

let handle t line = fst (Dispatch.handle t line)

let test_dispatch_session_lifecycle () =
  let t, diags = Dispatch.create () in
  Alcotest.(check bool) "no resume diags" true (diags = []);
  check_status ~what:"ping" ~status:"ok" ~exit:0 (handle t {|{"op":"ping"}|});
  check_status ~what:"open" ~status:"ok" ~exit:0 (handle t (open_req ()));
  check_status ~what:"duplicate open" ~status:"error" ~exit:1
    (handle t (open_req ()));
  let sel = handle t (select_req ()) in
  check_status ~what:"select" ~status:"ok" ~exit:0 sel;
  Alcotest.(check int) "select width" 8 (int_field "buffer_width" sel);
  Alcotest.(check string) "id echoed" "2" (str_field "id" sel);
  (match field "selected" sel with
  | Some (Json.List (_ :: _)) -> ()
  | _ -> Alcotest.fail "selected list missing or empty");
  let st = handle t {|{"op":"status","session":"a"}|} in
  check_status ~what:"status" ~status:"ok" ~exit:0 st;
  Alcotest.(check string) "status session" "a" (str_field "session" st);
  Alcotest.(check int) "status flows" 1 (int_field "flows" st);
  let loc =
    handle t
      (req
         [
           ("op", Json.String "localize");
           ("session", Json.String "a");
           ("trace", Json.List [ Json.String "1:m1" ]);
         ])
  in
  check_status ~what:"localize" ~status:"ok" ~exit:0 loc;
  Alcotest.(check bool)
    "localize narrows" true
    (int_field "consistent" loc <= int_field "total" loc);
  let mine =
    handle t
      (req
         [
           ("op", Json.String "mine");
           ("session", Json.String "a");
           ("trace_text", Json.String "1 F 0 m1 A B -\n2 F 0 m2 B A -\n");
         ])
  in
  check_status ~what:"mine" ~status:"ok" ~exit:0 mine;
  Alcotest.(check bool) "mine saw an episode" true (int_field "episodes" mine >= 1);
  check_status ~what:"close" ~status:"ok" ~exit:0
    (handle t {|{"op":"close","session":"a"}|});
  check_status ~what:"select after close" ~status:"error" ~exit:1
    (handle t (select_req ()));
  let _, shutdown = Dispatch.handle t {|{"op":"shutdown"}|} in
  Alcotest.(check bool) "shutdown flagged" true shutdown

let test_dispatch_errors_and_shedding () =
  let t, _ = Dispatch.create ~max_inflight:1 () in
  check_status ~what:"unknown session" ~status:"error" ~exit:1
    (handle t (select_req ~session:"ghost" ()));
  check_status ~what:"malformed line" ~status:"error" ~exit:1
    (handle t "}{ not json");
  check_status ~what:"bad spec" ~status:"error" ~exit:1
    (handle t (open_req ~session:"b" ~spec:"flow\nbroken" ()));
  (* Claim the only in-flight slot: the next session op must be shed. *)
  Alcotest.(check bool) "first admit" true (Dispatch.admit t);
  Alcotest.(check bool) "cap reached" false (Dispatch.admit t);
  check_status ~what:"busy at capacity" ~status:"busy" ~exit:3
    (handle t (open_req ~session:"c" ()));
  Dispatch.release t;
  check_status ~what:"slot freed" ~status:"ok" ~exit:0
    (handle t (open_req ~session:"c" ()));
  (* Queued-too-long shedding: a request already past its drop deadline
     is answered busy before any work runs. *)
  let shed, _ =
    Dispatch.handle ~drop_deadline:(Unix.gettimeofday () -. 1.0) t
      (select_req ~session:"c" ())
  in
  check_status ~what:"queue-grace shed" ~status:"busy" ~exit:3 shed

let test_dispatch_chaos_supervision () =
  let t, _ = Dispatch.create ~chaos:true ~retries:2 () in
  ignore (handle t (open_req ()));
  let plain = handle t (select_req ()) in
  let faulted = handle t (select_req ~chaos:(2, 0) ()) in
  Alcotest.(check string)
    "fail<=retries is byte-identical to the undisturbed run" plain faulted;
  check_status ~what:"fail>retries" ~status:"error" ~exit:1
    (handle t (select_req ~chaos:(3, 0) ()));
  check_status ~what:"recovers after exhaustion" ~status:"ok" ~exit:0
    (handle t (select_req ()));
  (* Without --chaos the field is inert: a production daemon cannot be
     fault-injected by a client. *)
  let t2, _ = Dispatch.create ~chaos:false () in
  ignore (handle t2 (open_req ()));
  check_status ~what:"chaos ignored" ~status:"ok" ~exit:0
    (handle t2 (select_req ~chaos:(99, 0) ()))

let test_dispatch_resume_bit_identical () =
  with_tmpdir @@ fun dir ->
  let t1, _ = Dispatch.create ~state_dir:dir () in
  check_status ~what:"open a" ~status:"ok" ~exit:0 (handle t1 (open_req ()));
  check_status ~what:"open b" ~status:"ok" ~exit:0
    (handle t1
       (open_req ~session:"b"
          ~spec:
            "flow G\nstate g0 init\nstate g1 stop\nmsg gm 6 from C to D\n\
             trans g0 gm g1\n"
          ()));
  let before_a = handle t1 (select_req ()) in
  let before_b = handle t1 (select_req ~session:"b" ()) in
  (* t1 is simply abandoned — the daemon it models was kill -9'd. *)
  let t2, diags = Dispatch.create ~state_dir:dir ~resume:true () in
  Alcotest.(check bool) "clean resume has no diags" true (diags = []);
  Alcotest.(check (list string))
    "sessions survive" [ "a"; "b" ] (Dispatch.session_ids t2);
  Alcotest.(check string) "a resumes bit-identically" before_a
    (handle t2 (select_req ()));
  Alcotest.(check string) "b resumes bit-identically" before_b
    (handle t2 (select_req ~session:"b" ()));
  (* Torn tail on one session file: that session is dropped with a
     diagnostic; the intact one still resumes. *)
  let path = Store.file_of ~dir "b" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let lines = String.split_on_char '\n' text in
  let n = List.length lines in
  (* keep everything before the spec record, plus half of it: the spec
     is gone, so the session must be dropped rather than resurrected *)
  let prefix =
    String.concat "\n" (List.filteri (fun i _ -> i < n - 3) lines) ^ "\n"
  in
  let spec_line = List.nth lines (n - 3) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc
        (prefix ^ String.sub spec_line 0 (String.length spec_line / 2)));
  let t3, diags = Dispatch.create ~state_dir:dir ~resume:true () in
  Alcotest.(check bool) "torn file reported" true (diags <> []);
  Alcotest.(check (list string))
    "torn session dropped" [ "a" ] (Dispatch.session_ids t3);
  Alcotest.(check string) "intact session still bit-identical" before_a
    (handle t3 (select_req ()))

module Vfs = Flowtrace_runtime.Vfs

let test_dispatch_health_and_degraded_store () =
  (* no store configured: healthy, store "none" *)
  let t0, _ = Dispatch.create () in
  let h = handle t0 {|{"op":"health"}|} in
  check_status ~what:"health without store" ~status:"ok" ~exit:0 h;
  Alcotest.(check int) "no sessions yet" 0 (int_field "sessions" h);
  Alcotest.(check string) "store none" "none" (str_field "store" h);
  (* a fault-vfs store: the disk fills, the daemon degrades instead of
     dying, the disk drains, the next save heals it *)
  let fs = Vfs.Fault.create () in
  let t, diags = Dispatch.create ~state_dir:"/state" ~vfs:(Vfs.Fault.vfs fs) () in
  Alcotest.(check bool) "clean create" true (diags = []);
  check_status ~what:"open on healthy store" ~status:"ok" ~exit:0
    (handle t (open_req ()));
  Vfs.Fault.set_disk_budget fs (Some 0);
  let resp = handle t (open_req ~id:"9" ~session:"b" ()) in
  check_status ~what:"open on a full disk" ~status:"degraded" ~exit:3 resp;
  (match field "persisted" resp with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.failf "persisted:false missing: %s" resp);
  (* the unpersisted session is held in memory and fully usable *)
  check_status ~what:"unpersisted session works" ~status:"ok" ~exit:0
    (handle t (select_req ~session:"b" ()));
  let h = handle t {|{"op":"health"}|} in
  check_status ~what:"health while degraded" ~status:"degraded" ~exit:3 h;
  Alcotest.(check string) "store degraded" "degraded" (str_field "store" h);
  Alcotest.(check int) "both sessions live" 2 (int_field "sessions" h);
  Vfs.Fault.set_disk_budget fs None;
  check_status ~what:"open after the disk drains" ~status:"ok" ~exit:0
    (handle t (open_req ~id:"10" ~session:"c" ()));
  let h = handle t {|{"op":"health"}|} in
  check_status ~what:"health healed" ~status:"ok" ~exit:0 h;
  Alcotest.(check string) "store ok again" "ok" (str_field "store" h)

let test_dispatch_chaos_enospc () =
  with_tmpdir @@ fun dir ->
  let t, _ = Dispatch.create ~state_dir:dir ~chaos:true () in
  let open_chaos =
    req
      [
        ("op", Json.String "open-session");
        ("session", Json.String "a");
        ("spec", Json.String spec_text);
        ("width", Json.Int 8);
        ("chaos", Json.Obj [ ("enospc", Json.Bool true) ]);
      ]
  in
  check_status ~what:"injected ENOSPC" ~status:"degraded" ~exit:3
    (handle t open_chaos);
  Alcotest.(check bool) "nothing persisted" false
    (Sys.file_exists (Store.file_of ~dir "a"));
  (* the injected failure is per-request: the next save succeeds and
     heals the store flag *)
  check_status ~what:"open after injection" ~status:"ok" ~exit:0
    (handle t (open_req ~id:"2" ~session:"b" ()));
  Alcotest.(check bool) "b persisted" true
    (Sys.file_exists (Store.file_of ~dir "b"));
  let h = handle t {|{"op":"health"}|} in
  check_status ~what:"healed after injection" ~status:"ok" ~exit:0 h;
  (* without --chaos the field is inert for ENOSPC too: the same request
     against a non-chaos daemon persists normally *)
  let t2, _ = Dispatch.create ~state_dir:dir ~chaos:false () in
  check_status ~what:"chaos ignored without --chaos" ~status:"ok" ~exit:0
    (handle t2 open_chaos);
  Alcotest.(check bool) "a persisted this time" true
    (Sys.file_exists (Store.file_of ~dir "a"))

let test_dispatch_resume_quarantines_corrupt () =
  with_tmpdir @@ fun dir ->
  let t1, _ = Dispatch.create ~state_dir:dir () in
  check_status ~what:"open a" ~status:"ok" ~exit:0 (handle t1 (open_req ()));
  check_status ~what:"open b" ~status:"ok" ~exit:0
    (handle t1 (open_req ~id:"2" ~session:"b" ()));
  let before_a = handle t1 (select_req ()) in
  (* b's file is destroyed wholesale (not torn — garbage), and an
     interrupted write left a temp file behind *)
  Out_channel.with_open_bin (Store.file_of ~dir "b") (fun oc ->
      Out_channel.output_string oc "total garbage\n");
  Out_channel.with_open_bin (Store.file_of ~dir "a" ^ Vfs.tmp_suffix) (fun oc ->
      Out_channel.output_string oc "x");
  let t2, diags = Dispatch.create ~state_dir:dir ~resume:true () in
  Alcotest.(check bool) "damage reported" true (diags <> []);
  Alcotest.(check (list string))
    "only the intact session resumes" [ "a" ] (Dispatch.session_ids t2);
  Alcotest.(check string) "and answers bit-identically" before_a
    (handle t2 (select_req ()));
  Alcotest.(check bool) "corrupt file quarantined, not deleted" true
    (Sys.file_exists (Store.file_of ~dir "b" ^ Store.quarantine_suffix));
  Alcotest.(check bool) "stale temp swept" false
    (Sys.file_exists (Store.file_of ~dir "a" ^ Vfs.tmp_suffix));
  let h = handle t2 {|{"op":"health"}|} in
  Alcotest.(check int) "sweep surfaced in health" 1 (int_field "stale_tmp_swept" h);
  (* repair-on-resume converges: a second resume finds nothing wrong *)
  let _t3, diags = Dispatch.create ~state_dir:dir ~resume:true () in
  Alcotest.(check bool) "second resume is clean" true (diags = [])

let test_dispatch_sharding () =
  let t, _ = Dispatch.create ~shards:4 () in
  Alcotest.(check int) "shard count" 4 (Dispatch.n_shards t);
  List.iter
    (fun id ->
      let s = Dispatch.shard_of t id in
      Alcotest.(check bool) "in range" true (s >= 0 && s < 4);
      Alcotest.(check int) "stable" s (Dispatch.shard_of t id))
    [ "a"; "b"; "tenant-17"; String.make 64 'z' ]

let () =
  Alcotest.run "service"
    [
      ( "proto",
        [
          Alcotest.test_case "parse accepts good and rejects bad lines" `Quick
            test_proto_parse;
          Alcotest.test_case "session ids are path-safe" `Quick
            test_proto_session_ids;
          Alcotest.test_case "responses mirror the exit-code convention" `Quick
            test_proto_response;
        ] );
      ( "store",
        [
          Alcotest.test_case "sessions round-trip exactly" `Quick
            test_store_roundtrip;
          Alcotest.test_case "a torn tail drops the session cleanly" `Quick
            test_store_torn_tail_drops_session;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "session lifecycle over one dispatcher" `Quick
            test_dispatch_session_lifecycle;
          Alcotest.test_case "errors and admission shedding" `Quick
            test_dispatch_errors_and_shedding;
          Alcotest.test_case "chaos faults retry to identical bytes" `Quick
            test_dispatch_chaos_supervision;
          Alcotest.test_case "resume answers bit-identically" `Quick
            test_dispatch_resume_bit_identical;
          Alcotest.test_case "health reports the store; ENOSPC degrades, then heals"
            `Quick test_dispatch_health_and_degraded_store;
          Alcotest.test_case "injected ENOSPC degrades one request only" `Quick
            test_dispatch_chaos_enospc;
          Alcotest.test_case "resume quarantines damage and sweeps temp files"
            `Quick test_dispatch_resume_quarantines_corrupt;
          Alcotest.test_case "sharding is stable and bounded" `Quick
            test_dispatch_sharding;
        ] );
    ]
