(* Tests for the flowlint static analysis: every rule code fires on a
   dedicated fixture with the expected severity and line, the shipped
   specs are clean of errors and warnings, and the JSON report
   round-trips through the diagnostics printer. *)

open Flowtrace_core
open Flowtrace_analysis

(* --- fixtures: one per rule code ----------------------------------- *)

(* (code, severity, expected line, context, fixture text) *)
let fixtures =
  let ctx = Rule.default_context in
  [
    ( "FL000",
      Diagnostic.Error,
      2,
      ctx,
      "flow f\nfrobnicate a\n" );
    ( "FL001",
      Diagnostic.Error,
      4,
      ctx,
      "flow f\nstate a init\nstate b stop\nstate a\nmsg m 1\ntrans a m b\n" );
    ( "FL002",
      Diagnostic.Error,
      5,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1\nmsg m 2\ntrans a m b\n" );
    ( "FL003",
      Diagnostic.Error,
      10,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1 from X to Y\ntrans a m b\n\n\
       flow g\nstate c init\nstate d stop\nmsg m 2 from X to Y\ntrans c m d\n" );
    ( "FL004",
      Diagnostic.Info,
      10,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1 from X to Y\ntrans a m b\n\n\
       flow g\nstate c init\nstate d stop\nmsg m 1 from X to Y\ntrans c m d\n" );
    ( "FL005",
      Diagnostic.Info,
      5,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 2 from X to Y\nmsg m2 2 from X to Y\n\
       trans a m b\ntrans b m2 b\n" );
    ( "FL006",
      Diagnostic.Info,
      9,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1\ntrans a m b\n\n\
       flow g\nstate c init\nstate a stop\nmsg n 1\ntrans c n a\n" );
    ( "FL007",
      Diagnostic.Warning,
      9,
      ctx,
      "flow f\nstate a init\nstate b\nstate c\nstate d stop\nmsg m 1\nmsg n 1\n\
       trans a m b # reported at line 9, which reuses this label\ntrans a m c\ntrans b n d\ntrans c n d\n"
    );
    ( "FL008",
      Diagnostic.Error,
      5,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1\ntrans a zap b\n" );
    ( "FL009",
      Diagnostic.Error,
      4,
      ctx,
      "flow f\nstate a init\nstate b stop\nstate orphan\nmsg m 1\ntrans a m b\n" );
    ( "FL010",
      Diagnostic.Warning,
      5,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1\nmsg unused 4 from X to Y\ntrans a m b\n" );
    ( "FL011",
      Diagnostic.Warning,
      4,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 1 from X\ntrans a m b\n" );
    ( "FL012",
      Diagnostic.Warning,
      4,
      ctx,
      "flow f\nstate a init\nstate b stop\nmsg m 200 from X to Y\ntrans a m b\n" );
    ( "FL013",
      Diagnostic.Warning,
      2,
      ctx,
      "flow f\nstate a init atomic\nstate b stop\nmsg m 1\ntrans a m b\n" );
    ( "FL014",
      Diagnostic.Warning,
      1,
      { ctx with Rule.max_states = 4 },
      "flow f\nstate a init\nstate b stop\nmsg m 1\ntrans a m b\n\n\
       flow g\nstate c init\nstate d\nstate e stop\nmsg n 1\nmsg o 1\ntrans c n d\ntrans d o e\n"
    );
    ("FL015", Diagnostic.Error, 1, ctx, "");
  ]

let find_code code diags = List.filter (fun d -> String.equal d.Diagnostic.code code) diags

let check_fixture (code, severity, line, ctx, text) =
  Alcotest.test_case code `Quick (fun () ->
      let diags = Lint.lint_string ~context:ctx ~file:"fixture.flow" text in
      match find_code code diags with
      | [] -> Alcotest.failf "expected %s to fire; got:\n%s" code (Diagnostic.render_all diags)
      | d :: _ ->
          Alcotest.(check string)
            (code ^ " severity")
            (Diagnostic.severity_to_string severity)
            (Diagnostic.severity_to_string d.Diagnostic.severity);
          Alcotest.(check int) (code ^ " line") line d.Diagnostic.span.Srcspan.line;
          Alcotest.(check string) (code ^ " file") "fixture.flow" d.Diagnostic.span.Srcspan.file)

let test_every_rule_covered () =
  let tested = List.map (fun (code, _, _, _, _) -> code) fixtures in
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool)
        (r.Rule.code ^ " has a fixture")
        true
        (List.exists (String.equal r.Rule.code) tested))
    Lint.rules;
  Alcotest.(check bool) "FL000 has a fixture" true (List.exists (String.equal Lint.parse_error_code) tested)

let test_fixture_severity_matches_rule () =
  (* fixture expectations agree with the registry's declared severities *)
  List.iter
    (fun (code, severity, _, _, _) ->
      match Lint.find_rule code with
      | None -> Alcotest.(check string) "only FL000 is unregistered" Lint.parse_error_code code
      | Some r -> Alcotest.(check bool) (code ^ " severity consistent") true (r.Rule.severity = severity))
    fixtures

(* --- shipped specs are clean --------------------------------------- *)

let spec_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "specs") then Filename.concat dir "specs"
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "specs/ directory not found" else find parent
  in
  find (Sys.getcwd ())

let test_shipped_specs_clean () =
  let files = [ "cache_coherence.flow"; "t2.flow"; "t2_ext.flow"; "usb.flow" ] in
  List.iter
    (fun file ->
      let diags = Lint.lint_file (Filename.concat spec_dir file) in
      Alcotest.(check int) (file ^ " errors") 0 (Diagnostic.count_errors diags);
      Alcotest.(check int) (file ^ " warnings") 0 (Diagnostic.count_warnings diags))
    files

let test_t2_expected_notes () =
  (* the T2 spec's two known observability caveats surface as notes *)
  let diags = Lint.lint_file (Filename.concat spec_dir "t2.flow") in
  Alcotest.(check int) "FL004 siincu sharing" 1 (List.length (find_code "FL004" diags));
  Alcotest.(check int) "FL005 piordack/mondoacknack" 1 (List.length (find_code "FL005" diags))

(* --- werror promotion ---------------------------------------------- *)

let test_werror_promotes_warnings_only () =
  let text = "flow f\nstate a init\nstate b stop\nmsg m 1 from X to Y\nmsg u 1 from X to Y\ntrans a m b\n" in
  let diags = Lint.lint_string ~file:"w.flow" text in
  let promoted = List.map Diagnostic.promote_warnings diags in
  Alcotest.(check bool) "had a warning" true (Diagnostic.count_warnings diags > 0);
  Alcotest.(check int) "no warnings left" 0 (Diagnostic.count_warnings promoted);
  Alcotest.(check int) "errors gained" (Diagnostic.count_errors diags + Diagnostic.count_warnings diags)
    (Diagnostic.count_errors promoted);
  Alcotest.(check int) "infos untouched" (Diagnostic.count_infos diags) (Diagnostic.count_infos promoted)

(* --- topology context ---------------------------------------------- *)

let test_topology_foreign_ip () =
  let text = "flow f\nstate a init\nstate b stop\nmsg m 1 from NCU to Mars\ntrans a m b\n" in
  let context = { Rule.default_context with Rule.known_ips = Some [ "NCU"; "DMU" ] } in
  let diags = Lint.lint_string ~context ~file:"topo.flow" text in
  match find_code "FL011" diags with
  | [ d ] ->
      Alcotest.(check int) "line" 4 d.Diagnostic.span.Srcspan.line;
      Alcotest.(check bool) "names the foreign IP" true
        (String.length d.Diagnostic.message > 0
        && Option.is_some (String.index_opt d.Diagnostic.message 'M'))
  | ds -> Alcotest.failf "expected exactly one FL011, got %d" (List.length ds)

(* --- JSON report round-trip ---------------------------------------- *)

let dirty_text =
  "flow f\nstate a init atomic\nstate a\nstate b stop atomic\nmsg m 200 from X to Y sub big 150\n\
   msg unused 4\ntrans a zap b\ntrans b m a\n"

let test_json_roundtrip () =
  let diags = Lint.lint_string ~file:"dirty.flow" dirty_text in
  Alcotest.(check bool) "fixture is dirty" true (List.length diags > 5);
  match Diagnostic.parse_json (Diagnostic.render_json diags) with
  | Error m -> Alcotest.failf "JSON report failed to parse back: %s" m
  | Ok diags' ->
      Alcotest.(check int) "same count" (List.length diags) (List.length diags');
      List.iter2
        (fun a b ->
          Alcotest.(check bool) (Diagnostic.render a ^ " round-trips") true (Diagnostic.equal a b))
        diags diags'

let test_json_escaping_roundtrip () =
  let d =
    Diagnostic.make ~code:"FL999" ~severity:Diagnostic.Warning ~flow:"f\"low"
      (Srcspan.make ~file:"we ird\\path.flow" ~line:3 ~col:7)
      "quotes \" backslash \\ newline \n tab \t done"
  in
  match Diagnostic.parse_json (Diagnostic.render_json [ d ]) with
  | Error m -> Alcotest.failf "escaped report failed to parse: %s" m
  | Ok [ d' ] -> Alcotest.(check bool) "escaped diagnostic round-trips" true (Diagnostic.equal d d')
  | Ok ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let test_render_points_at_line () =
  let diags = Lint.lint_string ~file:"fixture.flow" "flow f\nstate a init\nstate b stop\nmsg m 1\ntrans a zap b\n" in
  match find_code "FL008" diags with
  | d :: _ ->
      let r = Diagnostic.render d in
      Alcotest.(check bool) ("render has position: " ^ r) true
        (String.length r > 0 && String.sub r 0 (String.length "fixture.flow:5:1:") = "fixture.flow:5:1:")
  | [] -> Alcotest.fail "FL008 expected"

let () =
  Alcotest.run "lint"
    [
      ("rules fire", List.map check_fixture fixtures);
      ( "registry",
        [
          Alcotest.test_case "every rule has a fixture" `Quick test_every_rule_covered;
          Alcotest.test_case "fixture severities match registry" `Quick test_fixture_severity_matches_rule;
        ] );
      ( "shipped specs",
        [
          Alcotest.test_case "no errors or warnings" `Quick test_shipped_specs_clean;
          Alcotest.test_case "t2 expected notes" `Quick test_t2_expected_notes;
        ] );
      ( "werror",
        [ Alcotest.test_case "promotes warnings, not infos" `Quick test_werror_promotes_warnings_only ] );
      ("topology", [ Alcotest.test_case "foreign IP flagged" `Quick test_topology_foreign_ip ]);
      ( "json",
        [
          Alcotest.test_case "report round-trips" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping round-trips" `Quick test_json_escaping_roundtrip;
          Alcotest.test_case "text render has file:line:col" `Quick test_render_points_at_line;
        ] );
    ]
