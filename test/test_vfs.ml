(* Tests for the Vfs file-IO shim: the passthrough implementation must
   be byte-for-byte transparent (the production path rides on it), and
   the fault implementation must inject exactly the failures it claims —
   ENOSPC with the [e_enospc] flag, EIO at a chosen syscall, short
   writes that [write_all] absorbs, power cuts that revert to the
   durable view, and stale-temp sweeping. *)

module Vfs = Flowtrace_runtime.Vfs
module Journal = Flowtrace_runtime.Journal
module Tel = Flowtrace_telemetry.Telemetry

let seed_arb = QCheck.make (QCheck.Gen.int_bound 100_000)

let tmp_file () =
  let f = Filename.temp_file "flowtrace-vfs" ".log" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

let records_of_seed seed =
  let st = Random.State.make [| seed |] in
  let record _ =
    String.init
      (Random.State.int st 40)
      (fun _ ->
        (* printable-ish plus the escaping-sensitive characters *)
        match Random.State.int st 6 with
        | 0 -> '\\'
        | 1 -> '\t'
        | 2 -> ' '
        | _ -> Char.chr (33 + Random.State.int st 94))
  in
  List.init (Random.State.int st 12) record

(* The shim-transparency property behind the whole refactor: a journal
   written through the fault vfs with every fault disabled is
   byte-identical to one written through passthrough to a real file. *)
let prop_fault_vfs_transparent =
  QCheck.Test.make ~name:"fault vfs with no faults is byte-identical to passthrough"
    ~count:100 seed_arb (fun seed ->
      let records = records_of_seed seed in
      let path = tmp_file () in
      Journal.Log.write ~path ~kind:"vfs-test" records;
      let real = In_channel.with_open_bin path In_channel.input_all in
      let fs = Vfs.Fault.create ~seed () in
      Journal.Log.write ~vfs:(Vfs.Fault.vfs fs) ~path:"/j/x.log" ~kind:"vfs-test"
        records;
      (match Vfs.Fault.mem fs "/j/x.log" with
      | Some bytes -> bytes = real
      | None -> false)
      &&
      (* and short writes change how the bytes land, never which bytes *)
      let fs2 = Vfs.Fault.create ~seed () in
      Vfs.Fault.set_short_writes fs2 true;
      Journal.Log.write ~vfs:(Vfs.Fault.vfs fs2) ~path:"/j/x.log" ~kind:"vfs-test"
        records;
      match Vfs.Fault.mem fs2 "/j/x.log" with
      | Some bytes -> bytes = real
      | None -> false)

let test_enospc_vector () =
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.set_disk_budget fs (Some 10);
  let fd = v.Vfs.openw "/a" in
  (match Vfs.write_all v fd (String.make 32 'x') with
  | () -> Alcotest.fail "write past the budget must fail"
  | exception Vfs.Io_error e ->
      Alcotest.(check bool) "e_enospc set" true e.Vfs.e_enospc;
      Alcotest.(check string) "op" "write" e.Vfs.e_op;
      Alcotest.(check string) "path" "/a" e.Vfs.e_path);
  (* the disk filled up: a partial prefix landed, nothing more *)
  (match Vfs.Fault.mem fs "/a" with
  | Some data ->
      Alcotest.(check int) "partial write clipped at the budget" 10
        (String.length data);
      Alcotest.(check bool) "prefix of the payload" true
        (data = String.make 10 'x')
  | None -> Alcotest.fail "file vanished");
  (* freeing space makes the same write succeed *)
  v.Vfs.unlink "/a";
  let fd = v.Vfs.openw "/a" in
  Vfs.write_all v fd "12345678";
  v.Vfs.fsync fd;
  v.Vfs.close fd;
  Alcotest.(check (option string)) "fits after unlink" (Some "12345678")
    (Vfs.Fault.mem fs "/a")

let test_eio_vector () =
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.set_eio_at fs (Some 1);
  let fd = v.Vfs.openw "/a" in
  (* syscall 1 is this write *)
  (match v.Vfs.write fd "hi" 0 2 with
  | _ -> Alcotest.fail "EIO at syscall 1 must fail the write"
  | exception Vfs.Io_error e ->
      Alcotest.(check bool) "EIO is not ENOSPC" false e.Vfs.e_enospc;
      Alcotest.(check string) "message" "Input/output error" e.Vfs.e_msg);
  (* only that one syscall fails; the retry goes through *)
  Vfs.write_all v fd "hi";
  Alcotest.(check (option string)) "retry lands" (Some "hi") (Vfs.Fault.mem fs "/a")

let test_short_writes_vector () =
  let fs = Vfs.Fault.create ~seed:7 () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.set_short_writes fs true;
  let payload = String.init 200 (fun i -> Char.chr (33 + (i mod 90))) in
  let fd = v.Vfs.openw "/a" in
  (* a single raw write is genuinely short for a long payload... *)
  let n = v.Vfs.write fd payload 0 (String.length payload) in
  Alcotest.(check bool) "raw write is short" true (n < String.length payload);
  Alcotest.(check bool) "but never empty" true (n >= 1);
  (* ...and write_all loops until every byte lands *)
  v.Vfs.close fd;
  let fd = v.Vfs.openw "/a" in
  Vfs.write_all v fd payload;
  Alcotest.(check (option string)) "write_all completes" (Some payload)
    (Vfs.Fault.mem fs "/a")

let test_power_cut_reverts_to_durable () =
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.install fs ~path:"/a" "old";
  let fd = v.Vfs.openw "/a" in
  Vfs.write_all v fd "new-but-never-synced";
  Vfs.Fault.power_cut fs;
  Alcotest.(check (option string)) "unsynced data is gone" (Some "old")
    (Vfs.Fault.mem fs "/a");
  (match v.Vfs.write fd "x" 0 1 with
  | _ -> Alcotest.fail "fd must not survive a power cut"
  | exception Vfs.Io_error e ->
      Alcotest.(check string) "stale fd" "Bad file descriptor" e.Vfs.e_msg);
  (* the zero-length-file trap: rename without fsync exposes empty
     durable data, exactly like a journaling filesystem *)
  let fd = v.Vfs.openw "/b.tmp" in
  Vfs.write_all v fd "payload";
  v.Vfs.close fd;
  v.Vfs.rename "/b.tmp" "/b";
  Vfs.Fault.power_cut fs;
  Alcotest.(check (option string)) "rename without fsync = empty file" (Some "")
    (Vfs.Fault.mem fs "/b");
  (* atomic_replace fsyncs before the rename, so it never hits the trap *)
  Vfs.atomic_replace v ~path:"/c" "payload";
  Vfs.Fault.power_cut fs;
  Alcotest.(check (option string)) "atomic_replace survives the cut"
    (Some "payload") (Vfs.Fault.mem fs "/c")

let test_crash_at_boundary () =
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.install fs ~path:"/d/f" "old";
  Vfs.Fault.set_crash_at fs (Some 3);
  (* open=0 write=1 fsync=2, crash on close=3: data synced but the temp
     file still exists — recovery must sweep it *)
  (match Vfs.atomic_replace v ~path:"/d/f" "new" with
  | () -> Alcotest.fail "crash point 3 must interrupt the replace"
  | exception Vfs.Crash k -> Alcotest.(check int) "crash index" 3 k);
  Alcotest.(check (option string)) "old content durable" (Some "old")
    (Vfs.Fault.mem fs "/d/f");
  Alcotest.(check (option string)) "temp file left behind"
    (Some "new") (Vfs.Fault.mem fs ("/d/f" ^ Vfs.tmp_suffix));
  (* recovery: faults off, sweep the orphan, counted in telemetry *)
  Vfs.Fault.set_crash_at fs None;
  Tel.install Flowtrace_telemetry.Sink.null;
  let before = Tel.Counter.value (Tel.Counter.v "runtime.vfs.stale_tmp") in
  let swept = Vfs.sweep_tmp v ~dir:"/d" in
  Alcotest.(check (list string)) "swept basenames" [ "f" ^ Vfs.tmp_suffix ] swept;
  Alcotest.(check int) "stale_tmp counter bumped" (before + 1)
    (Tel.Counter.value (Tel.Counter.v "runtime.vfs.stale_tmp"));
  Alcotest.(check (option string)) "orphan gone" None
    (Vfs.Fault.mem fs ("/d/f" ^ Vfs.tmp_suffix));
  (* a crashed filesystem refuses every further op until re-armed *)
  Vfs.Fault.set_crash_at fs (Some 0);
  (match v.Vfs.exists "/d/f" with
  | _ -> Alcotest.fail "crash at 0 must fire immediately"
  | exception Vfs.Crash _ -> ());
  (match v.Vfs.exists "/d/f" with
  | _ -> Alcotest.fail "a crashed fs must stay crashed"
  | exception Vfs.Crash _ -> ())

let test_passthrough_roundtrip () =
  let v = Vfs.passthrough in
  let path = tmp_file () in
  Vfs.atomic_replace v ~path "first";
  Alcotest.(check string) "replace writes through" "first" (v.Vfs.read_file path);
  Vfs.atomic_replace v ~path "second longer content";
  Alcotest.(check string) "replace replaces" "second longer content"
    (v.Vfs.read_file path);
  Alcotest.(check bool) "exists" true (v.Vfs.exists path);
  Alcotest.(check bool) "tmp cleaned up" false (v.Vfs.exists (path ^ Vfs.tmp_suffix));
  (match v.Vfs.read_file (path ^ ".nope") with
  | _ -> Alcotest.fail "missing file must raise"
  | exception Vfs.Io_error e -> Alcotest.(check string) "op" "read" e.Vfs.e_op)

let () =
  Alcotest.run "vfs"
    [
      ( "transparency",
        [
          Alcotest.test_case "passthrough atomic_replace round-trips" `Quick
            test_passthrough_roundtrip;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_fault_vfs_transparent ] );
      ( "fault vectors",
        [
          Alcotest.test_case "ENOSPC: short-then-fail with e_enospc" `Quick
            test_enospc_vector;
          Alcotest.test_case "EIO at a chosen syscall" `Quick test_eio_vector;
          Alcotest.test_case "short writes complete under write_all" `Quick
            test_short_writes_vector;
          Alcotest.test_case "power cut reverts to the durable view" `Quick
            test_power_cut_reverts_to_durable;
          Alcotest.test_case "crash points interrupt and sweep recovers" `Quick
            test_crash_at_boundary;
        ] );
    ]
