(* Tests for the word-parallel selection kernel and the determinism
   bugfix sweep.

   The Bitset substrate is checked against a bool-array reference; the
   bitset engine is checked bit-identical to the streaming engine on the
   built-in scenarios, the stress workload and random interleavings at
   jobs 1/2/4; Indexed.hash is pinned to explicit vectors (it must not
   drift, and must separate names differing only deep in the string);
   and the candidate comparator is checked to be a strict total order —
   the epsilon tie-break it replaced was not transitive. *)

open Flowtrace_core
open Flowtrace_soc

let seed_arb = QCheck.make (QCheck.Gen.int_bound 100_000)

(* ------------------------------------------------------------------ *)
(* Bitset vs a bool-array reference *)

let prop_bitset_matches_reference =
  QCheck.Test.make ~name:"bitset = bool-array reference" ~count:200 seed_arb (fun seed ->
      let h k = Hashtbl.hash (seed, k) in
      let n = 1 + (h `n mod 200) in
      let b = Bitset.create n and r = Array.make n false in
      for i = 0 to 2 * n do
        let j = h (`set i) mod n in
        Bitset.set b j;
        r.(j) <- true
      done;
      let members_agree = ref true in
      for j = 0 to n - 1 do
        if Bitset.mem b j <> r.(j) then members_agree := false
      done;
      let ref_count = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 r in
      !members_agree && Bitset.length b = n && Bitset.popcount b = ref_count)

let prop_popcount_union_matches_reference =
  QCheck.Test.make ~name:"popcount_union = materialized union" ~count:200 seed_arb
    (fun seed ->
      let h k = Hashtbl.hash (seed, k) in
      let n = 1 + (h `n mod 150) in
      let k = h `k mod 5 in
      let sets =
        List.init k (fun s ->
            let b = Bitset.create n in
            for i = 0 to h (`fill s) mod (n + 1) do
              Bitset.set b (h (`bit (s, i)) mod n)
            done;
            b)
      in
      let into = Bitset.create n in
      List.iter (fun s -> Bitset.union_into ~into s) sets;
      Bitset.popcount_union sets = Bitset.popcount into)

let prop_popcount_word =
  QCheck.Test.make ~name:"popcount_word = naive bit count" ~count:500
    (QCheck.make (QCheck.Gen.int_bound max_int))
    (fun w ->
      let naive = ref 0 in
      for i = 0 to 62 do
        if w land (1 lsl i) <> 0 then incr naive
      done;
      Bitset.popcount_word w = !naive)

let test_bitset_range_checks () =
  let b = Bitset.create 10 in
  Alcotest.check_raises "set past the universe"
    (Invalid_argument "Bitset.set: index 10 out of [0, 10)") (fun () -> Bitset.set b 10);
  Alcotest.check_raises "mem below the universe"
    (Invalid_argument "Bitset.mem: index -1 out of [0, 10)") (fun () ->
      ignore (Bitset.mem b (-1)));
  Bitset.set b 9;
  Bitset.clear b;
  Alcotest.(check int) "clear empties" 0 (Bitset.popcount b)

(* ------------------------------------------------------------------ *)
(* Indexed.hash: pinned vectors and deep-name separation *)

(* Pinned outputs of the explicit FNV-1a mix. The previous implementation
   was the polymorphic [Hashtbl.hash], whose traversal budget stops
   reading long values; these vectors also freeze the 30-bit masking that
   keeps the value identical across word sizes. *)
let hash_vectors =
  [
    ("ReqE", 1, 0x34dd991b);
    ("GntE", 2, 0xd2e70f9);
    ("piordack", 1, 0x42f6ff);
    ("", 0, 0x117697cd);
    ("a", 65535, 0x2792c5e2);
    ("mondoacknack", 3, 0x18b83a11);
    ("token_pid_sel", 2, 0x3d86d79);
  ]

let test_hash_pinned_vectors () =
  List.iter
    (fun (base, inst, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "hash %S/%d" base inst)
        expect
        (Indexed.hash (Indexed.make base inst)))
    hash_vectors

let test_hash_separates_deep_suffixes () =
  (* names sharing a long prefix and differing only in the final char:
     the polymorphic hash collapsed whole families of these to one
     bucket; the explicit mix must keep them apart *)
  let prefix = String.make 120 'x' in
  let hashes =
    List.init 64 (fun i -> Indexed.hash (Indexed.make (prefix ^ string_of_int i) 1))
  in
  let distinct = List.sort_uniq compare hashes in
  Alcotest.(check int) "64 deep-suffix names, 64 hash values" 64 (List.length distinct)

let prop_hash_consistent_with_equal =
  QCheck.Test.make ~name:"hash consistent with equal" ~count:200 seed_arb (fun seed ->
      let h k = Hashtbl.hash (seed, k) in
      let a = Indexed.make (Printf.sprintf "m%d" (h `a mod 20)) (h `i mod 4) in
      let b = Indexed.make (Printf.sprintf "m%d" (h `b mod 20)) (h `j mod 4) in
      (not (Indexed.equal a b)) || Indexed.hash a = Indexed.hash b)

(* ------------------------------------------------------------------ *)
(* The candidate comparator is a strict total order *)

(* Build scored paths for every candidate of a small random pool. The
   comparator must order any two distinct candidates one way (totality),
   never both ways (antisymmetry), and chains must compose
   (transitivity) — the epsilon tie-break this replaced broke
   transitivity whenever two gains sat within 1e-12 of each other but a
   third straddled the band. *)
let paths_of_seed seed =
  let inter = Gen.interleaving_of_seed seed in
  let msgs = List.filteri (fun i _ -> i < 8) (Interleave.messages inter) in
  let widths = List.map Message.trace_width msgs in
  let minw = List.fold_left min max_int widths in
  let ev = Infogain.evaluator inter in
  Combination.fold_candidates msgs ~width:(minw + (seed mod 5)) ~init:[]
    ~f:(fun acc c -> List.fold_left (Select.Path.extend ev) Select.Path.empty c :: acc)

let prop_better_strict_total =
  QCheck.Test.make ~name:"Path.better is irreflexive, antisymmetric, total" ~count:40
    seed_arb
    (fun seed ->
      let paths = Array.of_list (paths_of_seed seed) in
      let n = Array.length paths in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Select.Path.better paths.(i) paths.(i) then ok := false;
        for j = i + 1 to n - 1 do
          let ab = Select.Path.better paths.(i) paths.(j)
          and ba = Select.Path.better paths.(j) paths.(i) in
          (* distinct candidates (distinct keys) must compare one way *)
          if Select.Path.key paths.(i) <> Select.Path.key paths.(j) && ab = ba then
            ok := false
        done
      done;
      !ok)

let prop_better_transitive =
  QCheck.Test.make ~name:"Path.better is transitive" ~count:25 seed_arb (fun seed ->
      let paths = Array.of_list (paths_of_seed seed) in
      let n = min 18 (Array.length paths) in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if
              Select.Path.better paths.(i) paths.(j)
              && Select.Path.better paths.(j) paths.(k)
              && not (Select.Path.better paths.(i) paths.(k))
            then ok := false
          done
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Bitset engine = streaming engine, bit for bit *)

let check_engines_identical name ?(strategy = Select.Exact) inter ~buffer_width =
  let run engine jobs =
    Select.select ~strategy ~engine ~jobs ~pack:false inter ~buffer_width
  in
  let s1 = run Select.Stream 1 in
  List.iter
    (fun jobs ->
      let b = run Select.Bitset jobs in
      Alcotest.(check (list string))
        (Printf.sprintf "%s: bitset j%d = stream" name jobs)
        (Select.selected_names s1) (Select.selected_names b);
      Alcotest.(check int64)
        (Printf.sprintf "%s: gain bits identical j%d" name jobs)
        (Int64.bits_of_float s1.Select.gain)
        (Int64.bits_of_float b.Select.gain);
      Alcotest.(check int64)
        (Printf.sprintf "%s: coverage bits identical j%d" name jobs)
        (Int64.bits_of_float s1.Select.coverage)
        (Int64.bits_of_float b.Select.coverage);
      Alcotest.(check int)
        (Printf.sprintf "%s: bits_used identical j%d" name jobs)
        s1.Select.bits_used b.Select.bits_used)
    [ 1; 2; 4 ]

let test_scenarios_engines_identical () =
  List.iter
    (fun sc ->
      let inter = Scenario.interleave sc in
      check_engines_identical sc.Scenario.name inter ~buffer_width:32;
      check_engines_identical
        (sc.Scenario.name ^ "/maximal")
        ~strategy:Select.Exact_maximal inter ~buffer_width:32)
    Scenario.all

let test_stress_engines_identical () =
  let inter = Stress.interleave () in
  check_engines_identical "stress" inter ~buffer_width:Stress.default_buffer_width

let prop_random_engines_identical =
  QCheck.Test.make ~name:"bitset = stream on random interleavings" ~count:25 seed_arb
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let widths = List.map (fun (m : Message.t) -> m.Message.width) (Interleave.messages inter) in
      let minw = List.fold_left min max_int widths in
      let buffer_width = minw + 4 in
      let strategy = if seed mod 2 = 0 then Select.Exact else Select.Exact_maximal in
      let run engine = Select.select ~strategy ~engine ~pack:false inter ~buffer_width in
      let s = run Select.Stream and b = run Select.Bitset in
      Select.selected_names s = Select.selected_names b
      && Int64.bits_of_float s.Select.gain = Int64.bits_of_float b.Select.gain
      && Int64.bits_of_float s.Select.coverage = Int64.bits_of_float b.Select.coverage)

let prop_kernel_coverage_matches_compute =
  QCheck.Test.make ~name:"Kernel.coverage = Coverage.compute" ~count:50 seed_arb
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let k = Kernel.make inter in
      let selected n = Hashtbl.hash (seed, n) mod 3 <> 0 in
      Kernel.coverage k ~selected = Coverage.compute inter ~selected)

let test_too_many_parity () =
  let inter = Stress.interleave () in
  let w = Stress.default_buffer_width in
  let raises engine =
    match Select.select ~engine ~limit:1000 ~pack:false inter ~buffer_width:w with
    | exception Combination.Too_many n -> n
    | _ -> Alcotest.fail "expected Too_many"
  in
  Alcotest.(check int) "bitset limit = stream limit" (raises Select.Stream)
    (raises Select.Bitset)

(* ------------------------------------------------------------------ *)
(* Oversized pools: forced Bitset refuses, Auto falls back *)

let big_chain_interleave () =
  let n = Kernel.max_pool + 1 in
  let state i = Printf.sprintf "s%d" i in
  let states = List.init (n + 1) state in
  let messages = List.init n (fun i -> Message.make (Printf.sprintf "bm%02d" i) 1) in
  let transitions =
    List.init n (fun i -> Flow.transition (state i) (Printf.sprintf "bm%02d" i) (state (i + 1)))
  in
  let f =
    Flow.make ~name:"big" ~states ~initial:[ state 0 ] ~stop:[ state n ] ~atomic:[]
      ~messages ~transitions ()
  in
  Interleave.make [ { Interleave.flow = f; index = 1 } ]

let test_oversized_pool () =
  let inter = big_chain_interleave () in
  (match Kernel.make inter with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Kernel.make accepted an oversized pool");
  (match Select.select ~engine:Select.Bitset ~pack:false inter ~buffer_width:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "forced Bitset accepted an oversized pool");
  (* Auto silently takes the streaming path and agrees with it *)
  let a = Select.select ~pack:false inter ~buffer_width:3 in
  let s = Select.select ~engine:Select.Stream ~pack:false inter ~buffer_width:3 in
  Alcotest.(check (list string))
    "auto = stream past max_pool" (Select.selected_names s) (Select.selected_names a)

let () =
  Alcotest.run "kernel"
    [
      ( "bitset",
        [ Alcotest.test_case "range checks" `Quick test_bitset_range_checks ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_bitset_matches_reference;
              prop_popcount_union_matches_reference;
              prop_popcount_word;
            ] );
      ( "indexed hash",
        [
          Alcotest.test_case "pinned vectors" `Quick test_hash_pinned_vectors;
          Alcotest.test_case "deep suffixes separate" `Quick test_hash_separates_deep_suffixes;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_hash_consistent_with_equal ] );
      ( "comparator",
        List.map QCheck_alcotest.to_alcotest
          [ prop_better_strict_total; prop_better_transitive ] );
      ( "engine identity",
        [
          Alcotest.test_case "scenarios: bitset = stream" `Quick
            test_scenarios_engines_identical;
          Alcotest.test_case "stress: bitset = stream" `Slow test_stress_engines_identical;
          Alcotest.test_case "Too_many parity" `Slow test_too_many_parity;
          Alcotest.test_case "oversized pool" `Quick test_oversized_pool;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_random_engines_identical; prop_kernel_coverage_matches_compute ] );
    ]
