(* flowcheck: the whole-scenario static debuggability analysis.

   Three layers of coverage:
   - fixtures: each crafted counterexample spec in checks/ (plus string
     fixtures) triggers its FC rule, and shipped specs stay clean;
   - ground truth: every static verdict is confirmed by the dynamic
     machinery it predicts — Localize for the ambiguity rules, Select for
     budget infeasibility, Interleave executions for dead monitors;
   - property: on random bundle-of-chains flow pairs, the FC010/FC011/
     FC012 verdicts coincide exactly with brute-force Interleave/Localize
     distinguishability. *)

open Flowtrace_core
open Flowtrace_analysis

let codes diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags

let has code diags = List.exists (String.equal code) (codes diags)

let checks_file name =
  let local = Filename.concat "checks" name in
  if Sys.file_exists local then local else Filename.concat (Filename.concat "test" "checks") name

let parse_checks name = Spec_parser.parse_file (checks_file name)

let t2_topo = Flowtrace_soc.Scenario.t2_topology

let all_selected = fun _ -> true

(* Indexed executions of a flow alone (instance index 1). *)
let solo_inter f = Interleave.of_flows [ f ]

let flow_named flows name = List.find (fun (f : Flow.t) -> String.equal f.Flow.name name) flows

(* Every execution of [f] is consistent (as a full observation) with some
   execution of [g] — dynamic language inclusion via Localize. *)
let dyn_subset ?semantics f g =
  let ig = solo_inter g in
  List.for_all
    (fun tr -> Localize.consistent_paths ?semantics ig ~selected:all_selected ~observed:tr > 0)
    (Interleave.executions (solo_inter f))

(* --- crafted counterexamples: static verdict + dynamic confirmation --- *)

let test_ambiguous_static () =
  let diags = Check.check_file (checks_file "ambiguous.flow") in
  Alcotest.(check bool) "FC010 fires" true (has "FC010" diags);
  Alcotest.(check int) "no errors" 0 (Diagnostic.count_errors diags)

let test_ambiguous_dynamic () =
  match parse_checks "ambiguous.flow" with
  | [ f; g ] ->
      (* flagged ambiguity => any observation of F is also a legal
         execution of G, and vice versa: localization can never separate
         them, whatever the selection *)
      Alcotest.(check bool) "L(F) within L(G)" true (dyn_subset f g);
      Alcotest.(check bool) "L(G) within L(F)" true (dyn_subset g f)
  | _ -> Alcotest.fail "ambiguous.flow should hold two flows"

let test_infeasible_static () =
  let diags = Check.check_file ~budget:32 (checks_file "infeasible.flow") in
  Alcotest.(check bool) "FC020 fires" true (has "FC020" diags);
  Alcotest.(check int) "exit 1" 1 (Diagnostic.exit_code diags)

let test_infeasible_dynamic () =
  (* flagged infeasibility => Step 1 really cannot seed a candidate set *)
  let inter = Interleave.of_flows (parse_checks "infeasible.flow") in
  Alcotest.(check bool)
    "no message fits" false
    (Packing.fits (Interleave.messages inter) ~buffer_width:32);
  match Select.select inter ~buffer_width:32 with
  | _ -> Alcotest.fail "selection should reject an infeasible width"
  | exception Invalid_argument _ -> ()

let test_deadmon_static () =
  let diags = Check.check_file ~topology:t2_topo (checks_file "deadmon.flow") in
  let dead =
    List.filter (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code "FC022") diags
  in
  Alcotest.(check bool) "FC022 fires" true (dead <> []);
  Alcotest.(check bool)
    "SIU->NCU reported dead" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         let msg = d.Diagnostic.message in
         (* substring check: the SIU->NCU channel is among the dead ones *)
         let rec find i =
           i + 8 <= String.length msg && (String.equal (String.sub msg i 8) "SIU->NCU" || find (i + 1))
         in
         find 0)
       dead)

let test_deadmon_dynamic () =
  (* flagged dead monitor => no execution ever emits a message over the
     channel, so a monitor there really records nothing *)
  let inter = Interleave.of_flows (parse_checks "deadmon.flow") in
  let rides_dead (m : Message.t) =
    String.equal m.Message.src "SIU" && String.equal m.Message.dst "NCU"
  in
  List.iter
    (fun tr ->
      List.iter
        (fun (im : Indexed.t) ->
          let m = Interleave.message_exn inter im.Indexed.base in
          Alcotest.(check bool) "no message over SIU->NCU" false (rides_dead m))
        tr)
    (Interleave.executions inter)

let test_lossfragile_static () =
  let diags = Check.check_file (checks_file "lossfragile.flow") in
  Alcotest.(check bool) "FC030 fires" true (has "FC030" diags);
  Alcotest.(check bool)
    "mark named as the fragile class" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         String.equal d.Diagnostic.code "FC030"
         &&
         let msg = d.Diagnostic.message in
         let pat = "class mark" in
         let rec find i =
           i + String.length pat <= String.length msg
           && (String.equal (String.sub msg i (String.length pat)) pat || find (i + 1))
         in
         find 0)
       diags)

let test_lossfragile_dynamic () =
  let flows = parse_checks "lossfragile.flow" in
  let f = flow_named flows "F" and g = flow_named flows "G" in
  (* distinguishable at full observation: F's trace is not an execution
     of G... *)
  Alcotest.(check bool) "distinguishable without loss" false (dyn_subset f g);
  (* ...but with the mark class dropped, every lossy observation of F is
     consistent with G and vice versa: the monitor for mark is a single
     point of failure *)
  let selected n = not (String.equal n "mark") in
  let ig = solo_inter g and i_f = solo_inter f in
  List.iter
    (fun tr ->
      let observed = Localize.project ~selected tr in
      Alcotest.(check bool)
        "lossy observation of F consistent with G" true
        (Localize.consistent_paths ig ~selected ~observed > 0))
    (Interleave.executions i_f);
  List.iter
    (fun tr ->
      let observed = Localize.project ~selected tr in
      Alcotest.(check bool)
        "lossy observation of G consistent with F" true
        (Localize.consistent_paths i_f ~selected ~observed > 0))
    (Interleave.executions ig)

let branch_spec =
  "flow B\n\
   state s init\n\
   state u\n\
   state v\n\
   state t stop\n\
   msg m 2\n\
   msg k 2\n\
   trans s m u\n\
   trans s m v\n\
   trans u k t\n\
   trans v k t\n"

let test_branch_static () =
  let diags = Check.check_string branch_spec in
  Alcotest.(check bool) "FC012 fires" true (has "FC012" diags)

let test_branch_dynamic () =
  (* flagged branch ambiguity => even the full trace leaves >= 2
     consistent paths: localization is degraded below the branch *)
  let inter = Interleave.of_flows (Spec_parser.parse_string branch_spec) in
  let tr = List.hd (Interleave.executions inter) in
  Alcotest.(check bool)
    "full observation leaves 2 paths" true
    (Localize.consistent_paths inter ~selected:all_selected ~observed:tr >= 2)

(* --- driver codes ---------------------------------------------------- *)

let test_empty_scenario () =
  let diags = Check.check_string "" in
  Alcotest.(check (list string)) "FC002 only" [ "FC002" ] (codes diags);
  Alcotest.(check int) "exit 1" 1 (Diagnostic.exit_code diags)

let test_parse_error () =
  let diags = Check.check_string "flow X\nbogus\n" in
  Alcotest.(check (list string)) "FC000 only" [ "FC000" ] (codes diags)

let test_invalid_flow () =
  let diags = Check.check_string "flow X\nstate a init\nmsg m 2\n" in
  Alcotest.(check bool) "FC001 fires" true (has "FC001" diags)

(* A flow with 2^16 paths: path enumeration must degrade (FC090, exit
   3), not hang or die. *)
let wide_flow () =
  let n = 16 in
  let states = ref [ "s0" ] and transitions = ref [] and messages = ref [] in
  for i = 0 to n - 1 do
    let a = Printf.sprintf "a%d" (i + 1) and b = Printf.sprintf "b%d" (i + 1) in
    states := b :: a :: !states;
    let mx = Printf.sprintf "x%d" i and my = Printf.sprintf "y%d" i in
    messages := Message.make my 1 :: Message.make mx 1 :: !messages;
    let srcs = if i = 0 then [ "s0" ] else [ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i ] in
    List.iter
      (fun src ->
        transitions := Flow.transition src my b :: Flow.transition src mx a :: !transitions)
      srcs
  done;
  let stop = "z" in
  states := stop :: !states;
  messages := Message.make "fin" 1 :: !messages;
  List.iter
    (fun src -> transitions := Flow.transition src "fin" stop :: !transitions)
    [ Printf.sprintf "a%d" n; Printf.sprintf "b%d" n ];
  Flow.make ~name:"WIDE" ~states:(List.rev !states) ~initial:[ "s0" ] ~stop:[ stop ]
    ~messages:(List.rev !messages) ~transitions:(List.rev !transitions) ()

let test_truncation_degrades () =
  let model = Scenario_model.of_flows ~path_limit:100 ~file:"wide" [ wide_flow () ] in
  Alcotest.(check bool) "model truncated" true (Scenario_model.truncated model);
  let diags = Check.run model in
  Alcotest.(check bool) "FC090 fires" true (has "FC090" diags);
  Alcotest.(check bool) "report degraded" true (Check.degraded diags);
  Alcotest.(check int) "exit 3" 3 (Diagnostic.exit_code ~degraded:(Check.degraded diags) diags)

(* --- shipped specs and the soc admission gate ------------------------ *)

let spec_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "specs") then Filename.concat dir "specs"
    else find (Filename.concat dir Filename.parent_dir_name)
  in
  find (Sys.getcwd ())

let test_shipped_specs_clean () =
  List.iter
    (fun (name, topology) ->
      let diags = Check.check_file ?topology ~budget:32 (Filename.concat spec_dir name) in
      Alcotest.(check int) (name ^ " errors") 0 (Diagnostic.count_errors diags);
      Alcotest.(check int) (name ^ " warnings") 0 (Diagnostic.count_warnings diags))
    [
      ("cache_coherence.flow", None);
      ("usb.flow", None);
      ("t2.flow", Some t2_topo);
      ("t2_ext.flow", Some t2_topo);
    ]

let test_t2_dead_monitor_note () =
  (* the T2 spec's one expected note: the MCU->NCU return channel carries
     no message of the five flows *)
  let diags = Check.check_file ~topology:t2_topo (Filename.concat spec_dir "t2.flow") in
  Alcotest.(check (list string)) "only the dead-monitor note" [ "FC022" ] (codes diags)

let test_admission_gate () =
  List.iter
    (fun sc ->
      let diags = Flowtrace_soc.Scenario.admission ~budget:32 sc in
      Alcotest.(check int)
        (sc.Flowtrace_soc.Scenario.name ^ " admission errors")
        0 (Diagnostic.count_errors diags);
      Alcotest.(check int)
        (sc.Flowtrace_soc.Scenario.name ^ " admission warnings")
        0
        (Diagnostic.count_warnings diags))
    Flowtrace_soc.Scenario.all

(* --- unified diagnostics --------------------------------------------- *)

let test_sort_report_deterministic () =
  let diags = Check.check_file ~topology:t2_topo (Filename.concat spec_dir "t2_ext.flow") in
  Alcotest.(check bool) "idempotent" true (List.equal Diagnostic.equal (Diagnostic.sort_report diags) diags);
  Alcotest.(check bool)
    "order independent" true
    (List.equal Diagnostic.equal (Diagnostic.sort_report (List.rev diags)) diags)

let test_severity_orders_within_line () =
  let mk code severity =
    Diagnostic.make ~code ~severity (Srcspan.make ~file:"f" ~line:3 ~col:1) "x"
  in
  let sorted =
    Diagnostic.sort_report [ mk "A3" Diagnostic.Info; mk "A1" Diagnostic.Error; mk "A2" Diagnostic.Warning ]
  in
  Alcotest.(check (list string)) "most severe first" [ "A1"; "A2"; "A3" ] (codes sorted)

let test_exit_code_convention () =
  let err = Diagnostic.make ~code:"X" ~severity:Diagnostic.Error (Srcspan.none "f") "x" in
  let warn = Diagnostic.make ~code:"Y" ~severity:Diagnostic.Warning (Srcspan.none "f") "y" in
  Alcotest.(check int) "clean" 0 (Diagnostic.exit_code []);
  Alcotest.(check int) "warnings alone pass" 0 (Diagnostic.exit_code [ warn ]);
  Alcotest.(check int) "errors fail" 1 (Diagnostic.exit_code [ err; warn ]);
  Alcotest.(check int) "werror promotes" 1
    (Diagnostic.exit_code (List.map Diagnostic.promote_warnings [ warn ]));
  Alcotest.(check int) "degraded without errors" 3 (Diagnostic.exit_code ~degraded:true [ warn ]);
  Alcotest.(check int) "errors beat degraded" 1 (Diagnostic.exit_code ~degraded:true [ err ])

let test_catalog_json () =
  match Json.parse (Check.catalog_json ()) with
  | Error m -> Alcotest.fail m
  | Ok j -> (
      match Option.bind (Json.member "rules" j) Json.to_list_opt with
      | None -> Alcotest.fail "no rules array"
      | Some items ->
          let field k item =
            match Option.bind (Json.member k item) Json.to_string_opt with
            | Some s -> s
            | None -> Alcotest.fail ("rule entry missing " ^ k)
          in
          let namespaces = List.sort_uniq String.compare (List.map (field "namespace") items) in
          Alcotest.(check (list string)) "all namespaces" [ "FC"; "FL"; "MN"; "RT" ] namespaces;
          let catalog_codes = List.map (field "code") items in
          List.iter
            (fun (r : Rule.Scenario.rule) ->
              Alcotest.(check bool)
                (r.Rule.Scenario.code ^ " listed")
                true
                (List.exists (String.equal r.Rule.Scenario.code) catalog_codes))
            Check.rules;
          List.iter
            (fun (r : Rule.t) ->
              Alcotest.(check bool)
                (r.Rule.code ^ " listed")
                true
                (List.exists (String.equal r.Rule.code) catalog_codes))
            Lint.rules)

(* every FC rule (and driver code) is exercised by some fixture above *)
let test_every_fc_rule_covered () =
  let exercised =
    [
      "FC000"; "FC001"; "FC002"; "FC010"; "FC011"; "FC012"; "FC013"; "FC020"; "FC021";
      "FC022"; "FC023"; "FC030"; "FC090";
    ]
  in
  List.iter
    (fun (r : Rule.Scenario.rule) ->
      Alcotest.(check bool)
        (r.Rule.Scenario.code ^ " exercised")
        true
        (List.exists (String.equal r.Rule.Scenario.code) exercised))
    Check.rules;
  List.iter
    (fun (c, _, _, _) ->
      Alcotest.(check bool) (c ^ " exercised") true (List.exists (String.equal c) exercised))
    Check.driver_codes

(* FC011/FC013/FC021/FC023 fixtures (string-based; the file fixtures
   above cover the other codes) *)
let test_prefix_subsumption () =
  let diags =
    Check.check_string
      "flow F\nstate a init\nstate b\nstate c stop\nmsg m 2\nmsg n 2\ntrans a m b\ntrans b n c\n\n\
       flow G\nstate p init\nstate q stop\nmsg m 2\ntrans p m q\n"
  in
  Alcotest.(check bool) "FC011 fires" true (has "FC011" diags);
  (* and the dynamic confirmation: G's observation is prefix-consistent
     with F, so mid-execution localization cannot exclude F *)
  match
    Spec_parser.parse_string
      "flow F\nstate a init\nstate b\nstate c stop\nmsg m 2\nmsg n 2\ntrans a m b\ntrans b n c\n\n\
       flow G\nstate p init\nstate q stop\nmsg m 2\ntrans p m q\n"
  with
  | [ f; g ] ->
      Alcotest.(check bool)
        "G prefix-consistent with F" true
        (dyn_subset ~semantics:Localize.Prefix g f)
  | _ -> Alcotest.fail "expected two flows"

let test_unobservable_and_unmonitorable () =
  let toy = { Scenario_model.topo_name = "toy"; topo_ips = [ "A"; "B" ]; topo_channels = [ ("A", "B") ] } in
  let diags =
    Check.check_string ~topology:toy
      "flow F\nstate a init\nstate b stop\nmsg m 2 from B to A\ntrans a m b\n"
  in
  Alcotest.(check bool) "FC013 fires" true (has "FC013" diags);
  Alcotest.(check bool) "FC023 fires" true (has "FC023" diags)

let test_trivial_budget () =
  let diags =
    Check.check_string ~budget:64 "flow F\nstate a init\nstate b stop\nmsg m 2\ntrans a m b\n"
  in
  Alcotest.(check bool) "FC021 fires" true (has "FC021" diags);
  Alcotest.(check int) "still clean" 0 (Diagnostic.exit_code diags)

(* --- property: static ambiguity = brute-force distinguishability ----- *)

(* Bundle-of-chains flows over a tiny shared alphabet, so random pairs
   actually collide: each flow is a set of chains from one initial state,
   its language exactly the chain traces. *)
let alphabet = [| "a"; "b"; "c" |]

let flow_of_traces ~name traces =
  let states = ref [ "s0" ] and transitions = ref [] and stops = ref [] in
  List.iteri
    (fun i tr ->
      let rec go j prev = function
        | [] -> stops := prev :: !stops
        | m :: rest ->
            let st = Printf.sprintf "c%d_%d" i j in
            states := st :: !states;
            transitions := Flow.transition prev m st :: !transitions;
            go (j + 1) st rest
      in
      go 0 "s0" tr)
    traces;
  let msgs = List.sort_uniq String.compare (List.concat traces) in
  Flow.make ~name ~states:(List.rev !states) ~initial:[ "s0" ]
    ~stop:(List.sort_uniq String.compare !stops)
    ~messages:(List.map (fun m -> Message.make m 2) msgs)
    ~transitions:(List.rev !transitions) ()

let chains_of_seed ~name seed =
  let rng = Rng.create seed in
  let n_chains = 1 + Rng.int rng 2 in
  let traces =
    List.init n_chains (fun _ ->
        let len = 1 + Rng.int rng 3 in
        List.init len (fun _ -> alphabet.(Rng.int rng (Array.length alphabet))))
  in
  flow_of_traces ~name traces

let pair_arb =
  QCheck.make
    ~print:(fun (a, b) ->
      Printf.sprintf "seeds (%d, %d):\n%s\n%s" a b
        (Spec_parser.print_flow (chains_of_seed ~name:"F" a))
        (Spec_parser.print_flow (chains_of_seed ~name:"G" b)))
    QCheck.Gen.(pair (int_bound 20_000) (int_bound 20_000))

let prop_ambiguity_matches_brute_force =
  QCheck.Test.make ~count:200 ~name:"FC010/FC011/FC012 = Interleave/Localize brute force"
    pair_arb (fun (sa, sb) ->
      let f = chains_of_seed ~name:"F" sa and g = chains_of_seed ~name:"G" sb in
      let diags = Check.run (Scenario_model.of_flows ~file:"prop" [ f; g ]) in
      let static_identical = has "FC010" diags in
      let static_prefix = has "FC011" diags in
      let dyn_eq = dyn_subset f g && dyn_subset g f in
      let dyn_prefix =
        dyn_subset ~semantics:Localize.Prefix f g || dyn_subset ~semantics:Localize.Prefix g f
      in
      let branch_static flow =
        List.exists
          (fun (d : Diagnostic.t) ->
            String.equal d.Diagnostic.code "FC012"
            && Option.equal String.equal d.Diagnostic.flow (Some flow.Flow.name))
          diags
      in
      let branch_dyn flow =
        let inter = solo_inter flow in
        List.exists
          (fun tr ->
            Localize.consistent_paths inter ~selected:all_selected ~observed:tr >= 2)
          (Interleave.executions inter)
      in
      Bool.equal static_identical dyn_eq
      && Bool.equal (static_identical || static_prefix) dyn_prefix
      && Bool.equal (branch_static f) (branch_dyn f)
      && Bool.equal (branch_static g) (branch_dyn g))

let () =
  Alcotest.run "check"
    [
      ( "crafted counterexamples",
        [
          Alcotest.test_case "ambiguous pair: FC010" `Quick test_ambiguous_static;
          Alcotest.test_case "ambiguous pair: Localize confirms" `Quick test_ambiguous_dynamic;
          Alcotest.test_case "infeasible budget: FC020" `Quick test_infeasible_static;
          Alcotest.test_case "infeasible budget: Select confirms" `Quick test_infeasible_dynamic;
          Alcotest.test_case "dead monitor: FC022" `Quick test_deadmon_static;
          Alcotest.test_case "dead monitor: executions confirm" `Quick test_deadmon_dynamic;
          Alcotest.test_case "loss-fragile: FC030" `Quick test_lossfragile_static;
          Alcotest.test_case "loss-fragile: Localize confirms" `Quick test_lossfragile_dynamic;
          Alcotest.test_case "branch ambiguity: FC012" `Quick test_branch_static;
          Alcotest.test_case "branch ambiguity: Localize confirms" `Quick test_branch_dynamic;
          Alcotest.test_case "prefix subsumption: FC011 + Localize" `Quick test_prefix_subsumption;
          Alcotest.test_case "unobservable flow: FC013/FC023" `Quick test_unobservable_and_unmonitorable;
          Alcotest.test_case "trivial budget: FC021" `Quick test_trivial_budget;
        ] );
      ( "driver",
        [
          Alcotest.test_case "empty scenario: FC002" `Quick test_empty_scenario;
          Alcotest.test_case "parse error: FC000" `Quick test_parse_error;
          Alcotest.test_case "invalid flow: FC001" `Quick test_invalid_flow;
          Alcotest.test_case "truncation degrades: FC090, exit 3" `Quick test_truncation_degrades;
          Alcotest.test_case "every FC code exercised" `Quick test_every_fc_rule_covered;
        ] );
      ( "shipped specs",
        [
          Alcotest.test_case "check-clean under T2" `Quick test_shipped_specs_clean;
          Alcotest.test_case "t2 expected dead-monitor note" `Quick test_t2_dead_monitor_note;
          Alcotest.test_case "soc admission gate" `Quick test_admission_gate;
        ] );
      ( "unified diagnostics",
        [
          Alcotest.test_case "sort_report deterministic" `Quick test_sort_report_deterministic;
          Alcotest.test_case "severity orders within a line" `Quick test_severity_orders_within_line;
          Alcotest.test_case "exit-code convention" `Quick test_exit_code_convention;
          Alcotest.test_case "cross-namespace catalog JSON" `Quick test_catalog_json;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_ambiguity_matches_brute_force ] );
    ]
