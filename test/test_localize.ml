(* Tests for path localization (Section 5.2). *)

open Flowtrace_core

let test_empty_observation_nothing_selected () =
  (* Nothing traced: every path is consistent with the empty observation. *)
  let inter = Toy.two_instances () in
  Alcotest.(check int) "all paths" (Interleave.total_paths inter)
    (Localize.consistent_paths inter ~selected:(fun _ -> false) ~observed:[])

let test_full_trace_unique () =
  (* Tracing everything and observing a complete trace pins one path when
     edge labels are unambiguous. *)
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 5) inter in
  Alcotest.(check int) "unique" 1
    (Localize.consistent_paths inter ~selected:(fun _ -> true) ~observed:path.Execution.trace)

let test_impossible_observation () =
  let inter = Toy.two_instances () in
  let obs = [ Indexed.make "Ack" 1; Indexed.make "ReqE" 1 ] in
  (* Ack before ReqE for the same instance cannot happen *)
  Alcotest.(check int) "impossible" 0
    (Localize.consistent_paths inter ~selected:(fun _ -> true) ~observed:obs)

let test_fraction_bounds () =
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 11) inter in
  let sel b = b = "ReqE" in
  let obs = Execution.project ~selected:sel path.Execution.trace in
  let f = Localize.fraction inter ~selected:sel ~observed:obs in
  Alcotest.(check bool) "0 < f <= 1" true (f > 0.0 && f <= 1.0)

let test_prefix_at_least_exact () =
  let inter = Toy.two_instances () in
  let sel b = b = "ReqE" || b = "GntE" in
  let obs = [ Indexed.make "ReqE" 1; Indexed.make "GntE" 1 ] in
  let exact = Localize.consistent_paths ~semantics:Localize.Exact inter ~selected:sel ~observed:obs in
  let prefix = Localize.consistent_paths ~semantics:Localize.Prefix inter ~selected:sel ~observed:obs in
  Alcotest.(check bool) "prefix >= exact" true (prefix >= exact)

let test_more_messages_localize_better () =
  (* Observing through a larger selected set can only reduce (or keep) the
     number of consistent paths, given observations projected from the same
     ground-truth execution. *)
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 23) inter in
  let small b = b = "ReqE" in
  let big b = b = "ReqE" || b = "GntE" in
  let c sel = Localize.consistent_paths inter ~selected:sel
      ~observed:(Execution.project ~selected:sel path.Execution.trace)
  in
  Alcotest.(check bool) "finer observation" true (c big <= c small)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_projected_trace_is_consistent =
  QCheck.Test.make ~name:"projection of a real execution is always consistent" ~count:80
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let rng = Rng.create (seed + 3) in
      let names =
        List.filter_map
          (fun (m : Message.t) -> if Rng.bool rng then Some m.Message.name else None)
          (Interleave.messages inter)
      in
      let sel b = List.mem b names in
      let obs = Execution.project ~selected:sel path.Execution.trace in
      Localize.consistent_paths inter ~selected:sel ~observed:obs >= 1)

let prop_fraction_never_exceeds_one =
  QCheck.Test.make ~name:"localization fraction is in [0,1]" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel _ = true in
      let f = Localize.fraction inter ~selected:sel ~observed:path.Execution.trace in
      f >= 0.0 && f <= 1.0)

let prop_exact_consistent_counts_paths =
  QCheck.Test.make ~name:"sum of exact counts over enumerated projections = total paths" ~count:25
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      (* Partition property: every execution projects to exactly one
         observation, so summing consistent path counts over the distinct
         projections of all executions recovers the total path count. *)
      let inter = Gen.interleaving_of_seed seed in
      if Interleave.total_paths inter > 2000 then true
      else begin
        let sel b = String.length b mod 2 = 0 in
        let traces = Execution.enumerate ~limit:5000 inter in
        let projections =
          List.sort_uniq compare (List.map (Execution.project ~selected:sel) traces)
        in
        let total =
          List.fold_left
            (fun acc obs -> acc + Localize.consistent_paths inter ~selected:sel ~observed:obs)
            0 projections
        in
        total = Interleave.total_paths inter
      end)


(* ------------------------------------------------------------------ *)
(* Suffix semantics: the wrapped trace buffer *)

let test_suffix_full_observation () =
  (* a complete observation is its own suffix: counts match Exact *)
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 9) inter in
  let sel _ = true in
  Alcotest.(check int) "suffix = exact on full trace"
    (Localize.consistent_paths ~semantics:Localize.Exact inter ~selected:sel
       ~observed:path.Execution.trace)
    (Localize.consistent_paths ~semantics:Localize.Suffix inter ~selected:sel
       ~observed:path.Execution.trace)

let test_suffix_empty_observation () =
  (* a buffer that wrapped away everything carries no information *)
  let inter = Toy.two_instances () in
  Alcotest.(check int) "all paths" (Interleave.total_paths inter)
    (Localize.consistent_paths ~semantics:Localize.Suffix inter ~selected:(fun _ -> true)
       ~observed:[])

let test_suffix_tail_of_projection () =
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 31) inter in
  let sel b = b = "ReqE" || b = "Ack" in
  let proj = Execution.project ~selected:sel path.Execution.trace in
  (* drop the first entries, as wrap-around would *)
  let tail = match proj with _ :: _ :: rest -> rest | l -> l in
  let n = Localize.consistent_paths ~semantics:Localize.Suffix inter ~selected:sel ~observed:tail in
  Alcotest.(check bool) "ground truth consistent" true (n >= 1)

let prop_suffix_at_least_exact =
  QCheck.Test.make ~name:"suffix count >= exact count" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel b = String.length b mod 2 = 1 in
      let obs = Execution.project ~selected:sel path.Execution.trace in
      let c s = Localize.consistent_paths ~semantics:s inter ~selected:sel ~observed:obs in
      c Localize.Suffix >= c Localize.Exact)

let prop_suffix_tail_consistent =
  QCheck.Test.make ~name:"wrapped observation keeps ground truth consistent" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel _ = true in
      let proj = Execution.project ~selected:sel path.Execution.trace in
      let tail = match proj with _ :: rest -> rest | [] -> [] in
      Localize.consistent_paths ~semantics:Localize.Suffix inter ~selected:sel ~observed:tail >= 1)

(* ------------------------------------------------------------------ *)
(* Lossy (gap-tolerant) localization *)

(* drop [d] observation entries at seeded positions *)
let drop_some ~seed ~d obs =
  let rng = Rng.create seed in
  let n = List.length obs in
  let victims = ref [] in
  let remaining = ref d in
  while !remaining > 0 && List.length !victims < n do
    let i = Rng.int rng (max 1 n) in
    if not (List.mem i !victims) then begin
      victims := i :: !victims;
      decr remaining
    end
  done;
  List.filteri (fun i _ -> not (List.mem i !victims)) obs

let test_lossy_budget_zero_is_exact () =
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 5) inter in
  let sel b = b = "ReqE" || b = "Ack" in
  let obs = Execution.project ~selected:sel path.Execution.trace in
  let r = Localize.lossy ~skip_budget:0 inter ~selected:sel ~observed:obs in
  Alcotest.(check int) "consistent = exact"
    (Localize.consistent_paths ~semantics:Localize.Exact inter ~selected:sel ~observed:obs)
    r.Localize.lr_consistent;
  Alcotest.(check int) "no discards" 0 r.Localize.lr_discarded;
  Alcotest.(check int) "no skips" 0 r.Localize.lr_skips;
  Alcotest.(check (float 1e-9)) "full confidence" 1.0 r.Localize.lr_confidence

let test_lossy_recovers_from_bogus_entry () =
  (* an entry no execution can ever emit forces a resync discard *)
  let inter = Toy.two_instances () in
  let path = Execution.random ~rng:(Rng.create 7) inter in
  let sel _ = true in
  let obs = Execution.project ~selected:sel path.Execution.trace in
  let poisoned = Indexed.make "NoSuchMsg" 9 :: obs in
  let r0 = Localize.lossy ~skip_budget:0 inter ~selected:sel ~observed:poisoned in
  Alcotest.(check int) "budget 0 cannot explain it" 0 r0.Localize.lr_consistent;
  let r = Localize.lossy ~skip_budget:2 inter ~selected:sel ~observed:poisoned in
  Alcotest.(check int) "exactly one resync discard" 1 r.Localize.lr_discarded;
  Alcotest.(check bool) "ground truth recovered" true (r.Localize.lr_consistent >= 1);
  Alcotest.(check bool) "confidence reduced" true (r.Localize.lr_confidence < 1.0)

let test_lossy_rejects_suffix_and_negative_budget () =
  let inter = Toy.two_instances () in
  (match Localize.lossy ~semantics:Localize.Suffix inter ~selected:(fun _ -> true) ~observed:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for Suffix");
  match Localize.lossy ~skip_budget:(-1) inter ~selected:(fun _ -> true) ~observed:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for negative budget"

let prop_lossy_budget_zero_matches_strict =
  QCheck.Test.make ~name:"lossy with budget 0 = strict count (Exact and Prefix)" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel b = String.length b mod 2 = 0 in
      let obs = Execution.project ~selected:sel path.Execution.trace in
      List.for_all
        (fun sem ->
          let r = Localize.lossy ~semantics:sem ~skip_budget:0 inter ~selected:sel ~observed:obs in
          r.Localize.lr_consistent
          = Localize.consistent_paths ~semantics:sem inter ~selected:sel ~observed:obs)
        [ Localize.Exact; Localize.Prefix ])

let prop_lossy_survives_drops =
  QCheck.Test.make ~name:"budget >= losses keeps the true path consistent" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel _ = true in
      let obs = Execution.project ~selected:sel path.Execution.trace in
      let d = min 3 (List.length obs) in
      let lossy_obs = drop_some ~seed:(seed + 1) ~d obs in
      let r = Localize.lossy ~skip_budget:d inter ~selected:sel ~observed:lossy_obs in
      r.Localize.lr_consistent >= 1)

let prop_lossy_monotone_in_budget =
  QCheck.Test.make ~name:"consistent count is monotone in the skip budget" ~count:40
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel b = String.length b mod 2 = 1 in
      let obs = drop_some ~seed:(seed + 2) ~d:2 (Execution.project ~selected:sel path.Execution.trace) in
      let c k =
        (Localize.lossy ~skip_budget:k inter ~selected:sel ~observed:obs).Localize.lr_consistent
      in
      c 0 <= c 1 && c 1 <= c 2 && c 2 <= c 4)

let prop_lossy_report_bounds =
  QCheck.Test.make ~name:"lossy fraction and confidence stay in [0,1]" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let path = Execution.random ~rng:(Rng.create seed) inter in
      let sel _ = true in
      let obs = drop_some ~seed:(seed + 3) ~d:2 (Execution.project ~selected:sel path.Execution.trace) in
      let r = Localize.lossy ~skip_budget:3 inter ~selected:sel ~observed:obs in
      let f = Localize.lossy_fraction r in
      f >= 0.0 && f <= 1.0 && r.Localize.lr_confidence >= 0.0 && r.Localize.lr_confidence <= 1.0
      && r.Localize.lr_discarded + r.Localize.lr_skips <= r.Localize.lr_budget + List.length obs)

let () =
  Alcotest.run "localize"
    [
      ( "unit",
        [
          Alcotest.test_case "empty observation" `Quick test_empty_observation_nothing_selected;
          Alcotest.test_case "full trace unique" `Quick test_full_trace_unique;
          Alcotest.test_case "impossible observation" `Quick test_impossible_observation;
          Alcotest.test_case "fraction bounds" `Quick test_fraction_bounds;
          Alcotest.test_case "prefix >= exact" `Quick test_prefix_at_least_exact;
          Alcotest.test_case "finer observation localizes better" `Quick
            test_more_messages_localize_better;
        ] );
      ( "suffix",
        [
          Alcotest.test_case "full observation" `Quick test_suffix_full_observation;
          Alcotest.test_case "empty observation" `Quick test_suffix_empty_observation;
          Alcotest.test_case "tail of projection" `Quick test_suffix_tail_of_projection;
        ] );
      ( "lossy",
        [
          Alcotest.test_case "budget 0 = exact" `Quick test_lossy_budget_zero_is_exact;
          Alcotest.test_case "resync past bogus entry" `Quick test_lossy_recovers_from_bogus_entry;
          Alcotest.test_case "rejects Suffix and negative budget" `Quick
            test_lossy_rejects_suffix_and_negative_budget;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_projected_trace_is_consistent;
            prop_fraction_never_exceeds_one;
            prop_exact_consistent_counts_paths;
            prop_suffix_at_least_exact;
            prop_suffix_tail_consistent;
            prop_lossy_budget_zero_matches_strict;
            prop_lossy_survives_drops;
            prop_lossy_monotone_in_budget;
            prop_lossy_report_bounds;
          ] );
    ]
