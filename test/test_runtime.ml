(* Tests for the lib/runtime supervision layer.

   The determinism contract is the heart of it: supervised runs — with
   retries, kills, resumes and any job count — must be bit-identical to
   the plain single-walk engine whenever they complete. Degradation
   (deadline, candidate cap, permanently failing tasks) must keep the
   best-so-far instead of losing the run, and the checkpoint journal must
   survive truncation while refusing silent corruption. *)

open Flowtrace_core
open Flowtrace_soc
module Diag = Flowtrace_analysis.Diagnostic
module Journal = Flowtrace_runtime.Journal
module Engine = Flowtrace_runtime.Engine
module Crc32 = Flowtrace_runtime.Crc32

let seed_arb = QCheck.make (QCheck.Gen.int_bound 100_000)

let codes ds = List.map (fun (d : Diag.t) -> d.Diag.code) ds

let tmp_journal () =
  let f = Filename.temp_file "flowtrace-test" ".ckpt" in
  at_exit (fun () -> try Sys.remove f with Sys_error _ -> ());
  f

(* ------------------------------------------------------------------ *)
(* Journal round-trip and corruption *)

let snapshot_of_seed seed =
  let st = Random.State.make [| seed |] in
  let total = Random.State.int st 50 in
  let done_ = Array.init total (fun _ -> Random.State.bool st) in
  let best =
    if total > 0 && Random.State.bool st then
      Some
        {
          Journal.b_names =
            List.init
              (1 + Random.State.int st 5)
              (fun i -> Printf.sprintf "msg%d_%d" i (Random.State.int st 100));
          b_gain = Random.State.int64 st Int64.max_int;
          b_bits = Random.State.int st 64;
        }
    else None
  in
  let task_bests =
    Array.to_list done_
    |> List.mapi (fun id d -> (id, d))
    |> List.filter_map (fun (id, d) ->
           if d && Random.State.bool st then
             Some
               ( id,
                 {
                   Journal.b_names =
                     List.init
                       (1 + Random.State.int st 3)
                       (fun i -> Printf.sprintf "tb%d_%d" i (Random.State.int st 100));
                   b_gain = Random.State.int64 st Int64.max_int;
                   b_bits = Random.State.int st 64;
                 } )
           else None)
  in
  {
    Journal.s_fingerprint = Printf.sprintf "%016x" (Random.State.int st 0x3FFFFFFF);
    s_total_tasks = total;
    s_done = done_;
    s_best = best;
    s_task_bests = task_bests;
    s_explored = Random.State.int st 1_000_000;
  }

let prop_journal_roundtrip =
  QCheck.Test.make ~name:"journal round-trips bit-exactly" ~count:100 seed_arb (fun seed ->
      let snap = snapshot_of_seed seed in
      let path = tmp_journal () in
      Journal.write ~path snap;
      match Journal.load path with
      | Error ds -> QCheck.Test.fail_reportf "load failed: %s" (Diag.render_all ds)
      | Ok (got, warnings) ->
          warnings = []
          && got.Journal.s_fingerprint = snap.Journal.s_fingerprint
          && got.Journal.s_total_tasks = snap.Journal.s_total_tasks
          && got.Journal.s_done = snap.Journal.s_done
          && got.Journal.s_best = snap.Journal.s_best
          && got.Journal.s_task_bests = snap.Journal.s_task_bests
          && got.Journal.s_explored = snap.Journal.s_explored)

(* Chopping any amount off the end must either still load completely or
   recover a prefix with an RT006 warning: never a hard error, and the
   recovered done-set must be a subset of the original (a resumed run then
   simply re-runs the lost tasks). *)
let prop_journal_truncation_recovers =
  QCheck.Test.make ~name:"truncated tail recovers a valid prefix (RT006)" ~count:100 seed_arb
    (fun seed ->
      let snap = snapshot_of_seed seed in
      let path = tmp_journal () in
      Journal.write ~path snap;
      let full = In_channel.with_open_bin path In_channel.input_all in
      let st = Random.State.make [| seed + 1 |] in
      let keep = Random.State.int st (String.length full) in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub full 0 keep));
      if keep <= String.index full '\n' then
        (* the header itself was cut: a hard RT002 is fine, and so is a
           parseable-but-shorter header (e.g. "tasks=30" cut to
           "tasks=3") — the engine's fingerprint/task-count check (RT004)
           refuses to resume from it either way *)
        match Journal.load path with Error ds -> codes ds = [ "RT002" ] | Ok _ -> true
      else
        match Journal.load path with
        | Error ds -> QCheck.Test.fail_reportf "hard error: %s" (Diag.render_all ds)
        | Ok (got, warnings) ->
            let subset =
              got.Journal.s_total_tasks = snap.Journal.s_total_tasks
              && Array.for_all2
                   (fun g s -> (not g) || s)
                   got.Journal.s_done snap.Journal.s_done
            in
            let warned_iff_cut =
              if keep = String.length full then warnings = []
              else List.for_all (fun c -> c = "RT006") (codes warnings)
            in
            subset && warned_iff_cut)

let write_lines path lines =
  Out_channel.with_open_bin path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        lines)

let test_journal_bitflip_is_error () =
  let snap =
    {
      Journal.s_fingerprint = "0123456789abcdef";
      s_total_tasks = 8;
      s_done = Array.init 8 (fun i -> i < 5);
      s_best = Some { Journal.b_names = [ "a"; "b" ]; b_gain = 4614256656552045848L; b_bits = 7 };
      s_task_bests = [];
      s_explored = 123;
    }
  in
  let path = tmp_journal () in
  Journal.write ~path snap;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let lines = String.split_on_char '\n' full in
  (* flip one character inside the payload of a mid-file record (line 3,
     a "d" record): its CRC no longer matches *)
  let flipped =
    List.mapi
      (fun i l ->
        if i = 2 then String.mapi (fun j c -> if j = 9 then (if c = 'd' then 'e' else 'd') else c) l
        else l)
      lines
  in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.concat "\n" flipped));
  match Journal.load path with
  | Error ds -> Alcotest.(check (list string)) "RT005 on mid-file damage" [ "RT005" ] (codes ds)
  | Ok _ -> Alcotest.fail "bit-flipped journal loaded"

let test_journal_wrong_version () =
  let path = tmp_journal () in
  write_lines path [ "flowtrace-journal v9 fp=0123456789abcdef tasks=4" ];
  match Journal.load path with
  | Error ds -> Alcotest.(check (list string)) "RT003" [ "RT003" ] (codes ds)
  | Ok _ -> Alcotest.fail "future-version journal loaded"

let test_journal_not_a_journal () =
  let path = tmp_journal () in
  write_lines path [ "just some text"; "more text" ];
  match Journal.load path with
  | Error ds -> Alcotest.(check (list string)) "RT002" [ "RT002" ] (codes ds)
  | Ok _ -> Alcotest.fail "garbage loaded as a journal"

let test_journal_unreadable () =
  match Journal.load "/nonexistent/dir/j.ckpt" with
  | Error ds -> Alcotest.(check (list string)) "RT001" [ "RT001" ] (codes ds)
  | Ok _ -> Alcotest.fail "nonexistent journal loaded"

let test_journal_broken_seal () =
  let snap =
    {
      Journal.s_fingerprint = "0123456789abcdef";
      s_total_tasks = 4;
      s_done = [| true; true; false; false |];
      s_best = None;
      s_task_bests = [];
      s_explored = 9;
    }
  in
  let path = tmp_journal () in
  Journal.write ~path snap;
  let full = In_channel.with_open_bin path In_channel.input_all in
  (* drop one "d" record but keep the (now lying) end record: count check *)
  let lines = List.filter (fun l -> l = "" || not (String.length l > 10 && l.[9] = 'd' && l.[11] = '1')) (String.split_on_char '\n' full) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.concat "\n" lines));
  match Journal.load path with
  | Error ds -> Alcotest.(check (list string)) "RT007" [ "RT007" ] (codes ds)
  | Ok _ -> Alcotest.fail "journal with a lying end record loaded"

(* ------------------------------------------------------------------ *)
(* Supervised runs vs the plain engine *)

let outcome_ok = function
  | Ok o -> o
  | Error ds -> Alcotest.fail ("engine rejected: " ^ Diag.render_all ds)

let check_same name (plain : Select.result) (o : Engine.outcome) =
  Alcotest.(check (list string))
    (name ^ ": same selection")
    (Select.selected_names plain)
    (Select.selected_names o.Engine.o_result);
  Alcotest.(check (float 0.0)) (name ^ ": gain bit-identical") plain.Select.gain
    o.Engine.o_result.Select.gain

let test_supervised_equals_plain () =
  List.iter
    (fun sc ->
      let inter = Scenario.interleave sc in
      let plain = Select.select ~pack:false inter ~buffer_width:32 in
      List.iter
        (fun jobs ->
          let o =
            outcome_ok (Engine.select ~jobs ~pack:false inter ~buffer_width:32)
          in
          check_same (Printf.sprintf "%s jobs=%d" sc.Scenario.name jobs) plain o;
          Alcotest.(check bool)
            (sc.Scenario.name ^ ": complete")
            true
            (o.Engine.o_status = Engine.Complete))
        [ 1; 2; 4 ])
    Scenario.all

(* Transient faults: the first attempt of every third task dies. The
   supervisor retries; because task bodies are transactional the final
   answer is bit-identical to an unfaulted run. *)
let test_transient_faults_bit_identical () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let plain = Select.select ~pack:false inter ~buffer_width:32 in
  List.iter
    (fun jobs ->
      let inject ~task ~attempt = if task mod 3 = 0 && attempt = 1 then failwith "transient" in
      let o =
        outcome_ok (Engine.select ~jobs ~pack:false ~inject inter ~buffer_width:32)
      in
      check_same (Printf.sprintf "faulted jobs=%d" jobs) plain o;
      Alcotest.(check bool) "retries happened" true (o.Engine.o_retries > 0);
      Alcotest.(check bool) "still complete" true (o.Engine.o_status = Engine.Complete);
      Alcotest.(check (list int)) "no permanent failures" [] o.Engine.o_failed_tasks)
    [ 1; 2; 4 ]

(* Permanent fault: one task dies on every attempt. The run degrades to
   Partial, names the task, and its siblings' results survive — verified
   against a by-hand fold over every task except the poisoned one. *)
let test_permanent_fault_keeps_siblings () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let buffer_width = 32 in
  let pool = Interleave.messages inter in
  let plan = Combination.plan pool ~width:buffer_width in
  let ntasks = Combination.n_tasks plan in
  Alcotest.(check bool) "scenario splits into several tasks" true (ntasks > 1);
  let poisoned = ntasks / 2 in
  let inject ~task ~attempt:_ = if task = poisoned then failwith "permanent" in
  List.iter
    (fun jobs ->
      let o =
        outcome_ok (Engine.select ~jobs ~pack:false ~inject inter ~buffer_width)
      in
      Alcotest.(check bool) "partial" true (o.Engine.o_status = Engine.Partial);
      Alcotest.(check (list int)) "failed task named" [ poisoned ] o.Engine.o_failed_tasks;
      Alcotest.(check int) "siblings all done" (ntasks - 1) o.Engine.o_done_tasks;
      (* reference: fold every healthy task directly *)
      let ev = Infogain.evaluator inter in
      let best = ref None in
      for t = 0 to ntasks - 1 do
        if t <> poisoned then
          best :=
            Combination.fold_task plan t ~only_maximal:false
              ~tick:(fun () -> ())
              ~take:(Select.Path.extend ev) ~path:Select.Path.empty
              ~leaf:(fun acc p -> Select.Path.merge acc (Some p))
              ~init:!best
      done;
      match !best with
      | None -> Alcotest.fail "reference fold found no candidate"
      | Some p ->
          Alcotest.(check (float 0.0))
            "best over healthy tasks" (Select.Path.gain p) o.Engine.o_result.Select.gain)
    [ 1; 2; 4 ]

(* Kill/resume determinism: stop a checkpointed run early with a candidate
   cap, then resume without budgets — the finished answer must be
   bit-identical to an uninterrupted run, at any job count. *)
let test_resume_bit_identical () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let plain = Select.select ~pack:false inter ~buffer_width:32 in
  List.iter
    (fun jobs ->
      let path = tmp_journal () in
      let first =
        outcome_ok
          (Engine.select ~jobs ~pack:false ~checkpoint:path ~max_candidates:40 inter
             ~buffer_width:32)
      in
      Alcotest.(check bool) "first run is partial" true
        (first.Engine.o_status = Engine.Partial);
      let resumed =
        outcome_ok
          (Engine.select ~jobs ~pack:false ~checkpoint:path ~resume:true inter ~buffer_width:32)
      in
      Alcotest.(check bool) "resumed run completes" true
        (resumed.Engine.o_status = Engine.Complete);
      Alcotest.(check bool) "tasks were resumed" true (resumed.Engine.o_resumed_tasks > 0);
      check_same (Printf.sprintf "resume jobs=%d" jobs) plain resumed;
      (* resuming a finished journal is a no-op that returns the answer *)
      let again =
        outcome_ok
          (Engine.select ~jobs ~pack:false ~checkpoint:path ~resume:true inter ~buffer_width:32)
      in
      check_same "re-resume" plain again;
      Alcotest.(check int) "nothing left to run" 0
        (again.Engine.o_done_tasks - again.Engine.o_resumed_tasks))
    [ 1; 2; 4 ]

let test_resume_rejects_other_run () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let path = tmp_journal () in
  ignore
    (outcome_ok (Engine.select ~pack:false ~checkpoint:path ~max_candidates:40 inter
         ~buffer_width:32));
  match Engine.select ~pack:false ~checkpoint:path ~resume:true inter ~buffer_width:16 with
  | Error ds -> Alcotest.(check (list string)) "RT004" [ "RT004" ] (codes ds)
  | Ok _ -> Alcotest.fail "journal accepted for a different buffer width"

let test_expired_deadline_greedy_fallback () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let o =
    outcome_ok
      (Engine.select ~pack:false
         ~deadline:(Unix.gettimeofday () -. 1.0)
         inter ~buffer_width:32)
  in
  Alcotest.(check bool) "partial" true (o.Engine.o_status = Engine.Partial);
  (match o.Engine.o_result.Select.tier with
  | Select.Tier.Greedy_fallback -> ()
  | t -> Alcotest.fail ("expected greedy fallback, got " ^ Select.Tier.to_string t));
  let combo = Select.greedy inter ~buffer_width:32 in
  Alcotest.(check (float 0.0))
    "greedy gain"
    (Infogain.of_combination inter combo)
    o.Engine.o_result.Select.gain

let test_core_max_candidates_anytime () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let r = Select.select ~pack:false ~max_candidates:10 inter ~buffer_width:32 in
  match r.Select.tier with
  | Select.Tier.Anytime { explored; _ } ->
      Alcotest.(check bool) "explored within cap" true (explored <= 10)
  | t -> Alcotest.fail ("expected anytime, got " ^ Select.Tier.to_string t)

(* An unexpired budget must not change the answer: same walk, same ticks,
   same unique best. *)
let prop_unexpired_budget_identical =
  QCheck.Test.make ~name:"budgeted-but-unexpired select is bit-identical" ~count:20 seed_arb
    (fun seed ->
      let inter = Gen.interleaving_of_seed seed in
      let widths = List.map (fun (m : Message.t) -> m.Message.width) (Interleave.messages inter) in
      let minw = List.fold_left min max_int widths in
      let buffer_width = minw + 4 in
      let plain = Select.select ~pack:false inter ~buffer_width in
      let budgeted =
        Select.select ~pack:false
          ~deadline:(Unix.gettimeofday () +. 3600.0)
          ~max_candidates:max_int inter ~buffer_width
      in
      Select.selected_names plain = Select.selected_names budgeted
      && plain.Select.gain = budgeted.Select.gain
      && budgeted.Select.tier = Select.Tier.Exact)

(* ------------------------------------------------------------------ *)
(* CRC32 and trace-buffer guards *)

let test_crc32_vectors () =
  (* the standard zlib check value *)
  Alcotest.(check string) "crc32(123456789)" "cbf43926" (Crc32.to_hex (Crc32.string "123456789"));
  Alcotest.(check string) "crc32(empty)" "00000000" (Crc32.to_hex (Crc32.string ""));
  let a, b = ("flowtrace ", "journal") in
  Alcotest.(check int32) "chunked = whole"
    (Crc32.string (a ^ b))
    (Crc32.update (Crc32.string a) b)

(* ------------------------------------------------------------------ *)
(* Retry backoff (satellite of the service PR) *)

module Backoff = Flowtrace_runtime.Backoff
module Budget = Flowtrace_runtime.Budget
module Tel = Flowtrace_telemetry.Telemetry

let test_backoff_deterministic () =
  let t = Backoff.make ~seed:42 () in
  for task = 0 to 5 do
    for attempt = 1 to 6 do
      let a = Backoff.delay_ns t ~task ~attempt in
      let b = Backoff.delay_ns t ~task ~attempt in
      Alcotest.(check int) "pure in (seed, task, attempt)" a b;
      Alcotest.(check bool) "positive" true (a > 0)
    done
  done;
  (* different seeds must not replay the same jitter schedule *)
  let schedule seed =
    let t = Backoff.make ~seed () in
    List.concat_map
      (fun task -> List.map (fun a -> Backoff.delay_ns t ~task ~attempt:a) [ 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  Alcotest.(check bool) "seeds diverge" true (schedule 0 <> schedule 1);
  (match Backoff.delay_ns t ~task:0 ~attempt:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "attempt 0 accepted");
  List.iter
    (fun attempt ->
      Alcotest.(check int) "none is zero delay" 0
        (Backoff.delay_ns Backoff.none ~task:3 ~attempt))
    [ 1; 2; 10 ]

let test_backoff_exponential_capped () =
  (* with jitter 0 the policy is the bare bounded exponential *)
  let base = 1_000 and cap = 50_000 in
  let t = Backoff.make ~base_ns:base ~cap_ns:cap ~jitter:0.0 ~seed:7 () in
  List.iteri
    (fun i expected ->
      Alcotest.(check int)
        (Printf.sprintf "attempt %d" (i + 1))
        expected
        (Backoff.delay_ns t ~task:0 ~attempt:(i + 1)))
    [ 1_000; 2_000; 4_000; 8_000; 16_000; 32_000; 50_000; 50_000 ];
  (* jitter only ever adds, and at most the jitter fraction *)
  let j = Backoff.make ~base_ns:base ~cap_ns:cap ~jitter:0.5 ~seed:7 () in
  for attempt = 1 to 8 do
    let bare = Backoff.delay_ns t ~task:1 ~attempt in
    let with_j = Backoff.delay_ns j ~task:1 ~attempt in
    Alcotest.(check bool) "jitter adds" true (with_j >= bare);
    Alcotest.(check bool) "jitter bounded" true
      (float_of_int with_j <= float_of_int bare *. 1.5 +. 1.0)
  done;
  (match Backoff.make ~base_ns:0 ~seed:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "base 0 accepted");
  match Backoff.make ~jitter:1.5 ~seed:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "jitter > 1 accepted"

(* Retried runs under a backoff policy: same bits as an undisturbed run,
   and the wait shows up in the runtime.task.backoff_ns counter. *)
let test_supervised_backoff_bit_identical () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let plain = Select.select ~pack:false inter ~buffer_width:32 in
  let backoff = Backoff.make ~base_ns:10_000 ~cap_ns:100_000 ~seed:1 () in
  (* counters only count while a sink is installed *)
  Tel.install Flowtrace_telemetry.Sink.null;
  Fun.protect ~finally:Tel.shutdown @@ fun () ->
  let c = Tel.Counter.v "runtime.task.backoff_ns" in
  let before = Tel.Counter.value c in
  let inject ~task ~attempt = if task mod 2 = 0 && attempt = 1 then failwith "transient" in
  let o =
    outcome_ok (Engine.select ~jobs:2 ~pack:false ~backoff ~inject inter ~buffer_width:32)
  in
  check_same "backoff" plain o;
  Alcotest.(check bool) "retried" true (o.Engine.o_retries > 0);
  Alcotest.(check bool) "backoff time counted" true (Tel.Counter.value c > before)

(* ------------------------------------------------------------------ *)
(* Budget deadline stride (satellite) *)

let test_budget_stride_bound () =
  List.iter
    (fun stride ->
      let b = Budget.make ~deadline:(Unix.gettimeofday () -. 1.0) ~stride () in
      let ticks = ref 0 in
      (try
         while !ticks <= stride do
           Budget.tick b;
           incr ticks
         done;
         Alcotest.fail
           (Printf.sprintf "stride %d: no expiry within %d ticks" stride !ticks)
       with Budget.Expired -> ());
      Alcotest.(check bool)
        (Printf.sprintf "stride %d: expired within one stride" stride)
        true (!ticks < stride))
    [ 1; 7; 64; Budget.default_stride ];
  match Budget.make ~stride:0 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "stride 0 accepted"

(* ------------------------------------------------------------------ *)
(* Exhaustive torn-write recovery (satellite): truncate the journal at
   EVERY byte offset past the header. Each cut must either load whole
   (no cut) or recover a done-subset prefix with only RT006 warnings —
   never a hard error, never a superset. *)

let test_journal_truncation_exhaustive () =
  let snap =
    {
      Journal.s_fingerprint = "00deadbeef00cafe";
      s_total_tasks = 6;
      s_done = [| true; false; true; true; false; true |];
      s_best = Some { Journal.b_names = [ "GntE"; "ReqE" ]; b_gain = 4607182418800017408L; b_bits = 12 };
      s_task_bests =
        [
          (0, { Journal.b_names = [ "ReqE" ]; b_gain = 4602678819172646912L; b_bits = 8 });
          (2, { Journal.b_names = [ "GntE" ]; b_gain = 4607182418800017408L; b_bits = 4 });
        ];
      s_explored = 123;
    }
  in
  let path = tmp_journal () in
  Journal.write ~path snap;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  for keep = header_end to String.length full do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 keep));
    match Journal.load path with
    | Error ds ->
        Alcotest.fail
          (Printf.sprintf "keep=%d: hard error: %s" keep (Diag.render_all ds))
    | Ok (got, warnings) ->
        (* a cut may land exactly on a record boundary (e.g. removing only
           the final newline), in which case the parse is still complete
           and silence is correct — otherwise the cut must warn RT006 *)
        if warnings = [] then
          Alcotest.(check bool)
            (Printf.sprintf "keep=%d: silent load is complete" keep)
            true
            (got.Journal.s_done = snap.Journal.s_done
            && got.Journal.s_best = snap.Journal.s_best
            && got.Journal.s_explored = snap.Journal.s_explored)
        else
          List.iter
            (fun c ->
              Alcotest.(check string) (Printf.sprintf "keep=%d: RT006 only" keep) "RT006" c)
            (codes warnings);
        Alcotest.(check int)
          (Printf.sprintf "keep=%d: task count" keep)
          snap.Journal.s_total_tasks got.Journal.s_total_tasks;
        Array.iteri
          (fun i g ->
            if g && not snap.Journal.s_done.(i) then
              Alcotest.fail (Printf.sprintf "keep=%d: task %d done out of nowhere" keep i))
          got.Journal.s_done
  done

(* ------------------------------------------------------------------ *)
(* Journal.Log: the journal machinery as a generic record log *)

let test_log_roundtrip () =
  let path = tmp_journal () in
  let records = [ "id a"; "tenant team-\\x"; "spec flow F"; "" ] in
  Journal.Log.write ~path ~kind:"session" records;
  (match Journal.Log.load ~kind:"session" path with
  | Ok (got, warnings) ->
      Alcotest.(check (list string)) "records round-trip" records got;
      Alcotest.(check (list string)) "clean" [] (codes warnings)
  | Error ds -> Alcotest.fail (Diag.render_all ds));
  (* a readable log of another kind must be refused, not confused *)
  (match Journal.Log.load ~kind:"checkpoint" path with
  | Error ds -> Alcotest.(check (list string)) "wrong kind is RT002" [ "RT002" ] (codes ds)
  | Ok _ -> Alcotest.fail "wrong-kind log loaded");
  (match Journal.Log.write ~path ~kind:"bad kind" [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "whitespace kind accepted");
  match Journal.Log.write ~path ~kind:"k" [ "a\nb" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "newline record accepted"

let test_log_truncation_exhaustive () =
  let path = tmp_journal () in
  let records = [ "one"; "two two"; "three three three" ] in
  Journal.Log.write ~path ~kind:"k" records;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let header_end = String.index full '\n' + 1 in
  for keep = header_end to String.length full do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub full 0 keep));
    match Journal.Log.load ~kind:"k" path with
    | Error ds ->
        Alcotest.fail (Printf.sprintf "keep=%d: hard error: %s" keep (Diag.render_all ds))
    | Ok (got, warnings) ->
        Alcotest.(check bool)
          (Printf.sprintf "keep=%d: record prefix" keep)
          true
          (List.length got <= List.length records
          && got = List.filteri (fun i _ -> i < List.length got) records);
        if warnings = [] then
          Alcotest.(check (list string))
            (Printf.sprintf "keep=%d: silent load is complete" keep)
            records got
        else
          Alcotest.(check bool) "cut warns RT006" true (List.mem "RT006" (codes warnings))
  done;
  (* mid-file damage stays a hard RT005 *)
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc full);
  let body = Bytes.of_string full in
  Bytes.set body (header_end + 1) 'X';
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_bytes oc body);
  match Journal.Log.load ~kind:"k" path with
  | Error ds -> Alcotest.(check bool) "RT005" true (List.mem "RT005" (codes ds))
  | Ok _ -> Alcotest.fail "bit-flipped log loaded"

let test_sample_zero_rejected () =
  let inter = Scenario.interleave (List.hd Scenario.all) in
  let sel = Select.select ~strategy:Select.Greedy inter ~buffer_width:16 in
  List.iter
    (fun k ->
      match Trace_buffer.create ~policy:(Trace_buffer.Sample k) ~depth:8 sel with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (Printf.sprintf "Sample %d accepted" k))
    [ 0; -1; -100 ];
  List.iter
    (fun s ->
      match Trace_buffer.parse_policy s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (s ^ " parsed"))
    [ "sample:0"; "sample:-3"; "sample:"; "sample:x" ];
  match Trace_buffer.create ~policy:(Trace_buffer.Sample 1) ~depth:8 sel with
  | _ -> ()

let () =
  Alcotest.run "runtime"
    [
      ( "journal",
        [
          Alcotest.test_case "bit-flip mid-file is RT005" `Quick test_journal_bitflip_is_error;
          Alcotest.test_case "wrong version is RT003" `Quick test_journal_wrong_version;
          Alcotest.test_case "garbage is RT002" `Quick test_journal_not_a_journal;
          Alcotest.test_case "unreadable is RT001" `Quick test_journal_unreadable;
          Alcotest.test_case "lying end record is RT007" `Quick test_journal_broken_seal;
          Alcotest.test_case "truncation at every offset recovers (RT006)" `Quick
            test_journal_truncation_exhaustive;
          Alcotest.test_case "Log round-trips and rejects wrong kind" `Quick test_log_roundtrip;
          Alcotest.test_case "Log truncation at every offset recovers" `Quick
            test_log_truncation_exhaustive;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [ prop_journal_roundtrip; prop_journal_truncation_recovers ] );
      ( "backoff",
        [
          Alcotest.test_case "delay is pure in (seed, task, attempt)" `Quick
            test_backoff_deterministic;
          Alcotest.test_case "bounded exponential with additive jitter" `Quick
            test_backoff_exponential_capped;
          Alcotest.test_case "retries under backoff stay bit-identical" `Quick
            test_supervised_backoff_bit_identical;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "supervised = plain (jobs 1/2/4)" `Quick
            test_supervised_equals_plain;
          Alcotest.test_case "transient faults retried, bit-identical" `Quick
            test_transient_faults_bit_identical;
          Alcotest.test_case "permanent fault keeps siblings" `Quick
            test_permanent_fault_keeps_siblings;
        ] );
      ( "checkpoint/resume",
        [
          Alcotest.test_case "stop+resume bit-identical (jobs 1/2/4)" `Quick
            test_resume_bit_identical;
          Alcotest.test_case "mismatched journal is RT004" `Quick test_resume_rejects_other_run;
        ] );
      ( "budgets",
        [
          Alcotest.test_case "expired deadline degrades to greedy" `Quick
            test_expired_deadline_greedy_fallback;
          Alcotest.test_case "max-candidates degrades to anytime" `Quick
            test_core_max_candidates_anytime;
          Alcotest.test_case "deadline expiry detected within one stride" `Quick
            test_budget_stride_bound;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_unexpired_budget_identical ] );
      ( "guards",
        [
          Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
          Alcotest.test_case "Sample k<=0 rejected at construction" `Quick
            test_sample_zero_rejected;
        ] );
    ]
