(* QCheck generators for random, always-valid flows: layered DAGs where
   every non-final state has a successor and every non-initial state a
   predecessor, so Flow.make's invariants hold by construction. *)

open Flowtrace_core

(* Message names are prefixed with the flow name so two random flows never
   clash on width when interleaved. *)
let message_name ~name i = Printf.sprintf "%s_m%d" name i

(* A layered flow: [widths] lists the number of states per layer; edges go
   only from layer i to layer i+1. Atomic states are drawn from middle
   layers. *)
let layered_flow ~rng ~name ~layers ~max_per_layer ~max_width ~atomic_prob =
  let n_layer = Array.init layers (fun _ -> 1 + Rng.int rng max_per_layer) in
  n_layer.(0) <- 1;
  n_layer.(layers - 1) <- 1;
  let state i j = Printf.sprintf "s%d_%d" i j in
  let states = ref [] and atomic = ref [] in
  for i = 0 to layers - 1 do
    for j = 0 to n_layer.(i) - 1 do
      states := state i j :: !states;
      if i > 0 && i < layers - 1 && Rng.float rng 1.0 < atomic_prob then
        atomic := state i j :: !atomic
    done
  done;
  let messages = ref [] and n_msgs = ref 0 in
  let transitions = ref [] in
  for i = 0 to layers - 2 do
    (* every state in layer i gets >=1 outgoing edge; every state in layer
       i+1 gets >=1 incoming edge *)
    let covered = Array.make n_layer.(i + 1) false in
    for j = 0 to n_layer.(i) - 1 do
      let k = Rng.int rng n_layer.(i + 1) in
      covered.(k) <- true;
      let m = message_name ~name !n_msgs in
      incr n_msgs;
      messages := Message.make m (1 + Rng.int rng max_width) :: !messages;
      transitions := Flow.transition (state i j) m (state (i + 1) k) :: !transitions;
      (* occasionally branch *)
      if Rng.bool rng && n_layer.(i + 1) > 1 then begin
        let k' = Rng.int rng n_layer.(i + 1) in
        if k' <> k then begin
          covered.(k') <- true;
          let m' = message_name ~name !n_msgs in
          incr n_msgs;
          messages := Message.make m' (1 + Rng.int rng max_width) :: !messages;
          transitions := Flow.transition (state i j) m' (state (i + 1) k') :: !transitions
        end
      end
    done;
    for k = 0 to n_layer.(i + 1) - 1 do
      if not covered.(k) then begin
        let j = Rng.int rng n_layer.(i) in
        let m = message_name ~name !n_msgs in
        incr n_msgs;
        messages := Message.make m (1 + Rng.int rng max_width) :: !messages;
        transitions := Flow.transition (state i j) m (state (i + 1) k) :: !transitions
      end
    done
  done;
  Flow.make ~name ~states:(List.rev !states) ~initial:[ state 0 0 ]
    ~stop:[ state (layers - 1) 0 ]
    ~atomic:(List.rev !atomic) ~messages:(List.rev !messages)
    ~transitions:(List.rev !transitions) ()

let flow_of_seed ?(layers = 4) ?(max_per_layer = 2) ?(max_width = 4) ?(atomic_prob = 0.2) seed =
  let rng = Rng.create seed in
  layered_flow ~rng ~name:(Printf.sprintf "rand%d" seed) ~layers ~max_per_layer ~max_width
    ~atomic_prob

(* Arbitrary over seeds; shrinking a seed is meaningless so we disable it. *)
let flow_arb =
  QCheck.make
    ~print:(fun f -> Spec_parser.print_flow f)
    (QCheck.Gen.map flow_of_seed (QCheck.Gen.int_bound 100_000))

(* A random multi-flow specification (what one .flow file holds). Flow
   names embed the seed and position, and message names are prefixed with
   the flow name, so the flows never clash when parsed back together. *)
let flows_of_seed seed =
  let rng = Rng.create seed in
  let n = 1 + Rng.int rng 3 in
  List.init n (fun i ->
      layered_flow ~rng
        ~name:(Printf.sprintf "rand%d_%d" seed i)
        ~layers:(3 + Rng.int rng 2) ~max_per_layer:2 ~max_width:4 ~atomic_prob:0.2)

let flows_arb =
  QCheck.make
    ~print:(fun fs -> Spec_parser.print_flows fs)
    (QCheck.Gen.map flows_of_seed (QCheck.Gen.int_bound 100_000))

let interleaving_of_seed seed =
  let rng = Rng.create seed in
  let layers = 3 + Rng.int rng 2 in
  let f = layered_flow ~rng ~name:"f" ~layers ~max_per_layer:2 ~max_width:3 ~atomic_prob:0.2 in
  let g = layered_flow ~rng ~name:"g" ~layers ~max_per_layer:2 ~max_width:3 ~atomic_prob:0.2 in
  Interleave.make [ { Interleave.flow = f; index = 1 }; { Interleave.flow = g; index = 2 } ]

let interleaving_arb =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Interleave.pp i)
    (QCheck.Gen.map interleaving_of_seed (QCheck.Gen.int_bound 100_000))

(* ------------------------------------------------------------------ *)
(* Random netlists for restoration soundness properties. *)

open Flowtrace_netlist

let random_netlist ?(n_inputs = 3) ?(n_gates = 24) ?(n_ffs = 6) seed =
  let rng = Rng.create seed in
  let b = Builder.create () in
  let nets = ref [] in
  let fresh net = nets := net :: !nets in
  for i = 0 to n_inputs - 1 do
    fresh (Builder.input b (Printf.sprintf "in%d" i))
  done;
  (* forward-declared FFs give sequential feedback loops *)
  let ffs = List.init n_ffs (fun i -> Builder.ff_forward b ~name:(Printf.sprintf "r%d" i) ()) in
  List.iter fresh ffs;
  let pick () = Rng.pick rng !nets in
  for _ = 1 to n_gates do
    let g =
      match Rng.int rng 8 with
      | 0 -> Builder.buf b (pick ())
      | 1 -> Builder.not_ b (pick ())
      | 2 -> Builder.and_ b [ pick (); pick () ]
      | 3 -> Builder.or_ b [ pick (); pick () ]
      | 4 -> Builder.xor b [ pick (); pick () ]
      | 5 -> Builder.nand b [ pick (); pick () ]
      | 6 -> Builder.nor b [ pick (); pick () ]
      | _ -> Builder.mux b ~sel:(pick ()) ~a:(pick ()) ~b:(pick ()) ()
    in
    fresh g
  done;
  List.iter (fun q -> Builder.connect b q (Rng.pick rng !nets)) ffs;
  (match !nets with last :: _ -> Builder.output b last | [] -> ());
  Builder.finish b
