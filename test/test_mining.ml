(* Flow mining: the closed mine -> lint -> check -> select -> simulate
   loop.

   Layers:
   - round trip: mining clean traces of every shipped spec recovers it
     with edge and path precision/recall 1.0;
   - golden acceptance: simulated T2 scenario traces mine back into a
     spec that lints clean under --werror, passes the whole-scenario
     admission gate, and selects the exact same message set as the
     ground truth (atomicity is unobservable and deliberately unmined);
   - properties: on random generated flows, mined output re-parses
     through Spec_parser and lints with no (promoted) errors, and the
     recovered language is exact;
   - degradation: lossy traces still mine to valid, lintable specs, and
     injected noise is dropped with an MN011 + degraded (exit 3) report;
   - determinism: byte-identical spec text and JSON across reruns and
     across input trace order. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_analysis
open Flowtrace_mining

let spec_dir =
  let rec find dir =
    if Sys.file_exists (Filename.concat dir "specs") then Filename.concat dir "specs"
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then failwith "specs/ directory not found" else find parent
  in
  find (Sys.getcwd ())

let codes diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.code) diags
let has code diags = List.exists (String.equal code) (codes diags)

(* One clean synthetic trace exercising every execution of every flow:
   one episode per execution, unique instance tags, strictly increasing
   cycles — what a perfect monitor over an exhaustive workload logs. *)
let synth_trace flows =
  let cycle = ref 0 in
  let packets = ref [] in
  List.iter
    (fun (f : Flow.t) ->
      List.iteri
        (fun i msgs ->
          List.iter
            (fun m ->
              incr cycle;
              let md = Flow.message_exn f m in
              packets :=
                {
                  Packet.cycle = !cycle;
                  flow = f.Flow.name;
                  inst = i;
                  msg = m;
                  src = md.Message.src;
                  dst = md.Message.dst;
                  fields = [];
                }
                :: !packets)
            msgs)
        (Flow.executions f))
    flows;
  List.rev !packets

let catalog_of flows = List.concat_map (fun (f : Flow.t) -> f.Flow.messages) flows
let mined_flows result = List.map (fun m -> m.Miner.m_flow) result.Miner.r_flows

let errors_werror diags =
  Diagnostic.count_errors (List.map Diagnostic.promote_warnings diags)

(* --- round trip: shipped specs --- *)

let roundtrip_file name () =
  let truth = Spec_parser.parse_file (Filename.concat spec_dir name) in
  let result =
    Miner.mine ~catalog:(catalog_of truth) ~file:name [ synth_trace truth ]
  in
  Alcotest.(check int) "no errors" 0 (Diagnostic.count_errors result.r_diags);
  Alcotest.(check bool) "not degraded" false (Miner.degraded result.r_diags);
  let s = Score.score ~truth (mined_flows result) in
  if not (Score.perfect s) then
    Alcotest.failf "%s not perfectly recovered:\n%s" name (Score.render s);
  (* and the emitted spec survives the full strict parse *)
  let reparsed = Spec_parser.parse_string (Miner.spec_text result) in
  Alcotest.(check int) "reparsed flow count" (List.length truth) (List.length reparsed)

(* --- golden acceptance: the closed loop on the T2 scenarios --- *)

let t2_scenario_traces () =
  (* scenario1 (PIO + monitoring) and scenario2 (NCU + monitoring)
     together exercise all five T2 flows; enough rounds that the seeded
     branch choices visit every execution path *)
  List.map
    (fun (sc, seed) ->
      let config = { Scenario.default_run with rounds = 12; seed } in
      let outcome = Scenario.run ~config sc in
      outcome.Sim.packets)
    [ (Scenario.scenario1, 1); (Scenario.scenario2, 2) ]

let test_t2_closed_loop () =
  let traces = t2_scenario_traces () in
  let result = Miner.mine ~catalog:T2.all_messages ~file:"t2.sim" traces in
  Alcotest.(check int) "no errors" 0 (Diagnostic.count_errors result.r_diags);
  let mined = mined_flows result in
  (* mine: exact recovery *)
  let s = Score.score ~truth:T2.flows mined in
  if not (Score.perfect s) then
    Alcotest.failf "t2 scenarios not perfectly recovered:\n%s" (Score.render s);
  (* lint: clean under --werror *)
  let lint = Lint.lint_string ~file:"mined.flow" (Miner.spec_text result) in
  Alcotest.(check int) "lint --werror clean" 0 (errors_werror lint);
  (* check: passes the whole-scenario admission gate *)
  let admission = Scenario.admission_flows ~budget:32 ~name:"mined.flow" mined in
  Alcotest.(check int) "admission no errors" 0 (Diagnostic.count_errors admission);
  (* select: Step-1/2 answer identical to ground truth (atomicity only
     changes reported gain, never the chosen message set). Equal-gain
     ties break by enumeration order, so align the truth to the mined
     flow order before comparing. *)
  let selection flows =
    Select.selected_names (Select.select (Interleave.of_flows flows) ~buffer_width:32)
  in
  let truth_aligned =
    List.map
      (fun (m : Flow.t) ->
        List.find (fun (t : Flow.t) -> String.equal t.Flow.name m.Flow.name) T2.flows)
      mined
  in
  Alcotest.(check (list string)) "selection identical" (selection truth_aligned) (selection mined)

(* --- degradation under loss --- *)

let test_lossy_mining () =
  let truth = T2.flows in
  let clean = synth_trace truth in
  (* replicate the exhaustive trace so real paths keep strong support
     under loss (shift instance tags so episodes stay distinct) *)
  let max_inst =
    List.fold_left (fun acc (p : Packet.t) -> max acc p.Packet.inst) 0 clean + 1
  in
  let replicated k =
    List.concat
      (List.init k (fun r ->
           List.map (fun (p : Packet.t) -> { p with Packet.inst = p.Packet.inst + (r * max_inst) }) clean))
  in
  let workload = replicated 6 in
  List.iter
    (fun rate ->
      let spec = { Obs_fault.none with drop = rate } in
      let lossy, _report = Obs_fault.apply ~seed:7 spec workload in
      let result =
        Miner.mine
          ~config:{ Miner.default_config with support = 0.25; min_count = 2 }
          ~catalog:T2.all_messages ~file:"lossy" [ lossy ]
      in
      (* whatever survives must be structurally valid, parseable and
         lintable — fidelity degrades, the pipeline never breaks *)
      Alcotest.(check int)
        (Printf.sprintf "drop %.2f: no MN002" rate)
        0
        (List.length (List.filter (String.equal "MN002") (codes result.r_diags)));
      let text = Miner.spec_text result in
      if not (String.equal text "") then begin
        let raw = Spec_parser.parse_raw ~file:"lossy.flow" text in
        Alcotest.(check int)
          (Printf.sprintf "drop %.2f: raw parse count" rate)
          (List.length result.r_flows) (List.length raw);
        let lint = Lint.lint_string ~file:"lossy.flow" text in
        Alcotest.(check int)
          (Printf.sprintf "drop %.2f: lint errors" rate)
          0 (Diagnostic.count_errors lint)
      end;
      if rate = 0.0 then begin
        let s = Score.score ~truth (mined_flows result) in
        if not (Score.perfect s) then
          Alcotest.failf "drop 0.0 should recover exactly:\n%s" (Score.render s)
      end)
    [ 0.0; 0.05; 0.1; 0.2; 0.3 ]

let test_noise_dropped () =
  let truth = T2.flows in
  let clean = synth_trace truth in
  let base = List.length clean in
  (* a single bogus episode: a real flow tag with a made-up message
     order that matches no real path and embeds in none *)
  let noise =
    [
      { Packet.cycle = base + 10; flow = "PIOR"; inst = 9000; msg = "piordack"; src = "?"; dst = "?"; fields = [] };
      { Packet.cycle = base + 11; flow = "PIOR"; inst = 9000; msg = "reqtot"; src = "?"; dst = "?"; fields = [] };
      { Packet.cycle = base + 12; flow = "PIOR"; inst = 9000; msg = "piordack"; src = "?"; dst = "?"; fields = [] };
    ]
  in
  (* every real path appears 4x, the noise once: threshold separates *)
  let max_inst = List.fold_left (fun acc (p : Packet.t) -> max acc p.Packet.inst) 0 clean + 1 in
  let workload =
    List.concat
      (List.init 4 (fun r ->
           List.map (fun (p : Packet.t) -> { p with Packet.inst = p.Packet.inst + (r * max_inst) }) clean))
    @ noise
  in
  let result =
    Miner.mine
      ~config:{ Miner.default_config with min_count = 2 }
      ~catalog:T2.all_messages ~file:"noisy" [ workload ]
  in
  Alcotest.(check bool) "MN011 reported" true (has "MN011" result.r_diags);
  Alcotest.(check bool) "MN090 degraded marker" true (has "MN090" result.r_diags);
  Alcotest.(check bool) "degraded" true (Miner.degraded result.r_diags);
  Alcotest.(check int) "exit 3" 3 (Diagnostic.exit_code ~degraded:(Miner.degraded result.r_diags) result.r_diags);
  let s = Score.score ~truth (mined_flows result) in
  if not (Score.perfect s) then
    Alcotest.failf "noise should not perturb the mined spec:\n%s" (Score.render s)

(* --- prefix languages: the nondeterministic stop split --- *)

let test_prefix_language () =
  let mk cycle inst msg = { Packet.cycle; flow = "P"; inst; msg; src = "a"; dst = "b"; fields = [] } in
  let trace =
    [ mk 1 0 "ma"; mk 2 0 "mb"; (* ab *) mk 3 1 "ma"; mk 4 1 "mb"; mk 5 1 "mc" (* abc *) ]
  in
  let result = Miner.mine ~file:"prefix" [ trace ] in
  Alcotest.(check int) "no errors" 0 (Diagnostic.count_errors result.r_diags);
  Alcotest.(check bool) "MN012 prefix note" true (has "MN012" result.r_diags);
  match mined_flows result with
  | [ flow ] ->
      let lang = List.sort compare (Flow.executions flow) in
      Alcotest.(check (list (list string)))
        "language {ab, abc}"
        [ [ "ma"; "mb" ]; [ "ma"; "mb"; "mc" ] ]
        lang;
      (* the split is visible to the linter as FL007, by design *)
      let lint = Lint.lint_string ~file:"prefix.flow" (Miner.spec_text result) in
      Alcotest.(check bool) "FL007 flags the split" true (has "FL007" lint)
  | fs -> Alcotest.failf "expected one mined flow, got %d" (List.length fs)

(* --- determinism --- *)

let test_deterministic_output () =
  let traces = t2_scenario_traces () in
  let run ts =
    let result = Miner.mine ~catalog:T2.all_messages ~file:"t2.sim" ts in
    let score = Score.to_json (Score.score ~truth:T2.flows (mined_flows result)) in
    (Miner.spec_text result, Json.to_string_pretty (Miner.to_json ~score result))
  in
  let text1, json1 = run traces in
  let text2, json2 = run traces in
  Alcotest.(check string) "spec text stable across reruns" text1 text2;
  Alcotest.(check string) "json stable across reruns" json1 json2;
  let text3, json3 = run (List.rev traces) in
  Alcotest.(check string) "spec text stable across trace order" text1 text3;
  Alcotest.(check string) "json stable across trace order" json1 json3

(* --- properties over generated flows --- *)

let prop_roundtrip_random_flows =
  QCheck.Test.make ~name:"mined random flows: reparse, lint clean, exact language" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      let truth = Gen.flows_of_seed seed in
      let result = Miner.mine ~catalog:(catalog_of truth) ~file:"gen" [ synth_trace truth ] in
      let text = Miner.spec_text result in
      let raw = Spec_parser.parse_raw ~file:"gen.flow" text in
      if List.length raw <> List.length truth then
        QCheck.Test.fail_reportf "raw parse: %d flows, expected %d" (List.length raw)
          (List.length truth);
      (* the generated messages may carry "?" endpoints, which FL011
         flags on the ground truth itself; mining must add no NEW
         findings beyond what the truth's own rendering lints to *)
      let lint_codes t = List.sort_uniq String.compare (codes (Lint.lint_string ~file:"gen.flow" t)) in
      let truth_text = Spec_parser.print_flows truth in
      let new_codes =
        List.filter (fun c -> not (List.mem c (lint_codes truth_text))) (lint_codes text)
      in
      if new_codes <> [] then
        QCheck.Test.fail_reportf "mined spec adds lint findings %s:\n%s"
          (String.concat ", " new_codes) text;
      let s = Score.score ~truth (mined_flows result) in
      if not (Score.perfect s) then
        QCheck.Test.fail_reportf "imperfect recovery:\n%s\n%s" (Score.render s) text;
      true)

let () =
  Alcotest.run "mining"
    [
      ( "round trip",
        [
          Alcotest.test_case "cache_coherence.flow" `Quick (roundtrip_file "cache_coherence.flow");
          Alcotest.test_case "t2.flow" `Quick (roundtrip_file "t2.flow");
          Alcotest.test_case "t2_ext.flow" `Quick (roundtrip_file "t2_ext.flow");
          Alcotest.test_case "usb.flow" `Quick (roundtrip_file "usb.flow");
        ] );
      ( "closed loop",
        [ Alcotest.test_case "t2 scenarios: mine, lint, check, select" `Quick test_t2_closed_loop ] );
      ( "degradation",
        [
          Alcotest.test_case "loss sweep keeps specs valid" `Quick test_lossy_mining;
          Alcotest.test_case "noise dropped: MN011 + exit 3" `Quick test_noise_dropped;
          Alcotest.test_case "prefix language: stop split" `Quick test_prefix_language;
        ] );
      ( "determinism",
        [ Alcotest.test_case "byte-identical output" `Quick test_deterministic_output ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip_random_flows ]);
    ]
