#!/usr/bin/env bash
# Kill -9 / --resume half of the daemon chaos harness, driving the
# installed binary end to end: a daemon with persisted sessions is
# SIGKILLed mid-request, restarted with --resume over the same state
# dir, and must answer the same bytes an uninterrupted daemon gives.
# The in-process half (fault injection, isolation, shedding, protocol
# abuse) lives in chaos_serve.ml.
set -eu

FT=$1
d=$(mktemp -d)
trap 'kill -9 $REF $PID 2>/dev/null || true; rm -rf "$d"' EXIT
REF=
PID=

SPEC='flow F\nstate s0 init\nstate s1\nstate s2 stop\nmsg m1 4 from A to B\nmsg m2 4 from B to A\ntrans s0 m1 s1\ntrans s1 m2 s2\n'
OPEN="{\"op\":\"open-session\",\"session\":\"a\",\"width\":8,\"spec\":\"$SPEC\"}"
SEL='{"op":"select","session":"a"}'
STATUS='{"op":"status","session":"a"}'
SHUT='{"op":"shutdown"}'

# Reference run: an uninterrupted daemon over its own state dir.
"$FT" serve --socket "$d/ref.sock" --state-dir "$d/ref" 2>/dev/null &
REF=$!
"$FT" call --socket "$d/ref.sock" "$OPEN" >/dev/null
"$FT" call --socket "$d/ref.sock" "$SEL" "$STATUS" > "$d/ref.out"
"$FT" call --socket "$d/ref.sock" "$SHUT" >/dev/null
wait $REF || { echo "reference daemon did not exit cleanly"; exit 1; }
REF=

# Chaos run: same session, then SIGKILL while a slow request is in
# flight (--chaos honors the request's delay_ms).
"$FT" serve --socket "$d/a.sock" --state-dir "$d/st" --chaos 2>/dev/null &
PID=$!
"$FT" call --socket "$d/a.sock" "$OPEN" >/dev/null
"$FT" call --socket "$d/a.sock" \
  '{"op":"select","session":"a","chaos":{"delay_ms":2000}}' >/dev/null 2>&1 &
CALL=$!
sleep 0.4
kill -9 $PID
wait $PID 2>/dev/null || true
PID=
wait $CALL 2>/dev/null || true
rm -f "$d/a.sock"

# Restart with --resume over the torn state dir: the persisted session
# must answer bit-identically to the uninterrupted reference.
"$FT" serve --socket "$d/a.sock" --state-dir "$d/st" --resume 2>/dev/null &
PID=$!
"$FT" call --socket "$d/a.sock" "$SEL" "$STATUS" > "$d/resumed.out"

# While it is up, the resumed daemon must also survive protocol abuse:
# malformed lines come back as error envelopes, exit 1, daemon alive.
printf 'not json at all\n{"op":"no-such-op"}\n' | \
  "$FT" call --socket "$d/a.sock" > "$d/garbage.out" && \
  { echo "garbage lines must exit 1"; exit 1; } || [ $? -eq 1 ]
[ "$(grep -c '"status":"error"' "$d/garbage.out")" -eq 2 ] || {
  echo "garbage lines did not yield error envelopes:"; cat "$d/garbage.out"; exit 1; }

"$FT" call --socket "$d/a.sock" "$SHUT" >/dev/null
wait $PID || { echo "resumed daemon did not exit cleanly"; exit 1; }
PID=

cmp -s "$d/ref.out" "$d/resumed.out" || {
  echo "resumed answers differ from the uninterrupted reference:"
  diff "$d/ref.out" "$d/resumed.out" || true
  exit 1
}
echo "chaos serve: kill -9 + --resume is bit-identical"
