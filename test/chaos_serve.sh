#!/usr/bin/env bash
# Kill -9 / --resume half of the daemon chaos harness, driving the
# installed binary end to end: a daemon with persisted sessions is
# SIGKILLed mid-request, restarted with --resume over the same state
# dir, and must answer the same bytes an uninterrupted daemon gives.
# The in-process half (fault injection, isolation, shedding, protocol
# abuse) lives in chaos_serve.ml.
set -eu

FT=$1
d=$(mktemp -d)
trap 'kill -9 $REF $PID 2>/dev/null || true; rm -rf "$d"' EXIT
REF=
PID=

SPEC='flow F\nstate s0 init\nstate s1\nstate s2 stop\nmsg m1 4 from A to B\nmsg m2 4 from B to A\ntrans s0 m1 s1\ntrans s1 m2 s2\n'
OPEN="{\"op\":\"open-session\",\"session\":\"a\",\"width\":8,\"spec\":\"$SPEC\"}"
SEL='{"op":"select","session":"a"}'
STATUS='{"op":"status","session":"a"}'
SHUT='{"op":"shutdown"}'

# Reference run: an uninterrupted daemon over its own state dir.
"$FT" serve --socket "$d/ref.sock" --state-dir "$d/ref" 2>/dev/null &
REF=$!
"$FT" call --socket "$d/ref.sock" "$OPEN" >/dev/null
"$FT" call --socket "$d/ref.sock" "$SEL" "$STATUS" > "$d/ref.out"
"$FT" call --socket "$d/ref.sock" "$SHUT" >/dev/null
wait $REF || { echo "reference daemon did not exit cleanly"; exit 1; }
REF=

# Chaos run: same session, then SIGKILL while a slow request is in
# flight (--chaos honors the request's delay_ms).
"$FT" serve --socket "$d/a.sock" --state-dir "$d/st" --chaos 2>/dev/null &
PID=$!
"$FT" call --socket "$d/a.sock" "$OPEN" >/dev/null

# ENOSPC chaos: an injected full disk degrades the one request (the
# session is held in memory, not persisted), health reports the store
# degraded, and the next clean save heals it.
out=$("$FT" call --socket "$d/a.sock" \
  "{\"op\":\"open-session\",\"session\":\"e\",\"width\":8,\"spec\":\"$SPEC\",\"chaos\":{\"enospc\":true}}" \
  ; true)
case "$out" in
  *'"status":"degraded"'*) ;;
  *) echo "injected ENOSPC did not degrade: $out"; exit 1;;
esac
case "$out" in
  *'"persisted":false'*) ;;
  *) echo "degraded open lacks persisted:false: $out"; exit 1;;
esac
[ ! -e "$d/st/session-e.ckpt" ] || { echo "degraded open still persisted"; exit 1; }
out=$("$FT" call --socket "$d/a.sock" '{"op":"health"}'; true)
case "$out" in
  *'"store":"degraded"'*) ;;
  *) echo "health did not report a degraded store: $out"; exit 1;;
esac
"$FT" call --socket "$d/a.sock" '{"op":"close","session":"e"}' >/dev/null
out=$("$FT" call --socket "$d/a.sock" \
  "{\"op\":\"open-session\",\"session\":\"e\",\"width\":8,\"spec\":\"$SPEC\"}")
"$FT" call --socket "$d/a.sock" '{"op":"close","session":"e"}' >/dev/null
out=$("$FT" call --socket "$d/a.sock" '{"op":"health"}')
case "$out" in
  *'"store":"ok"'*) ;;
  *) echo "store did not heal after a clean save: $out"; exit 1;;
esac

"$FT" call --socket "$d/a.sock" \
  '{"op":"select","session":"a","chaos":{"delay_ms":2000}}' >/dev/null 2>&1 &
CALL=$!
sleep 0.4
kill -9 $PID
wait $PID 2>/dev/null || true
PID=
wait $CALL 2>/dev/null || true

# The SIGKILLed daemon left its socket file behind — deliberately NOT
# removed here: the restarting daemon must detect the stale socket
# (nothing answers) and sweep it itself.
[ -e "$d/a.sock" ] || { echo "expected a stale socket file after kill -9"; exit 1; }

# Restart with --resume over the torn state dir: the persisted session
# must answer bit-identically to the uninterrupted reference.
"$FT" serve --socket "$d/a.sock" --state-dir "$d/st" --resume 2>/dev/null &
PID=$!
"$FT" call --socket "$d/a.sock" "$SEL" "$STATUS" > "$d/resumed.out"

# While it is up, its socket must never be stolen: a second daemon on
# the same path must refuse to start, and the first keeps answering.
"$FT" serve --socket "$d/a.sock" --state-dir "$d/st2" > "$d/steal.out" 2>&1 && \
  { echo "second daemon stole a live socket"; exit 1; } || [ $? -eq 1 ]
grep -q "already listening" "$d/steal.out" || {
  echo "live-socket refusal lacks a clear error:"; cat "$d/steal.out"; exit 1; }
"$FT" call --socket "$d/a.sock" '{"op":"ping"}' >/dev/null || {
  echo "first daemon died after the steal attempt"; exit 1; }

# While it is up, the resumed daemon must also survive protocol abuse:
# malformed lines come back as error envelopes, exit 1, daemon alive.
printf 'not json at all\n{"op":"no-such-op"}\n' | \
  "$FT" call --socket "$d/a.sock" > "$d/garbage.out" && \
  { echo "garbage lines must exit 1"; exit 1; } || [ $? -eq 1 ]
[ "$(grep -c '"status":"error"' "$d/garbage.out")" -eq 2 ] || {
  echo "garbage lines did not yield error envelopes:"; cat "$d/garbage.out"; exit 1; }

"$FT" call --socket "$d/a.sock" "$SHUT" >/dev/null
wait $PID || { echo "resumed daemon did not exit cleanly"; exit 1; }
PID=

cmp -s "$d/ref.out" "$d/resumed.out" || {
  echo "resumed answers differ from the uninterrupted reference:"
  diff "$d/ref.out" "$d/resumed.out" || true
  exit 1
}

# fsck over the shut-down state dir: clean is exit 0; planted damage
# (a garbage session file, a stale temp) is exit 1 on scan; --repair
# quarantines and sweeps (exit 3: damage was found); a rescan is clean
# again and the quarantined bytes still exist for the post-mortem.
"$FT" fsck --state-dir "$d/st" >/dev/null || {
  echo "fsck on a clean state dir must exit 0"; exit 1; }
printf 'not a session journal\n' > "$d/st/session-zz.ckpt"
printf 'x' > "$d/st/session-a.ckpt.tmp"
"$FT" fsck --state-dir "$d/st" > "$d/fsck.out" && \
  { echo "fsck must exit 1 on hard damage"; exit 1; } || [ $? -eq 1 ]
grep -q "corrupt" "$d/fsck.out" || {
  echo "fsck scan did not classify the damage:"; cat "$d/fsck.out"; exit 1; }
"$FT" fsck --state-dir "$d/st" --repair --json > "$d/fsck.json" && \
  { echo "fsck --repair must exit 3 when it repaired"; exit 1; } || [ $? -eq 3 ]
grep -q '"exit":3' "$d/fsck.json" || {
  echo "fsck --json lacks the exit field:"; cat "$d/fsck.json"; exit 1; }
"$FT" fsck --state-dir "$d/st" >/dev/null || {
  echo "fsck after --repair must be clean"; exit 1; }
[ -e "$d/st/session-zz.ckpt.quarantine" ] || {
  echo "repair deleted evidence instead of quarantining"; exit 1; }
[ ! -e "$d/st/session-a.ckpt.tmp" ] || {
  echo "repair left the stale temp file"; exit 1; }

echo "chaos serve: kill -9 + --resume is bit-identical"
