(* Tests for the flow-specification text format. *)

open Flowtrace_core

let toy_text =
  {|# toy cache coherence flow (paper Figure 1a)
flow cache_coherence
state n init
state w
state c atomic
state d stop
msg ReqE 1 from agent to dir
msg GntE 1 from dir to agent
msg Ack 1 from agent to dir
trans n ReqE w
trans w GntE c
trans c Ack d
|}

let test_parse_toy () =
  match Spec_parser.parse_string toy_text with
  | [ f ] ->
      Alcotest.(check string) "name" "cache_coherence" f.Flow.name;
      Alcotest.(check int) "states" 4 (Flow.n_states f);
      Alcotest.(check int) "messages" 3 (Flow.n_messages f);
      Alcotest.(check bool) "atomic c" true (Flow.is_atomic f "c");
      Alcotest.(check bool) "stop d" true (Flow.is_stop f "d")
  | fs -> Alcotest.failf "expected 1 flow, got %d" (List.length fs)

let test_parse_subgroups () =
  let text =
    {|flow t
state a init
state b stop
msg dmusiidata 20 from dmu to siu sub cputhreadid 6 sub addr 8
trans a dmusiidata b
|}
  in
  match Spec_parser.parse_string text with
  | [ f ] ->
      let m = Flow.message_exn f "dmusiidata" in
      Alcotest.(check int) "subgroups" 2 (List.length m.Message.subgroups);
      Alcotest.(check string) "src" "dmu" m.Message.src
  | _ -> Alcotest.fail "expected 1 flow"

let test_multiple_flows () =
  let text = toy_text ^ "\n" ^ String.concat "\n" [ "flow second"; "state x init"; "state y stop"; "msg go 2"; "trans x go y" ] in
  Alcotest.(check int) "two flows" 2 (List.length (Spec_parser.parse_string text))

let expect_error name text expected_line =
  Alcotest.test_case name `Quick (fun () ->
      match Spec_parser.parse_string text with
      | exception Spec_parser.Parse_error e ->
          Alcotest.(check int) "line number" expected_line e.Spec_parser.line
      | _ -> Alcotest.fail "expected Parse_error")

let test_roundtrip_toy () =
  let printed = Spec_parser.print_flow Toy.cache_coherence in
  match Spec_parser.parse_string printed with
  | [ f ] ->
      Alcotest.(check string) "same text" printed (Spec_parser.print_flow f)
  | _ -> Alcotest.fail "expected 1 flow"

let prop_roundtrip =
  QCheck.Test.make ~name:"print/parse round-trip preserves structure" ~count:100 Gen.flow_arb
    (fun f ->
      match Spec_parser.parse_string (Spec_parser.print_flow f) with
      | [ f' ] ->
          Flow.n_states f = Flow.n_states f'
          && Flow.n_messages f = Flow.n_messages f'
          && List.length f.Flow.transitions = List.length f'.Flow.transitions
          && Spec_parser.print_flow f = Spec_parser.print_flow f'
      | _ -> false)

let prop_roundtrip_structural =
  QCheck.Test.make ~name:"multi-flow print_flows/parse_string round-trip is structurally equal"
    ~count:100 Gen.flows_arb (fun fs ->
      let fs' = Spec_parser.parse_string (Spec_parser.print_flows fs) in
      List.length fs = List.length fs' && List.for_all2 Flow.equal fs fs')

let prop_roundtrip_executions =
  QCheck.Test.make ~name:"round-trip preserves execution traces" ~count:50 Gen.flow_arb (fun f ->
      match Spec_parser.parse_string (Spec_parser.print_flow f) with
      | [ f' ] -> Flow.executions ~limit:50_000 f = Flow.executions ~limit:50_000 f'
      | _ -> false)

let () =
  Alcotest.run "spec_parser"
    [
      ( "parse",
        [
          Alcotest.test_case "toy" `Quick test_parse_toy;
          Alcotest.test_case "subgroups" `Quick test_parse_subgroups;
          Alcotest.test_case "multiple flows" `Quick test_multiple_flows;
          Alcotest.test_case "round-trip toy" `Quick test_roundtrip_toy;
        ] );
      ( "errors",
        [
          expect_error "directive before flow" "state a init\n" 1;
          expect_error "unknown directive" "flow f\nfrobnicate a\n" 2;
          expect_error "bad width" "flow f\nstate a init\nmsg m xyz\n" 3;
          expect_error "bad trans arity" "flow f\nstate a init\ntrans a b\n" 3;
          expect_error "invalid flow surfaces at end" "flow f\nstate a init\n" 3;
          expect_error "duplicate state positioned at its line"
            "flow f\nstate a init\nstate b stop\nstate a\nmsg m 1\ntrans a m b\n" 4;
          expect_error "duplicate msg positioned at its line"
            "flow f\nstate a init\nstate b stop\nmsg m 1\nmsg m 2\ntrans a m b\n" 5;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_roundtrip_structural; prop_roundtrip_executions ] );
    ]
