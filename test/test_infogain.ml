(* Tests for mutual information gain (Section 3.2): golden values, the
   decomposition used by the evaluator, and monotonicity/non-negativity
   properties the selection algorithm relies on. *)

open Flowtrace_core

let feq = Alcotest.(check (float 1e-9))

let test_empty_selection_zero () =
  feq "I(X;∅)=0" 0.0 (Infogain.compute (Toy.two_instances ()) ~selected:(fun _ -> false))

let test_full_vs_subset () =
  let inter = Toy.two_instances () in
  let sub = Infogain.compute inter ~selected:(fun b -> b = "ReqE") in
  let full = Infogain.compute inter ~selected:(fun _ -> true) in
  Alcotest.(check bool) "monotone" true (full >= sub);
  Alcotest.(check bool) "positive" true (sub > 0.0)

let test_symmetry_of_toy_messages () =
  (* In the coherence interleaving all three messages play symmetric roles:
     singleton gains are equal. *)
  let inter = Toy.two_instances () in
  let g b = Infogain.compute inter ~selected:(String.equal b) in
  feq "ReqE=GntE" (g "ReqE") (g "GntE");
  feq "GntE=Ack" (g "GntE") (g "Ack")

let test_evaluator_matches_compute () =
  let inter = Toy.two_instances () in
  let ev = Infogain.evaluator inter in
  List.iter
    (fun combo ->
      feq
        (String.concat "+" (List.map (fun m -> m.Message.name) combo))
        (Infogain.of_combination inter combo)
        (Infogain.eval ev combo))
    (Combination.enumerate (Interleave.messages inter) ~width:3)

let test_weight_linearity () =
  let inter = Toy.two_instances () in
  let full = Infogain.compute inter ~selected:(fun b -> b = "ReqE") in
  let half = Infogain.compute_weighted inter ~weight:(fun b -> if b = "ReqE" then 0.5 else 0.0) in
  feq "weight scales linearly" (full /. 2.0) half

let test_additivity_over_messages () =
  (* The gain decomposes as a sum of per-message terms. *)
  let inter = Toy.two_instances () in
  let g sel = Infogain.compute inter ~selected:sel in
  feq "additive"
    (g (fun b -> b = "ReqE" || b = "Ack"))
    (g (String.equal "ReqE") +. g (String.equal "Ack"))

(* ------------------------------------------------------------------ *)
(* Properties over random interleavings *)

let with_inter seed k = k (Gen.interleaving_of_seed seed)

let prop_nonnegative =
  QCheck.Test.make ~name:"gain is non-negative" ~count:80
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let rng = Rng.create (seed + 1) in
          let sel _ = Rng.bool rng in
          (* randomized but fixed per call-order; evaluate once *)
          let names =
            List.filter_map
              (fun (m : Message.t) -> if sel m.Message.name then Some m.Message.name else None)
              (Interleave.messages inter)
          in
          Infogain.compute inter ~selected:(fun b -> List.mem b names) >= 0.0))

let prop_monotone =
  QCheck.Test.make ~name:"gain is monotone under adding messages" ~count:80
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let rng = Rng.create (seed + 7) in
          let all = List.map (fun (m : Message.t) -> m.Message.name) (Interleave.messages inter) in
          let small = List.filter (fun _ -> Rng.bool rng) all in
          let big = List.sort_uniq compare (small @ List.filter (fun _ -> Rng.bool rng) all) in
          let g names = Infogain.compute inter ~selected:(fun b -> List.mem b names) in
          g big >= g small -. 1e-9))

let prop_evaluator_agrees =
  QCheck.Test.make ~name:"evaluator agrees with direct computation" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let ev = Infogain.evaluator inter in
          let rng = Rng.create (seed + 13) in
          let combo =
            List.filter (fun _ -> Rng.bool rng) (Interleave.messages inter)
          in
          Float.abs (Infogain.eval ev combo -. Infogain.of_combination inter combo) < 1e-9))

let prop_uniform_prior_matches_compute =
  QCheck.Test.make ~name:"compute_with_prior(uniform) = compute" ~count:50
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let sel b = String.length b mod 2 = 0 in
          Float.abs
            (Infogain.compute inter ~selected:sel
            -. Infogain.compute_with_prior inter ~selected:sel
                 ~prior:(Infogain.uniform_prior inter))
          < 1e-9))

let prop_visit_prior_normalized =
  QCheck.Test.make ~name:"visit prior sums to 1" ~count:50
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let prior = Infogain.visit_prior inter in
          let sum = ref 0.0 in
          for s = 0 to Interleave.n_states inter - 1 do
            sum := !sum +. prior s
          done;
          Float.abs (!sum -. 1.0) < 1e-6))

let prop_full_set_bounded_by_entropy =
  QCheck.Test.make ~name:"gain bounded by ln |S|" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let g = Infogain.compute inter ~selected:(fun _ -> true) in
          g <= log (float_of_int (Interleave.n_states inter)) +. 1e-9))

let prop_eval_weighted_agrees =
  QCheck.Test.make ~name:"eval_weighted = compute_weighted" ~count:60
    (QCheck.make (QCheck.Gen.int_bound 100_000))
    (fun seed ->
      with_inter seed (fun inter ->
          let ev = Infogain.evaluator inter in
          (* deterministic pseudo-weights in [0, 1] keyed on the base name *)
          let weight b = float_of_int (Hashtbl.hash (seed, b) mod 5) /. 4.0 in
          Float.abs
            (Infogain.eval_weighted ev ~weight -. Infogain.compute_weighted inter ~weight)
          < 1e-9))

let () =
  Alcotest.run "infogain"
    [
      ( "unit",
        [
          Alcotest.test_case "empty is zero" `Quick test_empty_selection_zero;
          Alcotest.test_case "subset below full" `Quick test_full_vs_subset;
          Alcotest.test_case "toy symmetry" `Quick test_symmetry_of_toy_messages;
          Alcotest.test_case "evaluator matches" `Quick test_evaluator_matches_compute;
          Alcotest.test_case "weight linearity" `Quick test_weight_linearity;
          Alcotest.test_case "additivity" `Quick test_additivity_over_messages;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_nonnegative;
            prop_monotone;
            prop_evaluator_agrees;
            prop_eval_weighted_agrees;
            prop_full_set_bounded_by_entropy;
            prop_uniform_prior_matches_compute;
            prop_visit_prior_normalized;
          ]
      );
    ]
