(* Power-cut-at-every-boundary torture harness for the persistence
   layer.

   A fixed workload of session saves/removes runs against the fault
   filesystem; a fault-free reference run records how many syscalls the
   workload costs and which syscall range each step spans. Then the
   whole workload is replayed once per syscall boundary k = 0, 1, …,
   N-1 with a simulated power cut at k, recovery runs
   ([Store.load_all ~repair:true]), and the recovered state is checked
   against the crash-consistency contract:

   - every recovered session is bit-identical to a version the workload
     actually wrote — never a torn or merged hybrid;
   - a session whose save completed before the cut is present (with
     fsync honored) or, under the drop-fsync lie, present or quarantined
     with a diagnostic — never silently lost;
   - a second repair pass is a no-op and [Fsck.scan] reports the
     repaired directory clean.

   The same enumeration runs three ways: plain, with short writes (every
   write splits, multiplying the boundaries inside a file body), and
   with fsync dropped (the pathological firmware that acks sync without
   persisting). *)

open Flowtrace_service
module Vfs = Flowtrace_runtime.Vfs
module Select = Flowtrace_core.Select

let dir = "/state"

let spec_text =
  "flow F\n\
   state s0 init\n\
   state s1 stop\n\
   msg m 4 from A to B\n\
   trans s0 m s1\n"

let mk id width =
  {
    Store.se_id = id;
    se_tenant = "default";
    se_width = width;
    se_strategy = Select.Greedy;
    se_instances = [ ("F", 1) ];
    se_spec = spec_text;
  }

type step = Save of Store.session | Remove of string

let id_of = function Save s -> s.Store.se_id | Remove id -> id

(* The workload: create, overwrite-in-place, and delete — the three
   namespace transitions a daemon's store performs. *)
let steps =
  [
    Save (mk "alpha" 8);
    Save (mk "beta" 16);
    Save (mk "alpha" 12);
    (* replace an existing sealed file *)
    Save (mk "gamma" 4);
    Remove "beta";
  ]

let versions = [ mk "alpha" 8; mk "alpha" 12; mk "beta" 16; mk "gamma" 4 ]
let all_ids = [ "alpha"; "beta"; "gamma" ]

let run_step vfs = function
  | Save s -> Store.save ~vfs ~dir s
  | Remove id -> Store.remove ~vfs ~dir id

type config = { c_name : string; c_short : bool; c_drop_fsync : bool }

let configs =
  [
    { c_name = "plain"; c_short = false; c_drop_fsync = false };
    { c_name = "short-writes"; c_short = true; c_drop_fsync = false };
    { c_name = "drop-fsync"; c_short = false; c_drop_fsync = true };
  ]

let make_fs cfg =
  let fs = Vfs.Fault.create ~seed:1 () in
  Vfs.Fault.set_short_writes fs cfg.c_short;
  Vfs.Fault.set_drop_fsync fs cfg.c_drop_fsync;
  fs

(* Fault-free reference: per-step syscall ranges [(a, b)) and the total. *)
let reference cfg =
  let fs = make_fs cfg in
  let v = Vfs.Fault.vfs fs in
  let ranges =
    List.map
      (fun st ->
        let a = Vfs.Fault.syscalls fs in
        run_step v st;
        (st, (a, Vfs.Fault.syscalls fs)))
      steps
  in
  (ranges, Vfs.Fault.syscalls fs)

(* What each session id must look like after a cut at syscall k:
   [`Known None] (must be absent), [`Known (Some s)] (the save
   completed), or [`Ambiguous] (the cut landed inside a step touching
   this id — any consistent outcome is legal). *)
let expected_after ranges k =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (st, (a, b)) ->
      if b <= k then
        Hashtbl.replace tbl (id_of st)
          (match st with Save s -> `Known (Some s) | Remove _ -> `Known None)
      else if a < k then Hashtbl.replace tbl (id_of st) `Ambiguous)
    ranges;
  fun id -> Option.value ~default:(`Known None) (Hashtbl.find_opt tbl id)

let quarantined fs id =
  Vfs.Fault.mem fs (Store.file_of ~dir id ^ Store.quarantine_suffix) <> None

let find_session sessions id =
  List.find_opt (fun s -> s.Store.se_id = id) sessions

let check_crash_point cfg ranges total k =
  let fail fmt = Alcotest.failf ("%s, crash at %d: " ^^ fmt) cfg.c_name k in
  let fs = make_fs cfg in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.set_crash_at fs (Some k);
  (match List.iter (run_step v) steps with
  | () -> fail "workload survived a crash point below its total %d" total
  | exception Vfs.Crash _ -> ()
  | exception Vfs.Io_error e -> fail "unexpected Io_error: %s" e.Vfs.e_msg);
  (* power is back: same disk, no further faults *)
  Vfs.Fault.set_crash_at fs None;
  let sessions, diags = Store.load_all ~vfs:v ~repair:true dir in
  (* 1: nothing recovered is a hybrid — every body is a real version *)
  List.iter
    (fun s ->
      if not (List.mem s versions) then
        fail "recovered a session that was never written: %s" s.Store.se_id)
    sessions;
  (* 2: per-id accounting — nothing is ever silently lost *)
  let expect = expected_after ranges k in
  List.iter
    (fun id ->
      let got = find_session sessions id in
      match expect id with
      | `Ambiguous -> ()
      | `Known None ->
          if got <> None then fail "%s should be absent but resumed" id
      | `Known (Some sv) -> (
          match got with
          | Some s when s = sv -> ()
          | Some s ->
              fail "%s resumed with the wrong body (width %d, wanted %d)" id
                s.Store.se_width sv.Store.se_width
          | None ->
              if cfg.c_drop_fsync then begin
                (* the firmware lied about fsync: losing the body is
                   permitted, losing it *silently* is not *)
                if not (quarantined fs id) then
                  fail "%s lost without a quarantine file" id;
                if diags = [] then fail "%s lost without a diagnostic" id
              end
              else fail "%s lost although its save completed and fsync held" id))
    all_ids;
  (* 3: repair converges — a second pass finds nothing left to do *)
  let sessions2, diags2 = Store.load_all ~vfs:v ~repair:true dir in
  if diags2 <> [] then
    fail "second repair still reports damage: %s"
      (Flowtrace_analysis.Diagnostic.render_all diags2);
  if
    List.sort compare (List.map (fun s -> s.Store.se_id) sessions2)
    <> List.sort compare (List.map (fun s -> s.Store.se_id) sessions)
  then fail "repair is not idempotent";
  let report = Fsck.scan ~vfs:v dir in
  if Fsck.exit_code report <> 0 then
    fail "fsck still dirty after repair:\n%s" (Fsck.render report)

let test_enumeration cfg () =
  let ranges, total = reference cfg in
  Alcotest.(check bool)
    "workload is non-trivial" true
    (total > 20 && List.length ranges = List.length steps);
  for k = 0 to total - 1 do
    check_crash_point cfg ranges total k
  done;
  (* and the boundary case: no cut at all must equal the reference *)
  let fs = make_fs cfg in
  let v = Vfs.Fault.vfs fs in
  List.iter (run_step v) steps;
  let sessions, diags = Store.load_all ~vfs:v ~repair:true dir in
  Alcotest.(check bool) (cfg.c_name ^ " fault-free load is clean") true (diags = []);
  Alcotest.(check (list string))
    (cfg.c_name ^ " fault-free final state")
    [ "alpha"; "gamma" ]
    (List.sort compare (List.map (fun s -> s.Store.se_id) sessions));
  Alcotest.(check bool)
    (cfg.c_name ^ " final bodies exact") true
    (find_session sessions "alpha" = Some (mk "alpha" 12)
    && find_session sessions "gamma" = Some (mk "gamma" 4))

let test_enospc_mid_workload () =
  (* measure how much disk one session costs, then make the second not fit *)
  let probe = Vfs.Fault.create () in
  Store.save ~vfs:(Vfs.Fault.vfs probe) ~dir (mk "alpha" 8);
  let size =
    match Vfs.Fault.mem probe (Store.file_of ~dir "alpha") with
    | Some data -> String.length data
    | None -> Alcotest.fail "probe save vanished"
  in
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Vfs.Fault.set_disk_budget fs (Some (size + (size / 2)));
  Store.save ~vfs:v ~dir (mk "alpha" 8);
  (match Store.save ~vfs:v ~dir (mk "beta" 16) with
  | () -> Alcotest.fail "second save must hit ENOSPC"
  | exception Vfs.Io_error e ->
      Alcotest.(check bool) "flagged as ENOSPC" true e.Vfs.e_enospc);
  (* the full disk tore nothing: alpha still loads bit-identically *)
  let sessions, _ = Store.load_all ~vfs:v ~repair:true dir in
  Alcotest.(check bool)
    "alpha intact after ENOSPC" true
    (find_session sessions "alpha" = Some (mk "alpha" 8));
  Alcotest.(check bool) "beta not half-written" true
    (find_session sessions "beta" = None);
  (* space freed: the same save now succeeds *)
  Vfs.Fault.set_disk_budget fs None;
  Store.save ~vfs:v ~dir (mk "beta" 16);
  let sessions, diags = Store.load_all ~vfs:v ~repair:true dir in
  Alcotest.(check bool) "clean after retry" true (diags = []);
  Alcotest.(check int) "both sessions" 2 (List.length sessions)

let test_fsck_scan_and_repair () =
  let fs = Vfs.Fault.create () in
  let v = Vfs.Fault.vfs fs in
  Store.save ~vfs:v ~dir (mk "alpha" 8);
  Store.save ~vfs:v ~dir (mk "beta" 16);
  Store.save ~vfs:v ~dir (mk "gamma" 4);
  (* damage: gamma loses the tail of its end record (recoverable), a
     file of garbage appears (corrupt), and an interrupted write leaves
     a temp file *)
  let gamma_path = Store.file_of ~dir "gamma" in
  (match Vfs.Fault.mem fs gamma_path with
  | Some data ->
      Vfs.Fault.install fs ~path:gamma_path
        (String.sub data 0 (String.length data - 5))
  | None -> Alcotest.fail "gamma vanished");
  Vfs.Fault.install fs ~path:(Store.file_of ~dir "bad") "not a session journal\n";
  Vfs.Fault.install fs ~path:(Store.file_of ~dir "alpha" ^ Vfs.tmp_suffix) "x";
  (* scan: sees everything, touches nothing; the unreadable file is
     hard damage, so the exit code is 1 *)
  let r = Fsck.scan ~vfs:v dir in
  Alcotest.(check int) "scan exit" 1 (Fsck.exit_code r);
  Alcotest.(check int) "scan stale tmp" 1 (List.length r.Fsck.r_stale_tmp);
  let states =
    List.map (fun e -> (e.Fsck.f_file, Fsck.state_name e.Fsck.f_state)) r.Fsck.r_entries
  in
  Alcotest.(check (list (pair string string)))
    "scan classification"
    [
      ("session-alpha.ckpt", "intact");
      ("session-bad.ckpt", "corrupt");
      ("session-beta.ckpt", "intact");
      ("session-gamma.ckpt", "recovered");
    ]
    states;
  Alcotest.(check bool) "scan does not sweep" true
    (Vfs.Fault.mem fs (Store.file_of ~dir "alpha" ^ Vfs.tmp_suffix) <> None);
  (* repair: sweep, compact, quarantine *)
  let r = Fsck.repair ~vfs:v dir in
  Alcotest.(check int) "repair exit (damage was found)" 3 (Fsck.exit_code r);
  Alcotest.(check bool) "tmp swept" true
    (Vfs.Fault.mem fs (Store.file_of ~dir "alpha" ^ Vfs.tmp_suffix) = None);
  Alcotest.(check bool) "corrupt quarantined, not deleted" true
    (Vfs.Fault.mem fs (Store.file_of ~dir "bad" ^ Store.quarantine_suffix) <> None);
  (* a second scan is clean: gamma compacted, bad out of the way *)
  let r = Fsck.scan ~vfs:v dir in
  Alcotest.(check int) "post-repair exit" 0 (Fsck.exit_code r);
  Alcotest.(check int) "post-repair sessions" 3 (List.length r.Fsck.r_entries);
  Alcotest.(check int) "quarantine listed" 1 (List.length r.Fsck.r_quarantined);
  (* and the compacted gamma still carries the exact original body *)
  let sessions, diags = Store.load_all ~vfs:v dir in
  Alcotest.(check bool) "store clean" true (diags = []);
  Alcotest.(check bool) "gamma bit-identical after compaction" true
    (find_session sessions "gamma" = Some (mk "gamma" 4))

let () =
  Alcotest.run "torture_store"
    [
      ( "crash-point enumeration",
        List.map
          (fun cfg ->
            Alcotest.test_case
              (Printf.sprintf "every boundary recovers (%s)" cfg.c_name)
              `Quick (test_enumeration cfg))
          configs );
      ( "disk pressure",
        [
          Alcotest.test_case "ENOSPC mid-workload tears nothing" `Quick
            test_enospc_mid_workload;
        ] );
      ( "fsck",
        [
          Alcotest.test_case "scan classifies, repair heals, rescan is clean"
            `Quick test_fsck_scan_and_repair;
        ] );
    ]
