(* Parser robustness over the on-disk corpus of mutated trace files.

   Whatever the bytes, the strict parser may fail only with
   [Trace_io.Parse_error] (never an uncaught exception or a crash), and
   the lenient parser with a generous error budget must not raise at
   all. Every good line in a mixed file must survive lenient parsing. *)

open Flowtrace_soc

let corpus_dir =
  (* dune declares corpus/* as deps, so the files sit next to the test
     binary's cwd; fall back to walking up for manual runs. *)
  let rec find dir n =
    let candidates =
      [ Filename.concat dir "corpus"; Filename.concat dir (Filename.concat "test" "corpus") ]
    in
    match List.find_opt (fun c -> Sys.file_exists c && Sys.is_directory c) candidates with
    | Some c -> Some c
    | None ->
        if n = 0 then None else find (Filename.concat dir Filename.parent_dir_name) (n - 1)
  in
  match find (Sys.getcwd ()) 4 with
  | Some d -> d
  | None -> Alcotest.fail "test corpus directory not found"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".trace")
  |> List.sort compare

let read file =
  let ic = open_in_bin (Filename.concat corpus_dir file) in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_corpus_present () =
  Alcotest.(check bool) "corpus is non-trivial" true (List.length (corpus_files ()) >= 8)

let test_strict_raises_only_parse_error () =
  List.iter
    (fun file ->
      match Trace_io.parse (read file) with
      | (_ : Packet.t list) -> ()
      | exception Trace_io.Parse_error _ -> ()
      | exception e ->
          Alcotest.failf "%s: strict parse leaked %s" file (Printexc.to_string e))
    (corpus_files ())

let test_lenient_never_raises () =
  List.iter
    (fun file ->
      match Trace_io.parse_lenient ~file ~max_errors:1_000_000 (read file) with
      | (_ : Packet.t list * Flowtrace_analysis.Diagnostic.t list) -> ()
      | exception e ->
          Alcotest.failf "%s: lenient parse raised %s" file (Printexc.to_string e))
    (corpus_files ())

let test_lenient_recovers_good_lines () =
  let packets, diags = Trace_io.parse_lenient ~file:"mixed.trace" ~max_errors:100 (read "mixed.trace") in
  Alcotest.(check int) "good packets survive" 3 (List.length packets);
  Alcotest.(check int) "bad lines reported" 2 (List.length diags)

let test_valid_file_parses_strictly () =
  match Trace_io.parse (read "valid.trace") with
  | [ _; _ ] -> ()
  | ps -> Alcotest.failf "valid.trace: expected 2 packets, got %d" (List.length ps)

let () =
  Alcotest.run "trace_corpus"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus present" `Quick test_corpus_present;
          Alcotest.test_case "strict raises only Parse_error" `Quick
            test_strict_raises_only_parse_error;
          Alcotest.test_case "lenient never raises" `Quick test_lenient_never_raises;
          Alcotest.test_case "lenient recovers good lines" `Quick test_lenient_recovers_good_lines;
          Alcotest.test_case "valid file parses strictly" `Quick test_valid_file_parses_strictly;
        ] );
    ]
