(* Tests for the telemetry layer (lib/telemetry) and its integration with
   the selection engine, the SoC simulator and the debug sessions:

   - the JSONL encoding round-trips exactly (in memory and through a file);
   - instrumentation is observation-only: selections are identical with
     telemetry enabled and disabled, and metric updates while disabled are
     no-ops;
   - counter values are bit-identical across --jobs 1/2/4 — only
     decomposition-invariant quantities are counted;
   - the Chrome sink emits one well-formed JSON array;
   - simulator counters are reproducible for a fixed seed. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_debug
module Tel = Flowtrace_telemetry.Telemetry
module Event = Flowtrace_telemetry.Event
module Sink = Flowtrace_telemetry.Sink
module Summary = Flowtrace_telemetry.Summary
module Tjson = Flowtrace_telemetry.Tjson

let sample_events =
  [
    Event.Meta [ ("epoch_unix", Event.Float 1754300000.125); ("tool", Event.Str "test") ];
    Event.Span
      {
        Event.sp_name = "select";
        sp_id = 0;
        sp_parent = None;
        sp_domain = 0;
        sp_start_us = 12.5;
        sp_dur_us = 1034.0625;
        sp_args = [ ("width", Event.Int 32); ("ok", Event.Bool true) ];
      };
    Event.Span
      {
        Event.sp_name = "select.worker";
        sp_id = 3;
        sp_parent = Some 0;
        sp_domain = 2;
        sp_start_us = 14.0;
        sp_dur_us = 0.0;
        sp_args = [];
      };
    Event.Metric (Event.Counter { Event.c_name = "select.runs"; c_value = 7 });
    Event.Metric (Event.Gauge { Event.g_name = "soc.sim.queue_depth_max"; g_value = 41.0 });
    Event.Metric
      (Event.Histogram
         {
           Event.h_name = "infogain.eval_combo_len";
           h_count = 3;
           h_sum = 7.0;
           h_min = 1.0;
           h_max = 4.0;
         });
  ]

let test_json_roundtrip () =
  List.iter
    (fun ev ->
      match Event.of_json (Event.to_json ev) with
      | Ok ev' -> Alcotest.(check bool) "of_json (to_json e) = e" true (Event.equal ev ev')
      | Error m -> Alcotest.fail m)
    sample_events

let test_jsonl_file_roundtrip () =
  let path = Filename.temp_file "flowtrace_tel" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Sink.jsonl oc in
  List.iter sink.Sink.emit sample_events;
  sink.Sink.close ();
  match Summary.load_jsonl path with
  | Error m -> Alcotest.fail m
  | Ok evs ->
      Alcotest.(check int) "event count" (List.length sample_events) (List.length evs);
      List.iter2
        (fun a b -> Alcotest.(check bool) "event round-trips" true (Event.equal a b))
        sample_events evs

let test_chrome_is_json_array () =
  let path = Filename.temp_file "flowtrace_tel" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  let sink = Sink.chrome oc in
  List.iter sink.Sink.emit sample_events;
  sink.Sink.close ();
  let ic = open_in path in
  let n = in_channel_length ic in
  let body = really_input_string ic n in
  close_in ic;
  match Tjson.parse body with
  | Error m -> Alcotest.fail ("chrome output is not JSON: " ^ m)
  | Ok (Tjson.List entries) ->
      Alcotest.(check bool) "non-empty" true (entries <> []);
      List.iter
        (fun e ->
          match Tjson.member "ph" e with
          | Some (Tjson.String _) -> ()
          | _ -> Alcotest.fail "trace_event entry lacks a \"ph\" phase")
        entries;
      (* a JSONL reader must reject this format with the helpful hint *)
      (let contains hay needle =
         let nh = String.length hay and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
         go 0
       in
       match Summary.load_jsonl path with
       | Error m -> Alcotest.(check bool) "hint mentions Chrome" true (contains m "Chrome")
       | Ok _ -> Alcotest.fail "load_jsonl accepted a Chrome trace")
  | Ok _ -> Alcotest.fail "chrome output is not a JSON array"

(* --- observation-only / no-op-when-disabled ------------------------- *)

let test_disabled_is_noop () =
  Tel.shutdown ();
  Tel.reset ();
  let c = Tel.Counter.v "test.noop_counter" in
  let g = Tel.Gauge.v "test.noop_gauge" in
  let h = Tel.Histogram.v "test.noop_hist" in
  Tel.Counter.add c 5;
  Tel.Gauge.set g 3.0;
  Tel.Gauge.max_ g 9.0;
  Tel.Histogram.observe h 1.0;
  Alcotest.(check int) "counter unchanged while disabled" 0 (Tel.Counter.value c);
  Alcotest.(check (float 0.0)) "gauge unchanged while disabled" 0.0 (Tel.Gauge.value g);
  Alcotest.(check int) "histogram unchanged while disabled" 0 (Tel.Histogram.count h)

let test_selection_identical_enabled_vs_disabled () =
  let inter = Scenario.interleave Scenario.scenario1 in
  Tel.shutdown ();
  let off = Select.select inter ~buffer_width:32 in
  Tel.install Sink.null;
  let on_ = Fun.protect ~finally:Tel.shutdown (fun () -> Select.select inter ~buffer_width:32) in
  Alcotest.(check (list string))
    "selection identical" (Select.selected_names off) (Select.selected_names on_);
  Alcotest.(check (float 0.0)) "gain identical" off.Select.gain on_.Select.gain;
  Alcotest.(check (float 0.0)) "coverage identical" off.Select.coverage on_.Select.coverage

(* --- counter determinism across jobs -------------------------------- *)

let counters_of_run ~jobs inter ~buffer_width =
  Tel.install Sink.null;
  Fun.protect ~finally:Tel.shutdown @@ fun () ->
  ignore (Select.select ~jobs ~pack:false inter ~buffer_width);
  List.filter_map
    (function Event.Counter c when c.Event.c_value <> 0 -> Some (c.Event.c_name, c.Event.c_value) | _ -> None)
    (Tel.metrics ())

let pp_counters cs =
  String.concat "; " (List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v) cs)

let check_counters_jobs_identical name inter ~buffer_width =
  (* warm the evaluator cache first (telemetry still off): scoring an
     interleave builds its cached evaluator once, so without this the
     jobs:1 run alone would carry infogain.evaluator_builds *)
  ignore (Select.select ~jobs:1 ~pack:false inter ~buffer_width);
  let c1 = counters_of_run ~jobs:1 inter ~buffer_width in
  let c2 = counters_of_run ~jobs:2 inter ~buffer_width in
  let c4 = counters_of_run ~jobs:4 inter ~buffer_width in
  Alcotest.(check string) (name ^ ": jobs 2 counters = jobs 1") (pp_counters c1) (pp_counters c2);
  Alcotest.(check string) (name ^ ": jobs 4 counters = jobs 1") (pp_counters c1) (pp_counters c4);
  Alcotest.(check bool)
    (name ^ ": candidates were actually counted")
    true
    (List.mem_assoc "select.candidates_streamed" c1)

let test_scenario_counters_jobs_identical () =
  check_counters_jobs_identical "scenario1"
    (Scenario.interleave Scenario.scenario1)
    ~buffer_width:32

let test_stress_counters_jobs_identical () =
  check_counters_jobs_identical "stress" (Stress.interleave ())
    ~buffer_width:Stress.default_buffer_width

(* --- pipeline integration -------------------------------------------- *)

let test_select_spans_and_counters_recorded () =
  let inter = Scenario.interleave Scenario.scenario2 in
  let sink, events = Sink.memory () in
  Tel.install sink;
  ignore (Select.select inter ~buffer_width:32);
  Tel.shutdown ();
  let evs = events () in
  let span_names =
    List.filter_map (function Event.Span s -> Some s.Event.sp_name | _ -> None) evs
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " span recorded") true (List.mem n span_names))
    [ "select"; "select.step1_2"; "select.pack"; "select.coverage"; "infogain.evaluator" ];
  (* spans nest: step1_2's parent is the select span *)
  let find_span name =
    List.find_map
      (function Event.Span s when String.equal s.Event.sp_name name -> Some s | _ -> None)
      evs
  in
  (match (find_span "select", find_span "select.step1_2") with
  | Some sel, Some step ->
      Alcotest.(check (option int)) "step1_2 nests under select" (Some sel.Event.sp_id)
        step.Event.sp_parent
  | _ -> Alcotest.fail "missing select/select.step1_2 spans");
  let summary = Summary.of_events evs in
  Alcotest.(check bool) "summary has spans" true (summary.Summary.spans <> []);
  Alcotest.(check bool) "summary has counters" true (summary.Summary.counters <> [])

let sim_counters ~seed =
  Tel.install Sink.null;
  Fun.protect ~finally:Tel.shutdown @@ fun () ->
  ignore (Scenario.run ~config:{ Scenario.default_run with Scenario.seed; rounds = 6 } Scenario.scenario1);
  List.filter_map
    (function Event.Counter c when c.Event.c_value <> 0 -> Some (c.Event.c_name, c.Event.c_value) | _ -> None)
    (Tel.metrics ())

let test_sim_counters_reproducible () =
  let a = sim_counters ~seed:3 in
  let b = sim_counters ~seed:3 in
  Alcotest.(check string) "same-seed sim counters identical" (pp_counters a) (pp_counters b);
  Alcotest.(check bool) "fires counted" true (List.mem_assoc "soc.sim.fires" a);
  Alcotest.(check bool)
    "per-IP counters present" true
    (List.exists (fun (n, _) -> String.length n > 11 && String.sub n 0 11 = "soc.sim.ip.") a)

let test_debug_session_spans () =
  let sink, events = Sink.memory () in
  Tel.install sink;
  let s =
    Fun.protect ~finally:Tel.shutdown (fun () ->
        Session.run ~seed:11 ~rounds:12 ~scenario:Scenario.scenario1
          ~bugs:[ Flowtrace_bug.Catalog.by_id 33 ] ~buffer_width:32 ())
  in
  let evs = events () in
  let spans name =
    List.filter
      (function Event.Span sp when String.equal sp.Event.sp_name name -> true | _ -> false)
      evs
  in
  Alcotest.(check int) "one debug.session span" 1 (List.length (spans "debug.session"));
  Alcotest.(check int)
    "one step span per investigation step"
    (List.length s.Session.steps)
    (List.length (spans "debug.session.step"))

let () =
  Alcotest.run "telemetry"
    [
      ( "encoding",
        [
          Alcotest.test_case "event JSON round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "JSONL file round-trip" `Quick test_jsonl_file_roundtrip;
          Alcotest.test_case "chrome sink emits a JSON array" `Quick test_chrome_is_json_array;
        ] );
      ( "purity",
        [
          Alcotest.test_case "metric updates are no-ops while disabled" `Quick
            test_disabled_is_noop;
          Alcotest.test_case "selection identical enabled vs disabled" `Quick
            test_selection_identical_enabled_vs_disabled;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "scenario counters: jobs 1/2/4 identical" `Quick
            test_scenario_counters_jobs_identical;
          Alcotest.test_case "stress counters: jobs 1/2/4 identical" `Slow
            test_stress_counters_jobs_identical;
          Alcotest.test_case "sim counters reproducible per seed" `Quick
            test_sim_counters_reproducible;
        ] );
      ( "integration",
        [
          Alcotest.test_case "select spans + counters recorded" `Quick
            test_select_spans_and_counters_recorded;
          Alcotest.test_case "debug session spans" `Quick test_debug_session_spans;
        ] );
    ]
