(* Tests for the SoC simulator and the T2 model. *)

open Flowtrace_core
open Flowtrace_soc

(* ------------------------------------------------------------------ *)
(* Event queue *)

let test_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~at:5 "c";
  Event_queue.push q ~at:1 "a";
  Event_queue.push q ~at:3 "b";
  let popped = List.init 3 (fun _ -> Event_queue.pop q) in
  Alcotest.(check (list (option (pair int string))))
    "sorted"
    [ Some (1, "a"); Some (3, "b"); Some (5, "c") ]
    popped;
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~at:7 s) [ "x"; "y"; "z" ];
  let popped = List.filter_map (fun _ -> Event_queue.pop q) (List.init 3 Fun.id) in
  Alcotest.(check (list (pair int string))) "insertion order" [ (7, "x"); (7, "y"); (7, "z") ] popped

let test_queue_negative_time () =
  let q = Event_queue.create () in
  match Event_queue.push q ~at:(-1) "bad" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_queue_many () =
  let q = Event_queue.create () in
  let rng = Rng.create 17 in
  List.iter (fun i -> Event_queue.push q ~at:(Rng.int rng 1000) i) (List.init 500 Fun.id);
  let rec drain last acc =
    match Event_queue.pop q with
    | None -> acc
    | Some (at, _) ->
        Alcotest.(check bool) "monotone" true (at >= last);
        drain at (acc + 1)
  in
  Alcotest.(check int) "all popped" 500 (drain 0 0)

(* ------------------------------------------------------------------ *)
(* T2 structure *)

let test_flow_shapes_match_table1 () =
  let check name states msgs =
    let f = T2.flow_by_name name in
    Alcotest.(check int) (name ^ " states") states (Flow.n_states f);
    Alcotest.(check int) (name ^ " messages") msgs (Flow.n_messages f)
  in
  check "PIOR" 6 5;
  check "PIOW" 3 2;
  check "NCUU" 4 3;
  check "NCUD" 3 2;
  check "Mon" 6 5

let test_sixteen_distinct_messages () =
  (* Table 5 lists m1..m16: the five flows share exactly [siincu]. *)
  Alcotest.(check int) "16 messages" 16 (List.length T2.all_messages)

let test_flows_valid () =
  List.iter
    (fun f ->
      match Flow.validate f with
      | Ok () -> ()
      | Error es -> Alcotest.failf "%s invalid: %s" f.Flow.name (String.concat "; " es))
    T2.flows

let test_channels_cover_messages () =
  (* every message travels on a declared channel *)
  List.iter
    (fun (m : Message.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "channel %s->%s" m.Message.src m.Message.dst)
        true
        (List.exists (fun (s, d, _) -> s = m.Message.src && d = m.Message.dst) T2.channels))
    T2.all_messages

(* ------------------------------------------------------------------ *)
(* Scenarios *)

let test_scenario_flows_match_table1 () =
  Alcotest.(check (list string)) "s1" [ "PIOR"; "PIOW"; "Mon" ] Scenario.scenario1.Scenario.flow_names;
  Alcotest.(check (list string)) "s2" [ "NCUU"; "NCUD"; "Mon" ] Scenario.scenario2.Scenario.flow_names;
  Alcotest.(check (list string)) "s3"
    [ "PIOR"; "PIOW"; "NCUU"; "NCUD" ]
    Scenario.scenario3.Scenario.flow_names

let test_scenario_message_pools () =
  (* shared siincu deduplicates in scenario 2 *)
  Alcotest.(check int) "s1 pool" 12 (List.length (Scenario.messages Scenario.scenario1));
  Alcotest.(check int) "s2 pool" 9 (List.length (Scenario.messages Scenario.scenario2));
  Alcotest.(check int) "s3 pool" 12 (List.length (Scenario.messages Scenario.scenario3))

let test_analysis_indices_unique () =
  List.iter
    (fun sc ->
      let idx = List.map (fun i -> i.Interleave.index) (Scenario.analysis_instances sc) in
      Alcotest.(check int) "unique" (List.length idx) (List.length (List.sort_uniq compare idx)))
    Scenario.all

(* ------------------------------------------------------------------ *)
(* Clean runs *)

let test_clean_run_completes () =
  List.iter
    (fun sc ->
      let out = Scenario.run ~config:{ Scenario.default_run with rounds = 10 } sc in
      Alcotest.(check int) (sc.Scenario.name ^ " no hangs") 0 (List.length out.Sim.hung);
      Alcotest.(check int) (sc.Scenario.name ^ " no failures") 0 (List.length out.Sim.failures);
      Alcotest.(check int)
        (sc.Scenario.name ^ " all complete")
        (10 * List.length sc.Scenario.flow_names)
        (List.length out.Sim.completed))
    Scenario.all

let test_run_deterministic () =
  let p1 = (Scenario.run ~config:{ Scenario.default_run with rounds = 6 } Scenario.scenario1).Sim.packets in
  let p2 = (Scenario.run ~config:{ Scenario.default_run with rounds = 6 } Scenario.scenario1).Sim.packets in
  Alcotest.(check bool) "same packet logs" true (p1 = p2)

let test_different_seeds_differ () =
  let p1 =
    (Scenario.run ~config:{ Scenario.default_run with rounds = 6; seed = 1 } Scenario.scenario1).Sim.packets
  in
  let p2 =
    (Scenario.run ~config:{ Scenario.default_run with rounds = 6; seed = 2 } Scenario.scenario1).Sim.packets
  in
  Alcotest.(check bool) "logs differ" true (p1 <> p2)

let test_analysis_trace_projects_onto_interleaving () =
  (* the packet log of an analysis-scale run must be a path of the
     materialized interleaving: with everything selected, exactly one
     consistent path remains and localization is well defined *)
  List.iter
    (fun sc ->
      let inter = Scenario.interleave sc in
      let out = Scenario.run_analysis ~seed:3 sc in
      let observed = List.map Packet.indexed out.Sim.packets in
      let n = Localize.consistent_paths inter ~selected:(fun _ -> true) ~observed in
      Alcotest.(check bool) (sc.Scenario.name ^ " trace is a path") true (n >= 1))
    Scenario.all

let test_atomic_mutex_in_traces () =
  (* no packet from another instance may appear while a Mon instance sits
     in its atomic m_data state, between dmusiidata (enters) and siincu
     (leaves) *)
  let out = Scenario.run_analysis ~seed:5 Scenario.scenario1 in
  let rec scan holder = function
    | [] -> ()
    | p :: rest ->
        (match holder with
        | Some inst when p.Packet.inst <> inst ->
            Alcotest.failf "instance %d fired while %d held the atomic data transfer" p.Packet.inst
              inst
        | _ -> ());
        let holder =
          if String.equal p.Packet.msg "dmusiidata" then Some p.Packet.inst
          else if String.equal p.Packet.msg "siincu" && holder = Some p.Packet.inst then None
          else holder
        in
        scan holder rest
  in
  scan None out.Sim.packets

(* ------------------------------------------------------------------ *)
(* Trace buffer *)

let selection () = Select.select ~strategy:Select.Greedy (Scenario.interleave Scenario.scenario1) ~buffer_width:32

let test_trace_buffer_filters () =
  let sel = selection () in
  let out = Scenario.run_analysis ~seed:4 Scenario.scenario1 in
  let buf = Trace_buffer.create ~depth:4096 sel in
  Trace_buffer.record_all buf out.Sim.packets;
  List.iter
    (fun e ->
      Alcotest.(check bool) "observable" true
        (Select.is_observable sel e.Trace_buffer.e_imsg.Indexed.base))
    (Trace_buffer.entries buf)

let test_trace_buffer_wraps () =
  let sel = selection () in
  let out = Scenario.run ~config:{ Scenario.default_run with rounds = 20 } Scenario.scenario1 in
  let buf = Trace_buffer.create ~depth:8 sel in
  Trace_buffer.record_all buf out.Sim.packets;
  Alcotest.(check bool) "wrapped" true (Trace_buffer.wrapped buf);
  Alcotest.(check int) "depth respected" 8 (List.length (Trace_buffer.entries buf))

let test_trace_buffer_partial_entries () =
  (* packed subgroups record partial entries with the subgroup's width *)
  let inter = Scenario.interleave Scenario.scenario1 in
  let sel = Select.select ~strategy:Select.Greedy inter ~buffer_width:32 in
  Alcotest.(check bool) "selection packs something" true (sel.Select.packed <> []);
  let out = Scenario.run_analysis ~seed:4 Scenario.scenario1 in
  let buf = Trace_buffer.create ~depth:4096 sel in
  Trace_buffer.record_all buf out.Sim.packets;
  let partials = List.filter (fun e -> e.Trace_buffer.e_partial) (Trace_buffer.entries buf) in
  Alcotest.(check bool) "has partial entries" true (partials <> []);
  List.iter
    (fun e ->
      Alcotest.(check bool) "partial narrower than buffer" true
        (e.Trace_buffer.e_bits < sel.Select.buffer_width))
    partials

(* ------------------------------------------------------------------ *)
(* Credit flow control *)

let test_write_credits_bound_inflight () =
  (* in-flight piowreq (sent, credit not yet returned) never exceeds the
     NCU's credit pool *)
  let out =
    Scenario.run ~config:{ Scenario.default_run with Scenario.rounds = 30; spacing = 20 }
      Scenario.scenario1
  in
  let inflight = ref 0 and max_inflight = ref 0 in
  List.iter
    (fun (p : Packet.t) ->
      if String.equal p.Packet.msg "piowreq" then begin
        incr inflight;
        if !inflight > !max_inflight then max_inflight := !inflight
      end
      else if String.equal p.Packet.msg "piowcrd" then decr inflight)
    out.Sim.packets;
  Alcotest.(check bool) "bounded by pool" true (!max_inflight <= T2.write_credit_pool);
  Alcotest.(check bool) "pool actually exercised" true (!max_inflight >= 2);
  (* backpressure is not starvation: every write still completes *)
  Alcotest.(check int) "no hangs" 0 (List.length out.Sim.hung)

(* ------------------------------------------------------------------ *)
(* Trace I/O *)

let test_trace_io_roundtrip () =
  let out = Scenario.run ~config:{ Scenario.default_run with Scenario.rounds = 5 } Scenario.scenario1 in
  let printed = Trace_io.print out.Sim.packets in
  let parsed = Trace_io.parse printed in
  Alcotest.(check bool) "round-trip" true (parsed = out.Sim.packets)

let test_trace_io_empty_fields () =
  let p =
    { Packet.cycle = 3; flow = "f"; inst = 1; msg = "m"; src = "a"; dst = "b"; fields = [] }
  in
  Alcotest.(check bool) "round-trip" true (Trace_io.parse (Trace_io.print [ p ]) = [ p ])

let test_trace_io_comments_and_blanks () =
  let text = "# header\n\n1 f 2 m a b x=4\n # trailing\n" in
  match Trace_io.parse text with
  | [ p ] ->
      Alcotest.(check int) "cycle" 1 p.Packet.cycle;
      Alcotest.(check (list (pair string int))) "fields" [ ("x", 4) ] p.Packet.fields
  | ps -> Alcotest.failf "expected 1 packet, got %d" (List.length ps)

let test_trace_io_rejects_adversarial_names () =
  (* names that would corrupt the line-oriented wire format must be
     refused at print time, not silently emitted as unparseable text *)
  let base = { Packet.cycle = 1; flow = "f"; inst = 0; msg = "m"; src = "a"; dst = "b"; fields = [] } in
  List.iter
    (fun p ->
      match Trace_io.print [ p ] with
      | exception Invalid_argument _ -> ()
      | s -> Alcotest.failf "expected Invalid_argument, printed %S" s)
    [
      { base with Packet.msg = "two words" };
      { base with Packet.msg = "" };
      { base with Packet.flow = "a#b" };
      { base with Packet.src = "x=y" };
      { base with Packet.dst = "p,q" };
      { base with Packet.msg = "tab\there" };
      { base with Packet.fields = [ ("bad key", 1) ] };
      { base with Packet.fields = [ ("k=v", 1) ] };
    ]

(* any name safe for the wire format: nonempty, no whitespace/#/=/, *)
let safe_name_gen =
  let open QCheck.Gen in
  let safe_char =
    oneof [ char_range 'a' 'z'; char_range 'A' 'Z'; char_range '0' '9'; oneofl [ '_'; '-'; '.' ] ]
  in
  map (fun l -> String.init (List.length l) (List.nth l)) (list_size (int_range 1 8) safe_char)

let packet_gen =
  let open QCheck.Gen in
  let field = pair safe_name_gen small_nat in
  map
    (fun (cycle, (flow, msg), (src, dst), inst, fields) ->
      (* field keys must be distinct for the round-trip to be exact *)
      let fields =
        List.fold_left (fun acc (k, v) -> if List.mem_assoc k acc then acc else (k, v) :: acc) [] fields
      in
      { Packet.cycle; flow; inst; msg; src; dst; fields })
    (tup5 small_nat (pair safe_name_gen safe_name_gen) (pair safe_name_gen safe_name_gen)
       small_nat (list_size (int_range 0 4) field))

let prop_trace_io_roundtrip =
  QCheck.Test.make ~name:"parse (print ps) = ps for arbitrary safe packets" ~count:200
    (QCheck.make (QCheck.Gen.list_size (QCheck.Gen.int_range 0 20) packet_gen))
    (fun ps -> Trace_io.parse (Trace_io.print ps) = ps)

let test_trace_io_errors () =
  (match Trace_io.parse "1 f x m a b -" with
  | exception Trace_io.Parse_error e -> Alcotest.(check int) "line" 1 e.Trace_io.line
  | _ -> Alcotest.fail "expected Parse_error");
  match Trace_io.parse "1 f 2 m a b x=oops" with
  | exception Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error"

let () =
  Alcotest.run "soc"
    [
      ( "event_queue",
        [
          Alcotest.test_case "order" `Quick test_queue_order;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "negative time" `Quick test_queue_negative_time;
          Alcotest.test_case "many events" `Quick test_queue_many;
        ] );
      ( "t2",
        [
          Alcotest.test_case "Table 1 shapes" `Quick test_flow_shapes_match_table1;
          Alcotest.test_case "16 messages" `Quick test_sixteen_distinct_messages;
          Alcotest.test_case "flows valid" `Quick test_flows_valid;
          Alcotest.test_case "channels cover messages" `Quick test_channels_cover_messages;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "Table 1 flows" `Quick test_scenario_flows_match_table1;
          Alcotest.test_case "message pools" `Quick test_scenario_message_pools;
          Alcotest.test_case "unique indices" `Quick test_analysis_indices_unique;
        ] );
      ( "runs",
        [
          Alcotest.test_case "clean runs complete" `Quick test_clean_run_completes;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "trace projects onto interleaving" `Quick
            test_analysis_trace_projects_onto_interleaving;
          Alcotest.test_case "atomic mutex respected" `Quick test_atomic_mutex_in_traces;
        ] );
      ( "trace_buffer",
        [
          Alcotest.test_case "filters" `Quick test_trace_buffer_filters;
          Alcotest.test_case "wraps" `Quick test_trace_buffer_wraps;
          Alcotest.test_case "partial entries" `Quick test_trace_buffer_partial_entries;
        ] );
      ( "credits",
        [ Alcotest.test_case "in-flight writes bounded" `Quick test_write_credits_bound_inflight ] );
      ( "trace_io",
        [
          Alcotest.test_case "round-trip" `Quick test_trace_io_roundtrip;
          Alcotest.test_case "empty fields" `Quick test_trace_io_empty_fields;
          Alcotest.test_case "comments and blanks" `Quick test_trace_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_trace_io_errors;
          Alcotest.test_case "adversarial names rejected" `Quick
            test_trace_io_rejects_adversarial_names;
          QCheck_alcotest.to_alcotest prop_trace_io_roundtrip;
        ] );
    ]
