(* Tests for the observation-path fault model, the trace-buffer overflow
   policies and the recovering trace parser. *)

open Flowtrace_core
open Flowtrace_soc

let packets ?(rounds = 8) ?(seed = 4) () =
  let out = Scenario.run ~config:{ Scenario.default_run with Scenario.rounds; seed } Scenario.scenario1 in
  out.Sim.packets

let selection () =
  Select.select ~strategy:Select.Greedy (Scenario.interleave Scenario.scenario1) ~buffer_width:32

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_spec_parse_roundtrip () =
  let specs =
    [
      Obs_fault.none;
      { Obs_fault.none with Obs_fault.drop = 0.25 };
      { Obs_fault.drop = 0.1; corrupt = 0.05; reorder = 3; blackouts = [ (100, 200) ]; truncate = Some 50 };
      { Obs_fault.none with Obs_fault.blackouts = [ (1, 2); (10, 20) ] };
    ]
  in
  List.iter
    (fun s ->
      match Obs_fault.parse_spec (Obs_fault.spec_to_string s) with
      | Ok s' -> Alcotest.(check bool) (Obs_fault.spec_to_string s) true (s = s')
      | Error e -> Alcotest.failf "round-trip failed on %S: %s" (Obs_fault.spec_to_string s) e)
    specs

let test_spec_parse_errors () =
  List.iter
    (fun bad ->
      match Obs_fault.parse_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error on %S" bad)
    [ "drop=2.0"; "drop=-0.1"; "drop=x"; "bogus=1"; "blackout=5"; "blackout=9-3"; "trunc=-1"; "reorder=oops"; "drop" ]

(* ------------------------------------------------------------------ *)
(* Pipeline purity and determinism *)

let test_none_is_identity () =
  let ps = packets () in
  let faulted, rep = Obs_fault.apply ~seed:7 Obs_fault.none ps in
  Alcotest.(check bool) "identity" true (faulted = ps);
  Alcotest.(check int) "total" (List.length ps) rep.Obs_fault.r_total;
  Alcotest.(check int) "nothing lost" 0 (Obs_fault.lost rep);
  Alcotest.(check int) "nothing corrupted" 0 rep.Obs_fault.r_corrupted;
  Alcotest.(check int) "nothing reordered" 0 rep.Obs_fault.r_reordered

let test_apply_deterministic () =
  let ps = packets () in
  let spec = { Obs_fault.drop = 0.2; corrupt = 0.1; reorder = 2; blackouts = [ (40, 80) ]; truncate = None } in
  let a, ra = Obs_fault.apply ~seed:99 spec ps in
  let b, rb = Obs_fault.apply ~seed:99 spec ps in
  Alcotest.(check bool) "packets identical" true (a = b);
  Alcotest.(check bool) "reports identical" true (ra = rb);
  let c, _ = Obs_fault.apply ~seed:100 spec ps in
  Alcotest.(check bool) "another seed differs somewhere" true (c <> a || List.length ps < 5)

let test_drop_all () =
  let ps = packets () in
  let faulted, rep = Obs_fault.apply ~seed:3 { Obs_fault.none with Obs_fault.drop = 1.0 } ps in
  Alcotest.(check int) "everything dropped" 0 (List.length faulted);
  Alcotest.(check int) "accounted" (List.length ps) rep.Obs_fault.r_dropped

let test_truncate () =
  let ps = packets () in
  let n = 5 in
  let faulted, rep = Obs_fault.apply ~seed:3 { Obs_fault.none with Obs_fault.truncate = Some n } ps in
  Alcotest.(check int) "kept n" n (List.length faulted);
  Alcotest.(check bool) "prefix kept" true (faulted = List.filteri (fun i _ -> i < n) ps);
  Alcotest.(check int) "accounted" (List.length ps - n) rep.Obs_fault.r_truncated

let test_blackout () =
  let ps = packets () in
  let lo, hi = (30, 90) in
  let faulted, rep =
    Obs_fault.apply ~seed:3 { Obs_fault.none with Obs_fault.blackouts = [ (lo, hi) ] } ps
  in
  List.iter
    (fun (p : Packet.t) ->
      Alcotest.(check bool) "outside window" true (p.Packet.cycle < lo || p.Packet.cycle > hi))
    faulted;
  let inside =
    List.length (List.filter (fun (p : Packet.t) -> p.Packet.cycle >= lo && p.Packet.cycle <= hi) ps)
  in
  Alcotest.(check int) "accounted" inside rep.Obs_fault.r_blackout;
  Alcotest.(check int) "rest survives" (List.length ps - inside) (List.length faulted)

let test_corrupt_preserves_identity () =
  let ps = packets ~rounds:12 () in
  let faulted, rep = Obs_fault.apply ~seed:8 { Obs_fault.none with Obs_fault.corrupt = 0.5 } ps in
  Alcotest.(check int) "length preserved" (List.length ps) (List.length faulted);
  Alcotest.(check bool) "some corruption happened" true (rep.Obs_fault.r_corrupted > 0);
  let changed = ref 0 in
  List.iter2
    (fun (a : Packet.t) (b : Packet.t) ->
      Alcotest.(check bool) "identity untouched" true
        (a.Packet.cycle = b.Packet.cycle && a.Packet.flow = b.Packet.flow
        && a.Packet.inst = b.Packet.inst && a.Packet.msg = b.Packet.msg
        && a.Packet.src = b.Packet.src && a.Packet.dst = b.Packet.dst);
      if a.Packet.fields <> b.Packet.fields then incr changed)
    ps faulted;
  Alcotest.(check int) "report counts payload changes" !changed rep.Obs_fault.r_corrupted

let test_reorder_bounded_displacement () =
  let ps = packets ~rounds:12 () in
  let w = 3 in
  let faulted, rep = Obs_fault.apply ~seed:8 { Obs_fault.none with Obs_fault.reorder = w } ps in
  Alcotest.(check int) "length preserved" (List.length ps) (List.length faulted);
  Alcotest.(check bool) "some reordering happened" true (rep.Obs_fault.r_reordered > 0);
  (* every packet moved at most w positions, and content is a permutation *)
  let a = Array.of_list ps and b = Array.of_list faulted in
  Array.iteri
    (fun j p ->
      let found = ref false in
      for i = max 0 (j - w) to min (Array.length a - 1) (j + w) do
        if (not !found) && a.(i) == p then found := true
      done;
      Alcotest.(check bool) "displacement bounded" true !found)
    b;
  Alcotest.(check bool) "permutation" true
    (List.sort compare ps = List.sort compare faulted)

let test_loss_accounting () =
  let ps = packets ~rounds:12 () in
  let spec = { Obs_fault.drop = 0.3; corrupt = 0.0; reorder = 0; blackouts = [ (20, 60) ]; truncate = Some 40 } in
  let faulted, rep = Obs_fault.apply ~seed:21 spec ps in
  Alcotest.(check int) "total in = input length" (List.length ps) rep.Obs_fault.r_total;
  Alcotest.(check int) "survivors + lost = total" (List.length ps)
    (List.length faulted + Obs_fault.lost rep)

(* ------------------------------------------------------------------ *)
(* Trace-buffer overflow policies *)

let observable_stream sel ps =
  List.filter (fun (p : Packet.t) -> Select.is_observable sel p.Packet.msg) ps

let test_drop_newest_keeps_earliest () =
  let sel = selection () in
  let ps = packets ~rounds:20 () in
  let depth = 8 in
  let buf = Trace_buffer.create ~policy:Trace_buffer.Drop_newest ~depth sel in
  Trace_buffer.record_all buf ps;
  let obs = observable_stream sel ps in
  Alcotest.(check bool) "stream overflows the buffer" true (List.length obs > depth);
  let expected = List.filteri (fun i _ -> i < depth) (List.map Packet.indexed obs) in
  Alcotest.(check bool) "earliest history frozen" true (Trace_buffer.observed buf = expected);
  let ov, refused, so = Trace_buffer.drop_breakdown buf in
  Alcotest.(check int) "no overwrites" 0 ov;
  Alcotest.(check int) "no sampling" 0 so;
  Alcotest.(check int) "refusals accounted" (List.length obs - depth) refused

let test_sample_keeps_every_kth () =
  let sel = selection () in
  let ps = packets ~rounds:10 () in
  let k = 3 in
  let buf = Trace_buffer.create ~policy:(Trace_buffer.Sample k) ~depth:4096 sel in
  Trace_buffer.record_all buf ps;
  let obs = List.map Packet.indexed (observable_stream sel ps) in
  let expected = List.filteri (fun i _ -> i mod k = 0) obs in
  Alcotest.(check bool) "systematic thinning" true (Trace_buffer.observed buf = expected);
  let ov, refused, so = Trace_buffer.drop_breakdown buf in
  Alcotest.(check int) "no overwrites" 0 ov;
  Alcotest.(check int) "no refusals" 0 refused;
  Alcotest.(check int) "thinned accounted" (List.length obs - List.length expected) so

let test_drop_oldest_matches_default () =
  let sel = selection () in
  let ps = packets ~rounds:20 () in
  let explicit = Trace_buffer.create ~policy:Trace_buffer.Drop_oldest ~depth:8 sel in
  let default = Trace_buffer.create ~depth:8 sel in
  Trace_buffer.record_all explicit ps;
  Trace_buffer.record_all default ps;
  Alcotest.(check bool) "explicit oldest = default" true
    (Trace_buffer.observed explicit = Trace_buffer.observed default);
  (* wrap keeps the most recent [depth] observable entries *)
  let obs = List.map Packet.indexed (observable_stream sel ps) in
  let n = List.length obs in
  let expected = List.filteri (fun i _ -> i >= n - 8) obs in
  Alcotest.(check bool) "suffix retained" true (Trace_buffer.observed explicit = expected)

let test_buffer_accounting_invariant () =
  let sel = selection () in
  let ps = packets ~rounds:20 () in
  let offered = List.length (observable_stream sel ps) in
  List.iter
    (fun policy ->
      let buf = Trace_buffer.create ~policy ~depth:8 sel in
      Trace_buffer.record_all buf ps;
      let recorded, dropped = Trace_buffer.stats buf in
      let ov, refused, so = Trace_buffer.drop_breakdown buf in
      Alcotest.(check int) "dropped = by-cause sum" dropped (ov + refused + so);
      (* every observable occurrence is either in the ring now, was
         overwritten after being recorded, or never made it in *)
      Alcotest.(check int) "offered = recorded + refused + sampled_out" offered
        (recorded + refused + so);
      Alcotest.(check int) "retained = recorded - overwritten"
        (List.length (Trace_buffer.entries buf))
        (recorded - ov))
    [ Trace_buffer.Drop_oldest; Trace_buffer.Drop_newest; Trace_buffer.Sample 3 ]

let test_create_validation () =
  let sel = selection () in
  (match Trace_buffer.create ~depth:0 sel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for depth 0");
  match Trace_buffer.create ~policy:(Trace_buffer.Sample 0) ~depth:8 sel with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for Sample 0"

let test_policy_parse_roundtrip () =
  List.iter
    (fun p ->
      match Trace_buffer.parse_policy (Trace_buffer.policy_to_string p) with
      | Ok p' -> Alcotest.(check bool) (Trace_buffer.policy_to_string p) true (p = p')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)
    [ Trace_buffer.Drop_oldest; Trace_buffer.Drop_newest; Trace_buffer.Sample 4 ];
  List.iter
    (fun bad ->
      match Trace_buffer.parse_policy bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected error on %S" bad)
    [ "latest"; "sample:0"; "sample:x"; "sample:" ]

(* ------------------------------------------------------------------ *)
(* Determinism across selection jobs and overflow policies (the faulted
   observed trace must be a pure function of seed, spec and policy) *)

let faulted_observed ~jobs ~policy spec =
  let inter = Scenario.interleave Scenario.scenario1 in
  let sel = Select.select ~jobs ~strategy:Select.Greedy inter ~buffer_width:32 in
  let ps = packets ~rounds:14 () in
  let faulted, _ = Obs_fault.apply ~seed:42 spec ps in
  let buf = Trace_buffer.create ~policy ~depth:16 sel in
  Trace_buffer.record_all buf faulted;
  Trace_buffer.observed buf

let test_faulted_trace_jobs_identical () =
  let spec = { Obs_fault.drop = 0.15; corrupt = 0.1; reorder = 2; blackouts = []; truncate = None } in
  List.iter
    (fun policy ->
      let o1 = faulted_observed ~jobs:1 ~policy spec in
      let o2 = faulted_observed ~jobs:2 ~policy spec in
      let o4 = faulted_observed ~jobs:4 ~policy spec in
      let name = Trace_buffer.policy_to_string policy in
      Alcotest.(check bool) (name ^ ": jobs 2 = jobs 1") true (o2 = o1);
      Alcotest.(check bool) (name ^ ": jobs 4 = jobs 1") true (o4 = o1))
    [ Trace_buffer.Drop_oldest; Trace_buffer.Drop_newest; Trace_buffer.Sample 2 ]

(* ------------------------------------------------------------------ *)
(* Lenient parsing *)

let test_lenient_on_clean_input () =
  let ps = packets () in
  let text = Trace_io.print ps in
  let parsed, diags = Trace_io.parse_lenient text in
  Alcotest.(check bool) "same packets as strict" true (parsed = Trace_io.parse text);
  Alcotest.(check int) "no diagnostics" 0 (List.length diags)

let test_lenient_skips_bad_lines () =
  let text = "1 f 2 m a b x=4\ngarbage line\n2 f 2 m a b -\n3 f oops m a b -\n" in
  let parsed, diags = Trace_io.parse_lenient ~file:"t.trace" text in
  Alcotest.(check int) "good packets kept" 2 (List.length parsed);
  Alcotest.(check int) "one diagnostic per bad line" 2 (List.length diags);
  List.iter2
    (fun (d : Flowtrace_analysis.Diagnostic.t) line ->
      Alcotest.(check string) "code" "TR001" d.Flowtrace_analysis.Diagnostic.code;
      Alcotest.(check int) "line" line d.Flowtrace_analysis.Diagnostic.span.Srcspan.line)
    diags [ 2; 4 ]

let test_lenient_error_budget () =
  let bad = String.concat "\n" (List.init 10 (fun i -> Printf.sprintf "junk %d" i)) in
  match Trace_io.parse_lenient ~max_errors:3 bad with
  | exception Trace_io.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected Parse_error once the budget is exceeded"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs_fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parse round-trip" `Quick test_spec_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "none is identity" `Quick test_none_is_identity;
          Alcotest.test_case "deterministic per seed" `Quick test_apply_deterministic;
          Alcotest.test_case "drop=1 drops all" `Quick test_drop_all;
          Alcotest.test_case "truncate keeps prefix" `Quick test_truncate;
          Alcotest.test_case "blackout removes window" `Quick test_blackout;
          Alcotest.test_case "corruption preserves identity" `Quick test_corrupt_preserves_identity;
          Alcotest.test_case "reorder displacement bounded" `Quick test_reorder_bounded_displacement;
          Alcotest.test_case "loss accounting" `Quick test_loss_accounting;
        ] );
      ( "buffer policies",
        [
          Alcotest.test_case "newest keeps earliest" `Quick test_drop_newest_keeps_earliest;
          Alcotest.test_case "sample keeps every k-th" `Quick test_sample_keeps_every_kth;
          Alcotest.test_case "oldest matches default" `Quick test_drop_oldest_matches_default;
          Alcotest.test_case "accounting invariant" `Quick test_buffer_accounting_invariant;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "policy parse round-trip" `Quick test_policy_parse_roundtrip;
          Alcotest.test_case "faulted trace: jobs 1/2/4 identical" `Quick
            test_faulted_trace_jobs_identical;
        ] );
      ( "lenient parsing",
        [
          Alcotest.test_case "clean input = strict" `Quick test_lenient_on_clean_input;
          Alcotest.test_case "skips bad lines with diagnostics" `Quick test_lenient_skips_bad_lines;
          Alcotest.test_case "error budget" `Quick test_lenient_error_budget;
        ] );
    ]
