(* Tests for the root-cause analysis engine: evidence, cause catalogs and
   debug sessions. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_bug
open Flowtrace_debug

(* ------------------------------------------------------------------ *)
(* Cause catalogs *)

let test_cause_counts_match_table1 () =
  Alcotest.(check int) "scenario 1" 9 (Cause.count 1);
  Alcotest.(check int) "scenario 2" 8 (Cause.count 2);
  Alcotest.(check int) "scenario 3" 9 (Cause.count 3)

let test_cause_rules_reference_scenario_messages () =
  List.iter
    (fun sc ->
      let msgs = List.map (fun (m : Message.t) -> m.Message.name) (Scenario.messages sc) in
      List.iter
        (fun (c : Cause.t) ->
          List.iter
            (fun rule ->
              match Cause.rule_message rule with
              | Some m ->
                  Alcotest.(check bool)
                    (Printf.sprintf "s%d cause %d rule message %s declared" sc.Scenario.id
                       c.Cause.c_id m)
                    true (List.mem m msgs)
              | None -> ())
            c.Cause.c_rules)
        (Cause.for_scenario sc.Scenario.id))
    Scenario.all

let test_cause_flows_reference_scenario_flows () =
  List.iter
    (fun sc ->
      List.iter
        (fun (c : Cause.t) ->
          List.iter
            (fun rule ->
              match rule with
              | Cause.Exonerate_if_flow_healthy f ->
                  Alcotest.(check bool)
                    (Printf.sprintf "s%d cause %d flow %s participates" sc.Scenario.id c.Cause.c_id f)
                    true
                    (List.mem f sc.Scenario.flow_names)
              | _ -> ())
            c.Cause.c_rules)
        (Cause.for_scenario sc.Scenario.id))
    Scenario.all

(* ------------------------------------------------------------------ *)
(* Evidence *)

let small_session ?(bug_ids = [ 33 ]) ?(seed = 11) scenario =
  Session.run ~seed ~rounds:12 ~scenario ~bugs:(List.map Catalog.by_id bug_ids) ~buffer_width:32 ()

let test_evidence_clean_run_all_ok () =
  let s = small_session ~bug_ids:[] Scenario.scenario1 in
  List.iter
    (fun e ->
      if e.Evidence.me_observable && e.Evidence.me_payload_visible then
        Alcotest.(check bool) (e.Evidence.me_msg ^ " ok") true
          (Evidence.seen_ok s.Session.evidence e.Evidence.me_msg))
    s.Session.evidence.Evidence.messages

let test_evidence_drop_shows_absent () =
  let s = small_session ~bug_ids:[ 33 ] Scenario.scenario1 in
  Alcotest.(check bool) "dmusiidata absent" true (Evidence.absent s.Session.evidence "dmusiidata");
  Alcotest.(check bool) "Mon unhealthy" true
    (not (Evidence.flow_healthy s.Session.evidence "Mon"));
  Alcotest.(check bool) "PIOW healthy" true (Evidence.flow_healthy s.Session.evidence "PIOW")

let test_evidence_unobservable_is_silent () =
  let s = small_session ~bug_ids:[ 33 ] Scenario.scenario1 in
  (* piordreq is never selected at width 32 in scenario 1 *)
  match Evidence.for_message s.Session.evidence "piordreq" with
  | Some e ->
      Alcotest.(check bool) "not observable" false e.Evidence.me_observable;
      Alcotest.(check bool) "no seen_ok" false (Evidence.seen_ok s.Session.evidence "piordreq");
      Alcotest.(check bool) "no absent" false (Evidence.absent s.Session.evidence "piordreq")
  | None -> Alcotest.fail "piordreq missing from evidence"

(* ------------------------------------------------------------------ *)
(* Sessions / case studies *)

let test_cs1_roots_dmu_interrupt () =
  let s = Case_study.run ~rounds:20 (Case_study.by_id 1) in
  Alcotest.(check int) "one plausible cause" 1 (List.length s.Session.plausible);
  match s.Session.plausible with
  | [ c ] ->
      Alcotest.(check string) "DMU" "DMU" c.Cause.c_ip;
      Alcotest.(check bool) "non-generation" true
        (String.length c.Cause.c_desc > 0
        && String.equal c.Cause.c_desc "Non-generation of Mondo interrupt by DMU")
  | _ -> Alcotest.fail "unexpected plausible set"

let test_all_case_studies_keep_true_cause () =
  (* soundness: the IP of the activated bug is always among the plausible
     causes' IPs — elimination never exonerates the real culprit *)
  List.iter
    (fun cs ->
      let s = Case_study.run ~rounds:20 cs in
      let bug = Case_study.bug cs in
      Alcotest.(check bool)
        (Printf.sprintf "cs%d keeps %s" cs.Case_study.cs_id bug.Bug.ip)
        true
        (List.exists (fun c -> String.equal c.Cause.c_ip bug.Bug.ip) s.Session.plausible))
    Case_study.all

let test_pruning_is_substantial () =
  List.iter
    (fun cs ->
      let s = Case_study.run ~rounds:20 cs in
      Alcotest.(check bool)
        (Printf.sprintf "cs%d prunes > 50%%" cs.Case_study.cs_id)
        true
        (Session.pruned_fraction s > 0.5))
    Case_study.all

let test_elimination_monotone () =
  (* Figure 6: remaining pairs and causes never increase along the steps *)
  List.iter
    (fun cs ->
      let s = Case_study.run ~rounds:20 cs in
      let rec check prev_pairs prev_causes = function
        | [] -> ()
        | st :: rest ->
            Alcotest.(check bool) "pairs monotone" true (st.Session.st_pairs_remaining <= prev_pairs);
            Alcotest.(check bool) "causes monotone" true
              (st.Session.st_causes_remaining <= prev_causes);
            check st.Session.st_pairs_remaining st.Session.st_causes_remaining rest
      in
      check (List.length s.Session.legal_pairs) s.Session.causes_total s.Session.steps)
    Case_study.all

let test_sessions_deterministic () =
  let a = Case_study.run ~rounds:12 (Case_study.by_id 2) in
  let b = Case_study.run ~rounds:12 (Case_study.by_id 2) in
  Alcotest.(check bool) "same steps" true (a.Session.steps = b.Session.steps);
  Alcotest.(check int) "same plausible" (List.length a.Session.plausible)
    (List.length b.Session.plausible)

let test_clean_session_no_symptom () =
  let s = small_session ~bug_ids:[] Scenario.scenario1 in
  Alcotest.(check bool) "no symptom" true (s.Session.symptom = Inject.No_symptom)

let test_legal_pairs () =
  let pairs = Session.legal_pairs Scenario.scenario1 in
  Alcotest.(check bool) "contains NCU->DMU" true (List.mem ("NCU", "DMU") pairs);
  Alcotest.(check bool) "contains DMU->SIU" true (List.mem ("DMU", "SIU") pairs);
  Alcotest.(check int) "unique" (List.length pairs)
    (List.length (List.sort_uniq compare pairs))

(* ------------------------------------------------------------------ *)
(* Lossy observation: fault injection on the observation path and the
   evidence-trust fallback *)

let test_session_obs_faults_none_is_pure () =
  let run ?obs_faults () =
    Session.run ?obs_faults ~seed:11 ~rounds:12 ~scenario:Scenario.scenario1
      ~bugs:[ Catalog.by_id 33 ] ~buffer_width:32 ()
  in
  let a = run () in
  let b = run ~obs_faults:Obs_fault.none () in
  Alcotest.(check bool) "same steps" true (a.Session.steps = b.Session.steps);
  Alcotest.(check (list int)) "same plausible"
    (List.map (fun c -> c.Cause.c_id) a.Session.plausible)
    (List.map (fun c -> c.Cause.c_id) b.Session.plausible);
  Alcotest.(check bool) "no report" true (b.Session.obs_report = None);
  Alcotest.(check bool) "full trust" true (b.Session.trust = Session.Full);
  Alcotest.(check bool) "no fallback" false (Session.fallback_used b)

let test_session_obs_faults_deterministic () =
  let spec = { Obs_fault.none with Obs_fault.drop = 0.3; corrupt = 0.1 } in
  let run () =
    Session.run ~obs_faults:spec ~seed:11 ~rounds:12 ~scenario:Scenario.scenario1
      ~bugs:[ Catalog.by_id 33 ] ~buffer_width:32 ()
  in
  let a = run () in
  let b = run () in
  Alcotest.(check bool) "same report" true (a.Session.obs_report = b.Session.obs_report);
  Alcotest.(check bool) "same steps" true (a.Session.steps = b.Session.steps);
  Alcotest.(check (list int)) "same plausible"
    (List.map (fun c -> c.Cause.c_id) a.Session.plausible)
    (List.map (fun c -> c.Cause.c_id) b.Session.plausible);
  (match a.Session.obs_report with
  | Some r -> Alcotest.(check bool) "faults accounted" true (Obs_fault.lost r > 0)
  | None -> Alcotest.fail "expected a fault report");
  (* the true culprit survives even on the degraded evidence *)
  Alcotest.(check bool) "true cause kept" true
    (List.exists (fun c -> String.equal c.Cause.c_ip (Catalog.by_id 33).Bug.ip) a.Session.plausible)

(* Crafted evidence where absence is the only exonerating signal for one
   cause: under a lossy observer, absence is exactly the evidence class
   that fires spuriously, so Full trust empties the candidate set and the
   first fallback tier must resurrect that cause. *)
let lossy_looking_evidence () =
  let mev ?(seen = 0) ?(golden = 0) msg =
    {
      Evidence.me_msg = msg;
      me_src = "X";
      me_dst = "Y";
      me_observable = true;
      me_seen = seen;
      me_golden = golden;
      me_payload_visible = true;
      me_corrupt = false;
    }
  in
  {
    Evidence.messages =
      [
        mev "siincu" ~seen:4 ~golden:4;
        mev "dmusiidata" ~seen:4 ~golden:4;
        mev "reqtot" ~seen:0 ~golden:3;
        mev "grant" ~seen:1 ~golden:3;
        mev "mondoacknack" ~seen:2 ~golden:2;
      ];
    unhealthy_flows = [ "Mon" ];
    symptom = Inject.No_symptom;
  }

let plausible_ids (p, _) = List.sort compare (List.map (fun c -> c.Cause.c_id) p)
let implicated_ids (_, i) = List.sort compare (List.map (fun c -> c.Cause.c_id) i)

let test_eliminate_trust_tiers () =
  let ev = lossy_looking_evidence () in
  let full = Session.eliminate ~trust:Session.Full ev 1 in
  Alcotest.(check (list int)) "full trust exonerates everything" [] (plausible_ids full);
  let tier1 = Session.eliminate ~trust:Session.No_absence_exoneration ev 1 in
  Alcotest.(check (list int)) "absence-free tier keeps the absence-exonerated cause" [ 8 ]
    (plausible_ids tier1);
  Alcotest.(check (list int)) "and it is positively implicated" [ 8 ] (implicated_ids tier1);
  let tier2 = Session.eliminate ~trust:Session.Triage_only ev 1 in
  Alcotest.(check (list int)) "triage keeps every cause on unhealthy flows" [ 1; 2; 3; 8; 9 ]
    (plausible_ids tier2)

let test_trust_tier_monotone () =
  (* dropping trust can only grow the candidate set *)
  let ev = lossy_looking_evidence () in
  let n trust = List.length (fst (Session.eliminate ~trust ev 1)) in
  Alcotest.(check bool) "tier1 >= full" true
    (n Session.No_absence_exoneration >= n Session.Full);
  Alcotest.(check bool) "tier2 >= tier1" true
    (n Session.Triage_only >= n Session.No_absence_exoneration)

let test_trust_to_string_distinct () =
  let names = List.map Session.trust_to_string
      [ Session.Full; Session.No_absence_exoneration; Session.Triage_only ]
  in
  Alcotest.(check int) "distinct renderings" 3 (List.length (List.sort_uniq compare names))

let test_messages_investigated_counts_entries () =
  let s = Case_study.run ~rounds:20 (Case_study.by_id 1) in
  let from_steps = List.fold_left (fun acc st -> acc + st.Session.st_entries) 0 s.Session.steps in
  Alcotest.(check int) "totals agree" from_steps s.Session.messages_investigated;
  Alcotest.(check bool) "tens of messages" true (s.Session.messages_investigated > 20)

let () =
  Alcotest.run "debug"
    [
      ( "causes",
        [
          Alcotest.test_case "Table 1 counts" `Quick test_cause_counts_match_table1;
          Alcotest.test_case "rules reference scenario messages" `Quick
            test_cause_rules_reference_scenario_messages;
          Alcotest.test_case "flow rules reference scenario flows" `Quick
            test_cause_flows_reference_scenario_flows;
        ] );
      ( "evidence",
        [
          Alcotest.test_case "clean run all ok" `Quick test_evidence_clean_run_all_ok;
          Alcotest.test_case "drop shows absent" `Quick test_evidence_drop_shows_absent;
          Alcotest.test_case "unobservable is silent" `Quick test_evidence_unobservable_is_silent;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "cs1 roots DMU interrupt" `Quick test_cs1_roots_dmu_interrupt;
          Alcotest.test_case "true cause survives" `Quick test_all_case_studies_keep_true_cause;
          Alcotest.test_case "substantial pruning" `Quick test_pruning_is_substantial;
          Alcotest.test_case "elimination monotone" `Quick test_elimination_monotone;
          Alcotest.test_case "deterministic" `Quick test_sessions_deterministic;
          Alcotest.test_case "clean session" `Quick test_clean_session_no_symptom;
          Alcotest.test_case "legal pairs" `Quick test_legal_pairs;
          Alcotest.test_case "entries accounting" `Quick test_messages_investigated_counts_entries;
        ] );
      ( "lossy observation",
        [
          Alcotest.test_case "no faults is pure" `Quick test_session_obs_faults_none_is_pure;
          Alcotest.test_case "faulted session deterministic" `Quick
            test_session_obs_faults_deterministic;
          Alcotest.test_case "trust tiers on crafted evidence" `Quick test_eliminate_trust_tiers;
          Alcotest.test_case "trust tiers monotone" `Quick test_trust_tier_monotone;
          Alcotest.test_case "trust renderings distinct" `Quick test_trust_to_string_distinct;
        ] );
    ]
