(** Flow mining: infer candidate flow specifications from trace-buffer
    output.

    The inverse of the paper's pipeline. Where the paper assumes flow
    specifications are given and asks which messages to trace, this
    module consumes the traces themselves — including lossy ones
    produced under {!Flowtrace_soc.Obs_fault} and trace-buffer overflow
    policies — and reconstructs candidate flow DAGs, in the style of
    frequent-subsequence message-flow mining (PAPERS.md: "Inferring
    Message Flows From System Communication Traces", "AutoFlows++").

    The algorithm, per flow tag:
    + {b Episodes} ({!Episode.slice}): per-instance message sequences in
      cycle order — the causality-ordered n-grams evidence is counted
      over.
    + {b Support}: distinct sequences are tallied; a sequence is {e kept}
      when its evidence count reaches [min_count] and its fraction of
      the flow's episodes reaches [support].
    + {b Hierarchical absorption}: a below-threshold sequence that is a
      proper subsequence of a kept one is folded into it as supporting
      evidence — a lossy observation of a path is counted for the path,
      not against it. What absorbs nowhere is dropped as noise
      ([MN011]).
    + {b Branch reconstruction}: the kept sequences are compiled into
      the minimal acyclic DFA of their language — common prefixes share
      states (a trie), divergent suffixes are merged bottom-up, so
      branches that fork and rejoin come back as DAG structure, not as a
      bag of linear paths. A kept sequence that is a proper prefix of
      another ([MN012], truncated episodes) is represented by a
      nondeterministic stop split, the only structure that can accept a
      prefix-closed pair.
    + {b Attributes}: message widths, endpoints, beats and subgroups are
      not observable in the message stream; they come from the
      [catalog] (in hardware: the monitor configuration, which knows the
      interface it taps). Messages absent from the catalog are
      synthesized with [default_width] and majority-vote endpoints
      ([MN013]). Atomicity is likewise unobservable — a mutex {e
      annotation}, not a message — so mined flows carry an empty [Atom]
      set; on the shipped T2 scenarios this changes reported gain
      values but not the selected message set.

    Mined flows pretty-print through {!Flowtrace_core.Spec_parser}
    ([print_flow]) to [.flow] syntax that round-trips through
    [parse_raw], so they feed straight back into flowlint, [flowtrace
    check] and Step-1/2 selection — the closed mine → lint → check →
    select → simulate loop.

    Everything is deterministic: no wall clock, no randomness, all
    hash-table extractions sorted. Mined flows are emitted in canonical
    order (stable sort on {!fingerprint}, then name) so [--json] output
    is byte-identical across reruns. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_analysis

type config = {
  support : float;
      (** minimum fraction of a flow's episodes a kept path must
          explain, in [0, 1]; [0.0] keeps every observed sequence *)
  min_count : int;  (** absolute evidence floor per kept path; >= 1 *)
  default_width : int;  (** width for messages absent from the catalog *)
  path_limit : int;  (** cap on distinct candidate paths per flow *)
}

(** [{ support = 0.0; min_count = 1; default_width = 8;
      path_limit = 10_000 }] — trust everything, the clean-trace
    setting. Raise [support] on lossy traces. *)
val default_config : config

(** One reconstructed path with its evidence count (episodes explained,
    absorbed ones included). *)
type path = { p_msgs : string list; p_count : int }

(** One mined flow with its provenance. *)
type mined = {
  m_flow : Flow.t;
  m_fingerprint : string;  (** {!fingerprint} of [m_flow] *)
  m_episodes : int;  (** episodes observed for this flow tag *)
  m_kept : path list;  (** paths the DAG accepts, by descending support *)
  m_dropped : path list;  (** noise paths discarded ([MN011]) *)
  m_absorbed : int;  (** episodes folded into kept paths as lossy evidence *)
}

type result = {
  r_flows : mined list;  (** canonical (fingerprint, name) order *)
  r_episodes : int;  (** total episodes across all traces *)
  r_diags : Diagnostic.t list;  (** MN findings, {!Diagnostic.sort_report} order *)
}

(** [mine ?config ?catalog ?file traces] mines every flow tag appearing
    in [traces]. [catalog] supplies message attributes (widths,
    endpoints, beats, subgroups) for known message names; [file] labels
    diagnostic positions (default ["<trace>"]). Never raises on trace
    content: an empty input yields an [MN001] error diagnostic and no
    flows. *)
val mine :
  ?config:config -> ?catalog:Message.t list -> ?file:string -> Packet.t list list -> result

(** [degraded diags] — does the report carry [MN090] (evidence was
    discarded, the mined spec may be incomplete)? Feed into
    {!Diagnostic.exit_code}'s [?degraded], mirroring [flowtrace check]'s
    FC090 convention. *)
val degraded : Diagnostic.t list -> bool

(** [fingerprint f] is the 64-bit FNV-1a hash, in hex, of the canonical
    [.flow] rendering of [f] — the stable identity mined flows are
    sorted and deduplicated by. *)
val fingerprint : Flow.t -> string

(** [spec_text r] renders the mined flows as one [.flow] file in
    canonical order — guaranteed to re-parse through
    {!Spec_parser.parse_raw} (and [parse_string]: every mined flow
    already passed {!Flow.make}). *)
val spec_text : result -> string

(** [to_json ?score r] is the machine-readable mining report: a [flows]
    array (name, fingerprint, episode/path provenance, spec text), the
    episode total, the diagnostics array (same shape as
    {!Diagnostic.render_json}) and a severity summary; [score], when
    given, embeds the {!Score.to_json} of a ground-truth comparison. *)
val to_json : ?score:Json.t -> result -> Json.t
