(* Frequent-subsequence flow mining over episode evidence. *)

open Flowtrace_core
open Flowtrace_analysis

type config = {
  support : float;
  min_count : int;
  default_width : int;
  path_limit : int;
}

let default_config = { support = 0.0; min_count = 1; default_width = 8; path_limit = 10_000 }

type path = { p_msgs : string list; p_count : int }

type mined = {
  m_flow : Flow.t;
  m_fingerprint : string;
  m_episodes : int;
  m_kept : path list;
  m_dropped : path list;
  m_absorbed : int;
}

type result = {
  r_flows : mined list;
  r_episodes : int;
  r_diags : Diagnostic.t list;
}

(* FNV-1a, 64-bit, over the canonical .flow rendering: stable across
   processes (unlike Hashtbl.hash) and cheap enough to fingerprint every
   mined flow on every run. *)
let fingerprint flow =
  let text = Spec_parser.print_flow flow in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    text;
  Printf.sprintf "%016Lx" !h

let degraded diags = List.exists (fun (d : Diagnostic.t) -> String.equal d.code "MN090") diags

(* [is_subseq xs ys]: does [xs] embed order-preservingly in [ys]? A lossy
   observation of a path is exactly a subsequence of it — drops delete
   entries, they never swap them (reorders are undone by the cycle sort
   in Episode.slice). *)
let rec is_subseq xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> if String.equal x y then is_subseq xt yt else is_subseq xs yt

let is_proper_subseq xs ys = List.length xs < List.length ys && is_subseq xs ys

let rec is_proper_prefix xs ys =
  match (xs, ys) with
  | [], [] -> false
  | [], _ -> true
  | _, [] -> false
  | x :: xt, y :: yt -> String.equal x y && is_proper_prefix xt yt

(* ---- minimal acyclic DFA of a finite language ---- *)

(* Trie node; children kept sorted by message name so the hashcons
   signatures below are canonical. *)
type tnode = { mutable term : bool; mutable kids : (string * tnode) list }

let trie_insert root msgs =
  let rec go node = function
    | [] -> node.term <- true
    | msg :: rest ->
        let child =
          match List.assoc_opt msg node.kids with
          | Some c -> c
          | None ->
              let c = { term = false; kids = [] } in
              node.kids <-
                List.sort (fun (a, _) (b, _) -> String.compare a b) ((msg, c) :: node.kids);
              c
        in
        go child rest
  in
  go root msgs

(* Bottom-up hashcons by suffix signature (terminal?, sorted outgoing
   edges): nodes accepting the same residual language collapse into one,
   which is what turns a bag of linear paths back into a DAG whose
   branches fork and rejoin. Ids are assigned in deterministic postorder. *)
let minimize root =
  let sigs : (bool * (string * int) list, int) Hashtbl.t = Hashtbl.create 64 in
  let nodes = ref [] in
  let next = ref 0 in
  let rec go node =
    let kids = List.map (fun (msg, child) -> (msg, go child)) node.kids in
    let signature = (node.term, kids) in
    match Hashtbl.find_opt sigs signature with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.add sigs signature id;
        nodes := (id, signature) :: !nodes;
        id
  in
  let root_id = go root in
  (root_id, List.rev !nodes)

(* A flow's stop states may have no successors, so a state that both
   accepts and continues (the language holds a proper prefix pair —
   truncated episodes) cannot be a stop state directly. Split it: make it
   interior, and duplicate every edge entering it onto the shared pure
   stop node. The duplicate is a nondeterministic choice on one message
   label — the only DAG structure that accepts a prefix-closed pair —
   and flowlint's FL007 flags exactly that, which is the desired signal:
   a mined prefix split means the evidence was truncated. *)
let stop_split (root_id, nodes) =
  let splits =
    List.filter_map (fun (id, (term, kids)) -> if term && kids <> [] then Some id else None) nodes
  in
  if splits = [] then (root_id, nodes)
  else
    let stop_id =
      match
        List.find_map (fun (id, (term, kids)) -> if term && kids = [] then Some id else None) nodes
      with
      | Some id -> id
      | None -> assert false (* the longest kept word always ends in a pure leaf *)
    in
    let nodes =
      List.map
        (fun (id, (term, kids)) ->
          let kids =
            List.concat_map
              (fun (msg, child) ->
                if List.mem child splits then [ (msg, child); (msg, stop_id) ]
                else [ (msg, child) ])
              kids
          in
          (id, (term && kids = [], kids)))
        nodes
    in
    (root_id, nodes)

(* BFS from the initial state, edges in (message, id) order, naming
   states <flow>_q0, <flow>_q1, ... in discovery order — the same
   fresh-name shape flowlint's FL006 expects, and stable across runs. *)
let name_states flow_name (root_id, nodes) =
  let prefix = String.lowercase_ascii flow_name in
  let node id = List.assoc id nodes in
  let names : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  let queue = Queue.create () in
  let visit id =
    if not (Hashtbl.mem names id) then begin
      let name = Printf.sprintf "%s_q%d" prefix (Hashtbl.length names) in
      Hashtbl.add names id name;
      order := (id, name) :: !order;
      Queue.add id queue
    end
  in
  visit root_id;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let _, kids = node id in
    List.iter
      (fun (_, child) -> visit child)
      (List.sort (fun (ma, ca) (mb, cb) -> compare (ma, ca) (mb, cb)) kids)
  done;
  let name id = Hashtbl.find names id in
  let states = List.rev_map snd !order in
  let stops =
    List.filter_map
      (fun (id, (term, _)) -> if term && Hashtbl.mem names id then Some (name id) else None)
      nodes
    |> List.sort String.compare
  in
  let transitions =
    List.concat_map
      (fun (id, (_, kids)) ->
        if Hashtbl.mem names id then
          List.map (fun (msg, child) -> Flow.transition (name id) msg (name child)) kids
        else [])
      nodes
    |> List.sort (fun (a : Flow.transition) b ->
           compare (a.t_src, a.t_msg, a.t_dst) (b.t_src, b.t_msg, b.t_dst))
  in
  (states, name root_id, stops, transitions)

(* ---- message attribute resolution ---- *)

(* Messages are listed in catalog (declaration) order, non-catalog names
   after, alphabetically. Selection breaks equal-gain ties by message
   enumeration order, so preserving the catalog's order makes Step-1/2
   answers on a mined spec comparable to the ground truth's. *)
let order_alphabet ~catalog alphabet =
  let pos name =
    let rec go i = function
      | [] -> None
      | (m : Message.t) :: rest -> if String.equal m.name name then Some i else go (i + 1) rest
    in
    go 0 catalog
  in
  List.stable_sort
    (fun a b ->
      match (pos a, pos b) with
      | Some i, Some j -> compare i j
      | Some _, None -> -1
      | None, Some _ -> 1
      | None, None -> String.compare a b)
    alphabet

let resolve_messages ~config ~catalog ~endpoints ~span ~emit alphabet =
  let observed name =
    match List.assoc_opt name endpoints with
    | Some (((src, dst), _) :: _) -> Some (src, dst)
    | _ -> None
  in
  List.map
    (fun name ->
      match List.find_opt (fun (m : Message.t) -> String.equal m.name name) catalog with
      | Some m ->
          (match observed name with
          | Some (src, dst) when not (String.equal src m.src && String.equal dst m.dst) ->
              emit
                (Mn.v "MN014" span
                   "message %s: trace shows %s -> %s, catalog declares %s -> %s; keeping the catalog"
                   name src dst m.src m.dst)
          | _ -> ());
          m
      | None ->
          let src, dst = Option.value ~default:("?", "?") (observed name) in
          emit
            (Mn.v "MN013" span "message %s is not in the catalog; defaulting to width %d" name
               config.default_width);
          Message.make ~src ~dst name config.default_width)
    alphabet

(* ---- per-flow mining ---- *)

let mine_flow ~config ~catalog ~endpoints ~span ~emit ~seen_msgs flow_name episodes =
  let total = List.length episodes in
  let counts : (string list, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ep : Episode.t) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt counts ep.ep_msgs) in
      Hashtbl.replace counts ep.ep_msgs (n + 1))
    episodes;
  (* rank: strongest evidence first, longer (more explanatory) paths
     break ties, lexicographic order makes the ranking total *)
  let ranked =
    Hashtbl.fold (fun msgs n acc -> { p_msgs = msgs; p_count = n } :: acc) counts []
    |> List.sort (fun a b ->
           if a.p_count <> b.p_count then compare b.p_count a.p_count
           else
             let la = List.length a.p_msgs and lb = List.length b.p_msgs in
             if la <> lb then compare lb la else compare a.p_msgs b.p_msgs)
  in
  let ranked, overflow =
    if List.length ranked <= config.path_limit then (ranked, [])
    else (List.filteri (fun i _ -> i < config.path_limit) ranked,
          List.filteri (fun i _ -> i >= config.path_limit) ranked)
  in
  let meets p =
    p.p_count >= config.min_count && float_of_int p.p_count >= config.support *. float_of_int total
  in
  let kept0, below = List.partition meets ranked in
  (* hierarchical absorption: a weak sequence that embeds in a kept one
     is lossy evidence FOR it, not noise against it *)
  let kept = ref (List.map (fun p -> ref p) kept0) in
  let absorbed = ref 0 in
  let dropped =
    List.filter
      (fun p ->
        match List.find_opt (fun k -> is_proper_subseq p.p_msgs !k.p_msgs) !kept with
        | Some k ->
            k := { !k with p_count = !k.p_count + p.p_count };
            absorbed := !absorbed + p.p_count;
            false
        | None -> true)
      below
    @ overflow
  in
  List.iter
    (fun p ->
      emit
        (Mn.v "MN011" span ~flow:flow_name "path %s dropped as noise (%d of %d episodes)"
           (String.concat " " p.p_msgs) p.p_count total))
    dropped;
  let kept =
    List.map (fun k -> !k) !kept
    |> List.sort (fun a b ->
           if a.p_count <> b.p_count then compare b.p_count a.p_count
           else compare a.p_msgs b.p_msgs)
  in
  if kept = [] then begin
    emit
      (Mn.v "MN010" span ~flow:flow_name
         "flow %s dropped: none of its %d episodes met the support threshold" flow_name total);
    (None, dropped <> [])
  end
  else begin
    List.iter
      (fun p ->
        if List.exists (fun q -> is_proper_prefix p.p_msgs q.p_msgs) kept then
          emit
            (Mn.v "MN012" span ~flow:flow_name
               "kept path %s is a proper prefix of a longer kept path; truncated episodes suspected"
               (String.concat " " p.p_msgs)))
      kept;
    let root = { term = false; kids = [] } in
    List.iter (fun p -> trie_insert root p.p_msgs) kept;
    let dfa = stop_split (minimize root) in
    let states, initial, stops, transitions = name_states flow_name dfa in
    let alphabet =
      List.concat_map (fun p -> p.p_msgs) kept
      |> List.sort_uniq String.compare |> order_alphabet ~catalog
    in
    let emit_msg d =
      (* catalog findings are per message name, not per flow *)
      let key = (d : Diagnostic.t).message in
      if not (Hashtbl.mem seen_msgs key) then begin
        Hashtbl.add seen_msgs key ();
        emit d
      end
    in
    let messages =
      resolve_messages ~config ~catalog ~endpoints ~span ~emit:emit_msg alphabet
    in
    match
      Flow.make ~name:flow_name ~states ~initial:[ initial ] ~stop:stops ~messages ~transitions
        ()
    with
    | flow ->
        ( Some
            {
              m_flow = flow;
              m_fingerprint = fingerprint flow;
              m_episodes = total;
              m_kept = kept;
              m_dropped = dropped;
              m_absorbed = !absorbed;
            },
          dropped <> [] )
    | exception Flow.Invalid (_, violations) ->
        emit
          (Mn.v "MN002" span ~flow:flow_name "mined flow %s failed validation: %s" flow_name
             (String.concat "; " violations));
        (None, true)
  end

let mine ?(config = default_config) ?(catalog = []) ?(file = "<trace>") traces =
  if config.support < 0.0 || config.support > 1.0 then
    invalid_arg "Miner.mine: support must be in [0, 1]";
  if config.min_count < 1 then invalid_arg "Miner.mine: min_count must be >= 1";
  if config.path_limit < 1 then invalid_arg "Miner.mine: path_limit must be >= 1";
  let span = Srcspan.none file in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let episodes = Episode.slice traces in
  let n_episodes = List.length episodes in
  if n_episodes = 0 then begin
    emit (Mn.v "MN001" span "trace yields no episodes; nothing to mine");
    { r_flows = []; r_episodes = 0; r_diags = Diagnostic.sort_report !diags }
  end
  else begin
    let endpoints = Episode.endpoints traces in
    let by_flow : (string, Episode.t list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (ep : Episode.t) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt by_flow ep.ep_flow) in
        Hashtbl.replace by_flow ep.ep_flow (ep :: prev))
      episodes;
    let flow_names =
      Hashtbl.fold (fun name _ acc -> name :: acc) by_flow [] |> List.sort String.compare
    in
    let seen_msgs : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let any_discard = ref false in
    let flows =
      List.filter_map
        (fun name ->
          let eps = List.rev (Hashtbl.find by_flow name) in
          let mined, discarded =
            mine_flow ~config ~catalog ~endpoints ~span ~emit ~seen_msgs name eps
          in
          if discarded then any_discard := true;
          mined)
        flow_names
      |> List.sort (fun a b -> compare (a.m_fingerprint, a.m_flow.name) (b.m_fingerprint, b.m_flow.name))
    in
    if !any_discard then
      emit
        (Mn.v "MN090" span
           "mining degraded: some observed evidence was discarded; the mined spec may be incomplete");
    { r_flows = flows; r_episodes = n_episodes; r_diags = Diagnostic.sort_report !diags }
  end

let spec_text result = Spec_parser.print_flows (List.map (fun m -> m.m_flow) result.r_flows)

let path_json p =
  Json.Obj [ ("msgs", Json.List (List.map (fun m -> Json.String m) p.p_msgs)); ("count", Json.Int p.p_count) ]

let to_json ?score result =
  let flow_json m =
    Json.Obj
      [
        ("name", Json.String m.m_flow.Flow.name);
        ("fingerprint", Json.String m.m_fingerprint);
        ("episodes", Json.Int m.m_episodes);
        ("absorbed", Json.Int m.m_absorbed);
        ("kept", Json.List (List.map path_json m.m_kept));
        ("dropped", Json.List (List.map path_json m.m_dropped));
        ("states", Json.Int (Flow.n_states m.m_flow));
        ("spec", Json.String (Spec_parser.print_flow m.m_flow));
      ]
  in
  let base =
    [
      ("flows", Json.List (List.map flow_json result.r_flows));
      ("episodes", Json.Int result.r_episodes);
      ("degraded", Json.Bool (degraded result.r_diags));
      ("diagnostics", Json.List (List.map Diagnostic.to_json result.r_diags));
      ( "summary",
        Json.Obj
          [
            ("errors", Json.Int (Diagnostic.count_errors result.r_diags));
            ("warnings", Json.Int (Diagnostic.count_warnings result.r_diags));
            ("notes", Json.Int (Diagnostic.count_infos result.r_diags));
          ] );
    ]
  in
  match score with
  | None -> Json.Obj base
  | Some s -> Json.Obj (base @ [ ("score", s) ])
