(* Cutting interleaved packet logs into per-instance episodes. *)

open Flowtrace_soc

type t = {
  ep_trace : int;
  ep_flow : string;
  ep_inst : int;
  ep_start : int;
  ep_msgs : string list;
}

let slice traces =
  let one idx packets =
    (* stable cycle sort: reordered deliveries are undone by timestamps,
       same-cycle packets keep their log order *)
    let packets =
      List.stable_sort
        (fun (a : Packet.t) (b : Packet.t) -> compare a.Packet.cycle b.Packet.cycle)
        packets
    in
    let tbl : (string * int, int * string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (p : Packet.t) ->
        let key = (p.Packet.flow, p.Packet.inst) in
        match Hashtbl.find_opt tbl key with
        | None -> Hashtbl.add tbl key (p.Packet.cycle, [ p.Packet.msg ])
        | Some (start, msgs) -> Hashtbl.replace tbl key (start, p.Packet.msg :: msgs))
      packets;
    Hashtbl.fold
      (fun (flow, inst) (start, rev_msgs) acc ->
        { ep_trace = idx; ep_flow = flow; ep_inst = inst; ep_start = start;
          ep_msgs = List.rev rev_msgs }
        :: acc)
      tbl []
  in
  List.concat (List.mapi one traces)
  |> List.sort (fun a b ->
         compare
           (a.ep_trace, a.ep_start, a.ep_flow, a.ep_inst)
           (b.ep_trace, b.ep_start, b.ep_flow, b.ep_inst))

let endpoints traces =
  let tbl : (string, (string * string, int) Hashtbl.t) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (List.iter (fun (p : Packet.t) ->
         let per =
           match Hashtbl.find_opt tbl p.Packet.msg with
           | Some per -> per
           | None ->
               let per = Hashtbl.create 4 in
               Hashtbl.add tbl p.Packet.msg per;
               per
         in
         let n = Option.value ~default:0 (Hashtbl.find_opt per (p.Packet.src, p.Packet.dst)) in
         Hashtbl.replace per (p.Packet.src, p.Packet.dst) (n + 1)))
    traces;
  Hashtbl.fold
    (fun msg per acc ->
      let pairs =
        Hashtbl.fold (fun pair n acc -> (pair, n) :: acc) per []
        |> List.sort (fun (pa, na) (pb, nb) ->
               if na <> nb then compare nb na else compare pa pb)
      in
      (msg, pairs) :: acc)
    tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
