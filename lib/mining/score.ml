(* Language-level precision/recall of mined flows vs ground truth. *)

open Flowtrace_core
module Json = Flowtrace_analysis.Json

type level = { sc_common : int; sc_mined : int; sc_truth : int }

let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den
let precision l = ratio l.sc_common l.sc_mined
let recall l = ratio l.sc_common l.sc_truth

let f1 l =
  let p = precision l and r = recall l in
  if p +. r = 0.0 then 0.0 else 2.0 *. p *. r /. (p +. r)

type flow_score = {
  fs_flow : string;
  fs_matched : bool;
  fs_edges : level;
  fs_paths : level;
  fs_truncated : bool;
}

type t = {
  per_flow : flow_score list;
  missing : string list;
  spurious : string list;
  edges : level;
  paths : level;
  truncated : bool;
}

let zero = { sc_common = 0; sc_mined = 0; sc_truth = 0 }

let add a b =
  {
    sc_common = a.sc_common + b.sc_common;
    sc_mined = a.sc_mined + b.sc_mined;
    sc_truth = a.sc_truth + b.sc_truth;
  }

let compare_sets mined truth =
  let common = List.length (List.filter (fun x -> List.mem x truth) mined) in
  { sc_common = common; sc_mined = List.length mined; sc_truth = List.length truth }

let traces ~path_limit flow =
  match flow with
  | None -> ([], false)
  | Some f ->
      let paths, truncated = Flow.paths ~limit:path_limit f in
      (List.sort_uniq compare (List.map fst paths), truncated)

let score ?(path_limit = 10_000) ~truth mined =
  let name (f : Flow.t) = f.name in
  let names =
    List.sort_uniq String.compare (List.map name truth @ List.map name mined)
  in
  let find fs n = List.find_opt (fun f -> String.equal (name f) n) fs in
  let per_flow =
    List.map
      (fun n ->
        let m = find mined n and t = find truth n in
        let bigrams = function None -> [] | Some f -> Flow.bigrams f in
        let m_traces, m_trunc = traces ~path_limit m in
        let t_traces, t_trunc = traces ~path_limit t in
        {
          fs_flow = n;
          fs_matched = m <> None && t <> None;
          fs_edges = compare_sets (bigrams m) (bigrams t);
          fs_paths = compare_sets m_traces t_traces;
          fs_truncated = m_trunc || t_trunc;
        })
      names
  in
  let only side =
    List.filter_map
      (fun n ->
        match (find mined n, find truth n) with
        | Some _, None when side = `Mined -> Some n
        | None, Some _ when side = `Truth -> Some n
        | _ -> None)
      names
  in
  {
    per_flow;
    missing = only `Truth;
    spurious = only `Mined;
    edges = List.fold_left (fun acc f -> add acc f.fs_edges) zero per_flow;
    paths = List.fold_left (fun acc f -> add acc f.fs_paths) zero per_flow;
    truncated = List.exists (fun f -> f.fs_truncated) per_flow;
  }

let edge_precision s = precision s.edges
let edge_recall s = recall s.edges
let path_precision s = precision s.paths
let path_recall s = recall s.paths

let perfect s =
  s.missing = [] && s.spurious = [] && (not s.truncated)
  && edge_precision s = 1.0 && edge_recall s = 1.0
  && path_precision s = 1.0 && path_recall s = 1.0

let level_json l =
  Json.Obj
    [
      ("common", Json.Int l.sc_common);
      ("mined", Json.Int l.sc_mined);
      ("truth", Json.Int l.sc_truth);
      ("precision", Json.Float (precision l));
      ("recall", Json.Float (recall l));
    ]

let to_json s =
  Json.Obj
    [
      ( "flows",
        Json.List
          (List.map
             (fun f ->
               Json.Obj
                 [
                   ("flow", Json.String f.fs_flow);
                   ("matched", Json.Bool f.fs_matched);
                   ("edges", level_json f.fs_edges);
                   ("paths", level_json f.fs_paths);
                   ("truncated", Json.Bool f.fs_truncated);
                 ])
             s.per_flow) );
      ("missing", Json.List (List.map (fun n -> Json.String n) s.missing));
      ("spurious", Json.List (List.map (fun n -> Json.String n) s.spurious));
      ("edges", level_json s.edges);
      ("paths", level_json s.paths);
      ("truncated", Json.Bool s.truncated);
      ("perfect", Json.Bool (perfect s));
    ]

let render s =
  let buf = Buffer.create 256 in
  let pct f = Printf.sprintf "%5.1f%%" (100.0 *. f) in
  Buffer.add_string buf
    (Printf.sprintf "score: edges P %s R %s | paths P %s R %s%s\n"
       (pct (edge_precision s)) (pct (edge_recall s)) (pct (path_precision s))
       (pct (path_recall s))
       (if s.truncated then " (path enumeration truncated)" else ""));
  List.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "  %-12s %s edges %d/%d/%d paths %d/%d/%d\n" f.fs_flow
           (if f.fs_matched then "matched " else "UNMATCHED")
           f.fs_edges.sc_common f.fs_edges.sc_mined f.fs_edges.sc_truth f.fs_paths.sc_common
           f.fs_paths.sc_mined f.fs_paths.sc_truth))
    s.per_flow;
  if s.missing <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  missing from mined: %s\n" (String.concat ", " s.missing));
  if s.spurious <> [] then
    Buffer.add_string buf
      (Printf.sprintf "  spurious in mined: %s\n" (String.concat ", " s.spurious));
  Buffer.contents buf
