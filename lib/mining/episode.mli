(** Episode slicing: from an interleaved packet log to per-instance
    message sequences.

    A trace-buffer dump interleaves the messages of many concurrent flow
    instances. The hardware instance tag every packet carries (the
    [inst] field the paper's monitors emit precisely so executions can
    be told apart) keys the slicing: one episode per [(flow, inst)] pair
    per trace, its messages in causal (cycle) order. Episodes are the
    unit of evidence the miner counts support over.

    Slicing is deliberately timestamp-ordered, not list-ordered: a
    reordered delivery ({!Flowtrace_soc.Obs_fault} [reorder]) perturbs
    list positions but not cycles, so sorting by cycle recovers the
    causal order for free. Drops, blackouts and truncation are the
    faults that survive into episodes — as missing entries — and those
    are exactly what the miner's support thresholds tolerate. *)

open Flowtrace_soc

(** One instance's observed message sequence. *)
type t = {
  ep_trace : int;  (** index of the source trace in the [slice] input *)
  ep_flow : string;  (** flow name from the packet tag *)
  ep_inst : int;  (** instance tag *)
  ep_start : int;  (** cycle of the first observed packet *)
  ep_msgs : string list;  (** message names in cycle order *)
}

(** [slice traces] cuts each packet log into episodes. Packets of one
    trace are stably sorted by cycle first (ties keep log order), then
    grouped by [(flow, inst)]; traces are kept separate so equal
    instance tags in different logs never merge. The result is in
    canonical order: source trace, then first cycle, then flow name,
    then instance. *)
val slice : Packet.t list list -> t list

(** [endpoints traces] tallies the observed [(src, dst)] endpoint pairs
    per message name across all traces: [(msg, ((src, dst), count) list)]
    with the per-message lists sorted by descending count then
    lexicographic pair — the majority vote the miner uses to synthesize
    endpoints for messages absent from its catalog. *)
val endpoints : Packet.t list list -> (string * ((string * string) * int) list) list
