(** Precision/recall scoring of mined flows against a ground truth.

    Mined flows carry fresh state names and a minimal DAG, so comparing
    them structurally to a hand-written specification would punish
    harmless differences. The scorer therefore compares {e languages}:

    - {b edge level} — the message-bigram sets of
      {!Flowtrace_core.Flow.bigrams} (adjacent message pairs over all
      executions, with start/stop sentinels). Two flows with the same
      execution language have identical bigrams regardless of state
      naming or minimality.
    - {b path level} — the execution trace sets of
      {!Flowtrace_core.Flow.paths} (deduplicated message sequences),
      capped at [path_limit] per flow; a hit cap is surfaced as
      [truncated] and the affected counts are lower bounds.

    Flows are matched by name (the mined flow keeps the monitor's flow
    tag, which is the ground-truth name). A truth flow with no mined
    counterpart counts all its edges and paths as misses (recall); a
    mined flow with no truth counterpart counts all of them as spurious
    (precision). Precision with nothing mined and recall with nothing
    to recover are both vacuously 1. *)

open Flowtrace_core

(** Common/mined/truth counts at one granularity. *)
type level = { sc_common : int; sc_mined : int; sc_truth : int }

(** [precision l] is common/mined, [recall l] common/truth; empty
    denominators score 1.0 (vacuous truth). *)
val precision : level -> float

val recall : level -> float

(** [f1 l] is the harmonic mean of precision and recall. *)
val f1 : level -> float

(** Per-flow-name comparison. [fs_matched] is false when the name exists
    on one side only. *)
type flow_score = {
  fs_flow : string;
  fs_matched : bool;
  fs_edges : level;
  fs_paths : level;
  fs_truncated : bool;
}

type t = {
  per_flow : flow_score list;  (** sorted by flow name *)
  missing : string list;  (** truth flows with no mined counterpart *)
  spurious : string list;  (** mined flows with no truth counterpart *)
  edges : level;  (** totals over all flows *)
  paths : level;
  truncated : bool;
}

(** [score ?path_limit ~truth mined] compares by flow name
    ([path_limit] defaults to 10,000 paths per flow). *)
val score : ?path_limit:int -> truth:Flow.t list -> Flow.t list -> t

(** [perfect s] — edge and path precision and recall all 1.0, nothing
    missing or spurious, no truncation: the mined spec's language is
    exactly the ground truth's. *)
val perfect : t -> bool

val edge_precision : t -> float
val edge_recall : t -> float
val path_precision : t -> float
val path_recall : t -> float

(** [to_json s] is the machine-readable score report embedded in
    [flowtrace mine --json]. *)
val to_json : t -> Flowtrace_analysis.Json.t

(** [render s] is a short human-readable score block for the CLI. *)
val render : t -> string
