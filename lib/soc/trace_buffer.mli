(** The on-chip trace buffer model.

    A circular buffer of [depth] entries, [width] bits each, fed by the
    monitors: only messages in the {!Flowtrace_core.Select.result} are
    recorded; packed subgroups capture just their own bits of the parent
    message (marked partial). Overflow behaviour is a {!policy};
    occurrences lost to overflow are accounted per cause and surfaced
    through the [soc.trace_buffer.*] telemetry counters. *)

open Flowtrace_core

(** What happens when the buffer cannot hold another entry.
    [Drop_oldest] — classic wrap-around, the newest entry overwrites the
    oldest (today's default, unchanged). [Drop_newest] — the buffer
    freezes once full; the earliest history survives. [Sample k] — only
    every k-th observable occurrence is offered to the ring at all
    (systematic sampling); retained entries still wrap like
    [Drop_oldest].

    The sample period must be at least 1 ([Sample 1] keeps everything;
    larger periods thin harder). [Sample 0] would divide by zero in the
    admission test and a negative period is meaningless, so {!create}
    rejects both with [Invalid_argument] at construction — the value
    never reaches the recording path — and {!parse_policy} refuses the
    corresponding [sample:K] spellings. *)
type policy = Drop_oldest | Drop_newest | Sample of int

type entry = {
  e_cycle : int;
  e_imsg : Indexed.t;
  e_bits : int;  (** bits captured for this occurrence *)
  e_partial : bool;  (** true when only packed subgroups were captured *)
}

type t

(** [create ~depth selection] sizes the buffer; entry width is the
    selection's buffer width. [policy] defaults to [Drop_oldest].
    Raises [Invalid_argument] on a non-positive depth or sample
    period. *)
val create : ?policy:policy -> depth:int -> Select.result -> t

(** [record t p] offers the packet; it is stored if its message is
    observable under the selection and the policy admits it. *)
val record : t -> Packet.t -> unit

val record_all : t -> Packet.t list -> unit

(** Chronological retained entries. *)
val entries : t -> entry list

(** The observed indexed-message trace, as {!Flowtrace_core.Localize}
    consumes it. *)
val observed : t -> Indexed.t list

val policy : t -> policy

(** Whether any observable occurrence was lost (overflow or sampling). *)
val wrapped : t -> bool

(** [(recorded, dropped)] counters: entries written to the ring, and
    observable occurrences lost for any reason. *)
val stats : t -> int * int

(** [(overwritten, refused, sampled_out)] — losses by cause:
    wrap-around overwrites, [Drop_newest] refusals, [Sample]
    thinning. *)
val drop_breakdown : t -> int * int * int

(** CLI rendering: ["oldest"], ["newest"], ["sample:K"]. *)
val policy_to_string : policy -> string

(** Parses {!policy_to_string}'s syntax. *)
val parse_policy : string -> (policy, string) result
