(* The on-chip trace buffer: a circular buffer of entries, each capturing
   the bits of one selected message occurrence. Messages outside the
   selection are invisible; packed subgroups capture only their own bits of
   the parent message's payload.

   The storage is a real ring array: recording is O(1) whether or not the
   buffer has wrapped. (The previous entry-list representation re-reversed
   the whole buffer to drop the oldest entry, making every post-wrap record
   O(depth) and a long [record_all] quadratic.)

   Overflow is governed by a policy. [Drop_oldest] is the classic
   wrap-around; [Drop_newest] freezes the buffer once full (the earliest
   history survives); [Sample k] thins the stream to every k-th observable
   occurrence before it reaches the ring, trading resolution for session
   length. Every lost occurrence is accounted per cause. *)

open Flowtrace_core
module Tel = Flowtrace_telemetry.Telemetry

type policy = Drop_oldest | Drop_newest | Sample of int

type entry = { e_cycle : int; e_imsg : Indexed.t; e_bits : int; e_partial : bool }

type t = {
  width : int;  (* bits per entry *)
  depth : int;  (* number of entries retained *)
  selection : Select.result;
  policy : policy;
  ring : entry option array;  (* length [depth]; [None] = never written *)
  mutable head : int;  (* slot of the oldest retained entry *)
  mutable count : int;  (* retained entries, <= depth *)
  mutable seen : int;  (* observable occurrences offered (sampling gate) *)
  mutable recorded : int;
  mutable overwritten : int;  (* lost to Drop_oldest wrap-around *)
  mutable refused : int;  (* lost to Drop_newest when full *)
  mutable sampled_out : int;  (* thinned away by Sample *)
}

let c_overwritten = Tel.Counter.v "soc.trace_buffer.overwritten"
let c_refused = Tel.Counter.v "soc.trace_buffer.refused"
let c_sampled_out = Tel.Counter.v "soc.trace_buffer.sampled_out"

let create ?(policy = Drop_oldest) ~depth (selection : Select.result) =
  if depth <= 0 then invalid_arg "Trace_buffer.create: depth must be positive";
  (match policy with
  | Sample k when k <= 0 -> invalid_arg "Trace_buffer.create: Sample period must be positive"
  | _ -> ());
  {
    width = selection.Select.buffer_width;
    depth;
    selection;
    policy;
    ring = Array.make depth None;
    head = 0;
    count = 0;
    seen = 0;
    recorded = 0;
    overwritten = 0;
    refused = 0;
    sampled_out = 0;
  }

(* Bits captured for a base message under the selection: full width when
   fully selected, the packed subgroup widths when only packed. *)
let captured_bits sel base =
  let full =
    List.exists (fun (m : Message.t) -> String.equal m.Message.name base) sel.Select.messages
  in
  if full then
    let m = List.find (fun (m : Message.t) -> String.equal m.Message.name base) sel.Select.messages in
    Some (Message.trace_width m, false)
  else
    let packed =
      List.filter
        (fun p -> String.equal p.Packing.p_parent.Message.name base)
        sel.Select.packed
    in
    match packed with
    | [] -> None
    | ps ->
        Some (List.fold_left (fun acc p -> acc + p.Packing.p_sub.Message.sg_width) 0 ps, true)

let record t (p : Packet.t) =
  match captured_bits t.selection p.Packet.msg with
  | None -> ()
  | Some (bits, partial) ->
      let offered = t.seen in
      t.seen <- offered + 1;
      let sampled_away =
        match t.policy with Sample k -> offered mod k <> 0 | Drop_oldest | Drop_newest -> false
      in
      if sampled_away then begin
        t.sampled_out <- t.sampled_out + 1;
        if Tel.enabled () then Tel.Counter.incr c_sampled_out
      end
      else if t.count = t.depth && t.policy = Drop_newest then begin
        (* full: the newest occurrence is refused, history is frozen *)
        t.refused <- t.refused + 1;
        if Tel.enabled () then Tel.Counter.incr c_refused
      end
      else begin
        let entry =
          { e_cycle = p.Packet.cycle; e_imsg = Packet.indexed p; e_bits = bits; e_partial = partial }
        in
        if t.count = t.depth then begin
          (* wrap-around: overwrite the oldest slot in place *)
          t.ring.(t.head) <- Some entry;
          t.head <- (t.head + 1) mod t.depth;
          t.overwritten <- t.overwritten + 1;
          if Tel.enabled () then Tel.Counter.incr c_overwritten
        end
        else begin
          t.ring.((t.head + t.count) mod t.depth) <- Some entry;
          t.count <- t.count + 1
        end;
        t.recorded <- t.recorded + 1
      end

let record_all t packets = List.iter (record t) packets

let entries t =
  List.init t.count (fun i ->
      match t.ring.((t.head + i) mod t.depth) with Some e -> e | None -> assert false)

(* The observed trace, as localization consumes it. *)
let observed t = List.map (fun e -> e.e_imsg) (entries t)

let policy t = t.policy

let dropped t = t.overwritten + t.refused + t.sampled_out

let wrapped t = dropped t > 0

let stats t = (t.recorded, dropped t)

let drop_breakdown t = (t.overwritten, t.refused, t.sampled_out)

let policy_to_string = function
  | Drop_oldest -> "oldest"
  | Drop_newest -> "newest"
  | Sample k -> Printf.sprintf "sample:%d" k

let parse_policy s =
  match String.trim s with
  | "oldest" -> Ok Drop_oldest
  | "newest" -> Ok Drop_newest
  | s when String.length s > 7 && String.sub s 0 7 = "sample:" -> (
      let v = String.sub s 7 (String.length s - 7) in
      match int_of_string_opt v with
      | Some k when k > 0 -> Ok (Sample k)
      | _ -> Error (Printf.sprintf "sample period must be a positive integer, got %S" v))
  | s -> Error (Printf.sprintf "unknown overflow policy %S (expected oldest, newest or sample:K)" s)
