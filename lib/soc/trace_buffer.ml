(* The on-chip trace buffer: a circular buffer of entries, each capturing
   the bits of one selected message occurrence. Messages outside the
   selection are invisible; packed subgroups capture only their own bits of
   the parent message's payload.

   The storage is a real ring array: recording is O(1) whether or not the
   buffer has wrapped. (The previous entry-list representation re-reversed
   the whole buffer to drop the oldest entry, making every post-wrap record
   O(depth) and a long [record_all] quadratic.) *)

open Flowtrace_core

type entry = { e_cycle : int; e_imsg : Indexed.t; e_bits : int; e_partial : bool }

type t = {
  width : int;  (* bits per entry *)
  depth : int;  (* number of entries retained *)
  selection : Select.result;
  ring : entry option array;  (* length [depth]; [None] = never written *)
  mutable head : int;  (* slot of the oldest retained entry *)
  mutable count : int;  (* retained entries, <= depth *)
  mutable recorded : int;
  mutable dropped : int;  (* overwritten by wrap-around *)
}

let create ~depth (selection : Select.result) =
  if depth <= 0 then invalid_arg "Trace_buffer.create: depth must be positive";
  {
    width = selection.Select.buffer_width;
    depth;
    selection;
    ring = Array.make depth None;
    head = 0;
    count = 0;
    recorded = 0;
    dropped = 0;
  }

(* Bits captured for a base message under the selection: full width when
   fully selected, the packed subgroup widths when only packed. *)
let captured_bits sel base =
  let full =
    List.exists (fun (m : Message.t) -> String.equal m.Message.name base) sel.Select.messages
  in
  if full then
    let m = List.find (fun (m : Message.t) -> String.equal m.Message.name base) sel.Select.messages in
    Some (Message.trace_width m, false)
  else
    let packed =
      List.filter
        (fun p -> String.equal p.Packing.p_parent.Message.name base)
        sel.Select.packed
    in
    match packed with
    | [] -> None
    | ps ->
        Some (List.fold_left (fun acc p -> acc + p.Packing.p_sub.Message.sg_width) 0 ps, true)

let record t (p : Packet.t) =
  match captured_bits t.selection p.Packet.msg with
  | None -> ()
  | Some (bits, partial) ->
      let entry =
        { e_cycle = p.Packet.cycle; e_imsg = Packet.indexed p; e_bits = bits; e_partial = partial }
      in
      if t.count = t.depth then begin
        (* wrap-around: overwrite the oldest slot in place *)
        t.ring.(t.head) <- Some entry;
        t.head <- (t.head + 1) mod t.depth;
        t.dropped <- t.dropped + 1
      end
      else begin
        t.ring.((t.head + t.count) mod t.depth) <- Some entry;
        t.count <- t.count + 1
      end;
      t.recorded <- t.recorded + 1

let record_all t packets = List.iter (record t) packets

let entries t =
  List.init t.count (fun i ->
      match t.ring.((t.head + i) mod t.depth) with Some e -> e | None -> assert false)

(* The observed trace, as localization consumes it. *)
let observed t = List.map (fun e -> e.e_imsg) (entries t)

let wrapped t = t.dropped > 0

let stats t = (t.recorded, t.dropped)
