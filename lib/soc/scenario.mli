(** The three usage scenarios of Table 1.

    Each scenario names its participating flows and is usable at two
    scales: a fixed analysis-scale instance set whose interleaving is
    materialized for selection/coverage/localization, and simulation-scale
    runs with many instances for the debugging case studies. *)

open Flowtrace_core

type t = {
  id : int;
  name : string;
  flow_names : string list;
  paper_ips : string list;  (** the key IPs Table 1 lists *)
  analysis_counts : (string * int) list;
}

val scenario1 : t
val scenario2 : t
val scenario3 : t

(** The three scenarios, in Table 1 order. *)
val all : t list

(** [by_id n] is scenario [n] (1–3); [Invalid_argument] otherwise. *)
val by_id : int -> t

(** The participating flows, resolved from [flow_names]. *)
val flows : t -> Flow.t list

(** Deduplicated message pool (what Step 1 enumerates). *)
val messages : t -> Message.t list

(** IPs touched by the scenario's messages (a superset of [paper_ips]). *)
val participating_ips : t -> string list

(** Analysis-scale legally indexed instances, globally uniquely indexed. *)
val analysis_instances : t -> Interleave.instance list

(** Materialize the interleaved flow of {!analysis_instances}. *)
val interleave : ?max_states:int -> t -> Interleave.t

(** Simulation-scale workload shape: [rounds] starts one instance of each
    participating flow every [spacing] cycles (with seeded jitter). *)
type run_config = { seed : int; rounds : int; spacing : int }

(** [{ seed = 1; rounds = 40; spacing = 120 }]. *)
val default_run : run_config

(** [prepare ?config ?mutators t] builds a simulation-scale sim without
    running it. *)
val prepare : ?config:run_config -> ?mutators:(Sim.t -> Packet.t -> Sim.action) list -> t -> Sim.t

(** Full-size run for the debugging case studies. *)
val run : ?config:run_config -> ?mutators:(Sim.t -> Packet.t -> Sim.action) list -> t -> Sim.outcome

(** Analysis-scale run over exactly {!analysis_instances}: the packet log
    is one execution of the materialized interleaving. *)
val run_analysis : ?seed:int -> ?mutators:(Sim.t -> Packet.t -> Sim.action) list -> t -> Sim.outcome

(** The T2 interconnect (Figure 3) as a flowcheck topology: its channels
    are the monitor sites [flowtrace check --topology t2] analyzes
    against. *)
val t2_topology : Flowtrace_analysis.Scenario_model.topology

(** [admission ?budget t] statically vets the scenario's flows bound to
    {!t2_topology} — the whole-scenario debuggability analysis
    ({!Flowtrace_analysis.Check.run}) that gates a candidate scenario
    before selection is attempted. Returns the FC diagnostics; an empty
    (or error-free) report admits the scenario. *)
val admission : ?budget:int -> t -> Flowtrace_analysis.Diagnostic.t list

(** [admission_flows ?budget ~name flows] is {!admission} over an
    arbitrary flow list — the gate a {e mined} candidate scenario
    ([lib/mining]) passes before selection sees it, bound to
    {!t2_topology}. [name] labels the diagnostics' file position. *)
val admission_flows :
  ?budget:int -> name:string -> Flow.t list -> Flowtrace_analysis.Diagnostic.t list
