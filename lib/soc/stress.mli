(** A large synthetic stress scenario for the selection engine.

    Three synthetic protocol flows whose five-instance interleaving yields
    thousands of product states and a 19-message pool — exact Step-1/2
    enumeration visits hundreds of thousands of candidate combinations at
    {!default_buffer_width}. This is the workload the streaming multicore
    engine is benchmarked on; the T2 scenarios of Table 1 are too small to
    exercise the scaling path. Fully deterministic. *)

open Flowtrace_core

(** The three synthetic flows (STA, STB, STC). *)
val flows : Flow.t list

(** Five legally indexed instances: STA x2, STB x1, STC x2. *)
val instances : Interleave.instance list

(** Materialize the interleaved flow of {!instances}. *)
val interleave : ?max_states:int -> unit -> Interleave.t

(** The deduplicated message pool Step 1 enumerates. *)
val messages : Message.t list

(** Buffer width at which exact enumeration visits a candidate count in
    the hundreds of thousands while staying under
    [Combination.default_limit]. *)
val default_buffer_width : int
