(* A large synthetic stress scenario for the selection engine.

   The T2 scenarios of Table 1 top out at 12-message pools and a few dozen
   product states — small enough that exact Step-1/2 enumeration never
   strains. This module builds three synthetic protocol flows whose
   interleaving (five legally indexed instances) yields thousands of
   product states and a 19-message pool, so exact enumeration visits
   hundreds of thousands of candidate combinations: the workload the
   streaming multicore engine is benchmarked on (bench/main.ml,
   BENCH_select.json).

   Everything is deterministic: the flows are fixed, so selection results
   are stable across runs and job counts. *)

open Flowtrace_core

(* Synthetic messages: widths cycle through the shape list; messages of
   width >= 6 get two subgroups (packing candidates), widths >= 8 stream
   over two beats (footnote 2 of the paper). *)
let mk_msg ~prefix i w =
  let name = Printf.sprintf "%s_m%02d" prefix i in
  let subgroups =
    if w >= 6 then [ Message.subgroup "hi" (w / 2); Message.subgroup "lo" (w - (w / 2) - 1) ]
    else []
  in
  let beats = if w >= 8 then 2 else 1 in
  Message.make name w
    ~src:(Printf.sprintf "SIP%d" (i mod 3))
    ~dst:(Printf.sprintf "SIP%d" ((i + 1) mod 3))
    ~subgroups ~beats

(* A chain flow with alternative edges: [widths] gives the main-chain
   message widths (k messages over k+1 states); each [(i, w)] in [alts]
   adds a second, distinct message from state i to state i+1 (a protocol
   variant such as a retry or an error reply). [atomic_at] marks chain
   positions whose state joins the Atom mutex set. *)
let chain_flow ~name ~prefix ~widths ~alts ~atomic_at =
  let k = List.length widths in
  let state i = Printf.sprintf "%s%d" prefix i in
  let states = List.init (k + 1) state in
  let main = List.mapi (fun i w -> mk_msg ~prefix i w) widths in
  let alt_msgs = List.map (fun (i, w) -> mk_msg ~prefix (100 + i) w) alts in
  let transitions =
    List.mapi (fun i (m : Message.t) -> Flow.transition (state i) m.Message.name (state (i + 1))) main
    @ List.map2
        (fun (i, _) (m : Message.t) -> Flow.transition (state i) m.Message.name (state (i + 1)))
        alts alt_msgs
  in
  Flow.make ~name ~states ~initial:[ state 0 ] ~stop:[ state k ]
    ~atomic:(List.map state atomic_at)
    ~messages:(main @ alt_msgs) ~transitions ()

let flow_a =
  chain_flow ~name:"STA" ~prefix:"a" ~widths:[ 2; 1; 6; 4; 1 ] ~alts:[ (1, 1); (3, 2) ]
    ~atomic_at:[]

let flow_b =
  chain_flow ~name:"STB" ~prefix:"b" ~widths:[ 1; 2; 3; 8; 1 ] ~alts:[ (2, 1) ] ~atomic_at:[ 3 ]

let flow_c =
  chain_flow ~name:"STC" ~prefix:"c" ~widths:[ 4; 1; 2; 1 ] ~alts:[ (0, 2); (2, 6) ]
    ~atomic_at:[]

let flows = [ flow_a; flow_b; flow_c ]

(* Five legally indexed instances: two STA, one STB, two STC. *)
let instances =
  List.mapi
    (fun i f -> { Interleave.flow = f; index = i + 1 })
    [ flow_a; flow_a; flow_b; flow_c; flow_c ]

let interleave ?(max_states = 2_000_000) () = Interleave.make ~max_states instances

(* Message pool of the scenario, deduplicated by name (instances of the
   same flow share their messages). *)
let messages =
  let seen = Hashtbl.create 32 in
  List.concat_map
    (fun (f : Flow.t) ->
      List.filter_map
        (fun (m : Message.t) ->
          if Hashtbl.mem seen m.Message.name then None
          else begin
            Hashtbl.replace seen m.Message.name ();
            Some m
          end)
        f.Flow.messages)
    flows

(* Wide enough that exact enumeration visits a candidate count in the
   hundreds of thousands (see Combination.count in the bench), narrow
   enough that it stays under Combination.default_limit. *)
let default_buffer_width = 24
