(** The OpenSPARC T2 platform model (Figure 3 / Table 1).

    Five system-level flows with the paper's message vocabulary — PIO Read
    (6 states, 5 messages), PIO Write (3,2), NCU Upstream (4,3), NCU
    Downstream (3,2), Mondo Interrupt (6,5) — over the IP set
    SPC/CCX/NCU/DMU/SIU/PIU/MCU, plus the payload semantics and scoreboard
    checks that turn injected bugs into observable symptoms ("FAIL: Bad
    Trap", hangs, credit mismatches, misrouted interrupts). *)

open Flowtrace_core

(** (IP name, hierarchical depth from top — Table 2's "bug depth"). *)
val ips : (string * int) list

(** [ip_depth ip] is the hierarchical depth of {!ips} ([0] when unknown). *)
val ip_depth : string -> int

(** (src, dst, latency) point-to-point links of Figure 3. *)
val channels : (string * string * int) list

(** The five paper flows: PIO Read, PIO Write, NCU Upstream, NCU
    Downstream, Mondo Interrupt. *)

val pior : Flow.t
val piow : Flow.t
val ncuu : Flow.t
val ncud : Flow.t
val mondo : Flow.t

(** All five, in Table 1 order. *)
val flows : Flow.t list

(** Look a flow up by its spec name ([PIOR], [PIOW], [NCUU], [NCUD],
    [Mon]); [Invalid_argument] on anything else. *)
val flow_by_name : string -> Flow.t

(** The 16 distinct messages across all five flows ([siincu] is shared
    between Mondo and NCU Upstream) — Table 5's m1..m16. *)
val all_messages : Message.t list

(** [key_of ~cpuid ~threadid] packs the Mondo routing key (the
    [cputhreadid] sub-field's value). *)
val key_of : cpuid:int -> threadid:int -> int

(** The NCU's PIO write credit pool size; [piowreq] consumes a credit at
    send time, [piowcrd] returns it, an empty pool backpressures writes. *)
val write_credit_pool : int

(** Payload generation + scoreboard checks for all 16 messages, plus
    credit gating. *)
val semantics : Sim.semantics

(** Instance-local variables for a fresh instance: PIO addresses are
    slot-spread so concurrent instances never collide on memory. *)
val fresh_env : rng:Rng.t -> slot:int -> Flow.t -> (string * int) list

(** [install sim] declares the channels and initializes the memory image. *)
val install : Sim.t -> unit
