(* The transaction-level SoC simulator.

   Flow instances execute their specification DAGs directly: firing a
   transition emits the labeling message as a packet between the declared
   source and destination IPs, with payload fields produced by a
   platform-semantics callback (see {!T2}) and per-channel latency folded
   into the inter-message delay. State advances atomically at fire time, so
   the chronological packet log of a run is — by construction — a path of
   the interleaved flow of the participating instances, which is what lets
   flow-level localization consume simulator traces directly.

   The Atom mutex is enforced operationally: an instance may fire only
   while every other instance sits outside its atomic states; blocked
   instances retry a few cycles later (the atomic instance itself is never
   blocked, so progress is guaranteed).

   Bug injection hooks in as packet mutators (see {!Flowtrace_bug.Inject}):
   a mutator may corrupt payload fields, misroute, or drop a packet
   entirely — a dropped packet strands its instance, the hang symptom. *)

open Flowtrace_core
module Tel = Flowtrace_telemetry.Telemetry

let c_fires = Tel.Counter.v "soc.sim.fires"
let c_blocked = Tel.Counter.v "soc.sim.blocked"
let c_backpressured = Tel.Counter.v "soc.sim.backpressured"
let c_deadlocked = Tel.Counter.v "soc.sim.deadlocked"
let c_failures = Tel.Counter.v "soc.sim.failures"
let g_queue_depth = Tel.Gauge.v "soc.sim.queue_depth_max"

(* Per-IP counters are looked up by name at emit time; the Tel.enabled
   guard at each call site keeps the string concatenation off the disabled
   path. Counter.v memoizes, so steady-state cost is one Hashtbl lookup. *)
let ip_counter ip what = Tel.Counter.v (Printf.sprintf "soc.sim.ip.%s.%s" ip what)

type channel = {
  ch_src : string;
  ch_dst : string;
  ch_latency : int;
  mutable ch_traffic : int;
  mutable ch_busy_until : int;  (* serialization: one packet in flight at a time *)
}

type failure = { f_cycle : int; f_ip : string; f_flow : string; f_desc : string }

(* What a mutator decides about an outgoing packet. *)
type action =
  | Deliver of Packet.t  (* possibly rewritten *)
  | Swallow  (* lost inside the buggy IP: the instance hangs *)
  | Replay of Packet.t  (* delivered twice (QED-style duplication) *)
  | Stall of Packet.t * int  (* delivered after extra cycles of delay *)

type config = { seed : int; max_cycles : int; mem_size : int }

let default_config = { seed = 1; max_cycles = 1_000_000; mem_size = 1024 }

type t = {
  config : config;
  rng : Rng.t;
  queue : event Event_queue.t;
  channels : (string * string, channel) Hashtbl.t;
  memory : int array;  (* simple global memory model (PIO space) *)
  state : (string, int) Hashtbl.t;  (* platform scratch state (tables, credits) *)
  mutable cycle : int;
  mutable log : Packet.t list;  (* reversed chronological packet log *)
  mutable failures : failure list;
  mutable mutators : (t -> Packet.t -> action) list;
  mutable instances : instance list;
  mutable fired : int;
}

and instance = {
  i_flow : Flow.t;
  i_index : int;
  i_start : int;
  i_env : (string, int) Hashtbl.t;
  i_rng : Rng.t;
      (* private stream: a bug stalling one instance must not perturb the
         random choices of the others, or golden-vs-buggy diffs would blame
         every message on every bug *)
  mutable i_state : string;
  mutable i_done : bool;
  mutable i_stuck : bool;
}

and event = Fire of instance

and semantics = {
  payload : t -> instance -> Message.t -> (string * int) list;
      (* fields of an outgoing message *)
  on_deliver : t -> instance -> Packet.t -> string option;
      (* receiver-side validity check; [Some desc] records a failure *)
  gate : t -> instance -> Message.t -> bool;
      (* flow-control: may this message be sent now? (e.g. credits) *)
}

let create ?(config = default_config) () =
  {
    config;
    rng = Rng.create config.seed;
    queue = Event_queue.create ();
    channels = Hashtbl.create 16;
    memory = Array.make config.mem_size 0;
    state = Hashtbl.create 16;
    cycle = 0;
    log = [];
    failures = [];
    mutators = [];
    instances = [];
    fired = 0;
  }

let add_channel t ~src ~dst ~latency =
  if Hashtbl.mem t.channels (src, dst) then
    invalid_arg (Printf.sprintf "Sim.add_channel: duplicate channel %s->%s" src dst);
  Hashtbl.replace t.channels (src, dst)
    { ch_src = src; ch_dst = dst; ch_latency = latency; ch_traffic = 0; ch_busy_until = 0 }

let channel t ~src ~dst = Hashtbl.find_opt t.channels (src, dst)

let add_mutator t m = t.mutators <- t.mutators @ [ m ]

let env_get inst key = Option.value ~default:0 (Hashtbl.find_opt inst.i_env key)
let env_set inst key v = Hashtbl.replace inst.i_env key v

let state_get t key = Option.value ~default:0 (Hashtbl.find_opt t.state key)
let state_set t key v = Hashtbl.replace t.state key v

let fail t ~ip ~flow ~desc =
  Tel.Counter.incr c_failures;
  t.failures <- { f_cycle = t.cycle; f_ip = ip; f_flow = flow; f_desc = desc } :: t.failures

let add_instance t ~flow ~index ~start ~env =
  if List.exists (fun i -> String.equal i.i_flow.Flow.name flow.Flow.name && i.i_index = index) t.instances
  then invalid_arg "Sim.add_instance: duplicate (flow, index) — not legally indexed";
  let inst =
    {
      i_flow = flow;
      i_index = index;
      i_start = start;
      i_env = Hashtbl.of_seq (List.to_seq env);
      i_rng = Rng.create ((t.config.seed * 1_000_003) + (index * 7919));
      i_state = (match flow.Flow.initial with s :: _ -> s | [] -> assert false);
      i_done = false;
      i_stuck = false;
    }
  in
  t.instances <- t.instances @ [ inst ];
  Event_queue.push t.queue ~at:start (Fire inst);
  inst

(* [`Blocked] when a live instance holds an atomic state; [`Deadlocked]
   when the only atomic holders are stuck instances (a dropped message
   inside an atomic section) — then the blocked instance can never run. *)
let atomic_holders t inst =
  let holders =
    List.filter
      (fun other ->
        other != inst && (not other.i_done)
        && t.cycle >= other.i_start
        && Flow.is_atomic other.i_flow other.i_state)
      t.instances
  in
  if holders = [] then `Free
  else if List.for_all (fun h -> h.i_stuck) holders then `Deadlocked
  else `Blocked

let fire sem t inst =
  if not (inst.i_done || inst.i_stuck) then begin
    match atomic_holders t inst with
    | `Blocked ->
        (* blocked by the Atom mutex; the atomic instance will move on *)
        Tel.Counter.incr c_blocked;
        Event_queue.push t.queue ~at:(t.cycle + 2) (Fire inst)
    | `Deadlocked ->
        Tel.Counter.incr c_deadlocked;
        inst.i_stuck <- true
    | `Free -> (
      (* flow control: only transitions whose message the platform allows
         right now (credit available, queue not full) are choosable *)
      let all = Flow.successors inst.i_flow inst.i_state in
      let open_ =
        List.filter (fun (tr : Flow.transition) -> sem.gate t inst (Flow.message_exn inst.i_flow tr.Flow.t_msg)) all
      in
      match (all, open_) with
      | [], _ -> inst.i_stuck <- true (* cannot happen in validated flows *)
      | _, [] ->
          (* backpressured: retry once resources free up *)
          Tel.Counter.incr c_backpressured;
          Event_queue.push t.queue ~at:(t.cycle + 4) (Fire inst)
      | _, succs ->
          let tr = Rng.pick inst.i_rng succs in
          let msg = Flow.message_exn inst.i_flow tr.Flow.t_msg in
          let fields = sem.payload t inst msg in
          let packet =
            {
              Packet.cycle = t.cycle;
              flow = inst.i_flow.Flow.name;
              inst = inst.i_index;
              msg = msg.Message.name;
              src = msg.Message.src;
              dst = msg.Message.dst;
              fields;
            }
          in
          (* fold mutators; Swallow is terminal, delays accumulate, a
             replay survives further rewriting of the packet *)
          let mutated =
            List.fold_left
              (fun acc m ->
                match acc with
                | Swallow -> Swallow
                | Deliver p -> m t p
                | Replay p -> (
                    match m t p with
                    | Deliver p' -> Replay p'
                    | other -> other)
                | Stall (p, d) -> (
                    match m t p with
                    | Deliver p' -> Stall (p', d)
                    | Stall (p', d') -> Stall (p', d + d')
                    | other -> other))
              (Deliver packet) t.mutators
          in
          (match mutated with
          | Swallow ->
              (* the message was swallowed inside the buggy IP: the flow
                 instance hangs waiting for it *)
              if Tel.enabled () then Tel.Counter.incr (ip_counter packet.Packet.src "dropped");
              inst.i_stuck <- true
          | Deliver p | Replay p | Stall (p, _) ->
              let extra = match mutated with Stall (_, d) -> d | _ -> 0 in
              Tel.Counter.incr c_fires;
              if Tel.enabled () then begin
                Tel.Counter.incr (ip_counter p.Packet.src "sent");
                Tel.Counter.incr (ip_counter p.Packet.dst "received")
              end;
              t.log <- p :: t.log;
              if (match mutated with Replay _ -> true | _ -> false) then
                t.log <- { p with Packet.cycle = p.Packet.cycle } :: t.log;
              t.fired <- t.fired + 1;
              (* Channel serialization: a link carries one packet at a
                 time, so a busy link stretches the effective latency —
                 contention shows up as increased inter-message delay. *)
              let latency =
                match channel t ~src:p.Packet.src ~dst:p.Packet.dst with
                | Some ch ->
                    ch.ch_traffic <- ch.ch_traffic + 1;
                    let start = max t.cycle ch.ch_busy_until in
                    ch.ch_busy_until <- start + ch.ch_latency;
                    start + ch.ch_latency - t.cycle
                | None -> 1
              in
              (match sem.on_deliver t inst p with
              | Some desc -> fail t ~ip:p.Packet.dst ~flow:p.Packet.flow ~desc
              | None -> ());
              (* a replayed packet is processed twice by the receiver *)
              (match mutated with
              | Replay _ -> (
                  match sem.on_deliver t inst p with
                  | Some desc -> fail t ~ip:p.Packet.dst ~flow:p.Packet.flow ~desc
                  | None -> ())
              | _ -> ());
              inst.i_state <- tr.Flow.t_dst;
              if Flow.is_stop inst.i_flow inst.i_state then inst.i_done <- true
              else
                let think = 1 + Rng.int inst.i_rng 12 in
                Event_queue.push t.queue ~at:(t.cycle + latency + extra + think) (Fire inst)))
  end

let run sem t =
  let continue_ = ref true in
  while !continue_ do
    match Event_queue.pop t.queue with
    | None -> continue_ := false
    | Some (at, Fire inst) ->
        if at > t.config.max_cycles then continue_ := false
        else begin
          t.cycle <- at;
          fire sem t inst;
          Tel.Gauge.max_ g_queue_depth (float_of_int (Event_queue.length t.queue))
        end
  done

type outcome = {
  packets : Packet.t list;  (* chronological *)
  completed : (string * int) list;
  hung : (string * int) list;
  failures : failure list;
  end_cycle : int;
}

let outcome t =
  {
    packets = List.rev t.log;
    completed =
      List.filter_map (fun i -> if i.i_done then Some (i.i_flow.Flow.name, i.i_index) else None) t.instances;
    hung =
      List.filter_map
        (fun i -> if not i.i_done then Some (i.i_flow.Flow.name, i.i_index) else None)
        t.instances;
    failures = List.rev t.failures;
    end_cycle = t.cycle;
  }

let memory t = t.memory
