(* The three usage scenarios of Table 1, at two scales:

   - analysis scale: a fixed small set of legally indexed instances whose
     interleaved flow is materialized for message selection, coverage and
     path localization (instance indices are globally unique so shared
     messages like [siincu] stay unambiguous);
   - simulation scale: many instances spread over time, for the debugging
     case studies where symptoms take hundreds of messages to manifest. *)

open Flowtrace_core
module Tel = Flowtrace_telemetry.Telemetry

type t = {
  id : int;
  name : string;
  flow_names : string list;
  paper_ips : string list;  (* the key IPs Table 1 lists *)
  analysis_counts : (string * int) list;  (* flow name -> #instances analyzed *)
}

let scenario1 =
  {
    id = 1;
    name = "Scenario 1";
    flow_names = [ "PIOR"; "PIOW"; "Mon" ];
    paper_ips = [ "NCU"; "DMU"; "SIU" ];
    analysis_counts = [ ("PIOR", 1); ("PIOW", 1); ("Mon", 2) ];
  }

let scenario2 =
  {
    id = 2;
    name = "Scenario 2";
    flow_names = [ "NCUU"; "NCUD"; "Mon" ];
    paper_ips = [ "NCU"; "MCU"; "CCX" ];
    analysis_counts = [ ("NCUU", 2); ("NCUD", 1); ("Mon", 1) ];
  }

let scenario3 =
  {
    id = 3;
    name = "Scenario 3";
    flow_names = [ "PIOR"; "PIOW"; "NCUU"; "NCUD" ];
    paper_ips = [ "NCU"; "MCU"; "DMU"; "SIU" ];
    analysis_counts = [ ("PIOR", 1); ("PIOW", 2); ("NCUU", 1); ("NCUD", 1) ];
  }

let all = [ scenario1; scenario2; scenario3 ]

let by_id id =
  match List.find_opt (fun s -> s.id = id) all with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Scenario.by_id: %d" id)

let flows t = List.map T2.flow_by_name t.flow_names

(* Deduplicated message pool of the scenario (Step 1 enumerates these). *)
let messages t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (f : Flow.t) ->
      List.filter_map
        (fun (m : Message.t) ->
          if Hashtbl.mem seen m.Message.name then None
          else begin
            Hashtbl.replace seen m.Message.name ();
            Some m
          end)
        f.Flow.messages)
    (flows t)

(* IPs actually touched by the scenario's messages. *)
let participating_ips t =
  List.sort_uniq String.compare
    (List.concat_map (fun (m : Message.t) -> [ m.Message.src; m.Message.dst ]) (messages t))

(* Analysis-scale instances with globally unique indices, in a stable
   order: the same instance set is used to build the interleaved flow and
   to drive analysis-scale simulations, so observed traces project
   directly onto the interleaving. *)
let analysis_instances t =
  let next = ref 0 in
  List.concat_map
    (fun (name, count) ->
      List.init count (fun _ ->
          incr next;
          { Interleave.flow = T2.flow_by_name name; index = !next }))
    t.analysis_counts

let interleave ?(max_states = 2_000_000) t =
  Interleave.make ~max_states (analysis_instances t)

(* ------------------------------------------------------------------ *)
(* Simulation *)

type run_config = {
  seed : int;
  rounds : int;  (* one instance of each participating flow per round *)
  spacing : int;  (* cycles between round starts *)
}

let default_run = { seed = 1; rounds = 40; spacing = 120 }

let prepare ?(config = default_run) ?(mutators = []) t =
  let sim =
    Sim.create
      ~config:{ Sim.default_config with seed = config.seed }
      ()
  in
  T2.install sim;
  List.iter (Sim.add_mutator sim) mutators;
  let env_rng = Rng.create (config.seed + 7919) in
  let next = ref 0 in
  for round = 0 to config.rounds - 1 do
    List.iter
      (fun (f : Flow.t) ->
        incr next;
        let start = (round * config.spacing) + Rng.int env_rng 40 in
        let env = T2.fresh_env ~rng:env_rng ~slot:!next f in
        ignore (Sim.add_instance sim ~flow:f ~index:!next ~start ~env))
      (flows t)
  done;
  sim

(* Full-size run for the debugging case studies. *)
let run ?config ?mutators t =
  let cfg = Option.value ~default:default_run config in
  Tel.with_span "soc.scenario.run"
    ~args:(fun () ->
      Flowtrace_telemetry.Event.
        [ ("name", Str t.name); ("rounds", Int cfg.rounds); ("seed", Int cfg.seed) ])
  @@ fun () ->
  let sim = prepare ?config ?mutators t in
  Sim.run T2.semantics sim;
  Sim.outcome sim

(* Analysis-scale run: exactly the instances of [analysis_instances],
   overlapping in time, so the packet log is one execution of the
   materialized interleaving. *)
let run_analysis ?(seed = 1) ?(mutators = []) t =
  Tel.with_span "soc.scenario.run"
    ~args:(fun () ->
      Flowtrace_telemetry.Event.[ ("name", Str (t.name ^ " (analysis)")); ("seed", Int seed) ])
  @@ fun () ->
  let sim =
    Sim.create ~config:{ Sim.default_config with seed } ()
  in
  T2.install sim;
  List.iter (Sim.add_mutator sim) mutators;
  let env_rng = Rng.create (seed + 104729) in
  List.iter
    (fun (inst : Interleave.instance) ->
      let env = T2.fresh_env ~rng:env_rng ~slot:inst.Interleave.index inst.Interleave.flow in
      ignore
        (Sim.add_instance sim ~flow:inst.Interleave.flow ~index:inst.Interleave.index
           ~start:(Rng.int env_rng 30) ~env))
    (analysis_instances t);
  Sim.run T2.semantics sim;
  Sim.outcome sim

(* --- static admission gate --------------------------------------------- *)

(* The T2 interconnect as a flowcheck topology: the channels of Figure 3
   are exactly the places a trace monitor can sit. *)
let t2_topology =
  {
    Flowtrace_analysis.Scenario_model.topo_name = "t2";
    topo_ips = List.map fst T2.ips;
    topo_channels = List.map (fun (src, dst, _latency) -> (src, dst)) T2.channels;
  }

(* Whole-scenario debuggability analysis of the participating flows bound
   to the T2 topology — the gate a mined or hand-written candidate
   scenario passes before selection sees it. *)
let admission_flows ?budget ~name flows =
  Flowtrace_analysis.Check.run
    (Flowtrace_analysis.Scenario_model.of_flows ~topology:t2_topology ?budget ~file:name flows)

let admission ?budget t = admission_flows ?budget ~name:t.name (flows t)
