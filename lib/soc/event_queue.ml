(* Binary-heap event queue for the discrete-event simulator. Ties on time
   break by insertion order, keeping runs fully deterministic.

   Slots are options so vacated positions are cleared on pop: the heap
   never retains a reference to a popped payload, and growing the backing
   array needs no dummy element (which used to pin the first pushed
   payload live for the queue's lifetime). *)

type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = { mutable heap : 'a entry option array; mutable size : int; mutable next_seq : int }

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size
let is_empty q = q.size = 0

let get q i = match q.heap.(i) with Some e -> e | None -> assert false

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (get q i) (get q parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before (get q l) (get q !smallest) then smallest := l;
  if r < q.size && before (get q r) (get q !smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~at payload =
  if at < 0 then invalid_arg "Event_queue.push: negative time";
  if q.size = Array.length q.heap then begin
    let cap = max 16 (2 * q.size) in
    let heap = Array.make cap None in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- Some { at; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = get q 0 in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      q.heap.(q.size) <- None;
      sift_down q 0
    end
    else q.heap.(0) <- None;
    Some (top.at, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some (get q 0).at
