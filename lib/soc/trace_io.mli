(** Text serialization of packet traces.

    One packet per line — [cycle flow inst msg src dst k=v,k=v] — with
    ['#'] comments; round-trips through {!print}/{!parse}. Lets monitor
    logs be saved, diffed and replayed through the CLI. *)

(** Position and description of the first malformed line. *)
type error = { line : int; message : string }

exception Parse_error of error

(** [print_packet p] renders one trace line (no newline). *)
val print_packet : Packet.t -> string

(** [print packets] renders a whole trace, one line per packet. *)
val print : Packet.t list -> string

(** Raises {!Parse_error} with a line number on malformed input. *)
val parse : string -> Packet.t list

(** [save path packets] / [load path]: {!print} to and {!parse} from a
    file. [load] raises [Sys_error] or {!Parse_error}. *)
val save : string -> Packet.t list -> unit

val load : string -> Packet.t list
