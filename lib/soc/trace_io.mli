(** Text serialization of packet traces.

    One packet per line — [cycle flow inst msg src dst k=v,k=v] — with
    ['#'] comments; round-trips through {!print}/{!parse}. Lets monitor
    logs be saved, diffed and replayed through the CLI. *)

(** Position and description of the first malformed line. *)
type error = { line : int; message : string }

exception Parse_error of error

(** [print_packet p] renders one trace line (no newline). Raises
    [Invalid_argument] when a flow/message/endpoint/field name is empty
    or contains a wire-format delimiter (whitespace, ['#'], ['='] or
    [',']) — such a packet would not round-trip through {!parse}. *)
val print_packet : Packet.t -> string

(** [print packets] renders a whole trace, one line per packet. *)
val print : Packet.t list -> string

(** Raises {!Parse_error} with a line number on malformed input. *)
val parse : string -> Packet.t list

(** [parse_lenient ?file ?max_errors text] is recovering ingest:
    malformed lines are skipped instead of fatal, each reported as a
    [TR001] warning {!Flowtrace_analysis.Diagnostic} positioned at
    [file:line]. On clean input it returns exactly [(parse text, [])].
    More than [max_errors] (default 100) bad lines raises
    {!Parse_error} — a file that is mostly garbage is rejected as a
    whole rather than "recovered" into a near-empty trace. *)
val parse_lenient :
  ?file:string ->
  ?max_errors:int ->
  string ->
  Packet.t list * Flowtrace_analysis.Diagnostic.t list

(** [save path packets] / [load path]: {!print} to and {!parse} from a
    file. [load] raises [Sys_error] or {!Parse_error}. *)
val save : string -> Packet.t list -> unit

val load : string -> Packet.t list

(** {!parse_lenient} from a file; raises [Sys_error] on I/O failure. *)
val load_lenient :
  ?max_errors:int -> string -> Packet.t list * Flowtrace_analysis.Diagnostic.t list
