(* Text serialization of packet traces, so monitor logs can be saved,
   diffed and replayed through the CLI. One packet per line:

     <cycle> <flow> <inst> <msg> <src> <dst> k=v,k=v,...

   '#' starts a comment; a lone '-' stands for an empty field list. *)

open Flowtrace_core

type error = { line : int; message : string }

exception Parse_error of error

let err line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

(* The wire format delimits with spaces, ',', '=' and '#'; a name
   containing one of those would serialize to a line [parse] rejects or
   silently misreads (the round-trip hole). Refuse to print it. *)
let check_name what s =
  let bad c = c = ' ' || c = '\t' || c = '\n' || c = '\r' || c = '#' || c = '=' || c = ',' in
  if s = "" then invalid_arg (Printf.sprintf "Trace_io.print_packet: empty %s name" what);
  String.iter
    (fun c ->
      if bad c then
        invalid_arg
          (Printf.sprintf "Trace_io.print_packet: %s name %S contains reserved character %C" what s
             c))
    s

let print_packet (p : Packet.t) =
  check_name "flow" p.Packet.flow;
  check_name "message" p.Packet.msg;
  check_name "source" p.Packet.src;
  check_name "destination" p.Packet.dst;
  List.iter (fun (k, _) -> check_name "field" k) p.Packet.fields;
  let fields =
    match p.Packet.fields with
    | [] -> "-"
    | fs -> String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fs)
  in
  Printf.sprintf "%d %s %d %s %s %s %s" p.Packet.cycle p.Packet.flow p.Packet.inst p.Packet.msg
    p.Packet.src p.Packet.dst fields

let print packets =
  "# flowtrace trace v1\n" ^ String.concat "\n" (List.map print_packet packets) ^ "\n"

let parse_fields lineno = function
  | "-" -> []
  | s ->
      List.map
        (fun kv ->
          match String.split_on_char '=' kv with
          | [ k; v ] -> (
              match int_of_string_opt v with
              | Some v -> (k, v)
              | None -> err lineno "bad field value %S" kv)
          | _ -> err lineno "bad field %S" kv)
        (String.split_on_char ',' s)

let parse_line lineno line =
  match List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line)) with
  | [] -> None
  | [ cycle; flow; inst; msg; src; dst; fields ] -> (
      match (int_of_string_opt cycle, int_of_string_opt inst) with
      | Some cycle, Some inst ->
          Some
            {
              Packet.cycle;
              flow;
              inst;
              msg;
              src;
              dst;
              fields = parse_fields lineno fields;
            }
      | _ -> err lineno "bad cycle or instance number")
  | _ -> err lineno "expected 7 fields"

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line
         in
         match parse_line lineno line with None -> [] | Some p -> [ p ])
       lines)

let save path packets =
  let oc = open_out path in
  output_string oc (print packets);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

(* ------------------------------------------------------------------ *)
(* Recovering ingest: real trace dumps arrive damaged (torn lines from
   a crashed writer, corrupted sectors, interleaved logger output).
   Lenient parsing skips malformed lines, each one reported as a
   positioned diagnostic, under an error budget — a file that is mostly
   garbage is still rejected as a whole rather than "recovered" into a
   near-empty trace. *)

module D = Flowtrace_analysis.Diagnostic

let parse_lenient ?(file = "<trace>") ?(max_errors = 100) text =
  if max_errors < 0 then invalid_arg "Trace_io.parse_lenient: negative error budget";
  let lines = String.split_on_char '\n' text in
  let packets = ref [] and diags = ref [] and errors = ref 0 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line
      in
      match parse_line lineno line with
      | None -> ()
      | Some p -> packets := p :: !packets
      | exception Parse_error e ->
          incr errors;
          if !errors > max_errors then
            err lineno "more than %d malformed lines — refusing to recover (is this a trace file?)"
              max_errors
          else
            diags :=
              D.make ~code:"TR001" ~severity:D.Warning
                (Srcspan.make ~file ~line:e.line ~col:1)
                (Printf.sprintf "malformed trace line skipped: %s" e.message)
              :: !diags)
    lines;
  (List.rev !packets, List.rev !diags)

let load_lenient ?max_errors path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse_lenient ~file:path ?max_errors text
