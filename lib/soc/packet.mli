(** Observed inter-IP transactions.

    The System-Verilog monitors of the paper's Figure 4 convert RTL signal
    activity into flow messages; our simulator's monitors produce these
    packets directly — one per message occurrence, carrying the flow
    instance tag and named payload fields. *)

open Flowtrace_core

type t = {
  cycle : int;
  flow : string;
  inst : int;  (** flow instance index — the hardware tag *)
  msg : string;
  src : string;
  dst : string;
  fields : (string * int) list;
}

(** The indexed message this packet realizes. *)
val indexed : t -> Indexed.t

(** [field p name] reads a payload field by name. *)
val field : t -> string -> int option

(** [field_exn p name] is {!field} or [Invalid_argument]. *)
val field_exn : t -> string -> int

(** [with_field p name v] sets or replaces a payload field. *)
val with_field : t -> string -> int -> t

(** Single-line rendering, the {!Trace_io} wire format. *)
val to_string : t -> string
