(** Observation-path fault model.

    [lib/bug] mutates the {e design}; this module mutates the {e
    observer}. Real post-silicon trace infrastructure drops packets,
    flips payload bits, delivers out of order, goes blind for whole
    windows and truncates sessions — all between the monitors and the
    trace buffer. [apply] injects exactly those faults into a packet
    log, deterministically from a single {!Flowtrace_core.Rng} seed, so
    that every downstream robustness experiment is reproducible.

    Faults compose in a fixed pipeline order: session truncation, then
    blackout windows, then per-packet drops, then payload-field bit
    corruption, then bounded local reordering. Payload corruption never
    changes a packet's message identity (cycle/flow/inst/msg/src/dst are
    untouched), mirroring hardware where the monitor's framing survives
    but captured data bits may not. *)

(** What to inject. [none] (all rates zero, no windows) makes [apply]
    the identity. *)
type spec = {
  drop : float;  (** per-packet drop probability, in [0, 1] *)
  corrupt : float;  (** per-packet payload bit-flip probability, in [0, 1] *)
  reorder : int;  (** max positions a packet may move locally; 0 = off *)
  blackouts : (int * int) list;
      (** inclusive cycle windows where the monitor is blind *)
  truncate : int option;  (** keep only the first [n] surviving packets *)
}

val none : spec

(** [is_none s] — no fault is configured; [apply] is the identity. *)
val is_none : spec -> bool

(** Per-fault accounting for one [apply]. *)
type report = {
  r_total : int;  (** packets entering the observation path *)
  r_truncated : int;
  r_blackout : int;
  r_dropped : int;
  r_corrupted : int;
  r_reordered : int;  (** packets whose position changed *)
}

val report_to_string : report -> string

(** [lost r] — packets that never reached the trace buffer. *)
val lost : report -> int

(** [apply ~seed spec packets] runs the fault pipeline. Equal seeds and
    specs yield bit-identical results. Telemetry counters
    [soc.obs_fault.*] are ticked per fault class. *)
val apply : seed:int -> spec -> Packet.t list -> Packet.t list * report

(** [parse_spec s] reads the CLI syntax: comma-separated [key=value]
    with keys [drop], [corrupt] (probabilities), [reorder] (window),
    [blackout=A-B] (repeatable), [trunc] (packet count). Example:
    ["drop=0.1,corrupt=0.05,reorder=3,blackout=100-200,trunc=500"]. *)
val parse_spec : string -> (spec, string) result

(** Round-trips through {!parse_spec}. *)
val spec_to_string : spec -> string
