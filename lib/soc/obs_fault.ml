(* Observation-path fault model: deterministic, seed-driven faults
   between the simulator's packet log and the trace buffer. See the mli
   for the pipeline order and the design rationale. *)

open Flowtrace_core
module Tel = Flowtrace_telemetry.Telemetry

type spec = {
  drop : float;
  corrupt : float;
  reorder : int;
  blackouts : (int * int) list;
  truncate : int option;
}

let none = { drop = 0.0; corrupt = 0.0; reorder = 0; blackouts = []; truncate = None }

let is_none s =
  s.drop = 0.0 && s.corrupt = 0.0 && s.reorder = 0 && s.blackouts = [] && s.truncate = None

type report = {
  r_total : int;
  r_truncated : int;
  r_blackout : int;
  r_dropped : int;
  r_corrupted : int;
  r_reordered : int;
}

let lost r = r.r_truncated + r.r_blackout + r.r_dropped

let report_to_string r =
  Printf.sprintf
    "obs-faults: %d packets in, %d lost (%d truncated, %d blackout, %d dropped), %d corrupted, %d reordered"
    r.r_total (lost r) r.r_truncated r.r_blackout r.r_dropped r.r_corrupted r.r_reordered

let c_truncated = Tel.Counter.v "soc.obs_fault.truncated"
let c_blackout = Tel.Counter.v "soc.obs_fault.blackout"
let c_dropped = Tel.Counter.v "soc.obs_fault.dropped"
let c_corrupted = Tel.Counter.v "soc.obs_fault.corrupted"
let c_reordered = Tel.Counter.v "soc.obs_fault.reordered"

let in_blackout blackouts cycle =
  List.exists (fun (a, b) -> cycle >= a && cycle <= b) blackouts

(* Flip one random bit (0..15) of one random payload field. Message
   identity is untouched, so the indexed trace the buffer sees is the
   same — only captured data bits rot, as in real capture logic. *)
let corrupt_packet rng (p : Packet.t) =
  match p.Packet.fields with
  | [] -> p
  | fields ->
      let i = Rng.int rng (List.length fields) in
      let bit = Rng.int rng 16 in
      let name, v = List.nth fields i in
      Packet.with_field p name (v lxor (1 lsl bit))

(* Bounded local reordering: shuffle consecutive blocks of [w + 1]
   packets, so no packet moves more than [w] positions. *)
let reorder_window rng w packets =
  let a = Array.of_list packets in
  let n = Array.length a in
  let block = w + 1 in
  let i = ref 0 in
  while !i < n do
    let len = min block (n - !i) in
    let sub = Array.sub a !i len in
    Rng.shuffle rng sub;
    Array.blit sub 0 a !i len;
    i := !i + block
  done;
  let moved = ref 0 in
  List.iteri (fun j p -> if not (a.(j) == p) then incr moved) packets;
  (Array.to_list a, !moved)

let apply ~seed spec packets =
  let total = List.length packets in
  let rng = Rng.create seed in
  (* 1. session truncation *)
  let packets, truncated =
    match spec.truncate with
    | None -> (packets, 0)
    | Some n ->
        let n = max n 0 in
        let kept = List.filteri (fun i _ -> i < n) packets in
        (kept, total - List.length kept)
  in
  (* 2. blackout windows *)
  let kept, blackout =
    if spec.blackouts = [] then (packets, 0)
    else
      List.fold_left
        (fun (acc, k) p ->
          if in_blackout spec.blackouts p.Packet.cycle then (acc, k + 1) else (p :: acc, k))
        ([], 0) packets
      |> fun (acc, k) -> (List.rev acc, k)
  in
  (* 3. per-packet drops *)
  let kept, dropped =
    if spec.drop <= 0.0 then (kept, 0)
    else
      List.fold_left
        (fun (acc, k) p ->
          if Rng.float rng 1.0 < spec.drop then (acc, k + 1) else (p :: acc, k))
        ([], 0) kept
      |> fun (acc, k) -> (List.rev acc, k)
  in
  (* 4. payload corruption *)
  let kept, corrupted =
    if spec.corrupt <= 0.0 then (kept, 0)
    else
      List.fold_left
        (fun (acc, k) p ->
          if Rng.float rng 1.0 < spec.corrupt then
            let p' = corrupt_packet rng p in
            (p' :: acc, (if p' == p then k else k + 1))
          else (p :: acc, k))
        ([], 0) kept
      |> fun (acc, k) -> (List.rev acc, k)
  in
  (* 5. bounded local reordering *)
  let kept, reordered =
    if spec.reorder <= 0 then (kept, 0) else reorder_window rng spec.reorder kept
  in
  if Tel.enabled () then begin
    Tel.Counter.add c_truncated truncated;
    Tel.Counter.add c_blackout blackout;
    Tel.Counter.add c_dropped dropped;
    Tel.Counter.add c_corrupted corrupted;
    Tel.Counter.add c_reordered reordered
  end;
  ( kept,
    {
      r_total = total;
      r_truncated = truncated;
      r_blackout = blackout;
      r_dropped = dropped;
      r_corrupted = corrupted;
      r_reordered = reordered;
    } )

(* ------------------------------------------------------------------ *)
(* CLI spec syntax *)

let parse_prob key v =
  match float_of_string_opt v with
  | Some f when f >= 0.0 && f <= 1.0 -> Ok f
  | _ -> Error (Printf.sprintf "%s: expected a probability in [0,1], got %S" key v)

let parse_spec s =
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let rec go spec = function
    | [] -> Ok spec
    | part :: rest -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "obs-fault spec: expected key=value, got %S" part)
        | Some i -> (
            let key = String.sub part 0 i in
            let v = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "drop" -> (
                match parse_prob key v with
                | Ok f -> go { spec with drop = f } rest
                | Error e -> Error e)
            | "corrupt" -> (
                match parse_prob key v with
                | Ok f -> go { spec with corrupt = f } rest
                | Error e -> Error e)
            | "reorder" -> (
                match int_of_string_opt v with
                | Some w when w >= 0 -> go { spec with reorder = w } rest
                | _ -> Error (Printf.sprintf "reorder: expected a window >= 0, got %S" v))
            | "blackout" -> (
                match String.index_opt v '-' with
                | Some j -> (
                    let a = String.sub v 0 j and b = String.sub v (j + 1) (String.length v - j - 1) in
                    match (int_of_string_opt a, int_of_string_opt b) with
                    | Some a, Some b when a >= 0 && b >= a ->
                        go { spec with blackouts = spec.blackouts @ [ (a, b) ] } rest
                    | _ -> Error (Printf.sprintf "blackout: expected A-B with 0 <= A <= B, got %S" v))
                | None -> Error (Printf.sprintf "blackout: expected A-B cycle window, got %S" v))
            | "trunc" -> (
                match int_of_string_opt v with
                | Some n when n >= 0 -> go { spec with truncate = Some n } rest
                | _ -> Error (Printf.sprintf "trunc: expected a packet count >= 0, got %S" v))
            | _ -> Error (Printf.sprintf "obs-fault spec: unknown key %S" key)))
  in
  go none parts

let spec_to_string s =
  let parts = [] in
  let parts = if s.drop > 0.0 then Printf.sprintf "drop=%g" s.drop :: parts else parts in
  let parts = if s.corrupt > 0.0 then Printf.sprintf "corrupt=%g" s.corrupt :: parts else parts in
  let parts = if s.reorder > 0 then Printf.sprintf "reorder=%d" s.reorder :: parts else parts in
  let parts =
    List.fold_left (fun acc (a, b) -> Printf.sprintf "blackout=%d-%d" a b :: acc) parts s.blackouts
  in
  let parts =
    match s.truncate with Some n -> Printf.sprintf "trunc=%d" n :: parts | None -> parts
  in
  String.concat "," (List.rev parts)
