(** Extension flows beyond the paper's five: DMA read and DMA write
    through PIU/DMU/SIU, with a fourth (extension-only) usage scenario
    racing them against PIO traffic. Kept out of {!T2.flows} so the
    paper's 16-message inventory stays intact. *)

open Flowtrace_core

(** DMA read: 5 states, 4 messages, atomic return transfer. *)
val dmar : Flow.t

(** DMA write: 4 states, 3 messages. *)
val dmaw : Flow.t

(** The two extension flows, [dmar] then [dmaw]. *)
val flows : Flow.t list

(** T2 semantics extended with the DMA vocabulary (delegates to {!T2} for
    the paper's messages). *)
val semantics : Sim.semantics

(** Instance-local variables for a fresh instance; delegates to
    {!T2.fresh_env} for non-DMA flows. *)
val fresh_env : rng:Rng.t -> slot:int -> Flow.t -> (string * int) list

(** The extension scenario's flows: PIOR, PIOW, DMAR, DMAW. *)
val scenario_flows : Flow.t list

(** Analysis-scale legally indexed instances of {!scenario_flows}. *)
val analysis_instances : unit -> Interleave.instance list

(** Materialize the interleaved flow of {!analysis_instances}. *)
val interleave : unit -> Interleave.t

(** Analysis-scale run over the extension scenario. *)
val run_analysis :
  ?seed:int -> ?mutators:(Sim.t -> Packet.t -> Sim.action) list -> unit -> Sim.outcome
