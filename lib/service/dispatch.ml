open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic
module Json = Flowtrace_analysis.Json
module Rt = Flowtrace_analysis.Rt
module Supervisor = Flowtrace_runtime.Supervisor
module Backoff = Flowtrace_runtime.Backoff
module Budget = Flowtrace_runtime.Budget
module Vfs = Flowtrace_runtime.Vfs
module Tel = Flowtrace_telemetry.Telemetry

let c_requests = Tel.Counter.v "serve.requests"
let c_busy = Tel.Counter.v "serve.busy"
let c_shed = Tel.Counter.v "serve.shed"
let c_errors = Tel.Counter.v "serve.errors"

(* same counter the engines bump — one degradation total per process *)
let c_degraded = Tel.Counter.v "select.degraded"

type entry = {
  e_session : Store.session;
  e_inter : Interleave.t;
  e_flows : int;  (** flow instances in the interleaving *)
  e_pool : int;  (** messages in the selection pool *)
}

type shard = { mu : Mutex.t; sessions : (string, entry) Hashtbl.t }

type t = {
  shards : shard array;
  state_dir : string option;
  vfs : Vfs.t;
  max_inflight : int;
  inflight : int Atomic.t;
  retries : int;
  backoff : Backoff.t;
  chaos : bool;
  (* [None] = store healthy; [Some msg] = last session save failed (disk
     full, IO error) and sessions are being held in memory only *)
  store_error : string option Atomic.t;
  stale_swept : int;  (** stale temp files swept by this process's resume *)
}

(* ------------------------------------------------------------------ *)
(* Session construction (shared by open-session and resume) *)

let interleave_of_spec spec counts =
  match Spec_parser.parse_string spec with
  | exception Spec_parser.Parse_error e ->
      Error (Printf.sprintf "spec line %d: %s" e.Spec_parser.line e.Spec_parser.message)
  | [] -> Error "specification declares no flows"
  | flows -> (
      let find name = List.find_opt (fun f -> String.equal f.Flow.name name) flows in
      let instances =
        match counts with
        | [] -> List.mapi (fun i f -> { Interleave.flow = f; index = i + 1 }) flows
        | counts ->
            let next = ref 0 in
            List.concat_map
              (fun (name, n) ->
                match find name with
                | None -> []
                | Some f ->
                    List.init n (fun _ ->
                        incr next;
                        { Interleave.flow = f; index = !next }))
              counts
      in
      if instances = [] then Error "instance specification matches no flow"
      else
        try Ok (Interleave.make instances, List.length instances) with
        | Interleave.Not_legally_indexed m | Interleave.Message_clash m -> Error m
        | Interleave.Too_large n -> Error (Printf.sprintf "interleaving exceeds %d states" n))

let entry_of_session (s : Store.session) =
  match interleave_of_spec s.Store.se_spec s.Store.se_instances with
  | Error m -> Error m
  | Ok (inter, nflows) ->
      Ok
        {
          e_session = s;
          e_inter = inter;
          e_flows = nflows;
          e_pool = List.length (Interleave.messages inter);
        }

let create ?state_dir ?(vfs = Vfs.passthrough) ?(shards = 4) ?(max_inflight = 64) ?(retries = 2)
    ?(backoff_seed = 0) ?(chaos = false) ?(resume = false) () =
  if shards < 1 then invalid_arg "Dispatch.create: shards must be positive";
  if max_inflight < 1 then invalid_arg "Dispatch.create: max_inflight must be positive";
  let resume_diags =
    match (state_dir, resume) with
    | Some dir, true -> Some (Store.load_all ~vfs ~repair:true dir)
    | _ -> None
  in
  let swept =
    match resume_diags with
    | None -> 0
    | Some (_, ds) ->
        List.length (List.filter (fun (d : Diagnostic.t) -> d.Diagnostic.code = "RT009") ds)
  in
  let t =
    {
      shards =
        Array.init shards (fun _ -> { mu = Mutex.create (); sessions = Hashtbl.create 16 });
      state_dir;
      vfs;
      max_inflight;
      inflight = Atomic.make 0;
      retries;
      backoff = Backoff.make ~seed:backoff_seed ();
      chaos;
      store_error = Atomic.make None;
      stale_swept = swept;
    }
  in
  let diags =
    match resume_diags with
    | Some (sessions, diags) ->
        List.fold_left
          (fun diags (s : Store.session) ->
            match entry_of_session s with
            | Ok e ->
                let shard = t.shards.(Hashtbl.hash s.Store.se_id mod shards) in
                Hashtbl.replace shard.sessions s.Store.se_id e;
                diags
            | Error m ->
                let dir = Option.value ~default:"" state_dir in
                diags
                @ [
                    Rt.v "RT005"
                      (Srcspan.none (Store.file_of ~dir s.Store.se_id))
                      "persisted session %S no longer builds (%s); dropping it" s.Store.se_id m;
                  ])
          diags sessions
    | _ -> []
  in
  (t, diags)

let shard_of t id = Hashtbl.hash id mod Array.length t.shards
let n_shards t = Array.length t.shards

let session_ids t =
  let ids =
    Array.fold_left
      (fun acc shard ->
        Mutex.protect shard.mu (fun () ->
            Hashtbl.fold (fun id _ acc -> id :: acc) shard.sessions acc))
      [] t.shards
  in
  List.sort String.compare ids

let busy_message t = Printf.sprintf "daemon at capacity (%d requests in flight)" t.max_inflight

let busy_response t ?id ~op () =
  Tel.Counter.incr c_busy;
  Proto.busy ?id ~op (busy_message t)

let admit t =
  let rec go () =
    let n = Atomic.get t.inflight in
    if n >= t.max_inflight then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else go ()
  in
  go ()

let release t = ignore (Atomic.fetch_and_add t.inflight (-1))

(* ------------------------------------------------------------------ *)
(* Supervised execution of one request body.

   The body is transactional — it only returns its response; all state
   mutation happens through it exactly once on the successful attempt —
   so an injected fault on attempts 1..n followed by a success yields
   byte-identical responses to an undisturbed run. *)

exception Chaos_fault of int

let supervised t ~chaos body =
  let inject =
    match chaos with
    | Some c when t.chaos && c.Proto.c_fail > 0 ->
        Some
          (fun ~task:_ ~attempt ->
            if attempt <= c.Proto.c_fail then raise (Chaos_fault attempt))
    | _ -> None
  in
  let result = ref None in
  let summary =
    Supervisor.run ~retries:t.retries ~backoff:t.backoff ?inject ~tasks:[| 0 |] (fun _ ->
        result := Some (body ()))
  in
  match (summary.Supervisor.statuses.(0), !result) with
  | Supervisor.Done, Some r -> Ok r
  | Supervisor.Gave_up e, _ -> Error e
  | _ -> Error (Failure "request body did not run")

(* ------------------------------------------------------------------ *)
(* Op bodies: each returns (status, payload fields). Expected failures
   are mapped to Serror responses inside the body — only unexpected or
   injected exceptions reach the supervisor's retry machinery. *)

let err fmt = Printf.ksprintf (fun m -> (Proto.Serror, [ ("error", Json.String m) ])) fmt

let session_fields (e : entry) =
  let s = e.e_session in
  [
    ("session", Json.String s.Store.se_id);
    ("tenant", Json.String s.Store.se_tenant);
    ("width", Json.Int s.Store.se_width);
    ("strategy", Json.String (Store.strategy_name s.Store.se_strategy));
    ("flows", Json.Int e.e_flows);
    ("messages", Json.Int e.e_pool);
  ]

let run_select (e : entry) ~width ~deadline_ms ~max_candidates ~pack =
  let s = e.e_session in
  let buffer_width = Option.value ~default:s.Store.se_width width in
  if buffer_width < 1 then err "width must be positive"
  else
    let deadline =
      Option.map (fun ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.0)) deadline_ms
    in
    match
      Select.select ~strategy:s.Store.se_strategy ?deadline ?max_candidates ~pack e.e_inter
        ~buffer_width
    with
    | exception Combination.Too_many n ->
        err "Step-1 enumeration exceeded %d candidate combinations at width %d" n buffer_width
    | exception Invalid_argument m -> err "%s" m
    | r ->
        let status =
          if Select.Tier.is_degraded r.Select.tier then Proto.Sdegraded else Proto.Sok
        in
        ( status,
          [
            ( "selected",
              Json.List (List.map (fun n -> Json.String n) (Select.selected_names r)) );
            ("gain", Json.Float r.Select.gain);
            ( "gain_bits",
              Json.String (Printf.sprintf "%016Lx" (Int64.bits_of_float r.Select.gain)) );
            ("coverage", Json.Float r.Select.coverage);
            ("bits_used", Json.Int r.Select.bits_used);
            ("buffer_width", Json.Int r.Select.buffer_width);
            ("tier", Json.String (Select.Tier.to_string r.Select.tier));
          ] )

exception Bad_trace of string

let parse_observed tokens =
  List.filter_map
    (fun tok ->
      if tok = "" then None
      else
        match String.index_opt tok ':' with
        | Some i -> (
            match int_of_string_opt (String.sub tok 0 i) with
            | Some inst ->
                let base = String.sub tok (i + 1) (String.length tok - i - 1) in
                Some (Indexed.make base inst)
            | None -> raise (Bad_trace tok))
        | None -> raise (Bad_trace tok))
    tokens

let run_localize (e : entry) ~trace ~lossy ~skip_budget ~width =
  let s = e.e_session in
  let buffer_width = Option.value ~default:s.Store.se_width width in
  if buffer_width < 1 then err "width must be positive"
  else if skip_budget < 0 then err "skip_budget must be non-negative"
  else
    match parse_observed trace with
    | exception Bad_trace tok -> err "bad indexed message %S (want IDX:NAME)" tok
    | observed -> (
        match
          Select.select ~strategy:s.Store.se_strategy e.e_inter ~buffer_width
        with
        | exception Combination.Too_many n ->
            err "Step-1 enumeration exceeded %d candidate combinations at width %d" n
              buffer_width
        | exception Invalid_argument m -> err "%s" m
        | sel ->
            let selected b = Select.is_observable sel b in
            let total = Interleave.total_paths e.e_inter in
            let selection =
              ( "selection",
                Json.List
                  (List.map (fun n -> Json.String n) (Select.selected_names sel)) )
            in
            if lossy then
              let r =
                Localize.lossy ~semantics:Localize.Prefix ~skip_budget e.e_inter ~selected
                  ~observed
              in
              ( Proto.Sok,
                [
                  selection;
                  ("consistent", Json.Int r.Localize.lr_consistent);
                  ("total", Json.Int total);
                  ("fraction", Json.Float (Localize.lossy_fraction r));
                  ("discarded", Json.Int r.Localize.lr_discarded);
                  ("skips", Json.Int r.Localize.lr_skips);
                  ("confidence", Json.Float r.Localize.lr_confidence);
                ] )
            else
              let consistent =
                Localize.consistent_paths ~semantics:Localize.Prefix e.e_inter ~selected
                  ~observed
              in
              ( Proto.Sok,
                [
                  selection;
                  ("consistent", Json.Int consistent);
                  ("total", Json.Int total);
                  ( "fraction",
                    Json.Float (float_of_int consistent /. float_of_int (max 1 total)) );
                ] ))

let run_mine ~trace_text ~support ~min_count =
  let open Flowtrace_mining in
  match Flowtrace_soc.Trace_io.parse trace_text with
  | exception Flowtrace_soc.Trace_io.Parse_error e ->
      err "trace line %d: %s" e.Flowtrace_soc.Trace_io.line e.Flowtrace_soc.Trace_io.message
  | packets -> (
      let d = Miner.default_config in
      let config =
        {
          d with
          Miner.support = Option.value ~default:d.Miner.support support;
          min_count = Option.value ~default:d.Miner.min_count min_count;
        }
      in
      match Miner.mine ~config ~file:"<request>" [ packets ] with
      | exception Invalid_argument m -> err "%s" m
      | r ->
          let status =
            if Miner.degraded r.Miner.r_diags then Proto.Sdegraded
            else if List.exists (fun d -> d.Diagnostic.severity = Diagnostic.Error) r.Miner.r_diags
            then Proto.Serror
            else Proto.Sok
          in
          ( status,
            [
              ("episodes", Json.Int r.Miner.r_episodes);
              ( "flows",
                Json.List
                  (List.map
                     (fun (m : Miner.mined) ->
                       Json.Obj
                         [
                           ("name", Json.String m.Miner.m_flow.Flow.name);
                           ("states", Json.Int (Flow.n_states m.Miner.m_flow));
                           ("messages", Json.Int (Flow.n_messages m.Miner.m_flow));
                           ("paths", Json.Int (List.length m.Miner.m_kept));
                           ("fingerprint", Json.String m.Miner.m_fingerprint);
                         ])
                     r.Miner.r_flows) );
              ("spec", Json.String (Miner.spec_text r));
              ( "diagnostics",
                Json.List
                  (List.map
                     (fun d -> Json.String (Diagnostic.render d))
                     r.Miner.r_diags) );
            ] ))

(* ------------------------------------------------------------------ *)
(* The request switch *)

let with_shard t id f =
  let shard = t.shards.(shard_of t id) in
  Mutex.protect shard.mu (fun () -> f shard)

let run_session_op t (rq : Proto.request) =
  let id = Option.get rq.Proto.rq_session in
  match rq.Proto.rq_op with
  | Proto.Open_session { tenant; spec; width; strategy; instances } ->
      with_shard t id (fun shard ->
          if Hashtbl.mem shard.sessions id then err "session %S is already open" id
          else
            let session =
              {
                Store.se_id = id;
                se_tenant = tenant;
                se_width = width;
                se_strategy = strategy;
                se_instances = instances;
                se_spec = spec;
              }
            in
            match entry_of_session session with
            | Error m -> err "%s" m
            | Ok e -> (
                let persist dir =
                  (* --chaos + {"enospc":true} fails the save exactly the
                     way a full disk does, without needing a full disk *)
                  (match rq.Proto.rq_chaos with
                  | Some c when t.chaos && c.Proto.c_enospc ->
                      raise
                        (Vfs.Io_error
                           {
                             Vfs.e_op = "write";
                             e_path = Store.file_of ~dir id;
                             e_msg = "No space left on device";
                             e_enospc = true;
                           })
                  | _ -> ());
                  Store.save ~vfs:t.vfs ~dir session
                in
                match Option.iter persist t.state_dir with
                | exception Vfs.Io_error { e_msg; _ } ->
                    (* shed to degraded, never die: the session stays
                       open in memory and the store is flagged unhealthy
                       until a later save succeeds *)
                    Atomic.set t.store_error (Some e_msg);
                    Hashtbl.replace shard.sessions id e;
                    ( Proto.Sdegraded,
                      session_fields e
                      @ [
                          ("persisted", Json.Bool false);
                          ( "warning",
                            Json.String
                              (Printf.sprintf "session not persisted (%s); held in memory only"
                                 e_msg) );
                        ] )
                | () ->
                    if t.state_dir <> None then Atomic.set t.store_error None;
                    Hashtbl.replace shard.sessions id e;
                    (Proto.Sok, session_fields e)))
  | Proto.Close ->
      with_shard t id (fun shard ->
          if not (Hashtbl.mem shard.sessions id) then err "unknown session %S" id
          else begin
            Hashtbl.remove shard.sessions id;
            (match t.state_dir with
            | Some dir -> ( try Store.remove ~vfs:t.vfs ~dir id with Vfs.Io_error _ -> ())
            | None -> ());
            (Proto.Sok, [ ("session", Json.String id) ])
          end)
  | Proto.Select_op { width; deadline_ms; max_candidates; pack } ->
      with_shard t id (fun shard ->
          match Hashtbl.find_opt shard.sessions id with
          | None -> err "unknown session %S" id
          | Some e -> run_select e ~width ~deadline_ms ~max_candidates ~pack)
  | Proto.Localize_op { trace; lossy; skip_budget; width } ->
      with_shard t id (fun shard ->
          match Hashtbl.find_opt shard.sessions id with
          | None -> err "unknown session %S" id
          | Some e -> run_localize e ~trace ~lossy ~skip_budget ~width)
  | Proto.Mine_op { trace_text; support; min_count } ->
      with_shard t id (fun shard ->
          if not (Hashtbl.mem shard.sessions id) then err "unknown session %S" id
          else run_mine ~trace_text ~support ~min_count)
  | Proto.Ping | Proto.Status | Proto.Health | Proto.Shutdown -> assert false

let run_health t =
  let n = List.length (session_ids t) in
  let store_fields =
    match t.state_dir with
    | None -> [ ("store", Json.String "none") ]
    | Some _ -> (
        match Atomic.get t.store_error with
        | None -> [ ("store", Json.String "ok") ]
        | Some msg ->
            [ ("store", Json.String "degraded"); ("store_error", Json.String msg) ])
  in
  let status =
    if Atomic.get t.store_error <> None then Proto.Sdegraded else Proto.Sok
  in
  ( status,
    [ ("sessions", Json.Int n) ]
    @ store_fields
    @ [ ("stale_tmp_swept", Json.Int t.stale_swept) ] )

let run_status t (rq : Proto.request) =
  match rq.Proto.rq_session with
  | None ->
      let ids = session_ids t in
      ( Proto.Sok,
        [
          ("sessions", Json.List (List.map (fun i -> Json.String i) ids));
          ("count", Json.Int (List.length ids));
        ] )
  | Some id ->
      with_shard t id (fun shard ->
          match Hashtbl.find_opt shard.sessions id with
          | None -> err "unknown session %S" id
          | Some e -> (Proto.Sok, session_fields e))

let handle ?drop_deadline ?(admitted = false) t line =
  Tel.Counter.incr c_requests;
  let finish ?id ~op (status, fields) =
    (match status with
    | Proto.Serror -> Tel.Counter.incr c_errors
    | Proto.Sbusy -> Tel.Counter.incr c_busy
    | Proto.Sdegraded -> Tel.Counter.incr c_degraded
    | Proto.Sok -> ());
    Proto.response ?id ~op status fields
  in
  match Proto.parse line with
  | Error m ->
      if admitted then release t;
      (finish ~op:"invalid" (Proto.Serror, [ ("error", Json.String m) ]), false)
  | Ok rq -> (
      let id = rq.Proto.rq_id in
      let op = Proto.op_name rq.Proto.rq_op in
      match rq.Proto.rq_op with
      | Proto.Ping ->
          if admitted then release t;
          (finish ?id ~op (Proto.Sok, []), false)
      | Proto.Shutdown ->
          if admitted then release t;
          (finish ?id ~op (Proto.Sok, []), true)
      | Proto.Status ->
          if admitted then release t;
          (finish ?id ~op (run_status t rq), false)
      | Proto.Health ->
          if admitted then release t;
          (finish ?id ~op (run_health t), false)
      | _ ->
          let shed =
            match drop_deadline with
            | Some d -> Budget.already_expired (Budget.make ~deadline:d ())
            | None -> false
          in
          if shed then begin
            if admitted then release t;
            Tel.Counter.incr c_shed;
            ( finish ?id ~op
                (Proto.Sbusy, [ ("error", Json.String "request queued past its deadline") ]),
              false )
          end
          else if (not admitted) && not (admit t) then
            (finish ?id ~op (Proto.Sbusy, [ ("error", Json.String (busy_message t)) ]), false)
          else
            Fun.protect
              ~finally:(fun () -> release t)
              (fun () ->
                (* chaos delay occupies the in-flight slot and the shard,
                   deterministically driving the admission path in tests *)
                (match rq.Proto.rq_chaos with
                | Some c when t.chaos && c.Proto.c_delay_ms > 0 ->
                    Unix.sleepf (float_of_int c.Proto.c_delay_ms /. 1000.0)
                | _ -> ());
                match supervised t ~chaos:rq.Proto.rq_chaos (fun () -> run_session_op t rq) with
                | Ok resp -> (finish ?id ~op resp, false)
                | Error (Chaos_fault n) ->
                    (finish ?id ~op (err "request failed after %d injected faults" n), false)
                | Error e ->
                    (finish ?id ~op (err "request failed: %s" (Printexc.to_string e)), false)))
