(** Offline integrity checking and repair for a daemon state directory —
    the engine behind [flowtrace fsck].

    {!scan} classifies every [session-*.ckpt] file without touching the
    disk; {!repair} additionally heals what can be proven safe: stale
    [*.tmp] files from interrupted writes are swept, sessions recovered
    from a damaged tail are compacted back to sealed files, and files
    whose session body is lost are quarantined as [*.quarantine] so they
    stop failing every resume. Nothing is ever deleted that could still
    carry evidence — quarantine is a rename, not an unlink.

    Diagnostics use the RT namespace ({!Flowtrace_analysis.Rt}) and
    {!exit_code} follows the shared convention: [1] when hard damage is
    present (or repair itself failed), [3] when the store needed
    recovery or repair, [0] when it is clean. *)

module Diagnostic = Flowtrace_analysis.Diagnostic
module Json = Flowtrace_analysis.Json
module Vfs = Flowtrace_runtime.Vfs

type state =
  | Intact  (** sealed file, loads clean *)
  | Recovered
      (** damaged tail but the session body is whole; compaction rewrites
          it sealed *)
  | Corrupt  (** the session cannot be (fully) read; quarantine target *)

type entry = {
  f_file : string;  (** basename *)
  f_state : state;
  f_session : string option;  (** session id when the body was readable *)
  f_diags : Diagnostic.t list;
}

type report = {
  r_dir : string;
  r_entries : entry list;  (** sorted by file name *)
  r_stale_tmp : string list;  (** found (scan) or swept (repair) *)
  r_quarantined : string list;  (** pre-existing [*.quarantine] files *)
  r_repaired : bool;  (** this report came from {!repair} *)
  r_diags : Diagnostic.t list;
}

(** Read-only classification of [dir]. An unreadable directory yields a
    report whose diagnostics carry RT011. *)
val scan : ?vfs:Vfs.t -> string -> report

(** {!scan} plus healing: sweep stale temp files (RT009, counted in the
    [runtime.vfs.stale_tmp] telemetry counter), compact recovered
    sessions (RT010), quarantine corrupt files (RT008). After a
    successful repair a following {!scan} is clean. *)
val repair : ?vfs:Vfs.t -> string -> report

val state_name : state -> string

(** [1] if the report carries error-severity diagnostics, [3] if any
    file was not intact (damage found, recovered or repaired), else
    [0]. *)
val exit_code : report -> int

(** Human report: one summary line, then the sorted diagnostics. *)
val render : report -> string

val to_json : report -> Json.t
