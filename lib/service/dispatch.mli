(** Request execution for the daemon: sharded multi-tenant session state,
    admission control, and per-request supervision.

    This layer is the whole daemon minus the sockets — {!handle} maps one
    request line to one response line — so tests and benchmarks drive it
    directly, and {!Server} only adds the event loop around it.

    Sessions are sharded by id hash; each shard is a mutex-guarded table,
    and {!handle} holds exactly one shard's lock for the duration of a
    session op, so sessions on different shards proceed concurrently and
    state never leaks across sessions. Admission is a global in-flight
    cap: past it, session ops get an honest ["busy"] response instead of
    queueing without bound. Each session op body runs under
    {!Flowtrace_runtime.Supervisor.run} (one task, bounded retries with
    {!Flowtrace_runtime.Backoff} delays), so an injected or transient
    fault is retried transparently and the response bytes are identical
    to an undisturbed run. *)

module Diagnostic = Flowtrace_analysis.Diagnostic
module Vfs = Flowtrace_runtime.Vfs

type t

(** [create ()] builds the dispatcher. [state_dir], when given, persists
    every open session through {!Store} (and [resume] reloads the
    sessions found there with [Store.load_all ~repair:true]: stale temp
    files swept, recovered files compacted, corrupt files quarantined —
    damage is contained per session, never daemon-wide). All store IO
    goes through [vfs] (default {!Vfs.passthrough}); tests pass a
    {!Vfs.Fault} filesystem to drive ENOSPC and power cuts through the
    whole dispatcher. A failed session save does not kill the request:
    the session opens in memory with a ["degraded"] response and the
    store is flagged unhealthy (see the [health] op) until a save
    succeeds again. [shards] (default 4) is the session-table shard
    count; [max_inflight] (default 64) the global admission cap;
    [retries] (default 2) the per-request supervision retry bound with
    [backoff_seed] (default 0) seeding the deterministic retry jitter.
    [chaos] (default false) honors per-request [chaos] fields — fault
    injection is opt-in at the daemon level, a client can never inject
    faults into a production daemon. *)
val create :
  ?state_dir:string ->
  ?vfs:Vfs.t ->
  ?shards:int ->
  ?max_inflight:int ->
  ?retries:int ->
  ?backoff_seed:int ->
  ?chaos:bool ->
  ?resume:bool ->
  unit ->
  t * Diagnostic.t list

(** [shard_of t id] — which shard a session id lives on (stable hash). *)
val shard_of : t -> string -> int

val n_shards : t -> int

(** Open session ids, sorted (locks every shard briefly). *)
val session_ids : t -> string list

(** [admit t] claims an in-flight slot; [false] means the cap is reached
    and the caller should answer ["busy"]. Pair with {!release}. *)
val admit : t -> bool

val release : t -> unit

(** [busy_response t ?id ~op ()] renders (and counts) the admission-reject
    response the server sends when {!admit} refused the slot. *)
val busy_response : t -> ?id:string -> op:string -> unit -> string

(** [handle t line] executes one request line and returns the response
    line plus [true] when the request was a [shutdown]. Never raises on
    request content: malformed lines, unknown ops and failed work all
    come back as per-request error responses.

    [admitted] (default false) tells {!handle} the caller already claimed
    the in-flight slot via {!admit} (the server admits at enqueue time so
    the queue itself is bounded); {!handle} always releases it. With
    [drop_deadline], a request that is already past the deadline when
    {!handle} runs is shed with ["busy"] before any work — the
    queued-too-long case. *)
val handle : ?drop_deadline:float -> ?admitted:bool -> t -> string -> string * bool
