open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic
module Rt = Flowtrace_analysis.Rt
module Journal = Flowtrace_runtime.Journal

type session = {
  se_id : string;
  se_tenant : string;
  se_width : int;
  se_strategy : Select.strategy;
  se_instances : (string * int) list;
  se_spec : string;
}

let kind = "session"

let file_of ~dir id = Filename.concat dir ("session-" ^ id ^ ".ckpt")

(* Newlines cannot appear in a Log record; the spec and tenant are
   arbitrary request text, so escape them. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let strategy_name = function
  | Select.Exact -> "exact"
  | Select.Exact_maximal -> "exact-maximal"
  | Select.Greedy -> "greedy"

let strategy_of_name = function
  | "exact" -> Some Select.Exact
  | "exact-maximal" -> Some Select.Exact_maximal
  | "greedy" -> Some Select.Greedy
  | _ -> None

let save ~dir s =
  let records =
    [
      "id " ^ s.se_id;
      "tenant " ^ escape s.se_tenant;
      Printf.sprintf "width %d" s.se_width;
      "strategy " ^ strategy_name s.se_strategy;
    ]
    @ List.map (fun (name, n) -> Printf.sprintf "inst %s %d" name n) s.se_instances
    (* last on purpose: a torn tail loses the spec first, and a session
       without its spec is dropped whole rather than resumed half-built *)
    @ [ "spec " ^ escape s.se_spec ]
  in
  Journal.Log.write ~path:(file_of ~dir s.se_id) ~kind records

let remove ~dir id =
  let path = file_of ~dir id in
  if Sys.file_exists path then Sys.remove path

let split_record r =
  match String.index_opt r ' ' with
  | None -> (r, "")
  | Some i -> (String.sub r 0 i, String.sub r (i + 1) (String.length r - i - 1))

let of_records ~path records =
  let id = ref None
  and tenant = ref "default"
  and width = ref 32
  and strategy = ref Select.Exact
  and instances = ref []
  and spec = ref None
  and bad = ref None in
  List.iter
    (fun r ->
      if !bad = None then
        let key, rest = split_record r in
        match key with
        | "id" -> id := Some rest
        | "tenant" -> tenant := unescape rest
        | "width" -> (
            match int_of_string_opt rest with
            | Some w when w > 0 -> width := w
            | _ -> bad := Some (Printf.sprintf "bad width record %S" rest))
        | "strategy" -> (
            match strategy_of_name rest with
            | Some s -> strategy := s
            | None -> bad := Some (Printf.sprintf "bad strategy record %S" rest))
        | "inst" -> (
            match split_record rest with
            | name, n when name <> "" -> (
                match int_of_string_opt n with
                | Some n when n > 0 -> instances := (name, n) :: !instances
                | _ -> bad := Some (Printf.sprintf "bad instance record %S" rest))
            | _ -> bad := Some (Printf.sprintf "bad instance record %S" rest))
        | "spec" -> spec := Some (unescape rest)
        | other -> bad := Some (Printf.sprintf "unknown session record %S" other))
    records;
  match (!bad, !id, !spec) with
  | Some m, _, _ -> Error [ Rt.v "RT005" (Srcspan.none path) "%s" m ]
  | None, Some id, Some spec ->
      Ok
        (Some
           {
             se_id = id;
             se_tenant = !tenant;
             se_width = !width;
             se_strategy = !strategy;
             se_instances = List.rev !instances;
             se_spec = spec;
           })
  | None, _, _ ->
      (* a recovered prefix that lost the id or spec record: the session
         body is gone, drop it *)
      Ok None

let load ~path =
  match Journal.Log.load ~path ~kind with
  | Error diags -> Error diags
  | Ok (records, warns) -> (
      match of_records ~path records with
      | Error diags -> Error (warns @ diags)
      | Ok None ->
          Ok
            ( None,
              warns
              @ [
                  Rt.v "RT006" (Srcspan.none path)
                    "session body lost with the damaged tail; dropping this session";
                ] )
      | Ok (Some s) -> Ok (Some s, warns))

let load_all ~dir =
  let files =
    match Sys.readdir dir with
    | exception Sys_error _ -> [||]
    | entries ->
        Array.of_list
          (List.filter
             (fun f ->
               String.length f > String.length "session-.ckpt"
               && String.starts_with ~prefix:"session-" f
               && Filename.check_suffix f ".ckpt")
             (Array.to_list entries))
  in
  Array.sort String.compare files;
  Array.fold_left
    (fun (sessions, diags) f ->
      let path = Filename.concat dir f in
      match load ~path with
      | Ok (Some s, warns) -> (sessions @ [ s ], diags @ warns)
      | Ok (None, warns) -> (sessions, diags @ warns)
      | Error ds -> (sessions, diags @ ds))
    ([], []) files
