open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic
module Rt = Flowtrace_analysis.Rt
module Journal = Flowtrace_runtime.Journal
module Vfs = Flowtrace_runtime.Vfs

type session = {
  se_id : string;
  se_tenant : string;
  se_width : int;
  se_strategy : Select.strategy;
  se_instances : (string * int) list;
  se_spec : string;
}

let kind = "session"

let file_of ~dir id = Filename.concat dir ("session-" ^ id ^ ".ckpt")

(* Newlines cannot appear in a Log record; the spec and tenant are
   arbitrary request text, so escape them. *)
let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] = '\\' && !i + 1 < n then begin
       (match s.[!i + 1] with
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | 'r' -> Buffer.add_char b '\r'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       incr i
     end
     else Buffer.add_char b s.[!i]);
    incr i
  done;
  Buffer.contents b

let strategy_name = function
  | Select.Exact -> "exact"
  | Select.Exact_maximal -> "exact-maximal"
  | Select.Greedy -> "greedy"

let strategy_of_name = function
  | "exact" -> Some Select.Exact
  | "exact-maximal" -> Some Select.Exact_maximal
  | "greedy" -> Some Select.Greedy
  | _ -> None

let save ?(vfs = Vfs.passthrough) ~dir s =
  let records =
    [
      "id " ^ s.se_id;
      "tenant " ^ escape s.se_tenant;
      Printf.sprintf "width %d" s.se_width;
      "strategy " ^ strategy_name s.se_strategy;
    ]
    @ List.map (fun (name, n) -> Printf.sprintf "inst %s %d" name n) s.se_instances
    (* last on purpose: a torn tail loses the spec first, and a session
       without its spec is dropped whole rather than resumed half-built *)
    @ [ "spec " ^ escape s.se_spec ]
  in
  Journal.Log.write ~vfs ~path:(file_of ~dir s.se_id) ~kind records

let remove ?(vfs = Vfs.passthrough) ~dir id =
  let path = file_of ~dir id in
  if vfs.Vfs.exists path then vfs.Vfs.unlink path

let split_record r =
  match String.index_opt r ' ' with
  | None -> (r, "")
  | Some i -> (String.sub r 0 i, String.sub r (i + 1) (String.length r - i - 1))

let of_records ~path records =
  let id = ref None
  and tenant = ref "default"
  and width = ref 32
  and strategy = ref Select.Exact
  and instances = ref []
  and spec = ref None
  and bad = ref None in
  List.iter
    (fun r ->
      if !bad = None then
        let key, rest = split_record r in
        match key with
        | "id" -> id := Some rest
        | "tenant" -> tenant := unescape rest
        | "width" -> (
            match int_of_string_opt rest with
            | Some w when w > 0 -> width := w
            | _ -> bad := Some (Printf.sprintf "bad width record %S" rest))
        | "strategy" -> (
            match strategy_of_name rest with
            | Some s -> strategy := s
            | None -> bad := Some (Printf.sprintf "bad strategy record %S" rest))
        | "inst" -> (
            match split_record rest with
            | name, n when name <> "" -> (
                match int_of_string_opt n with
                | Some n when n > 0 -> instances := (name, n) :: !instances
                | _ -> bad := Some (Printf.sprintf "bad instance record %S" rest))
            | _ -> bad := Some (Printf.sprintf "bad instance record %S" rest))
        | "spec" -> spec := Some (unescape rest)
        | other -> bad := Some (Printf.sprintf "unknown session record %S" other))
    records;
  match (!bad, !id, !spec) with
  | Some m, _, _ -> Error [ Rt.v "RT005" (Srcspan.none path) "%s" m ]
  | None, Some id, Some spec ->
      Ok
        (Some
           {
             se_id = id;
             se_tenant = !tenant;
             se_width = !width;
             se_strategy = !strategy;
             se_instances = List.rev !instances;
             se_spec = spec;
           })
  | None, _, _ ->
      (* a recovered prefix that lost the id or spec record: the session
         body is gone, drop it *)
      Ok None

let load ?(vfs = Vfs.passthrough) path =
  match Journal.Log.load ~vfs ~kind path with
  | Error diags -> Error diags
  | Ok (records, warns) -> (
      match of_records ~path records with
      | Error diags -> Error (warns @ diags)
      | Ok None ->
          Ok
            ( None,
              warns
              @ [
                  Rt.v "RT006" (Srcspan.none path)
                    "session body lost with the damaged tail; dropping this session";
                ] )
      | Ok (Some s) -> Ok (Some s, warns))

let quarantine_suffix = ".quarantine"

let quarantine ?(vfs = Vfs.passthrough) ~reason path =
  match vfs.Vfs.rename path (path ^ quarantine_suffix) with
  | () ->
      Rt.v "RT008" (Srcspan.none path) "corrupt session file quarantined as %s: %s"
        (Filename.basename path ^ quarantine_suffix)
        reason
  | exception Vfs.Io_error { e_msg; _ } ->
      Rt.v "RT008" (Srcspan.none path) "corrupt session file could not be quarantined (%s): %s"
        e_msg reason

let is_session_file f =
  String.length f > String.length "session-.ckpt"
  && String.starts_with ~prefix:"session-" f
  && Filename.check_suffix f ".ckpt"

(* The first line of a diagnostic set, as a one-line quarantine reason. *)
let reason_of = function
  | [] -> "unreadable"
  | (d : Diagnostic.t) :: _ -> Printf.sprintf "%s: %s" d.Diagnostic.code d.Diagnostic.message

let load_all ?(vfs = Vfs.passthrough) ?(repair = false) dir =
  let entries = match vfs.Vfs.readdir dir with exception Vfs.Io_error _ -> [||] | e -> e in
  let swept =
    if repair then
      match Vfs.sweep_tmp vfs ~dir with exception Vfs.Io_error _ -> [] | swept -> swept
    else List.sort String.compare (List.filter Vfs.is_tmp (Array.to_list entries))
  in
  let tmp_diags =
    List.map
      (fun f ->
        Rt.v "RT009"
          (Srcspan.none (Filename.concat dir f))
          "stale temp file from an interrupted write%s"
          (if repair then " swept" else ""))
      swept
  in
  let files = Array.of_list (List.filter is_session_file (Array.to_list entries)) in
  Array.sort String.compare files;
  Array.fold_left
    (fun (sessions, diags) f ->
      let path = Filename.concat dir f in
      match load ~vfs path with
      | Ok (Some s, []) -> (sessions @ [ s ], diags)
      | Ok (Some s, warns) ->
          (* recovered with a damaged tail but the body is whole: compact
             it back to a sealed file so the damage does not compound *)
          if repair then (
            match save ~vfs ~dir s with
            | () ->
                ( sessions @ [ s ],
                  diags @ warns
                  @ [
                      Rt.v "RT010" (Srcspan.none path)
                        "recovered session compacted (sealed file rewritten)";
                    ] )
            | exception Vfs.Io_error { e_msg; _ } ->
                ( sessions @ [ s ],
                  diags @ warns
                  @ [
                      Rt.v "RT001" (Srcspan.none path)
                        "cannot compact recovered session: %s" e_msg;
                    ] ))
          else (sessions @ [ s ], diags @ warns)
      | Ok (None, warns) ->
          (* the session body is gone: the file is damage with no value *)
          if repair then (sessions, diags @ [ quarantine ~vfs ~reason:(reason_of warns) path ])
          else (sessions, diags @ warns)
      | Error ds ->
          if repair then (sessions, diags @ [ quarantine ~vfs ~reason:(reason_of ds) path ])
          else (sessions, diags @ ds))
    ([], tmp_diags) files
