open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic
module Json = Flowtrace_analysis.Json
module Rt = Flowtrace_analysis.Rt
module Vfs = Flowtrace_runtime.Vfs

type state = Intact | Recovered | Corrupt

type entry = {
  f_file : string;
  f_state : state;
  f_session : string option;
  f_diags : Diagnostic.t list;
}

type report = {
  r_dir : string;
  r_entries : entry list;
  r_stale_tmp : string list;
  r_quarantined : string list;
  r_repaired : bool;
  r_diags : Diagnostic.t list;
}

let state_name = function
  | Intact -> "intact"
  | Recovered -> "recovered"
  | Corrupt -> "corrupt"

let is_session_file f =
  String.length f > String.length "session-.ckpt"
  && String.starts_with ~prefix:"session-" f
  && Filename.check_suffix f ".ckpt"

let is_quarantine f = Filename.check_suffix f Store.quarantine_suffix

let reason_of = function
  | [] -> "unreadable"
  | (d : Diagnostic.t) :: _ -> Printf.sprintf "%s: %s" d.Diagnostic.code d.Diagnostic.message

let run ?(vfs = Vfs.passthrough) ~repair dir =
  match vfs.Vfs.readdir dir with
  | exception Vfs.Io_error { e_msg; _ } ->
      {
        r_dir = dir;
        r_entries = [];
        r_stale_tmp = [];
        r_quarantined = [];
        r_repaired = repair;
        r_diags =
          [
            Rt.v "RT011"
              (Flowtrace_core.Srcspan.none dir)
              "cannot read state directory: %s" e_msg;
          ];
      }
  | entries ->
      let names = List.sort String.compare (Array.to_list entries) in
      let stale = List.filter Vfs.is_tmp names in
      let quarantined = List.filter is_quarantine names in
      let stale_diags =
        List.map
          (fun f ->
            Rt.v "RT009"
              (Srcspan.none (Filename.concat dir f))
              "stale temp file from an interrupted write%s"
              (if repair then " swept" else ""))
          stale
      in
      if repair then (try ignore (Vfs.sweep_tmp vfs ~dir) with Vfs.Io_error _ -> ());
      let files = List.filter is_session_file names in
      let entries =
        List.map
          (fun f ->
            let path = Filename.concat dir f in
            match Store.load ~vfs path with
            | Ok (Some s, []) ->
                { f_file = f; f_state = Intact; f_session = Some s.Store.se_id; f_diags = [] }
            | Ok (Some s, warns) ->
                let diags =
                  if repair then (
                    match Store.save ~vfs ~dir s with
                    | () ->
                        warns
                        @ [
                            Rt.v "RT010" (Srcspan.none path)
                              "recovered session compacted (sealed file rewritten)";
                          ]
                    | exception Vfs.Io_error { e_msg; _ } ->
                        warns
                        @ [
                            Rt.v "RT001" (Srcspan.none path)
                              "cannot compact recovered session: %s" e_msg;
                          ])
                  else warns
                in
                { f_file = f; f_state = Recovered; f_session = Some s.Store.se_id; f_diags = diags }
            | Ok (None, warns) ->
                let diags =
                  if repair then [ Store.quarantine ~vfs ~reason:(reason_of warns) path ]
                  else warns
                in
                { f_file = f; f_state = Corrupt; f_session = None; f_diags = diags }
            | Error ds ->
                let diags =
                  if repair then [ Store.quarantine ~vfs ~reason:(reason_of ds) path ] else ds
                in
                { f_file = f; f_state = Corrupt; f_session = None; f_diags = diags })
          files
      in
      {
        r_dir = dir;
        r_entries = entries;
        r_stale_tmp = stale;
        r_quarantined = quarantined;
        r_repaired = repair;
        r_diags = stale_diags @ List.concat_map (fun e -> e.f_diags) entries;
      }

let scan ?vfs dir = run ?vfs ~repair:false dir
let repair ?vfs dir = run ?vfs ~repair:true dir

let exit_code r =
  let degraded = List.exists (fun e -> e.f_state <> Intact) r.r_entries in
  Diagnostic.exit_code ~degraded r.r_diags

let count st r = List.length (List.filter (fun e -> e.f_state = st) r.r_entries)

let render r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "fsck %s: %d session file%s — %d intact, %d recovered, %d corrupt; %d stale temp, %d quarantined%s\n"
       r.r_dir
       (List.length r.r_entries)
       (if List.length r.r_entries = 1 then "" else "s")
       (count Intact r) (count Recovered r) (count Corrupt r)
       (List.length r.r_stale_tmp)
       (List.length r.r_quarantined)
       (if r.r_repaired then " (repaired)" else ""));
  Buffer.add_string buf (Diagnostic.render_all (Diagnostic.sort_report r.r_diags));
  Buffer.contents buf

let to_json r =
  Json.Obj
    [
      ("dir", Json.String r.r_dir);
      ( "sessions",
        Json.List
          (List.map
             (fun e ->
               Json.Obj
                 [
                   ("file", Json.String e.f_file);
                   ("state", Json.String (state_name e.f_state));
                   ( "session",
                     match e.f_session with Some id -> Json.String id | None -> Json.Null );
                 ])
             r.r_entries) );
      ("stale_tmp", Json.List (List.map (fun f -> Json.String f) r.r_stale_tmp));
      ("quarantined", Json.List (List.map (fun f -> Json.String f) r.r_quarantined));
      ("repaired", Json.Bool r.r_repaired);
      ( "diagnostics",
        Json.List (List.map Diagnostic.to_json (Diagnostic.sort_report r.r_diags)) );
      ("exit", Json.Int (exit_code r));
    ]
