(** Session persistence for the daemon, over {!Flowtrace_runtime.Journal.Log}.

    Each open session lives in its own [session-<id>.ckpt] file inside the
    daemon's state directory — one crash-safe, CRC-sealed record log of
    kind ["session"]. Files are written whole and renamed into place, so a
    [kill -9] at any byte leaves either the previous complete file or the
    new one; a daemon restarted with [--resume] reopens every persisted
    session and answers requests with the same bytes as an uninterrupted
    daemon would have.

    The spec text is stored as the {e last} record of the file (newlines
    escaped), so external tail damage — the one shape torn writes take —
    loses the spec record first: {!load} then reports the file as damaged
    and the session is dropped cleanly instead of resurrected half-built. *)

open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic

(** One persisted session. [se_spec] is the flow-spec text exactly as the
    [open-session] request carried it; everything a request needs is
    rebuilt from these fields on resume, which is what makes post-resume
    answers bit-identical. *)
type session = {
  se_id : string;
  se_tenant : string;
  se_width : int;
  se_strategy : Select.strategy;
  se_instances : (string * int) list;
  se_spec : string;
}

(** The wire name of a strategy ("exact", "exact-maximal", "greedy"). *)
val strategy_name : Select.strategy -> string

(** [file_of ~dir id] is the session's journal path,
    [dir ^ "/session-" ^ id ^ ".ckpt"] (ids are path-safe by
    {!Proto.valid_session_id}). *)
val file_of : dir:string -> string -> string

(** [save ~dir session] atomically persists the session. Raises
    [Sys_error] on I/O failure. *)
val save : dir:string -> session -> unit

(** [remove ~dir id] deletes the session file if present. *)
val remove : dir:string -> string -> unit

(** [load ~path] reads one session file. [Ok None] means the file was
    damaged in a recoverable way that lost the session body (truncated
    tail) — the session is dropped with the returned warnings. [Error]
    carries hard diagnostics (mid-file corruption, foreign file). *)
val load :
  path:string ->
  (session option * Diagnostic.t list, Diagnostic.t list) result

(** [load_all ~dir] loads every [session-*.ckpt] under [dir] in sorted
    file order, collecting diagnostics for files that were damaged or
    dropped. A missing directory is an empty store. *)
val load_all : dir:string -> session list * Diagnostic.t list
