(** Session persistence for the daemon, over {!Flowtrace_runtime.Journal.Log}.

    Each open session lives in its own [session-<id>.ckpt] file inside the
    daemon's state directory — one crash-safe, CRC-sealed record log of
    kind ["session"]. Files are written whole and renamed into place, so a
    [kill -9] at any byte leaves either the previous complete file or the
    new one; a daemon restarted with [--resume] reopens every persisted
    session and answers requests with the same bytes as an uninterrupted
    daemon would have.

    The spec text is stored as the {e last} record of the file (newlines
    escaped), so external tail damage — the one shape torn writes take —
    loses the spec record first: {!load} then reports the file as damaged
    and the session is dropped cleanly instead of resurrected half-built. *)

open Flowtrace_core
module Diagnostic = Flowtrace_analysis.Diagnostic
module Vfs = Flowtrace_runtime.Vfs

(** One persisted session. [se_spec] is the flow-spec text exactly as the
    [open-session] request carried it; everything a request needs is
    rebuilt from these fields on resume, which is what makes post-resume
    answers bit-identical. *)
type session = {
  se_id : string;
  se_tenant : string;
  se_width : int;
  se_strategy : Select.strategy;
  se_instances : (string * int) list;
  se_spec : string;
}

(** The wire name of a strategy ("exact", "exact-maximal", "greedy"). *)
val strategy_name : Select.strategy -> string

(** [file_of ~dir id] is the session's journal path,
    [dir ^ "/session-" ^ id ^ ".ckpt"] (ids are path-safe by
    {!Proto.valid_session_id}). *)
val file_of : dir:string -> string -> string

(** [save ~dir session] atomically persists the session
    (temp-write/fsync/rename via {!Vfs.atomic_replace}). Raises
    {!Vfs.Io_error} on I/O failure — [e_enospc] distinguishes a full
    disk so the daemon can shed to degraded instead of dying. All IO
    goes through [vfs] (default {!Vfs.passthrough}). *)
val save : ?vfs:Vfs.t -> dir:string -> session -> unit

(** [remove ~dir id] deletes the session file if present. *)
val remove : ?vfs:Vfs.t -> dir:string -> string -> unit

(** [load path] reads one session file. [Ok None] means the file was
    damaged in a recoverable way that lost the session body (truncated
    tail) — the session is dropped with the returned warnings. [Error]
    carries hard diagnostics (mid-file corruption, foreign file). *)
val load :
  ?vfs:Vfs.t ->
  string ->
  (session option * Diagnostic.t list, Diagnostic.t list) result

val quarantine_suffix : string

(** [quarantine ~reason path] renames a damaged session file to
    [path ^ ".quarantine"] so it stops poisoning every resume, and
    returns the RT008 warning describing what happened. Never raises:
    a failed rename is reported inside the diagnostic. *)
val quarantine : ?vfs:Vfs.t -> reason:string -> string -> Diagnostic.t

(** [load_all dir] loads every [session-*.ckpt] under [dir] in sorted
    file order, collecting diagnostics for files that were damaged or
    dropped; stale [*.tmp] files are reported with RT009. A missing
    directory is an empty store.

    With [~repair:true] (the daemon's [--resume] path and
    [flowtrace fsck --repair]) the store is also healed: stale temp
    files are swept (counted in the [runtime.vfs.stale_tmp] telemetry
    counter), sessions recovered from a damaged tail are compacted back
    to sealed files (RT010), and files whose session body is lost are
    quarantined (RT008) instead of left to fail again — damage is
    contained per session, never daemon-wide. *)
val load_all :
  ?vfs:Vfs.t -> ?repair:bool -> string -> session list * Diagnostic.t list
