module Diagnostic = Flowtrace_analysis.Diagnostic

type config = {
  socket : string;
  state_dir : string option;
  shards : int;
  max_inflight : int;
  retries : int;
  backoff_seed : int;
  chaos : bool;
  resume : bool;
  queue_grace : float option;
  max_line : int;
  max_out : int;
  max_conn_queue : int;
}

let default =
  {
    socket = "flowtraced.sock";
    state_dir = None;
    shards = 4;
    max_inflight = 64;
    retries = 2;
    backoff_seed = 0;
    chaos = false;
    resume = false;
    queue_grace = None;
    max_line = 1 lsl 20;
    max_out = 8 lsl 20;
    max_conn_queue = 64;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  inbuf : Buffer.t;
  outbuf : Buffer.t;
  mutable out : string;  (** partial write in progress *)
  mutable out_off : int;
  mutable next_seq : int;  (** next request sequence number to assign *)
  mutable next_write : int;  (** next sequence to emit, enforcing order *)
  pending : (int, string) Hashtbl.t;  (** finished out of order *)
  mutable eof : bool;
  mutable close_after_flush : bool;
}

type job = { j_cid : int; j_seq : int; j_line : string; j_deadline : float option }
type shard_q = { sq_mu : Mutex.t; sq_cv : Condition.t; sq_q : job Queue.t }

let conn_outstanding c = c.next_seq - c.next_write
let conn_wants_write c = c.out <> "" || Buffer.length c.outbuf > 0

(* Move finished responses into the out buffer, strictly in sequence. *)
let promote c =
  let rec go () =
    match Hashtbl.find_opt c.pending c.next_write with
    | Some resp ->
        Hashtbl.remove c.pending c.next_write;
        Buffer.add_string c.outbuf resp;
        Buffer.add_char c.outbuf '\n';
        c.next_write <- c.next_write + 1;
        go ()
    | None -> ()
  in
  go ()

let worker disp stop completed comp_mu pipe_w sq =
  let wake = Bytes.make 1 '!' in
  let rec next () =
    Mutex.lock sq.sq_mu;
    let rec take () =
      if not (Queue.is_empty sq.sq_q) then Some (Queue.pop sq.sq_q)
      else if Atomic.get stop then None
      else begin
        Condition.wait sq.sq_cv sq.sq_mu;
        take ()
      end
    in
    let j = take () in
    Mutex.unlock sq.sq_mu;
    match j with
    | None -> ()
    | Some j ->
        let resp, _ = Dispatch.handle ?drop_deadline:j.j_deadline ~admitted:true disp j.j_line in
        Mutex.protect comp_mu (fun () -> Queue.push (j.j_cid, j.j_seq, resp) completed);
        (try ignore (Unix.write pipe_w wake 0 1) with Unix.Unix_error _ -> ());
        next ()
  in
  next ()

let run ?(ready = fun () -> ()) ?(on_diags = fun _ -> ()) cfg =
  let disp, diags =
    Dispatch.create ?state_dir:cfg.state_dir ~shards:cfg.shards ~max_inflight:cfg.max_inflight
      ~retries:cfg.retries ~backoff_seed:cfg.backoff_seed ~chaos:cfg.chaos ~resume:cfg.resume ()
  in
  on_diags diags;
  (* ---- socket ---- *)
  (* A socket file left behind by a crashed daemon must not block restart,
     but a live daemon's socket must never be stolen out from under it.
     Probe: a listener answering means the address is genuinely in use; a
     refused connection means the file is stale and safe to unlink. *)
  (if Sys.file_exists cfg.socket then
     let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
     match Unix.connect probe (Unix.ADDR_UNIX cfg.socket) with
     | () ->
         (try Unix.close probe with Unix.Unix_error _ -> ());
         raise (Unix.Unix_error (Unix.EADDRINUSE, "bind", cfg.socket))
     | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
         (try Unix.close probe with Unix.Unix_error _ -> ());
         if Sys.file_exists cfg.socket then Sys.remove cfg.socket
     | exception e ->
         (try Unix.close probe with Unix.Unix_error _ -> ());
         raise e);
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let pipe_r, pipe_w = Unix.pipe () in
  Unix.set_nonblock pipe_r;
  (* ---- signals: a graceful stop, same path as the shutdown op ---- *)
  let sig_stop = Atomic.make false in
  let old_handlers =
    if Domain.is_main_domain () then begin
      let install s =
        (s, Sys.signal s (Sys.Signal_handle (fun _ -> Atomic.set sig_stop true)))
      in
      let pipe = (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore) in
      [ install Sys.sigterm; install Sys.sigint; pipe ]
    end
    else []
  in
  (* ---- workers: one domain per shard ---- *)
  let worker_stop = Atomic.make false in
  let completed = Queue.create () in
  let comp_mu = Mutex.create () in
  let shard_qs =
    Array.init cfg.shards (fun _ ->
        { sq_mu = Mutex.create (); sq_cv = Condition.create (); sq_q = Queue.create () })
  in
  let workers =
    Array.map
      (fun sq -> Domain.spawn (fun () -> worker disp worker_stop completed comp_mu pipe_w sq))
      shard_qs
  in
  (* ---- connection table ---- *)
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let jobs_outstanding = ref 0 in
  let stopping = ref false in
  let listen_closed = ref false in
  let drain_deadline = ref infinity in
  let begin_stop () =
    if not !stopping then begin
      stopping := true;
      drain_deadline := Unix.gettimeofday () +. 5.0;
      if not !listen_closed then begin
        listen_closed := true;
        Unix.close listen_fd
      end
    end
  in
  let drop c =
    if Hashtbl.mem conns c.cid then begin
      Hashtbl.remove conns c.cid;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let complete c seq resp =
    Hashtbl.replace c.pending seq resp;
    promote c
  in
  let handle_line c line =
    let seq = c.next_seq in
    c.next_seq <- c.next_seq + 1;
    match Proto.parse line with
    | Error _ ->
        (* re-dispatch for the canonical error rendering (and counting) *)
        let resp, _ = Dispatch.handle disp line in
        complete c seq resp
    | Ok rq when not (Proto.needs_session rq.Proto.rq_op) ->
        let resp, stop = Dispatch.handle disp line in
        complete c seq resp;
        if stop then begin_stop ()
    | Ok rq ->
        let sid = Option.get rq.Proto.rq_session in
        if Dispatch.admit disp then begin
          let deadline = Option.map (fun g -> Unix.gettimeofday () +. g) cfg.queue_grace in
          let sq = shard_qs.(Dispatch.shard_of disp sid) in
          Mutex.protect sq.sq_mu (fun () ->
              Queue.push
                { j_cid = c.cid; j_seq = seq; j_line = line; j_deadline = deadline }
                sq.sq_q;
              Condition.signal sq.sq_cv);
          incr jobs_outstanding
        end
        else
          complete c seq
            (Dispatch.busy_response disp ?id:rq.Proto.rq_id
               ~op:(Proto.op_name rq.Proto.rq_op) ())
  in
  let oversize c =
    Buffer.clear c.inbuf;
    let seq = c.next_seq in
    c.next_seq <- c.next_seq + 1;
    complete c seq
      (Proto.error ~op:"invalid"
         (Printf.sprintf "request line exceeds %d bytes" cfg.max_line));
    c.eof <- true;
    c.close_after_flush <- true
  in
  let process_inbuf c =
    let s = Buffer.contents c.inbuf in
    let n = String.length s in
    let start = ref 0 in
    let i = ref 0 in
    while !i < n && not c.close_after_flush do
      if s.[!i] = '\n' then begin
        (* a complete line past the cap is rejected too, not just an
           unterminated one that is still accumulating *)
        if !i - !start > cfg.max_line then oversize c
        else handle_line c (String.sub s !start (!i - !start));
        start := !i + 1
      end;
      incr i
    done;
    if not c.close_after_flush then begin
      Buffer.clear c.inbuf;
      if !start < n then Buffer.add_substring c.inbuf s !start (n - !start);
      if Buffer.length c.inbuf > cfg.max_line then oversize c
    end
  in
  let read_buf = Bytes.create 65536 in
  let do_read c =
    match Unix.read c.fd read_buf 0 (Bytes.length read_buf) with
    | 0 ->
        c.eof <- true;
        (* serve the complete lines a half-closing client already sent *)
        process_inbuf c
    | n ->
        Buffer.add_subbytes c.inbuf read_buf 0 n;
        process_inbuf c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> drop c
  in
  let do_write c =
    if c.out = "" && Buffer.length c.outbuf > 0 then begin
      c.out <- Buffer.contents c.outbuf;
      c.out_off <- 0;
      Buffer.clear c.outbuf
    end;
    if c.out <> "" then
      match Unix.write_substring c.fd c.out c.out_off (String.length c.out - c.out_off) with
      | n ->
          c.out_off <- c.out_off + n;
          if c.out_off >= String.length c.out then begin
            c.out <- "";
            c.out_off <- 0
          end
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> drop c
  in
  let drain_completed () =
    let items =
      Mutex.protect comp_mu (fun () ->
          let items = List.of_seq (Queue.to_seq completed) in
          Queue.clear completed;
          items)
    in
    List.iter
      (fun (cid, seq, resp) ->
        decr jobs_outstanding;
        match Hashtbl.find_opt conns cid with
        | Some c -> complete c seq resp
        | None -> () (* client vanished; the response has nowhere to go *))
      items
  in
  let drain_pipe () =
    let b = Bytes.create 4096 in
    let rec go () =
      match Unix.read pipe_r b 0 4096 with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  let accept () =
    let rec go () =
      match Unix.accept listen_fd with
      | fd, _ ->
          Unix.set_nonblock fd;
          incr next_cid;
          let c =
            {
              fd;
              cid = !next_cid;
              inbuf = Buffer.create 256;
              outbuf = Buffer.create 256;
              out = "";
              out_off = 0;
              next_seq = 0;
              next_write = 0;
              pending = Hashtbl.create 4;
              eof = false;
              close_after_flush = false;
            }
          in
          Hashtbl.replace conns c.cid c;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> ()
    in
    go ()
  in
  ready ();
  (* ---- the loop ---- *)
  let finished () =
    !stopping
    && (!jobs_outstanding = 0
        && Hashtbl.fold (fun _ c acc -> acc && not (conn_wants_write c)) conns true
       || Unix.gettimeofday () > !drain_deadline)
  in
  while not (finished ()) do
    if Atomic.get sig_stop then begin_stop ();
    let conn_list = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
    (* a slow reader past the buffer cap is dropped, not buffered forever *)
    List.iter
      (fun c ->
        if Buffer.length c.outbuf + String.length c.out > cfg.max_out then drop c)
      conn_list;
    let conn_list = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
    let reads =
      (if !stopping || !listen_closed then [] else [ listen_fd ])
      @ [ pipe_r ]
      @ List.filter_map
          (fun c ->
            if
              (not c.eof) && (not !stopping)
              && conn_outstanding c < cfg.max_conn_queue
            then Some c.fd
            else None)
          conn_list
    in
    let writes = List.filter_map (fun c -> if conn_wants_write c then Some c.fd else None) conn_list in
    let rs, ws, _ =
      match Unix.select reads writes [] 0.25 with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.memq pipe_r rs then drain_pipe ();
    drain_completed ();
    if (not !listen_closed) && List.memq listen_fd rs then accept ();
    List.iter
      (fun c -> if List.memq c.fd rs && Hashtbl.mem conns c.cid then do_read c)
      conn_list;
    drain_completed ();
    List.iter
      (fun c -> if List.memq c.fd ws && Hashtbl.mem conns c.cid then do_write c)
      conn_list;
    (* retire connections that are fully served *)
    List.iter
      (fun c ->
        if
          Hashtbl.mem conns c.cid
          && (not (conn_wants_write c))
          && conn_outstanding c = 0
          && (c.eof || c.close_after_flush)
        then drop c)
      conn_list
  done;
  (* ---- teardown ---- *)
  Atomic.set worker_stop true;
  Array.iter (fun sq -> Mutex.protect sq.sq_mu (fun () -> Condition.broadcast sq.sq_cv)) shard_qs;
  Array.iter Domain.join workers;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  if not !listen_closed then Unix.close listen_fd;
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  if Sys.file_exists cfg.socket then Sys.remove cfg.socket;
  List.iter (fun (s, h) -> Sys.set_signal s h) old_handlers
