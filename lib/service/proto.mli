(** The `flowtraced` wire protocol: newline-delimited JSON.

    One request per line, one response line per request, in order. Every
    response carries a [status] that mirrors the CLI exit-code convention
    at the protocol level:

    {v
    status      exit  meaning
    "ok"        0     the operation ran to completion
    "error"     1     the request failed (bad input, unknown session, ...)
    "degraded"  3     an honest partial answer (budget expiry, anytime
                      tier, mining degradation)
    "busy"      3     load was shed before the work ran (admission
                      control); retry later — nothing was computed
    v}

    A malformed line — bytes that are not JSON, JSON that is not an
    object, a missing or unknown [op] — yields a per-request ["error"]
    response, never a daemon crash or a dropped connection. Responses
    contain no wall-clock values, so a resumed daemon answers the same
    request with the same bytes as an uninterrupted one. *)

open Flowtrace_core
module Json = Flowtrace_analysis.Json

(** Deterministic fault injection carried by a request; honored only when
    the daemon runs with [--chaos]. [c_fail] makes the first [c_fail]
    attempts of the request's supervised body raise (exercising retry +
    backoff); [c_delay_ms] sleeps before the body (occupying a shard so
    admission control can be driven into shedding on demand); [c_enospc]
    makes the session save fail as if the disk were full (driving the
    degraded-store path end to end over the wire). *)
type chaos = { c_fail : int; c_delay_ms : int; c_enospc : bool }

type op =
  | Ping
  | Status
  | Health  (** store health, session count, stale-temp sweep total *)
  | Shutdown
  | Open_session of {
      tenant : string;
      spec : string;  (** flow-spec text, as a [.flow] file would hold *)
      width : int;
      strategy : Select.strategy;
      instances : (string * int) list;  (** empty = one instance per flow *)
    }
  | Select_op of {
      width : int option;  (** override the session width for this request *)
      deadline_ms : int option;  (** relative per-request budget *)
      max_candidates : int option;
      pack : bool;
    }
  | Localize_op of {
      trace : string list;  (** indexed messages, ["1:ReqE"] style *)
      lossy : bool;
      skip_budget : int;
      width : int option;
    }
  | Mine_op of {
      trace_text : string;  (** a packet trace, as [simulate -o] writes it *)
      support : float option;
      min_count : int option;
    }
  | Close

type request = {
  rq_id : string option;  (** echoed verbatim in the response *)
  rq_session : string option;
  rq_op : op;
  rq_chaos : chaos option;
}

(** [op_name op] is the wire name ("open-session", "select", ...). *)
val op_name : op -> string

(** [needs_session op] — whether the op addresses one session. *)
val needs_session : op -> bool

(** [valid_session_id s] accepts 1-64 chars of [A-Za-z0-9._-] (session
    ids name journal files, so they must be path-safe). *)
val valid_session_id : string -> bool

(** [parse line] decodes one request line. [Error] is the message for the
    per-request error response. *)
val parse : string -> (request, string) result

type status = Sok | Sdegraded | Sbusy | Serror

val status_name : status -> string

(** The exit code the status mirrors (see the table above). *)
val status_exit : status -> int

(** [response ?id ~op status fields] renders one response line (no
    trailing newline). Fields are emitted in the given order after the
    [id]/[op]/[status]/[exit] envelope — keep them deterministic. *)
val response : ?id:string -> op:string -> status -> (string * Json.t) list -> string

(** [error ?id ~op msg] = [response ?id ~op Serror ["error", String msg]]. *)
val error : ?id:string -> op:string -> string -> string

(** [busy ?id ~op msg] — the load-shedding response. *)
val busy : ?id:string -> op:string -> string -> string
