open Flowtrace_core
module Json = Flowtrace_analysis.Json

type chaos = { c_fail : int; c_delay_ms : int; c_enospc : bool }

type op =
  | Ping
  | Status
  | Health
  | Shutdown
  | Open_session of {
      tenant : string;
      spec : string;
      width : int;
      strategy : Select.strategy;
      instances : (string * int) list;
    }
  | Select_op of {
      width : int option;
      deadline_ms : int option;
      max_candidates : int option;
      pack : bool;
    }
  | Localize_op of { trace : string list; lossy : bool; skip_budget : int; width : int option }
  | Mine_op of { trace_text : string; support : float option; min_count : int option }
  | Close

type request = {
  rq_id : string option;
  rq_session : string option;
  rq_op : op;
  rq_chaos : chaos option;
}

let op_name = function
  | Ping -> "ping"
  | Status -> "status"
  | Health -> "health"
  | Shutdown -> "shutdown"
  | Open_session _ -> "open-session"
  | Select_op _ -> "select"
  | Localize_op _ -> "localize"
  | Mine_op _ -> "mine"
  | Close -> "close"

let needs_session = function
  | Open_session _ | Select_op _ | Localize_op _ | Mine_op _ | Close -> true
  | Ping | Status | Health | Shutdown -> false

let valid_session_id s =
  let n = String.length s in
  n >= 1 && n <= 64
  && String.for_all
       (function 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '.' | '_' | '-' -> true | _ -> false)
       s

(* ------------------------------------------------------------------ *)
(* Decoding *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let get_str obj key =
  match Json.member key obj with
  | None -> None
  | Some j -> (
      match Json.to_string_opt j with
      | Some s -> Some s
      | None -> fail "field %S must be a string" key)

let get_int obj key =
  match Json.member key obj with
  | None -> None
  | Some j -> (
      match Json.to_int_opt j with
      | Some n -> Some n
      | None -> fail "field %S must be an integer" key)

let get_float obj key =
  match Json.member key obj with
  | None -> None
  | Some (Json.Float f) -> Some f
  | Some (Json.Int n) -> Some (float_of_int n)
  | Some _ -> fail "field %S must be a number" key

let get_bool obj key =
  match Json.member key obj with
  | None -> None
  | Some (Json.Bool b) -> Some b
  | Some _ -> fail "field %S must be a boolean" key

let get_strategy obj =
  match get_str obj "strategy" with
  | None -> Select.Exact
  | Some "exact" -> Select.Exact
  | Some "exact-maximal" -> Select.Exact_maximal
  | Some "greedy" -> Select.Greedy
  | Some s -> fail "unknown strategy %S (exact, exact-maximal or greedy)" s

let get_instances obj =
  match Json.member "instances" obj with
  | None -> []
  | Some (Json.Obj kvs) ->
      List.map
        (fun (name, v) ->
          match Json.to_int_opt v with
          | Some n when n > 0 -> (name, n)
          | _ -> fail "instance count for %S must be a positive integer" name)
        kvs
  | Some _ -> fail "field \"instances\" must be an object of FLOW: COUNT"

let get_trace obj =
  match Json.member "trace" obj with
  | None -> fail "localize needs a \"trace\" array of \"IDX:NAME\" strings"
  | Some (Json.List items) ->
      List.map
        (fun j ->
          match Json.to_string_opt j with
          | Some s -> s
          | None -> fail "trace entries must be strings")
        items
  | Some _ -> fail "field \"trace\" must be an array"

let get_chaos obj =
  match Json.member "chaos" obj with
  | None -> None
  | Some (Json.Obj _ as c) ->
      let fail_n = Option.value ~default:0 (get_int c "fail") in
      let delay = Option.value ~default:0 (get_int c "delay_ms") in
      let enospc = Option.value ~default:false (get_bool c "enospc") in
      if fail_n < 0 || delay < 0 then fail "chaos fields must be non-negative";
      Some { c_fail = fail_n; c_delay_ms = delay; c_enospc = enospc }
  | Some _ -> fail "field \"chaos\" must be an object"

let decode_op obj = function
  | "ping" -> Ping
  | "status" -> Status
  | "health" -> Health
  | "shutdown" -> Shutdown
  | "open-session" ->
      let spec =
        match get_str obj "spec" with
        | Some s -> s
        | None -> fail "open-session needs a \"spec\" field (flow-spec text)"
      in
      let width = Option.value ~default:32 (get_int obj "width") in
      if width < 1 then fail "width must be positive";
      Open_session
        {
          tenant = Option.value ~default:"default" (get_str obj "tenant");
          spec;
          width;
          strategy = get_strategy obj;
          instances = get_instances obj;
        }
  | "select" ->
      Select_op
        {
          width = get_int obj "width";
          deadline_ms = get_int obj "deadline_ms";
          max_candidates = get_int obj "max_candidates";
          pack = Option.value ~default:true (get_bool obj "pack");
        }
  | "localize" ->
      Localize_op
        {
          trace = get_trace obj;
          lossy = Option.value ~default:false (get_bool obj "lossy");
          skip_budget = Option.value ~default:2 (get_int obj "skip_budget");
          width = get_int obj "width";
        }
  | "mine" ->
      let trace_text =
        match get_str obj "trace_text" with
        | Some s -> s
        | None -> fail "mine needs a \"trace_text\" field (packet-trace text)"
      in
      Mine_op
        { trace_text; support = get_float obj "support"; min_count = get_int obj "min_count" }
  | "close" -> Close
  | other -> fail "unknown op %S" other

let parse line =
  match Json.parse line with
  | Error m -> Error (Printf.sprintf "malformed request line: %s" m)
  | Ok (Json.Obj _ as obj) -> (
      try
        let op =
          match get_str obj "op" with
          | Some o -> decode_op obj o
          | None -> fail "request has no \"op\" field"
        in
        let session = get_str obj "session" in
        (match session with
        | Some s when not (valid_session_id s) ->
            fail "invalid session id %S (1-64 chars of A-Za-z0-9._-)" s
        | _ -> ());
        if needs_session op && session = None then
          fail "op %S needs a \"session\" field" (op_name op);
        Ok { rq_id = get_str obj "id"; rq_session = session; rq_op = op; rq_chaos = get_chaos obj }
      with Bad m -> Error m)
  | Ok _ -> Error "request must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Encoding *)

type status = Sok | Sdegraded | Sbusy | Serror

let status_name = function
  | Sok -> "ok"
  | Sdegraded -> "degraded"
  | Sbusy -> "busy"
  | Serror -> "error"

let status_exit = function Sok -> 0 | Sdegraded | Sbusy -> 3 | Serror -> 1

let response ?id ~op status fields =
  let envelope =
    (match id with Some i -> [ ("id", Json.String i) ] | None -> [])
    @ [
        ("op", Json.String op);
        ("status", Json.String (status_name status));
        ("exit", Json.Int (status_exit status));
      ]
  in
  Json.to_string (Json.Obj (envelope @ fields))

let error ?id ~op msg = response ?id ~op Serror [ ("error", Json.String msg) ]

let busy ?id ~op msg = response ?id ~op Sbusy [ ("error", Json.String msg) ]
