(** The daemon event loop: a Unix-domain socket in front of {!Dispatch}.

    One listening socket, newline-delimited JSON (see {!Proto}). The main
    domain runs a [select] loop over nonblocking connections — reading
    lines, answering cheap ops ([ping]/[status]/[shutdown] and malformed
    lines) inline, and enqueueing session ops to one worker domain per
    shard. Responses are written back strictly in request order per
    connection, whatever order the shards finish in.

    Robustness properties the chaos harness leans on:
    - a malformed line is a per-request error response, never a crash;
    - a line longer than [max_line] gets an error response and the
      connection is closed after the response is flushed;
    - a slow reader whose unread responses exceed [max_out] is dropped;
    - a half-closed client (EOF sent, still reading) gets every response
      for the complete lines it sent before the close;
    - a client that stops reading causes backpressure (its socket is
      just not read past [max_conn_queue] outstanding requests), never
      unbounded queueing;
    - admission past the dispatcher's in-flight cap answers ["busy"] at
      enqueue time, so the shard queues themselves stay bounded, and
      [queue_grace] sheds jobs that sat queued too long. *)

module Diagnostic = Flowtrace_analysis.Diagnostic

type config = {
  socket : string;  (** path of the Unix-domain socket to listen on *)
  state_dir : string option;  (** persist sessions here (see {!Store}) *)
  shards : int;
  max_inflight : int;
  retries : int;
  backoff_seed : int;
  chaos : bool;  (** honor per-request chaos fields (tests only) *)
  resume : bool;  (** reload persisted sessions from [state_dir] *)
  queue_grace : float option;
      (** shed session ops that waited longer than this many seconds in a
          shard queue (default: no shedding by age) *)
  max_line : int;
  max_out : int;
  max_conn_queue : int;
}

(** Defaults: 4 shards, 64 in flight, 2 retries, 1 MiB lines, 8 MiB of
    unread responses, 64 outstanding requests per connection, no chaos,
    no persistence. *)
val default : config

(** [run config] binds the socket and serves until a [shutdown] request
    or SIGTERM/SIGINT, then drains in-flight work, flushes every
    response, and removes the socket file. [ready] is called once the
    socket is listening (the test harness synchronizes on it);
    [on_diags] receives resume diagnostics (damaged session files).
    A pre-existing socket file is probed before binding: if a listener
    answers, [run] raises [Unix.Unix_error (EADDRINUSE, _, _)] rather
    than steal a live daemon's address; if nothing answers (a crashed
    daemon's leftover), the stale file is unlinked and startup proceeds.

    Raises [Unix.Unix_error] if the socket cannot be bound. *)
val run :
  ?ready:(unit -> unit) -> ?on_diags:(Diagnostic.t list -> unit) -> config -> unit
