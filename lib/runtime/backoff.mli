(** Bounded exponential retry backoff with deterministic seeded jitter.

    A policy maps a (task, attempt) pair to a delay: the base doubles per
    attempt up to a hard cap, and a jitter fraction of the exponential
    delay is added or withheld pseudo-randomly. The jitter stream is a
    pure function of [(seed, task, attempt)] — no wall clock, no global
    state — so a retried schedule replays identically from the same seed,
    which keeps supervised runs reproducible while still de-synchronizing
    sibling workers that fail together (the thundering-herd case a fixed
    delay invites).

    Waiting only delays a retry, it never changes what the retry computes;
    supervised results stay bit-identical with or without a policy. Time
    actually slept is accumulated into the [runtime.task.backoff_ns]
    telemetry counter. *)

type t

(** [make ~seed ()] builds a policy. [base_ns] (default 1ms) is the
    first-retry delay, [cap_ns] (default 100ms) the ceiling the
    exponential saturates at, [jitter] (default 0.5) the fraction of the
    capped delay drawn uniformly from [[0, jitter]] and added. Raises
    [Invalid_argument] on a non-positive base or cap, or a jitter outside
    [[0, 1]]. *)
val make : ?base_ns:int -> ?cap_ns:int -> ?jitter:float -> seed:int -> unit -> t

(** [none] is the no-delay policy (every delay is 0ns) — retry timing
    aside, supervised behaviour is exactly the pre-backoff one. *)
val none : t

(** [delay_ns t ~task ~attempt] is the nanoseconds to wait before retry
    [attempt] (1-based: the delay after the first failed attempt) of
    [task]. Pure and deterministic. *)
val delay_ns : t -> task:int -> attempt:int -> int

(** [wait t ~task ~attempt] sleeps for {!delay_ns} and adds the slept
    nanoseconds to [runtime.task.backoff_ns]. A zero delay neither sleeps
    nor counts. *)
val wait : t -> task:int -> attempt:int -> unit
