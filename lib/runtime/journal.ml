open Flowtrace_core
open Flowtrace_analysis

let version = 1

type best = { b_names : string list; b_gain : int64; b_bits : int }

type snapshot = {
  s_fingerprint : string;
  s_total_tasks : int;
  s_done : bool array;
  s_best : best option;
  s_task_bests : (int * best) list;
  s_explored : int;
}

let span path line = Srcspan.make ~file:path ~line ~col:1

(* ------------------------------------------------------------------ *)
(* Rendering *)

let check_name n =
  if n = "" then invalid_arg "Journal.write: empty message name";
  String.iter
    (fun c ->
      match c with
      | ',' | ' ' | '\t' | '\n' | '\r' ->
          invalid_arg (Printf.sprintf "Journal.write: message name %S cannot be stored" n)
      | _ -> ())
    n

let render snap =
  let buf = Buffer.create 1024 in
  let records = ref 0 in
  Buffer.add_string buf
    (Printf.sprintf "flowtrace-journal v%d fp=%s tasks=%d\n" version snap.s_fingerprint
       snap.s_total_tasks);
  let record payload =
    incr records;
    Buffer.add_string buf (Crc32.to_hex (Crc32.string payload));
    Buffer.add_char buf ' ';
    Buffer.add_string buf payload;
    Buffer.add_char buf '\n'
  in
  record (Printf.sprintf "x %d" snap.s_explored);
  Array.iteri (fun i d -> if d then record (Printf.sprintf "d %d" i)) snap.s_done;
  List.iter
    (fun (id, b) ->
      List.iter check_name b.b_names;
      record
        (Printf.sprintf "t %d %016Lx %d %s" id b.b_gain b.b_bits (String.concat "," b.b_names)))
    (List.sort (fun (a, _) (b, _) -> compare a b) snap.s_task_bests);
  (match snap.s_best with
  | None -> ()
  | Some b ->
      List.iter check_name b.b_names;
      record (Printf.sprintf "b %016Lx %d %s" b.b_gain b.b_bits (String.concat "," b.b_names)));
  (* the end record seals everything above it *)
  let body_crc = Crc32.string (Buffer.contents buf) in
  let endp = Printf.sprintf "end %d %s" !records (Crc32.to_hex body_crc) in
  Buffer.add_string buf (Crc32.to_hex (Crc32.string endp));
  Buffer.add_char buf ' ';
  Buffer.add_string buf endp;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let write ?(vfs = Vfs.passthrough) ~path snap =
  if Array.length snap.s_done <> snap.s_total_tasks then
    invalid_arg "Journal.write: done array does not match the task count";
  Vfs.atomic_replace vfs ~path (render snap)

(* ------------------------------------------------------------------ *)
(* Parsing *)

type parsed =
  | Explored of int
  | Done_task of int
  | Best of best
  | Task_best of int * best
  | End of int * string

let parse_best gain bits names =
  match (Int64.of_string_opt ("0x" ^ gain), int_of_string_opt bits) with
  | Some g, Some b -> Some { b_names = String.split_on_char ',' names; b_gain = g; b_bits = b }
  | _ -> None

let parse_payload payload =
  match String.split_on_char ' ' payload with
  | [ "x"; n ] -> Option.map (fun n -> Explored n) (int_of_string_opt n)
  | [ "d"; n ] -> Option.map (fun n -> Done_task n) (int_of_string_opt n)
  | [ "b"; gain; bits; names ] -> Option.map (fun b -> Best b) (parse_best gain bits names)
  | [ "t"; id; gain; bits; names ] -> (
      match (int_of_string_opt id, parse_best gain bits names) with
      | Some id, Some b -> Some (Task_best (id, b))
      | _ -> None)
  | [ "end"; count; crc ] -> Option.map (fun c -> End (c, crc)) (int_of_string_opt count)
  | _ -> None

let load ?(vfs = Vfs.passthrough) path =
  match vfs.Vfs.read_file path with
  | exception Vfs.Io_error { e_msg; _ } ->
      Error [ Rt.v "RT001" (Srcspan.none path) "cannot read journal: %s" e_msg ]
  | text -> (
      let complete_last_line = String.length text > 0 && text.[String.length text - 1] = '\n' in
      let lines =
        match List.rev (String.split_on_char '\n' text) with
        | "" :: rest when complete_last_line -> List.rev rest
        | rev -> List.rev rev
      in
      match lines with
      | [] -> Error [ Rt.v "RT002" (span path 1) "empty file is not a flowtrace journal" ]
      | header :: records -> (
          match
            Scanf.sscanf header "flowtrace-journal v%d fp=%s@ tasks=%d" (fun v fp n -> (v, fp, n))
          with
          | exception _ ->
              Error
                [ Rt.v "RT002" (span path 1) "not a flowtrace journal (unrecognized header)" ]
          | v, _, _ when v <> version ->
              Error
                [
                  Rt.v "RT003" (span path 1) "journal version v%d is not supported (this build reads v%d)" v
                    version;
                ]
          | _, _, total when total < 0 ->
              Error [ Rt.v "RT002" (span path 1) "corrupt header (negative task count)" ]
          | _, fingerprint, total -> (
              let done_ = Array.make total false in
              let best = ref None in
              let task_bests = ref [] in
              let explored = ref 0 in
              let seen = ref 0 in
              let body_crc = ref (Crc32.update 0l (header ^ "\n")) in
              let warnings = ref [] in
              let error = ref None in
              let ended = ref false in
              let n_lines = List.length records in
              (try
                 List.iteri
                   (fun i line ->
                     let lineno = i + 2 in
                     let last = i = n_lines - 1 in
                     let fail d =
                       error := Some d;
                       raise Exit
                     in
                     let truncated () =
                       warnings :=
                         [
                           Rt.v "RT006" (span path lineno)
                             "journal tail truncated at line %d; resuming from the valid %d-record \
                              prefix"
                             lineno !seen;
                         ];
                       raise Exit
                     in
                     if !ended then
                       fail (Rt.v "RT007" (span path lineno) "content after the end record");
                     let parsed =
                       if String.length line > 9 && line.[8] = ' ' then
                         let crc = String.sub line 0 8 in
                         let payload = String.sub line 9 (String.length line - 9) in
                         if String.equal crc (Crc32.to_hex (Crc32.string payload)) then
                           parse_payload payload
                         else None
                       else None
                     in
                     match parsed with
                     | None ->
                         (* a damaged final line is indistinguishable from a cut-off
                            write tail: recover the prefix. Damage higher up is a
                            hard error. *)
                         if last then truncated ()
                         else fail (Rt.v "RT005" (span path lineno) "corrupt journal record")
                     | Some (End (count, crc)) ->
                         if count <> !seen then
                           fail
                             (Rt.v "RT007" (span path lineno)
                                "end record expects %d records but %d are present" count !seen);
                         if not (String.equal crc (Crc32.to_hex !body_crc)) then
                           fail
                             (Rt.v "RT007" (span path lineno)
                                "whole-file checksum mismatch (journal was modified)");
                         ended := true
                     | Some record -> (
                         incr seen;
                         body_crc := Crc32.update !body_crc (line ^ "\n");
                         match record with
                         | Explored n -> explored := n
                         | Done_task id ->
                             if id < 0 || id >= total then
                               fail
                                 (Rt.v "RT005" (span path lineno)
                                    "task id %d out of range (journal declares %d tasks)" id total)
                             else done_.(id) <- true
                         | Best b -> best := Some b
                         | Task_best (id, b) ->
                             if id < 0 || id >= total then
                               fail
                                 (Rt.v "RT005" (span path lineno)
                                    "task id %d out of range (journal declares %d tasks)" id total)
                             else
                               task_bests :=
                                 (id, b) :: List.remove_assoc id !task_bests
                         | End _ -> assert false))
                   records
               with Exit -> ());
              match !error with
              | Some d -> Error [ d ]
              | None ->
                  if (not !ended) && !warnings = [] then
                    warnings :=
                      [
                        Rt.v "RT006" (span path (n_lines + 1))
                          "journal has no end record (truncated); resuming from the valid \
                           %d-record prefix"
                          !seen;
                      ];
                  Ok
                    ( {
                        s_fingerprint = fingerprint;
                        s_total_tasks = total;
                        s_done = done_;
                        s_best = !best;
                        s_task_bests =
                          List.sort (fun (a, _) (b, _) -> compare a b) !task_bests;
                        s_explored = !explored;
                      },
                      !warnings ))))

(* ------------------------------------------------------------------ *)
(* The generic record log: the same crash-safety discipline with opaque
   payloads, used by the service layer as its session storage engine. *)

module Log = struct
  let header kind = Printf.sprintf "flowtrace-log v%d kind=%s" version kind

  let check_kind kind =
    if kind = "" then invalid_arg "Journal.Log: empty kind";
    String.iter
      (fun c ->
        match c with
        | ' ' | '\t' | '\n' | '\r' -> invalid_arg "Journal.Log: kind cannot contain whitespace"
        | _ -> ())
      kind

  let render ~kind records =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (header kind);
    Buffer.add_char buf '\n';
    let count = ref 0 in
    let record payload =
      incr count;
      Buffer.add_string buf (Crc32.to_hex (Crc32.string payload));
      Buffer.add_char buf ' ';
      Buffer.add_string buf payload;
      Buffer.add_char buf '\n'
    in
    List.iter
      (fun r ->
        if String.contains r '\n' || String.contains r '\r' then
          invalid_arg "Journal.Log.write: record contains a newline";
        record ("r " ^ r))
      records;
    let body_crc = Crc32.string (Buffer.contents buf) in
    let endp = Printf.sprintf "end %d %s" !count (Crc32.to_hex body_crc) in
    Buffer.add_string buf (Crc32.to_hex (Crc32.string endp));
    Buffer.add_char buf ' ';
    Buffer.add_string buf endp;
    Buffer.add_char buf '\n';
    Buffer.contents buf

  let write ?(vfs = Vfs.passthrough) ~path ~kind records =
    check_kind kind;
    Vfs.atomic_replace vfs ~path (render ~kind records)

  let load ?(vfs = Vfs.passthrough) ~kind path =
    check_kind kind;
    match vfs.Vfs.read_file path with
    | exception Vfs.Io_error { e_msg; _ } ->
        Error [ Rt.v "RT001" (Srcspan.none path) "cannot read journal: %s" e_msg ]
    | text -> (
        let complete_last_line = String.length text > 0 && text.[String.length text - 1] = '\n' in
        let lines =
          match List.rev (String.split_on_char '\n' text) with
          | "" :: rest when complete_last_line -> List.rev rest
          | rev -> List.rev rev
        in
        match lines with
        | [] -> Error [ Rt.v "RT002" (span path 1) "empty file is not a flowtrace journal" ]
        | hdr :: records -> (
            match
              Scanf.sscanf hdr "flowtrace-log v%d kind=%s" (fun v k -> (v, k))
            with
            | exception _ ->
                Error
                  [ Rt.v "RT002" (span path 1) "not a flowtrace record log (unrecognized header)" ]
            | v, _ when v <> version ->
                Error
                  [
                    Rt.v "RT003" (span path 1)
                      "record log version v%d is not supported (this build reads v%d)" v version;
                  ]
            | _, k when k <> kind ->
                Error
                  [
                    Rt.v "RT002" (span path 1) "record log kind %S is not the expected %S" k kind;
                  ]
            | _ ->
                let payloads = ref [] in
                let seen = ref 0 in
                let body_crc = ref (Crc32.update 0l (hdr ^ "\n")) in
                let warnings = ref [] in
                let error = ref None in
                let ended = ref false in
                let n_lines = List.length records in
                (try
                   List.iteri
                     (fun i line ->
                       let lineno = i + 2 in
                       let last = i = n_lines - 1 in
                       let fail d =
                         error := Some d;
                         raise Exit
                       in
                       let truncated () =
                         warnings :=
                           [
                             Rt.v "RT006" (span path lineno)
                               "record log tail truncated at line %d; recovering the valid \
                                %d-record prefix"
                               lineno !seen;
                           ];
                         raise Exit
                       in
                       if !ended then
                         fail (Rt.v "RT007" (span path lineno) "content after the end record");
                       let payload =
                         if String.length line > 9 && line.[8] = ' ' then
                           let crc = String.sub line 0 8 in
                           let payload = String.sub line 9 (String.length line - 9) in
                           if String.equal crc (Crc32.to_hex (Crc32.string payload)) then
                             Some payload
                           else None
                         else None
                       in
                       match payload with
                       | None ->
                           if last then truncated ()
                           else fail (Rt.v "RT005" (span path lineno) "corrupt record")
                       | Some p when String.length p >= 2 && String.sub p 0 2 = "r " ->
                           incr seen;
                           body_crc := Crc32.update !body_crc (line ^ "\n");
                           payloads := String.sub p 2 (String.length p - 2) :: !payloads
                       | Some p -> (
                           match String.split_on_char ' ' p with
                           | [ "end"; count; crc ] -> (
                               match int_of_string_opt count with
                               | None ->
                                   if last then truncated ()
                                   else fail (Rt.v "RT005" (span path lineno) "corrupt record")
                               | Some count ->
                                   if count <> !seen then
                                     fail
                                       (Rt.v "RT007" (span path lineno)
                                          "end record expects %d records but %d are present"
                                          count !seen);
                                   if not (String.equal crc (Crc32.to_hex !body_crc)) then
                                     fail
                                       (Rt.v "RT007" (span path lineno)
                                          "whole-file checksum mismatch (log was modified)");
                                   ended := true)
                           | _ ->
                               if last then truncated ()
                               else fail (Rt.v "RT005" (span path lineno) "corrupt record")))
                     records
                 with Exit -> ());
                (match !error with
                | Some d -> Error [ d ]
                | None ->
                    if (not !ended) && !warnings = [] then
                      warnings :=
                        [
                          Rt.v "RT006" (span path (n_lines + 1))
                            "record log has no end record (truncated); recovering the valid \
                             %d-record prefix"
                            !seen;
                        ];
                    Ok (List.rev !payloads, !warnings))))
end
