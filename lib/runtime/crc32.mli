(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), self-contained so the
    journal needs no external checksum dependency.

    Used by {!Journal} to protect every persisted record: a single flipped
    bit in a record's payload changes its CRC with overwhelming
    probability, turning silent corruption into a positioned [RT005]
    diagnostic. *)

(** [string s] is the CRC-32 of all of [s]. *)
val string : string -> int32

(** [update crc s] folds [s] into a running CRC (start from
    [string ""] = [0l]); [string s = update 0l s]. Chaining updates over
    chunks equals one {!string} over their concatenation. *)
val update : int32 -> string -> int32

(** [to_hex crc] is the fixed-width lowercase hex rendering ["%08lx"]. *)
val to_hex : int32 -> string
