(** Task supervision: run a set of independent tasks across domains with
    bounded retry, isolating worker failures.

    A task that raises is retried (fresh, from scratch) up to [retries]
    more times; a task that keeps failing is recorded as [Gave_up] and the
    remaining tasks keep running — one poisoned subtree never loses its
    siblings' results. A cooperative stop (an exception recognized by
    [should_stop], e.g. {!Budget.Expired}) is not a failure: the worker
    that sees it stops claiming, every other worker stops at its next
    claim, and unfinished tasks are left [Not_run].

    Callers must make task bodies transactional: publish a task's effects
    only after the body returns, so a failed attempt leaves no trace and a
    retried task is indistinguishable from a first-try success (this is
    what makes supervised results bit-identical to unsupervised runs).

    Outcomes are counted into the [runtime.task.ok], [runtime.task.retried]
    and [runtime.task.failed] telemetry counters. *)

type task_status =
  | Done
  | Gave_up of exn  (** failed on every attempt; the last exception *)
  | Not_run  (** not claimed, or abandoned by a cooperative stop *)

type summary = {
  statuses : task_status array;  (** aligned with the [tasks] argument *)
  retried : int;  (** total retry attempts performed *)
  stopped : bool;  (** a cooperative stop ended the run early *)
}

(** [run ~tasks f] executes [f id] for every [id] in [tasks] across
    [jobs] domains (default 1, i.e. in array order on the calling domain).
    [retries] (default 2) bounds extra attempts per task. [backoff]
    (default {!Backoff.none}, i.e. the historical immediate retry) delays
    each retry by the policy's bounded exponential with deterministic
    seeded jitter; the wait happens on the failing worker only, changes no
    result bits, and is accounted in [runtime.task.backoff_ns].
    [should_stop] classifies cooperative-stop exceptions (default: none).
    [inject] is a test hook called before each attempt with the task id
    and 1-based attempt number; anything it raises counts as that
    attempt's failure — this is how the fault-recovery tests exercise the
    retry machinery deterministically. *)
val run :
  ?jobs:int ->
  ?retries:int ->
  ?backoff:Backoff.t ->
  ?should_stop:(exn -> bool) ->
  ?inject:(task:int -> attempt:int -> unit) ->
  tasks:int array ->
  (int -> unit) ->
  summary
