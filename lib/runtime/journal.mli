(** The checkpoint journal: a crash-safe snapshot of a supervised
    selection run.

    A journal persists which plan tasks have completed, the running best
    candidate (as sorted message names plus the IEEE-754 bits of its gain,
    so resumption can verify a bit-exact re-score), and the cumulative
    explored-candidate count. Snapshots are written whole to a temp file
    and renamed into place, so the on-disk journal is always a complete,
    self-consistent state no matter when the process is killed.

    The format is line-oriented text, built for positioned diagnostics:

    {v
    flowtrace-journal v1 fp=<16 hex> tasks=<n>
    <crc32> x <explored>
    <crc32> d <task id>          (one line per completed task)
    <crc32> t <task id> <gain hex> <bits> <name,name,...>
                                 (per-task best, one per completed task
                                  whose subtree held any candidate)
    <crc32> b <gain hex> <bits> <name,name,...>
    <crc32> end <record count> <file crc32>
    v}

    The [t] records are the substrate of delta re-selection
    ([flowtrace select --delta-from]): together with the global best they
    seed {!Flowtrace_core.Select.reselect}'s branch-and-bound incumbent
    when the same journal is replayed against a modified scenario.

    Every record line is prefixed with the CRC-32 of its payload; the
    [end] record seals the file with the record count and the CRC-32 of
    everything above it. {!load} maps damage onto the RT codes of
    {!Flowtrace_analysis.Rt}: unreadable file → RT001, bad header → RT002,
    wrong version → RT003, a corrupt record mid-file → RT005 (hard error),
    a failed [end] seal → RT007 — while a {e missing or damaged tail}
    (the one shape external truncation usually takes) recovers the valid
    prefix with an RT006 warning, because resuming from a prefix merely
    re-runs the tasks whose completion records were lost. *)

(** The persisted best candidate. [b_gain] is [Int64.bits_of_float] of the
    incremental gain, compared bit-for-bit after re-scoring on resume. *)
type best = { b_names : string list; b_gain : int64; b_bits : int }

type snapshot = {
  s_fingerprint : string;  (** {!Fingerprint.v} of the run configuration *)
  s_total_tasks : int;
  s_done : bool array;  (** length [s_total_tasks] *)
  s_best : best option;
  s_task_bests : (int * best) list;
      (** per-task bests for completed tasks, ascending task id; a
          completed task with no entry had no candidate in its subtree *)
  s_explored : int;  (** cumulative candidates explored across runs *)
}

val version : int

(** [write ~path snap] atomically replaces [path] with the snapshot via
    {!Vfs.atomic_replace} (write to [path ^ ".tmp"], fsync, then
    rename). [vfs] defaults to {!Vfs.passthrough}. Raises
    {!Vfs.Io_error} on I/O failure and [Invalid_argument] if a message
    name cannot be stored verbatim (contains a comma, whitespace or
    newline). *)
val write : ?vfs:Vfs.t -> path:string -> snapshot -> unit

(** [load path] parses a journal. [Ok (snap, warnings)] carries RT006
    warnings when a truncated tail was recovered; [Error diags] carries
    the positioned hard errors above. Fingerprint/task-count compatibility
    with the resuming run is the caller's check (RT004) — the journal
    itself cannot know the run it is being resumed into. *)
val load :
  ?vfs:Vfs.t ->
  string ->
  ( snapshot * Flowtrace_analysis.Diagnostic.t list,
    Flowtrace_analysis.Diagnostic.t list )
  result

(** The journal machinery as a generic storage engine: an opaque,
    crash-safe, CRC-sealed record log.

    Same on-disk discipline as the selection journal — atomic
    temp-then-rename writes, a versioned [kind]-tagged header, CRC-32 per
    record, a sealing end record over the whole body — but the payloads
    are the caller's strings (anything newline-free). The service layer
    stores every debug session through this: a [kill -9] at any byte
    leaves either the previous complete file or the new complete file,
    and {e external} damage maps onto the same RT codes ({!load} above):
    a damaged or missing tail recovers the sealed record prefix with an
    RT006 warning, mid-file corruption is a hard RT005, a lying end seal
    RT007, a foreign or versioned-ahead file RT002/RT003. *)
module Log : sig
  (** [write ~path ~kind records] atomically replaces [path]. Raises
      [Invalid_argument] if [kind] contains whitespace or a record
      contains a newline; {!Vfs.Io_error} on I/O failure. *)
  val write : ?vfs:Vfs.t -> path:string -> kind:string -> string list -> unit

  (** [load ~kind path] returns the records with RT006 warnings when a
      truncated tail was recovered. A readable journal of a different
      [kind] is rejected with RT002 — a session file is never confused
      with a selection checkpoint. *)
  val load :
    ?vfs:Vfs.t ->
    kind:string ->
    string ->
    ( string list * Flowtrace_analysis.Diagnostic.t list,
      Flowtrace_analysis.Diagnostic.t list )
    result
end
