(* CRC-32 (IEEE 802.3 / zlib), table-driven, reflected form. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

let string s = update 0l s

let to_hex crc = Printf.sprintf "%08lx" crc
