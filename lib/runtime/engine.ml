open Flowtrace_core
open Flowtrace_analysis
module Tel = Flowtrace_telemetry.Telemetry

let c_ckpt_writes = Tel.Counter.v "runtime.checkpoint.writes"
let c_skipped = Tel.Counter.v "runtime.task.skipped"

(* same counter the core engine bumps on degraded results — Counter.v
   memoizes by name, so both layers feed one total *)
let c_degraded = Tel.Counter.v "select.degraded"

type status = Complete | Partial

type outcome = {
  o_result : Select.result;
  o_status : status;
  o_total_tasks : int;
  o_done_tasks : int;
  o_resumed_tasks : int;
  o_failed_tasks : int list;
  o_retries : int;
  o_diags : Diagnostic.t list;
}

let completeness o =
  if o.o_total_tasks = 0 then 1.0 else float_of_int o.o_done_tasks /. float_of_int o.o_total_tasks

let pp_outcome ppf o =
  Format.fprintf ppf "supervision: %d/%d tasks done" o.o_done_tasks o.o_total_tasks;
  if o.o_resumed_tasks > 0 then
    Format.fprintf ppf " (%d resumed from checkpoint)" o.o_resumed_tasks;
  if o.o_retries > 0 then
    Format.fprintf ppf ", %d retr%s" o.o_retries (if o.o_retries = 1 then "y" else "ies");
  (match o.o_failed_tasks with
  | [] -> ()
  | ids ->
      Format.fprintf ppf ", %d task%s failed permanently (%s)" (List.length ids)
        (if List.length ids = 1 then "" else "s")
        (String.concat ", " (List.map string_of_int ids)));
  match o.o_status with
  | Complete -> Format.fprintf ppf " — complete"
  | Partial -> Format.fprintf ppf " — partial (%.0f%% of the search)" (100.0 *. completeness o)

exception Reject of Diagnostic.t list

(* Rebuild the journalled best as a live scored path. Extending along
   canonical-pool order replays the walk's take order, so the float sum is
   the one the original run computed — verified against the stored IEEE-754
   bits, which also catches a journal paired with the wrong spec revision
   (same names, different interleavings). *)
let rebuild_best ev pool path (b : Journal.best) =
  let want = List.sort_uniq String.compare b.b_names in
  let sel = List.filter (fun (m : Message.t) -> List.mem m.Message.name want) pool in
  if List.length sel <> List.length want then
    raise
      (Reject
         [
           Rt.v "RT004" (Srcspan.none path)
             "journal best references messages absent from this flow spec";
         ]);
  let p = List.fold_left (Select.Path.extend ev) Select.Path.empty sel in
  if Int64.bits_of_float (Select.Path.gain p) <> b.b_gain || Select.Path.bits p <> b.b_bits then
    raise
      (Reject
         [
           Rt.v "RT004" (Srcspan.none path)
             "journal best does not re-score identically; the spec or scoring changed since the \
              checkpoint was written";
         ]);
  p

let select ?(strategy = Select.Exact) ?(limit = Combination.default_limit) ?(jobs = 1)
    ?(retries = 2) ?backoff ?deadline ?max_candidates ?stride ?checkpoint ?(resume = false)
    ?(checkpoint_every = 1) ?pack ?scale_partial ?inject inter ~buffer_width =
  if resume && checkpoint = None then
    invalid_arg "Engine.select: ~resume needs a ~checkpoint path to load";
  let checkpoint_every = max 1 checkpoint_every in
  let delegate r =
    {
      o_result = r;
      o_status = (if Select.Tier.is_degraded r.Select.tier then Partial else Complete);
      o_total_tasks = 0;
      o_done_tasks = 0;
      o_resumed_tasks = 0;
      o_failed_tasks = [];
      o_retries = 0;
      o_diags = [];
    }
  in
  match strategy with
  | Select.Greedy ->
      (* nothing to split, supervise or journal *)
      Ok
        (delegate
           (Select.select ~strategy ~limit ~jobs ?deadline ?max_candidates ?pack ?scale_partial
              inter ~buffer_width))
  | Select.Exact | Select.Exact_maximal -> (
      try
        Tel.with_span "runtime.select" (fun () ->
            let maximal = strategy = Select.Exact_maximal in
            let ev = Infogain.evaluator inter in
            let pool = Interleave.messages inter in
            let cpool = Combination.canonical_pool pool in
            let plan = Combination.plan pool ~width:buffer_width in
            let ntasks = Combination.n_tasks plan in
            let fp = Fingerprint.v ~pool ~buffer_width ~strategy ~n_tasks:ntasks in
            (* -------- resume -------- *)
            let done_ = Array.make ntasks false in
            let best = ref None in
            let task_bests = Array.make ntasks None in
            let explored0 = ref 0 in
            let diags = ref [] in
            (match checkpoint with
            | Some path when resume && Sys.file_exists path -> (
                match Journal.load path with
                | Error ds -> raise (Reject ds)
                | Ok (snap, warns) ->
                    if snap.Journal.s_fingerprint <> fp || snap.Journal.s_total_tasks <> ntasks
                    then
                      raise
                        (Reject
                           [
                             Rt.v "RT004" (Srcspan.none path)
                               "journal was written by a different run (fingerprint %s over %d \
                                tasks; this run is %s over %d) — different spec, buffer width or \
                                strategy"
                               snap.Journal.s_fingerprint snap.Journal.s_total_tasks fp ntasks;
                           ]);
                    Array.blit snap.Journal.s_done 0 done_ 0 ntasks;
                    best := Option.map (rebuild_best ev cpool path) snap.Journal.s_best;
                    List.iter
                      (fun (id, b) ->
                        task_bests.(id) <- Some (rebuild_best ev cpool path b))
                      snap.Journal.s_task_bests;
                    explored0 := snap.Journal.s_explored;
                    diags := warns)
            | _ -> ());
            let resumed = Array.fold_left (fun n d -> if d then n + 1 else n) 0 done_ in
            if resumed > 0 then Tel.Counter.add c_skipped resumed;
            let pending =
              Array.of_list
                (List.filter (fun t -> not done_.(t)) (List.init ntasks (fun t -> t)))
            in
            (* -------- checkpointing -------- *)
            let budget = Budget.make ?deadline ?max_candidates ~limit ?stride () in
            let mutex = Mutex.create () in
            let since = ref 0 in
            let ckpt_on = ref (checkpoint <> None) in
            let write_ckpt () =
              (* call with [mutex] held *)
              match checkpoint with
              | Some path when !ckpt_on -> (
                  let persist p =
                    {
                      Journal.b_names = Select.Path.key p;
                      b_gain = Int64.bits_of_float (Select.Path.gain p);
                      b_bits = Select.Path.bits p;
                    }
                  in
                  let snap =
                    {
                      Journal.s_fingerprint = fp;
                      s_total_tasks = ntasks;
                      s_done = Array.copy done_;
                      s_best = Option.map persist !best;
                      s_task_bests =
                        Array.to_list task_bests
                        |> List.mapi (fun id p -> (id, p))
                        |> List.filter_map (fun (id, p) ->
                               if done_.(id) then Option.map (fun p -> (id, persist p)) p
                               else None);
                      s_explored = !explored0 + Budget.explored budget;
                    }
                  in
                  try
                    Journal.write ~path snap;
                    Tel.Counter.incr c_ckpt_writes
                  with Vfs.Io_error { e_msg; _ } ->
                    (* a dead checkpoint target must not kill the
                       selection: report it and carry on un-journalled *)
                    ckpt_on := false;
                    diags :=
                      !diags
                      @ [
                          Rt.v "RT001" (Srcspan.none path)
                            "cannot write checkpoint (%s); checkpointing disabled for this run"
                            e_msg;
                        ])
              | _ -> ()
            in
            (* compaction: a journal resumed from a recovered (truncated)
               tail is rewritten sealed before any new work, so the next
               crash recovers from a clean file instead of compounding
               damage *)
            if !diags <> [] && !ckpt_on then begin
              Mutex.protect mutex write_ckpt;
              diags :=
                !diags
                @ [
                    (match checkpoint with
                    | Some path ->
                        Rt.v "RT010" (Srcspan.none path)
                          "recovered journal compacted (sealed prefix rewritten)"
                    | None -> assert false);
                  ]
            end;
            let publish t p =
              Mutex.protect mutex (fun () ->
                  best := Select.Path.merge !best p;
                  task_bests.(t) <- p;
                  done_.(t) <- true;
                  incr since;
                  if !since >= checkpoint_every then begin
                    since := 0;
                    write_ckpt ()
                  end)
            in
            (* -------- the supervised run -------- *)
            let too_many = Atomic.make None in
            let run_task t =
              match
                Combination.fold_task plan t ~only_maximal:maximal
                  ~tick:(fun () -> Budget.tick budget)
                  ~take:(Select.Path.extend ev) ~path:Select.Path.empty
                  ~leaf:(fun acc p -> Select.Path.merge acc (Some p))
                  ~init:None
              with
              | p -> publish t p
              | exception (Combination.Too_many _ as e) ->
                  Atomic.set too_many (Some e);
                  raise e
            in
            let summary =
              if Budget.already_expired budget then
                (* don't even start walking; fall through to degradation *)
                { Supervisor.statuses = Array.make (Array.length pending) Supervisor.Not_run;
                  retried = 0;
                  stopped = Array.length pending > 0;
                }
              else
                Supervisor.run ~jobs ~retries ?backoff
                  ~should_stop:(function
                    | Budget.Expired | Combination.Too_many _ -> true | _ -> false)
                  ?inject ~tasks:pending run_task
            in
            Mutex.protect mutex (fun () ->
                since := 0;
                write_ckpt ());
            (match Atomic.get too_many with Some e -> raise e | None -> ());
            let failed =
              List.filteri (fun i _ -> match summary.Supervisor.statuses.(i) with
                  | Supervisor.Gave_up _ -> true
                  | _ -> false)
                (Array.to_list pending)
            in
            let done_count = Array.fold_left (fun n d -> if d then n + 1 else n) 0 done_ in
            let explored = !explored0 + Budget.explored budget in
            let finalize tier combo gain status =
              {
                o_result =
                  Select.finalize ?pack ?scale_partial ~tier inter ~combo ~gain ~buffer_width;
                o_status = status;
                o_total_tasks = ntasks;
                o_done_tasks = done_count;
                o_resumed_tasks = resumed;
                o_failed_tasks = failed;
                o_retries = summary.Supervisor.retried;
                o_diags = !diags;
              }
            in
            if done_count = ntasks && failed = [] then
              match !best with
              | Some p ->
                  finalize Select.Tier.Exact (Select.Path.messages p) (Select.Path.gain p)
                    Complete
              | None -> invalid_arg "Select: no message fits the trace buffer"
            else begin
              Tel.Counter.incr c_degraded;
              match !best with
              | Some p ->
                  let estimate =
                    max explored (explored * ntasks / max 1 done_count)
                  in
                  finalize
                    (Select.Tier.Anytime { explored; total_estimate = estimate })
                    (Select.Path.messages p) (Select.Path.gain p) Partial
              | None ->
                  let combo = Select.greedy inter ~buffer_width in
                  if combo = [] then invalid_arg "Select: no message fits the trace buffer";
                  finalize Select.Tier.Greedy_fallback combo
                    (Infogain.of_combination inter combo)
                    Partial
            end)
        |> Result.ok
      with Reject ds -> Error ds)
