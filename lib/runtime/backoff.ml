module Tel = Flowtrace_telemetry.Telemetry

let c_backoff_ns = Tel.Counter.v "runtime.task.backoff_ns"

type t = { base_ns : int; cap_ns : int; jitter : float; seed : int }

let make ?(base_ns = 1_000_000) ?(cap_ns = 100_000_000) ?(jitter = 0.5) ~seed () =
  if base_ns <= 0 then invalid_arg "Backoff.make: base_ns must be positive";
  if cap_ns <= 0 then invalid_arg "Backoff.make: cap_ns must be positive";
  if not (jitter >= 0.0 && jitter <= 1.0) then
    invalid_arg "Backoff.make: jitter must lie in [0, 1]";
  { base_ns; cap_ns; jitter; seed }

let none = { base_ns = 1; cap_ns = 1; jitter = 0.0; seed = 0 }

(* splitmix64 finalizer: one well-mixed word from the (seed, task, attempt)
   triple. Same math as Rng's stream step, inlined so a policy value needs
   no mutable generator state — the delay is a pure function. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let delay_ns t ~task ~attempt =
  if attempt < 1 then invalid_arg "Backoff.delay_ns: attempt is 1-based";
  if t == none then 0
  else begin
    (* base * 2^(attempt-1), saturating at the cap without overflow *)
    let exp =
      if attempt - 1 >= 62 then t.cap_ns
      else
        let d = t.base_ns lsl (attempt - 1) in
        if d <= 0 || d > t.cap_ns then t.cap_ns else d
    in
    let h =
      mix
        (Int64.logxor
           (Int64.mul (Int64.of_int t.seed) 0x9e3779b97f4a7c15L)
           (Int64.add
              (Int64.mul (Int64.of_int task) 0xff51afd7ed558ccdL)
              (Int64.of_int attempt)))
    in
    let unit_ = Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0 in
    exp + int_of_float (t.jitter *. unit_ *. float_of_int exp)
  end

let wait t ~task ~attempt =
  let ns = delay_ns t ~task ~attempt in
  if ns > 0 then begin
    Unix.sleepf (float_of_int ns /. 1e9);
    Tel.Counter.add c_backoff_ns ns
  end
