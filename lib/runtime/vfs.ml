module Tel = Flowtrace_telemetry.Telemetry

let c_stale_tmp = Tel.Counter.v "runtime.vfs.stale_tmp"

type error = { e_op : string; e_path : string; e_msg : string; e_enospc : bool }

exception Io_error of error
exception Crash of int

type fd = int

type t = {
  openw : string -> fd;
  write : fd -> string -> int -> int -> int;
  fsync : fd -> unit;
  close : fd -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
  exists : string -> bool;
  readdir : string -> string array;
  read_file : string -> string;
  mkdir : string -> unit;
}

let io_error ~op ~path ?(enospc = false) msg =
  raise (Io_error { e_op = op; e_path = path; e_msg = msg; e_enospc = enospc })

(* ------------------------------------------------------------------ *)
(* Passthrough: the production path. Unix/Sys failures are rewrapped so
   callers see one exception type with a reliable ENOSPC flag. *)

let wrap op path f =
  try f () with
  | Unix.Unix_error (code, _, arg) ->
      let where = if arg = "" then path else arg in
      io_error ~op ~path:where ~enospc:(code = Unix.ENOSPC) (Unix.error_message code)
  | Sys_error m -> io_error ~op ~path m

let passthrough =
  let table : (fd, Unix.file_descr) Hashtbl.t = Hashtbl.create 16 in
  let next = ref 0 in
  let lock = Mutex.create () in
  let register ufd =
    Mutex.lock lock;
    incr next;
    let id = !next in
    Hashtbl.replace table id ufd;
    Mutex.unlock lock;
    id
  in
  let resolve op id =
    Mutex.lock lock;
    let ufd = Hashtbl.find_opt table id in
    Mutex.unlock lock;
    match ufd with
    | Some ufd -> ufd
    | None -> io_error ~op ~path:"<fd>" "Bad file descriptor"
  in
  {
    openw =
      (fun path ->
        wrap "open" path (fun () ->
            register (Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644)));
    write =
      (fun id buf off len ->
        wrap "write" "<fd>" (fun () -> Unix.write_substring (resolve "write" id) buf off len));
    fsync = (fun id -> wrap "fsync" "<fd>" (fun () -> Unix.fsync (resolve "fsync" id)));
    close =
      (fun id ->
        let ufd = resolve "close" id in
        Mutex.lock lock;
        Hashtbl.remove table id;
        Mutex.unlock lock;
        wrap "close" "<fd>" (fun () -> Unix.close ufd));
    rename = (fun src dst -> wrap "rename" src (fun () -> Sys.rename src dst));
    unlink = (fun path -> wrap "unlink" path (fun () -> Sys.remove path));
    exists = (fun path -> wrap "stat" path (fun () -> Sys.file_exists path));
    readdir = (fun dir -> wrap "readdir" dir (fun () -> Sys.readdir dir));
    read_file =
      (fun path -> wrap "read" path (fun () -> In_channel.with_open_bin path In_channel.input_all));
    mkdir =
      (fun path ->
        wrap "mkdir" path (fun () ->
            try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()));
  }

(* ------------------------------------------------------------------ *)
(* Helpers *)

let write_all t fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    let w = t.write fd s !off (n - !off) in
    if w <= 0 then io_error ~op:"write" ~path:"<fd>" "write made no progress";
    off := !off + w
  done

let tmp_suffix = ".tmp"
let is_tmp name = Filename.check_suffix name tmp_suffix

let atomic_replace t ~path text =
  let tmp = path ^ tmp_suffix in
  let fd = t.openw tmp in
  (try
     write_all t fd text;
     (* fsync before rename, or a power cut after the rename can leave
        a durable name pointing at data that never reached the disk *)
     t.fsync fd;
     t.close fd
   with
  | Crash _ as c -> raise c
  | e ->
      (try t.close fd with Crash _ as c -> raise c | _ -> ());
      (try t.unlink tmp with Crash _ as c -> raise c | _ -> ());
      raise e);
  t.rename tmp path

let sweep_tmp t ~dir =
  let entries = t.readdir dir in
  let stale = List.sort String.compare (List.filter is_tmp (Array.to_list entries)) in
  List.iter
    (fun name ->
      t.unlink (Filename.concat dir name);
      Tel.Counter.incr c_stale_tmp)
    stale;
  stale

(* ------------------------------------------------------------------ *)
(* Fault: deterministic in-memory filesystem.

   Two maps keyed by path: [cur] is what reads observe, [dur] is what a
   power cut preserves. Namespace edits touch both; data lands in [cur]
   and is promoted to [dur] only by fsync. *)

module Fault = struct
  type ofile = { o_path : string; o_gen : int }

  type fs = {
    cur : (string, string) Hashtbl.t;
    dur : (string, string) Hashtbl.t;
    dirs : (string, unit) Hashtbl.t;
    opens : (fd, ofile) Hashtbl.t;
    mutable next_fd : int;
    mutable gen : int;  (* bumped at every power cut; stale fds die *)
    mutable calls : int;
    mutable crash_at : int option;
    mutable crashed : bool;
    mutable short_writes : bool;
    mutable disk_budget : int option;
    mutable eio_at : int option;
    mutable drop_fsync : bool;
    seed : int;
    lock : Mutex.t;
  }

  let create ?(seed = 0) () =
    {
      cur = Hashtbl.create 16;
      dur = Hashtbl.create 16;
      dirs = Hashtbl.create 4;
      opens = Hashtbl.create 4;
      next_fd = 0;
      gen = 0;
      calls = 0;
      crash_at = None;
      crashed = false;
      short_writes = false;
      disk_budget = None;
      eio_at = None;
      drop_fsync = false;
      seed;
      lock = Mutex.create ();
    }

  let set_crash_at fs k =
    fs.crash_at <- k;
    fs.crashed <- false

  let set_short_writes fs b = fs.short_writes <- b
  let set_disk_budget fs b = fs.disk_budget <- b
  let set_eio_at fs k = fs.eio_at <- k
  let set_drop_fsync fs b = fs.drop_fsync <- b
  let syscalls fs = fs.calls
  let reset_syscalls fs = fs.calls <- 0

  let cut fs =
    Hashtbl.reset fs.cur;
    Hashtbl.iter (fun k v -> Hashtbl.replace fs.cur k v) fs.dur;
    Hashtbl.reset fs.opens;
    fs.gen <- fs.gen + 1

  let power_cut fs =
    Mutex.lock fs.lock;
    cut fs;
    Mutex.unlock fs.lock

  let dump fs =
    Mutex.lock fs.lock;
    let files = Hashtbl.fold (fun k v acc -> (k, v) :: acc) fs.dur [] in
    Mutex.unlock fs.lock;
    List.sort compare files

  let mem fs path =
    Mutex.lock fs.lock;
    let v = Hashtbl.find_opt fs.cur path in
    Mutex.unlock fs.lock;
    v

  let install fs ~path text =
    Mutex.lock fs.lock;
    Hashtbl.replace fs.cur path text;
    Hashtbl.replace fs.dur path text;
    Mutex.unlock fs.lock

  (* Syscall boundary: crash check, then count, then (maybe) EIO. Holds
     the lock for the duration of [f]. *)
  let step fs op path f =
    Mutex.lock fs.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock fs.lock) @@ fun () ->
    if fs.crashed then raise (Crash fs.calls);
    (match fs.crash_at with
    | Some k when fs.calls >= k ->
        fs.crashed <- true;
        cut fs;
        raise (Crash k)
    | _ -> ());
    let i = fs.calls in
    fs.calls <- fs.calls + 1;
    (match fs.eio_at with
    | Some k when i = k -> io_error ~op ~path "Input/output error"
    | _ -> ());
    f i

  let usage fs = Hashtbl.fold (fun _ v acc -> acc + String.length v) fs.cur 0

  let mix seed i =
    let x = ((seed * 0x9E3779B1) + (i * 0x85EBCA6B)) land 0x3FFFFFFF in
    let x = x lxor (x lsr 13) in
    let x = x * 0xC2B2AE35 land 0x3FFFFFFF in
    x lxor (x lsr 11)

  let resolve fs op id =
    match Hashtbl.find_opt fs.opens id with
    | Some o when o.o_gen = fs.gen -> o
    | _ -> io_error ~op ~path:"<fd>" "Bad file descriptor"

  let vfs fs =
    {
      openw =
        (fun path ->
          step fs "open" path @@ fun _ ->
          (* creation is a namespace op: durable immediately, data empty *)
          Hashtbl.replace fs.cur path "";
          if not (Hashtbl.mem fs.dur path) then Hashtbl.replace fs.dur path "";
          fs.next_fd <- fs.next_fd + 1;
          Hashtbl.replace fs.opens fs.next_fd { o_path = path; o_gen = fs.gen };
          fs.next_fd);
      write =
        (fun id buf off len ->
          step fs "write" "<fd>" @@ fun i ->
          let o = resolve fs "write" id in
          if len = 0 then 0
          else begin
            let avail =
              match fs.disk_budget with
              | None -> len
              | Some budget -> min len (budget - usage fs)
            in
            if avail <= 0 then
              io_error ~op:"write" ~path:o.o_path ~enospc:true "No space left on device";
            let n = if fs.short_writes then max 1 (1 + (mix fs.seed i mod len)) else len in
            let n = min n avail in
            let prev = try Hashtbl.find fs.cur o.o_path with Not_found -> "" in
            Hashtbl.replace fs.cur o.o_path (prev ^ String.sub buf off n);
            n
          end);
      fsync =
        (fun id ->
          step fs "fsync" "<fd>" @@ fun _ ->
          let o = resolve fs "fsync" id in
          if not fs.drop_fsync then
            Hashtbl.replace fs.dur o.o_path
              (try Hashtbl.find fs.cur o.o_path with Not_found -> ""));
      close =
        (fun id ->
          step fs "close" "<fd>" @@ fun _ ->
          let _ = resolve fs "close" id in
          Hashtbl.remove fs.opens id);
      rename =
        (fun src dst ->
          step fs "rename" src @@ fun _ ->
          match Hashtbl.find_opt fs.cur src with
          | None -> io_error ~op:"rename" ~path:src "No such file or directory"
          | Some data ->
              Hashtbl.replace fs.cur dst data;
              Hashtbl.remove fs.cur src;
              (* the rename itself is durable; the data it exposes at
                 [dst] is whatever the source inode had durably *)
              let ddata = try Hashtbl.find fs.dur src with Not_found -> "" in
              Hashtbl.replace fs.dur dst ddata;
              Hashtbl.remove fs.dur src);
      unlink =
        (fun path ->
          step fs "unlink" path @@ fun _ ->
          if not (Hashtbl.mem fs.cur path) then
            io_error ~op:"unlink" ~path "No such file or directory";
          Hashtbl.remove fs.cur path;
          Hashtbl.remove fs.dur path);
      exists = (fun path -> step fs "stat" path @@ fun _ -> Hashtbl.mem fs.cur path);
      readdir =
        (fun dir ->
          step fs "readdir" dir @@ fun _ ->
          let entries =
            Hashtbl.fold
              (fun path _ acc -> if Filename.dirname path = dir then Filename.basename path :: acc else acc)
              fs.cur []
          in
          let entries = List.sort String.compare entries in
          Array.of_list entries);
      read_file =
        (fun path ->
          step fs "read" path @@ fun _ ->
          match Hashtbl.find_opt fs.cur path with
          | Some data -> data
          | None -> io_error ~op:"read" ~path (path ^ ": No such file or directory"));
      mkdir =
        (fun path ->
          step fs "mkdir" path @@ fun _ ->
          Hashtbl.replace fs.dirs path ());
    }
end
