open Flowtrace_core

(* FNV-1a, 64-bit. Good dispersion for short config strings and trivially
   portable — this is an identity check, not a cryptographic seal (the
   per-record CRCs catch accidental damage; nothing here defends against
   an adversary editing their own checkpoint files). *)
let fnv1a64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let strategy_tag = function
  | Select.Exact -> "exact"
  | Select.Exact_maximal -> "exact-maximal"
  | Select.Greedy -> "greedy"

let v ~pool ~buffer_width ~strategy ~n_tasks =
  let pool = Combination.canonical_pool pool in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "flowtrace-select|w=%d|s=%s|t=%d" buffer_width (strategy_tag strategy) n_tasks);
  List.iter
    (fun (m : Message.t) ->
      Buffer.add_string buf (Printf.sprintf "|%s:%d" m.Message.name (Message.trace_width m)))
    pool;
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents buf))
