(** Narrow file-IO interface the persistence layer is written against.

    Everything [Journal] and [Store] do to the filesystem goes through a
    {!t}: open-for-write, (possibly short) write, fsync, close, rename,
    unlink, exists, readdir, whole-file read and mkdir. Two
    implementations exist:

    - {!passthrough} forwards to the real filesystem ([Unix] / [Sys])
      and is the production path; it must be byte-for-byte transparent.
    - {!Fault} is a deterministic in-memory filesystem that injects
      short writes, [ENOSPC], [EIO], fsync-drop and simulated power
      cuts at any syscall boundary, so crash consistency can be proven
      by enumeration instead of hoped for.

    The model distinguishes a {e current} view (what reads observe) from
    a {e durable} view (what survives a power cut). Namespace operations
    (create/rename/unlink/mkdir) are durable immediately; file {e data}
    becomes durable only at [fsync]. A power cut resets current to
    durable — exactly the discipline journaling filesystems give
    applications, including the classic zero-length-file trap when a
    rename is not preceded by an fsync. *)

(** IO failure raised by every operation instead of [Unix_error] /
    [Sys_error], so callers can branch on [e_enospc] without parsing
    message text. *)
type error = { e_op : string; e_path : string; e_msg : string; e_enospc : bool }

exception Io_error of error

(** Simulated power cut: raised by the fault implementation when the
    configured crash point is reached. The payload is the syscall index
    at which power was lost. Code between the persistence layer and the
    torture harness must never swallow it — a real power cut does not
    run exception handlers. *)
exception Crash of int

type fd = int

type t = {
  openw : string -> fd;  (** create/truncate for writing (O_WRONLY|O_CREAT|O_TRUNC) *)
  write : fd -> string -> int -> int -> int;  (** may write fewer bytes than asked *)
  fsync : fd -> unit;
  close : fd -> unit;
  rename : string -> string -> unit;  (** [rename src dst]: atomic replace *)
  unlink : string -> unit;
  exists : string -> bool;
  readdir : string -> string array;
  read_file : string -> string;  (** whole-file read *)
  mkdir : string -> unit;  (** single level; an existing directory is not an error *)
}

val passthrough : t

(** [write_all t fd s] loops over short writes until all of [s] is
    written. *)
val write_all : t -> fd -> string -> unit

(** [atomic_replace t ~path text] writes [text] to [path ^ ".tmp"],
    fsyncs, closes, then renames over [path] — the only crash-safe
    whole-file update discipline this codebase uses. On failure the
    temp file is unlinked (best effort); a {!Crash} always propagates
    untouched. *)
val atomic_replace : t -> path:string -> string -> unit

val tmp_suffix : string

(** [is_tmp name] is true for in-flight temp files left by a crashed
    {!atomic_replace}. *)
val is_tmp : string -> bool

(** [sweep_tmp t ~dir] unlinks every stale [*.tmp] entry under [dir],
    bumps the [runtime.vfs.stale_tmp] counter per file and returns the
    swept basenames, sorted. *)
val sweep_tmp : t -> dir:string -> string list

(** Deterministic fault-injecting in-memory filesystem. *)
module Fault : sig
  type fs

  (** [create ?seed ()] builds an empty filesystem. [seed] (default 0)
      drives short-write split points. *)
  val create : ?seed:int -> unit -> fs

  val vfs : fs -> t

  (** Crash before executing syscall [k] (0-based): the first [k]
      operations run, the next raises {!Crash} after reverting the
      current view to the durable one. [None] disables. *)
  val set_crash_at : fs -> int option -> unit

  (** Every write is split at a seeded point (at least one byte still
      lands), so multi-write tails become reachable crash states. *)
  val set_short_writes : fs -> bool -> unit

  (** Total bytes of current file data the disk will hold; writes past
      it are short, then fail with an [ENOSPC] {!Io_error}. Unlinking
      files frees space. [None] = unbounded. *)
  val set_disk_budget : fs -> int option -> unit

  (** Fail syscall [k] with an [EIO] {!Io_error} (the op is counted but
      has no effect). *)
  val set_eio_at : fs -> int option -> unit

  (** When set, [fsync] is silently a no-op: written bytes never become
      durable and vanish at the next power cut — the pathological
      firmware lie. *)
  val set_drop_fsync : fs -> bool -> unit

  (** Number of syscalls executed so far (every {!t} operation counts as
      one). *)
  val syscalls : fs -> int

  val reset_syscalls : fs -> unit

  (** Revert the current view to the durable view and invalidate open
      fds, without raising. *)
  val power_cut : fs -> unit

  (** Durable view: [(path, contents)] sorted by path. *)
  val dump : fs -> (string * string) list

  (** Current view of one file, if it exists. *)
  val mem : fs -> string -> string option

  (** Test setup: seed a file in both views without counting syscalls. *)
  val install : fs -> path:string -> string -> unit
end
