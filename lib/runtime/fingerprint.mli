(** Run fingerprints: a stable identity for "the same selection problem".

    A checkpoint journal is only valid for the run configuration that
    wrote it — same message pool (names and widths), buffer width,
    strategy and task decomposition. The fingerprint digests exactly those
    inputs, so resuming against a different spec file, width or strategy
    is detected ([RT004]) instead of silently merging incompatible task
    results. The digest is FNV-1a 64-bit over a canonical rendering; it is
    deliberately independent of job count, budgets and checkpoint cadence,
    which do not change the answer. *)

open Flowtrace_core

(** [v ~pool ~buffer_width ~strategy ~n_tasks] renders the 16-hex-digit
    fingerprint. [pool] may be given in any order (it is canonicalized
    first). *)
val v :
  pool:Message.t list ->
  buffer_width:int ->
  strategy:Select.strategy ->
  n_tasks:int ->
  string
