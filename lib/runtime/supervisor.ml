module Tel = Flowtrace_telemetry.Telemetry

(* Task counts are partition-invariant (ok + gave-up = tasks attempted, and
   the retry count is fixed by the deterministic fault hook), so they are
   counters; which worker ran what is schedule-dependent and is not. *)
let c_ok = Tel.Counter.v "runtime.task.ok"
let c_retried = Tel.Counter.v "runtime.task.retried"
let c_failed = Tel.Counter.v "runtime.task.failed"

type task_status = Done | Gave_up of exn | Not_run

type summary = { statuses : task_status array; retried : int; stopped : bool }

let run ?(jobs = 1) ?(retries = 2) ?(backoff = Backoff.none)
    ?(should_stop = fun _ -> false) ?(inject = fun ~task:_ ~attempt:_ -> ()) ~tasks f =
  let n = Array.length tasks in
  let statuses = Array.make n Not_run in
  let next = Atomic.make 0 in
  let stop = Atomic.make false in
  let retried = Atomic.make 0 in
  let worker () =
    let continue = ref true in
    while !continue do
      if Atomic.get stop then continue := false
      else begin
        let slot = Atomic.fetch_and_add next 1 in
        if slot >= n then continue := false
        else begin
          let task = tasks.(slot) in
          let rec attempt k =
            match
              inject ~task ~attempt:k;
              f task
            with
            | () ->
                statuses.(slot) <- Done;
                Tel.Counter.incr c_ok
            | exception e when should_stop e ->
                (* cooperative stop: not a failure, nothing more to claim *)
                Atomic.set stop true;
                continue := false
            | exception e ->
                if k <= retries then begin
                  Atomic.incr retried;
                  Tel.Counter.incr c_retried;
                  Backoff.wait backoff ~task ~attempt:k;
                  attempt (k + 1)
                end
                else begin
                  statuses.(slot) <- Gave_up e;
                  Tel.Counter.incr c_failed
                end
          in
          attempt 1
        end
      end
    done
  in
  let domains = Array.init (max 1 jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  { statuses; retried = Atomic.get retried; stopped = Atomic.get stop }
