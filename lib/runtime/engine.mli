(** The supervised anytime selection engine.

    Runs the same task-split Step-1/2 walk as {!Flowtrace_core.Select},
    but under supervision: worker-domain faults are retried and contained
    ({!Supervisor}), wall-clock and candidate budgets degrade the answer
    instead of losing it ({!Budget}), and progress can be checkpointed to
    a crash-safe journal and resumed after a kill ({!Journal}).

    Determinism contract: a run that completes every task — whatever the
    job count, however many times tasks were retried, and across any
    kill/resume split — returns a result bit-identical to
    [Select.select]'s, because task bodies are transactional, the best
    candidate is unique under [Select.Path.better], and the journal stores
    the best's gain as IEEE-754 bits which resumption re-derives and
    verifies. Degraded (anytime) results are explicitly schedule-dependent
    and say so in their tier. *)

open Flowtrace_core

type status =
  | Complete  (** every task ran to completion; the result is exact *)
  | Partial
      (** some tasks failed permanently or a budget expired; the result
          is the best over the completed portion *)

type outcome = {
  o_result : Select.result;
  o_status : status;
  o_total_tasks : int;
  o_done_tasks : int;  (** completed tasks, including resumed ones *)
  o_resumed_tasks : int;  (** tasks skipped because the journal had them *)
  o_failed_tasks : int list;  (** task ids that exhausted their retries *)
  o_retries : int;  (** retry attempts performed this run *)
  o_diags : Flowtrace_analysis.Diagnostic.t list;
      (** non-fatal findings: recovered journal tails (RT006), disabled
          checkpointing after a write failure *)
}

(** Fraction of plan tasks whose subtrees were fully searched (1.0 when
    the plan is empty). *)
val completeness : outcome -> float

(** One-line supervision summary (tasks, retries, failures, resume), for
    the CLI to print alongside [Select.pp_result]. *)
val pp_outcome : Format.formatter -> outcome -> unit

(** [select inter ~buffer_width] runs the supervised engine.

    - [strategy] (default [Exact]), [limit], [pack], [scale_partial] mean
      what they mean in {!Flowtrace_core.Select.select}; [Greedy] is
      delegated to it directly (nothing to supervise).
    - [jobs] (default 1) worker domains; [retries] (default 2) extra
      attempts per faulting task; [backoff] (default {!Backoff.none})
      delays retries without changing any result bit.
    - [deadline] (absolute [Unix.gettimeofday] time) and [max_candidates]
      degrade the run to an anytime result when exhausted; [stride] is
      forwarded to {!Budget.make} (how many candidates may stream between
      deadline checks).
    - [checkpoint] journals progress to the given path every
      [checkpoint_every] (default 1) completed tasks and once at the end.
    - [resume] loads [checkpoint] first (a missing file starts fresh) and
      skips the tasks it records. A journal from a different spec, width,
      strategy or plan shape is rejected with RT004; corrupt journals
      report the RT codes of {!Journal.load}.
    - [inject] is the deterministic fault hook forwarded to
      {!Supervisor.run} (test use only).

    Returns [Error diags] only for journal problems; selection failures
    ([Combination.Too_many], nothing fits) raise as they do in core. *)
val select :
  ?strategy:Select.strategy ->
  ?limit:int ->
  ?jobs:int ->
  ?retries:int ->
  ?backoff:Backoff.t ->
  ?deadline:float ->
  ?max_candidates:int ->
  ?stride:int ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?checkpoint_every:int ->
  ?pack:bool ->
  ?scale_partial:bool ->
  ?inject:(task:int -> attempt:int -> unit) ->
  Interleave.t ->
  buffer_width:int ->
  (outcome, Flowtrace_analysis.Diagnostic.t list) result
