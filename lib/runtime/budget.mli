(** Cooperative run budgets: wall-clock deadline and candidate cap.

    One budget is shared by every worker domain of a supervised run; the
    candidate counter is atomic, so the [max_candidates] cap is enforced
    globally, and expiry is sticky — once any worker trips a budget, every
    subsequent {!tick} on any domain raises, so all workers stop at their
    next candidate. The deadline is only consulted every [stride]
    candidates (default {!default_stride}); the hot path costs one atomic
    increment and a couple of compares. A smaller stride tightens the
    worst-case overrun — expiry is always detected within one stride of
    ticks past the deadline — at the price of more clock reads; the
    service layer uses a small stride so per-request deadlines are honored
    promptly. *)

(** Raised by {!tick} when a budget has expired. Not an error: the engine
    catches it and degrades to an anytime result. *)
exception Expired

type t

(** How many {!tick}s may pass between deadline checks by default. *)
val default_stride : int

(** [make ()] builds a budget. [deadline] is an absolute
    [Unix.gettimeofday] time; [max_candidates] caps candidates explored by
    this run; [limit] (default {!Flowtrace_core.Combination.default_limit})
    is the hard enumeration guard — exceeding it raises
    [Combination.Too_many] from {!tick}, exactly like the unsupervised
    engine. [stride] (default {!default_stride}) is the tick interval
    between wall-clock deadline checks; raises [Invalid_argument] when it
    is less than 1. *)
val make :
  ?deadline:float -> ?max_candidates:int -> ?limit:int -> ?stride:int -> unit -> t

(** [tick b] counts one candidate. Raises {!Expired} on budget expiry
    (sticky) and [Combination.Too_many] past [limit]. *)
val tick : t -> unit

(** Candidates counted so far (including retried tasks' re-walks). *)
val explored : t -> int

(** Whether some budget has expired. *)
val expired : t -> bool

(** [already_expired b] — true when the deadline lies in the past right
    now (checked eagerly, before any walking starts). *)
val already_expired : t -> bool

(** Force expiry (used when an external stop is requested). *)
val expire : t -> unit
