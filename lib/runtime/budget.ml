open Flowtrace_core

exception Expired

type t = {
  deadline : float option;
  max_candidates : int option;
  limit : int;
  stride : int;
  count : int Atomic.t;
  stop : bool Atomic.t;
}

let default_stride = 256

let make ?deadline ?max_candidates ?(limit = Combination.default_limit)
    ?(stride = default_stride) () =
  if stride < 1 then invalid_arg "Budget.make: stride must be at least 1";
  {
    deadline;
    max_candidates;
    limit;
    stride;
    count = Atomic.make 0;
    stop = Atomic.make false;
  }

let deadline_passed b =
  match b.deadline with None -> false | Some d -> Unix.gettimeofday () > d

let already_expired = deadline_passed

let expire b = Atomic.set b.stop true

let tick b =
  if Atomic.get b.stop then raise Expired;
  let c = Atomic.fetch_and_add b.count 1 + 1 in
  if c > b.limit then raise (Combination.Too_many b.limit);
  (match b.max_candidates with
  | Some m when c > m ->
      Atomic.set b.stop true;
      raise Expired
  | _ -> ());
  if c mod b.stride = 0 && deadline_passed b then begin
    Atomic.set b.stop true;
    raise Expired
  end

let explored b =
  let c = Atomic.get b.count in
  match b.max_candidates with Some m -> min c m | None -> c

let expired b = Atomic.get b.stop
