(** The word-parallel selection kernel.

    Precomputes per-message statistics of an interleaved flow into flat
    arrays over the canonical (width-ascending) pool — trace widths, gain
    terms, suffix term sums, and per-message destination-state bitsets
    ({!Bitset}) — and represents a candidate combination as one int mask
    over pool slots. Step-1/2 enumeration then runs on ints and floats
    only, and coverage becomes a word-OR/popcount fold.

    Bit-identity contract: takes along any root-to-leaf walk path happen
    in ascending slot order, so accumulating term array entries in that
    order reproduces the streaming engine's incremental float sums
    exactly; the task decomposition is {!Combination.plan}'s, so counter
    totals and [Too_many] behavior are shared by construction, and the
    unique best under the deterministic comparator is identical at any
    job count. *)

type t

(** Pool slots a mask can address (62 — one OCaml int, sign bit unused).
    {!make} rejects larger pools; [Select] falls back to the streaming
    engine for them. *)
val max_pool : int

(** [make inter] precomputes the kernel: builds the evaluator, the term
    and width arrays, the suffix sums and the per-message state bitsets.
    One O(pool + edges) pass; the result is immutable and safe to share
    read-only across domains. Raises [Invalid_argument] when the pool
    exceeds {!max_pool}. *)
val make : Interleave.t -> t

val n_messages : t -> int

(** The canonical width-ascending pool; masks index into it. *)
val pool : t -> Message.t array

(** [mask_of_names k names] is the mask selecting the named pool slots,
    or [None] if any name is not in the pool. *)
val mask_of_names : t -> string list -> int option

(** Pool messages of a mask in ascending slot (take) order — the order
    selection results list messages in. *)
val messages_of_mask : t -> int -> Message.t list

(** Ascending-slot term sum: bit-identical to the gain a live walk
    computes for the same candidate. *)
val gain_of_mask : t -> int -> float

(** Summed trace width of a mask's messages. *)
val bits_of_mask : t -> int -> int

(** Sorted name list — the deterministic tie-break key. *)
val key_of_mask : t -> int -> string list

(** [coverage k ~selected] is Definition 7 computed as a word-parallel
    union/popcount over the per-message state bitsets — identical to
    [Coverage.compute] on the same predicate. *)
val coverage : t -> selected:(string -> bool) -> float

(** Outcome of an exact kernel fold. [sel_streamed] counts candidates
    ticked (before the maximality filter), [sel_scored] the leaves scored
    — the same quantities the streaming engine's telemetry counters
    report, partition-invariant across job counts. *)
type selection = {
  sel_messages : Message.t list;
  sel_gain : float;
  sel_streamed : int;
  sel_scored : int;
}

(** [select_exact ~limit ~jobs k ~buffer_width] is the exact Step-1/2
    fold on the kernel: same plan split, same domain fan-out and same
    atomic candidate budget as the streaming engine, bit-identical
    results. [None] when no message fits. Raises [Combination.Too_many]
    past [limit] candidates. *)
val select_exact :
  ?only_maximal:bool -> limit:int -> jobs:int -> t -> buffer_width:int -> selection option

(** Outcome of a delta re-selection. [r_seeds] counts the distinct
    feasible seeds re-scored; [r_streamed]/[r_scored] count the
    branch-and-bound walk's work (strictly fewer than a full fold when a
    seed prunes anything); [r_pruned_subtrees] the subtrees cut. All
    partition-invariant across job counts. *)
type reselection = {
  r_messages : Message.t list;
  r_gain : float;
  r_seeds : int;
  r_streamed : int;
  r_scored : int;
  r_pruned_subtrees : int;
}

(** [reselect ~limit ~jobs ~seeds k ~buffer_width] is {!select_exact} as
    an exact branch-and-bound: each seed (a candidate as a message-name
    list, typically a journalled best from a prior run of a slightly
    different scenario) is re-scored under this kernel's terms; seeds
    naming unknown messages, empty ones and ones that no longer fit are
    dropped. The best seed gain becomes the pruning incumbent: a subtree
    is cut when its inflated upper bound (prefix gain + remaining suffix
    term sum) is strictly below the incumbent, which can never exclude a
    leaf that would win or tie — the result is bit-identical to a
    from-scratch run. Pruning uses task-local incumbents only, so the
    counters are deterministic at any job count. With no usable seed the
    walk degenerates to the full exact fold. *)
val reselect :
  ?only_maximal:bool ->
  limit:int ->
  jobs:int ->
  seeds:string list list ->
  t ->
  buffer_width:int ->
  reselection option
