(* Step 1: enumerate candidate message combinations under the trace-buffer
   width constraint (Section 3.1).

   The search sorts messages by ascending width and prunes branches whose
   remaining minimum width cannot fit, so it only visits feasible subsets.
   [Too_many] guards against combinatorial blow-up; large scenarios should
   use the greedy strategy in {!Select}.

   Two interfaces share one width-pruned subset-tree walk:
   - {!fold_candidates} streams every candidate through a fold in constant
     memory (no candidate list is ever materialized);
   - {!plan}/{!fold_task} split the tree at a fixed prefix depth into
     independent subtrees, so callers can fan the walk out across OCaml 5
     domains. Every root-to-leaf path passes through exactly one prefix,
     hence the tasks partition the candidate set. *)

exception Too_many of int

let default_limit = 1_000_000

(* Width-ascending pool; List.sort is stable, so equal-width messages keep
   their pool order and the walk visits candidates in a reproducible order. *)
let sorted_pool messages =
  Array.of_list
    (List.sort
       (fun a b -> compare (Message.trace_width a) (Message.trace_width b))
       messages)

let canonical_pool messages = Array.to_list (sorted_pool messages)

(* Per-slot trace widths of a sorted pool, precomputed once so the walk's
   hot recursion reads an int array instead of re-deriving width/beats
   arithmetic at every node. *)
let pool_widths arr = Array.map Message.trace_width arr

(* The core walk. [path] is caller state threaded along the current branch
   (extended by [take] whenever a message is added); [leaf] folds over
   emitted candidates; [tick] fires once per non-empty candidate *before*
   the maximality filter, so a candidate budget counts exactly what
   materializing enumeration used to count (it may raise to abort).

   With [only_maximal], a candidate is emitted only when no fitting strict
   superset exists. Every pool message is either taken or skipped along a
   root-to-leaf path, so that holds exactly when the narrowest skipped
   message no longer fits the remaining width — an O(1) streaming test,
   tracked as [min_skipped]. *)
let walk arr warr ~start ~remaining ~taken ~min_skipped ~only_maximal ~tick ~take ~path ~leaf
    ~init =
  let n = Array.length arr in
  let rec go i remaining taken min_skipped path acc =
    if i = n then
      if taken = 0 then acc
      else begin
        tick ();
        if only_maximal && min_skipped <= remaining then acc else leaf acc path
      end
    else begin
      let w = warr.(i) in
      (* skip arr.(i) *)
      let acc = go (i + 1) remaining taken (min min_skipped w) path acc in
      (* take arr.(i) if it fits; messages are width-sorted so if this one
         does not fit, none of the rest do either *)
      if w <= remaining then
        go (i + 1) (remaining - w) (taken + 1) min_skipped (take path arr.(i)) acc
      else acc
    end
  in
  go start remaining taken min_skipped path init

let fold_candidates ?(limit = default_limit) ?(only_maximal = false) messages ~width ~init ~f =
  if width <= 0 then invalid_arg "Combination.fold_candidates: width must be positive";
  let arr = sorted_pool messages in
  let count = ref 0 in
  let tick () =
    incr count;
    if !count > limit then raise (Too_many limit)
  in
  walk arr (pool_widths arr) ~start:0 ~remaining:width ~taken:0 ~min_skipped:max_int
    ~only_maximal ~tick
    ~take:(fun acc m -> m :: acc)
    ~path:[]
    ~leaf:(fun acc rev -> f acc (List.rev rev))
    ~init

(* ------------------------------------------------------------------ *)
(* Parallel decomposition *)

type task = {
  t_start : int;  (* next undecided pool index *)
  t_remaining : int;
  t_taken : Message.t list;  (* prefix takes, in take (width-ascending) order *)
  t_n_taken : int;
  t_min_skipped : int;
}

type plan = { p_arr : Message.t array; p_widths : int array; p_tasks : task array }

let plan ?(depth = 10) messages ~width =
  if width <= 0 then invalid_arg "Combination.plan: width must be positive";
  let arr = sorted_pool messages in
  let warr = pool_widths arr in
  let d = min (max depth 0) (Array.length arr) in
  let tasks = ref [] in
  let rec go i remaining taken n_taken min_skipped =
    if i = d then
      tasks :=
        {
          t_start = i;
          t_remaining = remaining;
          t_taken = List.rev taken;
          t_n_taken = n_taken;
          t_min_skipped = min_skipped;
        }
        :: !tasks
    else begin
      let w = warr.(i) in
      go (i + 1) remaining taken n_taken (min min_skipped w);
      if w <= remaining then go (i + 1) (remaining - w) (arr.(i) :: taken) (n_taken + 1) min_skipped
    end
  in
  go 0 width [] 0 max_int;
  { p_arr = arr; p_widths = warr; p_tasks = Array.of_list (List.rev !tasks) }

let n_tasks plan = Array.length plan.p_tasks

(* Plan internals for the word-parallel kernel (Kernel): it drives the
   same task decomposition with its own mask-based walk, so the per-task
   candidate partition — and hence counter totals and Too_many behavior —
   is shared with the streaming folds by construction. *)
let plan_pool plan = plan.p_arr
let task_start plan idx = plan.p_tasks.(idx).t_start
let task_remaining plan idx = plan.p_tasks.(idx).t_remaining
let task_min_skipped plan idx = plan.p_tasks.(idx).t_min_skipped
let task_taken plan idx = plan.p_tasks.(idx).t_taken

let fold_task plan idx ?(only_maximal = false) ~tick ~take ~path ~leaf ~init =
  let t = plan.p_tasks.(idx) in
  let path = List.fold_left take path t.t_taken in
  walk plan.p_arr plan.p_widths ~start:t.t_start ~remaining:t.t_remaining ~taken:t.t_n_taken
    ~min_skipped:t.t_min_skipped ~only_maximal ~tick ~take ~path ~leaf ~init

(* ------------------------------------------------------------------ *)
(* Materializing conveniences, kept for callers that want explicit lists *)

let enumerate ?(limit = default_limit) messages ~width =
  if width <= 0 then invalid_arg "Combination.enumerate: width must be positive";
  fold_candidates ~limit messages ~width ~init:[] ~f:(fun acc c -> c :: acc)

(* Keep only combinations that are maximal under inclusion among those that
   fit. Because information gain is monotone in the message set, a maximal
   combination always scores at least as high as any of its subsets; the
   exact-maximal strategy uses the equivalent streaming filter above. *)
let maximal_only combos =
  let name_set combo =
    List.sort_uniq String.compare (List.map (fun m -> m.Message.name) combo)
  in
  let with_sets = List.map (fun c -> (c, name_set c)) combos in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  List.filter_map
    (fun (c, s) ->
      let dominated =
        List.exists (fun (_, s') -> List.length s' > List.length s && subset s s') with_sets
      in
      if dominated then None else Some c)
    with_sets

let count messages ~width =
  if width <= 0 then invalid_arg "Combination.count: width must be positive";
  let arr = sorted_pool messages in
  walk arr (pool_widths arr) ~start:0 ~remaining:width ~taken:0 ~min_skipped:max_int
    ~only_maximal:false
    ~tick:(fun () -> ())
    ~take:(fun () _ -> ())
    ~path:()
    ~leaf:(fun acc () -> acc + 1)
    ~init:0

let fits messages ~width = Message.total_width messages <= width
