(* Interleaved flows (Definition 5), generalized from two to n legally
   indexed flow instances.

   The product is built by forward exploration from the cross product of the
   component initial states. The transition rule is the n-ary form of the
   paper's rules i/ii: component [i] may fire one of its transitions from a
   product state iff every other component currently sits outside its Atom
   set. Consequently no reachable product state has two atomic components,
   which is exactly the mutex the Atom set encodes. *)

type instance = { flow : Flow.t; index : int }

(* Compiled form of one component flow: arrays indexed by a dense state id. *)
type compiled = {
  c_names : string array;
  c_out : (string * int) list array; (* message name, destination state id *)
  c_atomic : bool array;
  c_stop : bool array;
  c_initial : int list;
}

type edge = { e_src : int; e_msg : Indexed.t; e_dst : int }

type t = {
  instances : instance array;
  compiled : compiled array;
  n_states : int;
  state_comps : int array array;
  initials : int list;
  stops : int list;
  is_stop : bool array;
  edges : edge list;
  out_edges : (Indexed.t * int) list array;
  in_edges : (Indexed.t * int) list array;
  n_edges : int;
  messages : Message.t list;
}

exception Not_legally_indexed of string
exception Message_clash of string
exception Too_large of int

let compile (flow : Flow.t) =
  let n = List.length flow.Flow.states in
  let idx = Hashtbl.create n in
  List.iteri (fun i s -> Hashtbl.replace idx s i) flow.Flow.states;
  let c_names = Array.of_list flow.Flow.states in
  let c_out = Array.make n [] in
  (* prepend and reverse once: growing each adjacency list with @-append
     was quadratic in a state's out-degree *)
  List.iter
    (fun (tr : Flow.transition) ->
      let s = Hashtbl.find idx tr.Flow.t_src and d = Hashtbl.find idx tr.Flow.t_dst in
      c_out.(s) <- (tr.Flow.t_msg, d) :: c_out.(s))
    flow.Flow.transitions;
  for s = 0 to n - 1 do
    c_out.(s) <- List.rev c_out.(s)
  done;
  let mem l s = List.exists (String.equal s) l in
  let c_atomic = Array.map (mem flow.Flow.atomic) c_names in
  let c_stop = Array.map (mem flow.Flow.stop) c_names in
  let c_initial = List.map (Hashtbl.find idx) flow.Flow.initial in
  { c_names; c_out; c_atomic; c_stop; c_initial }

(* Union of the messages of all participating flows, deduplicated by name.
   Two flows may share a message (the same interface register observed by
   both protocols); their declared widths must then agree. *)
let union_messages instances =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  Array.iter
    (fun inst ->
      List.iter
        (fun (m : Message.t) ->
          match Hashtbl.find_opt tbl m.Message.name with
          | None ->
              Hashtbl.replace tbl m.Message.name m;
              order := m :: !order
          | Some m' ->
              if m'.Message.width <> m.Message.width then
                raise
                  (Message_clash
                     (Printf.sprintf "message %s declared with widths %d and %d" m.Message.name
                        m'.Message.width m.Message.width)))
        inst.flow.Flow.messages)
    instances;
  List.rev !order

let cartesian_initials compiled =
  let rec go i acc =
    if i = Array.length compiled then [ Array.of_list (List.rev acc) ]
    else List.concat_map (fun s0 -> go (i + 1) (s0 :: acc)) compiled.(i).c_initial
  in
  go 0 []

let default_max_states = 2_000_000

let make ?(max_states = default_max_states) instance_list =
  let instances = Array.of_list instance_list in
  if Array.length instances = 0 then invalid_arg "Interleave.make: no instances";
  (* Legal indexing (Definition 4): same flow => distinct indices. *)
  let keys = Array.to_list (Array.map (fun i -> (i.flow.Flow.name, i.index)) instances) in
  let sorted = List.sort compare keys in
  let rec dup = function
    | (a, i) :: ((b, j) :: _ as rest) ->
        if String.equal a b && i = j then Some (a, i) else dup rest
    | _ -> None
  in
  (match dup sorted with
  | Some (f, i) ->
      raise (Not_legally_indexed (Printf.sprintf "flow %s appears twice with index %d" f i))
  | None -> ());
  let compiled = Array.map (fun i -> compile i.flow) instances in
  let messages = union_messages instances in
  let n_inst = Array.length instances in
  let table : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let states = ref [] in
  let n_states = ref 0 in
  let intern comps =
    match Hashtbl.find_opt table comps with
    | Some id -> (id, false)
    | None ->
        let id = !n_states in
        if id >= max_states then raise (Too_large max_states);
        Hashtbl.replace table comps id;
        states := comps :: !states;
        incr n_states;
        (id, true)
  in
  let worklist = Queue.create () in
  let initial_comps = cartesian_initials compiled in
  let initials =
    List.map
      (fun comps ->
        let id, fresh = intern comps in
        if fresh then Queue.add (id, comps) worklist;
        id)
      initial_comps
  in
  let edges = ref [] in
  let n_edges = ref 0 in
  while not (Queue.is_empty worklist) do
    let src_id, comps = Queue.pop worklist in
    for i = 0 to n_inst - 1 do
      let others_non_atomic =
        let ok = ref true in
        for j = 0 to n_inst - 1 do
          if j <> i && compiled.(j).c_atomic.(comps.(j)) then ok := false
        done;
        !ok
      in
      if others_non_atomic then
        List.iter
          (fun (msg, dst_comp) ->
            let comps' = Array.copy comps in
            comps'.(i) <- dst_comp;
            let dst_id, fresh = intern comps' in
            if fresh then Queue.add (dst_id, comps') worklist;
            let e_msg = Indexed.make msg instances.(i).index in
            edges := { e_src = src_id; e_msg; e_dst = dst_id } :: !edges;
            incr n_edges)
          compiled.(i).c_out.(comps.(i))
    done
  done;
  let n = !n_states in
  let state_comps = Array.make n [||] in
  List.iter (fun comps -> state_comps.(Hashtbl.find table comps) <- comps) !states;
  let is_stop = Array.make n false in
  for s = 0 to n - 1 do
    let comps = state_comps.(s) in
    let all_stop = ref true in
    Array.iteri (fun i c -> if not compiled.(i).c_stop.(c) then all_stop := false) comps;
    is_stop.(s) <- !all_stop
  done;
  let stops = List.filter (fun s -> is_stop.(s)) (List.init n Fun.id) in
  let out_edges = Array.make n [] and in_edges = Array.make n [] in
  List.iter
    (fun e ->
      out_edges.(e.e_src) <- (e.e_msg, e.e_dst) :: out_edges.(e.e_src);
      in_edges.(e.e_dst) <- (e.e_msg, e.e_src) :: in_edges.(e.e_dst))
    !edges;
  {
    instances;
    compiled;
    n_states = n;
    state_comps;
    initials;
    stops;
    is_stop;
    edges = !edges;
    out_edges;
    in_edges;
    n_edges = !n_edges;
    messages;
  }

let of_flows ?max_states flows =
  (* Convenience: index flows 1..n in order. *)
  make ?max_states (List.mapi (fun i f -> { flow = f; index = i + 1 }) flows)

let n_states t = t.n_states
let n_edges t = t.n_edges
let initials t = t.initials
let stops t = t.stops
let is_stop t s = t.is_stop.(s)
let messages t = t.messages
let edges t = t.edges
let out_edges t s = t.out_edges.(s)
let in_edges t s = t.in_edges.(s)

let successors t s = List.map snd t.out_edges.(s)

let state_name t s =
  let comps = t.state_comps.(s) in
  let parts =
    Array.to_list
      (Array.mapi
         (fun i c -> Printf.sprintf "%s%d" t.compiled.(i).c_names.(c) t.instances.(i).index)
         comps)
  in
  "(" ^ String.concat "," parts ^ ")"

let message t name = List.find_opt (fun m -> String.equal m.Message.name name) t.messages

let message_exn t name =
  match message t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Interleave.message_exn: no message %s" name)

let total_paths t =
  Dag.count_paths ~n:t.n_states ~succ:(successors t) ~sources:t.initials
    ~is_sink:(fun s -> t.is_stop.(s))

(* All executions of the product as indexed traces. Exponential in general;
   guarded by [limit] like [Flow.executions] — callers wanting graceful
   degradation catch the [Failure]. *)
let executions ?(limit = 1_000_000) t =
  let count = ref 0 in
  let rec go s acc =
    if !count > limit then failwith "Interleave.executions: limit exceeded";
    if t.is_stop.(s) then begin
      incr count;
      [ List.rev acc ]
    end
    else List.concat_map (fun (msg, dst) -> go dst (msg :: acc)) t.out_edges.(s)
  in
  List.concat_map (fun s0 -> go s0 []) t.initials

let indexed_instances_of t base =
  Array.to_list
    (Array.map (fun i -> Indexed.make base i.index)
       (Array.of_list
          (List.filter
             (fun inst -> List.exists (fun (m : Message.t) -> String.equal m.Message.name base) inst.flow.Flow.messages)
             (Array.to_list t.instances))))

let pp ppf t =
  Format.fprintf ppf "interleaving of %d instances: %d states, %d edges, %d initial, %d stop"
    (Array.length t.instances) t.n_states t.n_edges (List.length t.initials)
    (List.length t.stops)
