module SMap = Map.Make (String)
module SSet = Set.Make (String)

type transition = { t_src : string; t_msg : string; t_dst : string }

type t = {
  name : string;
  states : string list;
  initial : string list;
  stop : string list;
  atomic : string list;
  messages : Message.t list;
  transitions : transition list;
}

exception Invalid of string * string list

let transition t_src t_msg t_dst = { t_src; t_msg; t_dst }

let message t name = List.find_opt (fun m -> String.equal m.Message.name name) t.messages

let message_exn t name =
  match message t name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Flow.message_exn: %s has no message %s" t.name name)

let successors t s = List.filter (fun tr -> String.equal tr.t_src s) t.transitions

let predecessors t s = List.filter (fun tr -> String.equal tr.t_dst s) t.transitions

let is_stop t s = List.exists (String.equal s) t.stop
let is_atomic t s = List.exists (String.equal s) t.atomic
let is_initial t s = List.exists (String.equal s) t.initial

(* Reachability over the transition graph restricted to [edges]. *)
let reachable_from starts edges =
  let adj =
    List.fold_left
      (fun acc (a, b) ->
        SMap.update a (function None -> Some [ b ] | Some l -> Some (b :: l)) acc)
      SMap.empty edges
  in
  let rec go seen = function
    | [] -> seen
    | s :: rest ->
        if SSet.mem s seen then go seen rest
        else
          let nexts = Option.value ~default:[] (SMap.find_opt s adj) in
          go (SSet.add s seen) (nexts @ rest)
  in
  go SSet.empty starts

(* Cycle detection by iterated removal of sources (Kahn). *)
let is_dag states edges =
  let indeg = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace indeg s 0) states;
  List.iter
    (fun (_, b) ->
      match Hashtbl.find_opt indeg b with
      | Some d -> Hashtbl.replace indeg b (d + 1)
      | None -> ())
    edges;
  let queue = Queue.create () in
  Hashtbl.iter (fun s d -> if d = 0 then Queue.add s queue) indeg;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    incr removed;
    List.iter
      (fun (a, b) ->
        if String.equal a s then begin
          let d = Hashtbl.find indeg b - 1 in
          Hashtbl.replace indeg b d;
          if d = 0 then Queue.add b queue
        end)
      edges
  done;
  !removed = List.length states

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let states = SSet.of_list t.states in
  if t.name = "" then err "flow has an empty name";
  if t.states = [] then err "flow %s has no states" t.name;
  if List.length (List.sort_uniq String.compare t.states) <> List.length t.states then
    err "flow %s has duplicate state names" t.name;
  if t.initial = [] then err "flow %s has no initial state" t.name;
  if t.stop = [] then err "flow %s has no stop state" t.name;
  let check_subset what l =
    List.iter (fun s -> if not (SSet.mem s states) then err "flow %s: %s state %s undeclared" t.name what s) l
  in
  check_subset "initial" t.initial;
  check_subset "stop" t.stop;
  check_subset "atomic" t.atomic;
  List.iter
    (fun s ->
      if List.exists (String.equal s) t.atomic then
        err "flow %s: state %s is both stop and atomic (Sp ∩ Atom must be empty)" t.name s)
    t.stop;
  let msg_names = List.map (fun m -> m.Message.name) t.messages in
  if List.length (List.sort_uniq String.compare msg_names) <> List.length msg_names then
    err "flow %s has duplicate message names" t.name;
  List.iter
    (fun tr ->
      if not (SSet.mem tr.t_src states) then err "flow %s: transition from undeclared state %s" t.name tr.t_src;
      if not (SSet.mem tr.t_dst states) then err "flow %s: transition to undeclared state %s" t.name tr.t_dst;
      if not (List.exists (String.equal tr.t_msg) msg_names) then
        err "flow %s: transition uses undeclared message %s" t.name tr.t_msg)
    t.transitions;
  (* Graph checks only consider edges between declared states; edges using
     undeclared states were already reported above. *)
  let edges =
    List.filter_map
      (fun tr ->
        if SSet.mem tr.t_src states && SSet.mem tr.t_dst states then Some (tr.t_src, tr.t_dst)
        else None)
      t.transitions
  in
  if not (is_dag t.states edges) then err "flow %s is not a DAG" t.name;
  List.iter
    (fun s ->
      if is_stop t s && successors t s <> [] then
        err "flow %s: stop state %s has outgoing transitions" t.name s)
    t.states;
  (* Every state must be reachable from an initial state and must reach a
     stop state; otherwise executions can strand (Definition 2 requires every
     execution to end in a stop state). *)
  let fwd = reachable_from t.initial edges in
  let bwd = reachable_from t.stop (List.map (fun (a, b) -> (b, a)) edges) in
  List.iter
    (fun s ->
      if not (SSet.mem s fwd) then err "flow %s: state %s unreachable from initial states" t.name s;
      if not (SSet.mem s bwd) then err "flow %s: state %s cannot reach a stop state" t.name s)
    t.states;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

let make ~name ~states ~initial ~stop ?(atomic = []) ~messages ~transitions () =
  let t = { name; states; initial; stop; atomic; messages; transitions } in
  match validate t with Ok () -> t | Error es -> raise (Invalid (name, es))

let n_states t = List.length t.states
let n_messages t = List.length t.messages

let equal_transition a b =
  String.equal a.t_src b.t_src && String.equal a.t_msg b.t_msg && String.equal a.t_dst b.t_dst

let equal a b =
  let slist x y = List.equal String.equal x y in
  String.equal a.name b.name && slist a.states b.states && slist a.initial b.initial
  && slist a.stop b.stop && slist a.atomic b.atomic
  && List.equal Message.equal a.messages b.messages
  && List.equal equal_transition a.transitions b.transitions

(* All maximal executions (paths from an initial to a stop state) as message
   sequences. Exponential in general; used on small flows and guarded by
   [limit]. *)
let executions ?(limit = 1_000_000) t =
  let count = ref 0 in
  let rec go s acc =
    if !count > limit then failwith "Flow.executions: limit exceeded";
    if is_stop t s then begin
      incr count;
      [ List.rev acc ]
    end
    else
      List.concat_map (fun tr -> go tr.t_dst (tr.t_msg :: acc)) (successors t s)
  in
  List.concat_map (fun s0 -> go s0 []) t.initial

(* Executions with their state paths, for static debuggability analysis
   ([lib/analysis]'s flowcheck): unlike [executions] this truncates
   gracefully — whole-scenario checks must degrade, not die, on a flow
   with too many paths. *)
let paths ?(limit = 1_000_000) t =
  let count = ref 0 and truncated = ref false in
  let rec go s trace states =
    if !count >= limit then begin
      truncated := true;
      []
    end
    else if is_stop t s then begin
      incr count;
      [ (List.rev trace, List.rev (s :: states)) ]
    end
    else
      List.concat_map (fun tr -> go tr.t_dst (tr.t_msg :: trace) (s :: states)) (successors t s)
  in
  let ps = List.concat_map (fun s0 -> go s0 [] []) t.initial in
  (ps, !truncated)

(* Message-adjacency bigrams of the execution language. Because [make]
   guarantees every state is reachable from an initial state and reaches a
   stop state, every structurally adjacent transition pair lies on some
   execution and vice versa — so the structural scan below equals the
   bigram set over all executions without enumerating them. State names
   never appear, which is what makes mined-vs-truth comparison
   renaming-invariant. *)
let bigram_start = "^"
let bigram_stop = "$"

let bigrams t =
  let starts =
    List.filter_map
      (fun tr -> if is_initial t tr.t_src then Some (bigram_start, tr.t_msg) else None)
      t.transitions
  in
  let stops =
    List.filter_map
      (fun tr -> if is_stop t tr.t_dst then Some (tr.t_msg, bigram_stop) else None)
      t.transitions
  in
  let mids =
    List.concat_map
      (fun tr ->
        List.filter_map
          (fun tr' ->
            if String.equal tr'.t_src tr.t_dst then Some (tr.t_msg, tr'.t_msg) else None)
          t.transitions)
      t.transitions
  in
  List.sort_uniq compare (starts @ mids @ stops)

let pp ppf t =
  Format.fprintf ppf "@[<v>flow %s (%d states, %d messages, %d transitions)@]" t.name
    (n_states t) (n_messages t) (List.length t.transitions)
