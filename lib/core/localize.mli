(** Path localization (Section 5.2).

    Given an interleaved flow, the set of traced (selected) base messages
    and the observed trace — the sequence of indexed messages that appeared
    in the trace buffer — count how many executions remain consistent.
    Localization is that count over the total number of executions; Table 3
    reports it as a percentage ("paths needed to explore"). *)

(** [Exact]: a path matches when its projection onto the selected messages
    equals the observation (completed executions). [Prefix]: the
    projection merely starts with the observation (mid-execution
    localization). [Suffix]: the projection ends with the observation —
    the wrapped-trace-buffer case, where only the last entries survive
    overwriting. *)
type semantics = Exact | Prefix | Suffix

(** [project ~selected trace] is the projection of an (indexed) message
    sequence onto the selected base messages — the observation an ideal
    trace buffer holding exactly [selected] would record for that
    execution. The static debuggability analysis compares projected trace
    languages through this seam. *)
val project : selected:(string -> bool) -> Indexed.t list -> Indexed.t list

(** [consistent_paths inter ~selected ~observed] counts (saturating)
    consistent initial-to-stop paths. [selected] accepts base message
    names; [observed] is the trace-buffer content in order. *)
val consistent_paths :
  ?semantics:semantics ->
  Interleave.t ->
  selected:(string -> bool) ->
  observed:Indexed.t list ->
  int

(** [fraction] is {!consistent_paths} over {!Interleave.total_paths}. *)
val fraction :
  ?semantics:semantics ->
  Interleave.t ->
  selected:(string -> bool) ->
  observed:Indexed.t list ->
  float

(** {1 Gap-tolerant (lossy) localization}

    Real trace infrastructure drops, reorders and truncates
    observations. Under the lossy semantics the observation is matched
    as a {e subsequence} of each path's projection: a selected emission
    that does not match the next observation entry may be skipped, each
    skip charged against a bounded budget. A budget of [0] is
    behaviourally identical to {!Exact} (or {!Prefix} when that
    semantics is requested). Observation entries that {e no} path can
    produce (e.g. long-range reordering) are handled by minimal-discard
    resynchronization: the blocking entry is removed, charged against
    the same budget, and matching retried. *)

(** Degradation report for one lossy localization query. *)
type lossy_report = {
  lr_consistent : int;  (** paths consistent after resynchronization *)
  lr_total : int;  (** all initial-to-stop paths, for the fraction *)
  lr_discarded : int;  (** observation entries removed to resynchronize *)
  lr_skips : int;  (** minimal skipped emissions over consistent paths *)
  lr_budget : int;  (** the skip budget the query was given *)
  lr_confidence : float;
      (** fraction of the budget left unused ([1.0] when nothing was
          skipped or the budget was 0 and matching succeeded; [0.0]
          when no consistent path was found) *)
}

(** [lossy ?semantics ?skip_budget inter ~selected ~observed] counts
    paths consistent with a lossy observation. [semantics] may be
    {!Exact} (default) or {!Prefix}; {!Suffix} raises
    [Invalid_argument]. [skip_budget] defaults to [0], making the call
    equivalent to {!consistent_paths}. *)
val lossy :
  ?semantics:semantics ->
  ?skip_budget:int ->
  Interleave.t ->
  selected:(string -> bool) ->
  observed:Indexed.t list ->
  lossy_report

(** [lossy_fraction r] is [r.lr_consistent] over [r.lr_total]. *)
val lossy_fraction : lossy_report -> float
