(* Dense bit vectors over int words, the word-parallel substrate of the
   selection kernel (Kernel): per-message destination-state sets become
   one cache-friendly int array each, and set union / cardinality become
   word-OR folds and table-driven popcounts instead of per-element walks.

   Words hold [bits_per_word] = 63 bits (the full OCaml int payload);
   [lsr] is a logical shift, so the sign bit is just one more data bit. *)

let bits_per_word = 63

type t = { n : int; words : int array }

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative size";
  { n; words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0 }

let length t = t.n

let check t i op =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" op i t.n)

let set t i =
  check t i "set";
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let mem t i =
  check t i "mem";
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

(* 16-bit popcount table: one byte per 16-bit pattern, built once. Four
   table probes per 63-bit word beat a per-bit loop by ~16x and need no
   64-bit mask literals (OCaml int literals stop below 2^62). *)
let pop16 =
  lazy
    (let t = Bytes.create 65536 in
     for i = 0 to 65535 do
       let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + (x land 1)) in
       Bytes.unsafe_set t i (Char.chr (bits i 0))
     done;
     t)

let popcount_word x =
  let t = Lazy.force pop16 in
  Char.code (Bytes.unsafe_get t (x land 0xffff))
  + Char.code (Bytes.unsafe_get t ((x lsr 16) land 0xffff))
  + Char.code (Bytes.unsafe_get t ((x lsr 32) land 0xffff))
  + Char.code (Bytes.unsafe_get t (x lsr 48))

let popcount t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let union_into ~into src =
  if into.n <> src.n then invalid_arg "Bitset.union_into: size mismatch";
  let d = into.words and s = src.words in
  for w = 0 to Array.length d - 1 do
    d.(w) <- d.(w) lor s.(w)
  done

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Cardinality of the union of [sets] without materializing it: fold the
   OR word by word. [sets] must share one size. *)
let popcount_union sets =
  match sets with
  | [] -> 0
  | first :: rest ->
      List.iter
        (fun s -> if s.n <> first.n then invalid_arg "Bitset.popcount_union: size mismatch")
        rest;
      let acc = ref 0 in
      for w = 0 to Array.length first.words - 1 do
        let u = List.fold_left (fun u s -> u lor s.words.(w)) first.words.(w) rest in
        acc := !acc + popcount_word u
      done;
      !acc
