(* Step 3: pack the leftover trace-buffer bits with subgroups of wider
   messages (Section 3.3).

   A subgroup is a named bit-field of a message that did not (fully) fit in
   the buffer, e.g. OpenSPARC T2's 6-bit [cputhreadid] inside the 20-bit
   [dmusiidata]. Packing greedily adds the subgroup that maximizes the
   information gain of the selection-in-union-with-it, until nothing fits.

   With [scale_partial = false] (the paper's formulation) a packed subgroup
   contributes its parent's full information term: observing any slice of
   the interface register reveals the transition's occurrence. With
   [scale_partial = true] the term is scaled by the fraction of parent bits
   captured so far — an ablation knob discussed in DESIGN.md. *)

module Tel = Flowtrace_telemetry.Telemetry

let c_rounds = Tel.Counter.v "packing.rounds"
let c_cand_scored = Tel.Counter.v "packing.candidates_scored"
let c_packed = Tel.Counter.v "packing.subgroups_packed"
let h_gain_eval_packs = Tel.Histogram.v "packing.gain_eval_packs"

type packed = { p_parent : Message.t; p_sub : Message.subgroup }

let qualified p = Message.qualified_subgroup_name p.p_parent p.p_sub

(* Feasibility predicates, exposed so the static debuggability analysis can
   prove infeasibility without running Select's candidate fold. *)

let fits messages ~buffer_width =
  List.exists (fun (m : Message.t) -> Message.trace_width m <= buffer_width) messages

let packable messages ~leftover =
  List.concat_map
    (fun (m : Message.t) ->
      List.filter_map
        (fun sg ->
          if sg.Message.sg_width <= leftover then Some { p_parent = m; p_sub = sg } else None)
        m.Message.subgroups)
    messages

(* Gain of [selected] plus packed subgroups, under the chosen scaling.
   Evaluated against one precomputed evaluator — every candidate subgroup
   in every greedy round used to rescan the full edge list via
   Infogain.stats; now each evaluation is O(|bases|). *)
let gain_with ev ~scale_partial ~selected ~packs =
  if Tel.enabled () then
    Tel.Histogram.observe h_gain_eval_packs (float_of_int (List.length packs));
  let full = List.map (fun (m : Message.t) -> m.Message.name) selected in
  let partial : (string * float) list =
    (* accumulated captured fraction per parent, capped at 1 *)
    List.fold_left
      (fun acc p ->
        let name = p.p_parent.Message.name in
        let frac =
          float_of_int p.p_sub.Message.sg_width /. float_of_int p.p_parent.Message.width
        in
        match List.assoc_opt name acc with
        | Some f -> (name, Float.min 1.0 (f +. frac)) :: List.remove_assoc name acc
        | None -> (name, Float.min 1.0 frac) :: acc)
      [] packs
  in
  let weight base =
    if List.exists (String.equal base) full then 1.0
    else
      match List.assoc_opt base partial with
      | Some f -> if scale_partial then f else 1.0
      | None -> 0.0
  in
  Infogain.eval_weighted ev ~weight

let pack inter ~selected ~gain:_ ~bits_used ~buffer_width ~scale_partial =
  let ev = Infogain.evaluator inter in
  let selected_names = List.map (fun (m : Message.t) -> m.Message.name) selected in
  let rec go packs bits =
    let leftover = buffer_width - bits in
    if leftover <= 0 then (packs, bits)
    else
      (* Candidate subgroups: fields of messages not already fully selected,
         not already packed, narrow enough for the leftover bits. *)
      let candidates =
        List.filter
          (fun p ->
            not (List.exists (fun p' -> String.equal (qualified p') (qualified p)) packs))
          (packable ~leftover
             (List.filter
                (fun (m : Message.t) ->
                  not (List.exists (String.equal m.Message.name) selected_names))
                (Interleave.messages inter)))
      in
      match candidates with
      | [] -> (packs, bits)
      | _ ->
          Tel.Counter.incr c_rounds;
          Tel.Counter.add c_cand_scored (List.length candidates);
          let scored =
            List.map
              (fun p -> (p, gain_with ev ~scale_partial ~selected ~packs:(p :: packs)))
              candidates
          in
          let current = gain_with ev ~scale_partial ~selected ~packs in
          let best =
            List.fold_left
              (fun acc (p, g) ->
                match acc with
                | None -> Some (p, g)
                | Some (p', g') ->
                    if
                      g -. g' > 1e-12
                      || (Float.abs (g -. g') <= 1e-12
                         && (p.p_sub.Message.sg_width > p'.p_sub.Message.sg_width
                            || (p.p_sub.Message.sg_width = p'.p_sub.Message.sg_width
                               && String.compare (qualified p) (qualified p') < 0)))
                    then Some (p, g)
                    else acc)
              None scored
          in
          (match best with
          | Some (p, g) when g >= current -. 1e-12 ->
              (* Gains are monotone, so any candidate keeps g >= current;
                 ties prefer the widest subgroup to maximize utilization. *)
              Tel.Counter.incr c_packed;
              go (p :: packs) (bits + p.p_sub.Message.sg_width)
          | _ -> (packs, bits))
  in
  let packs, bits = go [] bits_used in
  let final_gain = gain_with ev ~scale_partial ~selected ~packs in
  (List.rev packs, final_gain, bits)
