(** Text format for flow specifications.

    One directive per line; ['#'] starts a comment:
    {v
    flow <name>
    state <name> [init] [stop] [atomic]
    msg <name> <width> [from <ip>] [to <ip>] [beats <n>] [sub <name> <width>]...
    trans <src-state> <msg> <dst-state>
    v}
    A file may define several flows. [print_flow] inverts [parse_string]
    up to formatting (round-trip tested).

    Two parsing layers are exposed. The {e strict} layer
    ([parse_string]/[parse_file]) rejects duplicate declarations with a
    positioned error and validates every flow through {!Flow.make}. The
    {e raw} layer ([parse_raw]/[parse_raw_file]) checks only token shape
    and records each declaration with its {!Srcspan.t}, keeping duplicate
    and otherwise-invalid structure — it is the input of the
    [flowtrace lint] static analysis ([lib/analysis]), which wants to
    diagnose those defects itself rather than die on them. *)

type error = { line : int; message : string }

exception Parse_error of error

(** A [state] directive as written: name, flags, and source position. *)
type raw_state = {
  rs_name : string;
  rs_initial : bool;
  rs_stop : bool;
  rs_atomic : bool;
  rs_span : Srcspan.t;
}

(** A flow as written, before any semantic validation. Declarations appear
    in file order; duplicates are preserved. [rf_end_line] is the line at
    which the flow ends (the next [flow] directive or end of input). *)
type raw_flow = {
  rf_name : string;
  rf_span : Srcspan.t;
  rf_end_line : int;
  rf_states : raw_state list;
  rf_messages : (Message.t * Srcspan.t) list;
  rf_transitions : (Flow.transition * Srcspan.t) list;
}

(** [parse_raw ?file text] parses every flow in [text] leniently,
    threading [file] into each element's span. Raises {!Parse_error} only
    on token-level problems (unknown directives, wrong arity, bad
    integers, malformed messages) — never on duplicate declarations or
    flows that would fail {!Flow.validate}. *)
val parse_raw : ?file:string -> string -> raw_flow list

(** [parse_raw_file path] reads and leniently parses a file. *)
val parse_raw_file : string -> raw_flow list

(** [raw_to_flow r] runs a raw flow through {!Flow.make}, returning the
    invariant violations instead of raising. *)
val raw_to_flow : raw_flow -> (Flow.t, string list) result

(** [parse_string text] parses every flow in [text] strictly. Raises
    {!Parse_error} with a line number on malformed input, on duplicate
    [state]/[msg] declarations within a flow (positioned at the duplicate
    line), and on flows that fail {!Flow.validate}. *)
val parse_string : string -> Flow.t list

(** [parse_file path] reads and strictly parses a file. *)
val parse_file : string -> Flow.t list

(** [print_flow f] renders a flow in the same format. *)
val print_flow : Flow.t -> string

(** [print_flows fs] renders several flows separated by blank lines. *)
val print_flows : Flow.t list -> string
