(* The full message-selection pipeline: Step 1 (enumeration), Step 2
   (mutual-information maximization), Step 3 (packing) — Section 3. *)

module Tel = Flowtrace_telemetry.Telemetry

(* Only partition-invariant quantities become counters, so the totals are
   bit-identical whatever ~jobs splits the subset tree into. Per-worker
   load (task steal counts) goes into span args instead. *)
let c_runs = Tel.Counter.v "select.runs"
let c_streamed = Tel.Counter.v "select.candidates_streamed"
let c_scored = Tel.Counter.v "select.candidates_scored"
let c_pruned = Tel.Counter.v "select.candidates_pruned"
let c_greedy_rounds = Tel.Counter.v "select.greedy_rounds"
let c_degraded = Tel.Counter.v "select.degraded"

(* Delta re-selection counters: decomposition-invariant like the ones
   above (pruning decisions are task-local and the re-selection plan has
   a fixed depth), so the totals are identical at any job count. *)
let c_reselect_runs = Tel.Counter.v "select.reselect.runs"
let c_reselect_seeds = Tel.Counter.v "select.reselect.seeds"
let c_reselect_streamed = Tel.Counter.v "select.reselect.candidates_streamed"
let c_reselect_scored = Tel.Counter.v "select.reselect.candidates_scored"
let c_reselect_pruned = Tel.Counter.v "select.reselect.subtrees_pruned"

type strategy = Exact | Exact_maximal | Greedy

(* Which Step-1/2 implementation runs an exact unbudgeted search. [Auto]
   picks the word-parallel kernel whenever the pool fits its mask width
   (Kernel.max_pool slots) and falls back to the streaming walk beyond;
   the two are bit-identical, so the choice is purely a speed matter. *)
type engine = Auto | Stream | Bitset

(* How complete the search behind a result was. [Exact] means the requested
   strategy ran to completion; the other tiers mean a budget (wall-clock
   deadline or candidate cap) expired and the result degraded to the best
   answer available at that point. *)
module Tier = struct
  type t =
    | Exact
    | Anytime of { explored : int; total_estimate : int }
    | Greedy_fallback

  let is_degraded = function Exact -> false | Anytime _ | Greedy_fallback -> true

  let to_string = function
    | Exact -> "exact"
    | Anytime { explored; total_estimate } ->
        Printf.sprintf "anytime (best of %d of ~%d candidates)" explored total_estimate
    | Greedy_fallback -> "greedy-fallback (budget expired before any candidate)"
end

type result = {
  messages : Message.t list;
  packed : Packing.packed list;
  gain : float;
  coverage : float;
  bits_used : int;
  buffer_width : int;
  tier : Tier.t;
}

let utilization r =
  if r.buffer_width = 0 then 0.0 else float_of_int r.bits_used /. float_of_int r.buffer_width

let selected_names r =
  List.map (fun m -> m.Message.name) r.messages @ List.map Packing.qualified r.packed

(* Base names whose transitions are observable given the selection; packed
   subgroups expose their parent's transitions (the field is a slice of the
   same interface register, so its occurrence is visible). *)
let observable_bases r =
  List.sort_uniq String.compare
    (List.map (fun m -> m.Message.name) r.messages
    @ List.map (fun p -> p.Packing.p_parent.Message.name) r.packed)

let is_observable r base = List.exists (String.equal base) (observable_bases r)

(* Deterministic comparison for Step-2 ties: higher gain first, then more
   bits (the paper's secondary objective is maximal buffer utilization),
   then lexicographically smaller name list. Gains compare exactly — an
   epsilon tolerance here would make the order non-transitive over chains
   of near-ties (a ~ b, b ~ c, a < c), and the bit-identity contract
   already guarantees that equal candidates produce equal floats on every
   path, so no tolerance is needed. *)
let better (gain_a, bits_a, names_a) (gain_b, bits_b, names_b) =
  if gain_a <> gain_b then gain_a > gain_b
  else if bits_a <> bits_b then bits_a > bits_b
  else names_a < names_b

let combo_key combo = List.sort String.compare (List.map (fun m -> m.Message.name) combo)

let step2 inter candidates =
  match candidates with
  | [] -> invalid_arg "Select.step2: no candidate combinations"
  | first :: rest ->
      let ev = Infogain.evaluator inter in
      let score combo = (Infogain.eval ev combo, Message.total_width combo, combo_key combo) in
      let best_combo, best_score =
        List.fold_left
          (fun (bc, bs) c ->
            let s = score c in
            if better s bs then (c, s) else (bc, bs))
          (first, score first) rest
      in
      let gain, _, _ = best_score in
      (best_combo, gain)

let greedy inter ~buffer_width =
  let ev = Infogain.evaluator inter in
  let pool = Interleave.messages inter in
  let rec go selected remaining pool =
    let candidates =
      List.filter (fun (m : Message.t) -> Message.trace_width m <= remaining) pool
    in
    match candidates with
    | [] -> List.rev selected
    | _ ->
        (* best marginal gain; ties to the narrower message, then name *)
        let best =
          List.fold_left
            (fun acc m ->
              let g = Infogain.eval_base ev m.Message.name in
              match acc with
              | None -> Some (m, g)
              | Some (m', g') ->
                  if
                    g -. g' > 1e-12
                    || (Float.abs (g -. g') <= 1e-12
                       && (Message.trace_width m < Message.trace_width m'
                          || (Message.trace_width m = Message.trace_width m'
                             && String.compare m.Message.name m'.Message.name < 0)))
                  then Some (m, g)
                  else acc)
            None candidates
        in
        (match best with
        | None -> List.rev selected
        | Some (m, _) ->
            Tel.Counter.incr c_greedy_rounds;
            go (m :: selected)
              (remaining - Message.trace_width m)
              (List.filter (fun m' -> not (Message.equal_name m m')) pool))
  in
  go [] buffer_width pool

(* ------------------------------------------------------------------ *)
(* Streaming exact engine.

   Instead of materializing every fitting combination and scoring the list
   (peak memory proportional to the candidate count), the subset-tree walk
   threads an incrementally scored path: gain and bit totals extend by one
   term per taken message, so each candidate costs O(1) at its leaf and the
   only live state is the current branch. The per-message terms are added
   in the same width-ascending order [Infogain.eval] folds a materialized
   candidate in, so the scores are bit-for-bit identical to the list-based
   path — and the best candidate under {!better} is unique (distinct
   candidates have distinct sorted name lists), so any traversal or merge
   order yields the same selection. *)

module Path = struct
  type t = { pg : float; pb : int; pmsgs : Message.t list (* reversed take order *) }

  let empty = { pg = 0.0; pb = 0; pmsgs = [] }

  let extend ev p (m : Message.t) =
    {
      pg = p.pg +. Infogain.eval_base ev m.Message.name;
      pb = p.pb + Message.trace_width m;
      pmsgs = m :: p.pmsgs;
    }

  let gain p = p.pg
  let bits p = p.pb
  let messages p = List.rev p.pmsgs
  let key p = List.sort String.compare (List.map (fun m -> m.Message.name) p.pmsgs)

  (* Mirrors {!better} with the name-list tie-break computed lazily: sorted
     name keys are only built on an exact (gain, bits) tie. Exact float
     comparison keeps the order total and transitive — an epsilon here
     broke transitivity over chains of near-ties. *)
  let better a b =
    if a.pg <> b.pg then a.pg > b.pg
    else if a.pb <> b.pb then a.pb > b.pb
    else key a < key b

  let merge best candidate =
    match (best, candidate) with
    | None, c -> c
    | b, None -> b
    | Some b, Some c -> if better c b then Some c else Some b
end

let path0 = Path.empty
let merge_best = Path.merge

let exact_stream ~maximal ~limit ~jobs inter ~buffer_width =
  let ev = Infogain.evaluator inter in
  let take = Path.extend ev in
  let leaf best p = merge_best best (Some p) in
  let pool = Interleave.messages inter in
  (* [track] is latched once per run: when telemetry is off the fold uses
     the bare closures and the walk costs exactly what it did before. *)
  let track = Tel.enabled () in
  let best =
    if jobs <= 1 then begin
      (* single walk, local candidate budget *)
      let plan = Combination.plan ~depth:0 pool ~width:buffer_width in
      let count = ref 0 in
      let tick () =
        incr count;
        if !count > limit then raise (Combination.Too_many limit)
      in
      let leaves = ref 0 in
      let leaf =
        if track then fun best p ->
          incr leaves;
          merge_best best (Some p)
        else leaf
      in
      let r =
        Combination.fold_task plan 0 ~only_maximal:maximal ~tick ~take ~path:path0 ~leaf
          ~init:None
      in
      if track then begin
        Tel.Counter.add c_streamed !count;
        Tel.Counter.add c_scored !leaves;
        Tel.Counter.add c_pruned (!count - !leaves)
      end;
      r
    end
    else begin
      (* fan the subtree tasks out across domains; tasks are claimed from a
         shared counter (work stealing), the candidate budget is one atomic
         counter, and per-task bests are merged in task order. The merge
         order is immaterial for the result (the best is unique) but keeps
         the reduction deterministic by construction. *)
      let plan = Combination.plan pool ~width:buffer_width in
      let ntasks = Combination.n_tasks plan in
      let results = Array.make ntasks None in
      let next = Atomic.make 0 in
      let candidates = Atomic.make 0 in
      let failed = Atomic.make None in
      let tick () =
        if Atomic.fetch_and_add candidates 1 >= limit then raise (Combination.Too_many limit)
      in
      let leaves = Atomic.make 0 in
      let leaf =
        if track then fun best p ->
          ignore (Atomic.fetch_and_add leaves 1);
          merge_best best (Some p)
        else leaf
      in
      let work () =
        (* per-worker stats are decomposition-dependent, so they are span
           args (one select.worker span per domain), never counters *)
        let my_tasks = ref 0 in
        let body () =
          try
            let continue = ref true in
            while !continue do
              match Atomic.get failed with
              | Some _ -> continue := false
              | None ->
                  let t = Atomic.fetch_and_add next 1 in
                  if t >= ntasks then continue := false
                  else begin
                    incr my_tasks;
                    results.(t) <-
                      Combination.fold_task plan t ~only_maximal:maximal ~tick ~take ~path:path0
                        ~leaf ~init:None
                  end
            done
          with e -> Atomic.set failed (Some e)
        in
        if track then
          Tel.with_span "select.worker"
            ~args:(fun () -> [ ("tasks", Flowtrace_telemetry.Event.Int !my_tasks) ])
            body
        else body ()
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
      work ();
      Array.iter Domain.join domains;
      (match Atomic.get failed with Some e -> raise e | None -> ());
      if track then begin
        let n = Atomic.get candidates and l = Atomic.get leaves in
        Tel.Counter.add c_streamed n;
        Tel.Counter.add c_scored l;
        Tel.Counter.add c_pruned (n - l)
      end;
      Array.fold_left merge_best None results
    end
  in
  match best with
  | None -> invalid_arg "Select: no message fits the trace buffer"
  | Some p -> (Path.messages p, Path.gain p)

(* ------------------------------------------------------------------ *)
(* Word-parallel kernel engine: the same walk on precomputed flat arrays
   and int masks (Kernel). Bit-identical to [exact_stream] — candidates,
   float sums, limit/Too_many behavior and counter totals all coincide
   (the counters are settled by Kernel's counting DP rather than per-leaf
   ticks) — it just runs an order of magnitude faster. The built kernel
   is returned so [finalize] can compute coverage as a popcount fold. *)

let exact_kernel ~maximal ~limit ~jobs inter ~buffer_width =
  let k = Kernel.make inter in
  match Kernel.select_exact ~only_maximal:maximal ~limit ~jobs k ~buffer_width with
  | None -> invalid_arg "Select: no message fits the trace buffer"
  | Some sel ->
      if Tel.enabled () then begin
        Tel.Counter.add c_streamed sel.Kernel.sel_streamed;
        Tel.Counter.add c_scored sel.Kernel.sel_scored;
        Tel.Counter.add c_pruned (sel.Kernel.sel_streamed - sel.Kernel.sel_scored)
      end;
      (k, sel.Kernel.sel_messages, sel.Kernel.sel_gain)

(* ------------------------------------------------------------------ *)
(* Budgeted anytime engine.

   The same task-split walk, but the candidate cap and the wall-clock
   deadline are checked cooperatively inside [tick], and the best-so-far
   lives in per-worker cells instead of the fold accumulator — so when a
   budget expires mid-walk the streamed prefix's best survives the abort.
   Tasks are claimed in plan order; a run whose budgets never expire
   explores candidates in exactly the order of the unbudgeted engine and
   returns the identical (unique-best) result with tier [Exact]. *)

exception Budget_expired

let budgeted_stream ~maximal ~limit ~jobs ~deadline ~max_candidates inter ~buffer_width =
  let greedy_fallback () =
    let combo = greedy inter ~buffer_width in
    if combo = [] then invalid_arg "Select: no message fits the trace buffer";
    Tel.Counter.incr c_degraded;
    (combo, Infogain.of_combination inter combo, Tier.Greedy_fallback)
  in
  let deadline_passed () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () > d
  in
  if deadline_passed () then greedy_fallback ()
  else begin
    let ev = Infogain.evaluator inter in
    let pool = Interleave.messages inter in
    let plan = Combination.plan pool ~width:buffer_width in
    let ntasks = Combination.n_tasks plan in
    let explored = Atomic.make 0 in
    let stop = Atomic.make false in
    let tasks_done = Atomic.make 0 in
    (* the deadline is only consulted every 256 candidates, so the check
       costs one comparison on the hot path and at most a 255-candidate
       overshoot on expiry *)
    let tick () =
      if Atomic.get stop then raise Budget_expired;
      let c = Atomic.fetch_and_add explored 1 + 1 in
      if c > limit then raise (Combination.Too_many limit);
      (match max_candidates with
      | Some m when c > m ->
          Atomic.set stop true;
          raise Budget_expired
      | _ -> ());
      if c land 255 = 0 && deadline_passed () then begin
        Atomic.set stop true;
        raise Budget_expired
      end
    in
    let jobs = max 1 jobs in
    let cells = Array.make jobs None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker w =
      try
        let continue = ref true in
        while !continue do
          if Atomic.get stop || Atomic.get failed <> None then continue := false
          else begin
            let t = Atomic.fetch_and_add next 1 in
            if t >= ntasks then continue := false
            else begin
              Combination.fold_task plan t ~only_maximal:maximal ~tick ~take:(Path.extend ev)
                ~path:Path.empty
                ~leaf:(fun () p -> cells.(w) <- Path.merge cells.(w) (Some p))
                ~init:();
              Atomic.incr tasks_done
            end
          end
        done
      with
      | Budget_expired -> ()
      | e -> Atomic.set failed (Some e)
    in
    let domains = Array.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    worker 0;
    Array.iter Domain.join domains;
    (match Atomic.get failed with Some e -> raise e | None -> ());
    let best = Array.fold_left Path.merge None cells in
    let n =
      let n = Atomic.get explored in
      match max_candidates with Some m -> min n m | None -> n
    in
    if Tel.enabled () then Tel.Counter.add c_streamed n;
    if not (Atomic.get stop) then
      match best with
      | None -> invalid_arg "Select: no message fits the trace buffer"
      | Some p -> (Path.messages p, Path.gain p, Tier.Exact)
    else begin
      match best with
      | None -> greedy_fallback ()
      | Some p ->
          Tel.Counter.incr c_degraded;
          let completed = Atomic.get tasks_done in
          let total_estimate =
            if completed <= 0 then n
            else max n (int_of_float (float_of_int n *. float_of_int ntasks /. float_of_int completed))
          in
          (Path.messages p, Path.gain p, Tier.Anytime { explored = n; total_estimate })
    end
  end

let strategy_name = function
  | Exact -> "exact"
  | Exact_maximal -> "exact-maximal"
  | Greedy -> "greedy"

let step1_step2 ?(strategy = Exact) ?(limit = Combination.default_limit) ?(jobs = 1) ?deadline
    ?max_candidates ?(engine = Auto) inter ~buffer_width =
  Tel.with_span "select.step1_2"
    ~args:(fun () ->
      Flowtrace_telemetry.Event.
        [ ("strategy", Str (strategy_name strategy)); ("jobs", Int jobs); ("width", Int buffer_width) ])
  @@ fun () ->
  match strategy with
  | Greedy ->
      let combo = greedy inter ~buffer_width in
      if combo = [] then invalid_arg "Select: no message fits the trace buffer";
      let gain = Infogain.of_combination inter combo in
      (combo, gain, Tier.Exact, None)
  | Exact | Exact_maximal ->
      let maximal = strategy = Exact_maximal in
      if deadline = None && max_candidates = None then begin
        let pool_n = List.length (Interleave.messages inter) in
        let use_kernel =
          match engine with
          | Stream -> false
          | Auto -> pool_n <= Kernel.max_pool
          | Bitset ->
              if pool_n > Kernel.max_pool then
                invalid_arg
                  (Printf.sprintf
                     "Select: the bitset engine addresses at most %d pool messages (pool has %d); \
                      use the streaming engine"
                     Kernel.max_pool pool_n);
              true
        in
        if use_kernel then
          let k, combo, gain = exact_kernel ~maximal ~limit ~jobs inter ~buffer_width in
          (combo, gain, Tier.Exact, Some k)
        else
          let combo, gain = exact_stream ~maximal ~limit ~jobs inter ~buffer_width in
          (combo, gain, Tier.Exact, None)
      end
      else
        let combo, gain, tier =
          (* budgets run on the streaming engine: its cooperative tick is
             where deadlines and candidate caps are checked *)
          budgeted_stream ~maximal ~limit ~jobs ~deadline ~max_candidates inter ~buffer_width
        in
        (combo, gain, tier, None)

let finalize ?(pack = true) ?(scale_partial = false) ?(tier = Tier.Exact) ?kernel inter ~combo
    ~gain ~buffer_width =
  let bits = Message.total_width combo in
  let packed, gain, bits =
    if pack then
      Tel.with_span "select.pack" (fun () ->
          Packing.pack inter ~selected:combo ~gain ~bits_used:bits ~buffer_width ~scale_partial)
    else ([], gain, bits)
  in
  let observable =
    List.sort_uniq String.compare
      (List.map (fun (m : Message.t) -> m.Message.name) combo
      @ List.map (fun p -> p.Packing.p_parent.Message.name) packed)
  in
  let coverage =
    Tel.with_span "select.coverage" (fun () ->
        let selected base = List.exists (String.equal base) observable in
        (* with a kernel in hand, Definition 7 is a word-OR/popcount fold
           over precomputed state bitsets — same count, no edge rescan *)
        match kernel with
        | Some k -> Kernel.coverage k ~selected
        | None -> Coverage.compute inter ~selected)
  in
  { messages = combo; packed; gain; coverage; bits_used = bits; buffer_width; tier }

let select ?strategy ?limit ?jobs ?deadline ?max_candidates ?pack ?scale_partial ?engine inter
    ~buffer_width =
  Tel.Counter.incr c_runs;
  Tel.with_span "select"
    ~args:(fun () -> [ ("width", Flowtrace_telemetry.Event.Int buffer_width) ])
  @@ fun () ->
  let combo, gain, tier, kernel =
    step1_step2 ?strategy ?limit ?jobs ?deadline ?max_candidates ?engine inter ~buffer_width
  in
  finalize ?pack ?scale_partial ~tier ?kernel inter ~combo ~gain ~buffer_width

(* ------------------------------------------------------------------ *)
(* Delta re-selection: when a scenario changed slightly since a previous
   run, that run's journalled bests make strong incumbents — re-score
   them under the new terms and let the kernel's exact branch-and-bound
   skip every subtree they dominate. Bit-identical to a from-scratch
   {!select}; only the amount of re-scoring shrinks. *)

type reselect_stats = {
  rs_seeds : int;
  rs_streamed : int;
  rs_scored : int;
  rs_pruned_subtrees : int;
}

let reselect ?(strategy = Exact) ?(limit = Combination.default_limit) ?(jobs = 1) ?deadline
    ?max_candidates ?pack ?scale_partial ~seeds inter ~buffer_width =
  let delegate () =
    ( select ~strategy ~limit ~jobs ?deadline ?max_candidates ?pack ?scale_partial inter
        ~buffer_width,
      None )
  in
  match strategy with
  | Greedy -> delegate ()
  | Exact | Exact_maximal ->
      (* budgets need the streaming engine's cooperative tick; oversized
         pools exceed the kernel's mask width — both fall back to a full
         run, which the delta path must always agree with anyway *)
      if deadline <> None || max_candidates <> None then delegate ()
      else if List.length (Interleave.messages inter) > Kernel.max_pool then delegate ()
      else begin
        Tel.Counter.incr c_reselect_runs;
        Tel.with_span "select.reselect"
          ~args:(fun () ->
            Flowtrace_telemetry.Event.
              [ ("jobs", Int jobs); ("width", Int buffer_width); ("seeds", Int (List.length seeds)) ])
        @@ fun () ->
        let maximal = strategy = Exact_maximal in
        let k = Kernel.make inter in
        match Kernel.reselect ~only_maximal:maximal ~limit ~jobs ~seeds k ~buffer_width with
        | None -> invalid_arg "Select: no message fits the trace buffer"
        | Some r ->
            if Tel.enabled () then begin
              Tel.Counter.add c_reselect_seeds r.Kernel.r_seeds;
              Tel.Counter.add c_reselect_streamed r.Kernel.r_streamed;
              Tel.Counter.add c_reselect_scored r.Kernel.r_scored;
              Tel.Counter.add c_reselect_pruned r.Kernel.r_pruned_subtrees
            end;
            let result =
              finalize ?pack ?scale_partial ~tier:Tier.Exact ~kernel:k inter
                ~combo:r.Kernel.r_messages ~gain:r.Kernel.r_gain ~buffer_width
            in
            ( result,
              Some
                {
                  rs_seeds = r.Kernel.r_seeds;
                  rs_streamed = r.Kernel.r_streamed;
                  rs_scored = r.Kernel.r_scored;
                  rs_pruned_subtrees = r.Kernel.r_pruned_subtrees;
                } )
      end

let pp_result ppf r =
  let packed_names = List.map Packing.qualified r.packed in
  Format.fprintf ppf
    "@[<v>selected: %s@,packed: %s@,gain: %.4f  coverage: %.2f%%  utilization: %.2f%% (%d/%d bits)"
    (String.concat ", " (List.map (fun m -> m.Message.name) r.messages))
    (if packed_names = [] then "-" else String.concat ", " packed_names)
    r.gain (100.0 *. r.coverage) (100.0 *. utilization r) r.bits_used r.buffer_width;
  if Tier.is_degraded r.tier then Format.fprintf ppf "@,tier: %s" (Tier.to_string r.tier);
  Format.fprintf ppf "@]"

(* Per-message breakdown of the selection decision: each pool message's
   own information term, per-cycle bit cost and gain density — the
   "why was this traced?" report. *)
type contribution = {
  co_message : Message.t;
  co_gain : float;
  co_bits : int;
  co_density : float;  (* gain per trace-buffer bit *)
  co_selected : bool;
  co_packed : bool;  (* observed only through packed subgroups *)
}

let explain inter r =
  let ev = Infogain.evaluator inter in
  let fully m = List.exists (Message.equal_name m) r.messages in
  let packed_parent (m : Message.t) =
    List.exists (fun p -> String.equal p.Packing.p_parent.Message.name m.Message.name) r.packed
  in
  let contributions =
    List.map
      (fun (m : Message.t) ->
        let g = Infogain.eval_base ev m.Message.name in
        let bits = Message.trace_width m in
        {
          co_message = m;
          co_gain = g;
          co_bits = bits;
          co_density = g /. float_of_int bits;
          co_selected = fully m;
          co_packed = (not (fully m)) && packed_parent m;
        })
      (Interleave.messages inter)
  in
  List.sort (fun a b -> compare b.co_gain a.co_gain) contributions

let pp_contribution ppf c =
  Format.fprintf ppf "%-16s gain %.4f  bits %2d  density %.4f  %s" c.co_message.Message.name
    c.co_gain c.co_bits c.co_density
    (if c.co_selected then "SELECTED" else if c.co_packed then "packed" else "-")
