(* Path localization (Section 5.2): given the trace observed through the
   selected messages, how many executions of the interleaved flow remain
   consistent with it?

   A path is consistent with observation [o] when the projection of its
   message sequence onto the selected base messages equals [o] (exact
   semantics) or has [o] as a prefix (prefix semantics, for mid-execution
   localization as in the paper's Figure 2 narrative). Counting is a DP
   over (product state, observation position); the interleaved flow is a
   DAG so memoization terminates. *)

type semantics = Exact | Prefix | Suffix

(* Projection onto the selected base messages — the observation an ideal
   (lossless) trace buffer holding [selected] would record for a path. *)
let project ~selected trace = List.filter (fun m -> selected m.Indexed.base) trace

(* Forward DP for Exact/Prefix: f(state, pos) counts path suffixes from
   [state] to a stop whose projection consumes obs[pos..] (Exact) or at
   least reaches its end (Prefix). *)
let forward_count ~semantics inter ~selected ~obs =
  let len = Array.length obs in
  let memo : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec count s pos =
    match Hashtbl.find_opt memo (s, pos) with
    | Some v -> v
    | None ->
        let v =
          if Interleave.is_stop inter s then if pos = len then 1 else 0
          else
            List.fold_left
              (fun acc (msg, dst) ->
                let base = msg.Indexed.base in
                if selected base then
                  if pos < len then
                    if Indexed.equal msg obs.(pos) then Dag.sat_add acc (count dst (pos + 1))
                    else acc
                  else
                    match semantics with
                    | Exact -> acc
                    | Prefix | Suffix ->
                        (* observation exhausted: any continuation matches *)
                        Dag.sat_add acc (count dst pos)
                else Dag.sat_add acc (count dst pos))
              0 (Interleave.out_edges inter s)
        in
        Hashtbl.replace memo (s, pos) v;
        v
  in
  List.fold_left (fun acc s0 -> Dag.sat_add acc (count s0 0)) 0 (Interleave.initials inter)

(* Backward DP for Suffix — the wrapped-trace-buffer case, where only the
   LAST entries survive: g(state, pos) counts path prefixes from an
   initial state to [state] whose projection still has obs[0..pos) left to
   have produced, i.e. walking edges backward consumes the observation
   from its end. *)
let backward_count inter ~selected ~obs =
  let len = Array.length obs in
  let memo : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let is_initial =
    let set = Hashtbl.create 4 in
    List.iter (fun s -> Hashtbl.replace set s ()) (Interleave.initials inter);
    fun s -> Hashtbl.mem set s
  in
  (* pos = number of trailing observation entries already matched *)
  let rec count s pos =
    match Hashtbl.find_opt memo (s, pos) with
    | Some v -> v
    | None ->
        let v =
          let here = if is_initial s && pos = len then 1 else 0 in
          List.fold_left
            (fun acc (msg, src) ->
              let base = msg.Indexed.base in
              if selected base then
                if pos < len then
                  if Indexed.equal msg obs.(len - 1 - pos) then
                    Dag.sat_add acc (count src (pos + 1))
                  else acc
                else (* everything matched; earlier selected messages were
                        overwritten by wrap-around *)
                  Dag.sat_add acc (count src pos)
              else Dag.sat_add acc (count src pos))
            here (Interleave.in_edges inter s)
        in
        Hashtbl.replace memo (s, pos) v;
        v
  in
  List.fold_left (fun acc s -> Dag.sat_add acc (count s 0)) 0 (Interleave.stops inter)

(* ------------------------------------------------------------------ *)
(* Gap-tolerant localization: the observation may have lost entries
   (dropped packets, blackout windows, truncation), so it is matched as
   a SUBSEQUENCE of each path's projection. Every selected emission that
   is not matched by the current observation entry costs one unit of a
   bounded skip budget.

   Matching is forced-greedy: when the next emission equals the next
   observation entry the match is taken, never skipped. For losses that
   only DELETE observation entries this is complete (the standard
   exchange argument for leftmost subsequence embedding), and because
   the alignment of a given path is deterministic each path is counted
   exactly once — the lossy count can never exceed the path total.

   Greedy matching cannot recover from a BOGUS observation entry (one
   the path never emits, e.g. reordered across a large distance): such
   an entry stalls every path at the same observation position. That
   case is handled outside the DP by [lossy]'s resynchronization loop,
   which discards the blocking entry — charged against the same budget
   — and retries. Keeping discard out of the DP preserves both
   single-counting and the budget-0 equivalence with Exact/Prefix. *)

type lossy_report = {
  lr_consistent : int;
  lr_total : int;
  lr_discarded : int;
  lr_skips : int;
  lr_budget : int;
  lr_confidence : float;
}

(* f(state, pos, k): suffix count with k skip units already spent.
   With budget = 0 this is exactly [forward_count]. *)
let subseq_count ~semantics inter ~selected ~obs ~budget =
  let len = Array.length obs in
  let memo : (int * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let rec count s pos k =
    match Hashtbl.find_opt memo (s, pos, k) with
    | Some v -> v
    | None ->
        let v =
          if Interleave.is_stop inter s then if pos = len then 1 else 0
          else
            List.fold_left
              (fun acc (msg, dst) ->
                let base = msg.Indexed.base in
                if selected base then
                  if pos < len then
                    if Indexed.equal msg obs.(pos) then
                      Dag.sat_add acc (count dst (pos + 1) k)
                    else if k < budget then Dag.sat_add acc (count dst pos (k + 1))
                    else acc
                  else
                    match semantics with
                    | Prefix | Suffix ->
                        (* observation exhausted: any continuation matches *)
                        Dag.sat_add acc (count dst pos k)
                    | Exact ->
                        (* trailing selected emissions were lost too *)
                        if k < budget then Dag.sat_add acc (count dst pos (k + 1)) else acc
                else Dag.sat_add acc (count dst pos k))
              0 (Interleave.out_edges inter s)
        in
        Hashtbl.replace memo (s, pos, k) v;
        v
  in
  List.fold_left (fun acc s0 -> Dag.sat_add acc (count s0 0 0)) 0 (Interleave.initials inter)

(* Deepest observation position any partial path reaches within the
   budget — where matching stalls when the count is zero. *)
let deepest_obs_pos inter ~selected ~obs ~budget =
  let len = Array.length obs in
  let visited : (int * int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let deepest = ref 0 in
  let rec go s pos k =
    if not (Hashtbl.mem visited (s, pos, k)) then begin
      Hashtbl.replace visited (s, pos, k) ();
      if pos > !deepest then deepest := pos;
      if not (Interleave.is_stop inter s) then
        List.iter
          (fun (msg, dst) ->
            let base = msg.Indexed.base in
            if selected base then begin
              if pos < len && Indexed.equal msg obs.(pos) then go dst (pos + 1) k
              else if k < budget then go dst pos (k + 1)
            end
            else go dst pos k)
          (Interleave.out_edges inter s)
    end
  in
  List.iter (fun s0 -> go s0 0 0) (Interleave.initials inter);
  !deepest

let lossy ?(semantics = Exact) ?(skip_budget = 0) inter ~selected ~observed =
  (match semantics with
  | Suffix -> invalid_arg "Localize.lossy: Suffix semantics is not supported"
  | Exact | Prefix -> ());
  if skip_budget < 0 then invalid_arg "Localize.lossy: negative skip budget";
  let total = Interleave.total_paths inter in
  let obs = ref (Array.of_list observed) in
  let discarded = ref 0 in
  let budget_left () = skip_budget - !discarded in
  let count_with budget = subseq_count ~semantics inter ~selected ~obs:!obs ~budget in
  (* Minimal-discard resynchronization: while no path embeds the
     surviving observation and budget remains, drop the entry where
     matching stalls and retry with the budget that is left. *)
  let rec resync () =
    let c = count_with (budget_left ()) in
    if c > 0 || !discarded >= skip_budget || Array.length !obs = 0 then c
    else begin
      let stall = deepest_obs_pos inter ~selected ~obs:!obs ~budget:(budget_left ()) in
      let n = Array.length !obs in
      let i = min stall (n - 1) in
      obs := Array.append (Array.sub !obs 0 i) (Array.sub !obs (i + 1) (n - i - 1));
      incr discarded;
      resync ()
    end
  in
  let consistent = resync () in
  (* Minimal skips some consistent path actually needs: smallest budget
     with a non-zero count. Budgets are small; a linear scan is cheap. *)
  let skips =
    if consistent = 0 then budget_left ()
    else
      let rec find k = if count_with k > 0 then k else find (k + 1) in
      find 0
  in
  let confidence =
    if consistent = 0 then 0.0
    else if skip_budget = 0 then 1.0
    else
      float_of_int (skip_budget - (!discarded + skips)) /. float_of_int skip_budget
  in
  {
    lr_consistent = consistent;
    lr_total = total;
    lr_discarded = !discarded;
    lr_skips = skips;
    lr_budget = skip_budget;
    lr_confidence = confidence;
  }

let lossy_fraction r =
  if r.lr_total = 0 then 0.0 else float_of_int r.lr_consistent /. float_of_int r.lr_total

let consistent_paths ?(semantics = Exact) inter ~selected ~observed =
  let obs = Array.of_list observed in
  match semantics with
  | Exact | Prefix -> forward_count ~semantics inter ~selected ~obs
  | Suffix -> backward_count inter ~selected ~obs

let fraction ?semantics inter ~selected ~observed =
  let total = Interleave.total_paths inter in
  if total = 0 then 0.0
  else
    float_of_int (consistent_paths ?semantics inter ~selected ~observed)
    /. float_of_int total
