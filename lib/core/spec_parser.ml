(* A small text format for flow specifications, so the CLI and examples can
   load scenarios from files. One directive per line:

     flow <name>
     state <name> [init] [stop] [atomic]
     msg <name> <width> [from <ip>] [to <ip>] [sub <name> <width>]...
     trans <src-state> <msg> <dst-state>

   '#' starts a comment. A file may contain several flows; each [flow]
   directive starts a new one.

   Parsing happens in two layers. [parse_raw] is lenient: it checks only
   token-level shape and records every declaration together with its
   source span, without enforcing flow invariants — this is what the
   static-analysis linter consumes, so it can diagnose duplicate
   declarations, undeclared references, and dead structure itself with
   precise positions. [parse_string]/[parse_file] are strict: they reject
   duplicate state/msg declarations with a positioned error and run every
   flow through [Flow.make]. *)

type error = { line : int; message : string }

exception Parse_error of error

let error line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

type raw_state = {
  rs_name : string;
  rs_initial : bool;
  rs_stop : bool;
  rs_atomic : bool;
  rs_span : Srcspan.t;
}

type raw_flow = {
  rf_name : string;
  rf_span : Srcspan.t;
  rf_end_line : int;
  rf_states : raw_state list;
  rf_messages : (Message.t * Srcspan.t) list;
  rf_transitions : (Flow.transition * Srcspan.t) list;
}

type builder = {
  b_name : string;
  b_span : Srcspan.t;
  mutable b_states : raw_state list;
  mutable b_messages : (Message.t * Srcspan.t) list;
  mutable b_transitions : (Flow.transition * Srcspan.t) list;
}

let new_builder name span = { b_name = name; b_span = span; b_states = []; b_messages = []; b_transitions = [] }

let finish b end_line =
  {
    rf_name = b.b_name;
    rf_span = b.b_span;
    rf_end_line = end_line;
    rf_states = List.rev b.b_states;
    rf_messages = List.rev b.b_messages;
    rf_transitions = List.rev b.b_transitions;
  }

let parse_int lineno s =
  match int_of_string_opt s with Some n -> n | None -> error lineno "expected an integer, got %S" s

let parse_msg_args lineno name width rest =
  let src = ref "?" and dst = ref "?" and subs = ref [] and beats = ref 1 in
  let rec go = function
    | [] -> ()
    | "from" :: ip :: rest ->
        src := ip;
        go rest
    | "to" :: ip :: rest ->
        dst := ip;
        go rest
    | "beats" :: n :: rest ->
        beats := parse_int lineno n;
        go rest
    | "sub" :: sname :: swidth :: rest ->
        subs := Message.subgroup sname (parse_int lineno swidth) :: !subs;
        go rest
    | tok :: _ -> error lineno "unexpected token %S in msg directive" tok
  in
  go rest;
  try Message.make ~src:!src ~dst:!dst ~subgroups:(List.rev !subs) ~beats:!beats name width
  with Invalid_argument m -> error lineno "%s" m

(* Column (1-based) of the first non-blank character of [line]. *)
let directive_col line =
  let n = String.length line in
  let rec go i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then go (i + 1) else i in
  go 0 + 1

let parse_raw ?(file = "<string>") text =
  let lines = String.split_on_char '\n' text in
  let flows = ref [] in
  let current = ref None in
  let finish_current lineno =
    match !current with
    | None -> ()
    | Some b ->
        flows := finish b lineno :: !flows;
        current := None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line in
      let span = Srcspan.make ~file ~line:lineno ~col:(directive_col line) in
      let tokens =
        List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line))
      in
      match tokens with
      | [] -> ()
      | "flow" :: [ name ] ->
          finish_current lineno;
          current := Some (new_builder name span)
      | "flow" :: _ -> error lineno "flow directive takes exactly one name"
      | directive :: args -> (
          match !current with
          | None -> error lineno "%s directive before any flow directive" directive
          | Some b -> (
              match (directive, args) with
              | "state", name :: flags ->
                  let st =
                    List.fold_left
                      (fun st -> function
                        | "init" -> { st with rs_initial = true }
                        | "stop" -> { st with rs_stop = true }
                        | "atomic" -> { st with rs_atomic = true }
                        | f -> error lineno "unknown state flag %S" f)
                      { rs_name = name; rs_initial = false; rs_stop = false; rs_atomic = false; rs_span = span }
                      flags
                  in
                  b.b_states <- st :: b.b_states
              | "state", [] -> error lineno "state directive needs a name"
              | "msg", name :: width :: rest ->
                  b.b_messages <- (parse_msg_args lineno name (parse_int lineno width) rest, span) :: b.b_messages
              | "msg", _ -> error lineno "msg directive needs a name and a width"
              | "trans", [ src; msg; dst ] ->
                  b.b_transitions <- (Flow.transition src msg dst, span) :: b.b_transitions
              | "trans", _ -> error lineno "trans directive takes <src> <msg> <dst>"
              | d, _ -> error lineno "unknown directive %S" d)))
    lines;
  finish_current (List.length lines);
  List.rev !flows

let raw_to_flow r =
  let pick f = List.filter_map (fun st -> if f st then Some st.rs_name else None) r.rf_states in
  try
    Ok
      (Flow.make ~name:r.rf_name
         ~states:(List.map (fun st -> st.rs_name) r.rf_states)
         ~initial:(pick (fun st -> st.rs_initial))
         ~stop:(pick (fun st -> st.rs_stop))
         ~atomic:(pick (fun st -> st.rs_atomic))
         ~messages:(List.map fst r.rf_messages)
         ~transitions:(List.map fst r.rf_transitions)
         ())
  with Flow.Invalid (_, errs) -> Error errs

(* Strict layer: positioned duplicate-declaration errors, then Flow.make. *)
let check_duplicates what names =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, (span : Srcspan.t)) ->
      match Hashtbl.find_opt seen name with
      | Some (first : Srcspan.t) ->
          error span.Srcspan.line "duplicate %s declaration %S (previously declared at line %d)" what
            name first.Srcspan.line
      | None -> Hashtbl.add seen name span)
    names

let build_strict r =
  check_duplicates "state" (List.map (fun st -> (st.rs_name, st.rs_span)) r.rf_states);
  check_duplicates "msg" (List.map (fun (m, sp) -> (m.Message.name, sp)) r.rf_messages);
  match raw_to_flow r with
  | Ok f -> f
  | Error errs -> error r.rf_end_line "invalid flow %s: %s" r.rf_name (String.concat "; " errs)

let parse_string text = List.map build_strict (parse_raw text)

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  text

let parse_file path = List.map build_strict (parse_raw ~file:path (read_file path))

let parse_raw_file path = parse_raw ~file:path (read_file path)

let print_flow (f : Flow.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "flow %s\n" f.Flow.name);
  List.iter
    (fun s ->
      let flags =
        (if Flow.is_initial f s then " init" else "")
        ^ (if Flow.is_stop f s then " stop" else "")
        ^ if Flow.is_atomic f s then " atomic" else ""
      in
      Buffer.add_string buf (Printf.sprintf "state %s%s\n" s flags))
    f.Flow.states;
  List.iter
    (fun (m : Message.t) ->
      let subs =
        String.concat ""
          (List.map
             (fun sg -> Printf.sprintf " sub %s %d" sg.Message.sg_name sg.Message.sg_width)
             m.Message.subgroups)
      in
      let beats = if m.Message.beats = 1 then "" else Printf.sprintf " beats %d" m.Message.beats in
      Buffer.add_string buf
        (Printf.sprintf "msg %s %d from %s to %s%s%s\n" m.Message.name m.Message.width m.Message.src
           m.Message.dst beats subs))
    f.Flow.messages;
  List.iter
    (fun (tr : Flow.transition) ->
      Buffer.add_string buf
        (Printf.sprintf "trans %s %s %s\n" tr.Flow.t_src tr.Flow.t_msg tr.Flow.t_dst))
    f.Flow.transitions;
  Buffer.contents buf

let print_flows fs = String.concat "\n" (List.map print_flow fs)
