(** Source spans: the position of a flow element in a [.flow] file.

    Spans are threaded from {!Spec_parser} through every parsed element so
    downstream tooling (the [flowtrace lint] diagnostics in
    [lib/analysis]) can point at the offending line of the specification
    text. Lines and columns are 1-based; [line = 0] means "no position"
    (elements built programmatically rather than parsed). *)

type t = { file : string; line : int; col : int }

(** [make ~file ~line ~col] builds a span. *)
val make : file:string -> line:int -> col:int -> t

(** [none file] is the position-less span for [file] ([line = 0]). *)
val none : string -> t

(** [dummy] is the position-less span for an unknown file. *)
val dummy : t

(** [has_position s] is true when [s] carries a real line number. *)
val has_position : t -> bool

(** Lexicographic order: file, then line, then column. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [to_string s] is ["file:line:col"], or just ["file"] without a
    position. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
