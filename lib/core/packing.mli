(** Step 3: packing leftover trace-buffer bits with message subgroups
    (Section 3.3).

    Greedily adds the subgroup (a named bit-field of a message that was not
    selected whole) that maximizes the information gain of the union, until
    no subgroup fits the leftover width. Table 3's "WP" columns measure the
    benefit. *)

(** A packed subgroup: the parent message and the chosen bit-field. *)
type packed = { p_parent : Message.t; p_sub : Message.subgroup }

(** [qualified p] is the display name ["parent.sub"]. *)
val qualified : packed -> string

(** [fits messages ~buffer_width] — can at least one message's
    {!Message.trace_width} fit the budget? When [false], Step 1 can never
    seed a candidate set and {!Select.select} will reject the width; the
    static debuggability analysis uses this to prove infeasibility without
    running the candidate fold. *)
val fits : Message.t list -> buffer_width:int -> bool

(** [packable messages ~leftover] enumerates every subgroup of [messages]
    narrow enough for [leftover] bits — the raw candidate pool one Step 3
    round considers (before excluding already-selected parents and
    already-packed subgroups, which {!pack} does internally). *)
val packable : Message.t list -> leftover:int -> packed list

(** [gain_with ev ~scale_partial ~selected ~packs] is the information
    gain of the full messages [selected] together with packed subgroups
    [packs], evaluated against a precomputed {!Infogain.evaluator} (build
    it once with [Infogain.evaluator inter] and score many candidate pack
    sets without rescanning the edge list). When [scale_partial] each
    subgroup's term is scaled by the captured fraction of parent bits;
    otherwise (the paper's formulation) a subgroup contributes the
    parent's full term. *)
val gain_with :
  Infogain.evaluator ->
  scale_partial:bool ->
  selected:Message.t list ->
  packs:packed list ->
  float

(** [pack inter ~selected ~gain ~bits_used ~buffer_width ~scale_partial]
    runs Step 3 and returns [(packs, final_gain, final_bits_used)]. *)
val pack :
  Interleave.t ->
  selected:Message.t list ->
  gain:float ->
  bits_used:int ->
  buffer_width:int ->
  scale_partial:bool ->
  packed list * float * int
