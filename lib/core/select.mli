(** The full message-selection pipeline (Section 3): Step 1 candidate
    enumeration under the buffer-width constraint, Step 2 mutual-information
    maximization, Step 3 packing of leftover bits with message subgroups. *)

(** Candidate search strategy for Steps 1-2:
    - [Exact]: enumerate every fitting combination and score each (the
      paper's formulation);
    - [Exact_maximal]: enumerate, then keep only inclusion-maximal fitting
      combinations — sound because gain is monotone, and cheaper to score;
    - [Greedy]: iteratively add the message with the best precomputed gain
      term that still fits; O(n) gain evaluations, for large scenarios. *)
type strategy = Exact | Exact_maximal | Greedy

(** Outcome of a selection run. [bits_used / buffer_width] is the
    trace-buffer utilization reported in Table 3. *)
type result = {
  messages : Message.t list;  (** fully selected messages (Step 2) *)
  packed : Packing.packed list;  (** packed subgroups (Step 3) *)
  gain : float;  (** information gain of the final selection *)
  coverage : float;  (** flow specification coverage, Definition 7 *)
  bits_used : int;
  buffer_width : int;
}

(** [utilization r] is [bits_used / buffer_width] in [0, 1]. *)
val utilization : result -> float

(** Display names of everything selected, subgroups qualified as
    ["parent.sub"]. *)
val selected_names : result -> string list

(** Base message names whose transitions are observable under [r] —
    fully selected messages plus parents of packed subgroups. *)
val observable_bases : result -> string list

(** [is_observable r base] tests membership in {!observable_bases}. *)
val is_observable : result -> string -> bool

(** [step2 inter candidates] scores every candidate and returns the best
    with its gain. Ties break deterministically: more bits (utilization is
    the paper's secondary objective), then lexicographic. Raises
    [Invalid_argument] on an empty candidate list. *)
val step2 : Interleave.t -> Message.t list list -> Message.t list * float

(** [select inter ~buffer_width] runs the pipeline. [pack] (default true)
    enables Step 3; [scale_partial] (default false — the paper's
    formulation) scales packed subgroup contributions by captured bit
    fraction; [limit] bounds Step-1 enumeration (exceeding it raises
    [Combination.Too_many]). Raises [Invalid_argument] when no message
    fits the buffer.

    The exact strategies stream the width-pruned subset tree with
    incrementally scored paths — peak live memory is O(pool), independent
    of the candidate count. [jobs] (default 1) fans the walk out across
    that many OCaml domains; the result is identical for any job count
    (the best candidate under the deterministic tie-break is unique, and
    per-candidate scores are bit-for-bit equal on every path). *)
val select :
  ?strategy:strategy ->
  ?limit:int ->
  ?jobs:int ->
  ?pack:bool ->
  ?scale_partial:bool ->
  Interleave.t ->
  buffer_width:int ->
  result

val pp_result : Format.formatter -> result -> unit

(** Per-message breakdown of the selection decision. *)
type contribution = {
  co_message : Message.t;
  co_gain : float;  (** the message's own information term *)
  co_bits : int;  (** per-cycle trace width *)
  co_density : float;  (** gain per trace-buffer bit *)
  co_selected : bool;
  co_packed : bool;  (** observed only through packed subgroups *)
}

(** [explain inter r] ranks the whole message pool by information term —
    the "why was this traced?" report. *)
val explain : Interleave.t -> result -> contribution list

val pp_contribution : Format.formatter -> contribution -> unit
