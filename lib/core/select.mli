(** The full message-selection pipeline (Section 3): Step 1 candidate
    enumeration under the buffer-width constraint, Step 2 mutual-information
    maximization, Step 3 packing of leftover bits with message subgroups. *)

(** Candidate search strategy for Steps 1-2:
    - [Exact]: enumerate every fitting combination and score each (the
      paper's formulation);
    - [Exact_maximal]: enumerate, then keep only inclusion-maximal fitting
      combinations — sound because gain is monotone, and cheaper to score;
    - [Greedy]: iteratively add the message with the best precomputed gain
      term that still fits; O(n) gain evaluations, for large scenarios. *)
type strategy = Exact | Exact_maximal | Greedy

(** Which implementation runs an exact unbudgeted Step-1/2 search:
    - [Auto] (the default) picks the word-parallel kernel ({!Kernel})
      whenever the pool fits its mask width ([Kernel.max_pool] slots) and
      the streaming walk beyond;
    - [Stream] forces the streaming walk;
    - [Bitset] forces the kernel (raises [Invalid_argument] on oversized
      pools).

    The two engines are bit-identical — same candidates, same float sums,
    same counter totals, same [Too_many] behavior — so the choice is
    purely a speed matter. Budgeted (anytime) and greedy runs always use
    the streaming engine. *)
type engine = Auto | Stream | Bitset

(** How complete the search behind a result was — the degradation tier of
    an anytime run. *)
module Tier : sig
  type t =
    | Exact  (** the requested strategy ran to completion *)
    | Anytime of { explored : int; total_estimate : int }
        (** a budget ([deadline] / [max_candidates]) expired mid-stream;
            the result is the best of the [explored] candidates streamed
            before expiry, out of an estimated [total_estimate]
            (extrapolated from the completed fraction of the task plan) *)
    | Greedy_fallback
        (** the budget expired before any candidate completed (or was
            already expired on entry); the result is the greedy baseline *)

  (** [is_degraded t] is [false] only for [Exact]. *)
  val is_degraded : t -> bool

  (** One-line rendering for CLI output and reports. *)
  val to_string : t -> string
end

(** Outcome of a selection run. [bits_used / buffer_width] is the
    trace-buffer utilization reported in Table 3. *)
type result = {
  messages : Message.t list;  (** fully selected messages (Step 2) *)
  packed : Packing.packed list;  (** packed subgroups (Step 3) *)
  gain : float;  (** information gain of the final selection *)
  coverage : float;  (** flow specification coverage, Definition 7 *)
  bits_used : int;
  buffer_width : int;
  tier : Tier.t;  (** [Tier.Exact] unless a budget degraded the run *)
}

(** [utilization r] is [bits_used / buffer_width] in [0, 1]. *)
val utilization : result -> float

(** Display names of everything selected, subgroups qualified as
    ["parent.sub"]. *)
val selected_names : result -> string list

(** Base message names whose transitions are observable under [r] —
    fully selected messages plus parents of packed subgroups. *)
val observable_bases : result -> string list

(** [is_observable r base] tests membership in {!observable_bases}. *)
val is_observable : result -> string -> bool

(** [step2 inter candidates] scores every candidate and returns the best
    with its gain. Ties break deterministically: more bits (utilization is
    the paper's secondary objective), then lexicographic. Raises
    [Invalid_argument] on an empty candidate list. *)
val step2 : Interleave.t -> Message.t list list -> Message.t list * float

(** [select inter ~buffer_width] runs the pipeline. [pack] (default true)
    enables Step 3; [scale_partial] (default false — the paper's
    formulation) scales packed subgroup contributions by captured bit
    fraction; [limit] bounds Step-1 enumeration (exceeding it raises
    [Combination.Too_many]). Raises [Invalid_argument] when no message
    fits the buffer.

    The exact strategies stream the width-pruned subset tree with
    incrementally scored paths — peak live memory is O(pool), independent
    of the candidate count. [jobs] (default 1) fans the walk out across
    that many OCaml domains; the result is identical for any job count
    (the best candidate under the deterministic tie-break is unique, and
    per-candidate scores are bit-for-bit equal on every path).

    [deadline] (absolute [Unix.gettimeofday] time) and [max_candidates]
    turn the exact strategies into anytime searches: the budgets are
    checked cooperatively inside the streaming fold (the deadline every
    256 candidates), and on expiry the engine stops cleanly and returns
    the best-so-far from the streamed prefix with [result.tier =
    Anytime _] — or the greedy baseline ([Greedy_fallback]) if no
    candidate had completed. A budgeted run whose budgets never expire is
    bit-identical to an unbudgeted one, with tier [Exact]. Degraded
    results from expired budgets are not deterministic across job counts
    (the explored prefix depends on the schedule); only complete runs
    are.

    [engine] (default [Auto]) picks between the streaming walk and the
    word-parallel kernel for exact unbudgeted runs; see {!engine}. *)
val select :
  ?strategy:strategy ->
  ?limit:int ->
  ?jobs:int ->
  ?deadline:float ->
  ?max_candidates:int ->
  ?pack:bool ->
  ?scale_partial:bool ->
  ?engine:engine ->
  Interleave.t ->
  buffer_width:int ->
  result

(** [greedy inter ~buffer_width] is the Step-2 greedy baseline on its own:
    repeatedly add the highest-marginal-gain message that still fits.
    Returns the chosen combination ([[]] when nothing fits) — the fallback
    external engines use when a budget expires before any exact candidate
    completes. *)
val greedy : Interleave.t -> buffer_width:int -> Message.t list

(** Incrementally scored branches of the streaming walk, exposed for the
    [lib/runtime] supervisor, which drives {!Combination.fold_task} folds
    of its own. Extending a path adds the message's gain term and width in
    take (width-ascending) order, so rebuilding a path by extending along
    {!Combination.canonical_pool} order reproduces a live walk's float
    sums bit-for-bit. *)
module Path : sig
  type t

  val empty : t

  (** [extend ev p m] scores one more taken message. *)
  val extend : Infogain.evaluator -> t -> Message.t -> t

  val gain : t -> float
  val bits : t -> int

  (** Messages in take (width-ascending) order — the order
      [result.messages] lists them in. *)
  val messages : t -> Message.t list

  (** Sorted name list — the deterministic tie-break key. *)
  val key : t -> string list

  (** The engine's strict "better candidate" order: higher gain, then
      more bits, then lexicographically smaller key. Total on distinct
      candidates, so the best is unique. *)
  val better : t -> t -> bool

  (** [merge a b] keeps the better of two optional bests. *)
  val merge : t option -> t option -> t option
end

(** [finalize inter ~combo ~gain ~buffer_width] runs Step 3 packing and
    coverage over an already-chosen Step-2 combination and assembles the
    {!result} — the tail of {!select}, exposed so external engines
    (supervised/anytime runs in [lib/runtime]) produce results identical
    in shape and packing to an in-process run. [tier] defaults to
    [Tier.Exact]. [kernel], when given, computes coverage via the
    word-parallel {!Kernel.coverage} fold instead of [Coverage.compute]
    (identical value, no edge-list rescan). *)
val finalize :
  ?pack:bool ->
  ?scale_partial:bool ->
  ?tier:Tier.t ->
  ?kernel:Kernel.t ->
  Interleave.t ->
  combo:Message.t list ->
  gain:float ->
  buffer_width:int ->
  result

(** Work counters of a delta re-selection, for telemetry and tests:
    distinct feasible seeds re-scored, candidates streamed and scored by
    the branch-and-bound walk, and subtrees pruned. Deterministic at any
    job count. *)
type reselect_stats = {
  rs_seeds : int;
  rs_streamed : int;
  rs_scored : int;
  rs_pruned_subtrees : int;
}

(** [reselect ~seeds inter ~buffer_width] is {!select} with prior-run
    knowledge: each seed (a candidate as a message-name list, typically
    the journalled best of a slightly different scenario) is re-scored
    under the current scenario, and the best feasible seed gain prunes
    the exact walk as a branch-and-bound incumbent. The result is
    bit-identical to a from-scratch {!select} — pruning only cuts
    subtrees whose upper bound is strictly below the incumbent — but
    re-scores strictly fewer candidates whenever a seed is any good.
    Stats are [Some] when the kernel branch-and-bound ran, [None] when
    the call delegated to plain {!select} (greedy strategy, budgeted
    runs, or a pool past [Kernel.max_pool]). Seeds naming unknown
    messages or no longer fitting the buffer are dropped. *)
val reselect :
  ?strategy:strategy ->
  ?limit:int ->
  ?jobs:int ->
  ?deadline:float ->
  ?max_candidates:int ->
  ?pack:bool ->
  ?scale_partial:bool ->
  seeds:string list list ->
  Interleave.t ->
  buffer_width:int ->
  result * reselect_stats option

val pp_result : Format.formatter -> result -> unit

(** Per-message breakdown of the selection decision. *)
type contribution = {
  co_message : Message.t;
  co_gain : float;  (** the message's own information term *)
  co_bits : int;  (** per-cycle trace width *)
  co_density : float;  (** gain per trace-buffer bit *)
  co_selected : bool;
  co_packed : bool;  (** observed only through packed subgroups *)
}

(** [explain inter r] ranks the whole message pool by information term —
    the "why was this traced?" report. *)
val explain : Interleave.t -> result -> contribution list

val pp_contribution : Format.formatter -> contribution -> unit
