(* Deterministic splitmix64 generator. Simulations, workloads and tests all
   draw from this so that every experiment is reproducible from a seed. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod n

(* NB: [1 lsl 62] overflows to [min_int] on 63-bit ints, so dividing by
   it silently produced values in (-1, 0]; scale by 2^-62 exactly. *)
let float t bound = ldexp (Float.of_int (bits t)) (-62) *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let pick_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_arr: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = create (Int64.to_int (next_int64 t))
