(** Messages: the alphabet of flows.

    A message is a named assignment to the interface signals of a hardware
    IP, abstracted as a pair [(content, width)] per Section 2 of the paper.
    Width is the number of bits the message occupies in the trace buffer.
    Messages additionally carry their source and destination IP (used to
    derive legal IP pairs during debugging) and an optional list of
    {e subgroups} — named bit-fields that Step 3 of the selection algorithm
    may pack individually (e.g. OpenSPARC T2's 20-bit [dmusiidata] with its
    6-bit [cputhreadid] field). *)

(** A packable bit-field of a wider message. *)
type subgroup = private { sg_name : string; sg_width : int }

type t = private {
  name : string;  (** unique within a usage scenario *)
  width : int;  (** total bit width; must be positive *)
  beats : int;  (** cycles the message streams over (footnote 2); >= 1 *)
  src : string;  (** source IP name, ["?"] when unknown *)
  dst : string;  (** destination IP name, ["?"] when unknown *)
  subgroups : subgroup list;  (** packable sub-fields, strictly narrower *)
}

(** [make name width] builds a message. Raises [Invalid_argument] when the
    name is empty, the width is not positive, [beats] is outside
    [1, width], a subgroup is as wide as the message, or subgroup names
    collide. *)
val make :
  ?src:string -> ?dst:string -> ?subgroups:subgroup list -> ?beats:int -> string -> int -> t

(** [subgroup name width] builds a subgroup descriptor. *)
val subgroup : string -> int -> subgroup

(** [width m] is [m.width]. *)
val width : t -> int

(** [trace_width m] is the bits [m] occupies in the trace buffer per
    cycle: [ceil (width / beats)] — footnote 2's rule for multi-cycle
    messages. *)
val trace_width : t -> int

(** [total_width ms] is the summed per-cycle trace width of a message
    combination (Definition 6 with footnote 2). *)
val total_width : t list -> int

(** Total order on message names. *)
val compare_by_name : t -> t -> int

(** [equal_name a b] compares by name only. *)
val equal_name : t -> t -> bool

(** [equal a b] is full structural equality: name, width, beats,
    endpoints, and subgroups (in declaration order). *)
val equal : t -> t -> bool

(** [find_subgroup m name] looks up a subgroup of [m] by name. *)
val find_subgroup : t -> string -> subgroup option

(** [qualified_subgroup_name m sg] is ["m.sg"], the display name used in
    selection results. *)
val qualified_subgroup_name : t -> subgroup -> string

val pp : Format.formatter -> t -> unit
val to_string : t -> string
