(** Flows: transaction-level protocol specifications (Definition 1).

    A flow is a directed acyclic graph [⟨S, S0, Sp, E, δ, Atom⟩]: flow
    states, initial states, stop states, messages, a transition relation
    labeled with messages, and a mutex set of {e atomic} states. An
    execution (Definition 2) alternates states and messages and ends in a
    stop state; its trace is the message sequence.

    [make] validates the structural invariants the paper assumes implicitly
    plus the ones executions need to be well defined:
    - the transition graph is a DAG,
    - [Sp ∩ Atom = ∅] (Definition 1),
    - stop states have no successors,
    - every state is reachable from an initial state and reaches a stop
      state (so no execution strands, and atomic states can always be
      exited). *)

(** One labeled edge of the transition DAG: firing it in state [t_src]
    emits message [t_msg] and moves the flow to [t_dst]. Build with
    {!transition}; the type is private so every flow passes [make]'s
    validation. *)
type transition = private { t_src : string; t_msg : string; t_dst : string }

(** A validated flow. Fields mirror the paper's tuple: [atomic] is the
    mutex set Atom (at most one instance may occupy an atomic state at a
    time, enforced operationally by the simulator), [messages] the
    declared alphabet E. Only {!make} produces values of this type. *)
type t = private {
  name : string;
  states : string list;
  initial : string list;
  stop : string list;
  atomic : string list;
  messages : Message.t list;
  transitions : transition list;
}

(** Raised by [make] with the flow name and the list of violated
    invariants. *)
exception Invalid of string * string list

(** [transition src msg dst] builds a transition labeled with message name
    [msg]. *)
val transition : string -> string -> string -> transition

(** [make ~name ~states ~initial ~stop ?atomic ~messages ~transitions ()]
    builds and validates a flow. Raises {!Invalid} when any invariant is
    violated. *)
val make :
  name:string ->
  states:string list ->
  initial:string list ->
  stop:string list ->
  ?atomic:string list ->
  messages:Message.t list ->
  transitions:transition list ->
  unit ->
  t

(** [validate t] re-checks all invariants, returning the violations. *)
val validate : t -> (unit, string list) result

(** [message t name] looks up a declared message by name. *)
val message : t -> string -> Message.t option

(** [message_exn t name] is [message] or [Invalid_argument]. *)
val message_exn : t -> string -> Message.t

(** [successors t s] is the list of transitions leaving [s]. *)
val successors : t -> string -> transition list

(** [predecessors t s] is the list of transitions entering [s]. *)
val predecessors : t -> string -> transition list

(** [equal a b] is full structural equality: every field compared in
    declaration order ({!Message.equal} on messages). *)
val equal : t -> t -> bool

(** [is_stop t s] — is [s] one of the stop states [Sp]? *)
val is_stop : t -> string -> bool

(** [is_atomic t s] — is [s] in the mutex set [Atom]? *)
val is_atomic : t -> string -> bool

(** [is_initial t s] — is [s] one of the initial states [S0]? *)
val is_initial : t -> string -> bool

val n_states : t -> int
val n_messages : t -> int

(** [executions t] enumerates the traces of all executions of the single
    flow (message-name sequences). Raises [Failure] past [limit] paths. *)
val executions : ?limit:int -> t -> string list list

(** [paths t] enumerates executions as [(trace, state path)] pairs — the
    message sequence and the state sequence (initial to stop) of every
    initial-to-stop path, in DFS order. Unlike {!executions} it degrades
    instead of raising: past [limit] (default 1,000,000) paths the
    enumeration stops and the second component is [true] (truncated).
    The static debuggability analysis ([flowtrace check]) is built on
    this seam. *)
val paths : ?limit:int -> t -> (string list * string list) list * bool

(** Sentinel message names bounding {!bigrams}: ["^"] and ["$"]. Neither
    can collide with a real message name (the spec and trace wire formats
    both reject them as delimiters-adjacent tokens in practice, and flows
    declaring them would be fuzz input, not specs). *)
val bigram_start : string

val bigram_stop : string

(** [bigrams t] is the sorted, deduplicated set of adjacent message pairs
    over all executions of [t], with {!bigram_start} before first messages
    and {!bigram_stop} after last ones — the state-name-agnostic "edge
    set" of the flow. Two flows with the same execution language have the
    same bigrams regardless of state naming or DAG minimality, which is
    what the mined-vs-ground-truth edge precision/recall scorer
    ([lib/mining]'s [Score]) compares. Computed structurally (no path
    enumeration), so it is cheap even on flows with many executions. *)
val bigrams : t -> (string * string) list

(** One-line summary: name, state/message counts, atomic states. *)
val pp : Format.formatter -> t -> unit
