type t = { base : string; inst : int }

let make base inst =
  if inst < 0 then invalid_arg "Indexed.make: negative instance index";
  { base; inst }

let compare a b =
  match Int.compare a.inst b.inst with 0 -> String.compare a.base b.base | c -> c

let equal a b = a.inst = b.inst && String.equal a.base b.base

let to_string a = Printf.sprintf "%d:%s" a.inst a.base

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* Explicit FNV-1a over the name bytes, then the instance index mixed in
   as one more round. The previous [Hashtbl.hash (a.base, a.inst)] was the
   polymorphic hash, whose traversal budget silently stops reading long
   values — names differing only deep in the string collapsed to one
   bucket. Masked to 30 bits so the value is identical on 32- and 64-bit
   platforms (and positive, as Hashtbl requires). *)
let hash a =
  let fnv_prime = 0x01000193 in
  let h = ref 0x811c9dc5 in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land 0x3FFFFFFF) a.base;
  h := (!h lxor (a.inst land 0xFF)) * fnv_prime land 0x3FFFFFFF;
  h := (!h lxor (a.inst lsr 8)) * fnv_prime land 0x3FFFFFFF;
  !h

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)
