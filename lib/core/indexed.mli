(** Indexed messages (Definition 3).

    An indexed message [⟨m, i⟩] tags a message name with the index of the
    flow instance that emitted it, distinguishing concurrent instances of
    the same flow (the paper's formalization of hardware {e tagging}).
    Rendered as ["i:m"], e.g. ["1:ReqE"]. *)

type t = { base : string;  (** message name *) inst : int  (** flow-instance index *) }

(** [make base inst] builds an indexed message; [inst] must be
    non-negative. *)
val make : string -> int -> t

(** Total order: by base name, then by instance index. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Hash consistent with {!equal}, for [Hashtbl]-keyed tables. *)
val hash : t -> int

(** ["i:m"] rendering, e.g. ["1:ReqE"] — the same notation the CLI's
    [localize] command parses back. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
