type subgroup = { sg_name : string; sg_width : int }

type t = {
  name : string;
  width : int;
  beats : int;  (* cycles the message is streamed over; footnote 2 *)
  src : string;
  dst : string;
  subgroups : subgroup list;
}

let make ?(src = "?") ?(dst = "?") ?(subgroups = []) ?(beats = 1) name width =
  if name = "" then invalid_arg "Message.make: empty name";
  if width <= 0 then invalid_arg (Printf.sprintf "Message.make: %s has width %d" name width);
  if beats < 1 || beats > width then
    invalid_arg (Printf.sprintf "Message.make: %s has %d beats for width %d" name beats width);
  List.iter
    (fun sg ->
      if sg.sg_width <= 0 || sg.sg_width >= width then
        invalid_arg
          (Printf.sprintf "Message.make: subgroup %s.%s width %d not in (0, %d)" name sg.sg_name
             sg.sg_width width))
    subgroups;
  let names = List.map (fun sg -> sg.sg_name) subgroups in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg (Printf.sprintf "Message.make: duplicate subgroup names in %s" name);
  { name; width; beats; src; dst; subgroups }

let subgroup name width =
  if width <= 0 then invalid_arg "Message.subgroup: width must be positive";
  { sg_name = name; sg_width = width }

let width m = m.width

(* Bits the message occupies in the trace buffer per cycle: a multi-cycle
   message streamed over [beats] cycles needs only its per-beat width
   (the paper's footnote 2). *)
let trace_width m = (m.width + m.beats - 1) / m.beats

let total_width ms = List.fold_left (fun acc m -> acc + trace_width m) 0 ms

let compare_by_name a b = String.compare a.name b.name

let equal_name a b = String.equal a.name b.name

let equal_subgroup a b = String.equal a.sg_name b.sg_name && a.sg_width = b.sg_width

let equal a b =
  String.equal a.name b.name && a.width = b.width && a.beats = b.beats
  && String.equal a.src b.src && String.equal a.dst b.dst
  && List.length a.subgroups = List.length b.subgroups
  && List.for_all2 equal_subgroup a.subgroups b.subgroups

let find_subgroup m name = List.find_opt (fun sg -> String.equal sg.sg_name name) m.subgroups

let qualified_subgroup_name m sg = m.name ^ "." ^ sg.sg_name

let pp ppf m =
  if m.beats = 1 then Format.fprintf ppf "%s<%d>" m.name m.width
  else Format.fprintf ppf "%s<%dx%d>" m.name (trace_width m) m.beats

let to_string m = Format.asprintf "%a" pp m
