(** Dense bit vectors over int words — the word-parallel substrate of the
    selection kernel ({!Kernel}). Coverage-style set cardinalities become
    word-OR folds with table-driven popcounts instead of per-element
    marking passes. *)

type t

(** Bits stored per array word (63: the full OCaml int payload). *)
val bits_per_word : int

(** [create n] is an empty set over the universe [[0, n)]. *)
val create : int -> t

(** The universe size [n] given to {!create}. *)
val length : t -> int

(** [set t i] adds [i]. Raises [Invalid_argument] out of range. *)
val set : t -> int -> unit

(** [mem t i] tests membership. Raises [Invalid_argument] out of range. *)
val mem : t -> int -> bool

(** Number of set bits. *)
val popcount : t -> int

(** Popcount of one word value (any non-negative int). *)
val popcount_word : int -> int

(** [union_into ~into src] ORs [src] into [into]; both must share one
    universe size. *)
val union_into : into:t -> t -> unit

(** Remove every element. *)
val clear : t -> unit

(** [popcount_union sets] is the cardinality of the union, computed as a
    word-parallel OR fold without materializing the union. Sets must share
    one universe size; the empty list has cardinality 0. *)
val popcount_union : t list -> int
