(** Mutual information gain of message combinations (Section 3.2).

    For an interleaved flow with reachable state set [S] and edge multiset
    [E]: [p(x) = 1/|S|]; for an indexed message [y], [p(y) = occ(y)/|E|]
    and [p(x|y)] is the fraction of [y]-labeled edges entering [x]. The
    gain of a candidate combination [Y'] is
    [Σ_{y ∈ indexed(Y'), x} p(x,y) · ln(p(x,y)/(p(x)p(y)))]
    — natural logarithm, as pinned by the paper's worked example
    [I(X;Y1) = 1.073].

    The gain decomposes into a non-negative term per indexed message
    ([p(y) · KL(p(·|y) ‖ uniform)]), hence it is monotone under adding
    messages; {!evaluator} exploits the decomposition to score many
    candidate combinations cheaply. *)

(** [compute inter ~selected] is the gain of the combination containing
    every base message name accepted by [selected]. *)
val compute : Interleave.t -> selected:(string -> bool) -> float

(** [compute_weighted inter ~weight] generalizes {!compute}: each base
    message contributes its term scaled by [weight name] (0 excludes it).
    Used by Step-3 packing with partial-width scaling. *)
val compute_weighted : Interleave.t -> weight:(string -> float) -> float

(** [of_combination inter combo] is the gain of an explicit message list. *)
val of_combination : Interleave.t -> Message.t list -> float

(** The paper's prior: [p(x) = 1/|S|]. *)
val uniform_prior : Interleave.t -> int -> float

(** Ablation prior: [p(x)] proportional to the executions passing through
    [x]. *)
val visit_prior : Interleave.t -> int -> float

(** [compute_with_prior inter ~selected ~prior] generalizes {!compute} to
    an arbitrary state prior. With a non-uniform prior individual terms
    can be negative, so monotonicity is no longer guaranteed. *)
val compute_with_prior :
  Interleave.t -> selected:(string -> bool) -> prior:(int -> float) -> float

(** Precomputed per-message terms for fast candidate scoring. *)
type evaluator

(** [evaluator inter] precomputes each base message's gain contribution.
    The most recent build is cached keyed by [inter]'s physical identity
    — evaluators are pure in the interleave and immutable, so repeated
    scoring of one interleave (greedy then exact, select then reselect,
    packing sweeps) pays for one build. *)
val evaluator : Interleave.t -> evaluator

(** [eval_base ev name] is the contribution of one base message. *)
val eval_base : evaluator -> string -> float

(** [eval ev combo] is the gain of [combo] in O(|combo|). *)
val eval : evaluator -> Message.t list -> float

(** [terms ev pool] is [eval_base] per pool slot as a float array — the
    per-message gain terms the word-parallel kernel ({!Kernel}) indexes
    directly during its mask-based walk. *)
val terms : evaluator -> Message.t array -> float array

(** [eval_weighted ev ~weight] is {!compute_weighted} against the
    precomputed terms: O(|bases|) per call instead of an edge-list rescan.
    Exact because each base's term is linear in its weight. *)
val eval_weighted : evaluator -> weight:(string -> float) -> float
