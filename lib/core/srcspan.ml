type t = { file : string; line : int; col : int }

let make ~file ~line ~col = { file; line; col }

let none file = { file; line = 0; col = 0 }

let dummy = none "<unknown>"

let has_position s = s.line > 0

let compare a b =
  match String.compare a.file b.file with
  | 0 -> ( match Int.compare a.line b.line with 0 -> Int.compare a.col b.col | c -> c)
  | c -> c

let equal a b = compare a b = 0

let to_string s =
  if has_position s then Printf.sprintf "%s:%d:%d" s.file s.line s.col else s.file

let pp ppf s = Format.pp_print_string ppf (to_string s)
