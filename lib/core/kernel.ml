(* The word-parallel selection kernel.

   Step-1/2 selection spends its whole life in the subset-tree walk, and
   the streaming engine still pays per-node for it: a hashtable probe per
   taken message, a Path record and list cons per branch extension, a
   polymorphic closure call per leaf. This kernel precomputes everything
   the walk reads into flat arrays over the canonical (width-ascending)
   pool — per-slot trace widths, per-slot gain terms, suffix term sums,
   and per-slot destination-state bitsets ({!Bitset}) — and represents a
   candidate as one int mask over pool slots. The walk then runs on ints
   and floats only: a take is [mask lor bit] plus one array-indexed float
   add, a leaf is three register compares, and coverage is a word-OR /
   popcount fold.

   Bit-identity contract: along any root-to-leaf path, takes happen in
   ascending slot order, so accumulating [terms.(i)] in that order
   reproduces the float association of the streaming engine's incremental
   [Select.Path] sums exactly — gains are bit-for-bit equal, candidate
   orders coincide, and the unique best under the deterministic comparator
   is the same at any job count. The task decomposition is shared with
   the streaming engine ({!Combination.plan}); the candidate-counter
   totals and the [Too_many] condition are settled arithmetically by a
   knapsack-counting DP ({!count_candidates}) before the walk starts, so
   they equal the streaming engine's per-leaf tick totals by construction
   — which in turn frees the walk to skip subtrees that provably cannot
   beat the best-so-far without any observable difference.

   On top of the exact fold, {!reselect} runs the same walk as an exact
   branch-and-bound: seed candidates (typically journalled bests from a
   previous run of a slightly different scenario) are re-scored under the
   new terms to form an incumbent, and any subtree whose inflated upper
   bound (prefix gain + remaining suffix term sum) falls strictly below
   the incumbent's gain is pruned. Because terms are non-negative and the
   bound over-approximates every float leaf sum below the node, no leaf
   that could beat or tie the final best is ever skipped — the result is
   bit-identical to a from-scratch run, it just re-scores fewer
   candidates. Pruning decisions use task-local incumbents only, so
   explored/scored totals are partition-invariant across job counts. *)

type t = {
  k_pool : Message.t array;  (* canonical width-ascending pool *)
  k_widths : int array;  (* per-slot trace width *)
  k_terms : float array;  (* per-slot gain term *)
  k_suffix : float array;  (* k_suffix.(i) = Σ_{j ≥ i} k_terms.(j); length n+1 *)
  k_states : Bitset.t array;  (* per-slot destination-state set *)
  k_n_states : int;
  k_index : (string, int) Hashtbl.t;  (* base name -> pool slot *)
}

(* Masks are one OCaml int; keep the sign bit out of them. *)
let max_pool = 62

let n_messages t = Array.length t.k_pool
let pool t = t.k_pool

let make inter =
  let pool = Array.of_list (Combination.canonical_pool (Interleave.messages inter)) in
  let n = Array.length pool in
  if n > max_pool then
    invalid_arg
      (Printf.sprintf "Kernel.make: pool of %d messages exceeds the %d-slot mask limit" n
         max_pool);
  let ev = Infogain.evaluator inter in
  let widths = Array.map Message.trace_width pool in
  let terms = Infogain.terms ev pool in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- terms.(i) +. suffix.(i + 1)
  done;
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i (m : Message.t) -> Hashtbl.replace index m.Message.name i) pool;
  let n_states = Interleave.n_states inter in
  let states = Array.init n (fun _ -> Bitset.create n_states) in
  List.iter
    (fun (e : Interleave.edge) ->
      match Hashtbl.find_opt index e.Interleave.e_msg.Indexed.base with
      | Some i -> Bitset.set states.(i) e.Interleave.e_dst
      | None -> ())
    (Interleave.edges inter);
  {
    k_pool = pool;
    k_widths = widths;
    k_terms = terms;
    k_suffix = suffix;
    k_states = states;
    k_n_states = n_states;
    k_index = index;
  }

(* ------------------------------------------------------------------ *)
(* Masks *)

let mask_of_names t names =
  let rec go mask = function
    | [] -> Some mask
    | name :: rest -> (
        match Hashtbl.find_opt t.k_index name with
        | Some i -> go (mask lor (1 lsl i)) rest
        | None -> None)
  in
  go 0 names

(* Iterate set slots in ascending order: clear the lowest set bit each
   round; its index is the popcount of the bits below it. *)
let iter_mask f mask =
  let m = ref mask in
  while !m <> 0 do
    let lsb = !m land - !m in
    f (Bitset.popcount_word (lsb - 1));
    m := !m land (!m - 1)
  done

let messages_of_mask t mask =
  let acc = ref [] in
  iter_mask (fun i -> acc := t.k_pool.(i) :: !acc) mask;
  List.rev !acc

(* Ascending-slot term sum: the float association every walk leaf uses,
   so a re-scored mask is bit-identical to its live walk gain. *)
let gain_of_mask t mask =
  let g = ref 0.0 in
  iter_mask (fun i -> g := !g +. t.k_terms.(i)) mask;
  !g

let bits_of_mask t mask =
  let b = ref 0 in
  iter_mask (fun i -> b := !b + t.k_widths.(i)) mask;
  !b

let key_of_mask t mask =
  let names = ref [] in
  iter_mask (fun i -> names := t.k_pool.(i).Message.name :: !names) mask;
  List.sort String.compare !names

(* ------------------------------------------------------------------ *)
(* Coverage: Definition 7 as a word-parallel union/popcount. Identical to
   Coverage.compute because each slot's bitset marks exactly the
   destination states of that base's edges. *)

let coverage t ~selected =
  if t.k_n_states = 0 then 0.0
  else begin
    let sets = ref [] in
    Array.iteri
      (fun i (m : Message.t) -> if selected m.Message.name then sets := t.k_states.(i) :: !sets)
      t.k_pool;
    float_of_int (Bitset.popcount_union !sets) /. float_of_int t.k_n_states
  end

(* ------------------------------------------------------------------ *)
(* Best-candidate tracking.

   Mirrors the deterministic comparator of Select: higher gain first
   (exact float compare), then more bits, then lexicographically smaller
   sorted name key. The key is only materialized on exact (gain, bits)
   ties, which are rare. *)

type best = { mutable bg : float; mutable bb : int; mutable bmask : int; mutable bkey : string list }

let no_best () = { bg = neg_infinity; bb = 0; bmask = 0; bkey = [] }
let has_best b = b.bmask <> 0

let consider t b gain bits mask =
  if not (has_best b) then begin
    b.bg <- gain;
    b.bb <- bits;
    b.bmask <- mask;
    b.bkey <- []
  end
  else if gain <> b.bg then begin
    if gain > b.bg then begin
      b.bg <- gain;
      b.bb <- bits;
      b.bmask <- mask;
      b.bkey <- []
    end
  end
  else if bits <> b.bb then begin
    if bits > b.bb then begin
      b.bb <- bits;
      b.bmask <- mask;
      b.bkey <- []
    end
  end
  else begin
    if b.bkey = [] then b.bkey <- key_of_mask t b.bmask;
    let ck = key_of_mask t mask in
    if ck < b.bkey then begin
      b.bmask <- mask;
      b.bkey <- ck
    end
  end

(* Merge two per-task bests (task order); same comparator. *)
let merge_best t a b =
  if not (has_best b) then a
  else if not (has_best a) then b
  else begin
    consider t a b.bg b.bb b.bmask;
    a
  end

(* Replay a task's prefix takes: same take order, same float association
   as the streaming engine replaying [Combination.task_taken]. *)
let prefix_of_task t plan idx =
  List.fold_left
    (fun (mask, gain, bits, taken) (m : Message.t) ->
      let i = Hashtbl.find t.k_index m.Message.name in
      (mask lor (1 lsl i), gain +. t.k_terms.(i), bits + t.k_widths.(i), taken + 1))
    (0, 0.0, 0, 0)
    (Combination.task_taken plan idx)

type selection = {
  sel_messages : Message.t list;
  sel_gain : float;
  sel_streamed : int;  (* candidates before the maximality filter *)
  sel_scored : int;  (* leaves scored *)
}

(* How many candidates would the walk stream? The walk enumerates every
   non-empty subset of the pool whose total trace width fits the buffer,
   exactly once — so the count is a knapsack-counting DP over widths,
   O(n·width), no tree walk at all. This is what lets the hot walks below
   drop the per-leaf tick entirely: [Too_many] is decided upfront from
   this count (the streaming engine raises if and only if the total
   exceeds the limit, and so do we), and the streamed/scored counters
   become arithmetic — identical to the streaming engine's totals and
   trivially partition-invariant.

   Counts saturate at [count_cap] so a 2^62-subset pool cannot wrap; a
   saturated count still compares correctly against any practical limit. *)
let count_cap = max_int / 4

let count_candidates t ~buffer_width =
  if buffer_width <= 0 then 0
  else begin
    let cap_w = min buffer_width (Array.fold_left ( + ) 0 t.k_widths) in
    let sat a b =
      let s = a + b in
      if s < 0 || s > count_cap then count_cap else s
    in
    let dp = Array.make (cap_w + 1) 0 in
    dp.(0) <- 1;
    Array.iter
      (fun w ->
        if w <= cap_w then
          for r = cap_w downto w do
            dp.(r) <- sat dp.(r) dp.(r - w)
          done)
      t.k_widths;
    Array.fold_left sat 0 dp - 1 (* minus the empty selection *)
  end

(* Covers the float rounding slack of re-associated non-negative sums
   (≤ ~n·2⁻⁵² relative for n ≤ 62 terms) with four orders of magnitude to
   spare, so an inflated upper bound never prunes a leaf that could win
   or tie under the deterministic comparator. *)
let bound_inflation = 1.0 +. 1e-9

(* One task's mask walk, plain-Exact specialization: every leaf is scored,
   so with the tick gone (see [count_candidates]) a leaf is just one float
   compare — and whole subtrees whose inflated upper bound (prefix gain +
   remaining suffix sum) cannot reach the best-so-far are skipped without
   visiting them. Neither shortcut is observable: counters are computed
   arithmetically, the bound is sound (terms are non-negative and the
   inflation covers re-association slack), and surviving leaves are
   emitted in the exact leaf order of Combination.walk with the same
   ascending-slot float association. Two further register-level
   shortcuts: the pool is width-ascending, so the moment
   [widths.(i) > remaining] the subtree collapses to its single skip-only
   leaf; and [taken > 0] is just [mask <> 0]. *)
let walk_task_fast t plan idx best =
  let widths = t.k_widths and terms = t.k_terms and suffix = t.k_suffix in
  let n = Array.length t.k_pool in
  let mask0, gain0, bits0, _taken0 = prefix_of_task t plan idx in
  let rec go i remaining mask gain bits =
    if i = n then begin
      if mask <> 0 && gain >= best.bg then consider t best gain bits mask
    end
    else if (gain +. Array.unsafe_get suffix i) *. bound_inflation < best.bg then ()
    else begin
      let w = Array.unsafe_get widths i in
      if w > remaining then begin
        if mask <> 0 && gain >= best.bg then consider t best gain bits mask
      end
      else begin
        go (i + 1) remaining mask gain bits;
        go (i + 1) (remaining - w)
          (mask lor (1 lsl i))
          (gain +. Array.unsafe_get terms i)
          (bits + w)
      end
    end
  in
  go
    (Combination.task_start plan idx)
    (Combination.task_remaining plan idx)
    mask0 gain0 bits0

(* The Exact_maximal walk: skip-before-take, min_skipped maximality —
   the exact leaf order of Combination.walk. [scored] counts the leaves
   that pass the maximality filter, so here no subtree may be skipped on
   gain grounds (it could hide maximal leaves the counter must see); only
   the width-ascending skip-tail collapse applies, which emits the same
   leaves. *)
let walk_task_maximal t plan idx ~scored best =
  let widths = t.k_widths and terms = t.k_terms in
  let n = Array.length t.k_pool in
  let mask0, gain0, bits0, _taken0 = prefix_of_task t plan idx in
  let rec go i remaining min_skipped mask gain bits =
    if i = n then leaf remaining min_skipped mask gain bits
    else begin
      let w = Array.unsafe_get widths i in
      if w > remaining then leaf remaining (min min_skipped w) mask gain bits
      else begin
        go (i + 1) remaining (min min_skipped w) mask gain bits;
        go (i + 1) (remaining - w) min_skipped
          (mask lor (1 lsl i))
          (gain +. Array.unsafe_get terms i)
          (bits + w)
      end
    end
  and leaf remaining min_skipped mask gain bits =
    if mask <> 0 && min_skipped > remaining then begin
      incr scored;
      if gain >= best.bg then consider t best gain bits mask
    end
  in
  go
    (Combination.task_start plan idx)
    (Combination.task_remaining plan idx)
    (Combination.task_min_skipped plan idx)
    mask0 gain0 bits0

let finish t ~best ~streamed ~scored =
  if not (has_best best) then None
  else
    Some
      {
        sel_messages = messages_of_mask t best.bmask;
        sel_gain = best.bg;
        sel_streamed = streamed;
        sel_scored = scored;
      }

(* The exact engine: same plan split, same domain fan-out as Select's
   streaming engine. The candidate budget is settled before the walk —
   [count_candidates] tells us the exact streamed total, which exceeds
   the limit iff the streaming engine's per-leaf tick would eventually
   raise — so the walks run tick-free and [Too_many] fires upfront. *)
let select_exact ?(only_maximal = false) ~limit ~jobs t ~buffer_width =
  let pool_list = Array.to_list t.k_pool in
  let streamed = count_candidates t ~buffer_width in
  if streamed > limit then raise (Combination.Too_many limit);
  if jobs <= 1 then begin
    let plan = Combination.plan ~depth:0 pool_list ~width:buffer_width in
    let best = no_best () in
    if only_maximal then begin
      let scored = ref 0 in
      for idx = 0 to Combination.n_tasks plan - 1 do
        walk_task_maximal t plan idx ~scored best
      done;
      finish t ~best ~streamed ~scored:!scored
    end
    else begin
      for idx = 0 to Combination.n_tasks plan - 1 do
        walk_task_fast t plan idx best
      done;
      finish t ~best ~streamed ~scored:streamed
    end
  end
  else begin
    let plan = Combination.plan pool_list ~width:buffer_width in
    let ntasks = Combination.n_tasks plan in
    let results = Array.init ntasks (fun _ -> no_best ()) in
    let next = Atomic.make 0 in
    let scored = Atomic.make 0 in
    let failed = Atomic.make None in
    let work () =
      try
        let my_scored = ref 0 in
        let continue = ref true in
        while !continue do
          match Atomic.get failed with
          | Some _ -> continue := false
          | None ->
              let idx = Atomic.fetch_and_add next 1 in
              if idx >= ntasks then continue := false
              else if only_maximal then
                walk_task_maximal t plan idx ~scored:my_scored results.(idx)
              else walk_task_fast t plan idx results.(idx)
        done;
        ignore (Atomic.fetch_and_add scored !my_scored)
      with e -> Atomic.set failed (Some e)
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join domains;
    (match Atomic.get failed with Some e -> raise e | None -> ());
    let best = Array.fold_left (merge_best t) (no_best ()) results in
    finish t ~best ~streamed ~scored:(if only_maximal then Atomic.get scored else streamed)
  end

(* ------------------------------------------------------------------ *)
(* Delta re-selection: exact branch-and-bound seeded by prior bests. *)

type reselection = {
  r_messages : Message.t list;
  r_gain : float;
  r_seeds : int;  (* distinct feasible seeds re-scored *)
  r_streamed : int;
  r_scored : int;
  r_pruned_subtrees : int;
}

let walk_task_bb t plan idx ~only_maximal ~incumbent ~tick ~scored ~pruned best =
  let widths = t.k_widths and terms = t.k_terms and suffix = t.k_suffix in
  let n = Array.length t.k_pool in
  let mask0, gain0, bits0, taken0 = prefix_of_task t plan idx in
  (* task-local incumbent: pruning depends only on the seeds and this
     task's own (deterministic) walk order, never on sibling-task timing,
     so explored/scored totals are identical at any job count *)
  let inc = ref incumbent in
  let rec go i remaining taken min_skipped mask gain bits =
    if i = n then leaf remaining taken min_skipped mask gain bits
    else if (gain +. suffix.(i)) *. bound_inflation < !inc then incr pruned
    else begin
      let w = Array.unsafe_get widths i in
      if w > remaining then leaf remaining taken (min min_skipped w) mask gain bits
      else begin
        go (i + 1) remaining taken (min min_skipped w) mask gain bits;
        go (i + 1) (remaining - w) (taken + 1) min_skipped
          (mask lor (1 lsl i))
          (gain +. Array.unsafe_get terms i)
          (bits + w)
      end
    end
  and leaf remaining taken min_skipped mask gain bits =
    if taken > 0 then begin
      tick ();
      if gain > !inc then inc := gain;
      if not (only_maximal && min_skipped <= remaining) then begin
        incr scored;
        if gain >= best.bg then consider t best gain bits mask
      end
    end
  in
  go
    (Combination.task_start plan idx)
    (Combination.task_remaining plan idx)
    taken0
    (Combination.task_min_skipped plan idx)
    mask0 gain0 bits0

let reselect ?(only_maximal = false) ~limit ~jobs ~seeds t ~buffer_width =
  (* a usable seed names only pool messages, is non-empty, and fits the
     buffer — i.e. it is a candidate of this run, so its exact re-scored
     gain lower-bounds the best achievable gain (gain is monotone under
     superset even in float: terms are non-negative) *)
  let masks =
    List.filter_map (mask_of_names t) seeds
    |> List.filter (fun m -> m <> 0 && bits_of_mask t m <= buffer_width)
    |> List.sort_uniq compare
  in
  let incumbent =
    List.fold_left (fun acc m -> Float.max acc (gain_of_mask t m)) neg_infinity masks
  in
  let pool_list = Array.to_list t.k_pool in
  (* a fixed-depth plan whatever the job count: pruning totals then depend
     only on the task decomposition, not on how tasks are scheduled *)
  let plan = Combination.plan pool_list ~width:buffer_width in
  let ntasks = Combination.n_tasks plan in
  let finish_r best ~streamed ~scored ~pruned =
    match finish t ~best ~streamed ~scored with
    | None -> None
    | Some sel ->
        Some
          {
            r_messages = sel.sel_messages;
            r_gain = sel.sel_gain;
            r_seeds = List.length masks;
            r_streamed = streamed;
            r_scored = scored;
            r_pruned_subtrees = pruned;
          }
  in
  if jobs <= 1 then begin
    let count = ref 0 in
    let tick () =
      incr count;
      if !count > limit then raise (Combination.Too_many limit)
    in
    let scored = ref 0 and pruned = ref 0 in
    let best = no_best () in
    for idx = 0 to ntasks - 1 do
      walk_task_bb t plan idx ~only_maximal ~incumbent ~tick ~scored ~pruned best
    done;
    finish_r best ~streamed:!count ~scored:!scored ~pruned:!pruned
  end
  else begin
    let results = Array.init ntasks (fun _ -> no_best ()) in
    let next = Atomic.make 0 in
    let candidates = Atomic.make 0 in
    let scored = Atomic.make 0 in
    let pruned = Atomic.make 0 in
    let failed = Atomic.make None in
    let tick () =
      if Atomic.fetch_and_add candidates 1 >= limit then raise (Combination.Too_many limit)
    in
    let work () =
      try
        let my_scored = ref 0 and my_pruned = ref 0 in
        let continue = ref true in
        while !continue do
          match Atomic.get failed with
          | Some _ -> continue := false
          | None ->
              let idx = Atomic.fetch_and_add next 1 in
              if idx >= ntasks then continue := false
              else
                walk_task_bb t plan idx ~only_maximal ~incumbent ~tick ~scored:my_scored
                  ~pruned:my_pruned results.(idx)
        done;
        ignore (Atomic.fetch_and_add scored !my_scored);
        ignore (Atomic.fetch_and_add pruned !my_pruned)
      with e -> Atomic.set failed (Some e)
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join domains;
    (match Atomic.get failed with Some e -> raise e | None -> ());
    let best = Array.fold_left (merge_best t) (no_best ()) results in
    finish_r best ~streamed:(Atomic.get candidates) ~scored:(Atomic.get scored)
      ~pruned:(Atomic.get pruned)
  end
