(** Interleaved flows (Definition 5), generalized to n legally indexed flow
    instances.

    The interleaving of flows [F1 ||| … ||| Fn] is itself a flow whose
    states are tuples of component states and whose transitions carry
    {!Indexed.t} messages. Component [i] may fire a transition from a
    product state iff every other component is outside its [Atom] set —
    the n-ary generalization of the paper's rules i/ii — so no reachable
    product state has two atomic components.

    Only the reachable part of the product is materialized (forward
    exploration from the cross product of initial states); [p(x) = 1/|S|]
    in {!Infogain} is therefore taken over {e reachable} product states,
    matching the paper's Figure 2 count of 15 states. *)

(** One participating flow with its instance index (Definition 3/4). *)
type instance = { flow : Flow.t; index : int }

(** One transition of the product DAG: firing indexed message [e_msg]
    moves the interleaving from product state [e_src] to [e_dst] (dense
    state ids in [[0, n_states)]). *)
type edge = { e_src : int; e_msg : Indexed.t; e_dst : int }

(** A materialized interleaved flow — the object Steps 1–3 and the
    localization engine analyze. *)
type t

(** Raised when two instances of the same flow share an index
    (Definition 4). *)
exception Not_legally_indexed of string

(** Raised when two flows declare the same message name with different
    widths. *)
exception Message_clash of string

(** Raised when the reachable product exceeds [max_states]. *)
exception Too_large of int

(** [make instances] builds the interleaved flow of the given legally
    indexed instances. [max_states] (default 2,000,000) bounds the reachable
    product size. *)
val make : ?max_states:int -> instance list -> t

(** [of_flows flows] interleaves one instance of each flow, indexed 1..n in
    list order. *)
val of_flows : ?max_states:int -> Flow.t list -> t

(** Reachable product states — the [|S|] of [p(x) = 1/|S|]. *)
val n_states : t -> int

val n_edges : t -> int

(** Initial product states (dense ids in [0, n_states)). *)
val initials : t -> int list

(** Product states whose components are all stop states. *)
val stops : t -> int list

(** [is_stop t s] — is [s] a product stop state? *)
val is_stop : t -> int -> bool

(** The union of the participating flows' messages, deduplicated by name —
    the pool Step 1 enumerates over. *)
val messages : t -> Message.t list

(** Every edge of the product DAG, in construction order — the stream
    {!Infogain.stats} folds over. *)
val edges : t -> edge list

(** [out_edges t s] / [in_edges t s]: the labeled transitions leaving /
    entering product state [s]. *)
val out_edges : t -> int -> (Indexed.t * int) list

val in_edges : t -> int -> (Indexed.t * int) list

(** [successors t s] is [out_edges] without the labels. *)
val successors : t -> int -> int list

(** [state_name t s] renders a product state like ["(c1,n2)"]. *)
val state_name : t -> int -> string

(** [message t name] looks a pool message up by base name. *)
val message : t -> string -> Message.t option

(** [message_exn t name] is {!message} or [Invalid_argument]. *)
val message_exn : t -> string -> Message.t

(** [total_paths t] counts (saturating) all executions: paths from an
    initial to a stop product state. *)
val total_paths : t -> int

(** [executions t] enumerates the traces of all executions of the product
    (indexed message sequences, initial to stop, DFS order). This is the
    brute-force seam the static debuggability analysis ([flowtrace check])
    validates its verdicts against: project these traces with
    {!Localize.project} and compare languages directly. Raises [Failure]
    past [limit] (default 1,000,000) paths, like {!Flow.executions}. *)
val executions : ?limit:int -> t -> Indexed.t list list

(** [indexed_instances_of t base] lists the indexed messages [i:base] for
    every participating instance whose flow declares [base]. *)
val indexed_instances_of : t -> string -> Indexed.t list

(** One-line summary: instance, state, edge and path counts. *)
val pp : Format.formatter -> t -> unit
