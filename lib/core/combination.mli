(** Step 1: candidate message combinations under the buffer-width
    constraint (Section 3.1, Definition 6).

    A message combination is an unordered set of messages; its total bit
    width is the sum of member widths. Only combinations whose total width
    fits the trace buffer are candidates for Step 2.

    The enumeration is a width-pruned subset-tree walk exposed at three
    levels: a constant-memory streaming fold ({!fold_candidates}), a
    task-split form for multicore fan-out ({!plan}/{!fold_task}), and the
    materializing {!enumerate} kept for explicit candidate lists. *)

(** Raised when more than [limit] combinations fit. *)
exception Too_many of int

val default_limit : int

(** [canonical_pool messages] is the pool in the walk's canonical order:
    width-ascending, stable for equal widths. Selections and task prefixes
    are expressed in this order; external supervisors (lib/runtime) use it
    to reconstruct a selection from persisted message names with the exact
    fold order — and hence bit-identical incremental gain — of a live
    walk. *)
val canonical_pool : Message.t list -> Message.t list

(** [fold_candidates messages ~width ~init ~f] folds [f] over every
    non-empty subset of [messages] whose total width is at most [width],
    without materializing the candidate set: peak live memory is O(pool),
    independent of the number of candidates. Candidates arrive in the same
    order {!enumerate} generates them, each as a width-ascending list.
    [only_maximal] (default false) emits only inclusion-maximal candidates;
    the candidate budget [limit] still counts every fitting combination.
    Raises {!Too_many} past [limit] (default 1,000,000) candidates. *)
val fold_candidates :
  ?limit:int ->
  ?only_maximal:bool ->
  Message.t list ->
  width:int ->
  init:'a ->
  f:('a -> Message.t list -> 'a) ->
  'a

(** A decomposition of the subset tree into independent subtasks: the
    subtrees below every feasible skip/take prefix of a fixed depth. The
    tasks partition the candidate set, so folding each task and combining
    the per-task results visits every candidate exactly once. *)
type plan

(** [plan messages ~width] splits the walk below prefixes of [depth]
    (default 10, capped at the pool size — at most 2^10 tasks). *)
val plan : ?depth:int -> Message.t list -> width:int -> plan

val n_tasks : plan -> int

(** Plan internals, exposed for the word-parallel selection kernel
    ({!Kernel}), which drives the same task decomposition with a
    mask-based walk of its own. [plan_pool] is the canonical
    (width-ascending) pool as an array; per task [i], [task_start] is the
    first undecided pool index, [task_taken] the prefix takes in take
    order, [task_remaining] the width left after the prefix, and
    [task_min_skipped] the narrowest width skipped along the prefix (the
    streaming maximality state). *)
val plan_pool : plan -> Message.t array

val task_start : plan -> int -> int
val task_taken : plan -> int -> Message.t list
val task_remaining : plan -> int -> int
val task_min_skipped : plan -> int -> int

(** [fold_task plan i ~tick ~take ~path ~leaf ~init] folds over the
    candidates of task [i]. [path] is caller state threaded along the
    current branch and extended by [take] whenever a message is added (the
    task's prefix takes are replayed first); [leaf] folds the per-candidate
    results; [tick] fires once per fitting candidate before the
    [only_maximal] filter — share one atomic counter across tasks to
    enforce a global {!Too_many} budget (it may raise to abort). *)
val fold_task :
  plan ->
  int ->
  ?only_maximal:bool ->
  tick:(unit -> unit) ->
  take:('p -> Message.t -> 'p) ->
  path:'p ->
  leaf:('a -> 'p -> 'a) ->
  init:'a ->
  'a

(** [enumerate messages ~width] lists every non-empty subset of [messages]
    whose total width is at most [width]. Raises {!Too_many} past [limit]
    (default 1,000,000) results. Materializes the whole candidate list —
    prefer {!fold_candidates} on large pools. *)
val enumerate : ?limit:int -> Message.t list -> width:int -> Message.t list list

(** [maximal_only combos] drops combinations strictly included in another
    candidate. Since information gain is monotone in the message set, the
    best maximal candidate is a best candidate overall. Quadratic — apply
    to modest materialized lists only; the streaming walk's [only_maximal]
    flag computes the same filter in O(1) per candidate. *)
val maximal_only : Message.t list list -> Message.t list list

(** [count messages ~width] is the number of fitting combinations (the
    paper's running example: 6 of 7 for the coherence flow at width 2),
    in constant memory and without any candidate limit. *)
val count : Message.t list -> width:int -> int

(** [fits messages ~width] checks Definition 6's constraint. *)
val fits : Message.t list -> width:int -> bool
