(* Mutual information gain of a candidate message combination over an
   interleaved flow (Section 3.2).

   X ranges uniformly over the product states, p(x) = 1/|S|. For each
   indexed message y: p(y) = occ(y) / Σ_all occ, where occurrences count
   edges of the interleaved DAG; p(x|y) is the fraction of y-labeled edges
   entering x. The sum uses the natural logarithm — the paper's worked
   example I(X;Y1) = (12/18)·ln 5 = 1.073 pins the base. *)

module Tel = Flowtrace_telemetry.Telemetry

let c_evaluator_builds = Tel.Counter.v "infogain.evaluator_builds"
let c_eval_weighted = Tel.Counter.v "infogain.eval_weighted_calls"
let h_combo_len = Tel.Histogram.v "infogain.eval_combo_len"

type stats = {
  total_occurrences : int;
  occurrences : (Indexed.t * int) list;  (* first-encounter (edge) order *)
  targets : (Indexed.t, (int * int) list) Hashtbl.t;  (* y -> (state, count) list *)
}

(* One pass over the edge list, on densely interned message ids: each edge
   costs one hashtable probe (interning its indexed message) plus two
   int-keyed counter bumps — the per-message target histograms live
   behind flat int keys ([id * n_states + dst]), so the hot path never
   hashes a message record twice or walks nested tables. Occurrence and
   per-message target orders are the first-encounter (edge) order, which
   pins the float association of every sum built on them to the edge
   list — deterministic, and independent of hashtable internals. *)
let stats inter =
  let n_states = Interleave.n_states inter in
  let ids : (Indexed.t, int) Hashtbl.t = Hashtbl.create 64 in
  let rev_msgs = ref [] in
  let n_msgs = ref 0 in
  let occ = ref (Array.make 16 0) in
  (* per id, first-seen target states, reversed *)
  let rev_tgts = ref (Array.make 16 []) in
  let pair_cnt : (int, int ref) Hashtbl.t = Hashtbl.create 256 in
  let total = ref 0 in
  List.iter
    (fun (e : Interleave.edge) ->
      incr total;
      let id =
        match Hashtbl.find_opt ids e.Interleave.e_msg with
        | Some id -> id
        | None ->
            let id = !n_msgs in
            Hashtbl.replace ids e.Interleave.e_msg id;
            rev_msgs := e.Interleave.e_msg :: !rev_msgs;
            incr n_msgs;
            if id >= Array.length !occ then begin
              let grow a z =
                let b = Array.make (2 * Array.length a) z in
                Array.blit a 0 b 0 (Array.length a);
                b
              in
              occ := grow !occ 0;
              rev_tgts := grow !rev_tgts []
            end;
            id
      in
      !occ.(id) <- !occ.(id) + 1;
      let key = (id * n_states) + e.Interleave.e_dst in
      match Hashtbl.find_opt pair_cnt key with
      | Some r -> incr r
      | None ->
          Hashtbl.replace pair_cnt key (ref 1);
          !rev_tgts.(id) <- e.Interleave.e_dst :: !rev_tgts.(id))
    (Interleave.edges inter);
  let occ = !occ and rev_tgts = !rev_tgts in
  let msgs = List.rev !rev_msgs in
  let occurrences = List.mapi (fun id y -> (y, occ.(id))) msgs in
  let targets = Hashtbl.create 64 in
  List.iteri
    (fun id y ->
      let ts =
        List.fold_left
          (fun acc x -> (x, !(Hashtbl.find pair_cnt ((id * n_states) + x))) :: acc)
          [] rev_tgts.(id)
      in
      Hashtbl.replace targets y ts)
    msgs;
  { total_occurrences = !total; occurrences; targets }

let targets_of st y = match Hashtbl.find_opt st.targets y with Some ts -> ts | None -> []

(* Contribution of a single indexed message y: p(y) · KL(p(·|y) ‖ prior),
   scaled by [weight]. With the paper's uniform prior each contribution is
   non-negative, making the gain monotone in the selected set — a property
   the tests check. *)
let message_term_prior ~prior ~total y_occ y_targets weight =
  let p_y = float_of_int y_occ /. float_of_int total in
  List.fold_left
    (fun acc (x, count) ->
      let p_x_given_y = float_of_int count /. float_of_int y_occ in
      let p_xy = p_x_given_y *. p_y in
      let p_x = prior x in
      if p_x <= 0.0 then acc else acc +. (weight *. p_xy *. log (p_xy /. (p_x *. p_y))))
    0.0 y_targets

let message_term ~n_states ~total y_occ y_targets weight =
  message_term_prior ~prior:(fun _ -> 1.0 /. float_of_int n_states) ~total y_occ y_targets weight

let compute_weighted inter ~weight =
  let st = stats inter in
  if st.total_occurrences = 0 then 0.0
  else
    let n_states = Interleave.n_states inter in
    List.fold_left
      (fun acc (y, occ) ->
        let w = weight y.Indexed.base in
        if w <= 0.0 then acc
        else acc +. message_term ~n_states ~total:st.total_occurrences occ (targets_of st y) w)
      0.0 st.occurrences

let compute inter ~selected =
  compute_weighted inter ~weight:(fun base -> if selected base then 1.0 else 0.0)

(* The paper's Section 3.2 prior: "all values of X are equally probable". *)
let uniform_prior inter =
  let p = 1.0 /. float_of_int (Interleave.n_states inter) in
  fun _ -> p

(* An alternative prior for the ablation: p(x) proportional to the number
   of executions passing through x — states on many paths weigh more. *)
let visit_prior inter =
  let n = Interleave.n_states inter in
  let succ = Interleave.successors inter in
  let order = Dag.topo_order ~n ~succ in
  let to_stop = Array.make n 0.0 in
  List.iter
    (fun s ->
      if Interleave.is_stop inter s then to_stop.(s) <- 1.0
      else to_stop.(s) <- List.fold_left (fun a d -> a +. to_stop.(d)) 0.0 (succ s))
    (List.rev order);
  let from_init = Array.make n 0.0 in
  List.iter (fun s -> from_init.(s) <- 1.0) (Interleave.initials inter);
  List.iter
    (fun s -> List.iter (fun d -> from_init.(d) <- from_init.(d) +. from_init.(s)) (succ s))
    order;
  let through = Array.init n (fun s -> from_init.(s) *. to_stop.(s)) in
  let total = Array.fold_left ( +. ) 0.0 through in
  fun s -> if total <= 0.0 then 0.0 else through.(s) /. total

let compute_with_prior inter ~selected ~prior =
  let st = stats inter in
  if st.total_occurrences = 0 then 0.0
  else
    List.fold_left
      (fun acc (y, occ) ->
        if selected y.Indexed.base then
          acc +. message_term_prior ~prior ~total:st.total_occurrences occ (targets_of st y) 1.0
        else acc)
      0.0 st.occurrences

let of_combination inter combo =
  let names = List.map (fun (m : Message.t) -> m.Message.name) combo in
  compute inter ~selected:(fun base -> List.exists (String.equal base) names)

(* Incremental evaluator: precomputes per-base-message terms once so that
   Step 1/2 enumeration evaluates each candidate in O(|candidate|). Sound
   because the gain is a sum of independent per-indexed-message terms.
   [bases] keeps the first-encounter order so weighted sums are
   deterministic. The evaluator is immutable after construction and safe
   to share read-only across domains. *)
type evaluator = { base_term : (string, float) Hashtbl.t; bases : string list }

let build_evaluator inter =
  Tel.Counter.incr c_evaluator_builds;
  Tel.with_span "infogain.evaluator" @@ fun () ->
  let st = stats inter in
  let n_states = Interleave.n_states inter in
  let base_term = Hashtbl.create 32 in
  let bases = ref [] in
  List.iter
    (fun (y, occ) ->
      let term = message_term ~n_states ~total:st.total_occurrences occ (targets_of st y) 1.0 in
      match Hashtbl.find_opt base_term y.Indexed.base with
      | Some cur -> Hashtbl.replace base_term y.Indexed.base (cur +. term)
      | None ->
          Hashtbl.replace base_term y.Indexed.base term;
          bases := y.Indexed.base :: !bases)
    st.occurrences;
  { base_term; bases = List.rev !bases }

(* The evaluator is a pure function of the interleave, and callers score
   the same interleave repeatedly — greedy then exact inside one select,
   select then reselect, Step-3 packing sweeps, the supervised engine's
   resume re-validation — so keep the most recent build, keyed by the
   interleave's physical identity. The evaluator is immutable after
   construction, so handing the cached one to any domain is safe; the
   race between two simultaneous builders is benign (both build the same
   value, one wins the slot). A single entry bounds retention to one
   interleave graph. *)
let evaluator_cache : (Interleave.t * evaluator) option Atomic.t = Atomic.make None

let evaluator inter =
  match Atomic.get evaluator_cache with
  | Some (i, ev) when i == inter -> ev
  | _ ->
      let ev = build_evaluator inter in
      Atomic.set evaluator_cache (Some (inter, ev));
      ev

let eval_base ev base = Option.value ~default:0.0 (Hashtbl.find_opt ev.base_term base)

let eval ev combo =
  (* [eval_base] itself stays uninstrumented: the streaming walk calls it
     per taken message and the call count depends on the task plan depth. *)
  if Tel.enabled () then Tel.Histogram.observe h_combo_len (float_of_int (List.length combo));
  List.fold_left (fun acc (m : Message.t) -> acc +. eval_base ev m.Message.name) 0.0 combo

(* Term array for the word-parallel kernel: one float per pool slot, so
   the mask-based walk adds gains by array index with no hashing on the
   hot path. Exactly the floats [eval_base] returns, in pool order. *)
let terms ev pool = Array.map (fun (m : Message.t) -> eval_base ev m.Message.name) pool

(* Weighted gain from the precomputed terms: Step-3 packing evaluates many
   candidate subgroup sets against one evaluator instead of rescanning the
   edge list per candidate. Exact because each base's term is linear in
   its weight. *)
let eval_weighted ev ~weight =
  Tel.Counter.incr c_eval_weighted;
  List.fold_left
    (fun acc base ->
      let w = weight base in
      if w <= 0.0 then acc else acc +. (w *. eval_base ev base))
    0.0 ev.bases
