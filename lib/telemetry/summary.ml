(* Aggregation of a telemetry event stream into the tables `flowtrace
   stats` prints. Pure over Event.t lists so tests can feed it a
   Sink.memory capture directly. *)

type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float;
  sr_min_us : float;
  sr_max_us : float;
}

type t = {
  meta : (string * Event.value) list;
  spans : span_row list;
  counters : Event.counter list;
  gauges : Event.gauge list;
  histograms : Event.histogram list;
}

let of_events evs =
  let meta = ref [] in
  let spans : (string, span_row) Hashtbl.t = Hashtbl.create 16 in
  let counters : (string, Event.counter) Hashtbl.t = Hashtbl.create 16 in
  let gauges : (string, Event.gauge) Hashtbl.t = Hashtbl.create 16 in
  let histograms : (string, Event.histogram) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match ev with
      | Event.Meta kvs -> if !meta = [] then meta := kvs
      | Event.Span s ->
          let d = s.Event.sp_dur_us in
          let row =
            match Hashtbl.find_opt spans s.Event.sp_name with
            | None ->
                {
                  sr_name = s.Event.sp_name;
                  sr_count = 1;
                  sr_total_us = d;
                  sr_min_us = d;
                  sr_max_us = d;
                }
            | Some r ->
                {
                  r with
                  sr_count = r.sr_count + 1;
                  sr_total_us = r.sr_total_us +. d;
                  sr_min_us = Float.min r.sr_min_us d;
                  sr_max_us = Float.max r.sr_max_us d;
                }
          in
          Hashtbl.replace spans s.Event.sp_name row
      | Event.Metric (Event.Counter c) -> Hashtbl.replace counters c.Event.c_name c
      | Event.Metric (Event.Gauge g) -> Hashtbl.replace gauges g.Event.g_name g
      | Event.Metric (Event.Histogram h) -> Hashtbl.replace histograms h.Event.h_name h)
    evs;
  let sorted tbl name =
    List.sort (fun a b -> String.compare (name a) (name b)) (Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])
  in
  {
    meta = !meta;
    spans = sorted spans (fun r -> r.sr_name);
    counters = sorted counters (fun (c : Event.counter) -> c.Event.c_name);
    gauges = sorted gauges (fun (g : Event.gauge) -> g.Event.g_name);
    histograms = sorted histograms (fun (h : Event.histogram) -> h.Event.h_name);
  }

let load_jsonl path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | line ->
            let trimmed = String.trim line in
            if trimmed = "" then go (lineno + 1) acc
            else if lineno = 1 && trimmed.[0] = '[' then
              Error
                (Printf.sprintf
                   "%s: looks like a Chrome trace (JSON array), not a JSONL telemetry file; \
                    record with a .jsonl path to get a replayable stream"
                   path)
            else
              match Tjson.parse trimmed with
              | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)
              | Ok j -> (
                  match Event.of_json j with
                  | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m)
                  | Ok ev -> go (lineno + 1) (ev :: acc))
      in
      go 1 []

(* --- rendering ------------------------------------------------------ *)

let ms us = us /. 1000.0

let pp ppf t =
  let value_str = function
    | Event.Int i -> string_of_int i
    | Event.Float f -> Printf.sprintf "%g" f
    | Event.Str s -> s
    | Event.Bool b -> string_of_bool b
  in
  Format.fprintf ppf "@[<v>";
  if t.meta <> [] then begin
    Format.fprintf ppf "meta:@,";
    List.iter (fun (k, v) -> Format.fprintf ppf "  %-34s %s@," k (value_str v)) t.meta;
    Format.fprintf ppf "@,"
  end;
  if t.spans <> [] then begin
    Format.fprintf ppf "%-36s %8s %12s %12s %12s %12s@," "spans" "count" "total ms"
      "mean ms" "min ms" "max ms";
    List.iter
      (fun r ->
        Format.fprintf ppf "  %-34s %8d %12.3f %12.3f %12.3f %12.3f@," r.sr_name r.sr_count
          (ms r.sr_total_us)
          (ms (r.sr_total_us /. float_of_int r.sr_count))
          (ms r.sr_min_us) (ms r.sr_max_us))
      t.spans;
    Format.fprintf ppf "@,"
  end;
  if t.counters <> [] then begin
    Format.fprintf ppf "%-36s %12s@," "counters" "value";
    List.iter
      (fun (c : Event.counter) -> Format.fprintf ppf "  %-34s %12d@," c.Event.c_name c.Event.c_value)
      t.counters;
    Format.fprintf ppf "@,"
  end;
  if t.gauges <> [] then begin
    Format.fprintf ppf "%-36s %12s@," "gauges" "value";
    List.iter
      (fun (g : Event.gauge) -> Format.fprintf ppf "  %-34s %12g@," g.Event.g_name g.Event.g_value)
      t.gauges;
    Format.fprintf ppf "@,"
  end;
  if t.histograms <> [] then begin
    Format.fprintf ppf "%-36s %8s %12s %12s %12s@," "histograms" "count" "mean" "min" "max";
    List.iter
      (fun (h : Event.histogram) ->
        let mean = if h.Event.h_count = 0 then 0.0 else h.Event.h_sum /. float_of_int h.Event.h_count in
        Format.fprintf ppf "  %-34s %8d %12.3f %12g %12g@," h.Event.h_name h.Event.h_count
          mean h.Event.h_min h.Event.h_max)
      t.histograms
  end;
  Format.fprintf ppf "@]"
