(** Replay of a recorded telemetry stream into aggregate tables — the
    engine behind [flowtrace stats].

    A summary groups spans by name (count, total/mean/min/max wall-clock)
    and tabulates the final counter/gauge/histogram values. Aggregation is
    pure ({!of_events}), so the same tables can be computed from a
    {!Sink.memory} capture in tests and from a JSONL file on disk
    ({!load_jsonl}). *)

(** Per-span-name aggregate, microsecond wall-clock. *)
type span_row = {
  sr_name : string;
  sr_count : int;
  sr_total_us : float;
  sr_min_us : float;
  sr_max_us : float;
}

type t = {
  meta : (string * Event.value) list;  (** merged [Meta] headers, first wins *)
  spans : span_row list;  (** name-sorted *)
  counters : Event.counter list;  (** name-sorted; later events override earlier *)
  gauges : Event.gauge list;  (** name-sorted *)
  histograms : Event.histogram list;  (** name-sorted *)
}

(** [of_events evs] aggregates an event stream. For metrics emitted more
    than once (several flushes) the last value wins — the stream records
    running totals, not deltas. *)
val of_events : Event.t list -> t

(** [load_jsonl path] parses a JSONL telemetry file (one
    {!Event.of_json} object per line; blank lines ignored). Returns
    [Error] with a positioned message on the first unparsable line, and a
    hint when the file looks like a Chrome trace instead. *)
val load_jsonl : string -> (Event.t list, string) result

(** Render the aggregate tables (spans in milliseconds, then counters,
    gauges, histograms; sections with no data are omitted). *)
val pp : Format.formatter -> t -> unit
