(** The ambient telemetry runtime: spans, typed metrics, and a single
    installable sink.

    The runtime is a process-global switch plus a metric registry. When no
    sink is installed ({!enabled} is [false], the initial state) every
    entry point degenerates to a single load-and-branch — instrumented hot
    paths cost one predictable branch, verified by the bench suite to stay
    within the noise floor of the uninstrumented build. Instrumentation
    never changes results: it only observes (the telemetry tests pin
    selection outputs enabled-vs-disabled).

    {2 Spans}

    {!with_span} brackets a computation with a wall-clock interval.
    Nesting is tracked per domain (domain-local storage), so spans opened
    by worker domains of a parallel selection form their own stacks and
    carry their domain id — the Chrome sink renders one track per domain.
    Span events reach the sink at span {e exit}.

    {2 Metrics}

    Counters, gauges and histograms live in a registry keyed by name;
    {!Counter.v} (etc.) memoizes, so handles may be created at module
    initialization or on demand. Counter increments are atomic: totals
    accumulated across domains are exact, and every quantity the flowtrace
    libraries count is partition-invariant, so counter values are
    bit-identical across [--jobs 1/2/4] (a telemetry test pins this on the
    Stress workload). {!flush} snapshots the registry name-sorted into the
    sink; metric values are {e not} cleared by a flush.

    {2 Lifecycle}

    [install sink] resets metric values (by default), records the epoch
    all timestamps are relative to, emits a [Meta] header, and turns the
    switch on. [shutdown ()] flushes, closes the sink, and turns the
    switch off. Typical CLI usage:

    {[
      Telemetry.install (Sink.of_path "t.jsonl");
      Fun.protect ~finally:Telemetry.shutdown (fun () -> run ())
    ]} *)

(** Whether a sink is installed. Hot paths may use this to skip argument
    construction (string concatenation, list building) entirely; the
    metric update functions below already perform this check themselves. *)
val enabled : unit -> bool

(** [install ?reset ?meta sink] makes [sink] the destination of all
    subsequent events and enables instrumentation. [reset] (default
    [true]) zeroes all registered metric values first, so one process can
    produce several independent telemetry runs. A previously installed
    sink is shut down first. Emits [Meta (("epoch_unix", ...) :: meta)]. *)
val install : ?reset:bool -> ?meta:(string * Event.value) list -> Sink.t -> unit

(** Snapshot the registered metrics into the sink (name-sorted).
    Never-touched instruments (zero counters/gauges, empty histograms)
    are skipped so a run's tables only list what it exercised. No-op
    when disabled. *)
val flush : unit -> unit

(** [shutdown ()] = {!flush}, close the sink, disable. No-op when already
    disabled. *)
val shutdown : unit -> unit

(** Zero every registered metric value (handles stay valid). *)
val reset : unit -> unit

(** Name-sorted snapshot of the current metric values, independent of any
    sink — how the bench harness extracts counter provenance. *)
val metrics : unit -> Event.metric list

(** [with_span ?args name f] runs [f ()] inside a span. When disabled it
    is exactly [f ()] after one branch. [args] is only evaluated at span
    exit, and only when enabled — it may read state mutated by [f]. The
    span is emitted (and the nesting stack popped) even if [f] raises. *)
val with_span : ?args:(unit -> (string * Event.value) list) -> string -> (unit -> 'a) -> 'a

(** Monotonically increasing event counters. *)
module Counter : sig
  type t

  (** [v name] registers (or retrieves) the counter [name]. *)
  val v : string -> t

  (** Atomic add; no-op while disabled. *)
  val add : t -> int -> unit

  val incr : t -> unit
  val value : t -> int
end

(** Last-value / running-maximum instruments. *)
module Gauge : sig
  type t

  val v : string -> t

  (** [set g x] overwrites; no-op while disabled. *)
  val set : t -> float -> unit

  (** [max_ g x] keeps the running maximum of [x] and the current value
      (atomic, safe across domains); no-op while disabled. *)
  val max_ : t -> float -> unit

  val value : t -> float
end

(** Count/sum/min/max summaries of observed values. *)
module Histogram : sig
  type t

  val v : string -> t

  (** [observe h x] records one observation; no-op while disabled. *)
  val observe : t -> float -> unit

  val count : t -> int
end
