(** The telemetry event vocabulary.

    Everything the runtime records is one of three event kinds:

    - a {!span}: a named wall-clock interval with parent/child nesting
      (one per {!Telemetry.with_span} exit),
    - a {!metric}: the value of a typed counter/gauge/histogram, emitted
      when the registry is flushed,
    - a [Meta] header carrying run-level key/values (emitted once at sink
      installation).

    Events have a canonical JSON object encoding ({!to_json}/{!of_json})
    used verbatim by the JSONL sink; the Chrome sink re-encodes the same
    events into the [trace_event] schema. Timestamps are microseconds of
    wall-clock time relative to the instant the sink was installed, so
    traces from different runs always start near 0. *)

(** Argument values attachable to spans and [Meta] headers. *)
type value = Int of int | Float of float | Str of string | Bool of bool

(** A completed span. [sp_parent] is the id of the enclosing span {e on
    the same domain}, if any; [sp_domain] is the integer id of the domain
    that ran it (worker spans of a parallel selection carry distinct
    domains). Durations are wall-clock microseconds. *)
type span = {
  sp_name : string;
  sp_id : int;  (** unique within a run, allocation order *)
  sp_parent : int option;
  sp_domain : int;
  sp_start_us : float;
  sp_dur_us : float;
  sp_args : (string * value) list;
}

type counter = { c_name : string; c_value : int }
type gauge = { g_name : string; g_value : float }

(** Histogram summary: observation count, sum, and extrema. The mean is
    [h_sum /. float_of_int h_count]. *)
type histogram = { h_name : string; h_count : int; h_sum : float; h_min : float; h_max : float }

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

type t = Meta of (string * value) list | Span of span | Metric of metric

val metric_name : metric -> string

(** Structural equality (safe here: all floats are finite). *)
val equal : t -> t -> bool

(** [value_to_json v] is the JSON leaf for one argument value. *)
val value_to_json : value -> Tjson.t

(** [to_json e] is the canonical JSON object: a ["type"] discriminator
    ([meta]/[span]/[counter]/[gauge]/[histogram]) plus the fields above.
    One such object per line is the JSONL sink format. *)
val to_json : t -> Tjson.t

(** [of_json j] inverts {!to_json}. [of_json (to_json e) = Ok e]. *)
val of_json : Tjson.t -> (t, string) result
