(** Telemetry sinks: where emitted {!Event.t}s go.

    A sink is a pair of callbacks. Emission can happen from several
    domains at once (worker spans of a parallel selection), so every
    writing sink serializes internally with a mutex; {!null} and
    {!memory} are safe by construction.

    Three wire formats are provided:

    - {!text} — human-readable lines, for quick eyeballing;
    - {!jsonl} — one canonical {!Event.to_json} object per line; the
      format [flowtrace stats] replays and {!Summary.load_jsonl} parses;
    - {!chrome} — a Chrome [trace_event] JSON array that loads directly
      in [about://tracing] / [ui.perfetto.dev]: spans become ["ph":"X"]
      complete events (one track per domain), metrics become ["ph":"C"]
      counter samples. *)

type t = {
  emit : Event.t -> unit;  (** called once per event, possibly concurrently *)
  close : unit -> unit;  (** terminate framing and release resources *)
}

(** Discards everything. Installing it still turns instrumentation on —
    useful to exercise counters without writing a file (the bench
    provenance pass does exactly this). *)
val null : t

(** [memory ()] is a sink accumulating events in memory plus a function
    returning everything emitted so far, in emission order. *)
val memory : unit -> t * (unit -> Event.t list)

val text : out_channel -> t
val jsonl : out_channel -> t
val chrome : out_channel -> t

(** [of_path path] opens [path] and dispatches on its extension:
    [.jsonl] to {!jsonl}, [.json] or [.trace] to {!chrome}, anything else
    to {!text}. [close] closes the channel. *)
val of_path : string -> t
