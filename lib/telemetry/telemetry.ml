(* The ambient telemetry runtime.

   Disabled (the initial state) every entry point is one atomic load and
   a branch — the instrumented hot paths of select/sim stay at their
   uninstrumented cost. Enabled, counters are Atomic adds (totals exact
   across domains), gauges CAS, histograms a short critical section, and
   spans time with Unix.gettimeofday relative to the install epoch.

   Registry handles are memoized by name and survive install/shutdown
   cycles; install only resets *values*, so handles created at module
   initialization in instrumented libraries remain valid for every run. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let state_mu = Mutex.create ()

(* current sink and the epoch timestamps are relative to *)
let current_sink : Sink.t option ref = ref None
let epoch = Atomic.make 0.0

let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6

let emit ev = match !current_sink with Some s -> s.Sink.emit ev | None -> ()

(* --- metric registry ------------------------------------------------ *)

type counter_cell = { c_name : string; c_cell : int Atomic.t }
type gauge_cell = { g_name : string; g_cell : float Atomic.t }

type hist_cell = {
  h_name : string;
  h_mu : Mutex.t;
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

let counters : (string, counter_cell) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge_cell) Hashtbl.t = Hashtbl.create 16
let hists : (string, hist_cell) Hashtbl.t = Hashtbl.create 16

let reset_values () =
  Mutex.protect state_mu @@ fun () ->
  Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Mutex.protect h.h_mu (fun () ->
          h.h_n <- 0;
          h.h_sum <- 0.0;
          h.h_min <- infinity;
          h.h_max <- neg_infinity))
    hists

let reset = reset_values

let metrics () =
  let snap =
    Mutex.protect state_mu @@ fun () ->
    let cs =
      Hashtbl.fold
        (fun _ c acc ->
          Event.Counter { Event.c_name = c.c_name; c_value = Atomic.get c.c_cell } :: acc)
        counters []
    in
    let gs =
      Hashtbl.fold
        (fun _ g acc ->
          Event.Gauge { Event.g_name = g.g_name; g_value = Atomic.get g.g_cell } :: acc)
        gauges []
    in
    let hs =
      Hashtbl.fold
        (fun _ h acc ->
          let m =
            Mutex.protect h.h_mu (fun () ->
                {
                  Event.h_name = h.h_name;
                  h_count = h.h_n;
                  h_sum = h.h_sum;
                  h_min = (if h.h_n = 0 then 0.0 else h.h_min);
                  h_max = (if h.h_n = 0 then 0.0 else h.h_max);
                })
          in
          Event.Histogram m :: acc)
        hists []
    in
    cs @ gs @ hs
  in
  List.sort (fun a b -> compare (Event.metric_name a) (Event.metric_name b)) snap

(* --- lifecycle ------------------------------------------------------ *)

(* A flush skips never-touched instruments: a selection run should not
   list the simulator's zeroed counters. [metrics ()] stays complete. *)
let nontrivial = function
  | Event.Counter c -> c.Event.c_value <> 0
  | Event.Gauge g -> g.Event.g_value <> 0.0
  | Event.Histogram h -> h.Event.h_count <> 0

let flush () =
  if enabled () then
    List.iter (fun m -> emit (Event.Metric m)) (List.filter nontrivial (metrics ()))

let shutdown () =
  if enabled () then begin
    flush ();
    (match !current_sink with Some s -> s.Sink.close () | None -> ());
    current_sink := None;
    Atomic.set enabled_flag false
  end

let install ?(reset = true) ?(meta = []) sink =
  shutdown ();
  if reset then reset_values ();
  let t0 = Unix.gettimeofday () in
  Atomic.set epoch t0;
  current_sink := Some sink;
  Atomic.set enabled_flag true;
  emit (Event.Meta (("epoch_unix", Event.Float t0) :: meta))

(* --- metric handles ------------------------------------------------- *)

module Counter = struct
  type t = counter_cell

  let v name =
    Mutex.protect state_mu @@ fun () ->
    match Hashtbl.find_opt counters name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c

  let add c n = if enabled () then ignore (Atomic.fetch_and_add c.c_cell n)
  let incr c = add c 1
  let value c = Atomic.get c.c_cell
end

module Gauge = struct
  type t = gauge_cell

  let v name =
    Mutex.protect state_mu @@ fun () ->
    match Hashtbl.find_opt gauges name with
    | Some g -> g
    | None ->
        let g = { g_name = name; g_cell = Atomic.make 0.0 } in
        Hashtbl.replace gauges name g;
        g

  let set g x = if enabled () then Atomic.set g.g_cell x

  let max_ g x =
    if enabled () then begin
      let rec cas () =
        let cur = Atomic.get g.g_cell in
        if x > cur && not (Atomic.compare_and_set g.g_cell cur x) then cas ()
      in
      cas ()
    end

  let value g = Atomic.get g.g_cell
end

module Histogram = struct
  type t = hist_cell

  let v name =
    Mutex.protect state_mu @@ fun () ->
    match Hashtbl.find_opt hists name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_mu = Mutex.create ();
            h_n = 0;
            h_sum = 0.0;
            h_min = infinity;
            h_max = neg_infinity;
          }
        in
        Hashtbl.replace hists name h;
        h

  let observe h x =
    if enabled () then
      Mutex.protect h.h_mu (fun () ->
          h.h_n <- h.h_n + 1;
          h.h_sum <- h.h_sum +. x;
          if x < h.h_min then h.h_min <- x;
          if x > h.h_max then h.h_max <- x)

  let count h = Mutex.protect h.h_mu (fun () -> h.h_n)
end

(* --- spans ---------------------------------------------------------- *)

let span_ids = Atomic.make 0

(* per-domain stack of open span ids, for parent attribution *)
let stack_key : int list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

let with_span ?args name f =
  if not (enabled ()) then f ()
  else begin
    let id = Atomic.fetch_and_add span_ids 1 in
    let stack = Domain.DLS.get stack_key in
    let parent = match stack with [] -> None | p :: _ -> Some p in
    Domain.DLS.set stack_key (id :: stack);
    let t0 = now_us () in
    let finish () =
      let dur = now_us () -. t0 in
      (match Domain.DLS.get stack_key with
      | x :: rest when x = id -> Domain.DLS.set stack_key rest
      | st -> Domain.DLS.set stack_key (List.filter (fun x -> x <> id) st));
      let args = match args with Some a when enabled () -> a () | _ -> [] in
      emit
        (Event.Span
           {
             Event.sp_name = name;
             sp_id = id;
             sp_parent = parent;
             sp_domain = (Domain.self () :> int);
             sp_start_us = t0;
             sp_dur_us = dur;
             sp_args = args;
           })
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end
