(** A self-contained JSON tree, printer and parser for the telemetry wire
    formats.

    The telemetry layer must stay dependency-free (it sits {e below}
    [flowtrace_core] so every other library can be instrumented), so it
    carries its own minimal JSON machinery instead of reusing
    [Flowtrace_analysis.Json]. The printer always renders floats with a
    decimal point or exponent so a float never reparses as an [Int]; with
    that convention [parse (to_string v) = Ok v] for every finite tree,
    which is what the JSONL sink round-trip relies on. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; NaN/infinity are not valid JSON *)
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders compact single-line JSON (no newlines), so one
    value per line is exactly the JSONL framing. *)
val to_string : t -> string

(** [parse s] parses one JSON value surrounded by optional whitespace.
    Numbers containing ['.'], ['e'] or ['E'] become [Float], all others
    [Int]; [\uXXXX] escapes are decoded to UTF-8. *)
val parse : string -> (t, string) result

(** [member key v] looks up [key] when [v] is an [Obj]. *)
val member : string -> t -> t option

(** [to_float_opt v] accepts both [Int] and [Float] (JSON does not
    distinguish them). *)
val to_float_opt : t -> float option

val to_int_opt : t -> int option
val to_string_opt : t -> string option
val to_list_opt : t -> t list option
