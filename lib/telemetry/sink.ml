(* Telemetry sinks. Writing sinks serialize with a mutex: spans may be
   emitted concurrently by the worker domains of a parallel selection. *)

type t = { emit : Event.t -> unit; close : unit -> unit }

let null = { emit = (fun _ -> ()); close = (fun () -> ()) }

let memory () =
  let mu = Mutex.create () in
  let events = ref [] in
  let emit ev = Mutex.protect mu (fun () -> events := ev :: !events) in
  ({ emit; close = (fun () -> ()) }, fun () -> Mutex.protect mu (fun () -> List.rev !events))

(* --- text ----------------------------------------------------------- *)

let value_str = function
  | Event.Int i -> string_of_int i
  | Event.Float f -> Printf.sprintf "%g" f
  | Event.Str s -> s
  | Event.Bool b -> string_of_bool b

let args_str = function
  | [] -> ""
  | args ->
      "  {" ^ String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ value_str v) args) ^ "}"

let text oc =
  let mu = Mutex.create () in
  let emit ev =
    Mutex.protect mu @@ fun () ->
    (match ev with
    | Event.Meta kvs -> Printf.fprintf oc "meta%s\n" (args_str kvs)
    | Event.Span s ->
        Printf.fprintf oc "span      %-32s %12.1f us  (domain %d)%s\n" s.Event.sp_name
          s.Event.sp_dur_us s.Event.sp_domain (args_str s.Event.sp_args)
    | Event.Metric (Event.Counter c) ->
        Printf.fprintf oc "counter   %-32s %12d\n" c.Event.c_name c.Event.c_value
    | Event.Metric (Event.Gauge g) ->
        Printf.fprintf oc "gauge     %-32s %12g\n" g.Event.g_name g.Event.g_value
    | Event.Metric (Event.Histogram h) ->
        Printf.fprintf oc "histogram %-32s %12d obs  sum %g  min %g  max %g\n" h.Event.h_name
          h.Event.h_count h.Event.h_sum h.Event.h_min h.Event.h_max);
    flush oc
  in
  { emit; close = (fun () -> flush oc) }

(* --- JSONL ---------------------------------------------------------- *)

let jsonl oc =
  let mu = Mutex.create () in
  let emit ev =
    Mutex.protect mu @@ fun () ->
    output_string oc (Tjson.to_string (Event.to_json ev));
    output_char oc '\n'
  in
  { emit; close = (fun () -> flush oc) }

(* --- Chrome trace_event --------------------------------------------- *)

(* The about://tracing JSON array format: spans as "X" (complete) events
   with one track (tid) per domain, metrics as "C" counter samples stamped
   at the latest span end seen so the counter track aligns with the run's
   end. *)
let chrome oc =
  let mu = Mutex.create () in
  let first = ref true in
  let last_ts = ref 0.0 in
  let emit_json j =
    if !first then begin
      output_string oc "[\n";
      first := false
    end
    else output_string oc ",\n";
    output_string oc (Tjson.to_string j)
  in
  let counter_sample name args =
    Tjson.Obj
      [
        ("name", Tjson.String name); ("ph", Tjson.String "C"); ("ts", Tjson.Float !last_ts);
        ("pid", Tjson.Int 1); ("tid", Tjson.Int 0); ("args", Tjson.Obj args);
      ]
  in
  let emit ev =
    Mutex.protect mu @@ fun () ->
    match ev with
    | Event.Meta kvs ->
        emit_json
          (Tjson.Obj
             [
               ("name", Tjson.String "process_name"); ("ph", Tjson.String "M");
               ("pid", Tjson.Int 1); ("tid", Tjson.Int 0);
               ( "args",
                 Tjson.Obj
                   (("name", Tjson.String "flowtrace")
                   :: List.map (fun (k, v) -> (k, Event.value_to_json v)) kvs) );
             ])
    | Event.Span s ->
        last_ts := Float.max !last_ts (s.Event.sp_start_us +. s.Event.sp_dur_us);
        let id_args =
          ("span_id", Tjson.Int s.Event.sp_id)
          :: (match s.Event.sp_parent with
             | Some p -> [ ("parent_id", Tjson.Int p) ]
             | None -> [])
          @ List.map (fun (k, v) -> (k, Event.value_to_json v)) s.Event.sp_args
        in
        emit_json
          (Tjson.Obj
             [
               ("name", Tjson.String s.Event.sp_name); ("cat", Tjson.String "flowtrace");
               ("ph", Tjson.String "X"); ("ts", Tjson.Float s.Event.sp_start_us);
               ("dur", Tjson.Float s.Event.sp_dur_us); ("pid", Tjson.Int 1);
               ("tid", Tjson.Int s.Event.sp_domain); ("args", Tjson.Obj id_args);
             ])
    | Event.Metric (Event.Counter c) ->
        emit_json (counter_sample c.Event.c_name [ ("value", Tjson.Int c.Event.c_value) ])
    | Event.Metric (Event.Gauge g) ->
        emit_json (counter_sample g.Event.g_name [ ("value", Tjson.Float g.Event.g_value) ])
    | Event.Metric (Event.Histogram h) ->
        let mean =
          if h.Event.h_count = 0 then 0.0 else h.Event.h_sum /. float_of_int h.Event.h_count
        in
        emit_json
          (counter_sample h.Event.h_name
             [ ("count", Tjson.Int h.Event.h_count); ("mean", Tjson.Float mean) ])
  in
  let close () =
    Mutex.protect mu @@ fun () ->
    if !first then output_string oc "[\n";
    output_string oc "\n]\n";
    flush oc
  in
  { emit; close }

(* --- file dispatch -------------------------------------------------- *)

let of_path path =
  let oc = open_out path in
  let inner =
    match String.lowercase_ascii (Filename.extension path) with
    | ".jsonl" -> jsonl oc
    | ".json" | ".trace" -> chrome oc
    | _ -> text oc
  in
  {
    emit = inner.emit;
    close =
      (fun () ->
        inner.close ();
        close_out oc);
  }
