(* Minimal JSON for the telemetry wire formats. Kept dependency-free on
   purpose: the telemetry library sits below flowtrace_core, so it cannot
   reuse Flowtrace_analysis.Json (analysis depends on core). The printer
   guarantees floats keep a '.' or exponent so the parser maps them back to
   Float, making the JSONL emit -> parse round trip lossless. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g round-trips every finite double; re-add a decimal point when the
   rendering looks integral so parsing yields Float again. *)
let float_repr f =
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------- *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  (* encode a Unicode scalar value as UTF-8 *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let u =
              match int_of_string_opt ("0x" ^ hex) with
              | Some u -> u
              | None -> fail "bad \\u escape"
            in
            add_utf8 buf u
        | _ -> fail "bad escape");
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            advance ();
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* --- accessors ------------------------------------------------------ *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None
let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List vs -> Some vs | _ -> None
