(* Telemetry event vocabulary and its canonical JSON encoding (the JSONL
   sink writes [to_json] verbatim, one object per line; Summary parses it
   back with [of_json] — the round trip is exact, which the telemetry
   tests pin). *)

type value = Int of int | Float of float | Str of string | Bool of bool

type span = {
  sp_name : string;
  sp_id : int;
  sp_parent : int option;
  sp_domain : int;
  sp_start_us : float;
  sp_dur_us : float;
  sp_args : (string * value) list;
}

type counter = { c_name : string; c_value : int }
type gauge = { g_name : string; g_value : float }
type histogram = { h_name : string; h_count : int; h_sum : float; h_min : float; h_max : float }
type metric = Counter of counter | Gauge of gauge | Histogram of histogram
type t = Meta of (string * value) list | Span of span | Metric of metric

let metric_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

let equal (a : t) (b : t) = a = b

(* --- JSON encoding -------------------------------------------------- *)

let value_to_json = function
  | Int i -> Tjson.Int i
  | Float f -> Tjson.Float f
  | Str s -> Tjson.String s
  | Bool b -> Tjson.Bool b

let args_to_json args = Tjson.Obj (List.map (fun (k, v) -> (k, value_to_json v)) args)

let to_json = function
  | Meta kvs -> Tjson.Obj [ ("type", Tjson.String "meta"); ("args", args_to_json kvs) ]
  | Span s ->
      Tjson.Obj
        ([ ("type", Tjson.String "span"); ("name", Tjson.String s.sp_name);
           ("id", Tjson.Int s.sp_id) ]
        @ (match s.sp_parent with Some p -> [ ("parent", Tjson.Int p) ] | None -> [])
        @ [
            ("domain", Tjson.Int s.sp_domain);
            ("start_us", Tjson.Float s.sp_start_us);
            ("dur_us", Tjson.Float s.sp_dur_us);
            ("args", args_to_json s.sp_args);
          ])
  | Metric (Counter c) ->
      Tjson.Obj
        [ ("type", Tjson.String "counter"); ("name", Tjson.String c.c_name);
          ("value", Tjson.Int c.c_value) ]
  | Metric (Gauge g) ->
      Tjson.Obj
        [ ("type", Tjson.String "gauge"); ("name", Tjson.String g.g_name);
          ("value", Tjson.Float g.g_value) ]
  | Metric (Histogram h) ->
      Tjson.Obj
        [
          ("type", Tjson.String "histogram"); ("name", Tjson.String h.h_name);
          ("count", Tjson.Int h.h_count); ("sum", Tjson.Float h.h_sum);
          ("min", Tjson.Float h.h_min); ("max", Tjson.Float h.h_max);
        ]

(* --- JSON decoding -------------------------------------------------- *)

let value_of_json = function
  | Tjson.Int i -> Some (Int i)
  | Tjson.Float f -> Some (Float f)
  | Tjson.String s -> Some (Str s)
  | Tjson.Bool b -> Some (Bool b)
  | _ -> None

let args_of_json j =
  match j with
  | Some (Tjson.Obj kvs) ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (k, v) :: rest -> (
            match value_of_json v with Some v -> go ((k, v) :: acc) rest | None -> None)
      in
      go [] kvs
  | None -> Some []
  | Some _ -> None

let of_json j =
  let str key = Option.bind (Tjson.member key j) Tjson.to_string_opt in
  let int key = Option.bind (Tjson.member key j) Tjson.to_int_opt in
  let flt key = Option.bind (Tjson.member key j) Tjson.to_float_opt in
  let require what = function Some v -> Ok v | None -> Error ("missing or ill-typed " ^ what) in
  let ( let* ) = Result.bind in
  match str "type" with
  | Some "meta" -> (
      match args_of_json (Tjson.member "args" j) with
      | Some kvs -> Ok (Meta kvs)
      | None -> Error "meta: bad args")
  | Some "span" ->
      let* name = require "name" (str "name") in
      let* id = require "id" (int "id") in
      let* domain = require "domain" (int "domain") in
      let* start_us = require "start_us" (flt "start_us") in
      let* dur_us = require "dur_us" (flt "dur_us") in
      let* args =
        match args_of_json (Tjson.member "args" j) with
        | Some a -> Ok a
        | None -> Error "span: bad args"
      in
      Ok
        (Span
           {
             sp_name = name;
             sp_id = id;
             sp_parent = int "parent";
             sp_domain = domain;
             sp_start_us = start_us;
             sp_dur_us = dur_us;
             sp_args = args;
           })
  | Some "counter" ->
      let* name = require "name" (str "name") in
      let* value = require "value" (int "value") in
      Ok (Metric (Counter { c_name = name; c_value = value }))
  | Some "gauge" ->
      let* name = require "name" (str "name") in
      let* value = require "value" (flt "value") in
      Ok (Metric (Gauge { g_name = name; g_value = value }))
  | Some "histogram" ->
      let* name = require "name" (str "name") in
      let* count = require "count" (int "count") in
      let* sum = require "sum" (flt "sum") in
      let* min_ = require "min" (flt "min") in
      let* max_ = require "max" (flt "max") in
      Ok (Metric (Histogram { h_name = name; h_count = count; h_sum = sum; h_min = min_; h_max = max_ }))
  | Some other -> Error ("unknown event type " ^ other)
  | None -> Error "missing event type"
