(* The five debugging case studies (Tables 3 and 6). Each buggy design
   pairs a usage scenario with one activated bug from the catalog; the
   other catalog bugs exist for the bug-coverage analysis of Table 5.

   The scenario assignment follows Table 3 (case studies 1-2 on
   Scenario 1, 3-4 on Scenario 2, 5 on Scenario 3) and the root-caused
   functions of Table 6: DMU interrupt generation, NCU interrupt
   decode/dequeue, malformed CPU requests towards CCX, wrong Mondo
   CPU/thread routing, and MCU request decoding. *)

open Flowtrace_soc
open Flowtrace_bug

type t = {
  cs_id : int;
  scenario : Scenario.t;
  bug_id : int;  (* the activated bug *)
  seed : int;
}

let all =
  [
    { cs_id = 1; scenario = Scenario.scenario1; bug_id = 33; seed = 11 };
    { cs_id = 2; scenario = Scenario.scenario1; bug_id = 21; seed = 12 };
    { cs_id = 3; scenario = Scenario.scenario2; bug_id = 34; seed = 13 };
    { cs_id = 4; scenario = Scenario.scenario2; bug_id = 8; seed = 14 };
    { cs_id = 5; scenario = Scenario.scenario3; bug_id = 27; seed = 15 };
  ]

let by_id id =
  match List.find_opt (fun cs -> cs.cs_id = id) all with
  | Some cs -> cs
  | None -> invalid_arg (Printf.sprintf "Case_study.by_id: %d" id)

let bug cs = Catalog.by_id cs.bug_id

let run ?(buffer_width = 32) ?rounds ?obs_faults cs =
  Session.run ~seed:cs.seed ?rounds ?obs_faults ~scenario:cs.scenario ~bugs:[ bug cs ]
    ~buffer_width ()
