(** Debugging sessions (Section 5.6).

    Starting from the bug symptom, investigate traced messages one at a
    time — pseudo-randomly, guided by the participating flows — and
    progressively eliminate candidate legal IP pairs and root causes.
    Produces the measurements behind Table 6, Figure 6 and Figure 7. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_bug

type step = {
  st_msg : string;
  st_entries : int;  (** trace-buffer occurrences examined at this step *)
  st_pairs_remaining : int;
  st_causes_remaining : int;
}

(** How much of the message-level evidence the final candidate set
    relied on. [Full] — every rule, the normal path. Under a lossy
    observation, message {e absence} is the one evidence class that
    fires spuriously when packets are dropped (the observer saw fewer
    occurrences than the design produced), so the first fallback tier
    [No_absence_exoneration] discards absence-based exonerations;
    [Triage_only] additionally discards all message-level exonerations,
    keeping only the regression harness's flow-health verdicts and
    positive implications. *)
type evidence_trust = Full | No_absence_exoneration | Triage_only

type t = {
  scenario : Scenario.t;
  selection : Select.result;
  evidence : Evidence.t;
  symptom : Inject.symptom;
  causes_total : int;
  plausible : Cause.t list;  (** causes surviving elimination *)
  implicated : Cause.t list;  (** survivors with positive evidence *)
  steps : step list;
  legal_pairs : (string * string) list;
  pairs_investigated : int;
  messages_investigated : int;
  obs_report : Obs_fault.report option;
      (** fault accounting when the observation path was faulted *)
  trust : evidence_trust;  (** trust tier that produced [plausible] *)
}

(** Distinct (src, dst) IP pairs carrying a message of the scenario. *)
val legal_pairs : Scenario.t -> (string * string) list

(** [run ~scenario ~bugs ~buffer_width ()] executes golden and buggy runs
    of the same workload, selects trace messages, builds evidence and
    drives the elimination session. Deterministic given [seed].

    [obs_faults] degrades the buggy run's monitor log through
    {!Flowtrace_soc.Obs_fault.apply} before evidence is built (the golden reference —
    a pre-silicon simulation — stays perfect). When elimination then
    exonerates {e every} catalogued cause despite a symptom, the
    session falls back through the {!evidence_trust} tiers instead of
    returning an empty candidate set. *)
val run :
  ?seed:int ->
  ?rounds:int ->
  ?obs_faults:Obs_fault.spec ->
  scenario:Scenario.t ->
  bugs:Bug.t list ->
  buffer_width:int ->
  unit ->
  t

(** [eliminate ~trust evidence scenario_id] applies the flow-health
    triage plus every message rule the trust tier admits, in one
    order-independent pass, returning [(plausible, implicated)]. This
    is the fallback's engine, exposed for direct testing on crafted
    evidence. *)
val eliminate : trust:evidence_trust -> Evidence.t -> int -> Cause.t list * Cause.t list

(** Whether a fallback tier (anything below [Full]) produced the
    candidate set. *)
val fallback_used : t -> bool

val trust_to_string : evidence_trust -> string

(** Fraction of candidate root causes pruned (Figure 7). *)
val pruned_fraction : t -> float
