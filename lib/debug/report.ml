(* Human-readable rendering of a debugging session, in the shape of the
   paper's Section 5.7 case-study narrative: symptom, selection, step-wise
   elimination, verdict. *)

open Flowtrace_core
open Flowtrace_bug

let render (s : Session.t) =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (fun str -> Buffer.add_string buf (str ^ "\n")) fmt in
  add "=== debug session: %s ===" s.Session.scenario.Flowtrace_soc.Scenario.name;
  add "symptom: %s" (Inject.symptom_to_string s.Session.symptom);
  add "selection (%d-bit buffer): %s" s.Session.selection.Select.buffer_width
    (String.concat ", " (Select.selected_names s.Session.selection));
  (match s.Session.obs_report with
  | None -> ()
  | Some r -> add "%s" (Flowtrace_soc.Obs_fault.report_to_string r));
  add "";
  add "evidence (observable messages):";
  List.iter
    (fun e ->
      if e.Evidence.me_observable then
        add "  %-14s seen %d/%d%s%s" e.Evidence.me_msg e.Evidence.me_seen e.Evidence.me_golden
          (if e.Evidence.me_corrupt then "  CORRUPT" else "")
          (if e.Evidence.me_payload_visible then "" else "  (occurrence counts only)"))
    s.Session.evidence.Evidence.messages;
  add "";
  add "investigation (%d legal IP pairs, %d potential root causes):"
    (List.length s.Session.legal_pairs)
    s.Session.causes_total;
  List.iter
    (fun st ->
      add "  %-14s %3d occurrences -> %d pairs, %d causes remain" st.Session.st_msg
        st.Session.st_entries st.Session.st_pairs_remaining st.Session.st_causes_remaining)
    s.Session.steps;
  add "";
  if Session.fallback_used s then
    add
      "note: full evidence exonerated every catalogued cause — observation looks lossy; candidate set recovered at trust tier %S"
      (Session.trust_to_string s.Session.trust);
  (match s.Session.plausible with
  | [] -> add "verdict: every catalogued cause exonerated — symptom unexplained"
  | causes ->
      add "verdict (%d plausible cause%s, %.1f%% pruned):" (List.length causes)
        (if List.length causes > 1 then "s" else "")
        (100.0 *. Session.pruned_fraction s);
      List.iter
        (fun (c : Cause.t) ->
          add "  [%s] %s%s" c.Cause.c_ip c.Cause.c_desc
            (if List.memq c s.Session.implicated then "  (implicated by evidence)" else "");
          add "        implication: %s" c.Cause.c_implication)
        causes);
  add "investigated %d messages across %d of %d legal IP pairs"
    s.Session.messages_investigated s.Session.pairs_investigated
    (List.length s.Session.legal_pairs);
  Buffer.contents buf

let print s = print_string (render s)
