(** Human-readable rendering of a debugging session, in the shape of the
    paper's Section 5.7 case-study narrative. *)

(** [render s] is the full report as a string: symptom, selection,
    investigation steps with the pair/cause elimination curve, verdict. *)
val render : Session.t -> string

(** [print s] writes {!render} to stdout. *)
val print : Session.t -> unit
