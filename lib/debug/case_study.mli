(** The five debugging case studies (Tables 3 and 6): a usage scenario
    paired with one activated catalog bug and a workload seed. *)

open Flowtrace_soc
open Flowtrace_bug

type t = { cs_id : int; scenario : Scenario.t; bug_id : int; seed : int }

(** The five studies, in Table 3 order. *)
val all : t list

(** [by_id n] is case study [n] (1–5); [Invalid_argument] otherwise. *)
val by_id : int -> t

(** The activated catalog bug of a case study. *)
val bug : t -> Bug.t

(** [run cs] drives the full debug session for the case study.
    [obs_faults] degrades the observation path as in {!Session.run}. *)
val run :
  ?buffer_width:int -> ?rounds:int -> ?obs_faults:Flowtrace_soc.Obs_fault.spec -> t -> Session.t
