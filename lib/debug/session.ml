(* A debugging session (Section 5.6): starting from the bug symptom,
   investigate traced messages one at a time — pseudo-randomly, guided by
   the participating flows — and progressively eliminate candidate legal
   IP pairs and candidate root causes.

   Produces the measurements behind Table 6 (pairs/messages investigated,
   root-caused function), Figure 6 (elimination curves) and Figure 7
   (cause pruning distribution). *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_bug
module Tel = Flowtrace_telemetry.Telemetry

let c_steps = Tel.Counter.v "debug.session.steps"
let c_entries = Tel.Counter.v "debug.session.entries_examined"
let c_fallbacks = Tel.Counter.v "debug.session.fallbacks"

type step = {
  st_msg : string;
  st_entries : int;  (* trace-buffer occurrences examined for this message *)
  st_pairs_remaining : int;
  st_causes_remaining : int;
}

type evidence_trust = Full | No_absence_exoneration | Triage_only

type t = {
  scenario : Scenario.t;
  selection : Select.result;
  evidence : Evidence.t;
  symptom : Inject.symptom;
  causes_total : int;
  plausible : Cause.t list;
  implicated : Cause.t list;
  steps : step list;
  legal_pairs : (string * string) list;
  pairs_investigated : int;
  messages_investigated : int;  (* total trace-buffer entries examined *)
  obs_report : Obs_fault.report option;
  trust : evidence_trust;
}

(* Legal IP pairs of a scenario: distinct (src, dst) with a message between
   them (Section 5.6). *)
let legal_pairs scenario =
  List.sort_uniq compare
    (List.map (fun (m : Message.t) -> (m.Message.src, m.Message.dst)) (Scenario.messages scenario))

(* Investigation order: backtrack from the symptom message through its
   flow (reverse flow order), then the remaining observable messages in a
   seed-determined shuffle — "pseudo-random and guided by the
   participating flows". *)
let investigation_order ~rng ~scenario ~selection ~symptom_flow ~symptom_msg =
  let observable =
    List.filter
      (fun (m : Message.t) -> Select.is_observable selection m.Message.name)
      (Scenario.messages scenario)
  in
  let names = List.map (fun (m : Message.t) -> m.Message.name) observable in
  let flow_msgs =
    match symptom_flow with
    | Some fname ->
        let f = T2.flow_by_name fname in
        (* reverse flow order: last-emitted message first *)
        let in_flow = List.map (fun (m : Message.t) -> m.Message.name) f.Flow.messages in
        let rev = List.rev in_flow in
        (* rotate so the symptom message comes first when known *)
        let rotated =
          match symptom_msg with
          | Some sm when List.mem sm rev ->
              let rec rot = function
                | [] -> []
                | x :: rest when String.equal x sm -> x :: rest
                | _ :: rest -> rot rest
              in
              rot rev @ List.filter (fun m -> not (List.mem m (rot rev))) rev
          | _ -> rev
        in
        List.filter (fun m -> List.mem m names) rotated
    | None -> []
  in
  let rest = List.filter (fun m -> not (List.mem m flow_msgs)) names in
  let rest_arr = Array.of_list rest in
  Rng.shuffle rng rest_arr;
  flow_msgs @ Array.to_list rest_arr

type cause_state = { cause : Cause.t; mutable alive : bool; mutable implicated_ : bool }

(* Apply the flow-health triage rules (the regression harness's pass/fail
   verdict is available before any trace entry is examined). *)
let triage evidence causes =
  List.iter
    (fun cs ->
      if cs.alive then
        List.iter
          (fun rule ->
            match rule with
            | Cause.Exonerate_if_flow_healthy flow ->
                if Evidence.flow_healthy evidence flow then cs.alive <- false
            | _ -> ())
          cs.cause.Cause.c_rules)
    causes

(* Apply the message rules of all alive causes that key on [msg]. *)
let investigate evidence causes msg =
  List.iter
    (fun cs ->
      if cs.alive then
        List.iter
          (fun rule ->
            match (rule, Cause.rule_message rule) with
            | _, Some m when not (String.equal m msg) -> ()
            | Cause.Exonerate_if_seen_ok m, _ ->
                if Evidence.seen_ok evidence m then cs.alive <- false
            | Cause.Exonerate_if_counts_ok m, _ ->
                if Evidence.counts_ok evidence m then cs.alive <- false
            | Cause.Exonerate_if_absent m, _ ->
                if Evidence.absent evidence m then cs.alive <- false
            | Cause.Implicate_if_absent m, _ ->
                if Evidence.absent evidence m then cs.implicated_ <- true
            | Cause.Implicate_if_corrupt m, _ ->
                if Evidence.corrupt evidence m then cs.implicated_ <- true
            | Cause.Exonerate_if_flow_healthy _, _ -> ())
          cs.cause.Cause.c_rules)
    causes

(* One full pass of the elimination rules under a trust level — the
   gap-tolerant fallback. When the observation path is faulty, message
   absence is the one evidence class that fires SPURIOUSLY under drops
   (the observer saw fewer occurrences than the design produced), so the
   first retreat discards only absence-based exonerations. [seen_ok] and
   [counts_ok] can only fail, never wrongly fire, under losses — an
   observer cannot fabricate matching packets — so they stay trusted
   until [Triage_only], which keeps nothing but the regression harness's
   flow-health verdicts and the positive implications. Order-independent:
   rules only flip flags monotonically. *)
let eliminate ~trust evidence scenario_id =
  let causes =
    List.map (fun c -> { cause = c; alive = true; implicated_ = false })
      (Cause.for_scenario scenario_id)
  in
  triage evidence causes;
  let trusted rule =
    match (trust, rule) with
    | Full, _ -> true
    | No_absence_exoneration, Cause.Exonerate_if_absent _ -> false
    | No_absence_exoneration, _ -> true
    | ( Triage_only,
        ( Cause.Exonerate_if_seen_ok _ | Cause.Exonerate_if_counts_ok _
        | Cause.Exonerate_if_absent _ ) ) ->
        false
    | Triage_only, _ -> true
  in
  List.iter
    (fun cs ->
      List.iter
        (fun rule ->
          if trusted rule then
            match rule with
            | Cause.Exonerate_if_seen_ok m ->
                if cs.alive && Evidence.seen_ok evidence m then cs.alive <- false
            | Cause.Exonerate_if_counts_ok m ->
                if cs.alive && Evidence.counts_ok evidence m then cs.alive <- false
            | Cause.Exonerate_if_absent m ->
                if cs.alive && Evidence.absent evidence m then cs.alive <- false
            | Cause.Implicate_if_absent m ->
                if Evidence.absent evidence m then cs.implicated_ <- true
            | Cause.Implicate_if_corrupt m ->
                if Evidence.corrupt evidence m then cs.implicated_ <- true
            | Cause.Exonerate_if_flow_healthy _ -> ())
        cs.cause.Cause.c_rules)
    causes;
  ( List.filter_map (fun cs -> if cs.alive then Some cs.cause else None) causes,
    List.filter_map (fun cs -> if cs.alive && cs.implicated_ then Some cs.cause else None) causes
  )

let run ?(seed = 1) ?(rounds = Scenario.default_run.Scenario.rounds) ?obs_faults ~scenario ~bugs
    ~buffer_width () =
  Tel.with_span "debug.session"
    ~args:(fun () ->
      Flowtrace_telemetry.Event.
        [
          ("scenario", Str scenario.Scenario.name);
          ("seed", Int seed);
          ("width", Int buffer_width);
        ])
  @@ fun () ->
  let config = { Scenario.default_run with Scenario.seed; rounds } in
  let golden, buggy = Inject.golden_vs_buggy ~config scenario bugs in
  (* The observation-path fault model degrades what the monitors report
     about the BUGGY (silicon) run; the golden reference is a
     pre-silicon simulation and stays perfect. Symptom detection below
     still uses the unfaulted outcome — the regression harness's
     verdict does not pass through the trace buffer. *)
  let buggy_observed, obs_report =
    match obs_faults with
    | Some spec when not (Obs_fault.is_none spec) ->
        let faulted, rep = Obs_fault.apply ~seed:(seed + 0xbf) spec buggy.Sim.packets in
        ({ buggy with Sim.packets = faulted }, Some rep)
    | _ -> (buggy, None)
  in
  let inter = Scenario.interleave scenario in
  let selection = Select.select ~strategy:Select.Greedy inter ~buffer_width in
  let evidence = Evidence.build ~selection ~scenario ~golden ~buggy:buggy_observed in
  let symptom = evidence.Evidence.symptom in
  let symptom_flow =
    match symptom with
    | Inject.Failure f -> Some f.Sim.f_flow
    | Inject.Hang { flow; _ } -> Some flow
    | Inject.No_symptom -> None
  in
  let symptom_msg = Inject.symptom_message buggy in
  let rng = Rng.create (seed + 31337) in
  let order = investigation_order ~rng ~scenario ~selection ~symptom_flow ~symptom_msg in
  let causes =
    List.map (fun c -> { cause = c; alive = true; implicated_ = false })
      (Cause.for_scenario scenario.Scenario.id)
  in
  triage evidence causes;
  let pairs_total = legal_pairs scenario in
  (* candidate pairs: a pair is exonerated once a message across it is
     investigated and found consistent with the golden run *)
  let pair_alive = Hashtbl.create 16 in
  List.iter (fun pr -> Hashtbl.replace pair_alive pr true) pairs_total;
  let alive_pairs () = Hashtbl.fold (fun _ v acc -> if v then acc + 1 else acc) pair_alive 0 in
  let alive_causes () = List.length (List.filter (fun cs -> cs.alive) causes) in
  let steps = ref [] in
  let pairs_touched = Hashtbl.create 16 in
  let entries_total = ref 0 in
  let continue_ = ref true in
  List.iter
    (fun msg ->
      if !continue_ then begin
        let st_cell = ref None in
        let step_args () =
          match !st_cell with
          | None -> []
          | Some st ->
              Flowtrace_telemetry.Event.
                [
                  ("msg", Str st.st_msg);
                  ("entries", Int st.st_entries);
                  ("pairs_remaining", Int st.st_pairs_remaining);
                  ("causes_remaining", Int st.st_causes_remaining);
                ]
        in
        let st =
          Tel.with_span "debug.session.step" ~args:step_args @@ fun () ->
          investigate evidence causes msg;
          let ev = Evidence.for_message evidence msg in
          let entries =
            match ev with
            | Some e -> max e.Evidence.me_seen e.Evidence.me_golden
            | None -> 0
          in
          entries_total := !entries_total + entries;
          (match ev with
          | Some e ->
              Hashtbl.replace pairs_touched (e.Evidence.me_src, e.Evidence.me_dst) true;
              if Evidence.seen_ok evidence msg then
                Hashtbl.replace pair_alive (e.Evidence.me_src, e.Evidence.me_dst) false
          | None -> ());
          let st =
            {
              st_msg = msg;
              st_entries = entries;
              st_pairs_remaining = alive_pairs ();
              st_causes_remaining = alive_causes ();
            }
          in
          st_cell := Some st;
          st
        in
        Tel.Counter.incr c_steps;
        Tel.Counter.add c_entries st.st_entries;
        steps := st :: !steps;
        (* stop once every remaining cause is positively implicated *)
        let alive = List.filter (fun cs -> cs.alive) causes in
        if alive <> [] && List.for_all (fun cs -> cs.implicated_) alive then continue_ := false
      end)
    order;
  let plausible = List.filter_map (fun cs -> if cs.alive then Some cs.cause else None) causes in
  let implicated =
    List.filter_map (fun cs -> if cs.alive && cs.implicated_ then Some cs.cause else None) causes
  in
  (* Gap-tolerant fallback: a symptom with an empty candidate set means
     the evidence exonerated every catalogued cause — impossible if the
     evidence were sound, so the observation was lossy. Retreat to
     progressively less observation-dependent rule sets instead of
     reporting nothing. *)
  let trust, plausible, implicated =
    if plausible <> [] || symptom = Inject.No_symptom then (Full, plausible, implicated)
    else begin
      Tel.Counter.incr c_fallbacks;
      let p1, i1 = eliminate ~trust:No_absence_exoneration evidence scenario.Scenario.id in
      if p1 <> [] then (No_absence_exoneration, p1, i1)
      else
        let p2, i2 = eliminate ~trust:Triage_only evidence scenario.Scenario.id in
        (Triage_only, p2, i2)
    end
  in
  {
    scenario;
    selection;
    evidence;
    symptom;
    causes_total = List.length causes;
    plausible;
    implicated;
    steps = List.rev !steps;
    legal_pairs = pairs_total;
    pairs_investigated = Hashtbl.length pairs_touched;
    messages_investigated = !entries_total;
    obs_report;
    trust;
  }

let fallback_used t = t.trust <> Full

let trust_to_string = function
  | Full -> "full"
  | No_absence_exoneration -> "no-absence-exoneration"
  | Triage_only -> "triage-only"

let pruned_fraction t =
  if t.causes_total = 0 then 0.0
  else
    float_of_int (t.causes_total - List.length t.plausible) /. float_of_int t.causes_total
