(* Mining fidelity sweep (extension, not in the paper): spec inference
   quality vs observation loss. The closed loop — simulate the T2
   scenarios, lose a fraction of the monitor log, mine candidate flows
   back, score them against the ground-truth specs, and run Step-1/2
   selection on the mined spec — quantifies how much trace loss the
   inference layer absorbs before the recovered specification stops
   being selection-equivalent to the truth.

   At drop 0 the recovery is exact by construction (the round-trip
   property in test/test_mining.ml); as the rate grows, lossy episodes
   first absorb into their full-length paths (subsequence evidence),
   then start surviving as spurious shortened paths, degrading path
   precision before edge recall. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_mining

let buffer_width = 32
let rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
let seeds = [ 1; 2; 3 ]

type point = {
  pt_episodes : int;
  pt_kept : int;
  pt_dropped : int;
  pt_edge_p : float;
  pt_edge_r : float;
  pt_path_p : float;
  pt_path_r : float;
  pt_sel_match : bool;
}

(* The truth's Step-1/2 answer under the mined flow enumeration order:
   equal-gain ties break by message order, so align the flow lists
   before asking whether mining changed the answer. *)
let selection flows =
  Select.selected_names (Select.select (Interleave.of_flows flows) ~buffer_width)

let point ~rate ~seed =
  let traces =
    List.map
      (fun (sc, s) ->
        let config = { Scenario.default_run with Scenario.rounds = 12; seed = s } in
        let outcome = Scenario.run ~config sc in
        let spec = { Obs_fault.none with Obs_fault.drop = rate } in
        fst (Obs_fault.apply ~seed:((s * 7919) + 1) spec outcome.Sim.packets))
      [ (Scenario.scenario1, seed); (Scenario.scenario2, seed + 100) ]
  in
  let result =
    Miner.mine
      ~config:{ Miner.default_config with Miner.support = 0.1; min_count = 2 }
      ~catalog:T2.all_messages ~file:"sweep" traces
  in
  let mined = List.map (fun m -> m.Miner.m_flow) result.Miner.r_flows in
  let s = Score.score ~truth:T2.flows mined in
  let sel_match =
    s.Score.missing = []
    &&
    let truth_aligned =
      List.map
        (fun (m : Flow.t) ->
          List.find (fun (t : Flow.t) -> String.equal t.Flow.name m.Flow.name) T2.flows)
        mined
    in
    List.equal String.equal (selection truth_aligned) (selection mined)
  in
  {
    pt_episodes = result.Miner.r_episodes;
    pt_kept = List.fold_left (fun a m -> a + List.length m.Miner.m_kept) 0 result.Miner.r_flows;
    pt_dropped =
      List.fold_left (fun a m -> a + List.length m.Miner.m_dropped) 0 result.Miner.r_flows;
    pt_edge_p = Score.edge_precision s;
    pt_edge_r = Score.edge_recall s;
    pt_path_p = Score.path_precision s;
    pt_path_r = Score.path_recall s;
    pt_sel_match = sel_match;
  }

let run () =
  let rows =
    List.map
      (fun rate ->
        let pts = List.map (fun seed -> point ~rate ~seed) seeds in
        let n = float_of_int (List.length pts) in
        let avg f = List.fold_left (fun a p -> a +. f p) 0.0 pts /. n in
        [
          Printf.sprintf "%.0f%%" (100.0 *. rate);
          Printf.sprintf "%.0f" (avg (fun p -> float_of_int p.pt_episodes));
          Printf.sprintf "%.1f" (avg (fun p -> float_of_int p.pt_kept));
          Printf.sprintf "%.1f" (avg (fun p -> float_of_int p.pt_dropped));
          Table_render.pct (avg (fun p -> p.pt_edge_p));
          Table_render.pct (avg (fun p -> p.pt_edge_r));
          Table_render.pct (avg (fun p -> p.pt_path_p));
          Table_render.pct (avg (fun p -> p.pt_path_r));
          Printf.sprintf "%d/%d"
            (List.length (List.filter (fun p -> p.pt_sel_match) pts))
            (List.length pts);
        ])
      rates
  in
  Table_render.make
    ~title:"Mining fidelity vs observation loss (scenarios 1+2, support 0.1, 32-bit buffer)"
    ~notes:
      [
        "extension, not in the paper: flows are mined back from lossy monitor logs";
        "and scored against the ground-truth T2 specs (edge/path precision-recall);";
        "Sel match counts seeds whose mined spec yields the exact Step-1/2 selection";
      ]
    ~header:
      [ "Drop"; "Episodes"; "Kept"; "Dropped"; "Edge P"; "Edge R"; "Path P"; "Path R"; "Sel match" ]
    rows
