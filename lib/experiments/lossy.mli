(** Loss sweep (extension, not in the paper): path localization under a
    faulty observer — exact vs. gap-tolerant matching as the
    observation drop rate grows. *)

val run : unit -> Table_render.t
