(* Every reproduced table and figure, addressable by id. *)

type experiment = { id : string; description : string; run : unit -> Table_render.t list }

let all =
  [
    { id = "table1"; description = "usage scenarios and participating flows"; run = (fun () -> [ Table1.run () ]) };
    { id = "table2"; description = "representative injected bugs"; run = (fun () -> [ Table2.run () ]) };
    {
      id = "table3";
      description = "utilization, FSP coverage, path localization (WP/WoP)";
      run = (fun () -> [ Table3.run () ]);
    };
    { id = "table4"; description = "USB: SigSeT vs PRNet vs InfoGain"; run = (fun () -> [ Table4.run () ]) };
    { id = "table5"; description = "bug coverage and message importance"; run = (fun () -> [ Table5.run () ]) };
    { id = "table6"; description = "root causes and debugging statistics"; run = (fun () -> [ Table6.run () ]) };
    { id = "table7"; description = "representative potential root causes"; run = (fun () -> [ Table7.run () ]) };
    { id = "fig5"; description = "information gain vs coverage correlation"; run = Fig5.run };
    { id = "fig6"; description = "eliminations per investigated message"; run = Fig6.run };
    { id = "fig7"; description = "root-cause pruning distribution"; run = (fun () -> [ Fig7.run () ]) };
    {
      id = "intro";
      description = "Section 1 message-reconstruction claim (USB)";
      run = (fun () -> [ Intro_recon.run () ]);
    };
    {
      id = "lossy";
      description = "localization under observation loss (not in paper)";
      run = (fun () -> [ Lossy.run () ]);
    };
    {
      id = "mining";
      description = "spec-mining fidelity vs trace loss (not in paper)";
      run = (fun () -> [ Mining_exp.run () ]);
    };
    {
      id = "ablations";
      description = "design-choice ablations + scalability (not in paper)";
      run = (fun () -> Ablation.run () @ [ Scalability.run (); Iscas_scale.run () ]);
    };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let ids = List.map (fun e -> e.id) all

let run_all () = List.concat_map (fun e -> e.run ()) all
