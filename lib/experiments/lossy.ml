(* Loss sweep (extension, not in the paper): path localization under an
   imperfect observer. The paper's Table 3 assumes the selected messages
   are observed perfectly; here the observation stream loses a growing
   fraction of packets ([Obs_fault] drops) before localization sees it.

   Exact prefix matching collapses to 0 consistent paths as soon as one
   mid-stream entry is missing — the observation is then a subsequence,
   not a prefix, of every projection. Gap-tolerant matching
   ([Localize.lossy]) instead degrades gracefully: the consistent-path
   count grows with the loss rate (less information localizes less), and
   the true execution stays in the candidate set as long as the skip
   budget covers the losses. *)

open Flowtrace_core
open Flowtrace_soc

let buffer_width = 32
let rates = [ 0.0; 0.05; 0.1; 0.2; 0.3 ]
let seeds = [ 1; 2; 3; 4; 5 ]

type point = {
  pt_dropped : int;
  pt_exact : float;  (* prefix-consistent fraction on the lossy stream *)
  pt_lossy : float;
  pt_truth_kept : bool;  (* >= 1 consistent path survives *)
  pt_discarded : int;
  pt_confidence : float;
}

let point scenario ~rate ~seed =
  let inter = Scenario.interleave scenario in
  let sel = Select.select ~strategy:Select.Greedy inter ~buffer_width in
  let selected base = Select.is_observable sel base in
  let outcome = Scenario.run_analysis ~seed scenario in
  let spec = { Obs_fault.none with Obs_fault.drop = rate } in
  let faulted, rep = Obs_fault.apply ~seed:((seed * 7919) + 1) spec outcome.Sim.packets in
  let project ps =
    List.filter_map
      (fun (p : Packet.t) -> if selected p.Packet.msg then Some (Packet.indexed p) else None)
      ps
  in
  let observed = project faulted in
  let clean_len = List.length (project outcome.Sim.packets) in
  (* Budget sized to the loss regime under test: roughly twice the
     expected number of dropped observable entries, plus slack. *)
  let skip_budget = 2 + int_of_float (2.0 *. rate *. float_of_int clean_len) in
  let exact = Localize.fraction ~semantics:Localize.Prefix inter ~selected ~observed in
  let r = Localize.lossy ~semantics:Localize.Prefix ~skip_budget inter ~selected ~observed in
  {
    pt_dropped = Obs_fault.lost rep;
    pt_exact = exact;
    pt_lossy = Localize.lossy_fraction r;
    pt_truth_kept = r.Localize.lr_consistent >= 1;
    pt_discarded = r.Localize.lr_discarded;
    pt_confidence = r.Localize.lr_confidence;
  }

let run () =
  let scenario = Scenario.scenario1 in
  let rows =
    List.map
      (fun rate ->
        let pts = List.map (fun seed -> point scenario ~rate ~seed) seeds in
        let n = float_of_int (List.length pts) in
        let avg f = List.fold_left (fun a p -> a +. f p) 0.0 pts /. n in
        [
          Printf.sprintf "%.0f%%" (100.0 *. rate);
          Printf.sprintf "%.1f" (avg (fun p -> float_of_int p.pt_dropped));
          Table_render.pct (avg (fun p -> p.pt_exact));
          Table_render.pct (avg (fun p -> p.pt_lossy));
          Printf.sprintf "%d/%d"
            (List.length (List.filter (fun p -> p.pt_truth_kept) pts))
            (List.length pts);
          Printf.sprintf "%.1f" (avg (fun p -> float_of_int p.pt_discarded));
          Table_render.f2 (avg (fun p -> p.pt_confidence));
        ])
      rates
  in
  Table_render.make
    ~title:
      (Printf.sprintf "Loss sweep: localization vs observation drop rate (%s, 32-bit buffer)"
         scenario.Scenario.name)
    ~notes:
      [
        "extension, not in the paper: the observer drops packets before localization";
        "exact prefix matching collapses once a mid-stream entry is lost; lossy";
        "(subsequence + skip budget) degrades gracefully and keeps the true path";
      ]
    ~header:
      [ "Drop"; "Lost pkts"; "Exact loc"; "Lossy loc"; "Truth kept"; "Discarded"; "Confidence" ]
    rows
