(** Mining fidelity sweep (extension, not in the paper): spec-inference
    precision/recall and selection equivalence as the observation drop
    rate grows — the quantitative closure of the simulate → mine →
    select loop. *)

val run : unit -> Table_render.t
