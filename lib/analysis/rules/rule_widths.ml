(* FL011: unknown or foreign IP endpoints — a message with `from ?` /
   `to ?` has no interface to place a monitor on, and (when the lint run
   is given a target topology) an endpoint outside the platform's IP set
   cannot correspond to any physical interface. FL012: widths that defeat
   Step 1/Step 3 — a message too wide for every standard trace-buffer
   width can never be selected, and a subgroup wider than the widest
   buffer can never be packed into leftover bits. *)

open Flowtrace_core

let per_message (input : Rule.input) f =
  List.concat_map
    (fun (rf : Spec_parser.raw_flow) ->
      List.concat_map (fun (m, sp) -> f rf.Spec_parser.rf_name m sp) rf.Spec_parser.rf_messages)
    input.Rule.flows

let fl011 =
  let rec rule =
    {
      Rule.code = "FL011";
      title = "unknown-ip";
      severity = Diagnostic.Warning;
      explain = "a message endpoint is '?' or names an IP outside the target topology; no monitor can observe the interface";
      check =
        (fun ctx input ->
          let known ip =
            match ctx.Rule.known_ips with None -> true | Some ips -> List.exists (String.equal ip) ips
          in
          per_message input (fun flow (m : Message.t) sp ->
              let endpoint what ip =
                if String.equal ip "?" then
                  Some
                    (Rule.diag rule ~flow sp "message %s has an unknown %s IP (%s ?)" m.Message.name
                       what
                       (if what = "source" then "from" else "to"))
                else if not (known ip) then
                  Some
                    (Rule.diag rule ~flow sp "message %s: %s IP %s is not in the target topology"
                       m.Message.name what ip)
                else None
              in
              List.filter_map Fun.id [ endpoint "source" m.Message.src; endpoint "destination" m.Message.dst ]));
    }
  in
  rule

let fl012 =
  let rec rule =
    {
      Rule.code = "FL012";
      title = "unpackable-width";
      severity = Diagnostic.Warning;
      explain = "a message (or one of its subgroups) is wider than every standard trace-buffer width, so Step 1 can never select it and Step 3 can never pack it";
      check =
        (fun ctx input ->
          let max_w = List.fold_left max 0 ctx.Rule.buffer_widths in
          per_message input (fun flow (m : Message.t) sp ->
              let whole =
                if Message.trace_width m > max_w then
                  [
                    Rule.diag rule ~flow sp
                      "message %s needs %d trace bits per cycle but the widest standard buffer is %d%s"
                      m.Message.name (Message.trace_width m) max_w
                      (if m.Message.subgroups = [] then
                         " and it declares no subgroups to pack partially"
                       else "; only its subgroups can ever be traced");
                  ]
                else []
              in
              let subs =
                List.filter_map
                  (fun (sg : Message.subgroup) ->
                    if sg.Message.sg_width > max_w then
                      Some
                        (Rule.diag rule ~flow sp
                           "subgroup %s.%s (width %d) cannot pack into any standard buffer width (max %d)"
                           m.Message.name sg.Message.sg_name sg.Message.sg_width max_w)
                    else None)
                  m.Message.subgroups
              in
              whole @ subs));
    }
  in
  rule

let rules = [ fl011; fl012 ]
