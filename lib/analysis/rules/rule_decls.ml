(* FL001/FL002: duplicate declarations within a flow. FL006: state names
   shadowed across the flows of a scenario. FL015: a spec file with no
   flows at all. *)

open Flowtrace_core

let per_flow (input : Rule.input) f = List.concat_map f input.Rule.flows

let fl001 =
  let rec rule =
    {
      Rule.code = "FL001";
      title = "duplicate-state";
      severity = Diagnostic.Error;
      explain = "a state name is declared twice within one flow; the later declaration silently merges with the first";
      check =
        (fun _ctx input ->
          per_flow input (fun rf ->
              Rule.duplicates (fun (st : Spec_parser.raw_state) -> st.Spec_parser.rs_name) rf.Spec_parser.rf_states
              |> List.map (fun ((first : Spec_parser.raw_state), (dup : Spec_parser.raw_state)) ->
                     Rule.diag rule ~flow:rf.Spec_parser.rf_name dup.Spec_parser.rs_span
                       "duplicate state declaration %S (first declared at line %d)"
                       dup.Spec_parser.rs_name first.Spec_parser.rs_span.Srcspan.line)));
    }
  in
  rule

let fl002 =
  let rec rule =
    {
      Rule.code = "FL002";
      title = "duplicate-message";
      severity = Diagnostic.Error;
      explain = "a message name is declared twice within one flow; only one declaration can label transitions";
      check =
        (fun _ctx input ->
          per_flow input (fun rf ->
              Rule.duplicates (fun ((m : Message.t), _) -> m.Message.name) rf.Spec_parser.rf_messages
              |> List.map (fun ((_, (fsp : Srcspan.t)), ((dup : Message.t), dsp)) ->
                     Rule.diag rule ~flow:rf.Spec_parser.rf_name dsp
                       "duplicate msg declaration %S (first declared at line %d)" dup.Message.name
                       fsp.Srcspan.line)));
    }
  in
  rule

let fl006 =
  let rec rule =
    {
      Rule.code = "FL006";
      title = "shadowed-state";
      severity = Diagnostic.Info;
      explain = "a state name is declared in more than one flow of the scenario; distinct names keep product-state labels and diagnostics unambiguous";
      check =
        (fun _ctx input ->
          (* first declaration of each state name per flow, in file order *)
          let decls =
            List.concat_map
              (fun (rf : Spec_parser.raw_flow) ->
                let seen = Hashtbl.create 8 in
                List.filter_map
                  (fun (st : Spec_parser.raw_state) ->
                    if Hashtbl.mem seen st.Spec_parser.rs_name then None
                    else begin
                      Hashtbl.add seen st.Spec_parser.rs_name ();
                      Some (rf.Spec_parser.rf_name, st)
                    end)
                  rf.Spec_parser.rf_states)
              input.Rule.flows
          in
          Rule.duplicates (fun (_, (st : Spec_parser.raw_state)) -> st.Spec_parser.rs_name) decls
          |> List.map (fun ((first_flow, (first : Spec_parser.raw_state)), (flow, (dup : Spec_parser.raw_state))) ->
                 Rule.diag rule ~flow dup.Spec_parser.rs_span
                   "state %S shadows the declaration in flow %s (line %d)" dup.Spec_parser.rs_name
                   first_flow first.Spec_parser.rs_span.Srcspan.line));
    }
  in
  rule

let fl015 =
  let rec rule =
    {
      Rule.code = "FL015";
      title = "empty-spec";
      severity = Diagnostic.Error;
      explain = "the specification declares no flows; every downstream command (select, interleave, localize) would have nothing to analyze";
      check =
        (fun _ctx input ->
          if input.Rule.flows = [] then
            [
              Rule.diag rule
                (Srcspan.make ~file:input.Rule.file ~line:1 ~col:1)
                "specification declares no flows";
            ]
          else []);
    }
  in
  rule

let rules = [ fl001; fl002; fl006; fl015 ]
