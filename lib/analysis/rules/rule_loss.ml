(* FC030: loss-sensitivity of cross-flow discrimination.

   A flow pair may be distinguishable at the full observable projection
   yet hang that distinguishability on a single message class: drop every
   instance of one class — one Obs_fault drop class, one flaky monitor —
   and the two languages collapse into equality or prefix subsumption.
   Statically naming that class predicts which --obs-faults runs will
   degrade, instead of discovering it one lossy simulation at a time. *)

module M = Scenario_model
module S = Rule.Scenario

let flow_name (vf : M.vflow) = vf.M.v_flow.Flowtrace_core.Flow.name

(* The languages are ambiguous already (FC010/FC011's business)? *)
let ambiguous la lb =
  M.lang_equal la lb
  || (M.subsumed_by la lb && M.has_nonempty la)
  || (M.subsumed_by lb la && M.has_nonempty lb)

let fc030 =
  let rec rule =
    {
      S.code = "FC030";
      title = "loss-fragile-discriminator";
      severity = Diagnostic.Warning;
      explain =
        "dropping one message class collapses two distinguishable flows into ambiguity; \
         that class is a single point of failure for localization under lossy observation";
      check =
        (fun model ->
          List.concat_map
            (fun (f, g) ->
              let lf = M.language model f and lg = M.language model g in
              if ambiguous lf lg then
                (* already statically ambiguous without any loss *)
                []
              else
                let classes =
                  List.sort_uniq String.compare
                    (M.observable_classes model f @ M.observable_classes model g)
                in
                List.filter_map
                  (fun cls ->
                    let lf' = M.language ~without:cls model f in
                    let lg' = M.language ~without:cls model g in
                    if M.lang_equal lf' lg' || M.subsumed_by lf' lg' || M.subsumed_by lg' lf'
                    then
                      let span, flow =
                        match
                          List.find_opt (fun (n, _) -> String.equal n cls) f.M.v_msg_spans
                        with
                        | Some (_, sp) -> (sp, flow_name f)
                        | None -> (g.M.v_span, flow_name g)
                      in
                      Some
                        (S.diag rule ~flow span
                           "dropping message class %s makes flows %s and %s indistinguishable; \
                            one lossy monitor defeats their localization"
                           cls (flow_name f) (flow_name g))
                    else None)
                  classes)
            (S.pairs model.M.valid));
    }
  in
  rule

let rules = [ fc030 ]
