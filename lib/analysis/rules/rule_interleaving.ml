(* FL013: atomic-set interleaving hazards. An atomic init state holds the
   scenario-level mutex from cycle zero; one such flow serializes every
   other flow's atomic section behind it, and two such flows deadlock the
   interleaving outright (neither may fire while the other sits in Atom).
   An atomic->atomic transition keeps the mutex held across several
   states, which serializes concurrency the same way.

   FL014: the interleaved product of the scenario can explode; the state
   count is bounded by the product of per-flow state counts. Warn when
   that bound exceeds the Interleave.make limit, before Too_large fires
   at runtime. *)

open Flowtrace_core

let fl013 =
  let rec rule =
    {
      Rule.code = "FL013";
      title = "atomic-hazard";
      severity = Diagnostic.Warning;
      explain = "an atomic init state or atomic->atomic transition holds the interleaving mutex across states; two flows starting atomic deadlock the scenario";
      check =
        (fun _ctx input ->
          let atomic_inits =
            List.concat_map
              (fun (rf : Spec_parser.raw_flow) ->
                List.filter_map
                  (fun (st : Spec_parser.raw_state) ->
                    if st.Spec_parser.rs_initial && st.Spec_parser.rs_atomic then
                      Some (rf.Spec_parser.rf_name, st)
                    else None)
                  rf.Spec_parser.rf_states)
              input.Rule.flows
          in
          let deadlocked = List.length atomic_inits > 1 in
          let init_diags =
            List.map
              (fun (flow, (st : Spec_parser.raw_state)) ->
                Rule.diag rule ~flow st.Spec_parser.rs_span
                  "init state %s is atomic: it holds the interleaving mutex from the start%s"
                  st.Spec_parser.rs_name
                  (if deadlocked then
                     " — several flows start atomic, so the interleaving deadlocks with no executions"
                   else ""))
              atomic_inits
          in
          let chain_diags =
            List.concat_map
              (fun (rf : Spec_parser.raw_flow) ->
                let atomic = Hashtbl.create 8 in
                List.iter
                  (fun (st : Spec_parser.raw_state) ->
                    if st.Spec_parser.rs_atomic then Hashtbl.replace atomic st.Spec_parser.rs_name ())
                  rf.Spec_parser.rf_states;
                List.filter_map
                  (fun ((tr : Flow.transition), sp) ->
                    if Hashtbl.mem atomic tr.Flow.t_src && Hashtbl.mem atomic tr.Flow.t_dst then
                      Some
                        (Rule.diag rule ~flow:rf.Spec_parser.rf_name sp
                           "transition %s -> %s chains atomic states, holding the interleaving mutex across both"
                           tr.Flow.t_src tr.Flow.t_dst)
                    else None)
                  rf.Spec_parser.rf_transitions)
              input.Rule.flows
          in
          init_diags @ chain_diags);
    }
  in
  rule

let fl014 =
  let rec rule =
    {
      Rule.code = "FL014";
      title = "interleaving-blowup";
      severity = Diagnostic.Warning;
      explain = "the product-state upper bound of the scenario's interleaving exceeds the Interleave.make limit; Too_large would fire at runtime";
      check =
        (fun ctx input ->
          let counts =
            List.map
              (fun (rf : Spec_parser.raw_flow) ->
                let seen = Hashtbl.create 8 in
                List.iter
                  (fun (st : Spec_parser.raw_state) -> Hashtbl.replace seen st.Spec_parser.rs_name ())
                  rf.Spec_parser.rf_states;
                max 1 (Hashtbl.length seen))
              input.Rule.flows
          in
          let bound = List.fold_left (fun acc n -> acc *. float_of_int n) 1.0 (List.map Fun.id counts) in
          match input.Rule.flows with
          | first :: _ when bound > float_of_int ctx.Rule.max_states ->
              [
                Rule.diag rule first.Spec_parser.rf_span
                  "a one-instance-per-flow interleaving of this scenario has up to %.3g product states, over the limit of %d (Interleave.Too_large would fire); split the scenario or raise the bound"
                  bound ctx.Rule.max_states;
              ]
          | _ -> []);
    }
  in
  rule

let rules = [ fl013; fl014 ]
