(* FL007: non-deterministic observability — one state with two or more
   outgoing transitions carrying the same message label. Observing that
   message cannot determine which successor the flow took, so path
   localization (Section 5.3's consistent-path counting) degrades. *)

open Flowtrace_core

let fl007 =
  let rec rule =
    {
      Rule.code = "FL007";
      title = "nondeterministic-observability";
      severity = Diagnostic.Warning;
      explain = "a state has several outgoing transitions with the same message label; the observed message cannot determine the successor";
      check =
        (fun _ctx input ->
          List.concat_map
            (fun (rf : Spec_parser.raw_flow) ->
              Rule.duplicates
                (fun ((tr : Flow.transition), _) -> tr.Flow.t_src ^ " " ^ tr.Flow.t_msg)
                rf.Spec_parser.rf_transitions
              |> List.filter_map (fun (((first : Flow.transition), _), ((dup : Flow.transition), dsp)) ->
                     if String.equal first.Flow.t_dst dup.Flow.t_dst then None
                       (* same successor twice is a plain duplicate edge,
                          not an observability hazard *)
                     else
                       Some
                         (Rule.diag rule ~flow:rf.Spec_parser.rf_name dsp
                            "state %s has multiple successors under message %s (%s and %s); observing %s cannot localize the path taken"
                            dup.Flow.t_src dup.Flow.t_msg first.Flow.t_dst dup.Flow.t_dst
                            dup.Flow.t_msg)))
            input.Rule.flows);
    }
  in
  rule

let rules = [ fl007 ]
