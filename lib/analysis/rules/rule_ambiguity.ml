(* FC010–FC013: ambiguity of the observable projection.

   These rules bound what Localize can ever achieve, independent of which
   messages Select picks: if two flows' observable trace languages
   coincide (FC010) or one is prefix-subsumed by the other (FC011), no
   selection — selections only shrink the projection further — can tell a
   bug in one from a bug in the other. FC012 is the intra-flow analogue
   (branches sharing a projection), FC013 the degenerate case of a flow
   with no observable message at all under the declared topology. *)

module M = Scenario_model
module S = Rule.Scenario

let flow_name (vf : M.vflow) = vf.M.v_flow.Flowtrace_core.Flow.name

let fc010 =
  let rec rule =
    {
      S.code = "FC010";
      title = "identical-projection";
      severity = Diagnostic.Warning;
      explain =
        "two flows' observable trace languages are identical; no message selection can \
         distinguish a bug in one from a bug in the other";
      check =
        (fun model ->
          List.filter_map
            (fun (f, g) ->
              let lf = M.language model f and lg = M.language model g in
              if M.lang_equal lf lg && M.has_nonempty lf then
                Some
                  (S.diag rule ~flow:(flow_name g) g.M.v_span
                     "observable projection is identical to flow %s's (%d trace%s); their \
                      executions are indistinguishable under any selection"
                     (flow_name f) (List.length lf)
                     (if List.length lf = 1 then "" else "s"))
              else None)
            (S.pairs model.M.valid));
    }
  in
  rule

let fc011 =
  let rec rule =
    {
      S.code = "FC011";
      title = "prefix-subsumption";
      severity = Diagnostic.Warning;
      explain =
        "every observable trace of one flow is a prefix of another flow's; mid-execution \
         (Prefix-semantics) localization can never exclude the subsuming flow";
      check =
        (fun model ->
          let subsumption (f, g) =
            (* report at the subsumed flow's declaration *)
            let lf = M.language model f and lg = M.language model g in
            if M.lang_equal lf lg then None
            else if M.subsumed_by lg lf && M.has_nonempty lg then Some (g, f)
            else if M.subsumed_by lf lg && M.has_nonempty lf then Some (f, g)
            else None
          in
          List.filter_map
            (fun pair ->
              Option.map
                (fun (sub, sup) ->
                  S.diag rule ~flow:(flow_name sub) sub.M.v_span
                    "every observable trace of this flow is a prefix of one of flow %s's; a \
                     mid-execution observation of %s never excludes %s"
                    (flow_name sup) (flow_name sub) (flow_name sup))
                (subsumption pair))
            (S.pairs model.M.valid));
    }
  in
  rule

(* First state at which two state paths diverge, for FC012's example. *)
let divergence_state pa pb =
  let rec go xs ys =
    match (xs, ys) with
    | x :: xs', y :: ys' -> if String.equal x y then go xs' ys' else Some x
    | _ -> None
  in
  go pa pb

let fc012 =
  let rec rule =
    {
      S.code = "FC012";
      title = "branch-ambiguity";
      severity = Diagnostic.Warning;
      explain =
        "distinct executions of one flow share an observable projection; a trace cannot \
         localize a bug below the merged branches";
      check =
        (fun model ->
          List.filter_map
            (fun (vf : M.vflow) ->
              if List.length vf.M.v_paths < 2 || M.observable_classes model vf = [] then None
              else
                let projected =
                  List.map
                    (fun (trace, states) -> (M.project model vf trace, states))
                    vf.M.v_paths
                in
                let distinct =
                  List.sort_uniq (List.compare String.compare) (List.map fst projected)
                in
                if List.length distinct >= List.length projected then None
                else
                  (* find one colliding pair for the message *)
                  let example =
                    List.find_map
                      (fun ((pa, sa), (pb, sb)) ->
                        if List.equal String.equal pa pb then divergence_state sa sb else None)
                      (S.pairs projected)
                  in
                  let where =
                    match example with
                    | Some s -> Printf.sprintf " (e.g. the branches diverging at state %s)" s
                    | None -> ""
                  in
                  Some
                    (S.diag rule ~flow:(flow_name vf) vf.M.v_span
                       "%d executions produce only %d distinct observable projection%s%s; bugs \
                        on the merged branches cannot be told apart"
                       (List.length projected) (List.length distinct)
                       (if List.length distinct = 1 then "" else "s")
                       where))
            model.M.valid);
    }
  in
  rule

let fc013 =
  let rec rule =
    {
      S.code = "FC013";
      title = "unobservable-flow";
      severity = Diagnostic.Warning;
      explain =
        "no message of the flow crosses a monitored channel of the topology; its executions \
         are invisible to any trace buffer";
      check =
        (fun model ->
          match model.M.topology with
          | None -> []
          | Some topo ->
              List.filter_map
                (fun (vf : M.vflow) ->
                  if
                    vf.M.v_flow.Flowtrace_core.Flow.messages <> []
                    && M.observable_classes model vf = []
                  then
                    Some
                      (S.diag rule ~flow:(flow_name vf) vf.M.v_span
                         "no message of this flow maps to a channel of topology %s; its \
                          executions cannot be observed at all"
                         topo.M.topo_name)
                  else None)
                model.M.valid);
    }
  in
  rule

let rules = [ fc010; fc011; fc012; fc013 ]
