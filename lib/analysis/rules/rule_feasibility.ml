(* FC020–FC023: width/packing feasibility and observability dead zones.

   FC020 proves — from Message.trace_width alone, before Select burns a
   fold over the candidate lattice — that no message fits the declared
   buffer budget, so Step 1 cannot seed a candidate set and selection must
   fail. FC021 is the opposite degenerate case (the whole pool fits, the
   selection problem is trivial). FC022/FC023 check the topology binding:
   channels no flow message rides (a monitor there records nothing) and
   messages no channel carries (no monitor can ever capture them). *)

open Flowtrace_core
module M = Scenario_model
module S = Rule.Scenario

let flow_name (vf : M.vflow) = vf.M.v_flow.Flow.name

let file_span (model : M.t) = Srcspan.make ~file:model.M.file ~line:1 ~col:1

(* Declaration span of message [name], searching the valid flows. *)
let msg_span (model : M.t) name =
  List.find_map
    (fun (vf : M.vflow) ->
      List.find_map
        (fun (n, sp) -> if String.equal n name then Some (vf, sp) else None)
        vf.M.v_msg_spans)
    model.M.valid

let fc020 =
  let rec rule =
    {
      S.code = "FC020";
      title = "infeasible-budget";
      severity = Diagnostic.Error;
      explain =
        "no message fits the declared trace-buffer budget; Step 1 cannot seed a candidate \
         set and selection must fail at any effort";
      check =
        (fun model ->
          match (model.M.budget, M.messages model) with
          | None, _ | _, [] -> []
          | Some budget, msgs ->
              if Packing.fits msgs ~buffer_width:budget then []
              else
                let narrowest =
                  List.fold_left
                    (fun acc m ->
                      if Message.trace_width m < Message.trace_width acc then m else acc)
                    (List.hd msgs) (List.tl msgs)
                in
                let span, flow =
                  match msg_span model narrowest.Message.name with
                  | Some (vf, sp) -> (sp, Some (flow_name vf))
                  | None -> (file_span model, None)
                in
                [
                  S.diag rule ?flow span
                    "no message fits the %d-bit budget (narrowest is %s at %d bits); \
                     selection cannot produce any candidate set"
                    budget narrowest.Message.name
                    (Message.trace_width narrowest);
                ]);
    }
  in
  rule

let fc021 =
  let rec rule =
    {
      S.code = "FC021";
      title = "trivial-budget";
      severity = Diagnostic.Info;
      explain =
        "the whole message pool fits the budget at once; selection is unnecessary and its \
         cost can be skipped";
      check =
        (fun model ->
          match (model.M.budget, M.messages model) with
          | None, _ | _, [] -> []
          | Some budget, msgs ->
              let total = Message.total_width msgs in
              if total <= budget then
                [
                  S.diag rule (file_span model)
                    "all %d messages together need %d bits, within the %d-bit budget; tracing \
                     everything is feasible and selection is unnecessary"
                    (List.length msgs) total budget;
                ]
              else []);
    }
  in
  rule

let fc022 =
  let rec rule =
    {
      S.code = "FC022";
      title = "dead-monitor";
      severity = Diagnostic.Info;
      explain =
        "a topology channel carries no message of the scenario; a monitor placed there \
         records nothing for these flows";
      check =
        (fun model ->
          match model.M.topology with
          | None -> []
          | Some topo ->
              if model.M.valid = [] then []
              else
                List.filter_map
                  (fun ((src, dst), riders) ->
                    if riders = [] then
                      Some
                        (S.diag rule (file_span model)
                           "channel %s->%s of topology %s carries no message of this scenario; \
                            a monitor there is a dead zone"
                           src dst topo.M.topo_name)
                    else None)
                  (M.channels_used model));
    }
  in
  rule

let fc023 =
  let rec rule =
    {
      S.code = "FC023";
      title = "unmonitorable-message";
      severity = Diagnostic.Warning;
      explain =
        "a message's endpoints map to no channel of the topology; no monitor can capture it \
         and selecting it buys no observability";
      check =
        (fun model ->
          match model.M.topology with
          | None -> []
          | Some topo ->
              List.concat_map
                (fun (vf : M.vflow) ->
                  List.filter_map
                    (fun (m : Message.t) ->
                      if M.observable model m then None
                      else
                        let span =
                          match
                            List.find_opt
                              (fun (n, _) -> String.equal n m.Message.name)
                              vf.M.v_msg_spans
                          with
                          | Some (_, sp) -> sp
                          | None -> vf.M.v_span
                        in
                        Some
                          (S.diag rule ~flow:(flow_name vf) span
                             "message %s (%s->%s) maps to no channel of topology %s; no \
                              monitor can capture it"
                             m.Message.name m.Message.src m.Message.dst topo.M.topo_name))
                    vf.M.v_flow.Flow.messages)
                model.M.valid);
    }
  in
  rule

let rules = [ fc020; fc021; fc022; fc023 ]
