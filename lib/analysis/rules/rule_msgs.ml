(* FL003/FL004: a message name declared in several flows of the scenario —
   an error when the declarations conflict (Interleave.make would refuse
   the scenario at runtime), informational when they agree (the paper's
   shared-message idiom, e.g. T2's siincu — it changes Def. 7 coverage
   accounting because one observation covers states in every sharing
   flow). FL005: distinct messages that a hardware monitor cannot tell
   apart because they cross the same interface with the same per-cycle
   width. *)

open Flowtrace_core

let describe (m : Message.t) =
  Printf.sprintf "%d bits %s->%s" m.Message.width m.Message.src m.Message.dst

(* First declaration of each message name per flow, in file order. *)
let cross_flow_decls (input : Rule.input) =
  List.concat_map
    (fun (rf : Spec_parser.raw_flow) ->
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun ((m : Message.t), sp) ->
          if Hashtbl.mem seen m.Message.name then None
          else begin
            Hashtbl.add seen m.Message.name ();
            Some (rf.Spec_parser.rf_name, m, sp)
          end)
        rf.Spec_parser.rf_messages)
    input.Rule.flows

let fl003 =
  let rec rule =
    {
      Rule.code = "FL003";
      title = "conflicting-message";
      severity = Diagnostic.Error;
      explain = "a message name is redeclared in another flow with different attributes; Interleave.make refuses such scenarios";
      check =
        (fun _ctx input ->
          Rule.duplicates (fun (_, (m : Message.t), _) -> m.Message.name) (cross_flow_decls input)
          |> List.filter_map (fun ((first_flow, first, _), (flow, dup, dsp)) ->
                 if Message.equal first dup then None
                 else
                   Some
                     (Rule.diag rule ~flow dsp
                        "message %S (%s) conflicts with its declaration in flow %s (%s)"
                        dup.Message.name (describe dup) first_flow (describe first))));
    }
  in
  rule

let fl004 =
  let rec rule =
    {
      Rule.code = "FL004";
      title = "shared-message";
      severity = Diagnostic.Info;
      explain = "a message is shared between flows; one observation covers states in every sharing flow (Def. 7 coverage accounting)";
      check =
        (fun _ctx input ->
          Rule.duplicates (fun (_, (m : Message.t), _) -> m.Message.name) (cross_flow_decls input)
          |> List.filter_map (fun ((first_flow, first, _), (flow, dup, dsp)) ->
                 if Message.equal first dup then
                   Some
                     (Rule.diag rule ~flow dsp "message %S is shared with flow %s" dup.Message.name
                        first_flow)
                 else None));
    }
  in
  rule

let fl005 =
  let rec rule =
    {
      Rule.code = "FL005";
      title = "indistinguishable-messages";
      severity = Diagnostic.Info;
      explain = "distinct messages cross the same IP interface with the same per-cycle width; a monitor needs tagging to tell them apart";
      check =
        (fun _ctx input ->
          (* distinct message names of the scenario, keyed by observable
             interface signature; unknown endpoints are FL011's business *)
          let by_name = Hashtbl.create 16 in
          List.iter
            (fun (_, (m : Message.t), sp) ->
              if not (Hashtbl.mem by_name m.Message.name) then Hashtbl.add by_name m.Message.name (m, sp))
            (cross_flow_decls input);
          let groups = Hashtbl.create 16 in
          let order = ref [] in
          Hashtbl.iter
            (fun _name ((m : Message.t), (sp : Srcspan.t)) ->
              if m.Message.src <> "?" && m.Message.dst <> "?" then begin
                let key = Printf.sprintf "%s->%s/%d" m.Message.src m.Message.dst (Message.trace_width m) in
                if not (Hashtbl.mem groups key) then order := key :: !order;
                Hashtbl.replace groups key ((m, sp) :: (Option.value ~default:[] (Hashtbl.find_opt groups key)))
              end)
            by_name;
          List.rev !order
          |> List.filter_map (fun key ->
                 let members = List.sort (fun (_, a) (_, b) -> Srcspan.compare a b) (Hashtbl.find groups key) in
                 match members with
                 | ((first : Message.t), _) :: (_ :: _ as rest) ->
                     let names = List.map (fun ((m : Message.t), _) -> m.Message.name) members in
                     let _, report_span = List.hd (List.rev rest) in
                     Some
                       (Rule.diag rule report_span
                          "messages %s are indistinguishable under tracing: all cross %s->%s with %d-bit per-cycle width"
                          (String.concat ", " names) first.Message.src first.Message.dst
                          (Message.trace_width first))
                 | _ -> None));
    }
  in
  rule

let rules = [ fl003; fl004; fl005 ]
