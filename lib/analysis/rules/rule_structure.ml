(* FL008: transitions referencing undeclared states or messages.
   FL009: dead or unreachable structure — missing init/stop states,
   stop∩atomic, cycles, transitions leaving a stop state, states
   unreachable from an init state or unable to reach a stop state.
   FL010: declared messages that never label a transition.

   FL008/FL009 mirror Flow.validate but run on the lenient raw parse, so
   they report with the offending line instead of dying in Flow.make;
   FL010 is beyond Flow.validate (a dead declaration is legal yet can
   never be observed, so selecting it would waste buffer bits). *)

open Flowtrace_core

module SSet = Set.Make (String)

let fl008 =
  let rec rule =
    {
      Rule.code = "FL008";
      title = "undeclared-reference";
      severity = Diagnostic.Error;
      explain = "a transition references a state or message the flow never declares";
      check =
        (fun _ctx input ->
          List.concat_map
            (fun (rf : Spec_parser.raw_flow) ->
              let states = Rule.declared_states rf in
              let msgs = Rule.declared_messages rf in
              List.concat_map
                (fun ((tr : Flow.transition), sp) ->
                  let missing_state s what =
                    if Hashtbl.mem states s then None
                    else
                      Some
                        (Rule.diag rule ~flow:rf.Spec_parser.rf_name sp
                           "transition %s undeclared state %S" what s)
                  in
                  List.filter_map Fun.id
                    [
                      missing_state tr.Flow.t_src "leaves";
                      missing_state tr.Flow.t_dst "enters";
                      (if Hashtbl.mem msgs tr.Flow.t_msg then None
                       else
                         Some
                           (Rule.diag rule ~flow:rf.Spec_parser.rf_name sp
                              "transition labeled with undeclared message %S" tr.Flow.t_msg));
                    ])
                rf.Spec_parser.rf_transitions)
            input.Rule.flows);
    }
  in
  rule

(* Reachability over (src, dst) edges from a seed set. *)
let reach starts edges =
  let adj = Hashtbl.create 16 in
  List.iter (fun (a, b) -> Hashtbl.replace adj a (b :: Option.value ~default:[] (Hashtbl.find_opt adj a))) edges;
  let rec go seen = function
    | [] -> seen
    | s :: rest ->
        if SSet.mem s seen then go seen rest
        else go (SSet.add s seen) (Option.value ~default:[] (Hashtbl.find_opt adj s) @ rest)
  in
  go SSet.empty starts

let has_cycle states edges =
  let indeg = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace indeg s 0) states;
  List.iter
    (fun (_, b) ->
      match Hashtbl.find_opt indeg b with Some d -> Hashtbl.replace indeg b (d + 1) | None -> ())
    edges;
  let queue = Queue.create () in
  Hashtbl.iter (fun s d -> if d = 0 then Queue.add s queue) indeg;
  let removed = ref 0 in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    incr removed;
    List.iter
      (fun (a, b) ->
        if String.equal a s then begin
          let d = Hashtbl.find indeg b - 1 in
          Hashtbl.replace indeg b d;
          if d = 0 then Queue.add b queue
        end)
      edges
  done;
  !removed <> List.length states

let fl009 =
  let rec rule =
    {
      Rule.code = "FL009";
      title = "dead-structure";
      severity = Diagnostic.Error;
      explain = "missing init/stop states, cycles, transitions leaving a stop state, or states that cannot appear on any complete execution";
      check =
        (fun _ctx input ->
          List.concat_map
            (fun (rf : Spec_parser.raw_flow) ->
              let flow = rf.Spec_parser.rf_name in
              (* first declaration of each name wins, as in Flow lookups *)
              let seen = Hashtbl.create 8 in
              let states =
                List.filter
                  (fun (st : Spec_parser.raw_state) ->
                    if Hashtbl.mem seen st.Spec_parser.rs_name then false
                    else begin
                      Hashtbl.add seen st.Spec_parser.rs_name ();
                      true
                    end)
                  rf.Spec_parser.rf_states
              in
              let names = List.map (fun (st : Spec_parser.raw_state) -> st.Spec_parser.rs_name) states in
              let name_set = SSet.of_list names in
              let initial = List.filter (fun st -> st.Spec_parser.rs_initial) states in
              let stop = List.filter (fun st -> st.Spec_parser.rs_stop) states in
              let edges =
                List.filter_map
                  (fun ((tr : Flow.transition), _) ->
                    if SSet.mem tr.Flow.t_src name_set && SSet.mem tr.Flow.t_dst name_set then
                      Some (tr.Flow.t_src, tr.Flow.t_dst)
                    else None)
                  rf.Spec_parser.rf_transitions
              in
              let out = ref [] in
              let emit span fmt =
                Printf.ksprintf (fun m -> out := Rule.diag rule ~flow span "%s" m :: !out) fmt
              in
              if states <> [] && initial = [] then emit rf.Spec_parser.rf_span "flow %s declares no init state" flow;
              if states <> [] && stop = [] then emit rf.Spec_parser.rf_span "flow %s declares no stop state" flow;
              List.iter
                (fun (st : Spec_parser.raw_state) ->
                  if st.Spec_parser.rs_stop && st.Spec_parser.rs_atomic then
                    emit st.Spec_parser.rs_span
                      "state %s is both stop and atomic (Sp and Atom must be disjoint)"
                      st.Spec_parser.rs_name)
                states;
              let stop_names = SSet.of_list (List.map (fun st -> st.Spec_parser.rs_name) stop) in
              List.iter
                (fun ((tr : Flow.transition), sp) ->
                  if SSet.mem tr.Flow.t_src stop_names then
                    emit sp "transition leaves stop state %s" tr.Flow.t_src)
                rf.Spec_parser.rf_transitions;
              if has_cycle names edges then
                emit rf.Spec_parser.rf_span "flow %s is not a DAG (its transition graph has a cycle)" flow
              else begin
                (* reachability is only meaningful on an acyclic graph
                   with entry/exit points *)
                let fwd = reach (List.map (fun st -> st.Spec_parser.rs_name) initial) edges in
                let bwd =
                  reach (SSet.elements stop_names) (List.map (fun (a, b) -> (b, a)) edges)
                in
                List.iter
                  (fun (st : Spec_parser.raw_state) ->
                    let n = st.Spec_parser.rs_name in
                    if initial <> [] && not (SSet.mem n fwd) then
                      emit st.Spec_parser.rs_span "state %s is unreachable from any init state" n;
                    if stop <> [] && not (SSet.mem n bwd) then
                      emit st.Spec_parser.rs_span "state %s cannot reach a stop state" n)
                  states
              end;
              List.rev !out)
            input.Rule.flows);
    }
  in
  rule

let fl010 =
  let rec rule =
    {
      Rule.code = "FL010";
      title = "unused-message";
      severity = Diagnostic.Warning;
      explain = "a declared message never labels a transition; it can never be observed, so selecting it wastes trace-buffer bits";
      check =
        (fun _ctx input ->
          List.concat_map
            (fun (rf : Spec_parser.raw_flow) ->
              let used =
                SSet.of_list
                  (List.map (fun ((tr : Flow.transition), _) -> tr.Flow.t_msg) rf.Spec_parser.rf_transitions)
              in
              List.filter_map
                (fun ((m : Message.t), sp) ->
                  if SSet.mem m.Message.name used then None
                  else
                    Some
                      (Rule.diag rule ~flow:rf.Spec_parser.rf_name sp
                         "message %s is declared but never labels a transition" m.Message.name))
                rf.Spec_parser.rf_messages)
            input.Rule.flows);
    }
  in
  rule

let rules = [ fl008; fl009; fl010 ]
