(** The whole-scenario model behind [flowtrace check].

    Where {!Rule.input} hands each lint rule the raw, possibly-invalid
    declarations of one file, the flowcheck rules need the opposite: every
    flow validated through {!Flow.make} and path-enumerated once, bound to
    the optional IP topology and trace-buffer budget the scenario targets.
    Flows that fail validation are kept aside (the driver reports them as
    [FC001]) so the valid remainder is still analyzed.

    The central object is the {e observable projection}: a message is
    observable when the topology has a channel matching its endpoints (or
    unconditionally, without a topology), and a flow's {!language} is the
    set of its execution traces projected onto the observable messages.
    Cross-flow ambiguity, branch ambiguity and loss fragility are all
    statements about these languages. *)

open Flowtrace_core

(** A platform interconnect: named IP set and directed point-to-point
    channels, the places a hardware trace monitor can sit. *)
type topology = {
  topo_name : string;
  topo_ips : string list;
  topo_channels : (string * string) list;  (** (src, dst) pairs *)
}

(** One validated flow with its source position, per-message declaration
    spans, and path enumeration ([(trace, state path)] pairs from
    {!Flow.paths}; [v_truncated] when the enumeration hit the limit). *)
type vflow = {
  v_flow : Flow.t;
  v_span : Srcspan.t;
  v_msg_spans : (string * Srcspan.t) list;
  v_paths : (string list * string list) list;
  v_truncated : bool;
}

type t = {
  file : string;
  valid : vflow list;
  invalid : (string * Srcspan.t * string list) list;
      (** flows {!Flow.make} rejected: name, span, violations *)
  topology : topology option;
  budget : int option;  (** trace-buffer width in bits, when declared *)
}

(** Paths enumerated per flow before the model degrades ([20_000]) —
    deliberately far below {!Flow.paths}'s default so [flowtrace check]
    stays fast on adversarial inputs. *)
val default_path_limit : int

(** [of_raw ~file raws] validates each raw flow and builds the model. *)
val of_raw :
  ?path_limit:int ->
  ?topology:topology ->
  ?budget:int ->
  file:string ->
  Spec_parser.raw_flow list ->
  t

(** [of_flows ~file flows] models already-validated flows (spans are
    {!Srcspan.none}) — the entry point for programmatic scenarios like
    [lib/soc]'s admission gate. *)
val of_flows :
  ?path_limit:int -> ?topology:topology -> ?budget:int -> file:string -> Flow.t list -> t

(** Did any flow's path enumeration truncate? The analysis is then
    degraded: absence of findings is not a clean bill. *)
val truncated : t -> bool

(** Deduplicated (by name) message pool across the valid flows. *)
val messages : t -> Message.t list

(** Is [m] observable — can any monitor of the topology capture it?
    Always [true] without a topology. *)
val observable : t -> Message.t -> bool

(** The observable message names of one flow. *)
val observable_classes : t -> vflow -> string list

(** [project t vf trace] filters [trace] down to [vf]'s observable
    messages. *)
val project : t -> vflow -> string list -> string list

(** [language t vf] is the set (sorted, deduplicated) of [vf]'s traces
    under the observable projection; [?without] additionally drops one
    message class — the loss-sensitivity probe. *)
val language : ?without:string -> t -> vflow -> string list list

(** Set equality of two languages (both in {!language}'s normal form). *)
val lang_equal : string list list -> string list list -> bool

(** [is_prefix xs ys] — is [xs] a (possibly equal) prefix of [ys]? *)
val is_prefix : string list -> string list -> bool

(** [subsumed_by a b] — is every trace of [a] a prefix of some trace of
    [b]? Under {!Localize}'s [Prefix] semantics an observation from a
    subsumed flow can never exclude the subsuming one. *)
val subsumed_by : string list list -> string list list -> bool

(** Does the language contain a trace with at least one message? *)
val has_nonempty : string list list -> bool

(** Per topology channel, the message names riding it across all valid
    flows (empty = a dead monitor); [[]] without a topology. *)
val channels_used : t -> ((string * string) * string list) list
