(** The lint driver: rule registry and entry points.

    [flowlint] runs every registered rule (codes [FL001]…[FL015]) over a
    leniently parsed specification and returns diagnostics sorted by
    source position. Text that does not even tokenize is reported as a
    single {!parse_error_code} diagnostic instead of an exception, so the
    CLI can lint a batch of files and keep going. *)

(** All registered rules, sorted by code. *)
val rules : Rule.t list

(** [find_rule code] looks up a rule by its [FLnnn] code. *)
val find_rule : string -> Rule.t option

(** Pseudo-code for token-level parse failures: ["FL000"]. *)
val parse_error_code : string

(** [run ?context input] applies every rule to [input] and returns the
    findings in {!Diagnostic.sort_report} order. *)
val run : ?context:Rule.context -> Rule.input -> Diagnostic.t list

(** [lint_string ?context ?file text] leniently parses [text] and runs
    the rules. A {!Spec_parser.Parse_error} becomes one [FL000] error
    diagnostic. *)
val lint_string : ?context:Rule.context -> ?file:string -> string -> Diagnostic.t list

(** [lint_file ?context path] reads and lints a file; unreadable files
    also surface as an [FL000] diagnostic. *)
val lint_file : ?context:Rule.context -> string -> Diagnostic.t list

(** [catalog ()] renders the rule catalog (code, severity, title,
    explanation) — the [--list-rules] output, also embedded in the
    README. *)
val catalog : unit -> string
