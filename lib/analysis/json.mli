(** A minimal JSON tree, printer and parser.

    Just enough machinery for the diagnostics engine to emit
    machine-readable reports and read them back (the [--json] round-trip
    the lint tests exercise) without pulling in an external dependency.
    The parser accepts standard JSON (RFC 8259) with the usual escape
    sequences; [\uXXXX] escapes are decoded to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(** [to_string v] renders compact single-line JSON. *)
val to_string : t -> string

(** [to_string_pretty v] renders with two-space indentation. *)
val to_string_pretty : t -> string

(** [parse s] parses one JSON value (surrounding whitespace allowed). *)
val parse : string -> (t, string) result

(** [member key v] looks up [key] in an object. *)
val member : string -> t -> t option

(** Accessors returning [None] on a type mismatch. *)
val to_int_opt : t -> int option

val to_string_opt : t -> string option
val to_list_opt : t -> t list option
