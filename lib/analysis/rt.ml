(* Stable diagnostic codes for the lib/runtime supervision layer. Kept
   here, next to the lint rules, so every code the tool can emit lives in
   one library and renders through the same Diagnostic pipeline. *)

let table =
  [
    ("RT001", Diagnostic.Error, "journal unreadable");
    ("RT002", Diagnostic.Error, "not a flowtrace journal");
    ("RT003", Diagnostic.Error, "unsupported journal version");
    ("RT004", Diagnostic.Error, "journal does not match this run");
    ("RT005", Diagnostic.Error, "corrupt journal record");
    ("RT006", Diagnostic.Warning, "journal tail truncated; valid prefix recovered");
    ("RT007", Diagnostic.Error, "journal integrity check failed");
    ("RT008", Diagnostic.Warning, "corrupt session file quarantined");
    ("RT009", Diagnostic.Info, "stale temp file swept");
    ("RT010", Diagnostic.Info, "recovered journal compacted");
    ("RT011", Diagnostic.Error, "state directory unreadable");
  ]

let severity code =
  List.find_map (fun (c, s, _) -> if String.equal c code then Some s else None) table

let summary code =
  List.find_map (fun (c, _, s) -> if String.equal c code then Some s else None) table

let codes = List.map (fun (c, _, _) -> c) table

let v code span fmt =
  match severity code with
  | None -> invalid_arg (Printf.sprintf "Rt.v: unknown runtime diagnostic code %s" code)
  | Some severity ->
      Printf.ksprintf (fun message -> Diagnostic.make ~code ~severity span message) fmt

let catalog () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (code, sev, summary) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-8s %s\n" code (Diagnostic.severity_to_string sev) summary))
    table;
  Buffer.contents buf
