open Flowtrace_core

type severity = Error | Warning | Info

type t = {
  code : string;
  severity : severity;
  span : Srcspan.t;
  flow : string option;
  message : string;
}

let make ~code ~severity ?flow span message = { code; severity; span; flow; message }

let severity_to_string = function Error -> "error" | Warning -> "warning" | Info -> "info"

let severity_of_string = function
  | "error" -> Some Error
  | "warning" -> Some Warning
  | "info" -> Some Info
  | _ -> None

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare_severity a b = Int.compare (severity_rank a) (severity_rank b)

let compare a b =
  match Srcspan.compare a.span b.span with
  | 0 -> ( match String.compare a.code b.code with 0 -> String.compare a.message b.message | c -> c)
  | c -> c

let equal a b =
  String.equal a.code b.code && a.severity = b.severity && Srcspan.equal a.span b.span
  && Option.equal String.equal a.flow b.flow
  && String.equal a.message b.message

(* Report order: position, then severity (most severe first), then code,
   then message — shared by every namespace (FL/FC/RT) so text and --json
   output are deterministic and diffable across runs. *)
let compare_report a b =
  match Srcspan.compare a.span b.span with
  | 0 -> (
      match compare_severity a.severity b.severity with
      | 0 -> (
          match String.compare a.code b.code with
          | 0 -> String.compare a.message b.message
          | c -> c)
      | c -> c)
  | c -> c

let sort_report ds = List.sort_uniq compare_report ds

let promote_warnings d = if d.severity = Warning then { d with severity = Error } else d

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)
let count_errors ds = count Error ds
let count_warnings ds = count Warning ds
let count_infos ds = count Info ds

let summary ds =
  if ds = [] then "clean"
  else
    let part n singular plural = if n = 1 then "1 " ^ singular else Printf.sprintf "%d %s" n plural in
    let parts =
      List.filter_map
        (fun (n, s, p) -> if n > 0 then Some (part n s p) else None)
        [
          (count_errors ds, "error", "errors");
          (count_warnings ds, "warning", "warnings");
          (count_infos ds, "note", "notes");
        ]
    in
    String.concat ", " parts

let render d =
  let flow = match d.flow with Some f -> Printf.sprintf " (flow %s)" f | None -> "" in
  Printf.sprintf "%s: %s[%s]: %s%s" (Srcspan.to_string d.span) (severity_to_string d.severity)
    d.code d.message flow

let render_all ds = String.concat "" (List.map (fun d -> render d ^ "\n") ds)

let to_json d =
  let base =
    [
      ("code", Json.String d.code);
      ("severity", Json.String (severity_to_string d.severity));
      ("file", Json.String d.span.Srcspan.file);
      ("line", Json.Int d.span.Srcspan.line);
      ("col", Json.Int d.span.Srcspan.col);
    ]
  in
  let flow = match d.flow with Some f -> [ ("flow", Json.String f) ] | None -> [] in
  Json.Obj (base @ flow @ [ ("message", Json.String d.message) ])

let of_json j =
  let str key = Option.bind (Json.member key j) Json.to_string_opt in
  let int key = Option.bind (Json.member key j) Json.to_int_opt in
  match (str "code", Option.bind (str "severity") severity_of_string, str "file", int "line", int "col", str "message") with
  | Some code, Some severity, Some file, Some line, Some col, Some message ->
      Stdlib.Ok { code; severity; span = Srcspan.make ~file ~line ~col; flow = str "flow"; message }
  | _ -> Stdlib.Error ("diagnostic object missing a required field: " ^ Json.to_string j)

let render_json ds =
  Json.to_string_pretty
    (Json.Obj
       [
         ("diagnostics", Json.List (List.map to_json ds));
         ( "summary",
           Json.Obj
             [
               ("errors", Json.Int (count_errors ds));
               ("warnings", Json.Int (count_warnings ds));
               ("infos", Json.Int (count_infos ds));
             ] );
       ])

let parse_json s =
  match Json.parse s with
  | Stdlib.Error m -> Stdlib.Error m
  | Stdlib.Ok j -> (
      match Option.bind (Json.member "diagnostics" j) Json.to_list_opt with
      | None -> Stdlib.Error "report has no diagnostics array"
      | Some items ->
          let rec go acc = function
            | [] -> Stdlib.Ok (List.rev acc)
            | item :: rest -> (
                match of_json item with
                | Stdlib.Ok d -> go (d :: acc) rest
                | Stdlib.Error m -> Stdlib.Error m)
          in
          go [] items)

(* The shared exit-code convention (see the .mli): found errors are a firm
   verdict even when truncated, but a degraded error-free run must not be
   mistaken for a clean one. *)
let exit_code ?(degraded = false) ds =
  if count_errors ds > 0 then 1 else if degraded then 3 else 0

let pp ppf d = Format.pp_print_string ppf (render d)
