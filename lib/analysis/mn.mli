(** Mining diagnostics: stable MN0xx codes for the spec-inference layer.

    The [lib/mining] flow miner reports what it had to discard — and why a
    mined specification may be incomplete — through the same positioned
    {!Diagnostic.t} pipeline as the spec lint, one stable code per failure
    class, so [flowtrace mine] obeys the unified FL/FC/RT/TR exit-code
    convention ({!Diagnostic.exit_code}).

    Codes:
    - [MN001] ({e error}) — the trace yields no episodes; nothing to mine
    - [MN002] ({e error}) — a mined flow failed {!Flowtrace_core.Flow.make}
      validation and was discarded (should not happen; defensive)
    - [MN010] ({e warning}) — a whole flow was dropped: none of its paths
      met the support threshold
    - [MN011] ({e warning}) — a candidate path was dropped as noise: its
      support is below threshold and it absorbs into no kept path
    - [MN012] ({e info}) — a kept path is a proper prefix of another kept
      path; truncated episodes are the usual cause, and the mined DAG
      carries a nondeterministic stop split (flowlint flags it as FL007)
    - [MN013] ({e info}) — a message is absent from the catalog; its width
      was defaulted
    - [MN014] ({e info}) — the observed packet endpoints disagree with the
      catalog's declaration (the catalog wins)
    - [MN090] ({e info}) — degraded marker: evidence was discarded
      ([MN010]/[MN011]), so the mined spec may be incomplete and the run
      exits 3 *)

(** [v code span ?flow fmt] builds an MN diagnostic; the severity is the
    catalog's for [code]. Raises [Invalid_argument] on a code outside the
    catalog. *)
val v :
  string ->
  Flowtrace_core.Srcspan.t ->
  ?flow:string ->
  ('a, unit, string, Diagnostic.t) format4 ->
  'a

(** [severity code] is the catalog severity of [code], if known. *)
val severity : string -> Diagnostic.severity option

(** [summary code] is the catalog's one-line summary of [code], if
    known. *)
val summary : string -> string option

(** [codes] lists the catalog codes in order. *)
val codes : string list

(** [catalog ()] renders the code table (code, severity, summary), one
    line per code — the MN counterpart of [Lint.catalog]. *)
val catalog : unit -> string
