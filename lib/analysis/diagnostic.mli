(** Diagnostics: positioned findings with stable rule codes.

    The reusable core of the [flowtrace] static analyses: a diagnostic
    carries a severity, a stable rule code, the source span of the
    offending element (threaded from {!Spec_parser}), the flow it
    concerns, and a human-readable message. Renderers produce
    compiler-style text ([file:line:col: severity[CODE]: message]) and a
    JSON report; the JSON parser inverts the renderer, so reports
    round-trip.

    {1 Code namespaces}

    Every diagnostic-emitting subsystem draws from one shared pool of
    stable codes, split by namespace prefix:
    - [FL0xx] — per-flow lint rules ([flowtrace lint], {!Lint});
    - [FC0xx] — whole-scenario debuggability checks ([flowtrace check],
      {!Check});
    - [RT0xx] — runtime/daemon conditions ({!Rt});
    - [TR0xx] — trace-ingest conditions.

    {1 Exit-code convention}

    Every diagnostic-emitting command ([lint], [check], and any future
    namespace) maps its report to a process exit status the same way:
    - [0] — clean: no error-severity diagnostics (warnings and notes may
      be present);
    - [1] — at least one error-severity diagnostic, including warnings
      promoted by [--werror] ({!promote_warnings});
    - [3] — degraded: the analysis could not complete (truncated path
      enumeration, expired deadline) and found no errors; the absence of
      findings must not be read as a clean bill.

    {!exit_code} implements the mapping; [2] is left to cmdliner for CLI
    usage errors. *)

open Flowtrace_core

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable rule code, e.g. ["FL004"] *)
  severity : severity;
  span : Srcspan.t;  (** position of the offending element *)
  flow : string option;  (** name of the flow concerned, if any *)
  message : string;
}

(** [make ~code ~severity ?flow span message] builds a diagnostic. *)
val make : code:string -> severity:severity -> ?flow:string -> Srcspan.t -> string -> t

val severity_to_string : severity -> string

(** [severity_of_string s] inverts [severity_to_string]. *)
val severity_of_string : string -> severity option

(** Order severities most severe first ([Error < Warning < Info]). *)
val compare_severity : severity -> severity -> int

(** Order diagnostics by span, then code, then message. *)
val compare : t -> t -> int

(** Report order, shared by every namespace: span, then severity (most
    severe first), then code, then message. Unlike {!compare} it ranks
    severity so an error on a line precedes the line's notes. *)
val compare_report : t -> t -> int

(** [sort_report ds] sorts by {!compare_report} and drops exact
    duplicates — the canonical order of every rendered report, text or
    [--json], so output is deterministic across runs and rule evaluation
    order. *)
val sort_report : t list -> t list

val equal : t -> t -> bool

(** [promote_warnings d] turns [Warning] into [Error] ([--werror]);
    [Info] is left alone. *)
val promote_warnings : t -> t

(** [count_errors ds] and friends tally by severity. *)
val count_errors : t list -> int

val count_warnings : t list -> int
val count_infos : t list -> int

(** [summary ds] is a one-line tally like ["2 errors, 1 warning, 3 notes"];
    ["clean"] when empty. *)
val summary : t list -> string

(** [render d] is the compiler-style one-line rendering. *)
val render : t -> string

(** [render_all ds] renders one diagnostic per line (trailing newline,
    empty string for no diagnostics). *)
val render_all : t list -> string

val to_json : t -> Json.t

(** [of_json j] inverts [to_json]. *)
val of_json : Json.t -> (t, string) result

(** [render_json ds] is the full JSON report: an object with a
    [diagnostics] array and a [summary] object of per-severity counts. *)
val render_json : t list -> string

(** [parse_json s] inverts [render_json]. *)
val parse_json : string -> (t list, string) result

(** [exit_code ?degraded ds] maps a report to the shared exit-code
    convention above: [1] when [ds] contains an error-severity
    diagnostic (apply {!promote_warnings} first for [--werror]), else
    [3] when [degraded], else [0]. *)
val exit_code : ?degraded:bool -> t list -> int

val pp : Format.formatter -> t -> unit
