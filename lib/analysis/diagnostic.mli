(** Diagnostics: positioned findings with stable rule codes.

    The reusable core of the [flowtrace lint] static analysis: a
    diagnostic carries a severity, a stable rule code ([FL001]…), the
    source span of the offending element (threaded from {!Spec_parser}),
    the flow it concerns, and a human-readable message. Renderers produce
    compiler-style text ([file:line:col: severity[CODE]: message]) and a
    JSON report; the JSON parser inverts the renderer, so reports
    round-trip. *)

open Flowtrace_core

type severity = Error | Warning | Info

type t = {
  code : string;  (** stable rule code, e.g. ["FL004"] *)
  severity : severity;
  span : Srcspan.t;  (** position of the offending element *)
  flow : string option;  (** name of the flow concerned, if any *)
  message : string;
}

(** [make ~code ~severity ?flow span message] builds a diagnostic. *)
val make : code:string -> severity:severity -> ?flow:string -> Srcspan.t -> string -> t

val severity_to_string : severity -> string

(** [severity_of_string s] inverts [severity_to_string]. *)
val severity_of_string : string -> severity option

(** Order severities most severe first ([Error < Warning < Info]). *)
val compare_severity : severity -> severity -> int

(** Order diagnostics by span, then code, then message. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** [promote_warnings d] turns [Warning] into [Error] ([--werror]);
    [Info] is left alone. *)
val promote_warnings : t -> t

(** [count_errors ds] and friends tally by severity. *)
val count_errors : t list -> int

val count_warnings : t list -> int
val count_infos : t list -> int

(** [summary ds] is a one-line tally like ["2 errors, 1 warning, 3 notes"];
    ["clean"] when empty. *)
val summary : t list -> string

(** [render d] is the compiler-style one-line rendering. *)
val render : t -> string

(** [render_all ds] renders one diagnostic per line (trailing newline,
    empty string for no diagnostics). *)
val render_all : t list -> string

val to_json : t -> Json.t

(** [of_json j] inverts [to_json]. *)
val of_json : Json.t -> (t, string) result

(** [render_json ds] is the full JSON report: an object with a
    [diagnostics] array and a [summary] object of per-severity counts. *)
val render_json : t list -> string

(** [parse_json s] inverts [render_json]. *)
val parse_json : string -> (t list, string) result

val pp : Format.formatter -> t -> unit
