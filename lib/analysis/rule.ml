open Flowtrace_core

type context = { known_ips : string list option; buffer_widths : int list; max_states : int }

let default_context = { known_ips = None; buffer_widths = [ 8; 16; 32; 64; 128 ]; max_states = 2_000_000 }

type input = { file : string; flows : Spec_parser.raw_flow list }

type t = {
  code : string;
  title : string;
  severity : Diagnostic.severity;
  explain : string;
  check : context -> input -> Diagnostic.t list;
}

let diag rule ?flow span fmt =
  Printf.ksprintf
    (fun message -> Diagnostic.make ~code:rule.code ~severity:rule.severity ?flow span message)
    fmt

let declared_states (f : Spec_parser.raw_flow) =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (st : Spec_parser.raw_state) -> Hashtbl.replace tbl st.Spec_parser.rs_name ()) f.Spec_parser.rf_states;
  tbl

let declared_messages (f : Spec_parser.raw_flow) =
  let tbl = Hashtbl.create 16 in
  (* keep the first declaration; duplicates are rule FL002's business *)
  List.iter
    (fun ((m : Message.t), _) ->
      if not (Hashtbl.mem tbl m.Message.name) then Hashtbl.add tbl m.Message.name m)
    f.Spec_parser.rf_messages;
  tbl

let duplicates key items =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun item ->
      let k = key item in
      match Hashtbl.find_opt seen k with
      | Some first -> Some (first, item)
      | None ->
          Hashtbl.add seen k item;
          None)
    items

(* Scenario rules (the FC namespace): same record shape as the lint rules
   but checked against the validated whole-scenario model instead of one
   file's raw declarations. *)
module Scenario = struct
  type rule = {
    code : string;
    title : string;
    severity : Diagnostic.severity;
    explain : string;
    check : Scenario_model.t -> Diagnostic.t list;
  }

  let diag rule ?flow span fmt =
    Printf.ksprintf
      (fun message -> Diagnostic.make ~code:rule.code ~severity:rule.severity ?flow span message)
      fmt

  (* All unordered pairs of a list, first-occurrence order. *)
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
end
