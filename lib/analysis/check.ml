open Flowtrace_core

let parse_error_code = "FC000"

(* Driver-emitted codes: conditions about the scenario itself, not any one
   rule's analysis. Same (code, severity, title, summary) table idiom as
   Rt. *)
let driver_codes =
  [
    ("FC000", Diagnostic.Error, "parse-error", "the spec file is unreadable or does not parse");
    ( "FC001",
      Diagnostic.Error,
      "invalid-flow",
      "a flow fails structural validation (Flow.make); it is excluded from the scenario analyses"
    );
    ("FC002", Diagnostic.Error, "empty-scenario", "the specification declares no flows; there is nothing to check");
    ( "FC090",
      Diagnostic.Info,
      "analysis-truncated",
      "path enumeration hit its limit; ambiguity verdicts are incomplete and the run is degraded \
       (exit 3)" );
  ]

let degraded_code = "FC090"

let rules =
  List.sort
    (fun (a : Rule.Scenario.rule) b -> String.compare a.Rule.Scenario.code b.Rule.Scenario.code)
    (Rule_ambiguity.rules @ Rule_feasibility.rules @ Rule_loss.rules)

let find_rule code =
  List.find_opt (fun (r : Rule.Scenario.rule) -> String.equal r.Rule.Scenario.code code) rules

let driver_diag code span fmt =
  match List.find_opt (fun (c, _, _, _) -> String.equal c code) driver_codes with
  | None -> invalid_arg (Printf.sprintf "Check.driver_diag: unknown code %s" code)
  | Some (_, severity, _, _) ->
      Printf.ksprintf (fun message -> Diagnostic.make ~code ~severity span message) fmt

let run (model : Scenario_model.t) =
  let file_span = Srcspan.make ~file:model.Scenario_model.file ~line:1 ~col:1 in
  let driver =
    if model.Scenario_model.valid = [] && model.Scenario_model.invalid = [] then
      [ driver_diag "FC002" file_span "specification declares no flows; nothing to check" ]
    else
      List.map
        (fun (name, span, errs) ->
          Diagnostic.make ~code:"FC001" ~severity:Diagnostic.Error ~flow:name span
            (Printf.sprintf "flow fails validation and is excluded from scenario analyses: %s"
               (String.concat "; " errs)))
        model.Scenario_model.invalid
      @ List.filter_map
          (fun (vf : Scenario_model.vflow) ->
            if vf.Scenario_model.v_truncated then
              Some
                (driver_diag degraded_code vf.Scenario_model.v_span
                   "path enumeration for flow %s truncated; ambiguity verdicts are incomplete"
                   vf.Scenario_model.v_flow.Flow.name)
            else None)
          model.Scenario_model.valid
  in
  Diagnostic.sort_report
    (driver
    @ List.concat_map (fun (r : Rule.Scenario.rule) -> r.Rule.Scenario.check model) rules)

let degraded diags =
  List.exists (fun (d : Diagnostic.t) -> String.equal d.Diagnostic.code degraded_code) diags

let check_raw ?path_limit ?topology ?budget ~file raws =
  run (Scenario_model.of_raw ?path_limit ?topology ?budget ~file raws)

let parse_error_diag file (e : Spec_parser.error) =
  Diagnostic.make ~code:parse_error_code ~severity:Diagnostic.Error
    (Srcspan.make ~file ~line:e.Spec_parser.line ~col:1)
    e.Spec_parser.message

let check_string ?path_limit ?topology ?budget ?(file = "<string>") text =
  match Spec_parser.parse_raw ~file text with
  | raws -> check_raw ?path_limit ?topology ?budget ~file raws
  | exception Spec_parser.Parse_error e -> [ parse_error_diag file e ]

let check_file ?path_limit ?topology ?budget path =
  match Spec_parser.parse_raw_file path with
  | raws -> check_raw ?path_limit ?topology ?budget ~file:path raws
  | exception Spec_parser.Parse_error e -> [ parse_error_diag path e ]
  | exception Sys_error m ->
      [ Diagnostic.make ~code:parse_error_code ~severity:Diagnostic.Error (Srcspan.none path) m ]

let catalog () =
  let entries =
    List.map (fun (c, s, t, e) -> (c, s, t, e)) driver_codes
    @ List.map
        (fun (r : Rule.Scenario.rule) ->
          (r.Rule.Scenario.code, r.Rule.Scenario.severity, r.Rule.Scenario.title, r.Rule.Scenario.explain))
        rules
  in
  let entries = List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) entries in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (code, sev, title, explain) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-8s %-28s %s\n" code (Diagnostic.severity_to_string sev) title explain))
    entries;
  Buffer.contents buf

(* Cross-namespace machine-readable catalog: every code the tool can emit,
   FL (lint) + FC (check) + RT (runtime) + MN (mining), one object per
   rule. *)
let catalog_json () =
  let entry ns code severity title explain =
    Json.Obj
      [
        ("namespace", Json.String ns);
        ("code", Json.String code);
        ("severity", Json.String (Diagnostic.severity_to_string severity));
        ("title", Json.String title);
        ("explain", Json.String explain);
      ]
  in
  let fl =
    entry "FL" Lint.parse_error_code Diagnostic.Error "parse-error"
      "the spec file is unreadable or does not parse"
    :: List.map
         (fun (r : Rule.t) -> entry "FL" r.Rule.code r.Rule.severity r.Rule.title r.Rule.explain)
         Lint.rules
  in
  let fc =
    List.map (fun (c, s, t, e) -> entry "FC" c s t e) driver_codes
    @ List.map
        (fun (r : Rule.Scenario.rule) ->
          entry "FC" r.Rule.Scenario.code r.Rule.Scenario.severity r.Rule.Scenario.title
            r.Rule.Scenario.explain)
        rules
  in
  let rt =
    List.filter_map
      (fun code ->
        match (Rt.severity code, Rt.summary code) with
        | Some sev, Some summary -> Some (entry "RT" code sev "" summary)
        | _ -> None)
      Rt.codes
  in
  let mn =
    List.filter_map
      (fun code ->
        match (Mn.severity code, Mn.summary code) with
        | Some sev, Some summary -> Some (entry "MN" code sev "" summary)
        | _ -> None)
      Mn.codes
  in
  let sorted =
    List.sort
      (fun a b ->
        match (Json.member "code" a, Json.member "code" b) with
        | Some (Json.String x), Some (Json.String y) -> String.compare x y
        | _ -> 0)
      (fl @ fc @ rt @ mn)
  in
  Json.to_string_pretty (Json.Obj [ ("rules", Json.List sorted) ])
