type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ------------------------------------------------------ *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let float_literal f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write ~indent ~level buf v =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> Buffer.add_string buf (escape_string s)
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          write ~indent ~level:(level + 1) buf item)
        items;
      nl level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, fv) ->
          if i > 0 then Buffer.add_char buf ',';
          nl (level + 1);
          Buffer.add_string buf (escape_string k);
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          write ~indent ~level:(level + 1) buf fv)
        fields;
      nl level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  write ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v
let to_string_pretty v = render ~indent:true v

(* --- parsing ------------------------------------------------------- *)

exception Fail of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "%s at offset %d" m !pos))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail "expected %C, got %C" c c'
    | None -> fail "expected %C, got end of input" c
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail "invalid literal"
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with Some v -> v | None -> fail "bad \\u escape %S" h
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' -> add_utf8 buf (parse_hex4 ())
              | c -> fail "bad escape \\%c" c);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> Float f
        | None -> fail "bad number %S" lit)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                List.rev (f :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail m -> Error m

(* --- accessors ----------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
