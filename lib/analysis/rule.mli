(** Lint rules: typed static checks over raw flow specifications.

    A rule inspects a whole specification file (the scenario formed by
    its flows — the CLI's default one-instance-per-flow interleaving)
    under a {!context} and returns diagnostics. Rules run on
    {!Spec_parser.raw_flow}s, not validated {!Flow.t}s, so they can
    report defects {!Flow.make} would reject — with precise spans. *)

open Flowtrace_core

(** Tunables a lint run is checked against. *)
type context = {
  known_ips : string list option;
      (** IP names of the target topology; [None] disables topology
          checks (rule FL011 only reports ["?"] endpoints). *)
  buffer_widths : int list;
      (** standard trace-buffer widths a deployment may provision
          (rule FL012). *)
  max_states : int;
      (** the {!Interleave.make} reachable-product bound the scenario
          must stay under (rule FL014). *)
}

(** [{known_ips = None; buffer_widths = [8;16;32;64;128];
     max_states = 2_000_000}] — matching {!Interleave.make}'s default. *)
val default_context : context

(** One specification file, leniently parsed. *)
type input = { file : string; flows : Spec_parser.raw_flow list }

type t = {
  code : string;  (** stable code, e.g. ["FL001"] *)
  title : string;  (** short name for catalogs *)
  severity : Diagnostic.severity;  (** severity of this rule's findings *)
  explain : string;  (** one-line description of what is checked and why *)
  check : context -> input -> Diagnostic.t list;
}

(** [diag rule ?flow span fmt] builds a diagnostic carrying the rule's
    code and severity. *)
val diag :
  t -> ?flow:string -> Srcspan.t -> ('a, unit, string, Diagnostic.t) format4 -> 'a

(** Helpers shared by rule implementations. *)

(** [declared_states f] is the set of state names declared in [f]. *)
val declared_states : Spec_parser.raw_flow -> (string, unit) Hashtbl.t

(** [declared_messages f] maps message name to declaration for [f]. *)
val declared_messages : Spec_parser.raw_flow -> (string, Message.t) Hashtbl.t

(** [duplicates key items] returns, for every item whose key repeats an
    earlier item's, the pair (first occurrence, repeat) in order. *)
val duplicates : ('a -> string) -> 'a list -> ('a * 'a) list

(** Scenario rules — the [FC] namespace behind [flowtrace check]. Same
    record shape as the lint rules, but a check runs against the
    validated whole-scenario {!Scenario_model.t} (all flows × topology ×
    budget) instead of one file's raw declarations. *)
module Scenario : sig
  type rule = {
    code : string;  (** stable code, e.g. ["FC010"] *)
    title : string;
    severity : Diagnostic.severity;
    explain : string;
    check : Scenario_model.t -> Diagnostic.t list;
  }

  (** [diag rule ?flow span fmt] builds a diagnostic carrying the rule's
      code and severity. *)
  val diag :
    rule -> ?flow:string -> Srcspan.t -> ('a, unit, string, Diagnostic.t) format4 -> 'a

  (** All unordered pairs of a list, in first-occurrence order. *)
  val pairs : 'a list -> ('a * 'a) list
end
