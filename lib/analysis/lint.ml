open Flowtrace_core

let rules =
  List.sort
    (fun (a : Rule.t) b -> String.compare a.Rule.code b.Rule.code)
    (Rule_decls.rules @ Rule_msgs.rules @ Rule_observe.rules @ Rule_structure.rules
   @ Rule_widths.rules @ Rule_interleaving.rules)

let find_rule code = List.find_opt (fun (r : Rule.t) -> String.equal r.Rule.code code) rules

let parse_error_code = "FL000"

let run ?(context = Rule.default_context) input =
  Diagnostic.sort_report (List.concat_map (fun (r : Rule.t) -> r.Rule.check context input) rules)

let parse_error_diag file (e : Spec_parser.error) =
  Diagnostic.make ~code:parse_error_code ~severity:Diagnostic.Error
    (Srcspan.make ~file ~line:e.Spec_parser.line ~col:1)
    e.Spec_parser.message

let lint_string ?context ?(file = "<string>") text =
  match Spec_parser.parse_raw ~file text with
  | flows -> run ?context { Rule.file; flows }
  | exception Spec_parser.Parse_error e -> [ parse_error_diag file e ]

let lint_file ?context path =
  match Spec_parser.parse_raw_file path with
  | flows -> run ?context { Rule.file = path; flows }
  | exception Spec_parser.Parse_error e -> [ parse_error_diag path e ]
  | exception Sys_error m ->
      [ Diagnostic.make ~code:parse_error_code ~severity:Diagnostic.Error (Srcspan.none path) m ]

let catalog () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-8s %-28s %s\n" r.Rule.code
           (Diagnostic.severity_to_string r.Rule.severity)
           r.Rule.title r.Rule.explain))
    rules;
  Buffer.contents buf
