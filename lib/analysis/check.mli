(** The flowcheck driver: whole-scenario static debuggability analysis.

    Where {!Lint} asks whether each flow is {e well-formed}, [Check] asks
    whether the scenario they form is {e debuggable}: can the paper's
    select → trace → localize pipeline possibly work on it? It builds a
    {!Scenario_model.t} (all flows validated and path-enumerated, bound to
    an optional topology and buffer budget) and runs the FC scenario rules
    over it:

    - [FC010]–[FC013] ({!Rule_ambiguity}) — cross-flow and intra-flow
      ambiguity of the observable projection, a static lower bound on
      {!Localize} confidence no selection can beat;
    - [FC020]–[FC023] ({!Rule_feasibility}) — budget feasibility (via
      {!Packing.fits}) and topology dead zones;
    - [FC030] ({!Rule_loss}) — message classes whose loss collapses a
      distinguishable flow pair into ambiguity.

    Driver codes [FC000] (parse error), [FC001] (invalid flow), [FC002]
    (empty scenario) and [FC090] (analysis truncated — the degraded
    marker behind exit code 3; see {!Diagnostic}) round out the
    namespace. This is the admission gate mined candidate specs pass
    through before selection sees them. *)

open Flowtrace_core

(** Pseudo-code for token-level parse failures: ["FC000"]. *)
val parse_error_code : string

(** The code whose presence marks a degraded (incomplete) analysis:
    ["FC090"]. *)
val degraded_code : string

(** Driver-emitted codes as (code, severity, title, summary). *)
val driver_codes : (string * Diagnostic.severity * string * string) list

(** All registered scenario rules, sorted by code. *)
val rules : Rule.Scenario.rule list

(** [find_rule code] looks up a scenario rule by its [FCnnn] code. *)
val find_rule : string -> Rule.Scenario.rule option

(** [run model] applies driver checks and every scenario rule, returning
    findings in {!Diagnostic.sort_report} order. *)
val run : Scenario_model.t -> Diagnostic.t list

(** [degraded diags] — does the report carry {!degraded_code}? Feed into
    {!Diagnostic.exit_code}'s [?degraded]. *)
val degraded : Diagnostic.t list -> bool

(** [check_raw ~file raws] models leniently parsed flows and runs the
    analysis. *)
val check_raw :
  ?path_limit:int ->
  ?topology:Scenario_model.topology ->
  ?budget:int ->
  file:string ->
  Spec_parser.raw_flow list ->
  Diagnostic.t list

(** [check_string text] parses and checks; a {!Spec_parser.Parse_error}
    becomes one [FC000] diagnostic. *)
val check_string :
  ?path_limit:int ->
  ?topology:Scenario_model.topology ->
  ?budget:int ->
  ?file:string ->
  string ->
  Diagnostic.t list

(** [check_file path] reads and checks a file; unreadable files surface
    as an [FC000] diagnostic. *)
val check_file :
  ?path_limit:int ->
  ?topology:Scenario_model.topology ->
  ?budget:int ->
  string ->
  Diagnostic.t list

(** [catalog ()] renders the FC catalog (driver codes + rules), same
    format as {!Lint.catalog}. *)
val catalog : unit -> string

(** [catalog_json ()] is the machine-readable cross-namespace catalog —
    every code the tool can emit (FL, FC, RT, MN) as a [rules] array of
    [{namespace; code; severity; title; explain}] objects sorted by code.
    The [--list-rules --json] output. *)
val catalog_json : unit -> string
