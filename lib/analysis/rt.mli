(** Runtime diagnostics: stable RT0xx codes for the supervision layer.

    The [lib/runtime] checkpoint/resume machinery reports journal damage
    and mismatches through the same positioned {!Diagnostic.t} pipeline as
    the spec lint — one line per finding, a stable code per failure class —
    so a corrupt journal surfaces as [journal.ckpt:7: error[RT005]: ...]
    instead of a garbage selection. Spans point at the offending journal
    line ([Srcspan.none] for whole-file findings).

    Codes (all errors unless noted):
    - [RT001] — journal unreadable (I/O error opening or reading it)
    - [RT002] — not a flowtrace journal (bad magic / unparseable header)
    - [RT003] — journal format version not supported by this build
    - [RT004] — journal does not match this run (fingerprint or task-count
      mismatch: different spec, width, strategy or engine layout)
    - [RT005] — record corrupt (CRC mismatch or unparseable payload in
      the middle of the journal)
    - [RT006] ({e warning}) — journal tail truncated; the valid prefix was
      recovered and the missing tail is simply re-run on resume
    - [RT007] — journal integrity check failed (end-record count or
      whole-file CRC mismatch) *)

(** [v code span fmt] builds an RT diagnostic; the severity is the
    catalog's for [code]. Raises [Invalid_argument] on a code outside the
    catalog. *)
val v :
  string ->
  Flowtrace_core.Srcspan.t ->
  ('a, unit, string, Diagnostic.t) format4 ->
  'a

(** [severity code] is the catalog severity of [code], if known. *)
val severity : string -> Diagnostic.severity option

(** [summary code] is the catalog's one-line summary of [code], if
    known. *)
val summary : string -> string option

(** [codes] lists the catalog codes in order. *)
val codes : string list

(** [catalog ()] renders the code table (code, severity, summary), one
    line per code — the RT counterpart of [Lint.catalog]. *)
val catalog : unit -> string
