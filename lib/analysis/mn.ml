(* Stable diagnostic codes for the lib/mining spec-inference layer. Kept
   here, next to the lint and runtime codes, so every code the tool can
   emit lives in one library and renders through the same Diagnostic
   pipeline. *)

let table =
  [
    ("MN001", Diagnostic.Error, "trace yields no episodes; nothing to mine");
    ("MN002", Diagnostic.Error, "mined flow failed structural validation and was discarded");
    ("MN010", Diagnostic.Warning, "flow dropped: no path met the support threshold");
    ("MN011", Diagnostic.Warning, "path dropped as noise: support below threshold");
    ("MN012", Diagnostic.Info, "kept path is a proper prefix of another; truncated episodes suspected");
    ("MN013", Diagnostic.Info, "message absent from the catalog; width defaulted");
    ("MN014", Diagnostic.Info, "observed endpoints disagree with the catalog declaration");
    ("MN090", Diagnostic.Info, "mining degraded: some observed evidence was discarded (exit 3)");
  ]

let severity code =
  List.find_map (fun (c, s, _) -> if String.equal c code then Some s else None) table

let summary code =
  List.find_map (fun (c, _, s) -> if String.equal c code then Some s else None) table

let codes = List.map (fun (c, _, _) -> c) table

let v code span ?flow fmt =
  match severity code with
  | None -> invalid_arg (Printf.sprintf "Mn.v: unknown mining diagnostic code %s" code)
  | Some severity ->
      Printf.ksprintf (fun message -> Diagnostic.make ~code ~severity ?flow span message) fmt

let catalog () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (code, sev, summary) ->
      Buffer.add_string buf
        (Printf.sprintf "%s %-8s %s\n" code (Diagnostic.severity_to_string sev) summary))
    table;
  Buffer.contents buf
