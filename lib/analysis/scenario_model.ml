(* The whole-scenario model the flowcheck rules analyze: every flow of a
   spec file validated and path-enumerated once, bound to an optional IP
   topology and trace-buffer budget. Built from the lenient parse so
   invalid flows surface as positioned FC001 diagnostics (the driver's
   business) while the valid remainder is still checked. *)

open Flowtrace_core

type topology = {
  topo_name : string;
  topo_ips : string list;
  topo_channels : (string * string) list;
}

type vflow = {
  v_flow : Flow.t;
  v_span : Srcspan.t;
  v_msg_spans : (string * Srcspan.t) list;
  v_paths : (string list * string list) list;
  v_truncated : bool;
}

type t = {
  file : string;
  valid : vflow list;
  invalid : (string * Srcspan.t * string list) list;
  topology : topology option;
  budget : int option;
}

let default_path_limit = 20_000

let of_flows ?(path_limit = default_path_limit) ?topology ?budget ~file flows =
  let valid =
    List.map
      (fun (f : Flow.t) ->
        let paths, truncated = Flow.paths ~limit:path_limit f in
        {
          v_flow = f;
          v_span = Srcspan.none file;
          v_msg_spans = List.map (fun (m : Message.t) -> (m.Message.name, Srcspan.none file)) f.Flow.messages;
          v_paths = paths;
          v_truncated = truncated;
        })
      flows
  in
  { file; valid; invalid = []; topology; budget }

let of_raw ?(path_limit = default_path_limit) ?topology ?budget ~file raws =
  let valid, invalid =
    List.fold_left
      (fun (vs, is) (rf : Spec_parser.raw_flow) ->
        match Spec_parser.raw_to_flow rf with
        | Ok f ->
            let paths, truncated = Flow.paths ~limit:path_limit f in
            let vf =
              {
                v_flow = f;
                v_span = rf.Spec_parser.rf_span;
                v_msg_spans =
                  List.map
                    (fun ((m : Message.t), sp) -> (m.Message.name, sp))
                    rf.Spec_parser.rf_messages;
                v_paths = paths;
                v_truncated = truncated;
              }
            in
            (vf :: vs, is)
        | Error errs -> (vs, (rf.Spec_parser.rf_name, rf.Spec_parser.rf_span, errs) :: is))
      ([], []) raws
  in
  { file; valid = List.rev valid; invalid = List.rev invalid; topology; budget }

let truncated t = List.exists (fun vf -> vf.v_truncated) t.valid

let messages t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun vf ->
      List.filter_map
        (fun (m : Message.t) ->
          if Hashtbl.mem seen m.Message.name then None
          else begin
            Hashtbl.replace seen m.Message.name ();
            Some m
          end)
        vf.v_flow.Flow.messages)
    t.valid

let observable t (m : Message.t) =
  match t.topology with
  | None -> true
  | Some topo ->
      List.exists
        (fun (src, dst) -> String.equal src m.Message.src && String.equal dst m.Message.dst)
        topo.topo_channels

let observable_classes t vf =
  List.filter_map
    (fun (m : Message.t) -> if observable t m then Some m.Message.name else None)
    vf.v_flow.Flow.messages

let project t vf trace =
  List.filter
    (fun name ->
      match Flow.message vf.v_flow name with Some m -> observable t m | None -> true)
    trace

let language ?without t vf =
  let keep =
    match without with
    | None -> fun _ -> true
    | Some dropped -> fun name -> not (String.equal name dropped)
  in
  List.sort_uniq
    (List.compare String.compare)
    (List.map (fun (trace, _) -> List.filter keep (project t vf trace)) vf.v_paths)

let lang_equal a b = List.equal (List.equal String.equal) a b

let rec is_prefix xs ys =
  match (xs, ys) with
  | [], _ -> true
  | _, [] -> false
  | x :: xs', y :: ys' -> String.equal x y && is_prefix xs' ys'

let subsumed_by a b = List.for_all (fun tr -> List.exists (fun u -> is_prefix tr u) b) a

let has_nonempty lang = List.exists (fun tr -> tr <> []) lang

(* Messages riding each topology channel, across all valid flows — the
   dead-monitor analysis. Channel order follows the topology declaration. *)
let channels_used t =
  match t.topology with
  | None -> []
  | Some topo ->
      List.map
        (fun (src, dst) ->
          let riders =
            List.sort_uniq String.compare
              (List.concat_map
                 (fun vf ->
                   List.filter_map
                     (fun (m : Message.t) ->
                       if String.equal m.Message.src src && String.equal m.Message.dst dst
                       then Some m.Message.name
                       else None)
                     vf.v_flow.Flow.messages)
                 t.valid)
          in
          ((src, dst), riders))
        topo.topo_channels
