(* The flowtrace command-line tool.

   Subcommands:
     select      select trace messages for flows in a spec file
     interleave  report the interleaved flow of a spec file
     localize    count executions consistent with an observed trace
     lint        statically check each flow of a spec file (FL0xx diagnostics)
     check       whole-scenario debuggability analysis (FC0xx diagnostics)
     tables      regenerate the paper's tables and figures
     scenarios   show the built-in OpenSPARC T2 scenarios
     stats       replay a recorded telemetry file into aggregate tables *)

open Cmdliner
open Flowtrace_core
module Telemetry = Flowtrace_telemetry.Telemetry
module Engine = Flowtrace_runtime.Engine
module Journal = Flowtrace_runtime.Journal

let load_flows path =
  try Ok (Spec_parser.parse_file path) with
  | Spec_parser.Parse_error e ->
      Error (Printf.sprintf "%s:%d: %s" path e.Spec_parser.line e.Spec_parser.message)
  | Sys_error m -> Error m

let interleave_of path counts =
  match load_flows path with
  | Error m -> Error m
  | Ok [] -> Error (Printf.sprintf "%s:1:1: specification declares no flows" path)
  | Ok flows -> (
      let find name = List.find_opt (fun f -> String.equal f.Flow.name name) flows in
      let instances =
        match counts with
        | [] -> List.mapi (fun i f -> { Interleave.flow = f; index = i + 1 }) flows
        | counts ->
            let next = ref 0 in
            List.concat_map
              (fun (name, n) ->
                match find name with
                | None -> []
                | Some f ->
                    List.init n (fun _ ->
                        incr next;
                        { Interleave.flow = f; index = !next }))
              counts
      in
      if instances = [] then Error "instance specification matches no flow"
      else
        try Ok (Interleave.make instances) with
        | Interleave.Not_legally_indexed m | Interleave.Message_clash m -> Error m
        | Interleave.Too_large n -> Error (Printf.sprintf "interleaving exceeds %d states" n))

(* --- arguments ----------------------------------------------------- *)

let spec_file =
  let doc = "Flow specification file (see the README for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SPEC" ~doc)

let width =
  let doc = "Trace buffer width in bits." in
  Arg.(value & opt int 32 & info [ "w"; "width" ] ~docv:"BITS" ~doc)

let strategy =
  let doc = "Candidate search strategy: $(b,exact), $(b,exact-maximal) or $(b,greedy)." in
  let strategy_conv =
    Arg.enum
      [ ("exact", Select.Exact); ("exact-maximal", Select.Exact_maximal); ("greedy", Select.Greedy) ]
  in
  Arg.(value & opt strategy_conv Select.Exact & info [ "s"; "strategy" ] ~docv:"STRATEGY" ~doc)

let no_pack =
  let doc = "Disable Step-3 packing of leftover buffer bits." in
  Arg.(value & flag & info [ "no-pack" ] ~doc)

let instances =
  let doc =
    "Instance counts as $(b,FLOW=N) (repeatable). Default: one instance of every flow in the \
     file."
  in
  let inst_conv =
    let parse s =
      match String.split_on_char '=' s with
      | [ name; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Ok (name, n)
          | _ -> Error (`Msg "expected FLOW=N with positive N"))
      | _ -> Error (`Msg "expected FLOW=N")
    in
    Arg.conv (parse, fun ppf (n, c) -> Format.fprintf ppf "%s=%d" n c)
  in
  Arg.(value & opt_all inst_conv [] & info [ "i"; "instances" ] ~docv:"FLOW=N" ~doc)

let trace_arg =
  let doc =
    "Observed trace: whitespace-separated indexed messages like $(b,1:ReqE 2:GntE). Omit it \
     when reading the observation from $(b,--trace-file)."
  in
  Arg.(value & pos 1 (some string) None & info [] ~docv:"TRACE" ~doc)

let jobs =
  let doc = "Domains to fan the exact Step-1/2 subset-tree walk across (1 = sequential)." in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let limit =
  let doc =
    "Candidate-combination budget for exact Step-1 enumeration. Past it selection aborts with \
     a hint to use $(b,--strategy greedy) or a higher limit."
  in
  Arg.(value & opt int Combination.default_limit & info [ "limit" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Wall-clock budget in seconds. When it expires mid-search the run degrades to an anytime \
     result: the best candidate streamed so far, or the greedy baseline if none completed \
     (the result box then carries a $(b,tier:) line and the exit status is 3). A zero or \
     negative budget is already expired."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC" ~doc)

let max_candidates_arg =
  let doc =
    "Candidate budget: stop the exact Step-1/2 walk after exploring $(docv) candidates and \
     return the best seen (tier $(b,anytime), exit status 3). Unlike $(b,--limit) this \
     degrades instead of failing."
  in
  Arg.(value & opt (some int) None & info [ "max-candidates" ] ~docv:"N" ~doc)

let checkpoint_arg =
  let doc =
    "Journal selection progress to $(docv) (crash-safe: written whole, then renamed into \
     place) so a killed run can be picked up with $(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume from the journal at $(docv) (and keep checkpointing to it). Completed subset-tree \
     tasks are skipped; the finished run's answer is bit-identical to an uninterrupted one. A \
     missing journal starts fresh."
  in
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"FILE" ~doc)

let retries_arg =
  let doc =
    "Extra attempts for a worker task that dies (supervised runs only, i.e. with \
     $(b,--checkpoint)/$(b,--resume)). Tasks still failing after that are dropped from the \
     search and the result is reported partial."
  in
  Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)

let delta_from_arg =
  let doc =
    "Delta re-selection: seed the exact search with the journalled bests of a prior run at \
     $(docv) (no fingerprint match required — the point is replaying against a $(i,modified) \
     scenario). Feasible seeds prune the walk as branch-and-bound incumbents; the answer is \
     bit-identical to a from-scratch run but re-scores strictly fewer candidates when any \
     seed survives the change. Incompatible with $(b,--checkpoint)/$(b,--resume)."
  in
  Arg.(value & opt (some string) None & info [ "delta-from" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Record runtime telemetry (spans, counters, gauges, histograms) to $(docv). The format \
     follows the extension: $(b,.jsonl) writes one JSON event per line (replayable with \
     $(b,flowtrace stats)), $(b,.json)/$(b,.trace) writes a Chrome $(i,trace_event) file for \
     about://tracing, anything else writes human-readable text."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

(* Bracket a command with telemetry recording: install the sink before the
   work, flush and close it afterwards even if the command dies. *)
let with_telemetry tel f =
  match tel with
  | None -> f ()
  | Some path ->
      Telemetry.install
        ~meta:[ ("tool", Flowtrace_telemetry.Event.Str "flowtrace") ]
        (Flowtrace_telemetry.Sink.of_path path);
      Fun.protect ~finally:Telemetry.shutdown f

let or_die = function
  | Ok v -> v
  | Error m ->
      Printf.eprintf "flowtrace: %s\n" m;
      exit 1

(* Load a packet trace for a subcommand: I/O and parse failures become
   positioned one-line errors (file:line) through [or_die], never a
   backtrace. With [recover], malformed lines are skipped under
   [Trace_io.parse_lenient]'s error budget and reported on stderr. *)
let load_trace_or_die ~recover path =
  let open Flowtrace_soc in
  try
    if recover then begin
      let packets, diags = Trace_io.load_lenient path in
      if diags <> [] then
        Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all diags);
      packets
    end
    else Trace_io.load path
  with
  | Trace_io.Parse_error e ->
      or_die (Error (Printf.sprintf "%s:%d: %s" path e.Trace_io.line e.Trace_io.message))
  | Sys_error m -> or_die (Error m)

let obs_faults_arg =
  let doc =
    "Observation-path fault spec: comma-separated $(b,key=value) among $(b,drop=P) and \
     $(b,corrupt=P) (probabilities), $(b,reorder=W) (local window), $(b,blackout=A-B) \
     (cycle range, repeatable) and $(b,trunc=N) (keep first N packets). Example: \
     $(b,drop=0.1,reorder=3)."
  in
  Arg.(value & opt (some string) None & info [ "obs-faults" ] ~docv:"SPEC" ~doc)

let parse_obs_faults = function
  | None -> Flowtrace_soc.Obs_fault.none
  | Some s -> or_die (Flowtrace_soc.Obs_fault.parse_spec s)

(* Select with the Too_many blow-up guard mapped to a positioned,
   actionable error instead of an uncaught exception. *)
let select_or_die ~path ?strategy ?jobs ?limit ?deadline ?max_candidates ?pack inter
    ~buffer_width =
  try Select.select ?strategy ?jobs ?limit ?deadline ?max_candidates ?pack inter ~buffer_width
  with
  | Combination.Too_many n ->
      or_die
        (Error
           (Printf.sprintf
              "%s: Step-1 enumeration exceeded %d candidate combinations at width %d; use \
               --strategy greedy or raise --limit"
              path n buffer_width))
  | Invalid_argument m -> or_die (Error (Printf.sprintf "%s: %s" path m))

(* --- commands ------------------------------------------------------ *)

let select_cmd =
  let run path counts width strategy no_pack jobs limit deadline max_candidates checkpoint
      resume retries delta_from tel =
    (* compute the exit code inside the telemetry bracket so a degraded
       exit still flushes the recording, then exit outside it *)
    let code =
      with_telemetry tel @@ fun () ->
      let inter = or_die (interleave_of path counts) in
      (* --deadline is relative on the command line, absolute in the API *)
      let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline in
      let pack = not no_pack in
      if delta_from <> None && (checkpoint <> None || resume <> None) then
        or_die (Error "--delta-from replays a finished journal; it cannot be combined with \
                       --checkpoint/--resume");
      let ckpt, resuming =
        match (resume, checkpoint) with
        | Some r, Some c when not (String.equal r c) ->
            or_die (Error "give --resume FILE or --checkpoint FILE, not two different files")
        | Some r, _ -> (Some r, true)
        | None, c -> (c, false)
      in
      match delta_from with
      | Some file -> (
          (* deliberately no fingerprint check: the journal came from a
             prior revision of the scenario, which is the whole point *)
          let snap =
            match Journal.load file with
            | Error diags ->
                Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all diags);
                Printf.eprintf "flowtrace: cannot use journal %s\n" file;
                exit 1
            | Ok (snap, warns) ->
                if warns <> [] then
                  Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all warns);
                snap
          in
          let seeds =
            (match snap.Journal.s_best with Some b -> [ b.Journal.b_names ] | None -> [])
            @ List.map (fun (_, (b : Journal.best)) -> b.Journal.b_names)
                snap.Journal.s_task_bests
          in
          match
            Select.reselect ~strategy ~limit ~jobs ?deadline ?max_candidates ~pack ~seeds inter
              ~buffer_width:width
          with
          | exception Combination.Too_many n ->
              or_die
                (Error
                   (Printf.sprintf
                      "%s: Step-1 enumeration exceeded %d candidate combinations at width %d; \
                       use --strategy greedy or raise --limit"
                      path n width))
          | exception Invalid_argument m -> or_die (Error (Printf.sprintf "%s: %s" path m))
          | r, stats ->
              Format.printf "%a@." Select.pp_result r;
              (match stats with
              | Some s ->
                  Format.printf
                    "delta: %d seed%s, %d candidates re-scored, %d subtree%s pruned@."
                    s.Select.rs_seeds
                    (if s.Select.rs_seeds = 1 then "" else "s")
                    s.Select.rs_scored s.Select.rs_pruned_subtrees
                    (if s.Select.rs_pruned_subtrees = 1 then "" else "s")
              | None -> Format.printf "delta: seeds unusable here; ran a full selection@.");
              if Select.Tier.is_degraded r.Select.tier then 3 else 0)
      | None -> (
      match ckpt with
      | None ->
          (* unsupervised: budgets run inside the core engine *)
          let r =
            select_or_die ~path ~strategy ~jobs ~limit ?deadline ?max_candidates ~pack inter
              ~buffer_width:width
          in
          Format.printf "%a@." Select.pp_result r;
          if Select.Tier.is_degraded r.Select.tier then 3 else 0
      | Some file -> (
          match
            Engine.select ~strategy ~limit ~jobs ~retries ?deadline ?max_candidates
              ~checkpoint:file ~resume:resuming ~pack inter ~buffer_width:width
          with
          | exception Combination.Too_many n ->
              or_die
                (Error
                   (Printf.sprintf
                      "%s: Step-1 enumeration exceeded %d candidate combinations at width %d; \
                       use --strategy greedy or raise --limit"
                      path n width))
          | exception Invalid_argument m -> or_die (Error (Printf.sprintf "%s: %s" path m))
          | Error diags ->
              Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all diags);
              Printf.eprintf "flowtrace: cannot use journal %s\n" file;
              exit 1
          | Ok o ->
              if o.Engine.o_diags <> [] then
                Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all o.Engine.o_diags);
              Format.printf "%a@." Select.pp_result o.Engine.o_result;
              Format.printf "%a@." Engine.pp_outcome o;
              if o.Engine.o_status = Engine.Partial then 3 else 0))
    in
    if code <> 0 then exit code
  in
  let doc = "Select trace messages for the flows of a spec file." in
  Cmd.v (Cmd.info "select" ~doc)
    Term.(
      const run $ spec_file $ instances $ width $ strategy $ no_pack $ jobs $ limit
      $ deadline_arg $ max_candidates_arg $ checkpoint_arg $ resume_arg $ retries_arg
      $ delta_from_arg $ telemetry_arg)

let interleave_cmd =
  let run path counts =
    let inter = or_die (interleave_of path counts) in
    Format.printf "%a@." Stats.pp (Stats.compute inter);
    Format.printf "message pool: %s@."
      (String.concat ", " (List.map Message.to_string (Interleave.messages inter)))
  in
  let doc = "Report the interleaved flow of a spec file." in
  Cmd.v (Cmd.info "interleave" ~doc) Term.(const run $ spec_file $ instances)

let localize_cmd =
  let trace_file_arg =
    let doc =
      "Read the observation from a packet trace file (as written by $(b,simulate -o)) instead \
       of the TRACE argument; packets outside the selection are projected away."
    in
    Arg.(value & opt (some string) None & info [ "trace-file" ] ~docv:"FILE" ~doc)
  in
  let recover_arg =
    let doc =
      "With $(b,--trace-file): skip malformed trace lines (reported on stderr) instead of \
       failing on the first one."
    in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let lossy_arg =
    let doc =
      "Gap-tolerant matching: treat the observation as a subsequence of each execution's \
       projection (the trace may have lost entries) instead of requiring an exact prefix."
    in
    Arg.(value & flag & info [ "lossy" ] ~doc)
  in
  let skip_budget_arg =
    let doc = "Skip budget for $(b,--lossy): lost or bogus observation entries tolerated." in
    Arg.(value & opt int 2 & info [ "skip-budget" ] ~docv:"N" ~doc)
  in
  let run path counts trace trace_file recover lossy skip_budget width strategy tel =
    with_telemetry tel @@ fun () ->
    let inter = or_die (interleave_of path counts) in
    let sel = select_or_die ~path ~strategy inter ~buffer_width:width in
    let selected b = Select.is_observable sel b in
    let observed =
      match (trace, trace_file) with
      | Some _, Some _ -> or_die (Error "give either a TRACE argument or --trace-file, not both")
      | None, None -> or_die (Error "no observation given (TRACE argument or --trace-file)")
      | Some trace, None ->
          List.filter_map
            (fun tok ->
              if tok = "" then None
              else
                match String.index_opt tok ':' with
                | Some i -> (
                    match int_of_string_opt (String.sub tok 0 i) with
                    | Some inst ->
                        let base = String.sub tok (i + 1) (String.length tok - i - 1) in
                        Some (Indexed.make base inst)
                    | None ->
                        or_die
                          (Error (Printf.sprintf "bad indexed message %S (want IDX:NAME)" tok)))
                | None ->
                    or_die (Error (Printf.sprintf "bad indexed message %S (want IDX:NAME)" tok)))
            (String.split_on_char ' ' trace)
      | None, Some file ->
          let packets = load_trace_or_die ~recover file in
          List.filter_map
            (fun (p : Flowtrace_soc.Packet.t) ->
              if selected p.Flowtrace_soc.Packet.msg then Some (Flowtrace_soc.Packet.indexed p)
              else None)
            packets
    in
    let total = Interleave.total_paths inter in
    Format.printf "selection: %s@." (String.concat ", " (Select.selected_names sel));
    if lossy then begin
      let r =
        Localize.lossy ~semantics:Localize.Prefix ~skip_budget inter ~selected ~observed
      in
      Format.printf "consistent executions: %d of %d (%.4f%%)@." r.Localize.lr_consistent total
        (100.0 *. Localize.lossy_fraction r);
      Format.printf
        "lossy: %d observation entr%s discarded to resynchronize, >=%d emission%s skipped, \
         budget %d, confidence %.2f@."
        r.Localize.lr_discarded
        (if r.Localize.lr_discarded = 1 then "y" else "ies")
        r.Localize.lr_skips
        (if r.Localize.lr_skips = 1 then "" else "s")
        r.Localize.lr_budget r.Localize.lr_confidence
    end
    else begin
      let consistent =
        Localize.consistent_paths ~semantics:Localize.Prefix inter ~selected ~observed
      in
      Format.printf "consistent executions: %d of %d (%.4f%%)@." consistent total
        (100.0 *. float_of_int consistent /. float_of_int (max 1 total))
    end
  in
  let doc = "Count executions prefix-consistent with an observed trace." in
  Cmd.v (Cmd.info "localize" ~doc)
    Term.(
      const run $ spec_file $ instances $ trace_arg $ trace_file_arg $ recover_arg $ lossy_arg
      $ skip_budget_arg $ width $ strategy $ telemetry_arg)

let tables_cmd =
  let ids =
    let doc = "Experiment ids to run (default: all)." in
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc)
  in
  let run ids =
    let module R = Flowtrace_experiments.Registry in
    let module T = Flowtrace_experiments.Table_render in
    let ids = if ids = [] then R.ids else ids in
    List.iter
      (fun id ->
        match R.find id with
        | Some e -> List.iter T.print (e.R.run ())
        | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" id (String.concat " " R.ids);
            exit 1)
      ids
  in
  let doc = "Regenerate the paper's tables and figures." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ ids)

let explain_cmd =
  let run path counts width strategy jobs limit tel =
    with_telemetry tel @@ fun () ->
    let inter = or_die (interleave_of path counts) in
    let r = select_or_die ~path ~strategy ~jobs ~limit inter ~buffer_width:width in
    Format.printf "%a@.@." Select.pp_result r;
    List.iter
      (fun c -> Format.printf "%a@." Select.pp_contribution c)
      (Select.explain inter r)
  in
  let doc = "Rank every message of a spec file by information contribution." in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ spec_file $ instances $ width $ strategy $ jobs $ limit $ telemetry_arg)

let simulate_cmd =
  let open Flowtrace_soc in
  let scenario_arg =
    let doc = "T2 usage scenario id (1-3)." in
    Arg.(value & opt int 1 & info [ "scenario" ] ~docv:"ID" ~doc)
  in
  let bug_arg =
    let doc = "Catalog bug id to inject (repeatable)." in
    Arg.(value & opt_all int [] & info [ "bug" ] ~docv:"ID" ~doc)
  in
  let rounds_arg =
    let doc = "Workload rounds (one instance of each flow per round)." in
    Arg.(value & opt int 20 & info [ "rounds" ] ~doc)
  in
  let seed_arg =
    let doc = "Workload seed." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let out_arg =
    let doc = "Save the packet trace to $(docv)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let overflow_arg =
    let doc =
      "Feed the (faulted) packet log through a trace buffer with this overflow policy: \
       $(b,oldest) (wrap-around), $(b,newest) (freeze when full) or $(b,sample:K) (keep every \
       K-th observable occurrence)."
    in
    Arg.(value & opt (some string) None & info [ "overflow" ] ~docv:"POLICY" ~doc)
  in
  let depth_arg =
    let doc = "Trace buffer depth in entries (with $(b,--overflow))." in
    Arg.(value & opt int 256 & info [ "depth" ] ~docv:"N" ~doc)
  in
  let run scenario bugs rounds seed out obs_faults overflow depth width tel =
    with_telemetry tel @@ fun () ->
    let sc = try Scenario.by_id scenario with Invalid_argument m -> or_die (Error m) in
    let bugs =
      List.map
        (fun id ->
          try Flowtrace_bug.Catalog.by_id id with Invalid_argument m -> or_die (Error m))
        bugs
    in
    let spec = parse_obs_faults obs_faults in
    let policy =
      Option.map (fun s -> or_die (Trace_buffer.parse_policy s)) overflow
    in
    let config = { Scenario.default_run with Scenario.rounds; seed } in
    let outcome = Scenario.run ~config ~mutators:(Flowtrace_bug.Inject.mutators bugs) sc in
    Format.printf "%s: %d packets, %d completed, %d hung, %d failures, %d cycles@."
      sc.Scenario.name
      (List.length outcome.Sim.packets)
      (List.length outcome.Sim.completed)
      (List.length outcome.Sim.hung)
      (List.length outcome.Sim.failures)
      outcome.Sim.end_cycle;
    List.iter
      (fun (f : Sim.failure) -> Format.printf "  [%d] %s at %s@." f.Sim.f_cycle f.Sim.f_desc f.Sim.f_ip)
      outcome.Sim.failures;
    (match Flowtrace_bug.Inject.symptom_of outcome with
    | Flowtrace_bug.Inject.No_symptom -> ()
    | s -> Format.printf "symptom: %s@." (Flowtrace_bug.Inject.symptom_to_string s));
    let packets =
      if Obs_fault.is_none spec then outcome.Sim.packets
      else begin
        let faulted, rep = Obs_fault.apply ~seed spec outcome.Sim.packets in
        Format.printf "%s@." (Obs_fault.report_to_string rep);
        faulted
      end
    in
    (match policy with
    | None -> ()
    | Some policy ->
        let inter = Scenario.interleave sc in
        let sel = select_or_die ~path:sc.Scenario.name ~strategy:Select.Greedy inter ~buffer_width:width in
        let buf = Trace_buffer.create ~policy ~depth sel in
        Trace_buffer.record_all buf packets;
        let recorded, lost = Trace_buffer.stats buf in
        let overwritten, refused, sampled_out = Trace_buffer.drop_breakdown buf in
        Format.printf
          "trace buffer (policy %s, depth %d, width %d bits): %d entries retained, %d recorded, \
           %d lost (%d overwritten, %d refused, %d sampled out)@."
          (Trace_buffer.policy_to_string policy)
          depth width
          (List.length (Trace_buffer.entries buf))
          recorded lost overwritten refused sampled_out);
    match out with
    | None -> ()
    | Some file -> (
        match (try Ok (Trace_io.save file packets) with Sys_error m -> Error m) with
        | Error m -> or_die (Error m)
        | Ok () -> Format.printf "trace written to %s@." file)
  in
  let doc = "Simulate a T2 usage scenario, optionally with injected bugs." in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ scenario_arg $ bug_arg $ rounds_arg $ seed_arg $ out_arg $ obs_faults_arg
      $ overflow_arg $ depth_arg $ width $ telemetry_arg)

let debug_cmd =
  let case_arg =
    let doc = "Case study id (1-5)." in
    Arg.(value & opt int 1 & info [ "case" ] ~docv:"ID" ~doc)
  in
  let rounds_arg =
    let doc = "Workload rounds." in
    Arg.(value & opt int 40 & info [ "rounds" ] ~doc)
  in
  let run case rounds obs_faults tel =
    with_telemetry tel @@ fun () ->
    let open Flowtrace_debug in
    let cs = try Case_study.by_id case with Invalid_argument m -> or_die (Error m) in
    let spec = parse_obs_faults obs_faults in
    Report.print (Case_study.run ~rounds ~obs_faults:spec cs)
  in
  let doc = "Run a T2 debugging case study and print the session report." in
  Cmd.v (Cmd.info "debug" ~doc)
    Term.(const run $ case_arg $ rounds_arg $ obs_faults_arg $ telemetry_arg)

let dot_cmd =
  let out =
    let doc = "Write DOT to $(docv) instead of stdout." in
    Cmdliner.Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let interleaved =
    let doc = "Export the interleaving of the instances instead of each flow." in
    Cmdliner.Arg.(value & flag & info [ "interleaved" ] ~doc)
  in
  let run path counts interleaved out =
    let dot =
      if interleaved then Dot.of_interleave (or_die (interleave_of path counts))
      else String.concat "\n" (List.map Dot.of_flow (or_die (load_flows path)))
    in
    match out with
    | None -> print_string dot
    | Some file ->
        let oc = open_out file in
        output_string oc dot;
        close_out oc
  in
  let doc = "Export flows (or their interleaving) as Graphviz DOT." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ spec_file $ instances $ interleaved $ out)

let lint_cmd =
  let open Flowtrace_analysis in
  let specs =
    let doc = "Flow specification files to check." in
    Arg.(value & pos_all file [] & info [] ~docv:"SPEC" ~doc)
  in
  let json =
    let doc = "Emit the diagnostics as a JSON report instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let werror =
    let doc = "Promote warnings to errors (the exit status then reflects them)." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let list_rules =
    let doc = "Print the rule catalog (code, severity, what is checked) and exit." in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let topology =
    let doc =
      "IP topology to check message endpoints against: $(b,none) or $(b,t2) (the OpenSPARC T2 \
       platform, also valid for its DMA extension flows)."
    in
    Arg.(value & opt (enum [ ("none", `None); ("t2", `T2) ]) `None & info [ "topology" ] ~docv:"TOPO" ~doc)
  in
  let max_states =
    let doc = "Interleaving product-state bound rule FL014 warns against." in
    Arg.(value & opt int 2_000_000 & info [ "max-states" ] ~docv:"N" ~doc)
  in
  let run specs json werror list_rules topology max_states =
    if list_rules then
      (* --json lists every namespace the tool can emit (FL+FC+RT); the
         text form prints the FL catalog followed by the FC one. *)
      print_string (if json then Check.catalog_json () else Lint.catalog () ^ Check.catalog ())
    else begin
      if specs = [] then or_die (Error "no spec files given (try --list-rules for the catalog)");
      let known_ips =
        match topology with
        | `None -> None
        | `T2 -> Some (List.map fst Flowtrace_soc.T2.ips)
      in
      let context = { Rule.default_context with Rule.known_ips; max_states } in
      let diags = List.concat_map (fun path -> Lint.lint_file ~context path) specs in
      let diags = if werror then List.map Diagnostic.promote_warnings diags else diags in
      let diags = Diagnostic.sort_report diags in
      if json then print_endline (Diagnostic.render_json diags)
      else begin
        print_string (Diagnostic.render_all diags);
        Printf.printf "flowtrace lint: %d file%s checked: %s\n" (List.length specs)
          (if List.length specs = 1 then "" else "s")
          (Diagnostic.summary diags)
      end;
      match Diagnostic.exit_code diags with 0 -> () | n -> exit n
    end
  in
  let doc = "Statically check flow specification files (rules FL001..FL015)." in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ specs $ json $ werror $ list_rules $ topology $ max_states)

let check_cmd =
  let open Flowtrace_analysis in
  let specs =
    let doc = "Flow specification files, each checked as one scenario." in
    Arg.(value & pos_all file [] & info [] ~docv:"SPEC" ~doc)
  in
  let json =
    let doc = "Emit the diagnostics as a JSON report instead of text." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let werror =
    let doc = "Promote warnings to errors (the exit status then reflects them)." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let list_rules =
    let doc =
      "Print the FC rule catalog and exit (with $(b,--json), the machine-readable catalog of \
       every namespace)."
    in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let topology =
    let doc =
      "IP topology the scenario's monitors sit on: $(b,none) (every message observable) or \
       $(b,t2) (the OpenSPARC T2 interconnect). Enables rules FC013/FC022/FC023 and makes the \
       ambiguity rules respect observability."
    in
    Arg.(value & opt (enum [ ("none", `None); ("t2", `T2) ]) `None & info [ "topology" ] ~docv:"TOPO" ~doc)
  in
  let budget =
    let doc = "Trace-buffer budget in bits to prove feasibility against (rules FC020/FC021)." in
    Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"BITS" ~doc)
  in
  let path_limit =
    let doc =
      "Per-flow path-enumeration bound. Past it the analysis degrades (FC090, exit 3) instead \
       of running forever."
    in
    Arg.(value & opt int Scenario_model.default_path_limit & info [ "path-limit" ] ~docv:"N" ~doc)
  in
  let run specs json werror list_rules topology budget path_limit =
    if list_rules then print_string (if json then Check.catalog_json () else Check.catalog ())
    else begin
      if specs = [] then or_die (Error "no spec files given (try --list-rules for the catalog)");
      let topology =
        match topology with `None -> None | `T2 -> Some Flowtrace_soc.Scenario.t2_topology
      in
      let diags =
        List.concat_map (fun path -> Check.check_file ~path_limit ?topology ?budget path) specs
      in
      let diags = if werror then List.map Diagnostic.promote_warnings diags else diags in
      let diags = Diagnostic.sort_report diags in
      if json then print_endline (Diagnostic.render_json diags)
      else begin
        print_string (Diagnostic.render_all diags);
        Printf.printf "flowtrace check: %d scenario%s checked: %s\n" (List.length specs)
          (if List.length specs = 1 then "" else "s")
          (Diagnostic.summary diags)
      end;
      match Diagnostic.exit_code ~degraded:(Check.degraded diags) diags with
      | 0 -> ()
      | n -> exit n
    end
  in
  let doc =
    "Statically analyze whole scenarios for debuggability: cross-flow ambiguity, buffer \
     feasibility, observability dead zones, loss fragility (rules FC0xx)."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ specs $ json $ werror $ list_rules $ topology $ budget $ path_limit)

let stats_cmd =
  let file =
    (* a [string] conv, not [file]: a missing path must reach [or_die]'s
       one-line exit-1 error, not cmdliner's usage failure (exit 124) *)
    let doc = "Telemetry file recorded with $(b,--telemetry) (JSONL format)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run file =
    match Flowtrace_telemetry.Summary.load_jsonl file with
    | Error m -> or_die (Error m)
    | Ok [] -> or_die (Error (Printf.sprintf "%s:1: telemetry file contains no events" file))
    | Ok events ->
        Format.printf "%a@."
          Flowtrace_telemetry.Summary.pp
          (Flowtrace_telemetry.Summary.of_events events)
  in
  let doc = "Replay a recorded telemetry file into per-phase timing and counter tables." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ file)

let mine_cmd =
  let open Flowtrace_analysis in
  let open Flowtrace_mining in
  let parse_spec_or_die path =
    try Spec_parser.parse_file path with
    | Spec_parser.Parse_error e ->
        or_die (Error (Printf.sprintf "%s:%d: %s" path e.Spec_parser.line e.Spec_parser.message))
    | Sys_error m -> or_die (Error m)
  in
  let trace_files =
    let doc = "Packet trace file to mine (repeatable; each file is one monitor log)." in
    Arg.(value & opt_all string [] & info [ "trace-file" ] ~docv:"FILE" ~doc)
  in
  let support =
    let doc =
      "Minimum fraction of a flow's episodes a kept path must explain, in [0,1]. The default \
       0 trusts every observed sequence; raise it on lossy traces to shed noise."
    in
    Arg.(value & opt float Miner.default_config.Miner.support & info [ "support" ] ~docv:"F" ~doc)
  in
  let min_count =
    let doc = "Absolute evidence floor: paths observed fewer than $(docv) times are noise." in
    Arg.(value & opt int Miner.default_config.Miner.min_count & info [ "min-count" ] ~docv:"N" ~doc)
  in
  let catalog =
    let doc =
      "Message catalog: a flow spec whose message declarations supply widths, endpoints, \
       beats and subgroups for mined messages (the monitor-configuration knowledge a trace \
       cannot carry). Without it, widths default and endpoints are majority-voted."
    in
    Arg.(value & opt (some string) None & info [ "catalog" ] ~docv:"SPEC" ~doc)
  in
  let default_width =
    let doc = "Width assumed for messages absent from the catalog." in
    Arg.(
      value
      & opt int Miner.default_config.Miner.default_width
      & info [ "default-width" ] ~docv:"BITS" ~doc)
  in
  let score_against =
    let doc =
      "Ground-truth flow spec to score the mined flows against (edge- and path-level \
       precision/recall, matched by flow name)."
    in
    Arg.(value & opt (some string) None & info [ "score-against" ] ~docv:"SPEC" ~doc)
  in
  let emit_spec =
    let doc = "Write the mined flows as a .flow spec to $(docv) ($(b,-) for stdout)." in
    Arg.(value & opt (some string) None & info [ "emit-spec" ] ~docv:"FILE" ~doc)
  in
  let json =
    let doc = "Emit the full mining report (flows, provenance, score, diagnostics) as JSON." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let werror =
    let doc = "Promote warnings (dropped paths/flows) to errors." in
    Arg.(value & flag & info [ "werror" ] ~doc)
  in
  let recover =
    let doc = "Skip malformed trace lines (within an error budget) instead of dying." in
    Arg.(value & flag & info [ "recover" ] ~doc)
  in
  let list_rules =
    let doc =
      "Print the MN rule catalog and exit (with $(b,--json), the machine-readable catalog of \
       every namespace)."
    in
    Arg.(value & flag & info [ "list-rules" ] ~doc)
  in
  let run trace_files support min_count catalog default_width score_against emit_spec json
      werror recover list_rules tel =
    if list_rules then
      print_string (if json then Check.catalog_json () else Mn.catalog ())
    else begin
      if trace_files = [] then
        or_die (Error "no trace files given (--trace-file; --list-rules for the catalog)");
      with_telemetry tel @@ fun () ->
      let catalog =
        match catalog with
        | None -> []
        | Some path ->
            List.concat_map (fun (f : Flow.t) -> f.Flow.messages) (parse_spec_or_die path)
      in
      let config =
        { Miner.support; min_count; default_width; path_limit = Miner.default_config.Miner.path_limit }
      in
      let traces = List.map (load_trace_or_die ~recover) trace_files in
      let file = String.concat "," trace_files in
      let result =
        try Miner.mine ~config ~catalog ~file traces
        with Invalid_argument m -> or_die (Error m)
      in
      let score =
        Option.map
          (fun path ->
            let truth = parse_spec_or_die path in
            Score.score ~truth (List.map (fun m -> m.Miner.m_flow) result.Miner.r_flows))
          score_against
      in
      (match emit_spec with
      | None -> ()
      | Some "-" -> print_string (Miner.spec_text result)
      | Some path ->
          let oc = open_out path in
          output_string oc (Miner.spec_text result);
          close_out oc);
      let diags =
        if werror then List.map Diagnostic.promote_warnings result.Miner.r_diags
        else result.Miner.r_diags
      in
      if json then
        print_endline
          (Json.to_string_pretty (Miner.to_json ?score:(Option.map Score.to_json score) result))
      else begin
        List.iter
          (fun m ->
            Printf.printf "mined %s: %d states, %d messages, %d path%s (%d episodes, %d absorbed) [%s]\n"
              m.Miner.m_flow.Flow.name (Flow.n_states m.Miner.m_flow)
              (Flow.n_messages m.Miner.m_flow) (List.length m.Miner.m_kept)
              (if List.length m.Miner.m_kept = 1 then "" else "s")
              m.Miner.m_episodes m.Miner.m_absorbed m.Miner.m_fingerprint)
          result.Miner.r_flows;
        Option.iter (fun s -> print_string (Score.render s)) score;
        print_string (Diagnostic.render_all diags);
        Printf.printf "flowtrace mine: %d flow%s from %d episodes: %s\n"
          (List.length result.Miner.r_flows)
          (if List.length result.Miner.r_flows = 1 then "" else "s")
          result.Miner.r_episodes (Diagnostic.summary diags)
      end;
      match Diagnostic.exit_code ~degraded:(Miner.degraded result.Miner.r_diags) diags with
      | 0 -> ()
      | n -> exit n
    end
  in
  let doc =
    "Mine candidate flow specifications from packet traces (frequent-subsequence inference \
     with support thresholds; rules MN0xx). The mined spec feeds back into $(b,lint), \
     $(b,check) and $(b,select) — the closed specification loop."
  in
  Cmd.v (Cmd.info "mine" ~doc)
    Term.(
      const run $ trace_files $ support $ min_count $ catalog $ default_width $ score_against
      $ emit_spec $ json $ werror $ recover $ list_rules $ telemetry_arg)

let serve_cmd =
  let module Server = Flowtrace_service.Server in
  let socket_arg =
    let doc = "Unix-domain socket path to listen on." in
    Arg.(value & opt string Server.default.Server.socket & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let state_dir_arg =
    let doc =
      "Persist every open session to crash-safe journals under $(docv) (created if missing). \
       A daemon restarted with $(b,--resume) reopens them and answers with the same bytes an \
       uninterrupted daemon would have."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let shards_arg =
    let doc = "Session-table shards; each shard is served by its own worker domain." in
    Arg.(value & opt int Server.default.Server.shards & info [ "shards" ] ~docv:"N" ~doc)
  in
  let max_inflight_arg =
    let doc =
      "Admission cap: session requests past this many in flight are answered $(b,busy) (exit \
       field 3) instead of queueing without bound."
    in
    Arg.(value & opt int Server.default.Server.max_inflight & info [ "max-inflight" ] ~docv:"N" ~doc)
  in
  let serve_retries_arg =
    let doc = "Supervised retry bound per request (retries are delayed by deterministic backoff)." in
    Arg.(value & opt int Server.default.Server.retries & info [ "retries" ] ~docv:"N" ~doc)
  in
  let chaos_arg =
    let doc =
      "Honor per-request $(b,chaos) fields (injected faults and delays) — the deterministic \
       fault-injection mode the chaos harness drives. Never enable in production."
    in
    Arg.(value & flag & info [ "chaos" ] ~doc)
  in
  let serve_resume_arg =
    let doc = "Reload the sessions persisted under $(b,--state-dir)." in
    Arg.(value & flag & info [ "resume" ] ~doc)
  in
  let queue_grace_arg =
    let doc =
      "Shed session requests that waited longer than $(docv) seconds in a shard queue \
       (answered $(b,busy)). Default: no shedding by age."
    in
    Arg.(value & opt (some float) None & info [ "queue-grace" ] ~docv:"SEC" ~doc)
  in
  let run socket state_dir shards max_inflight retries chaos resume queue_grace tel =
    with_telemetry tel @@ fun () ->
    (match state_dir with
    | Some d when not (Sys.file_exists d) -> (
        try Unix.mkdir d 0o755
        with Unix.Unix_error (e, _, _) ->
          or_die (Error (Printf.sprintf "cannot create %s: %s" d (Unix.error_message e))))
    | _ -> ());
    let cfg =
      {
        Server.default with
        Server.socket;
        state_dir;
        shards;
        max_inflight;
        retries;
        chaos;
        resume;
        queue_grace;
      }
    in
    match
      Server.run
        ~ready:(fun () -> Printf.eprintf "flowtraced: listening on %s\n%!" socket)
        ~on_diags:(fun ds ->
          if ds <> [] then
            Printf.eprintf "%s%!" (Flowtrace_analysis.Diagnostic.render_all ds))
        cfg
    with
    | () -> ()
    | exception Unix.Unix_error (Unix.EADDRINUSE, _, _) ->
        or_die
          (Error
             (Printf.sprintf
                "cannot serve on %s: another daemon is already listening there (shut it down \
                 first, or use a different --socket)"
                socket))
    | exception Unix.Unix_error (e, _, arg) ->
        or_die
          (Error
             (Printf.sprintf "cannot serve on %s: %s%s" socket (Unix.error_message e)
                (if arg = "" then "" else " (" ^ arg ^ ")")))
  in
  let doc =
    "Run the trace-analysis daemon: a long-lived multi-tenant service over a Unix socket \
     speaking newline-delimited JSON (ops: open-session, select, localize, mine, status, \
     health, close, ping, shutdown)."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ state_dir_arg $ shards_arg $ max_inflight_arg $ serve_retries_arg
      $ chaos_arg $ serve_resume_arg $ queue_grace_arg $ telemetry_arg)

let call_cmd =
  let socket_arg =
    let doc = "Unix-domain socket the daemon listens on." in
    Arg.(
      value
      & opt string Flowtrace_service.Server.default.Flowtrace_service.Server.socket
      & info [ "socket" ] ~docv:"PATH" ~doc)
  in
  let requests_arg =
    let doc =
      "Request lines (JSON objects) to send, one response printed per request. With no \
       REQUEST arguments, lines are read from standard input in lockstep."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"REQUEST" ~doc)
  in
  let wait_arg =
    let doc = "Seconds to keep retrying the initial connect (covers daemon start-up races)." in
    Arg.(value & opt float 5.0 & info [ "wait" ] ~docv:"SEC" ~doc)
  in
  let run socket requests wait =
    let deadline = Unix.gettimeofday () +. wait in
    let rec connect () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Unix.gettimeofday () < deadline ->
          Unix.close fd;
          Unix.sleepf 0.05;
          connect ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
          Unix.close fd;
          or_die
            (Error
               (Printf.sprintf
                  "no daemon is listening on %s (no socket file); start one with 'flowtrace \
                   serve --socket %s'"
                  socket socket))
      | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
          Unix.close fd;
          or_die
            (Error
               (Printf.sprintf
                  "connection refused on %s: the socket file exists but no daemon is \
                   accepting — likely a stale socket left by a crashed daemon; restart \
                   'flowtrace serve' (it clears stale sockets on startup)"
                  socket))
      | exception Unix.Unix_error (e, _, _) ->
          Unix.close fd;
          or_die
            (Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e)))
    in
    let fd = connect () in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let saw_error = ref false and saw_degraded = ref false in
    let send line =
      output_string oc line;
      output_char oc '\n';
      flush oc;
      match input_line ic with
      | resp -> (
          print_endline resp;
          let module Json = Flowtrace_analysis.Json in
          match Json.parse resp with
          | Ok j -> (
              match Option.bind (Json.member "exit" j) Json.to_int_opt with
              | Some 0 | None -> ()
              | Some 3 -> saw_degraded := true
              | Some _ -> saw_error := true)
          | Error _ -> saw_error := true)
      | exception End_of_file -> or_die (Error "daemon closed the connection")
    in
    (match requests with
    | [] -> ( try
        while true do
          send (input_line stdin)
        done
      with End_of_file -> ())
    | requests -> List.iter send requests);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if !saw_error then exit 1 else if !saw_degraded then exit 3
  in
  let doc =
    "Send request lines to a running $(b,flowtrace serve) daemon and print each response \
     (exit 0 when all ok, 3 when any response was degraded/busy, 1 on any error)."
  in
  Cmd.v (Cmd.info "call" ~doc) Term.(const run $ socket_arg $ requests_arg $ wait_arg)

let fsck_cmd =
  let module Fsck = Flowtrace_service.Fsck in
  let state_dir_arg =
    let doc = "The daemon state directory to check (the $(b,serve --state-dir) value)." in
    Arg.(required & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let repair_arg =
    let doc =
      "Heal what can be proven safe: sweep stale $(b,*.tmp) files, compact sessions \
       recovered from a damaged tail back to sealed files, and quarantine corrupt files as \
       $(b,*.quarantine) (a rename — nothing that could carry evidence is deleted)."
    in
    Arg.(value & flag & info [ "repair" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the report as a single JSON object." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run dir repair json =
    let report = if repair then Fsck.repair dir else Fsck.scan dir in
    if json then print_endline (Flowtrace_analysis.Json.to_string (Fsck.to_json report))
    else print_string (Fsck.render report);
    exit (Fsck.exit_code report)
  in
  let doc =
    "Check (and with $(b,--repair), heal) a daemon state directory: classify every session \
     file as intact, recovered or corrupt, report stale temp files and quarantined damage \
     with RT diagnostics, exit 0 clean / 1 hard damage / 3 recovered-or-repaired."
  in
  Cmd.v (Cmd.info "fsck" ~doc) Term.(const run $ state_dir_arg $ repair_arg $ json_arg)

let scenarios_cmd =
  let run () =
    let open Flowtrace_soc in
    List.iter
      (fun sc ->
        let inter = Scenario.interleave sc in
        Format.printf "%s: flows %s@." sc.Scenario.name
          (String.concat ", " sc.Scenario.flow_names);
        Format.printf "  %a@." Interleave.pp inter;
        Format.printf "  messages: %s@."
          (String.concat ", " (List.map Message.to_string (Scenario.messages sc))))
      Scenario.all
  in
  let doc = "Show the built-in OpenSPARC T2 usage scenarios." in
  Cmd.v (Cmd.info "scenarios" ~doc) Term.(const run $ const ())

let () =
  let doc = "application-level hardware trace message selection" in
  let info = Cmd.info "flowtrace" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info
       [ select_cmd; interleave_cmd; localize_cmd; explain_cmd; lint_cmd; check_cmd; mine_cmd; simulate_cmd; debug_cmd; dot_cmd; tables_cmd; scenarios_cmd; stats_cmd; serve_cmd; call_cmd; fsck_cmd ]))
