bin/tables.ml: Array Flowtrace_experiments List Printf Registry String Sys Table_render
