bin/tables.mli:
