bin/flowtrace.mli:
