(* Print the reproduced tables/figures; with arguments, only those ids. *)

open Flowtrace_experiments

let () =
  let ids = match Array.to_list Sys.argv with _ :: rest when rest <> [] -> rest | _ -> Registry.ids in
  List.iter
    (fun id ->
      match Registry.find id with
      | Some e -> List.iter Table_render.print (e.Registry.run ())
      | None ->
          Printf.eprintf "unknown experiment %s; available: %s\n" id (String.concat " " Registry.ids);
          exit 1)
    ids
