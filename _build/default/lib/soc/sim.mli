(** The transaction-level SoC simulator.

    Flow instances execute their specification DAGs directly: firing a
    transition emits the labeling message as a {!Packet.t} between the
    declared IPs, with payload fields produced by platform semantics (see
    {!T2}). State advances atomically at fire time, so the chronological
    packet log of a run is by construction a path of the interleaved flow
    of the participating instances — flow-level localization can consume
    simulator traces directly.

    The Atom mutex is enforced operationally: an instance fires only while
    every other live instance is outside its atomic states; if the only
    atomic holders are stuck (a message was dropped inside an atomic
    section), waiters are declared deadlocked.

    Bug injection hooks in as packet mutators ({!add_mutator}): a mutator
    may rewrite payload fields, redirect a packet, or swallow it ([None]),
    stranding the instance — the hang symptom. *)

open Flowtrace_core

type channel = {
  ch_src : string;
  ch_dst : string;
  ch_latency : int;
  mutable ch_traffic : int;
  mutable ch_busy_until : int;  (** links serialize: one packet in flight *)
}
type failure = { f_cycle : int; f_ip : string; f_flow : string; f_desc : string }

(** A mutator's decision about an outgoing packet. *)
type action =
  | Deliver of Packet.t  (** possibly rewritten *)
  | Swallow  (** lost inside the buggy IP: the instance hangs *)
  | Replay of Packet.t  (** delivered twice (QED-style duplication) *)
  | Stall of Packet.t * int  (** delivered after extra delay cycles *)

type config = { seed : int; max_cycles : int; mem_size : int }

val default_config : config

type t

(** One executing flow instance. *)
type instance = {
  i_flow : Flow.t;
  i_index : int;
  i_start : int;
  i_env : (string, int) Hashtbl.t;  (** instance-local variables *)
  i_rng : Rng.t;  (** private stream so bugs perturb only their instance *)
  mutable i_state : string;
  mutable i_done : bool;
  mutable i_stuck : bool;
}

type event = Fire of instance

(** Platform semantics: payload generation for outgoing messages,
    receiver-side validity checks, and flow-control gating ([gate] false
    means the message cannot be sent yet — the instance retries; a
    depleted credit pool backpressures its flows). *)
type semantics = {
  payload : t -> instance -> Message.t -> (string * int) list;
  on_deliver : t -> instance -> Packet.t -> string option;
  gate : t -> instance -> Message.t -> bool;
}

val create : ?config:config -> unit -> t

(** [add_channel t ~src ~dst ~latency] declares a point-to-point link; its
    latency adds to the inter-message delay of flows crossing it. *)
val add_channel : t -> src:string -> dst:string -> latency:int -> unit

val channel : t -> src:string -> dst:string -> channel option

(** Mutators run in registration order on every emitted packet. *)
val add_mutator : t -> (t -> Packet.t -> action) -> unit

val env_get : instance -> string -> int
val env_set : instance -> string -> int -> unit

(** Platform scratch state (interrupt tables, credit pools, ...). *)
val state_get : t -> string -> int
val state_set : t -> string -> int -> unit

(** Record a failure observed by an IP (e.g. ["FAIL: Bad Trap"]). *)
val fail : t -> ip:string -> flow:string -> desc:string -> unit

(** The global PIO memory model. *)
val memory : t -> int array

(** [add_instance t ~flow ~index ~start ~env] enrolls a legally indexed
    instance starting at cycle [start]. Raises [Invalid_argument] on a
    duplicate (flow, index). *)
val add_instance :
  t -> flow:Flow.t -> index:int -> start:int -> env:(string * int) list -> instance

(** Run to completion (or [max_cycles]). Deterministic given the seed. *)
val run : semantics -> t -> unit

type outcome = {
  packets : Packet.t list;  (** chronological monitor log *)
  completed : (string * int) list;
  hung : (string * int) list;  (** instances that never reached a stop state *)
  failures : failure list;
  end_cycle : int;
}

val outcome : t -> outcome
