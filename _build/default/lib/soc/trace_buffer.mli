(** The on-chip trace buffer model.

    A circular buffer of [depth] entries, [width] bits each, fed by the
    monitors: only messages in the {!Flowtrace_core.Select.result} are
    recorded; packed subgroups capture just their own bits of the parent
    message (marked partial). *)

open Flowtrace_core

type entry = {
  e_cycle : int;
  e_imsg : Indexed.t;
  e_bits : int;  (** bits captured for this occurrence *)
  e_partial : bool;  (** true when only packed subgroups were captured *)
}

type t

(** [create ~depth selection] sizes the buffer; entry width is the
    selection's buffer width. *)
val create : depth:int -> Select.result -> t

(** [record t p] appends the packet if its message is observable under the
    selection; wrap-around drops the oldest entry. *)
val record : t -> Packet.t -> unit

val record_all : t -> Packet.t list -> unit

(** Chronological retained entries. *)
val entries : t -> entry list

(** The observed indexed-message trace, as {!Flowtrace_core.Localize}
    consumes it. *)
val observed : t -> Indexed.t list

(** Whether wrap-around discarded history. *)
val wrapped : t -> bool

(** [(recorded, dropped)] counters. *)
val stats : t -> int * int
