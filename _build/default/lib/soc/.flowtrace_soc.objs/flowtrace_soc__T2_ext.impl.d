lib/soc/t2_ext.ml: Array Flow Flowtrace_core Interleave List Message Packet Rng Sim T2
