lib/soc/t2.mli: Flow Flowtrace_core Message Rng Sim
