lib/soc/scenario.mli: Flow Flowtrace_core Interleave Message Packet Sim
