lib/soc/trace_buffer.ml: Flowtrace_core Indexed List Message Packet Packing Select String
