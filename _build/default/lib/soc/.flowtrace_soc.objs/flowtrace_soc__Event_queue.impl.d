lib/soc/event_queue.ml: Array
