lib/soc/scenario.ml: Flow Flowtrace_core Hashtbl Interleave List Message Printf Rng Sim String T2
