lib/soc/trace_io.mli: Packet
