lib/soc/event_queue.mli:
