lib/soc/trace_buffer.mli: Flowtrace_core Indexed Packet Select
