lib/soc/trace_io.ml: List Packet Printf String
