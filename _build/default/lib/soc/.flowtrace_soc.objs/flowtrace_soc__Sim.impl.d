lib/soc/sim.ml: Array Event_queue Flow Flowtrace_core Hashtbl List Message Option Packet Printf Rng String
