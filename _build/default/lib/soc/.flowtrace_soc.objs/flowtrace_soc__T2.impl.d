lib/soc/t2.ml: Array Flow Flowtrace_core Hashtbl List Message Packet Printf Rng Sim String
