lib/soc/t2_ext.mli: Flow Flowtrace_core Interleave Packet Rng Sim
