lib/soc/packet.mli: Flowtrace_core Indexed
