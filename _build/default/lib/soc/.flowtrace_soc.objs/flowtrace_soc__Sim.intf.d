lib/soc/sim.mli: Flow Flowtrace_core Hashtbl Message Packet Rng
