lib/soc/packet.ml: Flowtrace_core Indexed List Printf String
