(* An observed inter-IP transaction: one flow message instance with its
   payload fields, as seen by a monitor at the IP interface. *)

open Flowtrace_core

type t = {
  cycle : int;
  flow : string;
  inst : int;  (* flow instance index — the hardware tag *)
  msg : string;
  src : string;
  dst : string;
  fields : (string * int) list;
}

let indexed p = Indexed.make p.msg p.inst

let field p name = List.assoc_opt name p.fields

let field_exn p name =
  match field p name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Packet.field_exn: %s has no field %s" p.msg name)

let with_field p name v = { p with fields = (name, v) :: List.remove_assoc name p.fields }

let to_string p =
  Printf.sprintf "[%d] %d:%s %s->%s {%s}" p.cycle p.inst p.msg p.src p.dst
    (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) p.fields))
