(* Extension flows beyond the paper's five: the DMA read and DMA write
   paths through PIU -> DMU -> SIU, the other traffic class the fc1
   regression environment exercises. Kept separate from {!T2.flows} so the
   paper's 16-message inventory (Table 5) is untouched; a fourth,
   extension-only usage scenario combines them with PIO traffic. *)

open Flowtrace_core

let msg = Message.make
let sub = Message.subgroup

(* DMA read (5 states, 4 messages): PIU requests, DMU fetches via SIU. *)
let dmar =
  Flow.make ~name:"DMAR"
    ~states:[ "r_idle"; "r_req"; "r_mem"; "r_ret"; "r_done" ]
    ~initial:[ "r_idle" ] ~stop:[ "r_done" ] ~atomic:[ "r_ret" ]
    ~messages:
      [
        msg ~src:"PIU" ~dst:"DMU" "dmardreq" 13;
        msg ~src:"DMU" ~dst:"SIU" "dmasiird" 11;
        msg ~src:"SIU" ~dst:"DMU" ~subgroups:[ sub "dmatag" 4; sub "dmadata" 8 ] "dmardata" 21;
        msg ~src:"DMU" ~dst:"PIU" "dmapiurd" 15;
      ]
    ~transitions:
      [
        Flow.transition "r_idle" "dmardreq" "r_req";
        Flow.transition "r_req" "dmasiird" "r_mem";
        Flow.transition "r_mem" "dmardata" "r_ret";
        Flow.transition "r_ret" "dmapiurd" "r_done";
      ]
    ()

(* DMA write (4 states, 3 messages): posted write with acknowledge. *)
let dmaw =
  Flow.make ~name:"DMAW"
    ~states:[ "w_idle"; "w_req"; "w_commit"; "w_done" ]
    ~initial:[ "w_idle" ] ~stop:[ "w_done" ]
    ~messages:
      [
        msg ~src:"PIU" ~dst:"DMU" ~subgroups:[ sub "dmawaddr" 10; sub "dmawdata" 8 ] "dmawrreq" 19;
        msg ~src:"DMU" ~dst:"SIU" "dmasiiwr" 14;
        msg ~src:"DMU" ~dst:"PIU" "dmawrack" 3;
      ]
    ~transitions:
      [
        Flow.transition "w_idle" "dmawrreq" "w_req";
        Flow.transition "w_req" "dmasiiwr" "w_commit";
        Flow.transition "w_commit" "dmawrack" "w_done";
      ]
    ()

let flows = [ dmar; dmaw ]

(* Payload semantics: delegate to the T2 scoreboard for the paper's
   messages, handle the DMA vocabulary here. DMA addresses live in their
   own memory region so they never collide with PIO traffic. *)
let payload t inst (m : Message.t) =
  let g = Sim.env_get inst in
  let mem = Sim.memory t in
  let mask = Array.length mem - 1 in
  match m.Message.name with
  | "dmardreq" -> [ ("addr", g "addr") ]
  | "dmasiird" ->
      Sim.env_set inst "expected" mem.(g "addr" land mask);
      [ ("addr", g "addr") ]
  | "dmardata" -> [ ("data", mem.(g "addr" land mask)); ("tag", g "addr" land 0xF) ]
  | "dmapiurd" -> [ ("data", g "rdata") ]
  | "dmawrreq" -> [ ("addr", g "addr"); ("data", g "data") ]
  | "dmasiiwr" -> [ ("addr", g "wr_addr"); ("data", g "wr_data") ]
  | "dmawrack" -> [ ("ok", 1) ]
  | _ -> T2.semantics.Sim.payload t inst m

let on_deliver t inst (p : Packet.t) =
  let g = Sim.env_get inst in
  let s = Sim.env_set inst in
  let f = Packet.field_exn in
  let mem = Sim.memory t in
  let mask = Array.length mem - 1 in
  match p.Packet.msg with
  | "dmardreq" -> None
  | "dmasiird" -> None
  | "dmardata" ->
      s "rdata" (f p "data");
      None
  | "dmapiurd" ->
      if f p "data" <> g "expected" then Some "FAIL: DMA read returned wrong data" else None
  | "dmawrreq" ->
      s "wr_addr" (f p "addr");
      s "wr_data" (f p "data");
      None
  | "dmasiiwr" ->
      mem.(f p "addr" land mask) <- f p "data";
      None
  | "dmawrack" ->
      if mem.(g "addr" land mask) <> g "data" then Some "FAIL: DMA write did not commit"
      else None
  | _ -> T2.semantics.Sim.on_deliver t inst p

let semantics = { Sim.payload; on_deliver; gate = T2.semantics.Sim.gate }

let fresh_env ~rng ~slot (flow : Flow.t) =
  match flow.Flow.name with
  | "DMAR" -> [ ("addr", 768 + (slot land 127)) ]
  | "DMAW" -> [ ("addr", 640 + (slot land 127)); ("data", Rng.int rng 256) ]
  | _ -> T2.fresh_env ~rng ~slot flow

(* The extension usage scenario: DMA traffic racing PIO traffic through
   the same DMU. Analysis-scale instance set, globally uniquely indexed. *)
let scenario_flows = [ T2.pior; T2.piow; dmar; dmaw ]

let analysis_instances () =
  List.mapi (fun i f -> { Interleave.flow = f; index = i + 1 }) scenario_flows

let interleave () = Interleave.make (analysis_instances ())

let run_analysis ?(seed = 1) ?(mutators = []) () =
  let sim = Sim.create ~config:{ Sim.default_config with seed } () in
  T2.install sim;
  List.iter (Sim.add_mutator sim) mutators;
  let env_rng = Rng.create (seed + 104729) in
  List.iter
    (fun (inst : Interleave.instance) ->
      let env = fresh_env ~rng:env_rng ~slot:inst.Interleave.index inst.Interleave.flow in
      ignore
        (Sim.add_instance sim ~flow:inst.Interleave.flow ~index:inst.Interleave.index
           ~start:(Rng.int env_rng 30) ~env))
    (analysis_instances ());
  Sim.run semantics sim;
  Sim.outcome sim
