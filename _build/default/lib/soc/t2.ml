(* The OpenSPARC T2 platform model: IP topology (Figure 3), the five
   system-level flows of Table 1 — PIO Read, PIO Write, NCU Upstream, NCU
   Downstream, Mondo Interrupt — and their payload semantics.

   Message names follow the ones the paper itself prints (Table 7):
   [reqtot], [grant], [dmusiidata] with its [cputhreadid] sub-field,
   [siincu], [mondoacknack], [piowcrd]. State/message counts per flow match
   Table 1's annotations: PIOR (6,5), PIOW (3,2), NCUU (4,3), NCUD (3,2),
   Mon (6,5). The five flows share exactly one message ([siincu], the
   SIU-to-NCU interface register used by both the Mondo and the upstream
   path), leaving 16 distinct messages — the m1..m16 of Table 5.

   Payload semantics implement a scoreboard in the style of the fc1_all_T2
   regression testbench: PIO reads check returned data against the memory
   image, PIO writes check commit and credit return, Mondo interrupts check
   CPU/thread routing, upstream/downstream requests check decode fidelity.
   A violated check records a failure such as "FAIL: Bad Trap" — the bug
   symptoms the debug sessions of Section 5.6 start from. *)

open Flowtrace_core

(* --- IPs and interconnect ---------------------------------------------- *)

(* (name, hierarchical depth from top — Table 2's "bug depth") *)
let ips =
  [ ("SPC", 2); ("CCX", 2); ("NCU", 3); ("DMU", 4); ("SIU", 3); ("PIU", 4); ("MCU", 3) ]

let ip_depth name =
  match List.assoc_opt name ips with Some d -> d | None -> invalid_arg ("T2.ip_depth: " ^ name)

let channels =
  [
    ("NCU", "DMU", 8);
    ("DMU", "NCU", 8);
    ("DMU", "PIU", 6);
    ("PIU", "DMU", 6);
    ("DMU", "SIU", 4);
    ("SIU", "DMU", 4);
    ("SIU", "NCU", 5);
    ("NCU", "CCX", 3);
    ("CCX", "NCU", 3);
    ("NCU", "MCU", 7);
    ("MCU", "NCU", 7);
  ]

let install_channels sim =
  List.iter (fun (src, dst, latency) -> Sim.add_channel sim ~src ~dst ~latency) channels

(* --- flows -------------------------------------------------------------- *)

let msg = Message.make
let sub = Message.subgroup

(* PIO Read (6 states, 5 messages): NCU -> DMU -> PIU and back. *)
let pior =
  Flow.make ~name:"PIOR"
    ~states:[ "p_idle"; "p_req"; "p_fwd"; "p_data"; "p_ret"; "p_done" ]
    ~initial:[ "p_idle" ] ~stop:[ "p_done" ] ~atomic:[ "p_data" ]
    ~messages:
      [
        msg ~src:"NCU" ~dst:"DMU" ~subgroups:[ sub "pioaddrlo" 4 ] "piordreq" 11;
        msg ~src:"DMU" ~dst:"PIU" "dmupiord" 7;
        msg ~src:"PIU" ~dst:"DMU" ~subgroups:[ sub "rddata" 8; sub "rdtag" 4; sub "rdvld" 2 ] "piurdata" 17;
        msg ~src:"DMU" ~dst:"NCU" ~subgroups:[ sub "rdstat" 3 ] "dmuncurd" 13;
        msg ~src:"NCU" ~dst:"DMU" "piordack" 3;
      ]
    ~transitions:
      [
        Flow.transition "p_idle" "piordreq" "p_req";
        Flow.transition "p_req" "dmupiord" "p_fwd";
        Flow.transition "p_fwd" "piurdata" "p_data";
        Flow.transition "p_data" "dmuncurd" "p_ret";
        Flow.transition "p_ret" "piordack" "p_done";
      ]
    ()

(* PIO Write (3 states, 2 messages): posted write plus credit return. *)
let piow =
  Flow.make ~name:"PIOW"
    ~states:[ "w_idle"; "w_req"; "w_done" ]
    ~initial:[ "w_idle" ] ~stop:[ "w_done" ]
    ~messages:
      [
        msg ~src:"NCU" ~dst:"DMU" ~subgroups:[ sub "pioaddr" 10; sub "piodata" 8; sub "piocrd" 3 ] "piowreq" 19;
        msg ~src:"DMU" ~dst:"NCU" "piowcrd" 5;
      ]
    ~transitions:
      [ Flow.transition "w_idle" "piowreq" "w_req"; Flow.transition "w_req" "piowcrd" "w_done" ]
    ()

(* NCU Upstream (4 states, 3 messages): SIU -> NCU -> CCX. *)
let ncuu =
  Flow.make ~name:"NCUU"
    ~states:[ "u_idle"; "u_req"; "u_fwd"; "u_done" ]
    ~initial:[ "u_idle" ] ~stop:[ "u_done" ]
    ~messages:
      [
        msg ~src:"SIU" ~dst:"NCU" ~subgroups:[ sub "ncutag" 6 ] "siincu" 15;
        msg ~src:"NCU" ~dst:"CCX" "ncucpx" 11;
        msg ~src:"CCX" ~dst:"NCU" "cpxack" 3;
      ]
    ~transitions:
      [
        Flow.transition "u_idle" "siincu" "u_req";
        Flow.transition "u_req" "ncucpx" "u_fwd";
        Flow.transition "u_fwd" "cpxack" "u_done";
      ]
    ()

(* NCU Downstream (3 states, 2 messages): CCX -> NCU -> MCU. *)
let ncud =
  Flow.make ~name:"NCUD"
    ~states:[ "d_idle"; "d_req"; "d_done" ]
    ~initial:[ "d_idle" ] ~stop:[ "d_done" ]
    ~messages:
      [ msg ~src:"CCX" ~dst:"NCU" "cpxncu" 11; msg ~src:"NCU" ~dst:"MCU" "ncumcu" 9 ]
    ~transitions:
      [ Flow.transition "d_idle" "cpxncu" "d_req"; Flow.transition "d_req" "ncumcu" "d_done" ]
    ()

(* Mondo Interrupt (6 states, 5 messages): DMU -> SIU -> NCU -> DMU. *)
let mondo =
  Flow.make ~name:"Mon"
    ~states:[ "m_idle"; "m_req"; "m_gnt"; "m_data"; "m_fwd"; "m_done" ]
    ~initial:[ "m_idle" ] ~stop:[ "m_done" ] ~atomic:[ "m_data" ]
    ~messages:
      [
        msg ~src:"DMU" ~dst:"SIU" "reqtot" 5;
        msg ~src:"SIU" ~dst:"DMU" "grant" 2;
        msg ~src:"DMU" ~dst:"SIU"
          ~subgroups:[ sub "cputhreadid" 6; sub "mondoaddr" 8; sub "mondovld" 1 ]
          "dmusiidata" 20;
        msg ~src:"SIU" ~dst:"NCU" ~subgroups:[ sub "ncutag" 6 ] "siincu" 15;
        msg ~src:"NCU" ~dst:"DMU" "mondoacknack" 3;
      ]
    ~transitions:
      [
        Flow.transition "m_idle" "reqtot" "m_req";
        Flow.transition "m_req" "grant" "m_gnt";
        Flow.transition "m_gnt" "dmusiidata" "m_data";
        Flow.transition "m_data" "siincu" "m_fwd";
        Flow.transition "m_fwd" "mondoacknack" "m_done";
      ]
    ()

let flows = [ pior; piow; ncuu; ncud; mondo ]

let flow_by_name name =
  match List.find_opt (fun f -> String.equal f.Flow.name name) flows with
  | Some f -> f
  | None -> invalid_arg ("T2.flow_by_name: " ^ name)

(* All 16 distinct messages, in a stable order (Table 5's m1..m16). *)
let all_messages =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun f ->
      List.filter_map
        (fun (m : Message.t) ->
          if Hashtbl.mem seen m.Message.name then None
          else begin
            Hashtbl.replace seen m.Message.name ();
            Some m
          end)
        f.Flow.messages)
    flows

(* --- payload semantics --------------------------------------------------- *)

let key_of ~cpuid ~threadid = (cpuid lsl 3) lor threadid

(* Deterministic non-uniform memory image so reads from a wrong address
   almost surely return wrong data. *)
let init_memory mem =
  Array.iteri (fun i _ -> mem.(i) <- (i * 2654435761) land 0xFF) mem

(* PIO write credits: NCU holds a finite pool; a request consumes one at
   send time and the completion's piowcrd returns it. A depleted pool
   backpressures further writes — the credit mechanism the paper's
   [piowcrd] message exists to track. *)
let write_credit_pool = 3

let credit_key = "ncu_wr_credits"

let gate t _inst (m : Message.t) =
  match m.Message.name with
  | "piowreq" -> Sim.state_get t credit_key > 0
  | _ -> true

let payload t inst (m : Message.t) =
  let g = Sim.env_get inst in
  let mem = Sim.memory t in
  let addr = g "addr" land (Array.length mem - 1) in
  match m.Message.name with
  | "piordreq" -> [ ("addr", g "addr") ]
  | "dmupiord" ->
      (* capture the architecturally expected read value at request time *)
      Sim.env_set inst "expected" mem.(addr);
      [ ("addr", g "addr") ]
  | "piurdata" ->
      let served = g "served_addr" land (Array.length mem - 1) in
      [ ("data", mem.(served)); ("tag", g "served_addr" land 0xF) ]
  | "dmuncurd" -> [ ("data", g "rdata") ]
  | "piordack" -> [ ("crd", g "crd") ]
  | "piowreq" ->
      (* consume a write credit at send time *)
      Sim.state_set t credit_key (Sim.state_get t credit_key - 1);
      [ ("addr", g "addr"); ("data", g "data"); ("crd", g "crd") ]
  | "piowcrd" -> [ ("crd", g "wr_crd") ]
  | "reqtot" -> [ ("cnt", 1) ]
  | "grant" -> [ ("gnt", 1) ]
  | "dmusiidata" ->
      [ ("cpuid", g "cpuid"); ("threadid", g "threadid"); ("payload", g "mondo_payload") ]
  | "siincu" ->
      if String.equal inst.Sim.i_flow.Flow.name "Mon" then [ ("payload", g "fwd_payload") ]
      else [ ("payload", g "payload") ]
  | "mondoacknack" -> [ ("ack", (if g "rx_key_set" = 1 then 1 else 0)) ]
  | "ncucpx" -> [ ("payload", g "rx_payload") ]
  | "cpxack" -> [ ("ack", 1) ]
  | "cpxncu" -> [ ("cmd", g "cmd") ]
  | "ncumcu" -> [ ("cmd", g "rx_cmd") ]
  | other -> invalid_arg ("T2.payload: unknown message " ^ other)

let on_deliver t inst (p : Packet.t) =
  let g = Sim.env_get inst in
  let s = Sim.env_set inst in
  let f = Packet.field_exn in
  let mem = Sim.memory t in
  let mask = Array.length mem - 1 in
  match p.Packet.msg with
  | "piordreq" -> None
  | "dmupiord" ->
      s "served_addr" (f p "addr");
      None
  | "piurdata" ->
      s "rdata" (f p "data");
      None
  | "dmuncurd" ->
      if f p "data" <> g "expected" then
        Some
          (Printf.sprintf "FAIL: Bad Trap — PIO read %d:%d returned %d, expected %d"
             p.Packet.inst (g "addr") (f p "data") (g "expected"))
      else None
  | "piordack" -> if f p "crd" <> g "crd" then Some "FAIL: PIO read credit mismatch" else None
  | "piowreq" ->
      (* the write commits inside DMU *)
      mem.(f p "addr" land mask) <- f p "data";
      s "wr_crd" (f p "crd");
      None
  | "piowcrd" ->
      Sim.state_set t credit_key (Sim.state_get t credit_key + 1);
      if f p "crd" <> g "crd" then Some "FAIL: PIO write credit mismatch"
      else if mem.(g "addr" land mask) <> g "data" then
        Some (Printf.sprintf "FAIL: PIO write to %d did not commit" (g "addr"))
      else None
  | "reqtot" -> None
  | "grant" -> None
  | "dmusiidata" ->
      s "fwd_payload" (key_of ~cpuid:(f p "cpuid") ~threadid:(f p "threadid"));
      None
  | "siincu" ->
      if String.equal p.Packet.flow "Mon" then begin
        let expected = key_of ~cpuid:(g "cpuid") ~threadid:(g "threadid") in
        let got = f p "payload" in
        Sim.state_set t (Printf.sprintf "int:%d" got) 1;
        s "rx_key_set" 1;
        if got <> expected then
          Some
            (Printf.sprintf "FAIL: Mondo interrupt routed to CPU/Thread %d, expected %d" got
               expected)
        else None
      end
      else begin
        s "rx_payload" (f p "payload");
        None
      end
  | "mondoacknack" ->
      if f p "ack" <> 1 then Some "FAIL: Mondo interrupt nacked after service" else None
  | "ncucpx" ->
      if f p "payload" <> g "payload" then
        Some "FAIL: malformed CPU request from NCU to Cache Crossbar"
      else None
  | "cpxack" -> None
  | "cpxncu" ->
      s "rx_cmd" (f p "cmd");
      None
  | "ncumcu" ->
      if f p "cmd" <> g "cmd" then
        Some "FAIL: erroneous decoding of CPU request in memory controller"
      else None
  | other -> invalid_arg ("T2.on_deliver: unknown message " ^ other)

let semantics = { Sim.payload; on_deliver; gate }

(* Instance-local environment for a fresh instance of [flow], drawn from
   [rng]. The [slot] spreads PIO addresses so concurrent instances never
   collide on memory locations (collisions would be false sharing, not a
   bug symptom). *)
let fresh_env ~rng ~slot (flow : Flow.t) =
  match flow.Flow.name with
  | "PIOR" -> [ ("addr", 512 + (slot land 255)); ("crd", 1 + Rng.int rng 15) ]
  | "PIOW" ->
      [
        ("addr", 256 + (slot land 255));
        ("data", Rng.int rng 256);
        ("crd", 1 + Rng.int rng 15);
      ]
  | "Mon" ->
      [
        ("cpuid", Rng.int rng 8);
        ("threadid", Rng.int rng 8);
        ("mondo_payload", Rng.int rng 256);
      ]
  | "NCUU" -> [ ("payload", Rng.int rng 4096) ]
  | "NCUD" -> [ ("cmd", Rng.int rng 1024) ]
  | other -> invalid_arg ("T2.fresh_env: unknown flow " ^ other)

let install sim =
  install_channels sim;
  Sim.state_set sim credit_key write_credit_pool;
  init_memory (Sim.memory sim)
