(* Binary-heap event queue for the discrete-event simulator. Ties on time
   break by insertion order, keeping runs fully deterministic. *)

type 'a entry = { at : int; seq : int; payload : 'a }

type 'a t = { mutable heap : 'a entry array; mutable size : int; mutable next_seq : int }

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size
let is_empty q = q.size = 0

let before a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let swap q i j =
  let tmp = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- tmp

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < q.size && before q.heap.(l) q.heap.(!smallest) then smallest := l;
  if r < q.size && before q.heap.(r) q.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~at payload =
  if at < 0 then invalid_arg "Event_queue.push: negative time";
  if q.size = Array.length q.heap then begin
    let cap = max 16 (2 * q.size) in
    let heap = Array.make cap { at = 0; seq = 0; payload } in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- { at; seq = q.next_seq; payload };
  q.next_seq <- q.next_seq + 1;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.at, top.payload)
  end

let peek_time q = if q.size = 0 then None else Some q.heap.(0).at
