(** Deterministic binary-heap event queue.

    Events at the same time pop in insertion order, so simulator runs are
    exactly reproducible. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** [push q ~at payload] schedules an event. Raises [Invalid_argument] on a
    negative time. *)
val push : 'a t -> at:int -> 'a -> unit

(** [pop q] removes the earliest event (earliest time, then earliest
    insertion). *)
val pop : 'a t -> (int * 'a) option

(** Time of the earliest event without removing it. *)
val peek_time : 'a t -> int option
