(* Text serialization of packet traces, so monitor logs can be saved,
   diffed and replayed through the CLI. One packet per line:

     <cycle> <flow> <inst> <msg> <src> <dst> k=v,k=v,...

   '#' starts a comment; a lone '-' stands for an empty field list. *)

type error = { line : int; message : string }

exception Parse_error of error

let err line fmt = Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let print_packet (p : Packet.t) =
  let fields =
    match p.Packet.fields with
    | [] -> "-"
    | fs -> String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) fs)
  in
  Printf.sprintf "%d %s %d %s %s %s %s" p.Packet.cycle p.Packet.flow p.Packet.inst p.Packet.msg
    p.Packet.src p.Packet.dst fields

let print packets =
  "# flowtrace trace v1\n" ^ String.concat "\n" (List.map print_packet packets) ^ "\n"

let parse_fields lineno = function
  | "-" -> []
  | s ->
      List.map
        (fun kv ->
          match String.split_on_char '=' kv with
          | [ k; v ] -> (
              match int_of_string_opt v with
              | Some v -> (k, v)
              | None -> err lineno "bad field value %S" kv)
          | _ -> err lineno "bad field %S" kv)
        (String.split_on_char ',' s)

let parse_line lineno line =
  match List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim line)) with
  | [] -> None
  | [ cycle; flow; inst; msg; src; dst; fields ] -> (
      match (int_of_string_opt cycle, int_of_string_opt inst) with
      | Some cycle, Some inst ->
          Some
            {
              Packet.cycle;
              flow;
              inst;
              msg;
              src;
              dst;
              fields = parse_fields lineno fields;
            }
      | _ -> err lineno "bad cycle or instance number")
  | _ -> err lineno "expected 7 fields"

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat
    (List.mapi
       (fun i line ->
         let lineno = i + 1 in
         let line =
           match String.index_opt line '#' with Some j -> String.sub line 0 j | None -> line
         in
         match parse_line lineno line with None -> [] | Some p -> [ p ])
       lines)

let save path packets =
  let oc = open_out path in
  output_string oc (print packets);
  close_out oc

let load path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text
