(** Text serialization of packet traces.

    One packet per line — [cycle flow inst msg src dst k=v,k=v] — with
    ['#'] comments; round-trips through {!print}/{!parse}. Lets monitor
    logs be saved, diffed and replayed through the CLI. *)

type error = { line : int; message : string }

exception Parse_error of error

val print_packet : Packet.t -> string
val print : Packet.t list -> string

(** Raises {!Parse_error} with a line number on malformed input. *)
val parse : string -> Packet.t list

val save : string -> Packet.t list -> unit
val load : string -> Packet.t list
