(* Gate-level netlists: the substrate the SRR and PageRank baselines
   operate on. Nets are dense integer ids; every net is driven either by a
   primary input, a gate, or a flip-flop output. *)

type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Mux  (* fanin = [sel; a; b] *)
  | Ff_q  (* flip-flop output; fanin = [d] *)

type node = { kind : kind; fanin : int list; name : string }

type t = {
  nodes : node array;
  inputs : int list;
  outputs : int list;
  ffs : int list;  (* net ids of Ff_q nodes *)
  signals : (string * int list) list;  (* named multi-bit signal groups *)
  by_name : (string, int) Hashtbl.t;
}

let n_nets t = Array.length t.nodes
let node t id = t.nodes.(id)
let name t id = t.nodes.(id).name
let is_ff t id = t.nodes.(id).kind = Ff_q
let ff_d t id = match t.nodes.(id) with { kind = Ff_q; fanin = [ d ]; _ } -> d | _ -> invalid_arg "Netlist.ff_d"

let find t nm = Hashtbl.find_opt t.by_name nm

let find_exn t nm =
  match find t nm with
  | Some id -> id
  | None -> invalid_arg (Printf.sprintf "Netlist.find_exn: no net named %s" nm)

let signal t nm = List.assoc_opt nm t.signals

let signal_exn t nm =
  match signal t nm with
  | Some nets -> nets
  | None -> invalid_arg (Printf.sprintf "Netlist.signal_exn: no signal named %s" nm)

(* Topological order of the combinational graph. FF outputs, inputs and
   constants are sources; an FF's D input is a sink. Used by the
   simulator's per-cycle evaluation. *)
let comb_topo t =
  let n = n_nets t in
  let indeg = Array.make n 0 in
  let succ = Array.make n [] in
  Array.iteri
    (fun id nd ->
      match nd.kind with
      | Input | Const _ | Ff_q -> ()
      | _ ->
          List.iter
            (fun src ->
              succ.(src) <- id :: succ.(src);
              indeg.(id) <- indeg.(id) + 1)
            nd.fanin)
    t.nodes;
  let queue = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id queue) indeg;
  let order = ref [] in
  let count = ref 0 in
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    order := id :: !order;
    incr count;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      succ.(id)
  done;
  if !count <> n then failwith "Netlist.comb_topo: combinational cycle";
  List.rev !order

(* Transitive fanin cone of a net, stopping at sequential/primary
   boundaries (FF outputs, inputs, constants are included but not
   traversed through). *)
let fanin_cone t id =
  let seen = Hashtbl.create 64 in
  let rec go id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      match t.nodes.(id).kind with
      | Input | Const _ | Ff_q -> ()
      | _ -> List.iter go t.nodes.(id).fanin
    end
  in
  (match t.nodes.(id).kind with Ff_q -> go (ff_d t id) | _ -> List.iter go t.nodes.(id).fanin);
  Hashtbl.fold (fun k () acc -> k :: acc) seen []

(* FFs whose value feeds (combinationally) into the D input of [ff]. *)
let ff_dependencies t ff =
  List.filter (fun id -> is_ff t id) (fanin_cone t ff)

let stats t =
  let gates =
    Array.fold_left
      (fun acc nd -> match nd.kind with Input | Const _ | Ff_q -> acc | _ -> acc + 1)
      0 t.nodes
  in
  (List.length t.inputs, gates, List.length t.ffs)

let pp ppf t =
  let ins, gates, ffs = stats t in
  Format.fprintf ppf "netlist: %d inputs, %d gates, %d FFs, %d signals" ins gates ffs
    (List.length t.signals)
