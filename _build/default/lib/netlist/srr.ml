(* The State Restoration Ratio: restored-plus-traced state bits over traced
   state bits, measured on a simulated window. SRR-based selection methods
   pick the flip-flop set maximizing this ratio. *)

open Flowtrace_core

type result = {
  traced : int list;  (* FF q-nets that were traced *)
  cycles : int;
  traced_bits : int;
  known_state_bits : int;  (* known (FF, cycle) pairs incl. traced *)
  total_state_bits : int;
  srr : float;  (* known / traced *)
  state_coverage : float;  (* known / total *)
}

let evaluate ?(rng = Rng.create 1) netlist ~traced ~cycles =
  if traced = [] then invalid_arg "Srr.evaluate: empty traced set";
  List.iter
    (fun net ->
      if not (Netlist.is_ff netlist net) then
        invalid_arg (Printf.sprintf "Srr.evaluate: net %d is not a flip-flop" net))
    traced;
  let truth = Sim.run ~rng netlist ~cycles in
  let grid = Restore.from_trace netlist ~traced ~truth in
  let ffs = netlist.Netlist.ffs in
  let known = Restore.known_count grid ffs in
  let traced_bits = List.length traced * cycles in
  let total = List.length ffs * cycles in
  {
    traced;
    cycles;
    traced_bits;
    known_state_bits = known;
    total_state_bits = total;
    srr = float_of_int known /. float_of_int traced_bits;
    state_coverage = float_of_int known /. float_of_int total;
  }
