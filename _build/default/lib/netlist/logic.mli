(** Three-valued logic (0/1/X) for gate evaluation and state restoration. *)

type v = Zero | One | X

val to_char : v -> char
val of_bool : bool -> v
val equal : v -> v -> bool
val is_known : v -> bool
val not_ : v -> v
val and2 : v -> v -> v
val or2 : v -> v -> v
val xor2 : v -> v -> v
val and_n : v list -> v
val or_n : v list -> v
val xor_n : v list -> v

(** [mux sel a b] is [a] when [sel=0], [b] when [sel=1]; with an unknown
    select the output is known only when both data inputs agree. *)
val mux : v -> v -> v -> v

val pp : Format.formatter -> v -> unit
