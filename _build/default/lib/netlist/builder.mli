(** Imperative construction of {!Netlist.t} values.

    Net ids are returned as they are created. Flip-flops may be declared
    before their D logic exists ({!ff_forward} + {!connect}) so register
    banks with feedback are easy to express. [finish] validates fanins and
    checks the combinational graph is acyclic. *)

type t

val create : unit -> t

(** [input b name] declares a primary input. *)
val input : t -> string -> int

(** [const b v] is a constant driver. *)
val const : t -> bool -> int

val buf : t -> ?name:string -> int -> int
val not_ : t -> ?name:string -> int -> int
val and_ : t -> ?name:string -> int list -> int
val or_ : t -> ?name:string -> int list -> int
val nand : t -> ?name:string -> int list -> int
val nor : t -> ?name:string -> int list -> int
val xor : t -> ?name:string -> int list -> int

(** [mux b ~sel ~a ~b] selects [a] when [sel=0], [b] when [sel=1]. *)
val mux : t -> ?name:string -> sel:int -> a:int -> b:int -> unit -> int

(** [ff b d] is a flip-flop with D net [d]; returns the Q net. *)
val ff : t -> ?name:string -> int -> int

(** [ff_forward b ()] allocates a flip-flop whose D is {!connect}ed
    later. *)
val ff_forward : t -> ?name:string -> unit -> int

(** [connect b q d] sets the D net of forward-declared flip-flop [q]. *)
val connect : t -> int -> int -> unit

(** [output b id] marks a net as a primary output. *)
val output : t -> int -> unit

(** [register_signal b name nets] groups nets (LSB first) under a signal
    name, the unit the Table 4 comparison reports on. *)
val register_signal : t -> string -> int list -> unit

(** [reg_bank b name width] declares [width] forward flip-flops named
    [name_0 … name_{w-1}], registers them as a signal, and returns their Q
    nets LSB first. *)
val reg_bank : t -> string -> int -> int list

(** [input_bus b name width] declares an input bus registered as a
    signal. *)
val input_bus : t -> string -> int -> int list

(** Freeze into an immutable netlist. Raises [Invalid_argument] on dangling
    fanins and [Failure] on combinational cycles. *)
val finish : t -> Netlist.t
