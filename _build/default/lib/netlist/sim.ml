(* Two-valued cycle-accurate simulation: the ground truth against which
   state restoration is scored. *)

open Flowtrace_core

let eval_gate (nd : Netlist.node) (value : int -> bool) =
  match nd.Netlist.kind with
  | Netlist.Input | Netlist.Ff_q -> invalid_arg "Sim.eval_gate: not a gate"
  | Netlist.Const v -> v
  | Netlist.Buf -> value (List.hd nd.Netlist.fanin)
  | Netlist.Not -> not (value (List.hd nd.Netlist.fanin))
  | Netlist.And -> List.for_all value nd.Netlist.fanin
  | Netlist.Or -> List.exists value nd.Netlist.fanin
  | Netlist.Nand -> not (List.for_all value nd.Netlist.fanin)
  | Netlist.Nor -> not (List.exists value nd.Netlist.fanin)
  | Netlist.Xor -> List.fold_left (fun acc f -> acc <> value f) false nd.Netlist.fanin
  | Netlist.Mux -> (
      match nd.Netlist.fanin with
      | [ sel; a; b ] -> if value sel then value b else value a
      | _ -> invalid_arg "Sim: malformed mux")

(* One combinational evaluation: given FF state and input values, compute
   every net. [ff_state] maps FF q-net id to its current value. *)
let eval_cycle netlist ~topo ~ff_state ~input_value =
  let n = Netlist.n_nets netlist in
  let values = Array.make n false in
  List.iter
    (fun id ->
      let nd = Netlist.node netlist id in
      match nd.Netlist.kind with
      | Netlist.Input -> values.(id) <- input_value id
      | Netlist.Ff_q -> values.(id) <- ff_state id
      | _ -> values.(id) <- eval_gate nd (fun f -> values.(f)))
    topo;
  values

(* Run [cycles] cycles from the all-zero FF state with pseudo-random
   primary inputs. Returns the value of every net at every cycle. *)
let run ?(rng = Rng.create 1) netlist ~cycles =
  let topo = Netlist.comb_topo netlist in
  let n = Netlist.n_nets netlist in
  let state = Array.make n false in
  let history = Array.make cycles [||] in
  for c = 0 to cycles - 1 do
    let inputs = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace inputs id (Rng.bool rng)) netlist.Netlist.inputs;
    let values =
      eval_cycle netlist ~topo
        ~ff_state:(fun id -> state.(id))
        ~input_value:(fun id -> Hashtbl.find inputs id)
    in
    history.(c) <- values;
    (* clock edge: every FF captures its D value *)
    List.iter (fun q -> state.(q) <- values.(Netlist.ff_d netlist q)) netlist.Netlist.ffs
  done;
  history

(* Convenience: read a signal group's value at a cycle as an integer,
   LSB first. *)
let signal_value netlist history ~cycle ~signal =
  let nets = Netlist.signal_exn netlist signal in
  List.fold_left
    (fun (acc, bit) net -> ((acc lor if history.(cycle).(net) then 1 lsl bit else 0), bit + 1))
    (0, 0) nets
  |> fst
