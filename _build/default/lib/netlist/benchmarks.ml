(* ISCAS89-scale benchmark circuits. Prior trace-signal-selection work is
   demonstrated on circuits of this size (tens to hundreds of flip-flops);
   the paper's Section 1 argues the OpenSPARC T2 is orders of magnitude
   beyond them and that high SRR at this scale says nothing about
   application-level message observability. These circuits give the
   baselines a home turf to be measured on. *)

(* The ISCAS89 s27 benchmark, written out gate for gate: 4 inputs, 3
   flip-flops (G5, G6, G7), 10 gates, output G17. *)
let s27 () =
  let b = Builder.create () in
  let g0 = Builder.input b "G0" in
  let g1 = Builder.input b "G1" in
  let g2 = Builder.input b "G2" in
  let g3 = Builder.input b "G3" in
  let g5 = Builder.ff_forward b ~name:"G5" () in
  let g6 = Builder.ff_forward b ~name:"G6" () in
  let g7 = Builder.ff_forward b ~name:"G7" () in
  let g14 = Builder.not_ b ~name:"G14" g0 in
  let g8 = Builder.and_ b ~name:"G8" [ g14; g6 ] in
  let g12 = Builder.nor b ~name:"G12" [ g1; g7 ] in
  let g15 = Builder.or_ b ~name:"G15" [ g12; g8 ] in
  let g16 = Builder.or_ b ~name:"G16" [ g3; g8 ] in
  let g9 = Builder.nand b ~name:"G9" [ g16; g15 ] in
  let g11 = Builder.nor b ~name:"G11" [ g5; g9 ] in
  let g10 = Builder.nor b ~name:"G10" [ g14; g11 ] in
  let g13 = Builder.nor b ~name:"G13" [ g2; g12 ] in
  let g17 = Builder.not_ b ~name:"G17" g11 in
  Builder.connect b g5 g10;
  Builder.connect b g6 g11;
  Builder.connect b g7 g13;
  Builder.output b g17;
  Builder.finish b

(* A [stages]-deep, [width]-wide register pipeline with a little mixing
   logic per stage — the classic high-SRR structure. *)
let pipeline ~stages ~width () =
  if stages < 1 || width < 1 then invalid_arg "Benchmarks.pipeline";
  let b = Builder.create () in
  let inputs = Builder.input_bus b "din" width in
  let _ =
    List.fold_left
      (fun (prev, stage) () ->
        let regs = Builder.reg_bank b (Printf.sprintf "st%d" stage) width in
        let prev_arr = Array.of_list prev in
        List.iteri
          (fun i q ->
            let mix =
              if i = 0 then prev_arr.(0)
              else Builder.xor b [ prev_arr.(i); prev_arr.(i - 1) ]
            in
            Builder.connect b q mix)
          regs;
        (regs, stage + 1))
      (inputs, 0)
      (List.init stages (fun _ -> ()))
    |> fun (last, _) -> List.iter (Builder.output b) last
  in
  Builder.finish b

(* A maximal-length-ish LFSR: every bit restorable from any other over
   time — the structure on which SRR metrics shine brightest. *)
let lfsr ~width () =
  if width < 2 then invalid_arg "Benchmarks.lfsr";
  let b = Builder.create () in
  let qs = Builder.reg_bank b "lfsr" width in
  let arr = Array.of_list qs in
  let fb = Builder.xor b [ arr.(width - 1); arr.(width / 2) ] in
  Array.iteri (fun i q -> Builder.connect b q (if i = 0 then fb else arr.(i - 1))) arr;
  Builder.output b arr.(width - 1);
  Builder.finish b

(* [n] independent [width]-bit counters sharing one enable. *)
let counter_bank ~n ~width () =
  if n < 1 || width < 1 then invalid_arg "Benchmarks.counter_bank";
  let b = Builder.create () in
  let enable = Builder.input b "enable" in
  for k = 0 to n - 1 do
    let qs = Builder.reg_bank b (Printf.sprintf "cnt%d" k) width in
    let _ =
      List.fold_left
        (fun carry q ->
          Builder.connect b q (Builder.xor b [ q; carry ]);
          Builder.and_ b [ q; carry ])
        enable qs
    in
    ()
  done;
  (match Builder.reg_bank b "done_flag" 1 with
  | [ q ] ->
      Builder.connect b q enable;
      Builder.output b q
  | _ -> assert false);
  Builder.finish b

(* The suite used by the scale experiment: name, circuit. *)
let suite () =
  [
    ("s27", s27 ());
    ("pipeline16x4", pipeline ~stages:16 ~width:4 ());
    ("lfsr32", lfsr ~width:32 ());
    ("counters8x8", counter_bank ~n:8 ~width:8 ());
  ]
