(** Two-valued cycle-accurate netlist simulation.

    Provides the ground-truth executions that state restoration
    ({!Restore}) is scored against, with deterministic pseudo-random
    primary inputs. *)

open Flowtrace_core

(** [run ~rng netlist ~cycles] simulates from the all-zero flip-flop state
    with random inputs; result.(c).(net) is the value of [net] during
    cycle [c] (flip-flop outputs hold their pre-edge value). *)
val run : ?rng:Rng.t -> Netlist.t -> cycles:int -> bool array array

(** [signal_value netlist history ~cycle ~signal] packs a signal group into
    an integer, LSB first. *)
val signal_value : Netlist.t -> bool array array -> cycle:int -> signal:string -> int
