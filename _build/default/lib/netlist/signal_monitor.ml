(* Signal-to-message monitors (the paper's Figure 4): the bridge between
   RTL-level signal activity and application-level flow messages.

   A monitor spec names the 1-bit trigger signal whose rising edge marks a
   message occurrence and the signal groups captured as its payload. Run
   over a simulation history the monitors produce the message stream the
   selection pipeline reasons about; run over a {!Restore.grid} they
   decide which occurrences a gate-level trace selection can actually
   *reconstruct* — the Section 1 experiment showing SRR-selected signals
   recover only a fraction of the messages use-case debugging needs. *)

type spec = {
  sm_message : string;  (* the flow message this monitor emits *)
  sm_trigger : string;  (* 1-bit signal whose rising edge marks an occurrence *)
  sm_payload : string list;  (* signal groups captured as the payload *)
}

type occurrence = { oc_cycle : int; oc_message : string; oc_payload : (string * int) list }

let spec ?(payload = []) ~message ~trigger () =
  { sm_message = message; sm_trigger = trigger; sm_payload = payload }

let trigger_net netlist s =
  match Netlist.signal netlist s.sm_trigger with
  | Some [ net ] -> net
  | Some _ -> invalid_arg (Printf.sprintf "Signal_monitor: trigger %s is not 1 bit" s.sm_trigger)
  | None -> (
      match Netlist.find netlist s.sm_trigger with
      | Some net -> net
      | None -> invalid_arg (Printf.sprintf "Signal_monitor: no signal %s" s.sm_trigger))

let group_value netlist history cycle group =
  List.fold_left
    (fun (acc, bit) net -> ((acc lor if history.(cycle).(net) then 1 lsl bit else 0), bit + 1))
    (0, 0) (Netlist.signal_exn netlist group)
  |> fst

(* All message occurrences in a simulation history, chronological.
   A rising edge needs a 0 at the previous cycle, so cycle 0 never
   triggers (the window starts mid-execution). *)
let observe netlist specs history =
  let cycles = Array.length history in
  let occs = ref [] in
  for c = 1 to cycles - 1 do
    List.iter
      (fun s ->
        let t = trigger_net netlist s in
        if history.(c).(t) && not (history.(c - 1).(t)) then
          occs :=
            {
              oc_cycle = c;
              oc_message = s.sm_message;
              oc_payload = List.map (fun g -> (g, group_value netlist history c g)) s.sm_payload;
            }
            :: !occs)
      specs
  done;
  List.rev !occs

(* Can the occurrence be reconstructed from a restoration grid? The
   debugger must (a) see the rising edge — the trigger bit known at both
   cycles — and (b) decode the payload — every payload bit known at the
   occurrence cycle. *)
let reconstructable netlist specs (grid : Restore.grid) (occ : occurrence) =
  match List.find_opt (fun s -> String.equal s.sm_message occ.oc_message) specs with
  | None -> false
  | Some s ->
      let t = trigger_net netlist s in
      let known cycle net = Logic.is_known grid.(cycle).(net) in
      occ.oc_cycle > 0
      && known occ.oc_cycle t
      && known (occ.oc_cycle - 1) t
      && List.for_all
           (fun g -> List.for_all (known occ.oc_cycle) (Netlist.signal_exn netlist g))
           s.sm_payload

(* The reconstruction ratio of a gate-level trace selection: simulate,
   restore from the traced FFs, and count the message occurrences the
   restored knowledge can decode. *)
let reconstruction_ratio netlist specs ~traced ~truth =
  let occs = observe netlist specs truth in
  if occs = [] then (0, 0, 0.0)
  else begin
    let grid = Restore.from_trace netlist ~traced ~truth in
    let ok = List.filter (reconstructable netlist specs grid) occs in
    let n = List.length occs and k = List.length ok in
    (k, n, float_of_int k /. float_of_int n)
  end
