(* Imperative netlist construction. Net ids are handed out sequentially;
   nodes live in a growable array so forward flip-flop declarations can be
   connected in O(1); [finish] freezes the arrays and checks
   well-formedness. *)

let placeholder = { Netlist.kind = Netlist.Input; fanin = []; name = "" }

type t = {
  mutable nodes : Netlist.node array;
  mutable count : int;
  mutable inputs : int list;
  mutable outputs : int list;
  mutable ffs : int list;
  mutable signals : (string * int list) list;
  by_name : (string, int) Hashtbl.t;
  mutable fresh : int;
}

let create () =
  {
    nodes = Array.make 64 placeholder;
    count = 0;
    inputs = [];
    outputs = [];
    ffs = [];
    signals = [];
    by_name = Hashtbl.create 64;
    fresh = 0;
  }

let fresh_name b prefix =
  b.fresh <- b.fresh + 1;
  Printf.sprintf "_%s%d" prefix b.fresh

let grow b =
  if b.count = Array.length b.nodes then begin
    let nodes = Array.make (2 * b.count) placeholder in
    Array.blit b.nodes 0 nodes 0 b.count;
    b.nodes <- nodes
  end

let add b kind fanin name =
  if Hashtbl.mem b.by_name name then
    invalid_arg (Printf.sprintf "Builder: duplicate net name %s" name);
  grow b;
  let id = b.count in
  b.nodes.(id) <- { Netlist.kind; fanin; name };
  b.count <- b.count + 1;
  Hashtbl.replace b.by_name name id;
  id

let input b name =
  let id = add b Netlist.Input [] name in
  b.inputs <- id :: b.inputs;
  id

let const b v = add b (Netlist.Const v) [] (fresh_name b (if v then "one" else "zero"))

let gate b kind ?name fanin =
  let name = match name with Some n -> n | None -> fresh_name b "n" in
  add b kind fanin name

let buf b ?name x = gate b Netlist.Buf ?name [ x ]
let not_ b ?name x = gate b Netlist.Not ?name [ x ]
let and_ b ?name xs = gate b Netlist.And ?name xs
let or_ b ?name xs = gate b Netlist.Or ?name xs
let nand b ?name xs = gate b Netlist.Nand ?name xs
let nor b ?name xs = gate b Netlist.Nor ?name xs
let xor b ?name xs = gate b Netlist.Xor ?name xs
let mux b ?name ~sel ~a ~b:data_b () = gate b Netlist.Mux ?name [ sel; a; data_b ]

let ff b ?name d =
  let name = match name with Some n -> n | None -> fresh_name b "ff" in
  let id = add b Netlist.Ff_q [ d ] name in
  b.ffs <- id :: b.ffs;
  id

(* A flip-flop whose D net does not exist yet; connect it later. *)
let ff_forward b ?name () =
  let name = match name with Some n -> n | None -> fresh_name b "ff" in
  let id = add b Netlist.Ff_q [ -1 ] name in
  b.ffs <- id :: b.ffs;
  id

let connect b q d =
  match b.nodes.(q).Netlist.kind with
  | Netlist.Ff_q -> b.nodes.(q) <- { (b.nodes.(q)) with Netlist.fanin = [ d ] }
  | _ -> invalid_arg "Builder.connect: not a flip-flop"

let output b id = b.outputs <- id :: b.outputs

let register_signal b name nets =
  if List.mem_assoc name b.signals then
    invalid_arg (Printf.sprintf "Builder: duplicate signal %s" name);
  b.signals <- (name, nets) :: b.signals

(* An n-bit register bank named [name]; bits are registered as a signal
   group and returned LSB first with D nets to be connected later. *)
let reg_bank b name width =
  let qs = List.init width (fun i -> ff_forward b ~name:(Printf.sprintf "%s_%d" name i) ()) in
  register_signal b name qs;
  qs

(* An n-bit input bus registered as a signal group, LSB first. *)
let input_bus b name width =
  let nets = List.init width (fun i -> input b (Printf.sprintf "%s_%d" name i)) in
  register_signal b name nets;
  nets

let finish b =
  let nodes = Array.sub b.nodes 0 b.count in
  Array.iteri
    (fun id nd ->
      List.iter
        (fun f ->
          if f < 0 || f >= Array.length nodes then
            invalid_arg
              (Printf.sprintf "Builder.finish: net %s (%d) has a dangling fanin (%d)"
                 nd.Netlist.name id f))
        nd.Netlist.fanin)
    nodes;
  let t =
    {
      Netlist.nodes;
      inputs = List.rev b.inputs;
      outputs = List.rev b.outputs;
      ffs = List.rev b.ffs;
      signals = List.rev b.signals;
      by_name = b.by_name;
    }
  in
  (* raises on combinational cycles *)
  ignore (Netlist.comb_topo t);
  t
