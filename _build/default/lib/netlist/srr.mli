(** State Restoration Ratio (SRR) measurement.

    SRR = (number of flip-flop state bits known after restoration,
    including the traced ones) / (number of traced state bits), evaluated
    over a simulated window with deterministic random inputs. The metric
    the gate-level baselines of Section 5.4 optimize. *)

open Flowtrace_core

type result = {
  traced : int list;
  cycles : int;
  traced_bits : int;
  known_state_bits : int;
  total_state_bits : int;
  srr : float;
  state_coverage : float;  (** known state bits / all state bits *)
}

(** [evaluate netlist ~traced ~cycles] simulates, restores from the traced
    flip-flops and scores. Raises [Invalid_argument] if [traced] is empty
    or contains a non-flip-flop net. *)
val evaluate : ?rng:Rng.t -> Netlist.t -> traced:int list -> cycles:int -> result
