lib/netlist/sim.ml: Array Flowtrace_core Hashtbl List Netlist Rng
