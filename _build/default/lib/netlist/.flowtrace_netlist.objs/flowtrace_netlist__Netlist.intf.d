lib/netlist/netlist.mli: Format Hashtbl
