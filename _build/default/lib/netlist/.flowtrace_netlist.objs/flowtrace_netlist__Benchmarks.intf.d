lib/netlist/benchmarks.mli: Netlist
