lib/netlist/signal_monitor.ml: Array List Logic Netlist Printf Restore String
