lib/netlist/sim.mli: Flowtrace_core Netlist Rng
