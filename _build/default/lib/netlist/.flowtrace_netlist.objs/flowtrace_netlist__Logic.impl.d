lib/netlist/logic.ml: Format List
