lib/netlist/builder.ml: Array Hashtbl List Netlist Printf
