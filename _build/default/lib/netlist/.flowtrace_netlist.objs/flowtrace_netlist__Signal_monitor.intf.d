lib/netlist/signal_monitor.mli: Netlist Restore
