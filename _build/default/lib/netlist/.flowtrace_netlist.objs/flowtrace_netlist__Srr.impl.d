lib/netlist/srr.ml: Flowtrace_core List Netlist Printf Restore Rng Sim
