lib/netlist/restore.ml: Array List Logic Netlist
