lib/netlist/benchmarks.ml: Array Builder List Printf
