lib/netlist/logic.mli: Format
