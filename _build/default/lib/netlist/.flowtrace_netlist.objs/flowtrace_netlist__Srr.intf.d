lib/netlist/srr.mli: Flowtrace_core Netlist Rng
