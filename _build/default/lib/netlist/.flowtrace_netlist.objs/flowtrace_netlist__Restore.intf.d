lib/netlist/restore.mli: Logic Netlist
