(* State restoration: given traced flip-flop values over a window of
   cycles, infer as many other state values as possible by forward
   propagation (3-valued gate evaluation) and backward justification
   (inverting gates whose output and all-but-one inputs are known),
   iterating across gates and cycles to a fixpoint.

   This is the engine behind the State Restoration Ratio metric that
   SRR-based selection methods such as SigSeT optimize. *)

open Logic

exception Contradiction of { cycle : int; net : int }

type grid = v array array (* [cycle].[net] *)

let make_grid ~cycles ~nets = Array.init cycles (fun _ -> Array.make nets X)

let set grid ~cycle ~net value changed =
  match grid.(cycle).(net) with
  | X ->
      if is_known value then begin
        grid.(cycle).(net) <- value;
        changed := true
      end
  | old -> if is_known value && not (equal old value) then raise (Contradiction { cycle; net })

(* Forward evaluation of one gate with 3-valued inputs. *)
let eval_fwd (nd : Netlist.node) (value : int -> v) =
  match nd.Netlist.kind with
  | Netlist.Input | Netlist.Ff_q -> X
  | Netlist.Const b -> of_bool b
  | Netlist.Buf -> value (List.hd nd.Netlist.fanin)
  | Netlist.Not -> not_ (value (List.hd nd.Netlist.fanin))
  | Netlist.And -> and_n (List.map value nd.Netlist.fanin)
  | Netlist.Or -> or_n (List.map value nd.Netlist.fanin)
  | Netlist.Nand -> not_ (and_n (List.map value nd.Netlist.fanin))
  | Netlist.Nor -> not_ (or_n (List.map value nd.Netlist.fanin))
  | Netlist.Xor -> xor_n (List.map value nd.Netlist.fanin)
  | Netlist.Mux -> (
      match nd.Netlist.fanin with
      | [ sel; a; b ] -> mux (value sel) (value a) (value b)
      | _ -> invalid_arg "Restore: malformed mux")

(* Backward justification: knowing the output (and some inputs), pin the
   remaining inputs when the gate function forces them. Returns a list of
   (net, value) implications. *)
let justify (nd : Netlist.node) out (value : int -> v) =
  let all_forced forced = List.map (fun f -> (f, forced)) nd.Netlist.fanin in
  let last_unknown target_when_rest rest_value =
    (* e.g. AND out=0: if all inputs but one are 1, the odd one out is 0 *)
    let unknowns = List.filter (fun f -> not (is_known (value f))) nd.Netlist.fanin in
    let rest_ok =
      List.for_all
        (fun f -> (not (is_known (value f))) || equal (value f) rest_value)
        nd.Netlist.fanin
    in
    match unknowns with [ u ] when rest_ok -> [ (u, target_when_rest) ] | _ -> []
  in
  match (nd.Netlist.kind, out) with
  | (Netlist.Input | Netlist.Ff_q | Netlist.Const _), _ -> []
  | _, X -> []
  | Netlist.Buf, v -> [ (List.hd nd.Netlist.fanin, v) ]
  | Netlist.Not, v -> [ (List.hd nd.Netlist.fanin, not_ v) ]
  | Netlist.And, One | Netlist.Nand, Zero -> all_forced One
  | Netlist.And, Zero | Netlist.Nand, One -> last_unknown Zero One
  | Netlist.Or, Zero | Netlist.Nor, One -> all_forced Zero
  | Netlist.Or, One | Netlist.Nor, Zero -> last_unknown One Zero
  | Netlist.Xor, v ->
      let unknowns = List.filter (fun f -> not (is_known (value f))) nd.Netlist.fanin in
      (match unknowns with
      | [ u ] ->
          let parity =
            List.fold_left
              (fun acc f -> if f = u then acc else xor2 acc (value f))
              Zero nd.Netlist.fanin
          in
          [ (u, xor2 v parity) ]
      | _ -> [])
  | Netlist.Mux, v -> (
      match nd.Netlist.fanin with
      | [ sel; a; b ] -> (
          match value sel with
          | Zero -> [ (a, v) ]
          | One -> [ (b, v) ]
          | X ->
              (* If one branch is known and disagrees with the output, the
                 select is pinned and the other branch carries the value. *)
              if is_known (value a) && not (equal (value a) v) then [ (sel, One); (b, v) ]
              else if is_known (value b) && not (equal (value b) v) then [ (sel, Zero); (a, v) ]
              else [])
      | _ -> invalid_arg "Restore: malformed mux")

let fixpoint netlist (grid : grid) =
  let cycles = Array.length grid in
  let topo = Netlist.comb_topo netlist in
  let rev_topo = List.rev topo in
  let changed = ref true in
  while !changed do
    changed := false;
    for c = 0 to cycles - 1 do
      let value net = grid.(c).(net) in
      (* forward: gates in topological order, plus FF q from previous d *)
      List.iter
        (fun id ->
          let nd = Netlist.node netlist id in
          match nd.Netlist.kind with
          | Netlist.Input -> ()
          | Netlist.Ff_q ->
              if c > 0 then set grid ~cycle:c ~net:id grid.(c - 1).(Netlist.ff_d netlist id) changed
          | _ -> set grid ~cycle:c ~net:id (eval_fwd nd value) changed)
        topo;
      (* backward: justify gate inputs in reverse topological order, plus
         FF d at the previous cycle from a known q here *)
      List.iter
        (fun id ->
          let nd = Netlist.node netlist id in
          match nd.Netlist.kind with
          | Netlist.Input -> ()
          | Netlist.Ff_q ->
              if c > 0 then set grid ~cycle:(c - 1) ~net:(Netlist.ff_d netlist id) grid.(c).(id) changed
          | _ ->
              List.iter
                (fun (net, v) -> set grid ~cycle:c ~net v changed)
                (justify nd grid.(c).(id) value))
        rev_topo
    done
  done

(* Restore from a trace of the given FF nets over the full window. The
   initial all-zero power-on state is NOT assumed known (matching the
   post-silicon setting where the window starts mid-execution). *)
let from_trace netlist ~traced ~truth =
  let cycles = Array.length truth in
  let grid = make_grid ~cycles ~nets:(Netlist.n_nets netlist) in
  for c = 0 to cycles - 1 do
    List.iter (fun net -> grid.(c).(net) <- of_bool truth.(c).(net)) traced
  done;
  fixpoint netlist grid;
  grid

let known_count grid nets =
  Array.fold_left
    (fun acc row -> acc + List.fold_left (fun a net -> if is_known row.(net) then a + 1 else a) 0 nets)
    0 grid

(* Every restored (known) value must agree with the simulation truth;
   violated only by a bug in the restoration rules. Exposed for tests. *)
let consistent_with_truth grid truth nets =
  let ok = ref true in
  Array.iteri
    (fun c row ->
      List.iter
        (fun net ->
          match row.(net) with
          | X -> ()
          | v -> if not (equal v (of_bool truth.(c).(net))) then ok := false)
        nets)
    grid;
  !ok
