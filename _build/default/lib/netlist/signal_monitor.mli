(** Signal-to-message monitors (the paper's Figure 4).

    Convert signal-level activity into application-level flow messages: a
    rising edge of the trigger signal marks one occurrence, and the named
    signal groups are captured as its payload. Over a {!Restore.grid} the
    same specs decide which occurrences a gate-level trace selection can
    reconstruct — the Section 1 experiment behind "existing signal
    selection techniques could reconstruct no more than 26% of required
    interface messages". *)

type spec = {
  sm_message : string;
  sm_trigger : string;  (** 1-bit signal whose rising edge marks an occurrence *)
  sm_payload : string list;  (** signal groups captured as payload *)
}

type occurrence = { oc_cycle : int; oc_message : string; oc_payload : (string * int) list }

val spec : ?payload:string list -> message:string -> trigger:string -> unit -> spec

(** [observe netlist specs history] extracts all message occurrences from
    a simulation history, chronological. Raises [Invalid_argument] for
    unknown or non-1-bit trigger signals. *)
val observe : Netlist.t -> spec list -> bool array array -> occurrence list

(** [reconstructable netlist specs grid occ]: the trigger edge is visible
    (trigger bit known at both cycles) and every payload bit is known at
    the occurrence cycle. *)
val reconstructable : Netlist.t -> spec list -> Restore.grid -> occurrence -> bool

(** [reconstruction_ratio netlist specs ~traced ~truth] is
    [(reconstructed, total, ratio)] for a traced FF set. *)
val reconstruction_ratio :
  Netlist.t -> spec list -> traced:int list -> truth:bool array array -> int * int * float
