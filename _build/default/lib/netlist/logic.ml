(* Three-valued logic for state restoration: 0, 1, or unknown (X).
   Forward propagation uses controlling values (an AND with any 0 input is
   0 even if other inputs are X); backward justification inverts gates when
   the output together with all-but-one inputs pins the remaining input. *)

type v = Zero | One | X

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'
let of_bool b = if b then One else Zero
let equal a b = a = b
let is_known = function X -> false | _ -> true

let not_ = function Zero -> One | One -> Zero | X -> X

let and2 a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | _ -> X

let or2 a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | _ -> X

let xor2 a b =
  match (a, b) with
  | X, _ | _, X -> X
  | One, One | Zero, Zero -> Zero
  | _ -> One

let and_n = List.fold_left and2 One
let or_n = List.fold_left or2 Zero
let xor_n = List.fold_left xor2 Zero

(* 2-to-1 multiplexer: sel=0 -> a, sel=1 -> b. When sel is X the output is
   known only if both data inputs agree. *)
let mux sel a b =
  match sel with Zero -> a | One -> b | X -> if is_known a && equal a b then a else X

let pp ppf v = Format.pp_print_char ppf (to_char v)
