(** State restoration over a trace window.

    Given the values of a traced subset of flip-flops across a window of
    cycles, infer other state values by forward 3-valued propagation and
    backward justification, iterated across gates, flip-flops and cycles to
    a fixpoint. This is the engine behind the State Restoration Ratio (SRR)
    metric optimized by the paper's comparison baselines ([2], [7]). *)

(** Raised when an implied value conflicts with an already-known one —
    impossible for traces produced by a consistent simulation. *)
exception Contradiction of { cycle : int; net : int }

(** [grid.(cycle).(net)] is the restored knowledge about a net. *)
type grid = Logic.v array array

val make_grid : cycles:int -> nets:int -> grid

(** [fixpoint netlist grid] propagates knowledge in place until nothing
    more can be inferred. *)
val fixpoint : Netlist.t -> grid -> unit

(** [from_trace netlist ~traced ~truth] seeds a grid with the truth values
    of the [traced] nets at every cycle and runs {!fixpoint}. The power-on
    state is not assumed known (the window starts mid-execution, as in
    post-silicon debug). *)
val from_trace : Netlist.t -> traced:int list -> truth:bool array array -> grid

(** [known_count grid nets] counts known (net, cycle) pairs among [nets]. *)
val known_count : grid -> int list -> int

(** [consistent_with_truth grid truth nets] checks every known value
    against the simulation — a soundness oracle for tests. *)
val consistent_with_truth : grid -> bool array array -> int list -> bool
