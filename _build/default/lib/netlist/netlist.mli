(** Gate-level netlists: the substrate for the SRR (SigSeT) and PageRank
    (PRNet) baseline signal-selection methods of Section 5.4.

    Nets carry dense integer ids. Every net is driven by a primary input, a
    constant, a combinational gate, or a flip-flop output ([Ff_q], whose
    single fanin is its D net). Build instances with {!Builder}. *)

type kind =
  | Input
  | Const of bool
  | Buf
  | Not
  | And
  | Or
  | Nand
  | Nor
  | Xor
  | Mux  (** fanin = [[sel; a; b]] *)
  | Ff_q  (** flip-flop output; fanin = [[d]] *)

type node = { kind : kind; fanin : int list; name : string }

type t = {
  nodes : node array;
  inputs : int list;
  outputs : int list;
  ffs : int list;
  signals : (string * int list) list;  (** named multi-bit signal groups *)
  by_name : (string, int) Hashtbl.t;
}

val n_nets : t -> int
val node : t -> int -> node
val name : t -> int -> string
val is_ff : t -> int -> bool

(** [ff_d t q] is the D net of flip-flop output [q]. *)
val ff_d : t -> int -> int

val find : t -> string -> int option
val find_exn : t -> string -> int

(** [signal t name] is the net group registered under [name] (LSB first). *)
val signal : t -> string -> int list option

val signal_exn : t -> string -> int list

(** Topological order of the combinational graph (FF outputs, inputs and
    constants are sources). Raises [Failure] on a combinational cycle. *)
val comb_topo : t -> int list

(** Transitive combinational fanin cone of a net; includes but does not
    traverse through FF outputs, inputs and constants. For an FF output the
    cone of its D net is returned. *)
val fanin_cone : t -> int -> int list

(** FFs feeding combinationally into the D input of [ff]. *)
val ff_dependencies : t -> int -> int list

(** [(inputs, gates, ffs)] counts. *)
val stats : t -> int * int * int

val pp : Format.formatter -> t -> unit
