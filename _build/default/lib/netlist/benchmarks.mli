(** ISCAS89-scale benchmark circuits — the scale prior trace-signal
    selection work is demonstrated on (Section 1's contrast with the
    OpenSPARC T2). *)

(** The ISCAS89 s27 benchmark, gate for gate (3 flip-flops). *)
val s27 : unit -> Netlist.t

(** A register pipeline with per-stage mixing — classic high-SRR
    structure. *)
val pipeline : stages:int -> width:int -> unit -> Netlist.t

(** A linear feedback shift register. *)
val lfsr : width:int -> unit -> Netlist.t

(** [n] independent counters sharing one enable. *)
val counter_bank : n:int -> width:int -> unit -> Netlist.t

(** The named suite used by the scale experiment. *)
val suite : unit -> (string * Netlist.t) list
