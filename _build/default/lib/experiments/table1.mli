(** Table 1: usage scenarios, participating flows, IPs and root-cause
    counts. *)

(** Annotation "(#states, #messages)" for a T2 flow. *)
val flow_annotation : string -> string

val run : unit -> Table_render.t
