(* Table 1: usage scenarios, participating flows (annotated with state and
   message counts), participating IPs, and potential root causes. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_debug

let flow_annotation name =
  let f = T2.flow_by_name name in
  Printf.sprintf "(%d,%d)" (Flow.n_states f) (Flow.n_messages f)

let run () =
  let header =
    "Usage scenario"
    :: List.map (fun f -> Printf.sprintf "%s %s" f.Flow.name (flow_annotation f.Flow.name)) T2.flows
    @ [ "Participating IPs"; "Root causes" ]
  in
  let rows =
    List.map
      (fun sc ->
        sc.Scenario.name
        :: List.map
             (fun (f : Flow.t) ->
               if List.mem f.Flow.name sc.Scenario.flow_names then "yes" else "-")
             T2.flows
        @ [
            String.concat "," (Scenario.participating_ips sc);
            string_of_int (Cause.count sc.Scenario.id);
          ])
      Scenario.all
  in
  Table_render.make ~title:"Table 1: usage scenarios and participating flows"
    ~notes:
      [
        "flows annotated with (#states, #messages); 'Participating IPs' derived from messages";
      ]
    ~header rows
