(** Table 6: diagnosed root causes and debugging statistics for the five
    case studies. *)

(** The five case studies with their completed debug sessions. *)
val sessions : unit -> (Flowtrace_debug.Case_study.t * Flowtrace_debug.Session.t) list

val run : unit -> Table_render.t
