(* Figure 5: correlation between mutual information gain and flow
   specification coverage across candidate message combinations, per usage
   scenario. The paper's claim: coverage increases monotonically with the
   gain, validating gain as the selection metric. *)

open Flowtrace_core
open Flowtrace_soc

(* Score every Step-1 candidate at the given width; returns (gain,
   coverage) pairs sorted by gain. *)
let points ?(buffer_width = 32) sc =
  let inter = Scenario.interleave sc in
  let candidates = Combination.enumerate (Scenario.messages sc) ~width:buffer_width in
  let ev = Infogain.evaluator inter in
  List.sort compare
    (List.map (fun combo -> (Infogain.eval ev combo, Coverage.of_combination inter combo)) candidates)

(* Bucket the (gain, coverage) cloud into deciles of gain for a readable
   series; also report the Spearman rank correlation over the full cloud. *)
let series sc =
  let pts = points sc in
  let n = List.length pts in
  let arr = Array.of_list pts in
  let buckets = 10 in
  let rows =
    List.init buckets (fun b ->
        let lo = b * n / buckets and hi = max (b * n / buckets) (((b + 1) * n / buckets) - 1) in
        let slice = Array.sub arr lo (hi - lo + 1) in
        let avg f = Array.fold_left (fun a x -> a +. f x) 0.0 slice /. float_of_int (Array.length slice) in
        (avg fst, avg snd))
  in
  let rho = Table_render.spearman (List.map fst pts) (List.map snd pts) in
  (rows, rho, n)

let run () =
  List.map
    (fun sc ->
      let rows, rho, n = series sc in
      Table_render.make
        ~title:(Printf.sprintf "Figure 5 (%s): information gain vs FSP coverage" sc.Scenario.name)
        ~notes:
          [
            Printf.sprintf "%d candidate combinations; Spearman rank correlation rho = %.3f" n rho;
            "rows are gain-deciles of the candidate cloud (mean gain, mean coverage)";
          ]
        ~header:[ "Mean gain (decile)"; "Mean FSP coverage"; "Coverage" ]
        (List.map
           (fun (g, c) -> [ Table_render.f4 g; Table_render.pct c; Table_render.bar c ])
           rows))
    Scenario.all
