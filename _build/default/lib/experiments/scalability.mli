(** Ablation D: selection cost vs gate-level design size — the paper's
    scalability argument (SRR-based selection could not be applied to the
    T2 at all; flow-level selection is constant in implementation size). *)

val run : unit -> Table_render.t
