(* Table 5: selection of important messages. For each of the 16 T2
   messages: which bugs affect it (golden-vs-buggy diff over all three
   scenarios), its bug coverage and importance, and whether/where the
   selection traces it. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_bug

let rounds = 15

(* Messages affected by each bug, unioned across the scenarios that
   exercise the bug's flows. *)
let affected_by_bug () =
  List.map
    (fun (b : Bug.t) ->
      let affected =
        List.concat_map
          (fun sc ->
            let config = { Scenario.default_run with Scenario.rounds } in
            let golden, buggy = Inject.golden_vs_buggy ~config sc [ b ] in
            Trace_diff.affected_messages ~golden:golden.Sim.packets ~buggy:buggy.Sim.packets)
          Scenario.all
      in
      (b.Bug.id, List.sort_uniq String.compare affected))
    Catalog.bugs

(* Scenarios in which the greedy 32-bit selection traces a message (fully
   or via a packed subgroup). *)
let selected_in () =
  List.map
    (fun sc ->
      let sel =
        Select.select ~strategy:Select.Greedy (Scenario.interleave sc) ~buffer_width:32
      in
      (sc.Scenario.id, sel))
    Scenario.all

let run () =
  let by_bug = affected_by_bug () in
  let sels = selected_in () in
  let rows =
    List.mapi
      (fun i (m : Message.t) ->
        let name = m.Message.name in
        let ids, coverage = Trace_diff.bug_coverage ~n_bugs:Catalog.n_bugs ~affected_by_bug:by_bug name in
        let scenarios =
          List.filter_map
            (fun (id, sel) -> if Select.is_observable sel name then Some (string_of_int id) else None)
            sels
        in
        [
          Printf.sprintf "m%d=%s" (i + 1) name;
          (if ids = [] then "-" else String.concat "," (List.map string_of_int ids));
          (if coverage = 0.0 then "-" else Table_render.f2 coverage);
          (if coverage = 0.0 then "-" else Table_render.f2 (Trace_diff.importance coverage));
          (if scenarios = [] then "N" else "Y");
          (if scenarios = [] then "-" else String.concat "," scenarios);
        ])
      T2.all_messages
  in
  Table_render.make ~title:"Table 5: bug coverage, importance and selection of the 16 T2 messages"
    ~notes:
      [
        Printf.sprintf "bug coverage = #affecting bugs / %d; importance = 1 / coverage" Catalog.n_bugs;
        "'Selected' = traced (fully or packed) by the greedy 32-bit selection of some scenario";
      ]
    ~header:[ "Message"; "Affecting bug IDs"; "Bug coverage"; "Importance"; "Selected"; "Scenarios" ]
    rows
