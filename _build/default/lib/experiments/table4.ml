(* Table 4: signal selection on the USB design — SigSeT vs PRNet vs our
   information-gain method, per interface signal, plus the flow
   specification coverage each method's selection achieves. *)

open Flowtrace_usb

let status_cell st =
  match st with Usb_design.Full -> "yes" | Usb_design.Partial -> "P" | Usb_design.None_ -> "no"

let run () =
  let c = Usb_compare.run () in
  let methods = [ c.Usb_compare.sigset; c.Usb_compare.prnet; c.Usb_compare.infogain ] in
  let rows =
    List.map
      (fun (signal, _) ->
        signal
        :: List.map
             (fun (m : Usb_compare.method_result) ->
               status_cell (List.assoc signal m.Usb_compare.status))
             methods)
      Usb_design.interface_signals
  in
  let coverage_row =
    "FSP coverage"
    :: List.map
         (fun (m : Usb_compare.method_result) -> Table_render.pct m.Usb_compare.fsp_coverage)
         methods
  in
  Table_render.make ~title:"Table 4: USB signal selection, SigSeT vs PRNet vs InfoGain (32-bit budget)"
    ~notes:[ "P = partially selected (some bits of the register)" ]
    ~header:[ "Signal"; "SigSeT"; "PRNet"; "InfoGain" ]
    (rows @ [ coverage_row ])
