(* Table 7: representative potential root causes for the Scenario 1 /
   Mondo case study, with the messages the selection traces for it. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_debug

let run () =
  let inter = Scenario.interleave Scenario.scenario1 in
  let sel = Select.select ~strategy:Select.Greedy inter ~buffer_width:32 in
  let mondo_causes =
    List.filter (fun (c : Cause.t) -> c.Cause.c_id <= 3) Cause.scenario1
  in
  let rows =
    List.map
      (fun (c : Cause.t) ->
        [
          Printf.sprintf "%d. %s" c.Cause.c_id c.Cause.c_desc;
          Printf.sprintf "%d. %s" c.Cause.c_id c.Cause.c_implication;
        ])
      mondo_causes
  in
  Table_render.make ~title:"Table 7: representative potential root causes (Scenario 1, Mondo case study)"
    ~notes:
      [
        "selected messages: " ^ String.concat ", " (Select.selected_names sel);
        Printf.sprintf "%d causes total for this scenario; 3 Mondo-related representatives shown"
          (List.length Cause.scenario1);
      ]
    ~header:[ "Potential cause"; "Potential implication" ]
    rows
