(* The scalability argument (Sections 1 and 5.4): SRR-based selection
   could not even be applied to the OpenSPARC T2 because its cost grows
   with gate-level design size, while application-level selection depends
   only on the flow specifications — constant in the implementation size.

   We sweep the USB design's internal size (endpoint-buffer blocks) and
   time both selections at a fixed 32-bit budget. *)

open Flowtrace_core
open Flowtrace_netlist
open Flowtrace_baseline
open Flowtrace_usb

let time f =
  let t0 = Sys.time () in
  let v = f () in
  (v, Sys.time () -. t0)

let run () =
  let rows =
    List.map
      (fun endpoints ->
        let netlist, t_build = time (fun () -> Usb_design.build ~endpoints ()) in
        let _, gates, ffs = Netlist.stats netlist in
        let _, t_sigset = time (fun () -> Sigset.select netlist ~budget:32) in
        let _, t_flow =
          time (fun () -> Select.select (Usb_flows.scenario ()) ~buffer_width:32)
        in
        ignore t_build;
        [
          string_of_int endpoints;
          string_of_int gates;
          string_of_int ffs;
          Printf.sprintf "%.1f ms" (1000.0 *. t_sigset);
          Printf.sprintf "%.1f ms" (1000.0 *. t_flow);
        ])
      [ 2; 8; 16; 32; 64 ]
  in
  Table_render.make ~title:"Ablation D: selection cost vs design size (32-bit budget)"
    ~notes:
      [
        "SRR-based selection scales with the gate-level netlist; flow-level selection depends";
        "only on the flow specifications and is constant in implementation size";
      ]
    ~header:[ "Endpoints"; "Gates"; "FFs"; "SigSeT time"; "InfoGain time" ]
    rows
