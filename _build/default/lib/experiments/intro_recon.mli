(** The Section 1 claim: interface-message reconstruction from 32 traced
    bits, per selection method, on the USB design. *)

val run : unit -> Table_render.t
