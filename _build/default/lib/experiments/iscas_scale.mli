(** Ablation E: SRR-greedy selection on ISCAS89-scale benchmark circuits —
    the regime prior signal-selection work reports on. *)

val run : unit -> Table_render.t
