(* Table 3: trace buffer utilization, flow specification coverage and path
   localization for the five case studies, with (WP) and without (WoP)
   Step-3 packing. 32-bit trace buffer, greedy (scalable) Step-2 search as
   in the paper's large-scale runs. *)

open Flowtrace_core
open Flowtrace_soc
open Flowtrace_bug
open Flowtrace_debug

let buffer_width = 32

type selection_pair = { wp : Select.result; wop : Select.result }

let selections inter =
  {
    wp = Select.select ~strategy:Select.Greedy ~pack:true inter ~buffer_width;
    wop = Select.select ~strategy:Select.Greedy ~pack:false inter ~buffer_width;
  }

(* Path localization of one buggy analysis-scale execution under a
   selection: the fraction of interleaved-flow paths prefix-consistent
   with the observed (projected) trace. *)
let localization inter (sel : Select.result) (outcome : Sim.outcome) =
  let selected base = Select.is_observable sel base in
  let observed =
    List.filter_map
      (fun (p : Packet.t) -> if selected p.Packet.msg then Some (Packet.indexed p) else None)
      outcome.Sim.packets
  in
  Localize.fraction ~semantics:Localize.Prefix inter ~selected ~observed

type row = {
  cs : Case_study.t;
  sel : selection_pair;
  loc_wp : float;
  loc_wop : float;
}

let case_study_row cs =
  let inter = Scenario.interleave cs.Case_study.scenario in
  let sel = selections inter in
  let outcome =
    Scenario.run_analysis ~seed:cs.Case_study.seed
      ~mutators:(Inject.mutators [ Case_study.bug cs ])
      cs.Case_study.scenario
  in
  { cs; sel; loc_wp = localization inter sel.wp outcome; loc_wop = localization inter sel.wop outcome }

let rows () = List.map case_study_row Case_study.all

let run () =
  let data = rows () in
  let table_rows =
    List.map
      (fun r ->
        [
          string_of_int r.cs.Case_study.cs_id;
          r.cs.Case_study.scenario.Scenario.name;
          Table_render.pct (Select.utilization r.sel.wp);
          Table_render.pct (Select.utilization r.sel.wop);
          Table_render.pct r.sel.wp.Select.coverage;
          Table_render.pct r.sel.wop.Select.coverage;
          Table_render.pct r.loc_wp;
          Table_render.pct r.loc_wop;
        ])
      data
  in
  let avg f = List.fold_left (fun a r -> a +. f r) 0.0 data /. float_of_int (List.length data) in
  Table_render.make
    ~title:"Table 3: trace buffer utilization, FSP coverage, path localization (32-bit buffer)"
    ~notes:
      [
        "WP = with Step-3 packing, WoP = without; localization = % of interleaved-flow paths";
        Printf.sprintf "averages: utilization WP %s, FSP coverage WP %s, localization WP %s"
          (Table_render.pct (avg (fun r -> Select.utilization r.sel.wp)))
          (Table_render.pct (avg (fun r -> r.sel.wp.Select.coverage)))
          (Table_render.pct (avg (fun r -> r.loc_wp)));
      ]
    ~header:
      [
        "Case"; "Scenario"; "Util WP"; "Util WoP"; "FSP WP"; "FSP WoP"; "Loc WP"; "Loc WoP";
      ]
    table_rows
