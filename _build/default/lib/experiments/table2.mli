(** Table 2: the four representative injected bugs. *)

val run : unit -> Table_render.t
