(* Ablations of the design choices DESIGN.md calls out (not in the paper):
   exact vs maximal vs greedy candidate search, packing with/without
   partial-width scaling, and a trace-buffer width sweep. *)

open Flowtrace_core
open Flowtrace_soc

let strategies = [ ("exact", Select.Exact); ("exact-maximal", Select.Exact_maximal); ("greedy", Select.Greedy) ]

let strategy_table () =
  let rows =
    List.concat_map
      (fun sc ->
        let inter = Scenario.interleave sc in
        List.map
          (fun (label, strategy) ->
            let t0 = Sys.time () in
            let r = Select.select ~strategy ~pack:false inter ~buffer_width:32 in
            let dt = Sys.time () -. t0 in
            [
              sc.Scenario.name;
              label;
              Table_render.f4 r.Select.gain;
              Table_render.pct r.Select.coverage;
              Table_render.pct (Select.utilization r);
              Printf.sprintf "%.1f ms" (1000.0 *. dt);
            ])
          strategies)
      Scenario.all
  in
  Table_render.make ~title:"Ablation A: Step-2 candidate search strategy (no packing)"
    ~notes:[ "greedy trades a little gain for linear-time search — the scalability knob" ]
    ~header:[ "Scenario"; "Strategy"; "Gain"; "FSP coverage"; "Utilization"; "Search time" ]
    rows

let packing_table () =
  let rows =
    List.concat_map
      (fun sc ->
        let inter = Scenario.interleave sc in
        List.map
          (fun (label, pack, scale) ->
            let r =
              Select.select ~strategy:Select.Greedy ~pack ~scale_partial:scale inter
                ~buffer_width:32
            in
            [
              sc.Scenario.name;
              label;
              Table_render.f4 r.Select.gain;
              Table_render.pct r.Select.coverage;
              Table_render.pct (Select.utilization r);
              String.concat "," (List.map Packing.qualified r.Select.packed);
            ])
          [ ("no packing", false, false); ("packing", true, false); ("packing scaled", true, true) ])
      Scenario.all
  in
  Table_render.make ~title:"Ablation B: Step-3 packing variants"
    ~notes:[ "'scaled' weighs packed subgroups by captured bit fraction (paper uses unscaled)" ]
    ~header:[ "Scenario"; "Variant"; "Gain"; "FSP coverage"; "Utilization"; "Packed" ]
    rows

let width_sweep_table () =
  let widths = [ 16; 24; 32; 48; 64 ] in
  let rows =
    List.concat_map
      (fun sc ->
        let inter = Scenario.interleave sc in
        List.map
          (fun w ->
            let r = Select.select ~strategy:Select.Greedy inter ~buffer_width:w in
            [
              sc.Scenario.name;
              string_of_int w;
              string_of_int (List.length r.Select.messages);
              Table_render.f4 r.Select.gain;
              Table_render.pct r.Select.coverage;
              Table_render.pct (Select.utilization r);
            ])
          widths)
      Scenario.all
  in
  Table_render.make ~title:"Ablation C: trace-buffer width sweep"
    ~notes:[ "coverage saturates once the buffer holds the informative messages" ]
    ~header:[ "Scenario"; "Width"; "Messages"; "Gain"; "FSP coverage"; "Utilization" ]
    rows

(* Ablation F: the paper's uniform state prior vs a path-frequency prior.
   The selection metric changes value but (on these scenarios) rarely the
   ranking of the best combinations — evidence the uniformity assumption
   is not load-bearing. *)
let prior_table () =
  let rows =
    List.concat_map
      (fun sc ->
        let inter = Scenario.interleave sc in
        let r = Select.select ~strategy:Select.Greedy ~pack:false inter ~buffer_width:32 in
        let sel b = Select.is_observable r b in
        let uniform =
          Infogain.compute_with_prior inter ~selected:sel ~prior:(Infogain.uniform_prior inter)
        in
        let visit =
          Infogain.compute_with_prior inter ~selected:sel ~prior:(Infogain.visit_prior inter)
        in
        [
          [
            sc.Scenario.name;
            String.concat "," (List.map (fun (m : Message.t) -> m.Message.name) r.Select.messages);
            Table_render.f4 uniform;
            Table_render.f4 visit;
          ];
        ])
      Scenario.all
  in
  Table_render.make ~title:"Ablation F: state prior — uniform (paper) vs path-frequency"
    ~notes:
      [
        "gain of the greedy 32-bit selection under each prior; the paper assumes p(x) = 1/|S|";
      ]
    ~header:[ "Scenario"; "Selection"; "Gain (uniform)"; "Gain (visit)" ]
    rows

let run () = [ strategy_table (); packing_table (); width_sweep_table (); prior_table () ]
