(** Plain-text rendering shared by the experiment drivers. *)

type t = { title : string; notes : string list; header : string list; rows : string list list }

val make : ?notes:string list -> title:string -> header:string list -> string list list -> t

(** Format a fraction as a percentage with two decimals. *)
val pct : float -> string

val f2 : float -> string
val f4 : float -> string
val to_string : t -> string
val print : t -> unit

(** [bar fraction] renders an ASCII bar, e.g. ["########........"]. *)
val bar : ?width:int -> float -> string

(** Spearman rank correlation (Figure 5's monotonicity measure). *)
val spearman : float list -> float list -> float
