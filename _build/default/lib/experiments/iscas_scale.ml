(* Ablation E: the baselines on their home turf. Prior signal-selection
   work evaluates on ISCAS89-scale circuits; there, SRR-greedy selection
   achieves excellent restoration ratios — which is exactly the paper's
   point: high SRR at benchmark scale neither transfers to SoC scale
   (Ablation D) nor implies application-level message observability
   (the Table 4 / Section 1 experiments). *)

open Flowtrace_netlist
open Flowtrace_baseline

let run () =
  let rows =
    List.map
      (fun (name, netlist) ->
        let _, gates, ffs = Netlist.stats netlist in
        let budget = max 1 (List.length netlist.Netlist.ffs / 4) in
        let t0 = Sys.time () in
        let sel = Sigset.select netlist ~budget in
        let dt = Sys.time () -. t0 in
        [
          name;
          string_of_int gates;
          string_of_int ffs;
          string_of_int budget;
          Table_render.f2 sel.Sigset.srr.Srr.srr;
          Table_render.pct sel.Sigset.srr.Srr.state_coverage;
          Printf.sprintf "%.1f ms" (1000.0 *. dt);
        ])
      (Benchmarks.suite ())
  in
  Table_render.make
    ~title:"Ablation E: SRR-greedy selection on ISCAS89-scale benchmark circuits"
    ~notes:
      [
        "budget = 1/4 of the flip-flops; SRR = restored state bits per traced bit";
        "high SRR at this scale is the regime prior signal-selection work reports on";
      ]
    ~header:[ "Circuit"; "Gates"; "FFs"; "Budget"; "SRR"; "State coverage"; "Time" ]
    rows
