(* Table 6: diagnosed root causes and debugging statistics for the five
   case studies. *)

open Flowtrace_soc
open Flowtrace_debug

let sessions () = List.map (fun cs -> (cs, Case_study.run cs)) Case_study.all

let run () =
  let data = sessions () in
  let rows =
    List.map
      (fun ((cs : Case_study.t), (s : Session.t)) ->
        let root_caused =
          match s.Session.plausible with
          | [] -> "(all causes exonerated)"
          | cs' -> String.concat " / " (List.map (fun c -> c.Cause.c_desc) cs')
        in
        [
          string_of_int cs.Case_study.cs_id;
          string_of_int (List.length cs.Case_study.scenario.Scenario.flow_names);
          string_of_int (List.length s.Session.legal_pairs);
          string_of_int s.Session.pairs_investigated;
          string_of_int s.Session.messages_investigated;
          root_caused;
        ])
      data
  in
  let pairs_frac =
    let inv = List.fold_left (fun a (_, s) -> a + s.Session.pairs_investigated) 0 data in
    let tot = List.fold_left (fun a (_, s) -> a + List.length s.Session.legal_pairs) 0 data in
    float_of_int inv /. float_of_int tot
  in
  Table_render.make ~title:"Table 6: diagnosed root causes and debugging statistics"
    ~notes:
      [
        Printf.sprintf "legal IP pairs investigated on average: %s" (Table_render.pct pairs_frac);
      ]
    ~header:
      [ "Case"; "Flows"; "Legal IP pairs"; "Pairs investigated"; "Messages investigated"; "Root-caused function" ]
    rows
