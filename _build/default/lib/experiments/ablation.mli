(** Design-choice ablations (not in the paper): Step-2 search strategy,
    Step-3 packing variants, trace-buffer width sweep. *)

val strategy_table : unit -> Table_render.t
val packing_table : unit -> Table_render.t
val width_sweep_table : unit -> Table_render.t

(** Uniform (paper) vs path-frequency state prior. *)
val prior_table : unit -> Table_render.t

(** All three ablation tables. *)
val run : unit -> Table_render.t list
